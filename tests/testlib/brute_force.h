// Brute-force recomputation checkers for the incremental FairKMState.
//
// Everything here recomputes from first principles (a fresh pass over the
// points and sensitive attributes) so the incremental aggregates have an
// independent ground truth to be compared against after arbitrary Move
// sequences.

#ifndef FAIRKM_TESTS_TESTLIB_BRUTE_FORCE_H_
#define FAIRKM_TESTS_TESTLIB_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/types.h"
#include "core/fairkm_state.h"
#include "core/objective.h"
#include "core/pruning.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace testutil {

/// \brief All FairKMState aggregates, recomputed from scratch.
struct BruteForceAggregates {
  std::vector<size_t> counts;                   ///< Cluster sizes.
  data::Matrix centroids;                       ///< k x d exact means.
  /// cat_counts[a][c * m_a + s] = |{i in C_c : S_a(i) = s}|.
  std::vector<std::vector<int64_t>> cat_counts;
  /// num_sums[a][c] = sum of numeric attribute a over cluster c.
  std::vector<std::vector<double>> num_sums;
  double kmeans_term = 0.0;
  double fairness_term = 0.0;
};

/// \brief Single fresh pass over points + sensitive view.
BruteForceAggregates RecomputeAggregates(
    const data::Matrix& points, const data::SensitiveView& sensitive,
    const cluster::Assignment& assignment, int k,
    const core::FairnessTermConfig& config = {});

/// \brief Exact K-Means term change for moving point `i` to `to`, computed by
/// evaluating the SSE from scratch before and after on a copied assignment.
double BruteForceDeltaKMeans(const data::Matrix& points,
                             const cluster::Assignment& assignment, int k,
                             size_t i, int to);

/// \brief Same for the fairness deviation term.
double BruteForceDeltaFairness(const data::SensitiveView& sensitive,
                               const cluster::Assignment& assignment, int k,
                               size_t i, int to,
                               const core::FairnessTermConfig& config = {});

/// \brief Compares every observable of `state` (assignment, cluster sizes,
/// centroids, both objective terms) against scratch recomputation.
::testing::AssertionResult StateMatchesBruteForce(
    const core::FairKMState& state, const data::Matrix& points,
    const data::SensitiveView& sensitive,
    const core::FairnessTermConfig& config = {}, double tolerance = 1e-9);

/// \brief Out-of-sample best-candidate placement recomputed from first
/// principles — the ground truth for FairKMSolver::Assign. Each new point
/// goes to the non-empty cluster of `trained` minimizing
///   |C|/(|C|+1) * d(x, mu_C)^2  +  lambda * (fairness insertion delta),
/// where the insertion delta is the cluster's scratch-recomputed deviation
/// term (over the TRAINING view's dataset-level fractions/means and the
/// training dataset size, matching the serving-path modeling) with the
/// point's sensitive values virtually added, minus the term before. Pass
/// `new_sensitive` = nullptr for the features-only path (no fairness term).
/// Ties break toward the smallest cluster id, like the solver.
cluster::Assignment BruteForceAssign(const data::Matrix& points,
                                     const data::SensitiveView& sensitive,
                                     const cluster::Assignment& trained, int k,
                                     double lambda,
                                     const data::Matrix& new_points,
                                     const data::SensitiveView* new_sensitive,
                                     const core::FairnessTermConfig& config = {});

/// \brief Verifies the pruning engine's bounds against exact evaluation for
/// every point whose bounds are fresh:
///   * the distance upper/lower bounds bracket the exact (clamped,
///     expanded-form) centroid distances the sweep would compute,
///   * FairRemovalDelta + FairInsertionDelta reproduces DeltaFairness,
///   * the per-cluster fairness bounds lower-bound every resident/candidate
///     point's exact delta, and
///   * — the end-to-end soundness claim — whenever ShouldPrune(i) holds, no
///     candidate move of i improves the objective by more than
///     min_improvement under the exact kernels.
/// `state` must have bound tracking enabled and `pruner` must be built over
/// it with the given lambda/min_improvement.
::testing::AssertionResult PrunerBoundsHold(const core::FairKMState& state,
                                            const core::SweepPruner& pruner,
                                            double lambda,
                                            double min_improvement,
                                            double tolerance = 1e-7);

}  // namespace testutil
}  // namespace fairkm

#endif  // FAIRKM_TESTS_TESTLIB_BRUTE_FORCE_H_
