// Process memory telemetry from /proc/self/status.
//
// The out-of-core sweep's whole contract is an RSS bound ("a 10M-point run
// completes with resident memory below the dataset footprint"), so both the
// bounded-RSS test and core::ShardedSweep's stats need a cheap, portable
// reading of the process's resident set. Linux exposes it in
// /proc/self/status as VmRSS (current) and VmHWM (high-water mark); on
// platforms without procfs both readers return 0 and callers treat the
// telemetry as unavailable rather than failing the run.

#ifndef FAIRKM_COMMON_PROC_STATS_H_
#define FAIRKM_COMMON_PROC_STATS_H_

#include <cstddef>

namespace fairkm {

/// \brief Current resident set size in bytes (VmRSS), or 0 if unknown.
size_t CurrentRssBytes();

/// \brief Peak resident set size in bytes (VmHWM), or 0 if unknown. The
/// high-water mark covers the whole process lifetime, which is exactly what
/// an RSS-ceiling assertion wants: a transient spike can't hide between
/// samples.
size_t PeakRssBytes();

}  // namespace fairkm

#endif  // FAIRKM_COMMON_PROC_STATS_H_
