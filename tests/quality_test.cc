#include "metrics/quality.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/kmeans.h"
#include "test_util.h"

namespace fairkm {
namespace metrics {
namespace {

using cluster::Assignment;

TEST(ClusteringObjectiveTest, MatchesHandComputation) {
  data::Matrix pts(4, 1);
  pts.At(0, 0) = 0;
  pts.At(1, 0) = 2;
  pts.At(2, 0) = 10;
  pts.At(3, 0) = 14;
  // Clusters {0,2} mean 1 (SSE 2) and {10,14} mean 12 (SSE 8).
  EXPECT_DOUBLE_EQ(ClusteringObjective(pts, {0, 0, 1, 1}, 2), 10.0);
}

TEST(SilhouetteTest, WellSeparatedBlobsScoreHigh) {
  Rng rng(1);
  data::Matrix pts = testutil::MakeBlobs(3, 30, 3, &rng);
  cluster::KMeansOptions opt;
  opt.k = 3;
  Rng krng(2);
  auto r = cluster::RunKMeans(pts, opt, &krng).ValueOrDie();
  EXPECT_GT(SilhouetteScore(pts, r.assignment, 3), 0.6);
}

TEST(SilhouetteTest, RandomAssignmentScoresNearZero) {
  Rng rng(3);
  data::Matrix pts = testutil::MakeBlobs(3, 30, 3, &rng);
  Assignment random(90);
  for (size_t i = 0; i < 90; ++i) {
    random[i] = static_cast<int32_t>(rng.UniformInt(uint64_t{3}));
  }
  EXPECT_LT(std::fabs(SilhouetteScore(pts, random, 3)), 0.25);
}

TEST(SilhouetteTest, SingleClusterIsZero) {
  Rng rng(5);
  data::Matrix pts = testutil::MakeBlobs(1, 20, 2, &rng);
  EXPECT_EQ(SilhouetteScore(pts, Assignment(20, 0), 1), 0.0);
}

TEST(SilhouetteTest, SingletonClustersScoreZero) {
  data::Matrix pts(3, 1);
  pts.At(0, 0) = 0;
  pts.At(1, 0) = 1;
  pts.At(2, 0) = 10;
  // Cluster 1 = {2} is a singleton; overall mean includes a 0 for it.
  const double s = SilhouetteScore(pts, {0, 0, 1}, 2);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(SilhouetteTest, SampledApproximatesExact) {
  Rng rng(7);
  data::Matrix pts = testutil::MakeBlobs(4, 60, 3, &rng, /*spread=*/1.2);
  cluster::KMeansOptions opt;
  opt.k = 4;
  Rng krng(8);
  auto r = cluster::RunKMeans(pts, opt, &krng).ValueOrDie();
  SilhouetteOptions exact;
  exact.max_exact_rows = 10000;
  SilhouetteOptions sampled;
  sampled.max_exact_rows = 1;  // Force sampling.
  sampled.sample_size = 120;
  const double se = SilhouetteScore(pts, r.assignment, 4, exact);
  const double ss = SilhouetteScore(pts, r.assignment, 4, sampled);
  EXPECT_NEAR(se, ss, 0.1);
}

TEST(CentroidDeviationTest, IdenticalCentroidsZero) {
  Rng rng(9);
  data::Matrix c(3, 4);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) c.At(i, j) = rng.Normal(0, 1);
  }
  auto r = CentroidDeviation(c, c);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie(), 0.0, 1e-12);
}

TEST(CentroidDeviationTest, PermutationInvariant) {
  data::Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(1, 0) = 5;
  data::Matrix b(2, 2);
  b.At(0, 0) = 5;  // Same centroids, swapped order.
  b.At(1, 0) = 1;
  auto r = CentroidDeviation(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie(), 0.0, 1e-12);
}

TEST(CentroidDeviationTest, KnownDisplacement) {
  data::Matrix a(2, 1);
  a.At(0, 0) = 0;
  a.At(1, 0) = 10;
  data::Matrix b(2, 1);
  b.At(0, 0) = 1;   // 0 -> 1: squared distance 1.
  b.At(1, 0) = 12;  // 10 -> 12: squared distance 4.
  auto r = CentroidDeviation(a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.ValueOrDie(), 5.0);
}

TEST(CentroidDeviationTest, ShapeMismatchesRejected) {
  data::Matrix a(2, 2), b(3, 2), c(2, 3);
  std::ignore = a;
  EXPECT_FALSE(CentroidDeviation(a, b).ok());
  EXPECT_FALSE(CentroidDeviation(a, c).ok());
}

TEST(ObjectPairDeviationTest, IdenticalClusteringsZero) {
  Assignment a = {0, 1, 2, 0, 1, 2};
  auto r = ObjectPairDeviation(a, 3, a, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 0.0);
}

TEST(ObjectPairDeviationTest, LabelPermutationIsStillZero) {
  Assignment a = {0, 0, 1, 1};
  Assignment b = {1, 1, 0, 0};
  auto r = ObjectPairDeviation(a, 2, b, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 0.0);
}

TEST(ObjectPairDeviationTest, CompleteDisagreement) {
  // a: {01}{23}; b: {02}{13} — every pair verdict flips except none agree...
  Assignment a = {0, 0, 1, 1};
  Assignment b = {0, 1, 0, 1};
  // Pairs together in a: (0,1), (2,3); both apart in b. Pairs together in b:
  // (0,2), (1,3); both apart in a. Disagreements = 4 of 6 pairs.
  auto r = ObjectPairDeviation(a, 2, b, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie(), 4.0 / 6.0, 1e-12);
}

TEST(ObjectPairDeviationTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 40;
    Assignment a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = static_cast<int32_t>(rng.UniformInt(uint64_t{3}));
      b[i] = static_cast<int32_t>(rng.UniformInt(uint64_t{4}));
    }
    size_t disagree = 0, total = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        ++total;
        if ((a[i] == a[j]) != (b[i] == b[j])) ++disagree;
      }
    }
    auto r = ObjectPairDeviation(a, 3, b, 4);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r.ValueOrDie(), static_cast<double>(disagree) / total, 1e-12);
  }
}

TEST(ObjectPairDeviationTest, SizeMismatchRejected) {
  EXPECT_FALSE(ObjectPairDeviation({0, 1}, 2, {0}, 2).ok());
}

TEST(ObjectPairDeviationTest, TinyInputs) {
  auto r = ObjectPairDeviation({0}, 1, {0}, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 0.0);
}

}  // namespace
}  // namespace metrics
}  // namespace fairkm
