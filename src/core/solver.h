// FairKMSolver — the session API around the paper's Algorithm 1.
//
// core::RunFairKM (core/fairkm.h) runs one seed, blocking, rebuilding every
// cache from scratch. The solver factors that single call into an explicit
// lifecycle so serving-style workloads can amortize and observe it:
//
//   * Create once per (dataset, sensitive view): validates the options and
//     captures the inputs. The expensive immutable caches — the aligned
//     lane-padded PointStore, per-point norms, the fairness constant tables
//     — are built at the first Init and REUSED by every later Init, so a
//     multi-seed protocol (paper §5.5.1) or a lambda sweep (§5.3) pays the
//     O(n d) setup and its allocations once, not per run.
//   * Init(seed | rng | warm-start assignment) starts a run. Re-Init is the
//     warm path: allocation-free after the first, and bit-identical to a
//     freshly constructed solver given the same inputs.
//   * Sweep() advances one Algorithm-1 sweep at a time; Run(budget,
//     progress) loops sweeps under an iteration and/or wall-clock budget,
//     invoking the progress callback at every mini-batch boundary. A
//     callback returning false cancels cooperatively: the solver stops at
//     that batch boundary with all aggregates consistent and queryable
//     (CurrentResult / Assign / state() all work), and a later Sweep/Run
//     resumes exactly where it stopped.
//   * Snapshot()/Restore() checkpoint the full mutable float state
//     (aggregates in their incremental summation order, pruner bounds,
//     sweep cursor), so a restored run replays the EXACT trajectory of an
//     uninterrupted one — bit-identical assignments, objective history and
//     pruning counters — in every SweepMode x kernel backend x pruning
//     setting.
//   * Assign(new_points[, new_sensitive]) is the out-of-sample serving
//     path: each new point goes to the non-empty trained cluster minimizing
//     its Eq. 1 insertion cost |C|/(|C|+1) d(x, mu_C)^2 (+ lambda times the
//     fairness insertion delta when sensitive values are supplied). The
//     trained model is not mutated; points are scored independently.
//
// The solver is move-only; it references the points/sensitive view, which
// must outlive it unchanged.
//
// Storage backends: the matrix-backed Create copies the rows into an
// in-memory aligned PointStore at the first Init. The store-backed Create
// binds a data::PointStore directly — including the memory-mapped file
// backend (see data/point_store.h) — so the sweep engine streams rows
// straight off the mapping and the resident set is governed by the page
// cache, not by an in-process copy. Both paths walk bit-identical
// trajectories given equal inputs and seeds.

#ifndef FAIRKM_CORE_SOLVER_H_
#define FAIRKM_CORE_SOLVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/clusterer.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/fairkm.h"
#include "core/fairkm_state.h"
#include "core/pruning.h"
#include "data/matrix.h"
#include "data/point_store.h"
#include "data/sensitive.h"

namespace fairkm {

class ThreadPool;

namespace core {

/// \brief Budget for FairKMSolver::Run. Negative fields mean "unbounded";
/// options.max_iterations always caps the total sweep count of the session.
struct RunBudget {
  /// Sweeps this Run call may complete (a partial sweep resumed from a
  /// cancellation counts when it completes within this call).
  int max_sweeps = -1;
  /// Wall-clock cap for this Run call, checked at mini-batch boundaries —
  /// the solver stops mid-sweep (resumable) once exceeded. Like every other
  /// duration in the library API, this is seconds as a double (CLI tools
  /// that expose millisecond flags convert at parse time).
  double max_seconds = -1.0;

  // --- Durable auto-checkpointing (see core/checkpoint_io.h).
  /// Directory for automatic checkpoints (created if missing). Empty
  /// disables the feature; checkpoint_every must also be > 0.
  std::string checkpoint_dir;
  /// Take a durable checkpoint every this many completed sweeps, plus one
  /// at whatever point the Run call stops (so a restart never loses more
  /// than the current mini-batch). 0 disables auto-checkpointing.
  int checkpoint_every = 0;
  /// Checkpoint files retained in checkpoint_dir; older ones are pruned
  /// after each successful write. At least 2 keeps a fallback when the
  /// newest file is torn by a crash.
  int checkpoint_keep = 2;
  /// When true (and checkpoint_dir is set), Run first restores the newest
  /// valid checkpoint in checkpoint_dir — skipping corrupt files in favor
  /// of the previous good one — before running. An empty/missing directory
  /// falls through to the solver's current state; a directory where every
  /// checkpoint is corrupt fails the Run with kDataLoss.
  bool resume = false;

  // --- Lambda annealing (optional).
  /// When set, invoked at every sweep boundary of this Run call with the
  /// 1-based index of the sweep about to start; the returned weight is
  /// applied through SetLambda (negative = the (n/k)^2 heuristic) before the
  /// sweep runs. A schedule that returns the session's current lambda is a
  /// strict no-op — the run is bit-identical, counters included, to one
  /// without a schedule. Never consulted mid-sweep: a resumed partial sweep
  /// finishes under the weight it started with.
  std::function<double(int sweep)> lambda_schedule;
};

/// \brief Why a Run call returned.
enum class RunStop {
  kConverged,      ///< A full sweep produced no move.
  kIterationCap,   ///< options.max_iterations sweeps completed.
  kSweepBudget,    ///< budget.max_sweeps sweeps completed in this call.
  kTimeBudget,     ///< budget.max_seconds exceeded (possibly mid-sweep).
  kCancelled,      ///< The progress callback returned false.
};

/// \brief Progress-callback payload, emitted at every mini-batch boundary
/// (once per sweep when mini-batching is off).
struct SweepProgress {
  int sweep = 0;               ///< 1-based index of the sweep in progress.
  size_t points_processed = 0; ///< Points handled so far within this sweep.
  size_t num_points = 0;       ///< Dataset size n.
  bool sweep_complete = false; ///< This boundary finished the sweep.
  size_t moves_in_sweep = 0;   ///< Accepted moves so far within this sweep.
  bool converged = false;      ///< Sweep completed with zero moves.
  double objective = 0.0;      ///< Cached Eq. 1 value at this boundary.
  double sweep_seconds = 0.0;  ///< Accumulated wall time inside sweeps.
};

/// \brief Return false to cancel cooperatively at this batch boundary.
using ProgressCallback = std::function<bool(const SweepProgress&)>;

/// \brief Checkpoint of a run in flight; see FairKMSolver::Snapshot().
struct SolverCheckpoint {
  size_t num_rows = 0;
  int k = 0;
  /// Sweep-shape identity: restoring under a different mini-batch size or
  /// sweep mode would silently change refresh boundaries, so Restore
  /// rejects mismatches.
  size_t batch_size = 0;
  bool parallel = false;
  double lambda = 0.0;
  FairKMState::Checkpoint state;
  bool has_pruner = false;
  SweepPruner::Checkpoint pruner;
  int sweeps_completed = 0;
  bool converged = false;
  size_t next_point = 0;      ///< Sweep cursor (0 = at a sweep boundary).
  size_t moves_in_sweep = 0;
  std::vector<double> objective_history;
  uint64_t total_candidates = 0;
  uint64_t pruned_candidates = 0;
  double sweep_seconds = 0.0;
};

/// \brief Self-contained frozen copy of a trained FairKM model: everything
/// the out-of-sample serving path (src/serve/) needs to score Eq. 1
/// insertion costs without touching the live solver — exact centroids in the
/// aligned lane-padded kernel layout with their cached squared norms
/// (expanded-form distance), cluster sizes, the fairness moment tables, and
/// the training view's attribute structure (names, cardinalities, TRAINING
/// dataset fractions/means, weights — the trained model is the distribution
/// reference for out-of-sample deltas). Owns all of its storage; the solver
/// and its inputs may mutate or die after the export.
struct ModelExport {
  size_t num_rows = 0;  ///< Training-set size n.
  size_t d = 0;         ///< Feature width.
  size_t stride = 0;    ///< Padded centroid row width (multiple of 4).
  int k = 0;
  double lambda = 0.0;  ///< Resolved fairness weight of the session.
  FairnessTermConfig config;
  std::vector<size_t> counts;  ///< Cluster sizes (empty clusters stay 0).
  /// k x stride centroid matrix, 32-byte aligned rows, zero padding and
  /// all-zero rows for empty clusters — GemvAligned streams it directly.
  data::AlignedVector centroids;
  std::vector<double> centroid_norms;  ///< ||mu_c||^2 (0 for empty clusters).
  FairKMState::FairnessMomentTables moments;

  /// \brief Structure + training-data distribution of one categorical
  /// sensitive attribute.
  struct CategoricalAttr {
    std::string name;
    int cardinality = 0;
    std::vector<double> dataset_fractions;  ///< Training Fr_X(s).
    double weight = 1.0;
  };
  /// \brief Structure + training-data mean of one numeric attribute.
  struct NumericAttr {
    std::string name;
    double dataset_mean = 0.0;  ///< Training dataset average.
    double weight = 1.0;
  };
  std::vector<CategoricalAttr> categorical;
  std::vector<NumericAttr> numeric;
};

/// \brief Reusable FairKM optimization session (see the header comment).
class FairKMSolver {
 public:
  /// \brief Validates `options` and binds the inputs (not copied; they must
  /// outlive the solver unchanged). No per-run state is built yet.
  static Result<FairKMSolver> Create(const data::Matrix* points,
                                     const data::SensitiveView* sensitive,
                                     const FairKMOptions& options);

  /// \brief Store-backed session: binds a PointStore (shared ownership)
  /// instead of a matrix. With the mmap backend the dataset never enters the
  /// process heap — rows are read straight off the read-only mapping, and
  /// PointStore::EvictRows lets a sharded driver (core/sharded_sweep.h)
  /// bound the resident set. Restrictions of this path: Init(rng) supports
  /// only cluster::KMeansInit::kRandomAssignment (the paper's Algorithm-1
  /// initialization; other strategies need matrix access) and points() is
  /// null. Trajectories are bit-identical to a matrix-backed session over
  /// the same rows with an equal seed.
  static Result<FairKMSolver> Create(
      std::shared_ptr<const data::PointStore> store,
      const data::SensitiveView* sensitive, const FairKMOptions& options);

  // Move-only; special members out of line (ThreadPool is only forward-
  // declared here).
  FairKMSolver(FairKMSolver&&) noexcept;
  FairKMSolver& operator=(FairKMSolver&&) noexcept;
  FairKMSolver(const FairKMSolver&) = delete;
  FairKMSolver& operator=(const FairKMSolver&) = delete;
  ~FairKMSolver();

  /// \brief Starts a run from the options' initialization strategy, drawing
  /// from `rng` exactly as RunFairKM does (equal seeds, equal trajectories).
  Status Init(Rng* rng);
  /// \brief Convenience: Init with a fresh Rng(seed).
  Status Init(uint64_t seed);
  /// \brief Starts a run from a caller-provided (warm-start) assignment.
  Status Init(cluster::Assignment warm_start);

  /// \brief True after a successful Init (or Restore).
  bool initialized() const { return state_ != nullptr; }

  /// \brief Completes the current sweep (resuming a cancelled one first if
  /// necessary). Returns true when the sweep accepted at least one move;
  /// false means the run cannot advance further — converged, or
  /// options.max_iterations sweeps already completed (no-op in both cases).
  Result<bool> Sweep();

  /// \brief Runs sweeps until convergence, options.max_iterations, or the
  /// budget/cancellation stops it. `progress`, when set, fires at every
  /// mini-batch boundary.
  Result<RunStop> Run(const RunBudget& budget = {},
                      const ProgressCallback& progress = nullptr);

  // --- Observation (require initialized()).
  int sweeps_completed() const { return sweeps_completed_; }
  bool converged() const { return converged_; }
  /// \brief True when a cancelled/timed-out sweep is pending mid-flight.
  bool mid_sweep() const { return next_point_ != 0; }
  /// \brief Cached Eq. 1 objective of the current state, O(k (1 + |S|)).
  double Objective() const;
  const cluster::Assignment& assignment() const {
    FAIRKM_DCHECK(state_ != nullptr);
    return state_->assignment();
  }
  const std::vector<double>& objective_history() const {
    return objective_history_;
  }
  /// \brief Finalized result (centroids, decomposed objective, telemetry) of
  /// the current state — valid at any consistent point, including after a
  /// cancellation. O(n d).
  Result<FairKMResult> CurrentResult() const;
  /// \brief Read access to the live optimizer state (tests/introspection).
  const FairKMState& state() const {
    FAIRKM_DCHECK(state_ != nullptr);
    return *state_;
  }

  // --- Checkpoint / resume.
  /// \brief Captures the complete mutable run state. Restoring it (into this
  /// or any solver Created over the same inputs and options) and continuing
  /// replays the uninterrupted trajectory bit-identically.
  Result<SolverCheckpoint> Snapshot() const;
  Status Restore(const SolverCheckpoint& checkpoint);

  // --- Durable checkpoints (core/checkpoint_io.h format).
  /// \brief Snapshot() written durably to `path` (temp + fsync + atomic
  /// rename; fault scope "checkpoint"). Requires initialized().
  Status SaveCheckpoint(const std::string& path) const;
  /// \brief Reads a checkpoint file and Restore()s it. kDataLoss when the
  /// file is corrupt (the solver's state is untouched on any failure).
  Status LoadCheckpoint(const std::string& path);
  /// \brief Restores the newest valid checkpoint in `dir`, falling back to
  /// older files when newer ones are corrupt or incompatible. kNotFound
  /// when the directory is missing or holds no checkpoints; kDataLoss when
  /// checkpoints exist but none restores.
  Status ResumeFromCheckpointDir(const std::string& dir);

  // --- Serving path.
  /// \brief Maps out-of-sample points (same feature width) to the trained
  /// clusters by Eq. 1 K-Means insertion cost. Empty clusters are not
  /// candidates; ties break toward the smallest cluster id.
  Result<cluster::Assignment> Assign(const data::Matrix& new_points) const;
  /// \brief Same, adding lambda times the fairness insertion delta of each
  /// point's sensitive values. `new_sensitive` must mirror the training
  /// view's attribute structure (same order, cardinalities within range);
  /// the dataset-level fractions/means of the TRAINING data price the
  /// deltas — the trained model is the distribution reference.
  Result<cluster::Assignment> Assign(
      const data::Matrix& new_points,
      const data::SensitiveView& new_sensitive) const;
  /// \brief Freezes the current trained model into a self-contained
  /// ModelExport (see its comment) — the input of serve::ModelSnapshot.
  /// Requires initialized(); call only from the solver's owning thread at a
  /// consistent point (between sweeps, or inside a Run progress callback,
  /// which fires at mini-batch boundaries with all aggregates consistent).
  Result<ModelExport> ExportModel() const;

  // --- Online growth (src/online/).
  /// \brief Mutable access to the live optimizer state, for the online
  /// engine's incremental admit/retire hooks (FairKMState::AdmitAppended /
  /// RetireSwapped / RefreshDatasetStats / RebuildFromStore). Same
  /// consistency contract as state(): touch only between sweeps, from the
  /// solver's owning thread. Requires initialized().
  FairKMState* mutable_state() {
    FAIRKM_DCHECK(state_ != nullptr);
    return state_.get();
  }
  /// \brief Re-synchronizes a store-backed session after the bound store's
  /// row count changed underneath it (online admit/retire): adopts the new
  /// n, re-hoists the full-sweep batch size (mini-batch sizes are kept),
  /// resizes the batch scratch, rebuilds the pruner over the resized state
  /// (all per-point bounds restart stale — sound, just unpruned until
  /// refreshed), and clears `converged` so the next Sweep/Run re-certifies
  /// the objective over the new membership. The caller must already have
  /// brought the FairKMState to the new row count (the online engine's
  /// admit/retire hooks do). Rejected mid-sweep. Durable checkpoints taken
  /// before a growth step no longer Restore (num_rows mismatch) — by
  /// design; the online engine writes fresh ones after each republish.
  Status SyncStoreGrowth();

  // --- Knobs.
  /// \brief Changes the fairness weight (negative = the (n/k)^2 heuristic).
  /// Allowed between runs and between sweeps, not mid-sweep; typical use is
  /// a lambda sweep re-Initing one solver per point.
  Status SetLambda(double lambda);
  double lambda() const { return lambda_; }
  int k() const { return options_.k; }
  size_t num_rows() const { return n_; }
  const FairKMOptions& options() const { return options_; }
  /// \brief The bound matrix, or null for a store-backed session.
  const data::Matrix* points() const { return points_; }
  /// \brief The bound store (null until the first Init of a matrix-backed
  /// session; always set for a store-backed one).
  const data::PointStore* store() const { return store_.get(); }
  const data::SensitiveView* sensitive() const { return sensitive_; }

 private:
  FairKMSolver(const data::Matrix* points, const data::SensitiveView* sensitive,
               FairKMOptions options);
  FairKMSolver(std::shared_ptr<const data::PointStore> store,
               const data::SensitiveView* sensitive, FairKMOptions options);

  // Batch engine: advances the pending sweep from next_point_ to its end or
  // to a cancellation/time-budget stop (outcome in *stop: kCancelled or
  // kTimeBudget; untouched when the sweep completed). `deadline` < 0 means
  // no time cap; it is measured against sweep_seconds_ growth within this
  // call plus `spent_before`.
  enum class BatchesOutcome { kSweepComplete, kStopped };
  BatchesOutcome RunBatches(const ProgressCallback& progress, double deadline,
                            double spent_before, RunStop* stop);
  void ProcessBatchSerial(size_t batch_start, size_t batch_end);
  void ProcessBatchParallel(size_t batch_start, size_t batch_end);
  bool ApplyBestMove(size_t i, const double* km_deltas);
  Result<cluster::Assignment> AssignImpl(
      const data::Matrix& new_points,
      const data::SensitiveView* new_sensitive) const;
  double* DistsRow(size_t offset) {
    return pruner_ ? km_dists_.data() + offset * static_cast<size_t>(options_.k)
                   : nullptr;
  }

  const data::Matrix* points_;  // Null for store-backed sessions.
  // Shared store for store-backed sessions (set at Create); matrix-backed
  // sessions leave it null and let FairKMState build its own copy.
  std::shared_ptr<const data::PointStore> store_;
  const data::SensitiveView* sensitive_;
  FairKMOptions options_;
  size_t n_ = 0;
  size_t cols_ = 0;  // Feature width, valid for both backends.
  double lambda_ = 0.0;
  bool minibatch_ = false;
  size_t batch_size_ = 0;
  bool parallel_ = false;
  bool pruning_ = false;

  // Session state, built at the first Init and reused afterwards.
  std::unique_ptr<FairKMState> state_;
  std::unique_ptr<SweepPruner> pruner_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<double> km_deltas_;
  std::vector<double> km_dists_;
  std::vector<uint8_t> evaluated_;

  // Run progress.
  int sweeps_completed_ = 0;
  bool converged_ = false;
  size_t next_point_ = 0;
  size_t moves_in_sweep_ = 0;
  std::vector<double> objective_history_;
  uint64_t total_candidates_ = 0;
  uint64_t pruned_candidates_ = 0;
  double sweep_seconds_ = 0.0;
};

/// \brief cluster::Clusterer adapter: runs a full FairKM session per
/// Cluster() call, keeping the solver (and its caches) warm across calls
/// that pass the same points/sensitive objects — the registry-facing face
/// of the session API. A non-empty `attribute` restricts the run to that
/// categorical sensitive attribute of the view passed to Cluster() (the
/// paper's FairKM(S) mode). Construction cannot fail; option/attribute
/// errors surface at the first Cluster() call.
std::unique_ptr<cluster::Clusterer> MakeFairKMClusterer(
    const FairKMOptions& options, const std::string& attribute = "");

/// \brief Registers "fairkm" in the cluster::Clusterer registry
/// (idempotent). Call this before CreateClusterer("fairkm"): registration
/// lives in this translation unit, and a binary that references no other
/// core symbol would otherwise never link it in (static-library semantics).
void EnsureFairKMClustererRegistered();

}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_SOLVER_H_
