#include "data/point_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/io.h"

namespace fairkm {
namespace data {
namespace {

// On-disk container constants ("FKPS" store file, common/io.h framing).
constexpr uint32_t kStoreMagic = 0x53504B46;  // "FKPS" little-endian
constexpr uint32_t kStoreVersion = 1;
constexpr uint32_t kMetaTag = 1;
constexpr uint32_t kRowsTag = 2;
constexpr size_t kHeaderBytes = 16;        // magic, version, count, crc
constexpr size_t kFrameBytes = 16;         // tag, payload_size, crc
constexpr size_t kFramePrefixBytes = 12;   // tag + payload_size (CRC'd part)
constexpr size_t kMetaPayloadBytes = 24;   // rows, cols, stride as u64

// How many row bytes the RSS-bounded walks (Open verification,
// ValidateFiniteStore) process between evictions.
constexpr size_t kWalkChunkBytes = size_t{8} << 20;

size_t RoundUp(size_t v, size_t align) {
  return (v + align - 1) / align * align;
}

bool HostIsLittleEndian() {
  const uint32_t probe = 1;
  unsigned char byte;
  std::memcpy(&byte, &probe, 1);
  return byte == 1;
}

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& what) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOSPC) {
        return Status::ResourceExhausted(what + ": " + std::strerror(errno));
      }
      return Status::IOError(what + ": " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

// File layout derived from the fixed header/frame sizes: the rows payload
// begins with enough zero padding that row 0 lands on a 32-byte file
// offset, which a page-aligned mapping turns into a 32-byte pointer.
struct StoreLayout {
  size_t meta_frame_off = kHeaderBytes;
  size_t meta_payload_off = kHeaderBytes + kFrameBytes;
  size_t rows_frame_off = kHeaderBytes + kFrameBytes + kMetaPayloadBytes;
  size_t rows_payload_off =
      kHeaderBytes + kFrameBytes + kMetaPayloadBytes + kFrameBytes;
  size_t data_off = RoundUp(
      kHeaderBytes + kFrameBytes + kMetaPayloadBytes + kFrameBytes,
      kKernelAlignment);
  size_t pad() const { return data_off - rows_payload_off; }
  size_t rows_crc_off() const { return rows_frame_off + kFramePrefixBytes; }
};

uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

size_t PageSize() {
  const long page = ::sysconf(_SC_PAGESIZE);
  return page > 0 ? static_cast<size_t>(page) : 4096;
}

}  // namespace

// ---------------------------------------------------------------------------
// PointStoreSpec

Result<PointStoreSpec> PointStoreSpec::Parse(const std::string& spec) {
  PointStoreSpec out;
  if (spec == "mem") {
    out.backend = Backend::kMemory;
    return out;
  }
  constexpr const char kMmapPrefix[] = "mmap:";
  if (spec.rfind(kMmapPrefix, 0) == 0) {
    out.backend = Backend::kMmap;
    out.path = spec.substr(sizeof(kMmapPrefix) - 1);
    if (out.path.empty()) {
      return Status::InvalidArgument(
          "store spec \"mmap:\" needs a file path (mmap:<path>)");
    }
    return out;
  }
  return Status::InvalidArgument("unknown store spec \"" + spec +
                                 "\" (expected \"mem\" or \"mmap:<path>\")");
}

std::string PointStoreSpec::ToString() const {
  return backend == Backend::kMemory ? "mem" : "mmap:" + path;
}

// ---------------------------------------------------------------------------
// PointStore lifecycle

PointStore::PointStore(const Matrix& m)
    : rows_(m.rows()), cols_(m.cols()), stride_(PaddedStride(m.cols())) {
  data_.assign(rows_ * stride_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = m.Row(r);
    double* dst = data_.data() + r * stride_;
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  base_ = data_.data();
}

PointStore::~PointStore() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
  if (fd_ >= 0) ::close(fd_);
}

PointStore::PointStore(PointStore&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      stride_(other.stride_),
      data_(std::move(other.data_)),
      map_(other.map_),
      map_size_(other.map_size_),
      fd_(other.fd_),
      data_offset_(other.data_offset_),
      base_(other.base_),
      path_(std::move(other.path_)),
      backend_(other.backend_) {
  // The moved-from AlignedVector keeps its heap buffer alive under us, so
  // base_ stays valid for the memory backend; only the mapping moves.
  other.map_ = nullptr;
  other.map_size_ = 0;
  other.fd_ = -1;
  other.base_ = nullptr;
  other.rows_ = other.cols_ = other.stride_ = 0;
}

PointStore& PointStore::operator=(PointStore&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_size_);
    if (fd_ >= 0) ::close(fd_);
    rows_ = other.rows_;
    cols_ = other.cols_;
    stride_ = other.stride_;
    data_ = std::move(other.data_);
    map_ = other.map_;
    map_size_ = other.map_size_;
    fd_ = other.fd_;
    data_offset_ = other.data_offset_;
    base_ = other.base_;
    path_ = std::move(other.path_);
    backend_ = other.backend_;
    other.map_ = nullptr;
    other.map_size_ = 0;
    other.fd_ = -1;
    other.base_ = nullptr;
    other.rows_ = other.cols_ = other.stride_ = 0;
  }
  return *this;
}

Result<std::shared_ptr<const PointStore>> PointStore::Create(
    const Matrix& m, const PointStoreSpec& spec) {
  if (m.empty()) {
    return Status::InvalidArgument("PointStore::Create needs a non-empty matrix");
  }
  if (spec.backend == PointStoreSpec::Backend::kMemory) {
    return std::shared_ptr<const PointStore>(
        std::make_shared<PointStore>(m));
  }
  FAIRKM_ASSIGN_OR_RETURN(FileWriter writer,
                          FileWriter::Start(spec.path, m.rows(), m.cols()));
  for (size_t r = 0; r < m.rows(); ++r) {
    FAIRKM_RETURN_NOT_OK(writer.Append(m.Row(r)));
  }
  FAIRKM_RETURN_NOT_OK(writer.Finish());
  return Open(spec.path);
}

// ---------------------------------------------------------------------------
// FileWriter — streaming materializer with incremental rows CRC

Result<PointStore::FileWriter> PointStore::FileWriter::Start(
    const std::string& path, size_t rows, size_t cols) {
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument(
        "point store needs rows > 0 and cols > 0 (got " +
        std::to_string(rows) + " x " + std::to_string(cols) + ")");
  }
  if (!HostIsLittleEndian()) {
    return Status::NotImplemented(
        "point store files are little-endian; big-endian hosts unsupported");
  }
  const size_t stride = PaddedStride(cols);
  if (rows > SIZE_MAX / (stride * sizeof(double))) {
    return Status::InvalidArgument("point store dimensions overflow");
  }
  FAIRKM_RETURN_NOT_OK(fault::Check("pointstore.open"));

  FileWriter w;
  w.path_ = path;
  w.tmp_path_ = path + ".tmp";
  w.rows_ = rows;
  w.cols_ = cols;
  w.stride_ = stride;
  w.fd_ = ::open(w.tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (w.fd_ < 0) return ErrnoStatus("open", w.tmp_path_);

  const StoreLayout layout;
  const uint64_t rows_payload =
      layout.pad() + uint64_t{rows} * stride * sizeof(double);

  io::BinaryWriter prefix;
  prefix.PutU32(kStoreMagic);
  prefix.PutU32(kStoreVersion);
  prefix.PutU32(2);  // section count
  prefix.PutU32(MaskCrc32c(Crc32c(prefix.buffer().data(), kHeaderBytes - 4)));

  io::BinaryWriter meta_payload;
  meta_payload.PutU64(rows);
  meta_payload.PutU64(cols);
  meta_payload.PutU64(stride);
  io::BinaryWriter meta_frame;
  meta_frame.PutU32(kMetaTag);
  meta_frame.PutU64(kMetaPayloadBytes);
  uint32_t meta_crc =
      Crc32c(meta_frame.buffer().data(), meta_frame.buffer().size());
  meta_crc = Crc32cExtend(meta_crc, meta_payload.buffer().data(),
                          meta_payload.buffer().size());
  meta_frame.PutU32(MaskCrc32c(meta_crc));
  prefix.PutBytes(meta_frame.buffer().data(), meta_frame.buffer().size());
  prefix.PutBytes(meta_payload.buffer().data(), meta_payload.buffer().size());

  io::BinaryWriter rows_frame;
  rows_frame.PutU32(kRowsTag);
  rows_frame.PutU64(rows_payload);
  // The rows CRC accumulates as rows stream in; a zero placeholder holds its
  // slot and Finish() patches the real value before the rename.
  w.rows_crc_ = Crc32c(rows_frame.buffer().data(), kFramePrefixBytes);
  rows_frame.PutU32(0);
  prefix.PutBytes(rows_frame.buffer().data(), rows_frame.buffer().size());

  const std::string pad(layout.pad(), '\0');
  w.rows_crc_ = Crc32cExtend(w.rows_crc_, pad.data(), pad.size());
  prefix.PutBytes(pad.data(), pad.size());
  w.rows_crc_offset_ = layout.rows_crc_off();

  const std::string& image = prefix.buffer();
  Status st = WriteAll(w.fd_, image.data(), image.size(), "write " + w.tmp_path_);
  if (!st.ok()) return st;  // ~FileWriter cleans up the temp file
  w.bytes_written_ = image.size();
  w.row_buf_.assign(stride * sizeof(double), '\0');
  return Result<FileWriter>(std::move(w));
}

PointStore::FileWriter::~FileWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
    ::unlink(tmp_path_.c_str());
  }
}

PointStore::FileWriter::FileWriter(FileWriter&& other) noexcept
    : path_(std::move(other.path_)),
      tmp_path_(std::move(other.tmp_path_)),
      fd_(other.fd_),
      rows_(other.rows_),
      cols_(other.cols_),
      stride_(other.stride_),
      appended_(other.appended_),
      bytes_written_(other.bytes_written_),
      rows_crc_offset_(other.rows_crc_offset_),
      rows_crc_(other.rows_crc_),
      row_buf_(std::move(other.row_buf_)),
      finished_(other.finished_) {
  other.fd_ = -1;
}

PointStore::FileWriter& PointStore::FileWriter::operator=(
    FileWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
      ::unlink(tmp_path_.c_str());
    }
    path_ = std::move(other.path_);
    tmp_path_ = std::move(other.tmp_path_);
    fd_ = other.fd_;
    rows_ = other.rows_;
    cols_ = other.cols_;
    stride_ = other.stride_;
    appended_ = other.appended_;
    bytes_written_ = other.bytes_written_;
    rows_crc_offset_ = other.rows_crc_offset_;
    rows_crc_ = other.rows_crc_;
    row_buf_ = std::move(other.row_buf_);
    finished_ = other.finished_;
    other.fd_ = -1;
  }
  return *this;
}

Status PointStore::FileWriter::Append(const double* row) {
  if (fd_ < 0 || finished_) {
    return Status::Internal("Append on a finished or failed store writer");
  }
  // Per-row fault point: mid-stream I/O errors, injected disk-full, and the
  // crash harness's kill-mid-write all land here.
  FAIRKM_RETURN_NOT_OK(fault::Check("pointstore.append"));
  if (appended_ >= rows_) {
    return Status::InvalidArgument(
        "store writer declared " + std::to_string(rows_) + " rows");
  }
  for (size_t c = 0; c < cols_; ++c) {
    if (!std::isfinite(row[c])) {
      return Status::InvalidArgument(
          "point store row " + std::to_string(appended_) +
          " contains a non-finite value at column " + std::to_string(c));
    }
  }
  // row_buf_ padding lanes stay zero across Appends; only the data lanes
  // are rewritten, so each flushed row is the padded on-disk image.
  std::memcpy(row_buf_.data(), row, cols_ * sizeof(double));
  FAIRKM_RETURN_NOT_OK(
      WriteAll(fd_, row_buf_.data(), row_buf_.size(), "write " + tmp_path_));
  rows_crc_ = Crc32cExtend(rows_crc_, row_buf_.data(), row_buf_.size());
  bytes_written_ += row_buf_.size();
  ++appended_;
  return Status::OK();
}

Status PointStore::FileWriter::Finish() {
  if (fd_ < 0 || finished_) {
    return Status::Internal("Finish on a finished or failed store writer");
  }
  if (appended_ != rows_) {
    return Status::InvalidArgument(
        "store writer got " + std::to_string(appended_) + " of " +
        std::to_string(rows_) + " declared rows");
  }

  io::BinaryWriter crc;
  crc.PutU32(MaskCrc32c(rows_crc_));
  if (::pwrite(fd_, crc.buffer().data(), crc.buffer().size(),
               static_cast<off_t>(rows_crc_offset_)) !=
      static_cast<ssize_t>(crc.buffer().size())) {
    return ErrnoStatus("pwrite crc", tmp_path_);
  }

  // A short-write fault truncates the streamed image but reports success:
  // the process believes the store landed, and only Open()'s CRC walk can
  // tell otherwise — the crash-between-write-and-durability scenario.
  fault::FaultAction action;
  if (fault::Hit("pointstore.write", &action)) {
    if (action.kind == fault::Kind::kShortWrite) {
      const uint64_t keep = std::min<uint64_t>(action.keep_bytes, bytes_written_);
      if (::ftruncate(fd_, static_cast<off_t>(keep)) != 0) {
        return ErrnoStatus("ftruncate", tmp_path_);
      }
    } else if (!action.status.ok()) {
      return action.status;  // ~FileWriter unlinks the temp file
    }
  }

  Status st = fault::Check("pointstore.fsync");
  if (st.ok() && ::fsync(fd_) != 0) st = ErrnoStatus("fsync", tmp_path_);
  if (!st.ok()) return st;
  if (::close(fd_) != 0) {
    fd_ = -1;
    ::unlink(tmp_path_.c_str());
    return ErrnoStatus("close", tmp_path_);
  }
  fd_ = -1;

  // A torn-rename fault models a crash while replacing the destination on a
  // filesystem without atomic rename: the final path ends up holding a
  // truncated image and the call still reports success.
  if (fault::Hit("pointstore.rename", &action)) {
    if (action.kind == fault::Kind::kTornRename) {
      uint64_t keep = action.keep_bytes;
      if (keep == SIZE_MAX) keep = bytes_written_ / 2;
      keep = std::min<uint64_t>(keep, bytes_written_);
      if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
        Status rename_st = ErrnoStatus("rename", tmp_path_);
        ::unlink(tmp_path_.c_str());
        return rename_st;
      }
      if (::truncate(path_.c_str(), static_cast<off_t>(keep)) != 0) {
        return ErrnoStatus("truncate", path_);
      }
      finished_ = true;
      return Status::OK();
    }
    if (!action.status.ok()) {
      ::unlink(tmp_path_.c_str());
      return action.status;
    }
  }
  if (::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    Status rename_st = ErrnoStatus("rename", tmp_path_);
    ::unlink(tmp_path_.c_str());
    return rename_st;
  }
  io::SyncParentDirBestEffort(path_, "pointstore");
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Open — map read-only and verify every byte before trusting the shape

Result<std::shared_ptr<const PointStore>> PointStore::Open(
    const std::string& path) {
  if (!HostIsLittleEndian()) {
    return Status::NotImplemented(
        "point store files are little-endian; big-endian hosts unsupported");
  }
  FAIRKM_RETURN_NOT_OK(fault::Check("pointstore.read"));
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open", path);
  }
  struct stat sb;
  if (::fstat(fd, &sb) != 0) {
    Status st = ErrnoStatus("stat", path);
    ::close(fd);
    return st;
  }
  const size_t file_size = static_cast<size_t>(sb.st_size);
  const StoreLayout layout;
  if (file_size < layout.data_off) {
    ::close(fd);
    return Status::DataLoss("store file truncated before row data: " + path);
  }
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) {
    Status st = ErrnoStatus("mmap", path);
    ::close(fd);
    return st;
  }

  auto store = std::make_shared<PointStore>();
  store->map_ = map;
  store->map_size_ = file_size;
  // The mapping alone keeps the file alive; the descriptor is retained so
  // CheckBacking() can re-fstat the backing file before chunked reads.
  store->fd_ = fd;
  store->path_ = path;
  store->backend_ = PointStoreSpec::Backend::kMmap;
  const char* bytes = static_cast<const char*>(map);

  // Header: magic, CRC over the first 12 bytes, then version/section count.
  if (LoadU32(bytes) != kStoreMagic) {
    return Status::DataLoss("bad magic in " + path);
  }
  if (LoadU32(bytes + 12) != MaskCrc32c(Crc32c(bytes, kHeaderBytes - 4))) {
    return Status::DataLoss("header checksum mismatch in " + path);
  }
  const uint32_t version = LoadU32(bytes + 4);
  if (version > kStoreVersion) {
    return Status::InvalidArgument(
        "unsupported store version " + std::to_string(version) + " in " +
        path + " (this build reads <= " + std::to_string(kStoreVersion) + ")");
  }
  if (LoadU32(bytes + 8) != 2) {
    return Status::DataLoss("unexpected section count in " + path);
  }

  // Meta section: small, verify in one shot.
  const char* meta_frame = bytes + layout.meta_frame_off;
  if (LoadU32(meta_frame) != kMetaTag ||
      LoadU64(meta_frame + 4) != kMetaPayloadBytes) {
    return Status::DataLoss("bad meta section framing in " + path);
  }
  {
    uint32_t crc = Crc32c(meta_frame, kFramePrefixBytes);
    crc = Crc32cExtend(crc, bytes + layout.meta_payload_off, kMetaPayloadBytes);
    if (LoadU32(meta_frame + kFramePrefixBytes) != MaskCrc32c(crc)) {
      return Status::DataLoss("meta section checksum mismatch in " + path);
    }
  }
  const uint64_t rows = LoadU64(bytes + layout.meta_payload_off);
  const uint64_t cols = LoadU64(bytes + layout.meta_payload_off + 8);
  const uint64_t stride = LoadU64(bytes + layout.meta_payload_off + 16);
  if (rows == 0 || cols == 0 || stride != PaddedStride(cols) ||
      rows > SIZE_MAX / (stride * sizeof(double))) {
    return Status::DataLoss("implausible store shape in " + path);
  }

  // Rows section framing: the declared payload size and the file size must
  // both match the shape exactly — no truncation, no trailing bytes.
  const char* rows_frame = bytes + layout.rows_frame_off;
  const uint64_t row_bytes = rows * stride * sizeof(double);
  const uint64_t rows_payload = layout.pad() + row_bytes;
  if (LoadU32(rows_frame) != kRowsTag ||
      LoadU64(rows_frame + 4) != rows_payload) {
    return Status::DataLoss("bad rows section framing in " + path);
  }
  if (file_size != layout.rows_payload_off + rows_payload) {
    return Status::DataLoss("store file size mismatch in " + path);
  }

  // Rows CRC walk, chunked with eviction behind the cursor so verifying a
  // 10M-point store never pages the whole file into RSS at once. The same
  // pass rejects nonzero padding lanes: kernels dot-product the full
  // stride, so a foreign writer that left garbage there would silently
  // corrupt every accumulation.
  store->rows_ = rows;
  store->cols_ = cols;
  store->stride_ = stride;
  store->data_offset_ = layout.data_off;
  store->base_ = reinterpret_cast<const double*>(bytes + layout.data_off);
  if (reinterpret_cast<uintptr_t>(store->base_) % kKernelAlignment != 0) {
    return Status::DataLoss("misaligned row data in " + path);
  }
  uint32_t crc = Crc32c(rows_frame, kFramePrefixBytes);
  crc = Crc32cExtend(crc, bytes + layout.rows_payload_off, layout.pad());
  const size_t rows_per_chunk =
      std::max<size_t>(1, kWalkChunkBytes / (stride * sizeof(double)));
  for (size_t r = 0; r < rows; r += rows_per_chunk) {
    const size_t chunk_end = std::min(rows, r + rows_per_chunk);
    // Guarded probe: a file truncated since the fstat above would SIGBUS on
    // the first touch past the new EOF — re-validate before reading.
    FAIRKM_RETURN_NOT_OK(store->CheckBacking());
    crc = Crc32cExtend(crc, store->Row(r),
                       (chunk_end - r) * stride * sizeof(double));
    for (size_t i = r; i < chunk_end; ++i) {
      const double* p = store->Row(i);
      for (size_t c = cols; c < stride; ++c) {
        if (p[c] != 0.0) {
          return Status::DataLoss("nonzero padding lane in " + path);
        }
      }
    }
    store->EvictRows(r, chunk_end);
  }
  if (LoadU32(rows_frame + kFramePrefixBytes) != MaskCrc32c(crc)) {
    return Status::DataLoss("rows section checksum mismatch in " + path);
  }
  return std::shared_ptr<const PointStore>(std::move(store));
}

Status PointStore::AppendRow(const double* row, size_t cols) {
  if (backend_ != PointStoreSpec::Backend::kMemory) {
    return Status::InvalidArgument(
        "cannot append to the read-only mmap store \"" + path_ +
        "\": the store file is sealed (CRC-framed) and mapped read-only — "
        "online admit needs a growable store; materialize with --store=mem");
  }
  if (row == nullptr || cols != cols_) {
    return Status::InvalidArgument(
        "AppendRow expects " + std::to_string(cols_) + " columns, got " +
        std::to_string(cols));
  }
  for (size_t c = 0; c < cols; ++c) {
    if (!std::isfinite(row[c])) {
      return Status::InvalidArgument(
          "appended row contains a non-finite value at column " +
          std::to_string(c));
    }
  }
  data_.resize((rows_ + 1) * stride_, 0.0);
  double* dst = data_.data() + rows_ * stride_;
  for (size_t c = 0; c < cols; ++c) dst[c] = row[c];
  for (size_t c = cols; c < stride_; ++c) dst[c] = 0.0;
  ++rows_;
  base_ = data_.data();  // resize may have reallocated
  return Status::OK();
}

Status PointStore::SwapRemoveRow(size_t r) {
  if (backend_ != PointStoreSpec::Backend::kMemory) {
    return Status::InvalidArgument(
        "cannot remove rows from the read-only mmap store \"" + path_ +
        "\": the store file is sealed and mapped read-only — online retire "
        "needs a growable store; materialize with --store=mem");
  }
  if (r >= rows_) {
    return Status::InvalidArgument(
        "SwapRemoveRow index " + std::to_string(r) + " out of range (rows = " +
        std::to_string(rows_) + ")");
  }
  const size_t last = rows_ - 1;
  if (r != last) {
    std::memcpy(data_.data() + r * stride_, data_.data() + last * stride_,
                stride_ * sizeof(double));
  }
  data_.resize(last * stride_);
  --rows_;
  base_ = data_.data();
  return Status::OK();
}

Status PointStore::CheckBacking() const {
  if (backend_ != PointStoreSpec::Backend::kMmap || map_ == nullptr) {
    return Status::OK();
  }
  FAIRKM_RETURN_NOT_OK(fault::Check("pointstore.truncate"));
  struct stat sb;
  if (::fstat(fd_, &sb) != 0) return ErrnoStatus("stat", path_);
  if (static_cast<size_t>(sb.st_size) < map_size_) {
    return Status::DataLoss(
        "store file truncated under mmap: " + path_ + " (" +
        std::to_string(sb.st_size) + " bytes on disk, " +
        std::to_string(map_size_) + " mapped)");
  }
  return Status::OK();
}

void PointStore::EvictRows(size_t begin, size_t end) const {
  if (map_ == nullptr || begin >= end) return;
  FAIRKM_DCHECK(end <= rows_);
  const size_t page = PageSize();
  const uintptr_t map_base = reinterpret_cast<uintptr_t>(map_);
  uintptr_t lo = map_base + data_offset_ + begin * stride_ * sizeof(double);
  uintptr_t hi = map_base + data_offset_ + end * stride_ * sizeof(double);
  lo = (lo + page - 1) / page * page;  // only pages fully inside the span
  hi = hi / page * page;
  if (lo < hi) {
    ::madvise(reinterpret_cast<void*>(lo), hi - lo, MADV_DONTNEED);
  }
}

Status ValidateFiniteStore(const PointStore& store, const std::string& what) {
  const size_t stride_bytes = store.stride() * sizeof(double);
  const size_t rows_per_chunk =
      std::max<size_t>(1, stride_bytes > 0 ? kWalkChunkBytes / stride_bytes : 1);
  for (size_t r = 0; r < store.rows(); r += rows_per_chunk) {
    const size_t chunk_end = std::min(store.rows(), r + rows_per_chunk);
    FAIRKM_RETURN_NOT_OK(store.CheckBacking());
    for (size_t i = r; i < chunk_end; ++i) {
      const double* row = store.Row(i);
      for (size_t c = 0; c < store.cols(); ++c) {
        if (!std::isfinite(row[c])) {
          return Status::InvalidArgument(
              what + " contains a non-finite value at row " +
              std::to_string(i) + ", column " + std::to_string(c));
        }
      }
    }
    store.EvictRows(r, chunk_end);
  }
  return Status::OK();
}

}  // namespace data
}  // namespace fairkm
