// Runtime backend selection: cpuid (via __builtin_cpu_supports) picks the
// best compiled-in backend once, FAIRKM_FORCE_SCALAR / SetActiveBackend
// override it. The decision is cached in an atomic so the parallel sweep's
// workers can read kernels concurrently without synchronization.

#include "core/kernels/kernels.h"

#include <atomic>
#include <cstdlib>

namespace fairkm {
namespace core {
namespace kernels {

#if defined(FAIRKM_HAVE_AVX2)
const Backend& Avx2BackendImpl();  // Defined in kernels_avx2.cc.

const Backend* Avx2Backend() {
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported ? &Avx2BackendImpl() : nullptr;
}
#else
const Backend* Avx2Backend() { return nullptr; }
#endif

bool ScalarForcedByEnv() {
  const char* env = std::getenv("FAIRKM_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

const Backend& DispatchBackend(bool force_scalar) {
  if (!force_scalar) {
    if (const Backend* avx2 = Avx2Backend()) return *avx2;
  }
  return ScalarBackend();
}

namespace {
std::atomic<const Backend*> g_active{nullptr};
}  // namespace

const Backend& ActiveBackend() {
  const Backend* backend = g_active.load(std::memory_order_acquire);
  if (backend == nullptr) {
    backend = &DispatchBackend(ScalarForcedByEnv());
    g_active.store(backend, std::memory_order_release);
  }
  return *backend;
}

void SetActiveBackend(const Backend* backend) {
  g_active.store(backend, std::memory_order_release);
}

}  // namespace kernels
}  // namespace core
}  // namespace fairkm
