#include "online/online_fairkm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_set>
#include <utility>

#include "cluster/kmeans.h"
#include "common/fault_injection.h"
#include "common/io.h"
#include "serve/model_snapshot.h"

namespace fairkm {
namespace online {
namespace {

// "FKOL" little-endian, sibling of the "FKMC" solver checkpoint magic.
constexpr uint32_t kEngineMagic = 0x4C4F4B46;
constexpr uint32_t kEngineVersion = 1;
constexpr uint32_t kMetaTag = 1;
constexpr uint32_t kIdsTag = 2;
constexpr uint32_t kRowsTag = 3;
constexpr uint32_t kSensitiveTag = 4;
constexpr uint32_t kAssignmentTag = 5;

std::string EngineCheckpointPath(const std::string& dir) {
  return dir + "/online-engine.fkol";
}

std::string SolverCheckpointPath(const std::string& dir) {
  return dir + "/online-solver.fkmc";
}

// Mirrors the per-row structural validation of FairKMSolver::AssignImpl: the
// admitted batch's sensitive view must mirror the training view's attribute
// structure, cover every row, and stay inside the trained cardinalities.
Status ValidateAdmitSensitive(const data::SensitiveView& training,
                              const data::SensitiveView& incoming,
                              size_t rows) {
  if (incoming.categorical.size() != training.categorical.size() ||
      incoming.numeric.size() != training.numeric.size()) {
    return Status::InvalidArgument(
        "admitted sensitive view must mirror the training view's attribute "
        "structure (same categorical/numeric attributes, same order)");
  }
  for (size_t a = 0; a < training.categorical.size(); ++a) {
    const auto& attr = incoming.categorical[a];
    const int m = training.categorical[a].cardinality;
    if (attr.codes.size() != rows) {
      return Status::InvalidArgument(
          "admitted sensitive attribute \"" + training.categorical[a].name +
          "\" covers " + std::to_string(attr.codes.size()) +
          " rows, points have " + std::to_string(rows));
    }
    for (size_t i = 0; i < rows; ++i) {
      if (attr.codes[i] < 0 || attr.codes[i] >= m) {
        return Status::InvalidArgument(
            "attribute \"" + training.categorical[a].name + "\" code " +
            std::to_string(attr.codes[i]) + " at row " + std::to_string(i) +
            " outside the trained cardinality " + std::to_string(m));
      }
    }
  }
  for (size_t a = 0; a < training.numeric.size(); ++a) {
    const auto& attr = incoming.numeric[a];
    if (attr.values.size() != rows) {
      return Status::InvalidArgument(
          "admitted sensitive attribute \"" + training.numeric[a].name +
          "\" covers " + std::to_string(attr.values.size()) +
          " rows, points have " + std::to_string(rows));
    }
    for (size_t i = 0; i < rows; ++i) {
      if (!std::isfinite(attr.values[i])) {
        return Status::InvalidArgument(
            "admitted sensitive attribute \"" + training.numeric[a].name +
            "\" has a non-finite value at row " + std::to_string(i));
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<OnlineFairKM>> OnlineFairKM::Create(
    const data::Matrix& initial_points,
    const data::SensitiveView& initial_sensitive, const OnlineOptions& options,
    uint64_t seed, serve::AssignService* service) {
  if (initial_points.rows() == 0 || initial_points.cols() == 0) {
    return Status::InvalidArgument("initial points must not be empty");
  }
  if (!(options.drift.regression_tolerance >= 0)) {
    return Status::InvalidArgument(
        "drift.regression_tolerance must be non-negative and finite");
  }
  if (options.drift.resweep_max_sweeps <= 0) {
    return Status::InvalidArgument("drift.resweep_max_sweeps must be > 0");
  }
  FAIRKM_RETURN_NOT_OK(data::ValidateFinite(initial_points, "initial points"));
  FAIRKM_RETURN_NOT_OK(initial_sensitive.Validate(initial_points.rows()));

  std::unique_ptr<OnlineFairKM> engine(new OnlineFairKM(options, service));
  engine->store_ = std::make_shared<data::PointStore>(initial_points);
  engine->view_ = initial_sensitive;
  FAIRKM_ASSIGN_OR_RETURN(
      core::FairKMSolver solver,
      core::FairKMSolver::Create(
          std::shared_ptr<const data::PointStore>(engine->store_),
          &engine->view_, options.solver));
  engine->solver_ = std::make_unique<core::FairKMSolver>(std::move(solver));
  // Draw the initial assignment against the matrix (still in hand here), so
  // every KMeansInit strategy works even though the session is store-backed.
  Rng rng(seed);
  FAIRKM_ASSIGN_OR_RETURN(
      cluster::Assignment initial,
      cluster::MakeInitialAssignment(initial_points, options.solver.k,
                                     options.solver.init, &rng));
  FAIRKM_RETURN_NOT_OK(engine->solver_->Init(std::move(initial)));
  FAIRKM_ASSIGN_OR_RETURN(core::RunStop stop, engine->solver_->Run());
  (void)stop;

  std::lock_guard<std::mutex> lock(engine->mu_);
  engine->AssignInitialIdsLocked();
  engine->baseline_per_point_ =
      engine->solver_->Objective() /
      static_cast<double>(engine->row_ids_.size());
  FAIRKM_RETURN_NOT_OK(engine->PublishLocked());
  if (!options.checkpoint_dir.empty()) {
    FAIRKM_RETURN_NOT_OK(engine->CheckpointLocked());
  }
  return engine;
}

void OnlineFairKM::AssignInitialIdsLocked() {
  const size_t n = store_->rows();
  row_ids_.resize(n);
  id_to_row_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t id = next_id_++;
    row_ids_[i] = id;
    id_to_row_.emplace(id, i);
  }
}

Result<std::vector<uint64_t>> OnlineFairKM::Admit(
    const data::Matrix& points, const data::SensitiveView* sensitive) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t rows = points.rows();
  if (rows == 0) return std::vector<uint64_t>{};
  if (points.cols() != store_->cols()) {
    return Status::InvalidArgument(
        "admitted points have " + std::to_string(points.cols()) +
        " features, the live model has " + std::to_string(store_->cols()));
  }
  FAIRKM_RETURN_NOT_OK(data::ValidateFinite(points, "admitted points"));
  const size_t num_cat = view_.categorical.size();
  const size_t num_num = view_.numeric.size();
  const bool fairness_aware = num_cat + num_num > 0;
  if (fairness_aware) {
    if (sensitive == nullptr) {
      return Status::InvalidArgument(
          "the live model trains on sensitive attributes; Admit needs a "
          "matching sensitive view for the admitted rows");
    }
    FAIRKM_RETURN_NOT_OK(ValidateAdmitSensitive(view_, *sensitive, rows));
  }

  const core::FairKMState& st = solver_->state();
  const double lambda = solver_->lambda();
  const int k = solver_->k();
  const size_t d = store_->cols();
  std::vector<int32_t> codes(num_cat, 0);
  std::vector<double> values(num_num, 0.0);
  std::vector<uint64_t> ids;
  ids.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    const double* x = points.Row(i);
    for (size_t a = 0; a < num_cat; ++a) {
      codes[a] = sensitive->categorical[a].codes[i];
    }
    for (size_t a = 0; a < num_num; ++a) {
      values[a] = sensitive->numeric[a].values[i];
    }
    // Live Eq. 1 insertion cost: |C|/(|C|+1) d(x, mu_C)^2 + lambda *
    // fairness insertion delta, over the aggregates as already shifted by
    // the earlier rows of this batch. Empty clusters are not candidates;
    // ties break toward the smallest cluster id (same as AssignImpl).
    const data::AlignedVector& sums = st.cluster_sums();
    const size_t stride = st.stride();
    double best = 0.0;
    int best_cluster = -1;
    for (int c = 0; c < k; ++c) {
      const size_t cnt = st.cluster_size(c);
      if (cnt == 0) continue;
      const double inv = 1.0 / static_cast<double>(cnt);
      const double* s = sums.data() + static_cast<size_t>(c) * stride;
      double dist = 0.0;
      for (size_t j = 0; j < d; ++j) {
        const double diff = x[j] - s[j] * inv;
        dist += diff * diff;
      }
      double cost =
          static_cast<double>(cnt) / static_cast<double>(cnt + 1) * dist;
      if (fairness_aware) {
        cost += lambda *
                st.DeltaFairnessInsertion(codes.data(), values.data(), c);
      }
      if (best_cluster < 0 || cost < best) {
        best = cost;
        best_cluster = c;
      }
    }
    if (best_cluster < 0) {
      return Status::InvalidArgument(
          "live model has no non-empty cluster to admit into");
    }
    FAIRKM_RETURN_NOT_OK(store_->AppendRow(x, d));
    for (size_t a = 0; a < num_cat; ++a) {
      view_.categorical[a].codes.push_back(codes[a]);
    }
    for (size_t a = 0; a < num_num; ++a) {
      view_.numeric[a].values.push_back(values[a]);
    }
    FAIRKM_RETURN_NOT_OK(
        solver_->mutable_state()->AdmitAppended(best_cluster));
    const uint64_t id = next_id_++;
    id_to_row_.emplace(id, row_ids_.size());
    row_ids_.push_back(id);
    ids.push_back(id);
    ++admitted_;
  }
  FAIRKM_RETURN_NOT_OK(SyncAfterMembershipChangeLocked());
  FAIRKM_RETURN_NOT_OK(MaybeResweepLocked());
  return ids;
}

Status OnlineFairKM::Retire(const std::vector<uint64_t>& ids) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ids.empty()) return Status::OK();
  // Validate the whole batch before touching anything: unknown ids,
  // duplicates, or emptying the engine reject the call with no state change.
  std::unordered_set<uint64_t> unique(ids.begin(), ids.end());
  if (unique.size() != ids.size()) {
    return Status::InvalidArgument("duplicate id in the retire batch");
  }
  for (const uint64_t id : ids) {
    if (id_to_row_.find(id) == id_to_row_.end()) {
      return Status::NotFound("unknown (or already retired) point id " +
                              std::to_string(id));
    }
  }
  if (ids.size() >= row_ids_.size()) {
    return Status::InvalidArgument(
        "cannot retire every live point (the optimizer needs a non-empty "
        "point set)");
  }
  for (const uint64_t id : ids) {
    const size_t r = id_to_row_.find(id)->second;
    // State first (it reads row r and the last row's slots), then the store
    // swap, then the view and id-map mirrors of the same swap.
    FAIRKM_RETURN_NOT_OK(solver_->mutable_state()->RetireSwapped(r));
    FAIRKM_RETURN_NOT_OK(store_->SwapRemoveRow(r));
    const size_t last = row_ids_.size() - 1;
    for (auto& attr : view_.categorical) {
      attr.codes[r] = attr.codes[last];
      attr.codes.pop_back();
    }
    for (auto& attr : view_.numeric) {
      attr.values[r] = attr.values[last];
      attr.values.pop_back();
    }
    const uint64_t moved = row_ids_[last];
    row_ids_[r] = moved;
    row_ids_.pop_back();
    id_to_row_.erase(id);
    if (moved != id) id_to_row_[moved] = r;
    ++retired_;
  }
  FAIRKM_RETURN_NOT_OK(SyncAfterMembershipChangeLocked());
  return MaybeResweepLocked();
}

void OnlineFairKM::RefreshViewLocked() {
  // Re-derive the dataset-level distribution exactly the way a from-scratch
  // load over the surviving rows would: integer counts divided by n, and
  // numeric sums accumulated in row order 0..n-1 — the oracle's fresh view
  // must be able to reproduce these doubles bit-for-bit.
  const double n = static_cast<double>(row_ids_.size());
  for (auto& attr : view_.categorical) {
    std::vector<size_t> counts(static_cast<size_t>(attr.cardinality), 0);
    for (const int32_t code : attr.codes) {
      ++counts[static_cast<size_t>(code)];
    }
    for (int s = 0; s < attr.cardinality; ++s) {
      attr.dataset_fractions[static_cast<size_t>(s)] =
          static_cast<double>(counts[static_cast<size_t>(s)]) / n;
    }
  }
  for (auto& attr : view_.numeric) {
    double sum = 0.0;
    for (const double v : attr.values) sum += v;
    attr.dataset_mean = sum / n;
  }
}

Status OnlineFairKM::SyncAfterMembershipChangeLocked() {
  RefreshViewLocked();
  solver_->mutable_state()->RefreshDatasetStats();
  return solver_->SyncStoreGrowth();
}

Status OnlineFairKM::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status OnlineFairKM::FlushLocked() {
  cluster::Assignment assignment = solver_->state().assignment();
  FAIRKM_RETURN_NOT_OK(
      solver_->mutable_state()->RebuildFromStore(std::move(assignment)));
  // The canonical rebuild reset every drift accumulator, so the pruner's
  // stale per-point bounds would age against the wrong reference; rebuilding
  // it through the growth sync restarts them all stale (sound, just
  // unpruned until the next exact evaluation).
  FAIRKM_RETURN_NOT_OK(solver_->SyncStoreGrowth());
  ++flushes_;
  return Status::OK();
}

Status OnlineFairKM::MaybeResweepLocked() {
  double objective = solver_->Objective();
  // Shared fault point with core::SupervisedRunner so the fault-injection
  // gate can force a non-finite reading during online operation too.
  if (!fault::Check("supervisor.objective").ok()) {
    objective = std::numeric_limits<double>::quiet_NaN();
  }
  const double per_point =
      objective / static_cast<double>(row_ids_.size());
  const double limit =
      baseline_per_point_ + options_.drift.regression_tolerance *
                                std::max(1.0, std::abs(baseline_per_point_));
  // NaN fails the comparison, so a non-finite objective triggers too.
  if (per_point <= limit) return Status::OK();
  return ResweepLocked();
}

Status OnlineFairKM::ResweepLocked() {
  FAIRKM_RETURN_NOT_OK(FlushLocked());
  // Re-Init from the current assignment: resets the session's sweep counters
  // (so the per-response budget below is never starved by history) and the
  // convergence flag, while BuildAggregates over the already-canonical norm
  // cache keeps the objective exactly as flushed.
  cluster::Assignment warm = solver_->state().assignment();
  FAIRKM_RETURN_NOT_OK(solver_->Init(std::move(warm)));
  core::RunBudget budget;
  budget.max_sweeps = options_.drift.resweep_max_sweeps;
  FAIRKM_ASSIGN_OR_RETURN(core::RunStop stop, solver_->Run(budget));
  (void)stop;
  ++resweeps_;
  baseline_per_point_ =
      solver_->Objective() / static_cast<double>(row_ids_.size());
  FAIRKM_RETURN_NOT_OK(PublishLocked());
  if (!options_.checkpoint_dir.empty()) return CheckpointLocked();
  return Status::OK();
}

Status OnlineFairKM::TriggerResweep() {
  std::lock_guard<std::mutex> lock(mu_);
  return ResweepLocked();
}

Status OnlineFairKM::PublishSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return PublishLocked();
}

Status OnlineFairKM::PublishLocked() {
  ++generation_;
  if (service_ == nullptr) return Status::OK();
  FAIRKM_ASSIGN_OR_RETURN(std::shared_ptr<const serve::ModelSnapshot> snapshot,
                          serve::MakeModelSnapshot(*solver_, generation_));
  service_->Publish(std::move(snapshot));
  return Status::OK();
}

Status OnlineFairKM::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "no checkpoint_dir configured for this engine");
  }
  return CheckpointLocked();
}

Status OnlineFairKM::CheckpointLocked() {
  FAIRKM_RETURN_NOT_OK(io::CreateDirectories(options_.checkpoint_dir));
  // Solver first, engine file second: the engine file is the commit point
  // Recover() keys on, and it can fall back to its own saved assignment when
  // the solver file is lost between the two writes.
  FAIRKM_RETURN_NOT_OK(
      solver_->SaveCheckpoint(SolverCheckpointPath(options_.checkpoint_dir)));
  const size_t n = row_ids_.size();
  const size_t d = store_->cols();
  std::vector<io::Section> sections;

  io::BinaryWriter meta;
  meta.PutU64(next_id_);
  meta.PutU64(n);
  meta.PutU64(d);
  meta.PutU64(generation_);
  meta.PutDouble(baseline_per_point_);
  meta.PutU64(admitted_);
  meta.PutU64(retired_);
  meta.PutU64(resweeps_);
  meta.PutU64(flushes_);
  sections.push_back({kMetaTag, meta.Release()});

  io::BinaryWriter ids;
  ids.PutVector(row_ids_, [&ids](uint64_t id) { ids.PutU64(id); });
  sections.push_back({kIdsTag, ids.Release()});

  io::BinaryWriter rows;
  for (size_t i = 0; i < n; ++i) {
    const double* row = store_->Row(i);
    for (size_t j = 0; j < d; ++j) rows.PutDouble(row[j]);
  }
  sections.push_back({kRowsTag, rows.Release()});

  io::BinaryWriter sens;
  sens.PutU64(view_.categorical.size());
  for (const auto& attr : view_.categorical) {
    sens.PutString(attr.name);
    sens.PutU32(static_cast<uint32_t>(attr.cardinality));
    sens.PutDouble(attr.weight);
    for (const double f : attr.dataset_fractions) sens.PutDouble(f);
    for (const int32_t code : attr.codes) {
      sens.PutU32(static_cast<uint32_t>(code));
    }
  }
  sens.PutU64(view_.numeric.size());
  for (const auto& attr : view_.numeric) {
    sens.PutString(attr.name);
    sens.PutDouble(attr.weight);
    sens.PutDouble(attr.dataset_mean);
    for (const double v : attr.values) sens.PutDouble(v);
  }
  sections.push_back({kSensitiveTag, sens.Release()});

  io::BinaryWriter assign;
  for (const int32_t c : solver_->state().assignment()) {
    assign.PutU32(static_cast<uint32_t>(c));
  }
  sections.push_back({kAssignmentTag, assign.Release()});

  return io::WriteSectionFile(EngineCheckpointPath(options_.checkpoint_dir),
                              kEngineMagic, kEngineVersion, sections,
                              "online");
}

Result<std::unique_ptr<OnlineFairKM>> OnlineFairKM::Recover(
    const OnlineOptions& options, serve::AssignService* service) {
  if (options.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "Recover needs options.checkpoint_dir to point at a checkpointed "
        "engine");
  }
  FAIRKM_ASSIGN_OR_RETURN(
      io::SectionFile file,
      io::ReadSectionFile(EngineCheckpointPath(options.checkpoint_dir),
                          kEngineMagic, kEngineVersion, "online"));
  const io::Section* meta_sec = file.Find(kMetaTag);
  const io::Section* ids_sec = file.Find(kIdsTag);
  const io::Section* rows_sec = file.Find(kRowsTag);
  const io::Section* sens_sec = file.Find(kSensitiveTag);
  const io::Section* assign_sec = file.Find(kAssignmentTag);
  if (meta_sec == nullptr || ids_sec == nullptr || rows_sec == nullptr ||
      sens_sec == nullptr || assign_sec == nullptr) {
    return Status::DataLoss("online engine checkpoint is missing a section");
  }

  uint64_t next_id = 0, n64 = 0, d64 = 0, generation = 0;
  double baseline = 0.0;
  uint64_t admitted = 0, retired = 0, resweeps = 0, flushes = 0;
  {
    io::BinaryReader r(meta_sec->payload);
    FAIRKM_RETURN_NOT_OK(r.GetU64(&next_id));
    FAIRKM_RETURN_NOT_OK(r.GetU64(&n64));
    FAIRKM_RETURN_NOT_OK(r.GetU64(&d64));
    FAIRKM_RETURN_NOT_OK(r.GetU64(&generation));
    FAIRKM_RETURN_NOT_OK(r.GetDouble(&baseline));
    FAIRKM_RETURN_NOT_OK(r.GetU64(&admitted));
    FAIRKM_RETURN_NOT_OK(r.GetU64(&retired));
    FAIRKM_RETURN_NOT_OK(r.GetU64(&resweeps));
    FAIRKM_RETURN_NOT_OK(r.GetU64(&flushes));
    FAIRKM_RETURN_NOT_OK(r.ExpectFullyConsumed());
  }
  const size_t n = static_cast<size_t>(n64);
  const size_t d = static_cast<size_t>(d64);
  if (n == 0 || d == 0) {
    return Status::DataLoss("online engine checkpoint declares an empty set");
  }

  std::vector<uint64_t> row_ids;
  {
    io::BinaryReader r(ids_sec->payload);
    size_t count = 0;
    FAIRKM_RETURN_NOT_OK(r.GetCount(sizeof(uint64_t), &count));
    if (count != n) {
      return Status::DataLoss("id map does not cover the checkpointed rows");
    }
    row_ids.resize(n);
    for (size_t i = 0; i < n; ++i) {
      FAIRKM_RETURN_NOT_OK(r.GetU64(&row_ids[i]));
    }
    FAIRKM_RETURN_NOT_OK(r.ExpectFullyConsumed());
  }

  data::Matrix points(n, d);
  {
    io::BinaryReader r(rows_sec->payload);
    for (size_t i = 0; i < n; ++i) {
      double* row = points.Row(i);
      for (size_t j = 0; j < d; ++j) {
        FAIRKM_RETURN_NOT_OK(r.GetDouble(&row[j]));
      }
    }
    FAIRKM_RETURN_NOT_OK(r.ExpectFullyConsumed());
  }

  data::SensitiveView view;
  {
    io::BinaryReader r(sens_sec->payload);
    size_t num_cat = 0;
    FAIRKM_RETURN_NOT_OK(r.GetCount(/*elem_size=*/1, &num_cat));
    view.categorical.resize(num_cat);
    for (auto& attr : view.categorical) {
      FAIRKM_RETURN_NOT_OK(r.GetString(&attr.name));
      uint32_t card = 0;
      FAIRKM_RETURN_NOT_OK(r.GetU32(&card));
      if (card == 0 || card > (uint32_t{1} << 24)) {
        return Status::DataLoss("checkpointed cardinality out of range");
      }
      attr.cardinality = static_cast<int>(card);
      FAIRKM_RETURN_NOT_OK(r.GetDouble(&attr.weight));
      attr.dataset_fractions.resize(card);
      for (uint32_t s = 0; s < card; ++s) {
        FAIRKM_RETURN_NOT_OK(r.GetDouble(&attr.dataset_fractions[s]));
      }
      attr.codes.resize(n);
      for (size_t i = 0; i < n; ++i) {
        uint32_t code = 0;
        FAIRKM_RETURN_NOT_OK(r.GetU32(&code));
        if (code >= card) {
          return Status::DataLoss("checkpointed code outside cardinality");
        }
        attr.codes[i] = static_cast<int32_t>(code);
      }
    }
    size_t num_num = 0;
    FAIRKM_RETURN_NOT_OK(r.GetCount(/*elem_size=*/1, &num_num));
    view.numeric.resize(num_num);
    for (auto& attr : view.numeric) {
      FAIRKM_RETURN_NOT_OK(r.GetString(&attr.name));
      FAIRKM_RETURN_NOT_OK(r.GetDouble(&attr.weight));
      FAIRKM_RETURN_NOT_OK(r.GetDouble(&attr.dataset_mean));
      attr.values.resize(n);
      for (size_t i = 0; i < n; ++i) {
        FAIRKM_RETURN_NOT_OK(r.GetDouble(&attr.values[i]));
      }
    }
    FAIRKM_RETURN_NOT_OK(r.ExpectFullyConsumed());
  }

  cluster::Assignment assignment(n, 0);
  {
    io::BinaryReader r(assign_sec->payload);
    for (size_t i = 0; i < n; ++i) {
      uint32_t c = 0;
      FAIRKM_RETURN_NOT_OK(r.GetU32(&c));
      assignment[i] = static_cast<int32_t>(c);
    }
    FAIRKM_RETURN_NOT_OK(r.ExpectFullyConsumed());
  }
  FAIRKM_RETURN_NOT_OK(
      cluster::ValidateAssignment(assignment, n, options.solver.k));

  std::unique_ptr<OnlineFairKM> engine(new OnlineFairKM(options, service));
  engine->store_ = std::make_shared<data::PointStore>(points);
  engine->view_ = std::move(view);
  FAIRKM_ASSIGN_OR_RETURN(
      core::FairKMSolver solver,
      core::FairKMSolver::Create(
          std::shared_ptr<const data::PointStore>(engine->store_),
          &engine->view_, options.solver));
  engine->solver_ = std::make_unique<core::FairKMSolver>(std::move(solver));
  // Prefer the bit-exact solver checkpoint; a lost or torn solver file
  // degrades to a canonical warm-start rebuild from the saved assignment
  // (same membership, canonical floats) instead of failing the recovery.
  Status restored = engine->solver_->LoadCheckpoint(
      SolverCheckpointPath(options.checkpoint_dir));
  if (!restored.ok()) {
    FAIRKM_RETURN_NOT_OK(engine->solver_->Init(std::move(assignment)));
  }

  std::lock_guard<std::mutex> lock(engine->mu_);
  engine->row_ids_ = std::move(row_ids);
  engine->id_to_row_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!engine->id_to_row_.emplace(engine->row_ids_[i], i).second) {
      return Status::DataLoss("duplicate id in the checkpointed id map");
    }
    if (engine->row_ids_[i] >= next_id) {
      return Status::DataLoss("checkpointed id collides with the id counter");
    }
  }
  engine->next_id_ = next_id;
  engine->generation_ = generation;
  engine->baseline_per_point_ = baseline;
  engine->admitted_ = admitted;
  engine->retired_ = retired;
  engine->resweeps_ = resweeps;
  engine->flushes_ = flushes;
  FAIRKM_RETURN_NOT_OK(engine->PublishLocked());
  return engine;
}

OnlineStats OnlineFairKM::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  OnlineStats s;
  s.admitted = admitted_;
  s.retired = retired_;
  s.resweeps = resweeps_;
  s.flushes = flushes_;
  s.generation = generation_;
  s.live_rows = row_ids_.size();
  s.last_objective = solver_->Objective();
  s.baseline_per_point = baseline_per_point_;
  return s;
}

std::vector<uint64_t> OnlineFairKM::LiveIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return row_ids_;
}

data::Matrix OnlineFairKM::SurvivingPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = row_ids_.size();
  const size_t d = store_->cols();
  data::Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(m.Row(i), store_->Row(i), d * sizeof(double));
  }
  return m;
}

data::SensitiveView OnlineFairKM::SurvivingSensitive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

cluster::Assignment OnlineFairKM::CurrentAssignment() const {
  std::lock_guard<std::mutex> lock(mu_);
  return solver_->state().assignment();
}

}  // namespace online
}  // namespace fairkm
