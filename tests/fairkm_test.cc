#include "core/fairkm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/kmeans.h"
#include "metrics/fairness.h"
#include "test_util.h"

namespace fairkm {
namespace core {
namespace {

using cluster::Assignment;

// Blobs whose membership correlates with a sensitive attribute: each blob is
// value-skewed, so S-blind clustering is unfair by construction.
struct SkewedWorld {
  data::Matrix points;
  data::SensitiveView sensitive;
};

SkewedWorld MakeSkewedWorld(uint64_t seed, int blobs = 3, int per_blob = 40) {
  Rng rng(seed);
  SkewedWorld w;
  // Modest blob separation (grid 3) keeps K-Means move deltas on a scale
  // where the paper's lambda heuristic gives the fairness term real
  // influence, mirroring the min-max-normalized experiment pipelines.
  w.points = testutil::MakeBlobs(blobs, per_blob, 3, &rng, /*spread=*/0.4,
                                 /*grid=*/3.0);
  std::vector<int32_t> codes(static_cast<size_t>(blobs) * per_blob);
  for (int b = 0; b < blobs; ++b) {
    for (int p = 0; p < per_blob; ++p) {
      // 80% of a blob carries value (b mod 2); 20% the other value.
      const bool major = rng.UniformDouble() < 0.8;
      codes[static_cast<size_t>(b) * per_blob + p] =
          major ? (b % 2) : 1 - (b % 2);
    }
  }
  w.sensitive = testutil::MakeView({testutil::MakeCategorical(codes, 2, "group")});
  return w;
}

TEST(FairKMTest, SuggestLambdaIsPaperHeuristic) {
  EXPECT_DOUBLE_EQ(SuggestLambda(15682, 5), (15682.0 / 5) * (15682.0 / 5));
  EXPECT_NEAR(SuggestLambda(161, 5), 1036.84, 0.01);
}

TEST(FairKMTest, ValidatesOptions) {
  SkewedWorld w = MakeSkewedWorld(1);
  FairKMOptions opt;
  Rng rng(1);
  EXPECT_FALSE(testutil::RunFairKMSession(w.points, w.sensitive, opt, nullptr).ok());
  opt.max_iterations = 0;
  EXPECT_FALSE(testutil::RunFairKMSession(w.points, w.sensitive, opt, &rng).ok());
  opt.max_iterations = 30;
  opt.minibatch_size = -1;
  EXPECT_FALSE(testutil::RunFairKMSession(w.points, w.sensitive, opt, &rng).ok());
  opt.minibatch_size = 0;
  opt.k = 0;
  EXPECT_FALSE(testutil::RunFairKMSession(w.points, w.sensitive, opt, &rng).ok());
}

TEST(FairKMTest, RowCountMismatchRejected) {
  SkewedWorld w = MakeSkewedWorld(2);
  data::SensitiveView short_view = testutil::MakeView(
      {testutil::MakeCategorical({0, 1, 0}, 2)});
  FairKMOptions opt;
  Rng rng(1);
  EXPECT_FALSE(testutil::RunFairKMSession(w.points, short_view, opt, &rng).ok());
}

TEST(FairKMTest, LambdaZeroBehavesLikeKMeans) {
  // With lambda = 0 the method is a move-based K-Means: the K-Means term of
  // the result must be a local optimum comparable to Lloyd's.
  SkewedWorld w = MakeSkewedWorld(3);
  FairKMOptions opt;
  opt.k = 3;
  opt.lambda = 0.0;
  opt.max_iterations = 60;
  Rng rng(11);
  auto fair = testutil::RunFairKMSession(w.points, w.sensitive, opt, &rng).ValueOrDie();
  cluster::KMeansOptions kopt;
  kopt.k = 3;
  kopt.init = cluster::KMeansInit::kRandomAssignment;
  Rng rng2(11);
  auto lloyd = cluster::RunKMeans(w.points, kopt, &rng2).ValueOrDie();
  // Both should essentially recover the 3 blobs; objectives within 10%.
  EXPECT_NEAR(fair.kmeans_objective, lloyd.kmeans_objective,
              0.1 * lloyd.kmeans_objective + 1e-9);
  EXPECT_NEAR(fair.fairness_term * 0.0, 0.0, 1e-15);
}

TEST(FairKMTest, ObjectiveHistoryIsNonIncreasing) {
  SkewedWorld w = MakeSkewedWorld(5);
  FairKMOptions opt;
  opt.k = 3;
  opt.lambda = SuggestLambda(w.points.rows(), 3);
  Rng rng(13);
  auto result = testutil::RunFairKMSession(w.points, w.sensitive, opt, &rng).ValueOrDie();
  ASSERT_GE(result.objective_history.size(), 1u);
  for (size_t i = 1; i < result.objective_history.size(); ++i) {
    EXPECT_LE(result.objective_history[i], result.objective_history[i - 1] + 1e-6)
        << "sweep " << i;
  }
}

TEST(FairKMTest, ImprovesFairnessOverBlindKMeans) {
  SkewedWorld w = MakeSkewedWorld(7);
  const int k = 3;
  FairKMOptions opt;
  opt.k = k;
  // The blob geometry is coarser than min-max-scaled data; a stronger lambda
  // (still within the paper's smooth operating range, Fig. 7) makes the
  // direction of the trade-off unambiguous for a deterministic test.
  opt.lambda = 20.0 * SuggestLambda(w.points.rows(), k);
  Rng rng(17);
  auto fair = testutil::RunFairKMSession(w.points, w.sensitive, opt, &rng).ValueOrDie();

  cluster::KMeansOptions kopt;
  kopt.k = k;
  kopt.init = cluster::KMeansInit::kRandomAssignment;
  Rng rng2(17);
  auto blind = cluster::RunKMeans(w.points, kopt, &rng2).ValueOrDie();

  auto fair_metrics = metrics::EvaluateFairness(w.sensitive, fair.assignment, k);
  auto blind_metrics = metrics::EvaluateFairness(w.sensitive, blind.assignment, k);
  EXPECT_LT(fair_metrics.mean.ae, blind_metrics.mean.ae);
  EXPECT_LT(fair_metrics.mean.aw, blind_metrics.mean.aw);
  // Fairness costs some coherence, but not everything.
  EXPECT_GE(fair.kmeans_objective, blind.kmeans_objective - 1e-9);
}

TEST(FairKMTest, ResultFieldsConsistent) {
  SkewedWorld w = MakeSkewedWorld(9);
  FairKMOptions opt;
  opt.k = 3;
  Rng rng(19);
  auto r = testutil::RunFairKMSession(w.points, w.sensitive, opt, &rng).ValueOrDie();
  EXPECT_TRUE(cluster::ValidateAssignment(r.assignment, w.points.rows(), 3).ok());
  EXPECT_DOUBLE_EQ(r.kmeans_term, r.kmeans_objective);
  EXPECT_NEAR(r.total_objective, r.kmeans_term + r.lambda_used * r.fairness_term,
              1e-6);
  EXPECT_GT(r.lambda_used, 0.0);  // Auto lambda was applied.
  size_t total = 0;
  for (size_t s : r.sizes) total += s;
  EXPECT_EQ(total, w.points.rows());
  // Scratch fairness evaluation agrees.
  EXPECT_NEAR(r.fairness_term,
              ComputeFairnessTerm(w.sensitive, r.assignment, 3, opt.fairness), 1e-12);
}

TEST(FairKMTest, DeterministicGivenSeed) {
  SkewedWorld w = MakeSkewedWorld(11);
  FairKMOptions opt;
  opt.k = 3;
  Rng r1(23), r2(23);
  auto a = testutil::RunFairKMSession(w.points, w.sensitive, opt, &r1).ValueOrDie();
  auto b = testutil::RunFairKMSession(w.points, w.sensitive, opt, &r2).ValueOrDie();
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(FairKMTest, HigherLambdaYieldsFairerClusters) {
  SkewedWorld w = MakeSkewedWorld(13);
  const int k = 3;
  double prev_fairness_term = -1.0;
  for (double lambda : {0.0, SuggestLambda(w.points.rows(), k),
                        20.0 * SuggestLambda(w.points.rows(), k)}) {
    FairKMOptions opt;
    opt.k = k;
    opt.lambda = lambda;
    Rng rng(29);
    auto r = testutil::RunFairKMSession(w.points, w.sensitive, opt, &rng).ValueOrDie();
    if (prev_fairness_term >= 0) {
      EXPECT_LE(r.fairness_term, prev_fairness_term + 1e-9)
          << "lambda " << lambda;
    }
    prev_fairness_term = r.fairness_term;
  }
}

TEST(FairKMTest, NumericSensitiveAttributeBalancesClusterMeans) {
  // Points cluster on x; the numeric sensitive value is correlated with x.
  Rng rng(31);
  const size_t n = 80;
  data::Matrix pts(n, 1);
  std::vector<double> age(n);
  for (size_t i = 0; i < n; ++i) {
    const bool left = i < n / 2;
    pts.At(i, 0) = (left ? 0.0 : 8.0) + rng.Normal(0, 0.5);
    age[i] = (left ? 30.0 : 50.0) + rng.Normal(0, 3.0);
  }
  data::SensitiveView view;
  view.numeric.push_back(testutil::MakeNumeric(age, "age"));

  FairKMOptions opt;
  opt.k = 2;
  opt.lambda = 0.0;
  Rng r1(37);
  auto blind = testutil::RunFairKMSession(pts, view, opt, &r1).ValueOrDie();
  opt.lambda = 50.0 * SuggestLambda(n, 2);
  Rng r2(37);
  auto fair = testutil::RunFairKMSession(pts, view, opt, &r2).ValueOrDie();
  EXPECT_LT(fair.fairness_term, blind.fairness_term);
}

TEST(FairKMTest, AttributeWeightSteersTradeoffs) {
  // Two binary attributes; give one a large weight and check that its
  // deviation gets prioritized relative to an unweighted run.
  Rng rng(41);
  const size_t n = 90;
  data::Matrix pts = testutil::MakeBlobs(3, 30, 2, &rng);
  std::vector<int32_t> a_codes(n), b_codes(n);
  for (size_t i = 0; i < n; ++i) {
    a_codes[i] = static_cast<int32_t>((i / 30) % 2);  // Blob-aligned (unfair).
    b_codes[i] = static_cast<int32_t>(i % 2);         // Already fair-ish.
  }
  auto attr_a = testutil::MakeCategorical(a_codes, 2, "a");
  auto attr_b = testutil::MakeCategorical(b_codes, 2, "b");

  attr_a.weight = 1.0;
  data::SensitiveView even = testutil::MakeView({attr_a, attr_b});
  attr_a.weight = 25.0;
  data::SensitiveView weighted = testutil::MakeView({attr_a, attr_b});

  FairKMOptions opt;
  opt.k = 3;
  opt.lambda = SuggestLambda(n, 3);
  Rng r1(43), r2(43);
  auto r_even = testutil::RunFairKMSession(pts, even, opt, &r1).ValueOrDie();
  auto r_weighted = testutil::RunFairKMSession(pts, weighted, opt, &r2).ValueOrDie();

  auto fairness_even = metrics::EvaluateFairness(even, r_even.assignment, 3);
  auto fairness_weighted = metrics::EvaluateFairness(even, r_weighted.assignment, 3);
  // Attribute "a" (index 0) should be at least as fair under weighting.
  EXPECT_LE(fairness_weighted.per_attribute[0].ae,
            fairness_even.per_attribute[0].ae + 0.02);
}

TEST(FairKMTest, MiniBatchModeStillConvergesAndIsFair) {
  SkewedWorld w = MakeSkewedWorld(17);
  FairKMOptions opt;
  opt.k = 3;
  opt.lambda = 20.0 * SuggestLambda(w.points.rows(), 3);
  opt.minibatch_size = 16;
  opt.max_iterations = 60;
  Rng rng(47);
  auto r = testutil::RunFairKMSession(w.points, w.sensitive, opt, &rng).ValueOrDie();
  EXPECT_TRUE(cluster::ValidateAssignment(r.assignment, w.points.rows(), 3).ok());

  cluster::KMeansOptions kopt;
  kopt.k = 3;
  kopt.init = cluster::KMeansInit::kRandomAssignment;
  Rng rng2(47);
  auto blind = cluster::RunKMeans(w.points, kopt, &rng2).ValueOrDie();
  auto fair_m = metrics::EvaluateFairness(w.sensitive, r.assignment, 3);
  auto blind_m = metrics::EvaluateFairness(w.sensitive, blind.assignment, 3);
  EXPECT_LT(fair_m.mean.ae, blind_m.mean.ae);
}

TEST(FairKMTest, EmptySensitiveViewDegeneratesGracefully) {
  Rng gen(51);
  data::Matrix pts = testutil::MakeBlobs(2, 20, 2, &gen);
  data::SensitiveView empty;
  FairKMOptions opt;
  opt.k = 2;
  opt.lambda = 123.0;
  Rng rng(53);
  auto r = testutil::RunFairKMSession(pts, empty, opt, &rng).ValueOrDie();
  EXPECT_EQ(r.fairness_term, 0.0);
  EXPECT_GT(r.kmeans_term, 0.0);
}

class FairKMKSweep : public ::testing::TestWithParam<int> {};

TEST_P(FairKMKSweep, ValidResultsAcrossK) {
  SkewedWorld w = MakeSkewedWorld(61);
  FairKMOptions opt;
  opt.k = GetParam();
  Rng rng(59);
  auto r = testutil::RunFairKMSession(w.points, w.sensitive, opt, &rng).ValueOrDie();
  EXPECT_TRUE(cluster::ValidateAssignment(r.assignment, w.points.rows(), opt.k).ok());
  EXPECT_GE(r.fairness_term, 0.0);
  EXPECT_GT(r.iterations, 0);
}

INSTANTIATE_TEST_SUITE_P(Ks, FairKMKSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace core
}  // namespace fairkm
