#include "core/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/io.h"
#include "common/timer.h"
#include "core/checkpoint_io.h"

namespace fairkm {
namespace core {

namespace {

// I/O-class codes are transient-or-degradable: the rollback + demotion
// machinery can heal them. Anything else (kInvalidArgument, kInternal) is a
// logic error the supervisor must surface, not retry.
bool IsIOFaultCode(StatusCode code) {
  return code == StatusCode::kIOError || code == StatusCode::kDataLoss ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kUnavailable;
}

}  // namespace

SupervisedRunner::SupervisedRunner(const data::Matrix* points,
                                   const data::SensitiveView* sensitive,
                                   FairKMOptions options,
                                   data::PointStoreSpec store_spec,
                                   SupervisorPolicy policy)
    : points_(points),
      sensitive_(sensitive),
      options_(std::move(options)),
      spec_(std::move(store_spec)),
      policy_(std::move(policy)) {}

Result<SupervisedRunner> SupervisedRunner::Create(
    const data::Matrix* points, const data::SensitiveView* sensitive,
    const FairKMOptions& options, const data::PointStoreSpec& store_spec,
    const SupervisorPolicy& policy) {
  if (points == nullptr) {
    return Status::InvalidArgument(
        "supervisor: a points matrix is required (it is the rebuild source "
        "when the demotion ladder abandons an mmap store)");
  }
  if (sensitive == nullptr) {
    return Status::InvalidArgument("supervisor: sensitive view is null");
  }
  FAIRKM_RETURN_NOT_OK(options.Validate());
  if (store_spec.backend == data::PointStoreSpec::Backend::kMmap &&
      store_spec.path.empty()) {
    return Status::InvalidArgument("supervisor: mmap store spec needs a path");
  }
  if (policy.max_rollbacks < 0) {
    return Status::InvalidArgument("supervisor: max_rollbacks must be >= 0");
  }
  if (policy.checkpoint_keep < 1) {
    return Status::InvalidArgument("supervisor: checkpoint_keep must be >= 1");
  }
  if (policy.checkpoint_every < 0) {
    return Status::InvalidArgument(
        "supervisor: checkpoint_every must be >= 0");
  }
  if (!(policy.regression_tolerance >= 0.0)) {
    return Status::InvalidArgument(
        "supervisor: regression_tolerance must be >= 0 and finite");
  }
  if (policy.backoff_multiplier < 1.0 || policy.initial_backoff_seconds < 0 ||
      policy.max_backoff_seconds < 0) {
    return Status::InvalidArgument("supervisor: invalid backoff policy");
  }
  return SupervisedRunner(points, sensitive, options, store_spec, policy);
}

Status SupervisedRunner::BuildSolver() {
  solver_.reset();
  if (spec_.backend == data::PointStoreSpec::Backend::kMmap) {
    FAIRKM_ASSIGN_OR_RETURN(std::shared_ptr<const data::PointStore> store,
                            data::PointStore::Create(*points_, spec_));
    FAIRKM_ASSIGN_OR_RETURN(
        FairKMSolver solver,
        FairKMSolver::Create(std::move(store), sensitive_, options_));
    solver_ = std::make_unique<FairKMSolver>(std::move(solver));
  } else {
    FAIRKM_ASSIGN_OR_RETURN(
        FairKMSolver solver,
        FairKMSolver::Create(points_, sensitive_, options_));
    solver_ = std::make_unique<FairKMSolver>(std::move(solver));
  }
  return Status::OK();
}

void SupervisedRunner::BackoffSleep(int attempt) {
  // serve::RetryPolicy full-jitter semantics (re-implemented: core cannot
  // link serve): sleep ~ U[0, min(initial * mult^(attempt-1), max)].
  if (policy_.initial_backoff_seconds <= 0.0) return;
  double ceiling = policy_.initial_backoff_seconds;
  for (int i = 1; i < attempt; ++i) {
    ceiling *= policy_.backoff_multiplier;
    if (ceiling >= policy_.max_backoff_seconds) break;
  }
  ceiling = std::min(ceiling, policy_.max_backoff_seconds);
  const double sleep_seconds = jitter_rng_.UniformDouble() * ceiling;
  if (sleep_seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep_seconds));
  }
}

bool SupervisedRunner::DemoteOnce() {
  if (policy_.allow_store_demotion &&
      spec_.backend == data::PointStoreSpec::Backend::kMmap) {
    spec_ = data::PointStoreSpec{};  // in-memory backend
    ++stats_.store_demotions;
    return true;
  }
  if (policy_.allow_pruning_demotion && options_.enable_pruning) {
    options_.enable_pruning = false;
    ++stats_.pruning_demotions;
    return true;
  }
  if (policy_.allow_parallel_demotion &&
      options_.sweep_mode == SweepMode::kParallelSnapshot) {
    options_.sweep_mode = SweepMode::kSerial;
    ++stats_.parallel_demotions;
    return true;
  }
  return false;  // ladder exhausted
}

Status SupervisedRunner::RestoreLastGood() {
  // Durable checkpoints first: this is the path that quarantines corrupt
  // frames, and with checkpoint_every == 1 (the default) the newest file IS
  // the last good state. Any failure falls through — the in-memory snapshot
  // or a fresh re-init still heals the run.
  if (!policy_.checkpoint_dir.empty() && policy_.checkpoint_every > 0) {
    Status restored = solver_->ResumeFromCheckpointDir(policy_.checkpoint_dir);
    if (restored.ok()) return Status::OK();
  }
  if (last_good_.has_value()) {
    Status restored = solver_->Restore(*last_good_);
    if (restored.ok()) return Status::OK();
  }
  // Last resort: restart the trajectory from the original seed.
  last_good_.reset();
  has_best_ = false;
  return solver_->Init(seed_);
}

Status SupervisedRunner::HandleFault(FaultKind kind, const Status& cause) {
  switch (kind) {
    case FaultKind::kNonFinite:
      ++stats_.nonfinite_faults;
      break;
    case FaultKind::kRegression:
      ++stats_.regression_faults;
      break;
    case FaultKind::kStall:
      ++stats_.stall_faults;
      break;
    case FaultKind::kIO:
      ++stats_.io_faults;
      ++io_fault_streak_;
      break;
  }
  if (stats_.rollbacks >= policy_.max_rollbacks) {
    return Status::Internal(
        "supervisor: rollback budget exhausted (" +
        std::to_string(policy_.max_rollbacks) +
        " recoveries spent) — last fault: " + cause.ToString());
  }
  ++stats_.rollbacks;
  BackoffSleep(stats_.rollbacks);

  if (kind == FaultKind::kIO && policy_.io_faults_per_demotion > 0 &&
      io_fault_streak_ >= policy_.io_faults_per_demotion) {
    if (DemoteOnce()) {
      io_fault_streak_ = 0;
      // Rebuild with the downgraded configuration; a warm start from the
      // last good assignment carries the optimization progress across the
      // rebuild (the old snapshot no longer matches the session shape).
      std::optional<cluster::Assignment> warm;
      if (last_good_.has_value()) warm = last_good_->state.assignment;
      last_good_.reset();
      FAIRKM_RETURN_NOT_OK(BuildSolver());
      if (warm.has_value()) {
        FAIRKM_RETURN_NOT_OK(solver_->Init(std::move(*warm)));
      } else {
        FAIRKM_RETURN_NOT_OK(solver_->Init(seed_));
      }
      FAIRKM_ASSIGN_OR_RETURN(SolverCheckpoint snap, solver_->Snapshot());
      last_good_ = std::move(snap);
      return Status::OK();
    }
  }
  return RestoreLastGood();
}

Result<RunStop> SupervisedRunner::Run(uint64_t seed, int max_sweeps,
                                      double max_seconds) {
  seed_ = seed;
  stats_ = SupervisorStats{};
  last_good_.reset();
  has_best_ = false;
  io_fault_streak_ = 0;
  jitter_rng_ = Rng(seed ^ 0x9e3779b97f4a7c15ull);
  const uint64_t dirsync_failures_before = io::DirFsyncFailures();

  // Build the session, walking the demotion ladder on I/O failures — an
  // mmap store that cannot be written/verified degrades to the in-memory
  // backend instead of failing the run.
  {
    Status built = BuildSolver();
    while (!built.ok()) {
      if (!IsIOFaultCode(built.code())) return built;
      ++stats_.io_faults;
      ++io_fault_streak_;
      if (stats_.rollbacks >= policy_.max_rollbacks) {
        return Status::Internal(
            "supervisor: rollback budget exhausted (" +
            std::to_string(policy_.max_rollbacks) +
            " recoveries spent) — last fault: " + built.ToString());
      }
      ++stats_.rollbacks;
      BackoffSleep(stats_.rollbacks);
      if (policy_.io_faults_per_demotion > 0 &&
          io_fault_streak_ >= policy_.io_faults_per_demotion && DemoteOnce()) {
        io_fault_streak_ = 0;
      }
      built = BuildSolver();
    }
  }

  // Start the session: resume from the newest durable checkpoint when the
  // policy asks for it, falling back to a fresh Init(seed).
  bool resumed = false;
  if (!policy_.checkpoint_dir.empty() && policy_.resume) {
    Status restored = solver_->ResumeFromCheckpointDir(policy_.checkpoint_dir);
    if (restored.code() == StatusCode::kDataLoss) {
      // Every frame was corrupt; ResumeFromCheckpointDir has quarantined
      // them, so the retry sees an empty directory (kNotFound) and the run
      // falls through to a fresh Init instead of dying.
      ++stats_.io_faults;
      restored = solver_->ResumeFromCheckpointDir(policy_.checkpoint_dir);
    }
    if (restored.ok()) {
      resumed = true;
    } else if (restored.code() != StatusCode::kNotFound) {
      return restored;
    }
  }
  if (!resumed) {
    FAIRKM_RETURN_NOT_OK(solver_->Init(seed));
  }
  {
    const double objective = solver_->Objective();
    if (std::isfinite(objective)) {
      best_objective_ = objective;
      has_best_ = true;
    }
    FAIRKM_ASSIGN_OR_RETURN(SolverCheckpoint snap, solver_->Snapshot());
    last_good_ = std::move(snap);
  }

  Timer run_timer;
  int last_checkpoint_sweep = -1;
  RunStop stop = RunStop::kIterationCap;
  while (true) {
    if (max_sweeps >= 0 && stats_.sweeps_total >= max_sweeps) {
      stop = RunStop::kSweepBudget;
      break;
    }
    if (max_seconds >= 0.0 && run_timer.ElapsedSeconds() >= max_seconds) {
      stop = RunStop::kTimeBudget;
      break;
    }

    // Backing probe: a store file truncated under the mapping must surface
    // here as a typed fault, not as a SIGBUS inside the sweep kernels.
    if (solver_->store() != nullptr) {
      Status backing = solver_->store()->CheckBacking();
      if (!backing.ok()) {
        FAIRKM_RETURN_NOT_OK(HandleFault(FaultKind::kIO, backing));
        continue;
      }
    }

    const int sweeps_before = solver_->sweeps_completed();
    Timer sweep_timer;
    // Delay-kind injection point inside the timed window (stall tests).
    (void)fault::Check("supervisor.stall");
    Result<bool> moved = solver_->Sweep();
    const double sweep_wall = sweep_timer.ElapsedSeconds();
    if (!moved.ok()) {
      if (IsIOFaultCode(moved.status().code())) {
        FAIRKM_RETURN_NOT_OK(HandleFault(FaultKind::kIO, moved.status()));
        continue;
      }
      return moved.status();
    }
    if (solver_->sweeps_completed() == sweeps_before) {
      // No-op sweep: the session already converged or hit max_iterations.
      stop = solver_->converged() ? RunStop::kConverged
                                  : RunStop::kIterationCap;
      break;
    }

    // --- Divergence watchdog.
    double objective = solver_->Objective();
    if (!fault::Check("supervisor.objective").ok()) {
      objective = std::numeric_limits<double>::quiet_NaN();
    }
    if (!std::isfinite(objective)) {
      FAIRKM_RETURN_NOT_OK(HandleFault(
          FaultKind::kNonFinite,
          Status::Internal("non-finite objective after sweep " +
                           std::to_string(solver_->sweeps_completed()))));
      continue;
    }
    if (has_best_ &&
        objective > best_objective_ +
                        policy_.regression_tolerance *
                            std::max(1.0, std::abs(best_objective_))) {
      FAIRKM_RETURN_NOT_OK(HandleFault(
          FaultKind::kRegression,
          Status::Internal("objective regressed: " +
                           std::to_string(objective) + " vs best " +
                           std::to_string(best_objective_))));
      continue;
    }
    if (policy_.stall_timeout_seconds > 0.0 &&
        sweep_wall > policy_.stall_timeout_seconds) {
      FAIRKM_RETURN_NOT_OK(HandleFault(
          FaultKind::kStall,
          Status::DeadlineExceeded("sweep took " +
                                   std::to_string(sweep_wall) +
                                   " s (stall timeout " +
                                   std::to_string(
                                       policy_.stall_timeout_seconds) +
                                   " s)")));
      continue;
    }

    // --- Healthy sweep: advance the good state.
    io_fault_streak_ = 0;
    ++stats_.sweeps_total;
    if (!has_best_ || objective < best_objective_) {
      best_objective_ = objective;
      has_best_ = true;
    }
    FAIRKM_ASSIGN_OR_RETURN(SolverCheckpoint snap, solver_->Snapshot());
    last_good_ = std::move(snap);

    if (!policy_.checkpoint_dir.empty() && policy_.checkpoint_every > 0 &&
        solver_->sweeps_completed() % policy_.checkpoint_every == 0) {
      Status saved = SaveDurableCheckpoint();
      if (!saved.ok()) {
        FAIRKM_RETURN_NOT_OK(HandleFault(FaultKind::kIO, saved));
        continue;
      }
      last_checkpoint_sweep = solver_->sweeps_completed();
    }

    if (!moved.ValueOrDie()) {
      // This sweep completed with zero moves — convergence.
      stop = RunStop::kConverged;
      break;
    }
  }

  // Final checkpoint at whatever point the run stopped, so a restart never
  // loses more than the last sweep. Best effort: the run itself is done.
  if (!policy_.checkpoint_dir.empty() && policy_.checkpoint_every > 0 &&
      solver_->initialized() &&
      solver_->sweeps_completed() != last_checkpoint_sweep &&
      solver_->sweeps_completed() > 0) {
    Status saved = SaveDurableCheckpoint();
    if (!saved.ok()) ++stats_.io_faults;
  }

  stats_.best_objective =
      has_best_ ? best_objective_ : std::numeric_limits<double>::quiet_NaN();
  stats_.converged = solver_->converged();
  stats_.dir_fsync_failures =
      io::DirFsyncFailures() - dirsync_failures_before;
  return stop;
}

Status SupervisedRunner::SaveDurableCheckpoint() {
  FAIRKM_RETURN_NOT_OK(io::CreateDirectories(policy_.checkpoint_dir));
  const std::string path = policy_.checkpoint_dir + "/" +
                           CheckpointFileName(solver_->sweeps_completed());
  FAIRKM_RETURN_NOT_OK(solver_->SaveCheckpoint(path));
  ++stats_.checkpoints_saved;
  return PruneCheckpointDir(policy_.checkpoint_dir, policy_.checkpoint_keep);
}

Result<FairKMResult> SupervisedRunner::CurrentResult() const {
  if (solver_ == nullptr || !solver_->initialized()) {
    return Status::InvalidArgument("supervisor: no run has been started");
  }
  return solver_->CurrentResult();
}

}  // namespace core
}  // namespace fairkm
