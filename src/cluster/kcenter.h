// Fair k-center clustering for data summarization, after Kleindessner,
// Awasthi & Morgenstern, "Fair k-Center Clustering for Data Summarization"
// (arXiv:1901.08628) — related-work family [13] of the FairKM paper.
//
// Plain k-center: greedy farthest-point traversal (Gonzalez), a 2-approx.
// Fair k-center: the number of centers per protected group is prescribed
// (e.g. proportional to the dataset mix), so the returned summary is a
// demographically representative subset. This implementation uses the
// natural greedy heuristic over the farthest-point ordering: walk points in
// farthest-first order and take a point as a center while its group still
// has quota; a final pass fills any unfilled quota with the farthest
// remaining points of the missing groups.

#ifndef FAIRKM_CLUSTER_KCENTER_H_
#define FAIRKM_CLUSTER_KCENTER_H_

#include <vector>

#include "cluster/types.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace cluster {

/// \brief Output of (fair) k-center: chosen center indices, the induced
/// assignment, and the covering radius.
struct KCenterResult {
  std::vector<size_t> centers;  ///< Row indices of the chosen centers.
  Assignment assignment;        ///< Nearest-center index (into `centers`).
  double radius = 0.0;          ///< max_i d(i, nearest center).
};

/// \brief Greedy 2-approximate k-center (Gonzalez farthest-point).
/// The first center is drawn uniformly via `rng`.
Result<KCenterResult> RunKCenter(const data::Matrix& points, int k, Rng* rng);

/// \brief Fair k-center: exactly `quota[g]` centers from each value g of the
/// attribute; sum(quota) defines k. Every quota must be satisfiable.
Result<KCenterResult> RunFairKCenter(const data::Matrix& points,
                                     const data::CategoricalSensitive& attr,
                                     const std::vector<int>& quota, Rng* rng);

/// \brief Quota proportional to the dataset mix (largest-remainder rounding
/// to sum exactly k) — the paper [13]'s "fair summary" setting.
std::vector<int> ProportionalQuota(const data::CategoricalSensitive& attr, int k);

}  // namespace cluster
}  // namespace fairkm

#endif  // FAIRKM_CLUSTER_KCENTER_H_
