#include "core/objective.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace fairkm {
namespace core {
namespace {

using cluster::Assignment;

TEST(FairnessTermTest, EmptySensitiveViewIsZero) {
  data::SensitiveView view;
  EXPECT_EQ(ComputeFairnessTerm(view, {0, 1, 0}, 2), 0.0);
}

TEST(FairnessTermTest, PerfectlyFairClusteringDeviationZero) {
  // Two clusters, each 50/50 on a binary attribute that is 50/50 overall.
  auto attr = testutil::MakeCategorical({0, 1, 0, 1}, 2);
  data::SensitiveView view = testutil::MakeView({attr});
  EXPECT_NEAR(ComputeFairnessTerm(view, {0, 0, 1, 1}, 2), 0.0, 1e-15);
}

TEST(FairnessTermTest, FullySkewedClusteringMatchesHandComputation) {
  // n = 4, k = 2, binary attribute 50/50; clusters are value-pure.
  // Each cluster: (|C|/n)^2 * [(1-.5)^2 + (0-.5)^2] / 2 = (1/4) * 0.5 / 2.
  auto attr = testutil::MakeCategorical({0, 0, 1, 1}, 2);
  data::SensitiveView view = testutil::MakeView({attr});
  const double per_cluster = 0.25 * 0.5 / 2.0;
  EXPECT_NEAR(ComputeFairnessTerm(view, {0, 0, 1, 1}, 2), 2 * per_cluster, 1e-12);
}

TEST(FairnessTermTest, DomainNormalizationDividesByCardinality) {
  auto attr = testutil::MakeCategorical({0, 0, 1, 2}, 3);
  data::SensitiveView view = testutil::MakeView({attr});
  Assignment a = {0, 1, 0, 1};
  FairnessTermConfig with, without;
  without.normalize_domain = false;
  const double v_with = ComputeFairnessTerm(view, a, 2, with);
  const double v_without = ComputeFairnessTerm(view, a, 2, without);
  EXPECT_NEAR(v_without, 3.0 * v_with, 1e-12);
}

TEST(FairnessTermTest, AttributeWeightsScaleLinearly) {
  auto attr = testutil::MakeCategorical({0, 0, 1, 1}, 2);
  attr.weight = 1.0;
  data::SensitiveView v1 = testutil::MakeView({attr});
  attr.weight = 2.5;
  data::SensitiveView v2 = testutil::MakeView({attr});
  Assignment a = {0, 0, 1, 1};
  EXPECT_NEAR(ComputeFairnessTerm(v2, a, 2), 2.5 * ComputeFairnessTerm(v1, a, 2),
              1e-12);
}

TEST(FairnessTermTest, EmptyClusterContributesNothing) {
  auto attr = testutil::MakeCategorical({0, 1, 0, 1}, 2);
  data::SensitiveView view = testutil::MakeView({attr});
  // k = 3 with cluster 2 empty must equal k = 2 exactly.
  EXPECT_NEAR(ComputeFairnessTerm(view, {0, 0, 1, 1}, 3),
              ComputeFairnessTerm(view, {0, 0, 1, 1}, 2), 1e-15);
}

TEST(FairnessTermTest, NumericAttributeMatchesEq22) {
  // Two clusters: {1, 3} and {5, 7}; dataset mean 4.
  // dev = (2/4)^2 (2-4)^2 + (2/4)^2 (6-4)^2 = 0.25*4 + 0.25*4 = 2.
  data::SensitiveView view;
  view.numeric.push_back(testutil::MakeNumeric({1, 3, 5, 7}));
  EXPECT_NEAR(ComputeFairnessTerm(view, {0, 0, 1, 1}, 2), 2.0, 1e-12);
}

TEST(FairnessTermTest, NumericFairClustersScoreZero) {
  data::SensitiveView view;
  view.numeric.push_back(testutil::MakeNumeric({1, 7, 1, 7}));
  // Both clusters have mean 4 == dataset mean.
  EXPECT_NEAR(ComputeFairnessTerm(view, {0, 0, 1, 1}, 2), 0.0, 1e-15);
}

TEST(FairnessTermTest, MixedCategoricalAndNumeric) {
  auto cat = testutil::MakeCategorical({0, 0, 1, 1}, 2);
  data::SensitiveView view = testutil::MakeView({cat});
  view.numeric.push_back(testutil::MakeNumeric({1, 3, 5, 7}));
  Assignment a = {0, 0, 1, 1};
  data::SensitiveView cat_only = testutil::MakeView({cat});
  data::SensitiveView num_only;
  num_only.numeric.push_back(testutil::MakeNumeric({1, 3, 5, 7}));
  EXPECT_NEAR(ComputeFairnessTerm(view, a, 2),
              ComputeFairnessTerm(cat_only, a, 2) + ComputeFairnessTerm(num_only, a, 2),
              1e-12);
}

TEST(ClusterScaleTest, EmptyClusterScaleIsZero) {
  EXPECT_EQ(ClusterScale(ClusterWeighting::kSquaredFraction, 0, 10), 0.0);
  EXPECT_EQ(ClusterScale(ClusterWeighting::kFractional, 0, 10), 0.0);
  EXPECT_EQ(ClusterScale(ClusterWeighting::kUnweighted, 0, 10), 0.0);
}

TEST(ClusterScaleTest, FormulasMatchDefinitions) {
  // scale * sum u^2 must equal W(c) * sum (u/c)^2.
  const size_t n = 20, c = 4;
  const double u = 1.7;
  const double frac_term = (u / c) * (u / c);
  EXPECT_NEAR(ClusterScale(ClusterWeighting::kSquaredFraction, c, n) * u * u,
              (static_cast<double>(c) / n) * (static_cast<double>(c) / n) * frac_term,
              1e-15);
  EXPECT_NEAR(ClusterScale(ClusterWeighting::kFractional, c, n) * u * u,
              (static_cast<double>(c) / n) * frac_term, 1e-15);
  EXPECT_NEAR(ClusterScale(ClusterWeighting::kUnweighted, c, n) * u * u, frac_term,
              1e-15);
}

TEST(FairnessTermTest, SquaredWeightingPrefersBalancedClusterSizes) {
  // The paper's §4.1 motivation for the (|C|/n)^2 weighting (Eq. 6): holding
  // the per-cluster *fractional* deviation fixed, the squared-fraction
  // weighting strictly prefers balanced cluster sizes over a giant+tiny
  // split, while the |C|-proportional weighting is indifferent and thus
  // tolerates degenerate size profiles. We verify via the closed-form
  // per-cluster scale: weighted term = scale(c) * sum_s u_s^2 with
  // u_s = c * (fr_C(s) - q_s), i.e. sum u^2 grows as c^2 * D for fixed
  // fractional deviation D.
  const size_t n = 64;
  const double D = 0.1;  // Fixed per-cluster fractional deviation.
  auto weighted_total = [&](ClusterWeighting w, size_t c1, size_t c2) {
    auto term = [&](size_t c) {
      const double sum_u2 = static_cast<double>(c) * static_cast<double>(c) * D;
      return ClusterScale(w, c, n) * sum_u2;
    };
    return term(c1) + term(c2);
  };
  // Squared-fraction: balanced sizes strictly better.
  EXPECT_LT(weighted_total(ClusterWeighting::kSquaredFraction, 32, 32),
            weighted_total(ClusterWeighting::kSquaredFraction, 62, 2));
  // |C|-weighted: indifferent to the size profile (the degeneracy the paper
  // argues against).
  EXPECT_NEAR(weighted_total(ClusterWeighting::kFractional, 32, 32),
              weighted_total(ClusterWeighting::kFractional, 62, 2), 1e-12);
}

TEST(ObjectiveTest, CombinesTerms) {
  Rng rng(7);
  data::Matrix pts = testutil::MakeBlobs(2, 10, 2, &rng);
  auto attr = testutil::MakeCategorical(testutil::RandomCodes(20, 2, &rng), 2);
  data::SensitiveView view = testutil::MakeView({attr});
  Assignment a(20);
  for (size_t i = 0; i < 20; ++i) a[i] = static_cast<int32_t>(i / 10);
  ObjectiveValue v = ComputeObjective(pts, view, a, 2);
  EXPECT_GT(v.kmeans_term, 0.0);
  EXPECT_GE(v.fairness_term, 0.0);
  EXPECT_NEAR(v.Total(100.0), v.kmeans_term + 100.0 * v.fairness_term, 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace fairkm
