#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/string_util.h"

namespace fairkm {
namespace data {

std::vector<double> CategoricalColumn::Fractions() const {
  std::vector<double> fractions(labels.size(), 0.0);
  if (codes.empty()) return fractions;
  for (int32_t c : codes) {
    FAIRKM_DCHECK(c >= 0 && c < cardinality());
    fractions[static_cast<size_t>(c)] += 1.0;
  }
  const double inv = 1.0 / static_cast<double>(codes.size());
  for (double& f : fractions) f *= inv;
  return fractions;
}

Status Dataset::CheckLength(size_t len, const std::string& name) {
  if (!has_columns_) {
    num_rows_ = len;
    has_columns_ = true;
    return Status::OK();
  }
  if (len != num_rows_) {
    return Status::InvalidArgument("column '" + name + "' has " + std::to_string(len) +
                                   " rows, dataset has " + std::to_string(num_rows_));
  }
  return Status::OK();
}

Status Dataset::AddNumeric(std::string name, std::vector<double> values) {
  for (const auto& c : numeric_) {
    if (c.name == name) return Status::AlreadyExists("numeric column '" + name + "'");
  }
  // Reject NaN/Inf at ingestion: a non-finite coordinate would otherwise
  // propagate through every centroid and distance downstream. Checked
  // before CheckLength, which commits the dataset's row count.
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      return Status::InvalidArgument("column '" + name +
                                     "' has a non-finite value at row " +
                                     std::to_string(i));
    }
  }
  FAIRKM_RETURN_NOT_OK(CheckLength(values.size(), name));
  numeric_.push_back(NumericColumn{std::move(name), std::move(values)});
  return Status::OK();
}

Status Dataset::AddCategorical(std::string name, std::vector<int32_t> codes,
                               std::vector<std::string> labels) {
  for (const auto& c : categorical_) {
    if (c.name == name) {
      return Status::AlreadyExists("categorical column '" + name + "'");
    }
  }
  FAIRKM_RETURN_NOT_OK(CheckLength(codes.size(), name));
  const int32_t card = static_cast<int32_t>(labels.size());
  for (int32_t code : codes) {
    if (code < 0 || code >= card) {
      return Status::OutOfRange("code " + std::to_string(code) + " out of range for '" +
                                name + "' (cardinality " + std::to_string(card) + ")");
    }
  }
  categorical_.push_back(
      CategoricalColumn{std::move(name), std::move(codes), std::move(labels)});
  return Status::OK();
}

Result<const NumericColumn*> Dataset::FindNumeric(const std::string& name) const {
  for (const auto& c : numeric_) {
    if (c.name == name) return &c;
  }
  return Status::NotFound("numeric column '" + name + "'");
}

Result<const CategoricalColumn*> Dataset::FindCategorical(
    const std::string& name) const {
  for (const auto& c : categorical_) {
    if (c.name == name) return &c;
  }
  return Status::NotFound("categorical column '" + name + "'");
}

Result<Matrix> Dataset::ToMatrix(const std::vector<std::string>& column_names) const {
  Matrix out(num_rows_, column_names.size());
  for (size_t j = 0; j < column_names.size(); ++j) {
    FAIRKM_ASSIGN_OR_RETURN(const NumericColumn* col, FindNumeric(column_names[j]));
    for (size_t i = 0; i < num_rows_; ++i) out.At(i, j) = col->values[i];
  }
  return out;
}

std::vector<std::string> Dataset::NumericNames() const {
  std::vector<std::string> names;
  names.reserve(numeric_.size());
  for (const auto& c : numeric_) names.push_back(c.name);
  return names;
}

Dataset Dataset::SelectRows(const std::vector<size_t>& indices) const {
  Dataset out;
  for (const auto& col : numeric_) {
    std::vector<double> values;
    values.reserve(indices.size());
    for (size_t idx : indices) {
      FAIRKM_DCHECK(idx < num_rows_);
      values.push_back(col.values[idx]);
    }
    out.AddNumeric(col.name, std::move(values)).Abort();
  }
  for (const auto& col : categorical_) {
    std::vector<int32_t> codes;
    codes.reserve(indices.size());
    for (size_t idx : indices) codes.push_back(col.codes[idx]);
    out.AddCategorical(col.name, std::move(codes), col.labels).Abort();
  }
  // A dataset with zero columns still carries a row count of zero, which is
  // the correct degenerate behaviour here.
  return out;
}

CsvTable Dataset::ToCsv() const {
  CsvTable table;
  for (const auto& c : numeric_) table.header.push_back(c.name);
  for (const auto& c : categorical_) table.header.push_back(c.name);
  table.rows.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    std::vector<std::string> row;
    row.reserve(table.header.size());
    for (const auto& c : numeric_) row.push_back(FormatDouble(c.values[i], 6));
    for (const auto& c : categorical_) {
      row.push_back(c.labels[static_cast<size_t>(c.codes[i])]);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

Result<Dataset> Dataset::FromCsv(const CsvTable& table) {
  Dataset out;
  const size_t n = table.num_rows();
  for (size_t j = 0; j < table.num_cols(); ++j) {
    // Numeric if every field parses as a double.
    bool numeric = n > 0;
    std::vector<double> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      double v = 0;
      if (!ParseDouble(table.rows[i][j], &v)) {
        numeric = false;
        break;
      }
      values.push_back(v);
    }
    if (numeric) {
      FAIRKM_RETURN_NOT_OK(out.AddNumeric(table.header[j], std::move(values)));
      continue;
    }
    // Categorical: deterministic codes via sorted label dictionary.
    std::map<std::string, int32_t> dict;
    for (size_t i = 0; i < n; ++i) dict.emplace(table.rows[i][j], 0);
    std::vector<std::string> labels;
    labels.reserve(dict.size());
    for (auto& [label, code] : dict) {
      code = static_cast<int32_t>(labels.size());
      labels.push_back(label);
    }
    std::vector<int32_t> codes;
    codes.reserve(n);
    for (size_t i = 0; i < n; ++i) codes.push_back(dict[table.rows[i][j]]);
    FAIRKM_RETURN_NOT_OK(
        out.AddCategorical(table.header[j], std::move(codes), std::move(labels)));
  }
  return out;
}

}  // namespace data
}  // namespace fairkm
