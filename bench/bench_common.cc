#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/args.h"
#include "common/thread_pool.h"

namespace fairkm {
namespace bench {

BenchEnv LoadBenchEnv() {
  BenchEnv env;
  env.fast = EnvInt("FAIRKM_BENCH_FAST", 0) != 0;
  env.seeds = static_cast<size_t>(EnvInt("FAIRKM_BENCH_SEEDS", env.fast ? 2 : 5));
  env.adult_rows = static_cast<size_t>(
      EnvInt("FAIRKM_BENCH_ADULT_ROWS", env.fast ? 2000 : 0));
  env.threads = static_cast<size_t>(
      EnvInt("FAIRKM_BENCH_THREADS",
             static_cast<int64_t>(ThreadPool::DefaultThreadCount())));
  env.seeds = std::max<size_t>(1, env.seeds);
  return env;
}

const exp::ExperimentData& AdultData(const BenchEnv& env) {
  static std::unique_ptr<exp::ExperimentData> cached;
  static size_t cached_rows = static_cast<size_t>(-1);
  if (!cached || cached_rows != env.adult_rows) {
    exp::AdultExperimentOptions options;
    options.subsample = env.adult_rows;
    cached = std::make_unique<exp::ExperimentData>(
        exp::LoadAdultExperiment(options).ValueOrDie());
    cached_rows = env.adult_rows;
  }
  return *cached;
}

const exp::ExperimentData& KinematicsData() {
  static std::unique_ptr<exp::ExperimentData> cached;
  if (!cached) {
    cached = std::make_unique<exp::ExperimentData>(
        exp::LoadKinematicsExperiment().ValueOrDie());
  }
  return *cached;
}

void PrintBanner(const std::string& title, const BenchEnv& env) {
  std::printf("==================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("seeds per configuration: %zu%s | adult rows: %s | threads: %zu\n",
              env.seeds, env.fast ? " (FAST mode)" : "",
              env.adult_rows == 0 ? "15682 (full)"
                                  : std::to_string(env.adult_rows).c_str(),
              env.threads);
  std::printf("(paper protocol: 100 seeds; set FAIRKM_BENCH_SEEDS=100 to match)\n");
  std::printf("==================================================================\n");
}

double ImprovementPercent(double fairkm, double baseline_a, double baseline_b) {
  const double best = std::min(baseline_a, baseline_b);
  if (best == 0.0) return 0.0;
  return 100.0 * (best - fairkm) / best;
}

}  // namespace bench
}  // namespace fairkm
