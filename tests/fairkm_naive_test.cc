// Equivalence tests: the fast incremental FairKM and the naive brute-force
// reference must make identical decisions from identical starting points.

#include "core/fairkm_naive.h"

#include <gtest/gtest.h>

#include "core/fairkm.h"
#include "test_util.h"

// This suite is an intentional caller of the deprecated RunFairKM wrapper:
// it is (part of) the oracle pinning the wrapper's bit-identical-to-solver
// contract, so the deprecation warning is suppressed rather than ported away.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"


namespace fairkm {
namespace core {
namespace {

struct World {
  data::Matrix points;
  data::SensitiveView sensitive;
};

World MakeWorld(uint64_t seed, size_t n, int dim, int cardinality) {
  Rng rng(seed);
  World w;
  w.points = data::Matrix(n, static_cast<size_t>(dim));
  for (size_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      w.points.At(i, static_cast<size_t>(j)) = rng.Normal(0, 3.0);
    }
  }
  w.sensitive = testutil::MakeView({testutil::MakeCategorical(
      testutil::RandomCodes(n, cardinality, &rng), cardinality)});
  return w;
}

class EquivalenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceSweep, FastAndNaiveAgreeOnAssignmentsAndObjective) {
  World w = MakeWorld(GetParam(), 36, 2, 3);
  FairKMOptions opt;
  opt.k = 3;
  opt.lambda = SuggestLambda(36, 3);
  opt.max_iterations = 12;

  Rng r_fast(1000 + GetParam());
  Rng r_naive(1000 + GetParam());
  auto fast = RunFairKM(w.points, w.sensitive, opt, &r_fast).ValueOrDie();
  auto naive = RunFairKMNaive(w.points, w.sensitive, opt, &r_naive).ValueOrDie();

  EXPECT_EQ(fast.assignment, naive.assignment);
  EXPECT_NEAR(fast.kmeans_term, naive.kmeans_term, 1e-6);
  EXPECT_NEAR(fast.fairness_term, naive.fairness_term, 1e-10);
  EXPECT_EQ(fast.iterations, naive.iterations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceSweep,
                         ::testing::Range(uint64_t{1}, uint64_t{7}));

TEST(NaiveFairKMTest, LambdaZeroEquivalenceHoldsToo) {
  World w = MakeWorld(42, 30, 2, 4);
  FairKMOptions opt;
  opt.k = 2;
  opt.lambda = 0.0;
  opt.max_iterations = 10;
  Rng r1(7), r2(7);
  auto fast = RunFairKM(w.points, w.sensitive, opt, &r1).ValueOrDie();
  auto naive = RunFairKMNaive(w.points, w.sensitive, opt, &r2).ValueOrDie();
  EXPECT_EQ(fast.assignment, naive.assignment);
}

TEST(NaiveFairKMTest, WeightingModesAgree) {
  for (int mode = 0; mode < 3; ++mode) {
    World w = MakeWorld(77 + static_cast<uint64_t>(mode), 24, 2, 2);
    FairKMOptions opt;
    opt.k = 2;
    opt.lambda = 50.0;
    opt.max_iterations = 8;
    opt.fairness.weighting = static_cast<ClusterWeighting>(mode);
    Rng r1(9), r2(9);
    auto fast = RunFairKM(w.points, w.sensitive, opt, &r1).ValueOrDie();
    auto naive = RunFairKMNaive(w.points, w.sensitive, opt, &r2).ValueOrDie();
    EXPECT_EQ(fast.assignment, naive.assignment) << "weighting mode " << mode;
  }
}

TEST(NaiveFairKMTest, NumericSensitiveAttributesAgree) {
  Rng rng(31);
  const size_t n = 24;
  data::Matrix points(n, 2);
  std::vector<double> income(n);
  for (size_t i = 0; i < n; ++i) {
    points.At(i, 0) = rng.Normal(0, 2);
    points.At(i, 1) = rng.Normal(0, 2);
    income[i] = rng.Normal(50, 15);
  }
  data::SensitiveView view;
  view.numeric.push_back(testutil::MakeNumeric(income, "income"));
  FairKMOptions opt;
  opt.k = 3;
  opt.lambda = 40.0;
  opt.max_iterations = 10;
  Rng r1(11), r2(11);
  auto fast = RunFairKM(points, view, opt, &r1).ValueOrDie();
  auto naive = RunFairKMNaive(points, view, opt, &r2).ValueOrDie();
  EXPECT_EQ(fast.assignment, naive.assignment);
  EXPECT_NEAR(fast.fairness_term, naive.fairness_term, 1e-9);
}

TEST(NaiveFairKMTest, RejectsMiniBatch) {
  World w = MakeWorld(1, 10, 2, 2);
  FairKMOptions opt;
  opt.minibatch_size = 4;
  Rng rng(1);
  EXPECT_FALSE(RunFairKMNaive(w.points, w.sensitive, opt, &rng).ok());
}

TEST(NaiveFairKMTest, ObjectiveHistoryNonIncreasing) {
  World w = MakeWorld(5, 28, 2, 3);
  FairKMOptions opt;
  opt.k = 3;
  opt.lambda = 100.0;
  Rng rng(3);
  auto r = RunFairKMNaive(w.points, w.sensitive, opt, &rng).ValueOrDie();
  for (size_t i = 1; i < r.objective_history.size(); ++i) {
    EXPECT_LE(r.objective_history[i], r.objective_history[i - 1] + 1e-9);
  }
}

}  // namespace
}  // namespace core
}  // namespace fairkm
