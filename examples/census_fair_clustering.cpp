// Census segmentation scenario (the paper's Adult workload).
//
//   $ ./examples/census_fair_clustering --k 5 --rows 4000 --lambda -1
//
// Clusters census records on 8 socioeconomic task attributes while keeping
// five sensitive attributes (marital status, relationship status, race,
// gender, native country) fairly represented in every cluster — the setting
// where a cluster picked for marketing or extra scrutiny should not be
// demographically skewed. Compares S-blind K-Means with FairKM.

#include <cstdio>

#include "cluster/kmeans.h"
#include "common/args.h"
#include "core/fairkm.h"
#include "core/solver.h"
#include "exp/datasets.h"
#include "exp/table.h"
#include "metrics/fairness.h"
#include "metrics/quality.h"

using namespace fairkm;

int main(int argc, char** argv) {
  ArgParser args;
  args.AddFlag("k", "5", "number of clusters");
  args.AddFlag("rows", "4000", "census rows to use (0 = full 15,682)");
  args.AddFlag("lambda", "-1", "fairness weight (-1 = paper heuristic 1e6 scale)");
  args.AddFlag("seed", "42", "random seed");
  args.AddFlag("help", "false", "show usage");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 args.HelpString("census_fair_clustering").c_str());
    return 1;
  }
  if (args.GetBool("help")) {
    std::printf("%s", args.HelpString("census_fair_clustering").c_str());
    return 0;
  }
  const int k = static_cast<int>(args.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed"));

  exp::AdultExperimentOptions options;
  options.subsample = static_cast<size_t>(args.GetInt("rows"));
  auto data = exp::LoadAdultExperiment(options).ValueOrDie();
  const double lambda =
      args.GetDouble("lambda") < 0 ? data.paper_lambda : args.GetDouble("lambda");

  std::printf("Census fair clustering: n = %zu, k = %d, lambda = %g\n\n",
              data.features.rows(), k, lambda);

  cluster::KMeansOptions kopt;
  kopt.k = k;
  kopt.init = cluster::KMeansInit::kRandomAssignment;
  Rng blind_rng(seed);
  auto blind = cluster::RunKMeans(data.features, kopt, &blind_rng).ValueOrDie();

  core::FairKMOptions fopt;
  fopt.k = k;
  fopt.lambda = lambda;
  // The session API: Create binds the inputs, Init(seed) draws the paper's
  // random initial assignment, Run sweeps to convergence.
  core::FairKMSolver solver =
      core::FairKMSolver::Create(&data.features, &data.sensitive, fopt)
          .ValueOrDie();
  Rng fair_rng(seed);
  if (Status st = solver.Init(&fair_rng); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  solver.Run().ValueOrDie();
  auto fair = solver.CurrentResult().ValueOrDie();

  auto blind_fairness = metrics::EvaluateFairness(data.sensitive, blind.assignment, k);
  auto fair_fairness = metrics::EvaluateFairness(data.sensitive, fair.assignment, k);

  exp::TablePrinter table({"Attribute", "K-Means AE", "FairKM AE", "K-Means ME",
                           "FairKM ME"});
  for (size_t a = 0; a < blind_fairness.per_attribute.size(); ++a) {
    const auto& b = blind_fairness.per_attribute[a];
    const auto& f = fair_fairness.per_attribute[a];
    table.AddRow({b.attribute, exp::Cell(b.ae), exp::Cell(f.ae), exp::Cell(b.me),
                  exp::Cell(f.me)});
  }
  table.AddSeparator();
  table.AddRow({"mean", exp::Cell(blind_fairness.mean.ae),
                exp::Cell(fair_fairness.mean.ae), exp::Cell(blind_fairness.mean.me),
                exp::Cell(fair_fairness.mean.me)});
  table.Print();

  std::printf("\nClustering objective (SSE): K-Means %.2f -> FairKM %.2f (%.1f%%)\n",
              blind.kmeans_objective, fair.kmeans_objective,
              100.0 * (fair.kmeans_objective - blind.kmeans_objective) /
                  blind.kmeans_objective);
  std::printf("Silhouette: K-Means %.4f -> FairKM %.4f\n",
              metrics::SilhouetteScore(data.features, blind.assignment, k),
              metrics::SilhouetteScore(data.features, fair.assignment, k));
  std::printf("FairKM iterations: %d (converged: %s)\n", fair.iterations,
              fair.converged ? "yes" : "no");
  return 0;
}
