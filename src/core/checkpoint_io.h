// Durable on-disk form of core::SolverCheckpoint.
//
// The file is a section container (common/io.h) with magic "FKMC" and three
// sections: run metadata, the FairKMState float aggregates, and (when the
// run prunes) the SweepPruner bound tables. Every double is stored as its
// raw 8-byte image, so a solver restored from disk replays the exact
// trajectory of the in-memory Snapshot()/Restore() path — bit-identical
// assignments, objective history, and pruning counters.
//
// Corruption (torn write, truncation, bit rot) reads as kDataLoss — the
// signal FairKMSolver::ResumeFromCheckpointDir uses to fall back to the
// previous good checkpoint. A file written by a NEWER format version reads
// as kInvalidArgument (intact file, too-old binary).

#ifndef FAIRKM_CORE_CHECKPOINT_IO_H_
#define FAIRKM_CORE_CHECKPOINT_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/solver.h"

namespace fairkm {
namespace core {

/// \brief Durably writes `cp` to `path` (temp + fsync + atomic rename).
/// Fault scope "checkpoint" (checkpoint.open/.write/.fsync/.rename).
Status WriteSolverCheckpoint(const std::string& path,
                             const SolverCheckpoint& cp);

/// \brief Reads and verifies a checkpoint file. kDataLoss on corruption,
/// kNotFound when absent, kInvalidArgument on a newer format version.
Result<SolverCheckpoint> ReadSolverCheckpoint(const std::string& path);

/// \brief Canonical file name of the checkpoint taken after
/// `sweeps_completed` sweeps: "ckpt-00000012.fkmc". Fixed-width so the
/// lexicographic order of names is the chronological order of checkpoints.
std::string CheckpointFileName(int sweeps_completed);

/// \brief Checkpoint files ("ckpt-*.fkmc") in `dir`, oldest first. An
/// empty list (not an error) when the directory exists but holds none;
/// kNotFound when the directory itself is missing. Quarantined files
/// ("*.corrupt", see QuarantineCheckpoint) never match, so resume and
/// retention pruning both skip them.
Result<std::vector<std::string>> ListCheckpointFiles(const std::string& dir);

/// \brief Moves a corrupt checkpoint aside: renames `path` to
/// "<path>.corrupt" (never deletes — the torn frame stays available for a
/// post-mortem, and re-resumes stop re-parsing it). An existing quarantine
/// file of the same name is replaced; the original being already gone is OK.
Status QuarantineCheckpoint(const std::string& path);

/// \brief Drops the oldest checkpoint files in `dir` beyond `keep`
/// (best-effort per file; the first removal error surfaces so a wedged
/// directory is not silent). Quarantined files are not counted and not
/// removed.
Status PruneCheckpointDir(const std::string& dir, int keep);

}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_CHECKPOINT_IO_H_
