// Preprocessing helpers: z-score standardization and parity undersampling.

#ifndef FAIRKM_DATA_PREPROCESS_H_
#define FAIRKM_DATA_PREPROCESS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/matrix.h"

namespace fairkm {
namespace data {

/// \brief Per-column mean/stddev captured by Standardize (for inverse maps
/// and for applying a fit to held-out data).
struct StandardizationParams {
  std::vector<double> means;
  std::vector<double> stddevs;  ///< Constant columns get stddev 1 (left centered).
};

/// \brief Z-scores every column of `m` in place; returns the fitted params.
StandardizationParams Standardize(Matrix* m);

/// \brief Applies previously fitted params ((x - mean) / stddev) to `m`.
Status ApplyStandardization(const StandardizationParams& params, Matrix* m);

/// \brief Per-column min/range captured by MinMaxNormalize.
struct MinMaxParams {
  std::vector<double> mins;
  std::vector<double> ranges;  ///< Constant columns get range 1 (mapped to 0).
};

/// \brief Rescales every column of `m` to [0, 1] in place; returns the fitted
/// params. This is the scaling under which the paper's lambda heuristics
/// (1e6 for Adult) balance the two objective terms — see DESIGN.md.
MinMaxParams MinMaxNormalize(Matrix* m);

/// \brief Applies previously fitted min-max params ((x - min) / range).
Status ApplyMinMax(const MinMaxParams& params, Matrix* m);

/// \brief Undersamples to class parity on a categorical column: every row of
/// the minority class is kept and each other class is randomly downsampled to
/// the minority count. Row order is shuffled. This reproduces the paper's
/// §5.1 Adult preparation (parity across the income attribute).
Result<Dataset> UndersampleToParity(const Dataset& dataset,
                                    const std::string& class_column, Rng* rng);

/// \brief Uniformly samples `count` rows without replacement.
Result<Dataset> SampleRows(const Dataset& dataset, size_t count, Rng* rng);

}  // namespace data
}  // namespace fairkm

#endif  // FAIRKM_DATA_PREPROCESS_H_
