// Reproduces paper Table 7: clustering quality on the Kinematics dataset at
// k = 5 — CO / SH / DevC / DevO for K-Means(N), Avg. ZGYA and FairKM.

#include "bench_tables.h"

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Table 7 — Clustering quality on Kinematics (paper values alongside)",
              env);
  PaperQualityReference k5{{145.6441, 0.0390, 0.0, 0.0},
                           {164.4703, -0.0001, 1.1844, 0.0032},
                           {148.1003, 0.0149, 1.1241, 0.0038}};
  RunQualityTable(KinematicsData(), {5}, env, {k5});
  return 0;
}
