// Dense row-major matrix of doubles — the numeric feature representation
// handed to every clustering algorithm — plus the aligned-allocation plumbing
// shared by the SIMD hot-path containers (data/point_store.h and the
// FairKMState sums/prototype buffers).

#ifndef FAIRKM_DATA_MATRIX_H_
#define FAIRKM_DATA_MATRIX_H_

#include <cmath>
#include <cstddef>
#include <new>
#include <string>
#include <vector>

#include "common/status.h"

namespace fairkm {
namespace data {

/// \brief Minimal std::allocator replacement returning storage aligned to
/// `Alignment` bytes (C++17 aligned operator new). The hot-path containers
/// use 32-byte alignment so the AVX2 kernels can issue aligned 4-double
/// loads without peeling.
template <typename T, size_t Alignment>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T) && (Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two no weaker than alignof(T)");
  using value_type = T;
  // The non-type Alignment parameter defeats allocator_traits' automatic
  // rebind; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const { return true; }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Alignment>&) const { return false; }
};

/// \brief Kernel-facing alignment of the hot-path buffers (one AVX2 lane of
/// four doubles).
inline constexpr size_t kKernelAlignment = 32;

/// \brief 32-byte-aligned vector of doubles: the storage type of every
/// buffer the Gemv/Dot kernels stream over on the optimizer hot path.
using AlignedVector = std::vector<double, AlignedAllocator<double, kKernelAlignment>>;

/// \brief Rounds a row width up to a whole number of 4-double SIMD lanes, so
/// consecutive rows of a padded store all start 32-byte aligned.
inline size_t PaddedStride(size_t cols) {
  const size_t lane = kKernelAlignment / sizeof(double);
  return (cols + lane - 1) / lane * lane;
}

/// \brief Row-major dense matrix (n_rows x n_cols) of doubles. Storage is
/// 32-byte aligned so that when cols is a whole number of SIMD lanes every
/// row is kernel-ready in place (the serving tier's AssignBatch streams such
/// matrices through the aligned kernels without copying).
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  AlignedVector& data() { return data_; }
  const AlignedVector& data() const { return data_; }

  /// \brief Returns a new matrix containing the given rows, in order.
  Matrix SelectRows(const std::vector<size_t>& indices) const {
    Matrix out(indices.size(), cols_);
    for (size_t i = 0; i < indices.size(); ++i) {
      FAIRKM_DCHECK(indices[i] < rows_);
      const double* src = Row(indices[i]);
      double* dst = out.Row(i);
      for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
    }
    return out;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  AlignedVector data_;
};

/// \brief Rejects NaN/Inf entries with kInvalidArgument naming the first
/// offending cell. Every boundary where numeric data enters the pipeline
/// (dataset build, solver creation, serve requests) runs this once, so the
/// distance/aggregate kernels never have to reason about non-finite values
/// (a single NaN would silently poison every centroid it touches).
inline Status ValidateFinite(const Matrix& m, const std::string& what) {
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.Row(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      if (!std::isfinite(row[c])) {
        return Status::InvalidArgument(
            what + " contains a non-finite value at row " + std::to_string(r) +
            ", column " + std::to_string(c));
      }
    }
  }
  return Status::OK();
}

/// \brief Squared Euclidean distance between two rows of length `dim`.
inline double SquaredDistance(const double* a, const double* b, size_t dim) {
  double sum = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace data
}  // namespace fairkm

#endif  // FAIRKM_DATA_MATRIX_H_
