#include "serve/assign_batch.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "core/kernels/kernels.h"
#include "core/objective.h"

namespace fairkm {
namespace serve {

namespace {

// Points scored per padded-scratch refill. Bounds the scratch block to
// kBlockRows x stride doubles regardless of request size while keeping the
// row copies streaming-friendly.
constexpr size_t kBlockRows = 256;

// Fairness-term change of inserting one out-of-sample point with the given
// sensitive values into cluster `to`, priced entirely from the snapshot's
// frozen moment tables. Term-for-term the same arithmetic as
// FairKMState::DeltaFairnessInsertion, so for equal table values the result
// is bit-identical to what the scalar Assign path adds.
double InsertionFairnessDelta(const core::ModelExport& m,
                              const int32_t* cat_codes,
                              const double* num_values, int to) {
  if (m.categorical.empty() && m.numeric.empty()) return 0.0;
  const size_t c_to = m.counts[static_cast<size_t>(to)];
  const double scale_to_before =
      core::ClusterScale(m.config.weighting, c_to, m.num_rows);
  const double scale_to_after =
      core::ClusterScale(m.config.weighting, c_to + 1, m.num_rows);

  double delta = 0.0;
  for (size_t a = 0; a < m.categorical.size(); ++a) {
    const auto& attr = m.categorical[a];
    const int card = attr.cardinality;
    const int32_t v = cat_codes[a];
    const double q_v = attr.dataset_fractions[static_cast<size_t>(v)];
    const double q2 = m.moments.cat_q2[a];
    const double norm =
        m.config.normalize_domain ? 1.0 / static_cast<double>(card) : 1.0;
    const double u2_to = m.moments.cat_u2[a][static_cast<size_t>(to)];
    const double uq_to = m.moments.cat_uq[a][static_cast<size_t>(to)];
    const double u_v_to =
        static_cast<double>(
            m.moments.cat_counts[a][static_cast<size_t>(to) * card + v]) -
        static_cast<double>(c_to) * q_v;
    const double after_to = u2_to + q2 + 1.0 - 2.0 * (uq_to - u_v_to + q_v);
    delta += attr.weight * norm *
             (scale_to_after * after_to - scale_to_before * u2_to);
  }
  for (size_t a = 0; a < m.numeric.size(); ++a) {
    const auto& attr = m.numeric[a];
    const double x = num_values[a];
    const double mean = attr.dataset_mean;
    const double u = m.moments.num_sums[a][static_cast<size_t>(to)] -
                     static_cast<double>(c_to) * mean;
    const double u_after = u + x - mean;
    delta += attr.weight *
             (scale_to_after * u_after * u_after - scale_to_before * u * u);
  }
  return delta;
}

}  // namespace

Status ValidateAssignInputs(const ModelSnapshot& snapshot,
                            const data::Matrix& new_points,
                            const data::SensitiveView* new_sensitive) {
  const core::ModelExport& m = snapshot.model();
  if (new_points.cols() != m.d) {
    return Status::InvalidArgument(
        "new points have " + std::to_string(new_points.cols()) +
        " features, the published model has " + std::to_string(m.d));
  }
  FAIRKM_RETURN_NOT_OK(data::ValidateFinite(new_points, "request points"));
  if (new_sensitive == nullptr) return Status::OK();
  const size_t rows = new_points.rows();
  if (new_sensitive->categorical.size() != m.categorical.size() ||
      new_sensitive->numeric.size() != m.numeric.size()) {
    return Status::InvalidArgument(
        "new sensitive view must mirror the published model's attribute "
        "structure (same categorical/numeric attributes, same order)");
  }
  // Every attribute's length explicitly — a ragged view must be rejected
  // before any per-row indexing.
  for (size_t a = 0; a < m.categorical.size(); ++a) {
    const auto& attr = new_sensitive->categorical[a];
    if (attr.codes.size() != rows) {
      return Status::InvalidArgument(
          "new sensitive attribute \"" + m.categorical[a].name + "\" covers " +
          std::to_string(attr.codes.size()) + " rows, points have " +
          std::to_string(rows));
    }
    const int card = m.categorical[a].cardinality;
    for (size_t i = 0; i < rows; ++i) {
      if (attr.codes[i] < 0 || attr.codes[i] >= card) {
        return Status::InvalidArgument(
            "attribute \"" + m.categorical[a].name + "\" code " +
            std::to_string(attr.codes[i]) + " at row " + std::to_string(i) +
            " outside the trained cardinality " + std::to_string(card));
      }
    }
  }
  for (size_t a = 0; a < m.numeric.size(); ++a) {
    const auto& attr = new_sensitive->numeric[a];
    if (attr.values.size() != rows) {
      return Status::InvalidArgument(
          "new sensitive attribute \"" + m.numeric[a].name + "\" covers " +
          std::to_string(attr.values.size()) + " rows, points have " +
          std::to_string(rows));
    }
    for (size_t i = 0; i < rows; ++i) {
      if (!std::isfinite(attr.values[i])) {
        return Status::InvalidArgument(
            "new sensitive attribute \"" + m.numeric[a].name +
            "\" has a non-finite value at row " + std::to_string(i));
      }
    }
  }
  return Status::OK();
}

void AssignRows(const ModelSnapshot& snapshot, const data::Matrix& new_points,
                size_t begin, size_t end,
                const data::SensitiveView* new_sensitive,
                AssignScratch* scratch, cluster::Assignment* out) {
  const core::ModelExport& m = snapshot.model();
  const size_t d = m.d;
  const size_t stride = m.stride;
  const size_t k = static_cast<size_t>(m.k);
  // One backend resolution per call, not two per point.
  const core::kernels::Backend& kb = core::kernels::ActiveBackend();

  AssignScratch local;
  if (scratch == nullptr) scratch = &local;
  // Zero-copy fast path: when the request rows are already in the kernel
  // layout — row width equal to the padded stride (cols a multiple of the
  // SIMD lane) and the storage base 32-byte aligned, which makes every row
  // aligned since stride * sizeof(double) is a multiple of 32 — the kernels
  // stream the caller's matrix directly and the padded scratch is never
  // touched. The copy path below produces bit-identical scores (same values
  // through the same kernels), so the two paths are interchangeable.
  const bool kernel_ready =
      d == stride && begin < end &&
      reinterpret_cast<uintptr_t>(new_points.Row(begin)) %
              data::kKernelAlignment ==
          0;
  const size_t block_rows = std::min(kBlockRows, end - begin);
  // assign() zero-fills, establishing the padded-lane zeros once; the block
  // loop below overwrites only the data columns, so padding stays exact
  // zeros across refills.
  scratch->padded.assign(kernel_ready ? 0 : block_rows * stride, 0.0);
  scratch->dots.assign(k, 0.0);
  scratch->codes.assign(m.categorical.size(), 0);
  scratch->values.assign(m.numeric.size(), 0.0);
  // Per-cluster invariants hoisted out of the point loop: the candidate list
  // (empty clusters are never insertion targets, ascending ids preserve the
  // smallest-id tie-break) and the |C|/(|C|+1) scaling — one division per
  // cluster per call instead of per point. Same division as the scalar path,
  // so the product below stays bit-identical.
  scratch->cand.clear();
  scratch->scale.assign(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    const size_t cnt = m.counts[c];
    if (cnt == 0) continue;
    scratch->cand.push_back(c);
    scratch->scale[c] =
        static_cast<double>(cnt) / static_cast<double>(cnt + 1);
  }

  for (size_t block = begin; block < end; block += block_rows) {
    const size_t block_end = std::min(end, block + block_rows);
    if (!kernel_ready) {
      for (size_t i = block; i < block_end; ++i) {
        const double* src = new_points.Row(i);
        double* dst = scratch->padded.data() + (i - block) * stride;
        for (size_t j = 0; j < d; ++j) dst[j] = src[j];
      }
    }
    const double* base = kernel_ready
                             ? new_points.Row(block)
                             : scratch->padded.data();
    for (size_t i = block; i < block_end; ++i) {
      const double* x = base + (i - block) * stride;
      const double x_norm = kb.Dot(x, x, stride);
      kb.GemvAligned(x, m.centroids.data(), k, stride, scratch->dots.data());
      if (new_sensitive != nullptr) {
        for (size_t a = 0; a < scratch->codes.size(); ++a) {
          scratch->codes[a] = new_sensitive->categorical[a].codes[i];
        }
        for (size_t a = 0; a < scratch->values.size(); ++a) {
          scratch->values[a] = new_sensitive->numeric[a].values[i];
        }
      }
      double best = 0.0;
      int best_cluster = -1;
      for (const size_t c : scratch->cand) {
        // Expanded form; the cancellation can dip a tiny true distance below
        // zero, clamp like the training-path kernels do.
        double dist = x_norm - 2.0 * scratch->dots[c] + m.centroid_norms[c];
        if (dist < 0.0) dist = 0.0;
        double cost = scratch->scale[c] * dist;
        if (new_sensitive != nullptr) {
          cost += m.lambda *
                  InsertionFairnessDelta(m, scratch->codes.data(),
                                         scratch->values.data(),
                                         static_cast<int>(c));
        }
        // Strict < with first-wins: ties break toward the smallest cluster
        // id, exactly like the scalar Assign path.
        if (best_cluster < 0 || cost < best) {
          best = cost;
          best_cluster = static_cast<int>(c);
        }
      }
      (*out)[i] = best_cluster;
    }
  }
}

Result<cluster::Assignment> AssignBatch(const ModelSnapshot& snapshot,
                                        const data::Matrix& new_points,
                                        const data::SensitiveView* new_sensitive,
                                        AssignScratch* scratch) {
  FAIRKM_RETURN_NOT_OK(ValidateAssignInputs(snapshot, new_points, new_sensitive));
  const size_t rows = new_points.rows();
  cluster::Assignment out(rows, 0);
  if (rows == 0) return out;
  if (!snapshot.has_candidates()) {
    return Status::InvalidArgument(
        "trained model has no non-empty cluster to assign to");
  }
  AssignRows(snapshot, new_points, 0, rows, new_sensitive, scratch, &out);
  return out;
}

}  // namespace serve
}  // namespace fairkm
