// Fixed-size thread pool and a blocking ParallelFor, used by the experiment
// harness to run independent seeds concurrently.

#ifndef FAIRKM_COMMON_THREAD_POOL_H_
#define FAIRKM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fairkm {

/// \brief Minimal fixed-size worker pool.
///
/// Tasks may not throw; work items are plain std::function<void()>. The
/// destructor drains the queue and joins all workers.
class ThreadPool {
 public:
  /// \brief Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// \brief Blocks until all submitted tasks have completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// \brief Hardware concurrency with a floor of 1.
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// \brief Runs body(i) for i in [0, count) across `num_threads` workers and
/// blocks until completion. Falls back to a serial loop for small counts or
/// single-threaded pools.
void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& body);

}  // namespace fairkm

#endif  // FAIRKM_COMMON_THREAD_POOL_H_
