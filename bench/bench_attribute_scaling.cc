// Future-work experiment (paper §6.1, direction 1): FairKM performance
// trends with an increasing number of sensitive attributes and an
// increasing number of values per sensitive attribute.
//
// Workload: Gaussian blobs (n = 1200, 4 blobs, 6 dims, min-max scaled
// regime) with synthetic sensitive attributes correlated with blob
// membership (70% majority value per blob), so S-blind clustering is
// unfair on every attribute. FairKM runs with the (n/k)^2 lambda heuristic.

#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/fairkm.h"
#include "core/solver.h"
#include "data/preprocess.h"
#include "exp/table.h"
#include "metrics/fairness.h"

namespace {

using namespace fairkm;

// Session-API replacement for the retired RunFairKM wrapper (bit-identical
// trajectories): Create + Init + Run + CurrentResult.
Result<core::FairKMResult> RunSession(const data::Matrix& points,
                                      const data::SensitiveView& sensitive,
                                      const core::FairKMOptions& options,
                                      Rng* rng) {
  FAIRKM_ASSIGN_OR_RETURN(
      core::FairKMSolver solver,
      core::FairKMSolver::Create(&points, &sensitive, options));
  FAIRKM_RETURN_NOT_OK(solver.Init(rng));
  FAIRKM_ASSIGN_OR_RETURN(core::RunStop stop, solver.Run());
  (void)stop;
  return solver.CurrentResult();
}

struct SyntheticWorld {
  data::Matrix points;
  data::SensitiveView sensitive;
};

// Blob data plus `num_attrs` sensitive attributes of cardinality `m`, each
// correlated with blob identity through a per-attribute random value map.
SyntheticWorld MakeWorld(int num_attrs, int cardinality, uint64_t seed) {
  const int blobs = 4, per_blob = 300, dim = 6;
  Rng rng(seed);
  SyntheticWorld w;
  const size_t n = static_cast<size_t>(blobs) * per_blob;
  w.points = data::Matrix(n, static_cast<size_t>(dim));
  size_t row = 0;
  for (int b = 0; b < blobs; ++b) {
    for (int p = 0; p < per_blob; ++p, ++row) {
      for (int j = 0; j < dim; ++j) {
        const double center = ((b >> (j % 2)) & 1) ? 4.0 : 0.0;
        w.points.At(row, static_cast<size_t>(j)) = center + rng.Normal(0, 0.8);
      }
    }
  }
  data::MinMaxNormalize(&w.points);

  for (int a = 0; a < num_attrs; ++a) {
    std::vector<int32_t> majority_value(static_cast<size_t>(blobs));
    for (int b = 0; b < blobs; ++b) {
      majority_value[static_cast<size_t>(b)] =
          static_cast<int32_t>(rng.UniformInt(static_cast<uint64_t>(cardinality)));
    }
    std::vector<int32_t> codes(n);
    for (size_t i = 0; i < n; ++i) {
      const int b = static_cast<int>(i / static_cast<size_t>(per_blob));
      codes[i] = rng.UniformDouble() < 0.7
                     ? majority_value[static_cast<size_t>(b)]
                     : static_cast<int32_t>(
                           rng.UniformInt(static_cast<uint64_t>(cardinality)));
    }
    data::CategoricalSensitive attr;
    attr.name = "s" + std::to_string(a);
    attr.cardinality = cardinality;
    attr.codes = std::move(codes);
    attr.dataset_fractions.assign(static_cast<size_t>(cardinality), 0.0);
    for (int32_t c : attr.codes) {
      attr.dataset_fractions[static_cast<size_t>(c)] += 1.0 / static_cast<double>(n);
    }
    w.sensitive.categorical.push_back(std::move(attr));
  }
  return w;
}

void RunSweep(const char* title, const std::vector<std::pair<int, int>>& settings,
              size_t seeds) {
  std::printf("\n%s\n", title);
  exp::TablePrinter table({"#attrs", "cardinality", "AE blind", "AE FairKM",
                           "CO ratio", "sec/run"});
  const int k = 4;
  for (auto [num_attrs, cardinality] : settings) {
    RunningStats blind_ae, fair_ae, co_ratio, seconds;
    for (size_t s = 0; s < seeds; ++s) {
      SyntheticWorld w = MakeWorld(num_attrs, cardinality, 100 + s);
      core::FairKMOptions blind_opt;
      blind_opt.k = k;
      blind_opt.lambda = 0.0;
      Rng r1(500 + s);
      auto blind =
          RunSession(w.points, w.sensitive, blind_opt, &r1).ValueOrDie();

      core::FairKMOptions fair_opt;
      fair_opt.k = k;  // lambda auto = (n/k)^2.
      Rng r2(500 + s);
      Timer timer;
      auto fair =
          RunSession(w.points, w.sensitive, fair_opt, &r2).ValueOrDie();
      seconds.Add(timer.ElapsedSeconds());

      blind_ae.Add(
          metrics::EvaluateFairness(w.sensitive, blind.assignment, k).mean.ae);
      fair_ae.Add(
          metrics::EvaluateFairness(w.sensitive, fair.assignment, k).mean.ae);
      co_ratio.Add(fair.kmeans_objective / blind.kmeans_objective);
    }
    table.AddRow({std::to_string(num_attrs), std::to_string(cardinality),
                  exp::Cell(blind_ae.mean()), exp::Cell(fair_ae.mean()),
                  exp::Cell(co_ratio.mean(), 3), exp::Cell(seconds.mean(), 4)});
  }
  table.Print();
}

}  // namespace

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Future work §6.1(1) — FairKM vs #attributes and cardinality", env);

  RunSweep("Sweep 1: number of sensitive attributes (cardinality 4)",
           {{1, 4}, {2, 4}, {4, 4}, {8, 4}, {16, 4}}, env.seeds);
  RunSweep("Sweep 2: values per attribute (single attribute)",
           {{1, 2}, {1, 4}, {1, 8}, {1, 16}, {1, 32}}, env.seeds);

  std::printf(
      "\nReading guide: fairness gains should persist as attributes are added\n"
      "(the per-attribute deviations are separable), while very high\n"
      "cardinalities make deviations harder to control at fixed k — the\n"
      "effect behind the paper's native_country observations (§5.5.3).\n");
  return 0;
}
