#include "metrics/distribution.h"

#include <algorithm>
#include <cmath>

namespace fairkm {
namespace metrics {

double EuclideanDistance(const std::vector<double>& p, const std::vector<double>& q) {
  FAIRKM_DCHECK(p.size() == q.size());
  double sum = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double d = p[i] - q[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double Wasserstein1(const std::vector<double>& p, const std::vector<double>& q) {
  FAIRKM_DCHECK(p.size() == q.size());
  double cdf_diff = 0.0;
  double total = 0.0;
  // W1 over support {0..t-1} = sum_{i=0}^{t-2} |P(<=i) - Q(<=i)| with unit
  // gaps between adjacent support points.
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    cdf_diff += p[i] - q[i];
    total += std::fabs(cdf_diff);
  }
  return total;
}

double KlDivergence(const std::vector<double>& p, const std::vector<double>& q,
                    double eps) {
  FAIRKM_DCHECK(p.size() == q.size());
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    kl += p[i] * std::log(p[i] / std::max(q[i], eps));
  }
  return kl;
}

double TotalVariation(const std::vector<double>& p, const std::vector<double>& q) {
  FAIRKM_DCHECK(p.size() == q.size());
  double l1 = 0.0;
  for (size_t i = 0; i < p.size(); ++i) l1 += std::fabs(p[i] - q[i]);
  return 0.5 * l1;
}

data::Matrix ClusterDistributions(const data::CategoricalSensitive& attr,
                                  const cluster::Assignment& assignment, int k) {
  const int m = attr.cardinality;
  data::Matrix dist(static_cast<size_t>(k), static_cast<size_t>(m));
  std::vector<size_t> sizes(static_cast<size_t>(k), 0);
  for (size_t i = 0; i < assignment.size(); ++i) {
    dist.At(static_cast<size_t>(assignment[i]), static_cast<size_t>(attr.codes[i])) +=
        1.0;
    ++sizes[static_cast<size_t>(assignment[i])];
  }
  for (int c = 0; c < k; ++c) {
    if (sizes[static_cast<size_t>(c)] == 0) continue;
    const double inv = 1.0 / static_cast<double>(sizes[static_cast<size_t>(c)]);
    for (int s = 0; s < m; ++s) dist.At(static_cast<size_t>(c), static_cast<size_t>(s)) *= inv;
  }
  return dist;
}

double EmpiricalWasserstein1(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Integrate |F_a(x) - F_b(x)| between consecutive points of the merged
  // sample.
  size_t ia = 0, ib = 0;
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double prev = std::min(a[0], b[0]);
  double total = 0.0;
  while (ia < a.size() || ib < b.size()) {
    double next;
    if (ia < a.size() && (ib == b.size() || a[ia] <= b[ib])) {
      next = a[ia];
    } else {
      next = b[ib];
    }
    total += std::fabs(static_cast<double>(ia) / na - static_cast<double>(ib) / nb) *
             (next - prev);
    prev = next;
    if (ia < a.size() && a[ia] == next) {
      // Consume every tied sample point at `next`.
      while (ia < a.size() && a[ia] == next) ++ia;
    }
    if (ib < b.size() && b[ib] == next) {
      while (ib < b.size() && b[ib] == next) ++ib;
    }
  }
  return total;
}

}  // namespace metrics
}  // namespace fairkm
