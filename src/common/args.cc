#include "common/args.h"

#include <cstdlib>

#include "common/string_util.h"

namespace fairkm {

void ArgParser::AddFlag(const std::string& name, const std::string& default_value,
                        const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
}

Status ArgParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name, value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) return Status::InvalidArgument("unknown flag --" + name);
    if (!has_value) {
      // --flag value form, unless the next token is a flag; then treat as bool.
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return Status::OK();
}

std::string ArgParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    Status::Internal("undeclared flag read: " + name).Abort();
  }
  return it->second.value;
}

int64_t ArgParser::GetInt(const std::string& name) const {
  int64_t v = 0;
  std::string s = GetString(name);
  if (!ParseInt64(s, &v)) {
    Status::InvalidArgument("flag --" + name + " is not an integer: " + s).Abort();
  }
  return v;
}

double ArgParser::GetDouble(const std::string& name) const {
  double v = 0;
  std::string s = GetString(name);
  if (!ParseDouble(s, &v)) {
    Status::InvalidArgument("flag --" + name + " is not a number: " + s).Abort();
  }
  return v;
}

bool ArgParser::GetBool(const std::string& name) const {
  std::string s = ToLower(GetString(name));
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

std::string ArgParser::HelpString(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (default: " + flag.default_value + ")  " + flag.help + "\n";
  }
  return out;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  int64_t v = 0;
  if (!ParseInt64(raw, &v)) return fallback;
  return v;
}

}  // namespace fairkm
