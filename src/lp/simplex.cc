#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fairkm {
namespace lp {
namespace {

// Dense tableau in canonical form: rows_ x (num_cols_ + 1); the last column
// holds the right-hand side. basis_[i] is the column basic in row i.
class Tableau {
 public:
  Tableau(int rows, int cols)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * (cols + 1), 0.0),
        basis_(rows, -1) {}

  double& At(int r, int c) { return data_[static_cast<size_t>(r) * (cols_ + 1) + c]; }
  double At(int r, int c) const {
    return data_[static_cast<size_t>(r) * (cols_ + 1) + c];
  }
  double& Rhs(int r) { return At(r, cols_); }
  double Rhs(int r) const { return At(r, cols_); }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int basis(int r) const { return basis_[r]; }
  void set_basis(int r, int col) { basis_[r] = col; }

  // Gauss-Jordan pivot on (pivot_row, pivot_col); afterwards pivot_col is the
  // unit column for pivot_row.
  void Pivot(int pivot_row, int pivot_col) {
    const double pivot = At(pivot_row, pivot_col);
    const double inv = 1.0 / pivot;
    for (int c = 0; c <= cols_; ++c) At(pivot_row, c) *= inv;
    At(pivot_row, pivot_col) = 1.0;  // Cancel residual rounding error.
    for (int r = 0; r < rows_; ++r) {
      if (r == pivot_row) continue;
      const double factor = At(r, pivot_col);
      if (factor == 0.0) continue;
      for (int c = 0; c <= cols_; ++c) At(r, c) -= factor * At(pivot_row, c);
      At(r, pivot_col) = 0.0;
    }
    basis_[pivot_row] = pivot_col;
  }

 private:
  int rows_;
  int cols_;
  std::vector<double> data_;
  std::vector<int> basis_;
};

// Reduced-cost row: r_j = c_j - sum_i c_basis(i) * T[i][j]; also returns the
// current objective value c_B' b.
void ComputeReducedCosts(const Tableau& t, const std::vector<double>& costs,
                         std::vector<double>* reduced, double* objective) {
  const int m = t.rows();
  const int n = t.cols();
  reduced->assign(n, 0.0);
  double obj = 0.0;
  std::vector<double> basic_costs(m);
  for (int i = 0; i < m; ++i) {
    basic_costs[i] = costs[t.basis(i)];
    obj += basic_costs[i] * t.Rhs(i);
  }
  for (int j = 0; j < n; ++j) {
    double dot = 0.0;
    for (int i = 0; i < m; ++i) {
      if (basic_costs[i] != 0.0) dot += basic_costs[i] * t.At(i, j);
    }
    (*reduced)[j] = costs[j] - dot;
  }
  *objective = obj;
}

enum class PhaseOutcome { kOptimal, kUnbounded, kIterationCap };

// Runs primal simplex until optimality for the given cost vector. Columns at
// or beyond `allowed_cols` (artificials in phase 2) may never enter the basis.
PhaseOutcome RunPhase(Tableau* t, const std::vector<double>& costs, int allowed_cols,
                      const SimplexOptions& options, int* iteration_budget,
                      int* iterations_used) {
  const int m = t->rows();
  std::vector<double> reduced;
  double objective = 0.0;
  ComputeReducedCosts(*t, costs, &reduced, &objective);

  double last_objective = objective;
  int stall = 0;
  bool bland = false;
  // Degenerate pivots do not change the objective; after this many such
  // pivots in a row we switch to Bland's rule, which cannot cycle.
  const int stall_limit = 2 * (m + t->cols()) + 16;

  while (*iteration_budget > 0) {
    // Entering column.
    int enter = -1;
    if (bland) {
      for (int j = 0; j < allowed_cols; ++j) {
        if (reduced[j] < -options.tol) {
          enter = j;
          break;
        }
      }
    } else {
      double best = -options.tol;
      for (int j = 0; j < allowed_cols; ++j) {
        if (reduced[j] < best) {
          best = reduced[j];
          enter = j;
        }
      }
    }
    if (enter < 0) return PhaseOutcome::kOptimal;

    // Ratio test for the leaving row; Bland tie-break on basis index.
    int leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m; ++i) {
      const double a = t->At(i, enter);
      if (a > options.tol) {
        const double ratio = t->Rhs(i) / a;
        if (ratio < best_ratio - options.tol ||
            (ratio < best_ratio + options.tol && leave >= 0 &&
             t->basis(i) < t->basis(leave))) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave < 0) return PhaseOutcome::kUnbounded;

    t->Pivot(leave, enter);
    --(*iteration_budget);
    ++(*iterations_used);

    ComputeReducedCosts(*t, costs, &reduced, &objective);
    if (objective < last_objective - options.tol) {
      stall = 0;
      last_objective = objective;
    } else {
      if (++stall > stall_limit) bland = true;
    }
  }
  return PhaseOutcome::kIterationCap;
}

}  // namespace

Result<Solution> Solve(const Model& model, const SimplexOptions& options) {
  const int n = model.num_variables();
  if (n == 0) return Status::InvalidArgument("LP model has no variables");

  // --- Standard-form assembly -------------------------------------------
  // Upper-bounded variables contribute an extra `x_j <= u_j` row.
  struct Row {
    std::vector<std::pair<int, double>> terms;
    Sense sense;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(model.num_constraints());
  for (const auto& c : model.constraints()) {
    rows.push_back(Row{c.terms, c.sense, c.rhs});
  }
  for (int j = 0; j < n; ++j) {
    const double u = model.upper_bounds()[j];
    if (std::isfinite(u)) {
      rows.push_back(Row{{{j, 1.0}}, Sense::kLessEqual, u});
    }
  }
  const int m = static_cast<int>(rows.size());
  if (m == 0) {
    // Unconstrained non-negative minimization: x = 0 unless a cost is
    // negative, in which case the problem is unbounded.
    for (int j = 0; j < n; ++j) {
      if (model.costs()[j] < 0) {
        return Status::Unbounded("negative cost on unconstrained variable " +
                                 model.variable_name(j));
      }
    }
    Solution sol;
    sol.values.assign(n, 0.0);
    return sol;
  }

  // Column layout: [structural | slack/surplus | artificial].
  int num_slacks = 0;
  for (const auto& r : rows) {
    if (r.sense != Sense::kEqual) ++num_slacks;
  }
  // Worst case every row needs an artificial; trim later via `allowed`.
  const int slack_base = n;
  const int art_base = n + num_slacks;
  const int total_cols = art_base + m;

  Tableau tableau(m, total_cols);
  std::vector<bool> is_artificial(total_cols, false);
  int next_slack = slack_base;
  int next_art = art_base;
  int num_artificials = 0;

  for (int i = 0; i < m; ++i) {
    double sign = rows[i].rhs < 0 ? -1.0 : 1.0;
    for (const auto& [var, coeff] : rows[i].terms) {
      tableau.At(i, var) = sign * coeff;
    }
    tableau.Rhs(i) = sign * rows[i].rhs;

    double slack_coeff = 0.0;
    if (rows[i].sense == Sense::kLessEqual) slack_coeff = sign * 1.0;
    if (rows[i].sense == Sense::kGreaterEqual) slack_coeff = sign * -1.0;
    int slack_col = -1;
    if (slack_coeff != 0.0) {
      slack_col = next_slack++;
      tableau.At(i, slack_col) = slack_coeff;
    }

    if (slack_coeff > 0.0) {
      // Slack with +1 coefficient can start basic.
      tableau.set_basis(i, slack_col);
    } else {
      const int art_col = next_art++;
      tableau.At(i, art_col) = 1.0;
      tableau.set_basis(i, art_col);
      is_artificial[art_col] = true;
      ++num_artificials;
    }
  }

  int iteration_budget = options.max_iterations;
  int iterations_used = 0;

  // --- Phase 1 ------------------------------------------------------------
  if (num_artificials > 0) {
    std::vector<double> phase1_costs(total_cols, 0.0);
    for (int j = 0; j < total_cols; ++j) {
      if (is_artificial[j]) phase1_costs[j] = 1.0;
    }
    PhaseOutcome out = RunPhase(&tableau, phase1_costs, total_cols, options,
                                &iteration_budget, &iterations_used);
    if (out == PhaseOutcome::kIterationCap) {
      return Status::NotConverged("simplex phase 1 exceeded max_iterations");
    }
    if (out == PhaseOutcome::kUnbounded) {
      return Status::Internal("phase-1 objective unbounded (bug)");
    }
    double infeasibility = 0.0;
    for (int i = 0; i < m; ++i) {
      if (is_artificial[tableau.basis(i)]) infeasibility += tableau.Rhs(i);
    }
    if (infeasibility > options.feasibility_tol) {
      return Status::Infeasible("LP infeasible (phase-1 residual " +
                                std::to_string(infeasibility) + ")");
    }
    // Drive artificials that linger in the basis at value 0 out of it.
    for (int i = 0; i < m; ++i) {
      if (!is_artificial[tableau.basis(i)]) continue;
      int pivot_col = -1;
      for (int j = 0; j < art_base; ++j) {
        if (std::fabs(tableau.At(i, j)) > options.tol) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) {
        tableau.Pivot(i, pivot_col);
      }
      // If the row is zero across structural columns it is redundant; the
      // artificial stays basic at 0 and phase 2 forbids it from moving.
    }
  }

  // --- Phase 2 ------------------------------------------------------------
  std::vector<double> phase2_costs(total_cols, 0.0);
  for (int j = 0; j < n; ++j) phase2_costs[j] = model.costs()[j];
  PhaseOutcome out = RunPhase(&tableau, phase2_costs, art_base, options,
                              &iteration_budget, &iterations_used);
  if (out == PhaseOutcome::kIterationCap) {
    return Status::NotConverged("simplex phase 2 exceeded max_iterations");
  }
  if (out == PhaseOutcome::kUnbounded) {
    return Status::Unbounded("LP objective unbounded below");
  }

  Solution sol;
  sol.values.assign(n, 0.0);
  for (int i = 0; i < m; ++i) {
    const int b = tableau.basis(i);
    if (b < n) sol.values[b] = tableau.Rhs(i);
  }
  double obj = 0.0;
  for (int j = 0; j < n; ++j) obj += model.costs()[j] * sol.values[j];
  sol.objective = obj;
  sol.iterations = iterations_used;
  return sol;
}

}  // namespace lp
}  // namespace fairkm
