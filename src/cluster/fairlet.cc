#include "cluster/fairlet.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lp/model.h"
#include "lp/simplex.h"

namespace fairkm {
namespace cluster {
namespace {

// Assigns every majority point to a fairlet (anchored at a minority point)
// greedily by distance, respecting per-fairlet capacities [low, high].
std::vector<std::vector<size_t>> GreedyAssign(const data::Matrix& points,
                                              const std::vector<size_t>& minority,
                                              const std::vector<size_t>& majority,
                                              size_t low, size_t high) {
  const size_t b = minority.size();
  std::vector<std::vector<size_t>> fairlets(b);
  for (size_t f = 0; f < b; ++f) fairlets[f].push_back(minority[f]);

  // Order majority points by distance to their nearest anchor so that close
  // pairs claim capacity first.
  struct Cand {
    size_t point;
    size_t fairlet;
    double dist;
  };
  std::vector<Cand> order;
  order.reserve(majority.size());
  for (size_t p : majority) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_f = 0;
    for (size_t f = 0; f < b; ++f) {
      const double d =
          data::SquaredDistance(points.Row(p), points.Row(minority[f]), points.cols());
      if (d < best) {
        best = d;
        best_f = f;
      }
    }
    order.push_back({p, best_f, best});
  }
  std::sort(order.begin(), order.end(),
            [](const Cand& a, const Cand& bb) { return a.dist < bb.dist; });

  std::vector<size_t> load(b, 0);
  std::vector<size_t> deferred;
  // Phase 1: everyone tries their nearest anchor until it reaches `low`.
  for (const Cand& c : order) {
    if (load[c.fairlet] < low) {
      fairlets[c.fairlet].push_back(c.point);
      ++load[c.fairlet];
    } else {
      deferred.push_back(c.point);
    }
  }
  // Phase 2: deferred points take the nearest fairlet with spare capacity,
  // preferring fairlets still under `low`, then those under `high`.
  for (size_t p : deferred) {
    double best = std::numeric_limits<double>::infinity();
    size_t best_f = b;  // Sentinel.
    bool best_under_low = false;
    for (size_t f = 0; f < b; ++f) {
      const bool under_low = load[f] < low;
      const bool usable = under_low || load[f] < high;
      if (!usable) continue;
      const double d =
          data::SquaredDistance(points.Row(p), points.Row(minority[f]), points.cols());
      if (best_f == b || (under_low && !best_under_low) ||
          (under_low == best_under_low && d < best)) {
        best = d;
        best_f = f;
        best_under_low = under_low;
      }
    }
    FAIRKM_DCHECK(best_f < b);
    fairlets[best_f].push_back(p);
    ++load[best_f];
  }
  return fairlets;
}

// Exact transportation LP: majority point i -> fairlet anchor f, capacities
// [low, high] per fairlet. The constraint matrix is totally unimodular, so
// the LP optimum is integral.
Result<std::vector<std::vector<size_t>>> LpAssign(const data::Matrix& points,
                                                  const std::vector<size_t>& minority,
                                                  const std::vector<size_t>& majority,
                                                  size_t low, size_t high) {
  const size_t b = minority.size();
  const size_t r = majority.size();
  // No explicit upper bounds: each majority point's full-assignment equality
  // already implies x <= 1 (explicit bounds would add r*b tableau rows).
  lp::Model model;
  for (size_t i = 0; i < r; ++i) {
    for (size_t f = 0; f < b; ++f) {
      model.AddVariable(data::SquaredDistance(
          points.Row(majority[i]), points.Row(minority[f]), points.cols()));
    }
  }
  auto var = [&](size_t i, size_t f) { return static_cast<int>(i * b + f); };
  for (size_t i = 0; i < r; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (size_t f = 0; f < b; ++f) terms.emplace_back(var(i, f), 1.0);
    FAIRKM_RETURN_NOT_OK(
        model.AddConstraint(std::move(terms), lp::Sense::kEqual, 1.0));
  }
  for (size_t f = 0; f < b; ++f) {
    std::vector<std::pair<int, double>> terms;
    for (size_t i = 0; i < r; ++i) terms.emplace_back(var(i, f), 1.0);
    auto terms_copy = terms;
    FAIRKM_RETURN_NOT_OK(model.AddConstraint(std::move(terms), lp::Sense::kGreaterEqual,
                                             static_cast<double>(low)));
    FAIRKM_RETURN_NOT_OK(model.AddConstraint(std::move(terms_copy),
                                             lp::Sense::kLessEqual,
                                             static_cast<double>(high)));
  }
  FAIRKM_ASSIGN_OR_RETURN(lp::Solution solution, lp::Solve(model));

  std::vector<std::vector<size_t>> fairlets(b);
  for (size_t f = 0; f < b; ++f) fairlets[f].push_back(minority[f]);
  for (size_t i = 0; i < r; ++i) {
    size_t best_f = 0;
    double best_w = -1.0;
    for (size_t f = 0; f < b; ++f) {
      if (solution.values[i * b + f] > best_w) {
        best_w = solution.values[i * b + f];
        best_f = f;
      }
    }
    fairlets[best_f].push_back(majority[i]);
  }
  return fairlets;
}

double DecompositionCost(const data::Matrix& points,
                         const std::vector<std::vector<size_t>>& fairlets) {
  double cost = 0.0;
  for (const auto& f : fairlets) {
    for (size_t i = 1; i < f.size(); ++i) {
      cost += data::SquaredDistance(points.Row(f[i]), points.Row(f[0]), points.cols());
    }
  }
  return cost;
}

}  // namespace

double Balance(const data::CategoricalSensitive& attr,
               const std::vector<size_t>& members) {
  size_t zero = 0, one = 0;
  for (size_t i : members) {
    if (attr.codes[i] == 0) {
      ++zero;
    } else {
      ++one;
    }
  }
  if (zero == 0 || one == 0) return 0.0;
  return std::min(static_cast<double>(zero) / static_cast<double>(one),
                  static_cast<double>(one) / static_cast<double>(zero));
}

Result<FairletResult> RunFairletClustering(const data::Matrix& points,
                                           const data::CategoricalSensitive& attr,
                                           const FairletOptions& options, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (attr.cardinality != 2) {
    return Status::InvalidArgument("fairlet decomposition needs a binary attribute");
  }
  if (attr.codes.size() != points.rows()) {
    return Status::InvalidArgument("sensitive attribute row count mismatch");
  }
  std::vector<size_t> zeros, ones;
  for (size_t i = 0; i < attr.codes.size(); ++i) {
    (attr.codes[i] == 0 ? zeros : ones).push_back(i);
  }
  if (zeros.empty() || ones.empty()) {
    return Status::InvalidArgument("both attribute values must be present");
  }
  const std::vector<size_t>& minority = zeros.size() <= ones.size() ? zeros : ones;
  const std::vector<size_t>& majority = zeros.size() <= ones.size() ? ones : zeros;
  const size_t low = majority.size() / minority.size();
  const size_t high = (majority.size() + minority.size() - 1) / minority.size();
  if (static_cast<size_t>(options.k) > minority.size()) {
    return Status::InvalidArgument("k exceeds the number of fairlets (" +
                                   std::to_string(minority.size()) + ")");
  }

  FairletResult result;
  result.fairlets = GreedyAssign(points, minority, majority, low, high);
  result.decomposition_cost = DecompositionCost(points, result.fairlets);
  if (options.refine_with_lp) {
    auto refined = LpAssign(points, minority, majority, low, high);
    if (refined.ok()) {
      const double cost = DecompositionCost(points, refined.ValueOrDie());
      if (cost < result.decomposition_cost) {
        result.fairlets = std::move(refined).ValueOrDie();
        result.decomposition_cost = cost;
      }
    }
  }

  // Cluster fairlet centers (member means).
  data::Matrix centers(result.fairlets.size(), points.cols());
  for (size_t f = 0; f < result.fairlets.size(); ++f) {
    double* dst = centers.Row(f);
    for (size_t idx : result.fairlets[f]) {
      const double* src = points.Row(idx);
      for (size_t j = 0; j < points.cols(); ++j) dst[j] += src[j];
    }
    const double inv = 1.0 / static_cast<double>(result.fairlets[f].size());
    for (size_t j = 0; j < points.cols(); ++j) dst[j] *= inv;
  }
  KMeansOptions kopts = options.kmeans;
  kopts.k = options.k;
  FAIRKM_ASSIGN_OR_RETURN(ClusteringResult center_clustering,
                          RunKMeans(centers, kopts, rng));

  result.assignment.assign(points.rows(), 0);
  for (size_t f = 0; f < result.fairlets.size(); ++f) {
    for (size_t idx : result.fairlets[f]) {
      result.assignment[idx] = center_clustering.assignment[f];
    }
  }
  FinalizeResult(points, options.k, &result);
  result.total_objective = result.kmeans_objective;
  result.iterations = center_clustering.iterations;
  result.converged = center_clustering.converged;

  result.min_cluster_balance = std::numeric_limits<double>::infinity();
  for (const auto& members : GroupByCluster(result.assignment, options.k)) {
    if (members.empty()) continue;
    result.min_cluster_balance =
        std::min(result.min_cluster_balance, Balance(attr, members));
  }
  if (!std::isfinite(result.min_cluster_balance)) result.min_cluster_balance = 0.0;
  return result;
}

}  // namespace cluster
}  // namespace fairkm
