#include "exp/table.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fairkm {
namespace exp {
namespace {

TEST(TablePrinterTest, RendersAlignedCells) {
  TablePrinter t({"Measure", "Value"});
  t.AddRow({"CO", "12.5"});
  t.AddRow({"Silhouette", "0.72"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| Measure"), std::string::npos);
  EXPECT_NE(out.find("| Silhouette |"), std::string::npos);
  EXPECT_NE(out.find("12.5"), std::string::npos);
  // All lines equally wide.
  size_t width = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter t({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::string out = t.ToString();
  // Header sep + explicit sep + trailing sep + top = 4 dashed lines.
  size_t dashes = 0, pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++dashes;
    pos += 2;
  }
  EXPECT_EQ(dashes, 4u);
}

TEST(CellTest, FormatsDoubles) {
  EXPECT_EQ(Cell(3.14159, 2), "3.14");
  EXPECT_EQ(Cell(0.00005, 4), "0.0001");
  EXPECT_EQ(Cell(std::nan(""), 4), "-");
}

}  // namespace
}  // namespace exp
}  // namespace fairkm
