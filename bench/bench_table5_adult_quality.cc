// Reproduces paper Table 5: clustering quality on the Adult dataset —
// CO / SH / DevC / DevO for K-Means(N), Avg. ZGYA and FairKM at k = 5 and 15.

#include "bench_tables.h"

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Table 5 — Clustering quality on Adult (paper values alongside)",
              env);
  // Paper Table 5 rows: CO, SH, DevC, DevO.
  PaperQualityReference k5{{1120.9112, 0.7212, 0.0, 0.0},
                           {10791.8311, 0.0557, 8.4597, 0.0306},
                           {1345.1688, 0.3918, 8.4707, 0.0233}};
  PaperQualityReference k15{{837.9785, 0.6076, 0.0, 0.0},
                            {4095.8366, 0.0573, 39.3615, 0.0360},
                            {1235.2859, 0.3747, 13.1244, 0.0256}};
  RunQualityTable(AdultData(env), {5, 15}, env, {k5, k15});
  return 0;
}
