#include "exp/datasets.h"

#include "common/rng.h"
#include "data/adult_generator.h"
#include "data/preprocess.h"
#include "text/kinematics_generator.h"

namespace fairkm {
namespace exp {
namespace {

// factor * avg_var * n / k_ref: the scale-free form of ZGYA's fairness
// weight (avg_var = mean squared distance to the global feature mean).
double ZgyaLambdaFor(const data::Matrix& features, double factor, int k_ref = 5) {
  const size_t n = features.rows();
  const size_t d = features.cols();
  if (n == 0) return 0.0;
  std::vector<double> mean(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = features.Row(i);
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (double& v : mean) v /= static_cast<double>(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += data::SquaredDistance(features.Row(i), mean.data(), d);
  }
  const double avg_var = total / static_cast<double>(n);
  return factor * avg_var * static_cast<double>(n) / static_cast<double>(k_ref);
}

}  // namespace

Result<ExperimentData> LoadAdultExperiment(const AdultExperimentOptions& options) {
  data::AdultOptions gen;
  gen.seed = options.seed;
  FAIRKM_ASSIGN_OR_RETURN(data::Dataset dataset, data::GenerateAdultParity(gen));
  if (options.subsample > 0 && options.subsample < dataset.num_rows()) {
    Rng rng(options.seed ^ 0xC0FFEE);
    FAIRKM_ASSIGN_OR_RETURN(dataset,
                            data::SampleRows(dataset, options.subsample, &rng));
  }
  ExperimentData out;
  out.name = "adult";
  FAIRKM_ASSIGN_OR_RETURN(out.features, dataset.ToMatrix(data::AdultTaskNames()));
  // Min-max scaling to [0, 1]: the per-point K-Means costs this produces are
  // the scale under which the paper's lambda = 1e6 balances the two terms
  // (its CO values on Adult are ~1e3 at n = 15,682, i.e. ~0.07 per point).
  data::MinMaxNormalize(&out.features);
  out.sensitive_names = data::AdultSensitiveNames();
  FAIRKM_ASSIGN_OR_RETURN(out.sensitive,
                          data::MakeSensitiveView(dataset, out.sensitive_names));
  out.dataset = std::move(dataset);
  out.paper_lambda = 1e6;  // Paper §5.4.
  out.zgya_lambda = ZgyaLambdaFor(out.features, 2.0);
  return out;
}

Result<ExperimentData> LoadKinematicsExperiment(uint64_t seed) {
  text::KinematicsOptions gen;
  gen.seed = seed;
  FAIRKM_ASSIGN_OR_RETURN(data::Dataset dataset,
                          text::GenerateKinematicsDataset(gen));
  ExperimentData out;
  out.name = "kinematics";
  FAIRKM_ASSIGN_OR_RETURN(
      out.features,
      dataset.ToMatrix(text::KinematicsEmbeddingNames(gen.embedding_dim)));
  // The embeddings are used raw (they are L2-normalized documents, like the
  // paper's Doc2Vec vectors): per-dimension standardization would inflate
  // inter-point distances ~dim-fold and break the paper's lambda = 1e3.
  out.sensitive_names = text::KinematicsSensitiveNames();
  FAIRKM_ASSIGN_OR_RETURN(out.sensitive,
                          data::MakeSensitiveView(dataset, out.sensitive_names));
  out.dataset = std::move(dataset);
  out.paper_lambda = 1e3;  // Paper §5.4.
  out.zgya_lambda = ZgyaLambdaFor(out.features, 0.2);
  // At this temperature the soft baseline lands on the paper's Kinematics
  // fairness numbers almost exactly (ZGYA mean AE ~0.105 vs paper's 0.1183,
  // AW ~0.074 vs 0.0766).
  out.zgya_soft_temperature = 0.25;
  return out;
}

}  // namespace exp
}  // namespace fairkm
