// Cross-checks every kernel backend against the scalar reference under
// randomized inputs: dims 1..33 (every AVX2 tail remainder), unaligned base
// pointers, adversarial magnitudes. Dot/Gemv must agree within 1e-9
// (relative); CatMoments must agree BIT-FOR-BIT — FairKMState's fairness
// aggregates, and through them the optimizer trajectory of the fairness
// term, must not depend on which backend cpuid picked.

#include "core/kernels/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fairkm_state.h"
#include "data/matrix.h"
#include "data/sensitive.h"
#include "gtest/gtest.h"

namespace fairkm {
namespace core {
namespace kernels {
namespace {

// All compiled-in backends that the running CPU can execute. Scalar is
// always present; AVX2 joins when dispatch says the host supports it.
std::vector<const Backend*> AvailableBackends() {
  std::vector<const Backend*> backends = {&ScalarBackend()};
  if (const Backend* avx2 = Avx2Backend()) backends.push_back(avx2);
  return backends;
}

// Fills [out, out + n) with values spanning several orders of magnitude so
// accumulation-order bugs actually show up.
void FillRandom(Rng* rng, double* out, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double mag = std::pow(10.0, rng->UniformDouble(-3.0, 3.0));
    out[i] = rng->UniformDouble(-1.0, 1.0) * mag;
  }
}

TEST(KernelDispatchTest, ScalarBackendAlwaysAvailable) {
  EXPECT_STREQ(ScalarBackend().name, "scalar");
  ASSERT_NE(ScalarBackend().Dot, nullptr);
  ASSERT_NE(ScalarBackend().Gemv, nullptr);
  ASSERT_NE(ScalarBackend().CatMoments, nullptr);
}

TEST(KernelDispatchTest, ForcedScalarDispatchPicksScalar) {
  EXPECT_STREQ(DispatchBackend(/*force_scalar=*/true).name, "scalar");
}

TEST(KernelDispatchTest, UnforcedDispatchPicksBestAvailable) {
  const Backend& picked = DispatchBackend(/*force_scalar=*/false);
  if (const Backend* avx2 = Avx2Backend()) {
    EXPECT_EQ(&picked, avx2);
  } else {
    EXPECT_EQ(&picked, &ScalarBackend());
  }
}

TEST(KernelDispatchTest, SetActiveBackendOverridesAndRestores) {
  SetActiveBackend(&ScalarBackend());
  EXPECT_STREQ(ActiveBackend().name, "scalar");
  SetActiveBackend(nullptr);  // Re-dispatch.
  EXPECT_STREQ(ActiveBackend().name,
               DispatchBackend(ScalarForcedByEnv()).name);
}

TEST(SimdKernelsTest, DotMatchesScalarAcrossDimsAndOffsets) {
  Rng rng(20260729);
  for (const Backend* backend : AvailableBackends()) {
    SCOPED_TRACE(backend->name);
    for (size_t n = 1; n <= 33; ++n) {
      for (size_t offset = 0; offset < 4; ++offset) {
        std::vector<double> a(offset + n), b(offset + n);
        FillRandom(&rng, a.data(), a.size());
        FillRandom(&rng, b.data(), b.size());
        const double* pa = a.data() + offset;
        const double* pb = b.data() + offset;
        const double want = ScalarBackend().Dot(pa, pb, n);
        const double got = backend->Dot(pa, pb, n);
        const double tol = 1e-9 * std::max(1.0, std::fabs(want));
        EXPECT_NEAR(got, want, tol) << "n=" << n << " offset=" << offset;
      }
    }
  }
}

TEST(SimdKernelsTest, DotHandlesZeroLength) {
  const double x = 1.0;
  for (const Backend* backend : AvailableBackends()) {
    EXPECT_EQ(backend->Dot(&x, &x, 0), 0.0) << backend->name;
  }
}

TEST(SimdKernelsTest, GemvMatchesPerRowDot) {
  Rng rng(7);
  for (const Backend* backend : AvailableBackends()) {
    SCOPED_TRACE(backend->name);
    for (size_t rows : {1, 2, 3, 5, 8}) {
      for (size_t cols = 1; cols <= 33; ++cols) {
        for (size_t offset = 0; offset < 2; ++offset) {
          std::vector<double> x(offset + cols);
          std::vector<double> mat(offset + rows * cols);
          FillRandom(&rng, x.data(), x.size());
          FillRandom(&rng, mat.data(), mat.size());
          std::vector<double> out(rows, -1.0);
          backend->Gemv(x.data() + offset, mat.data() + offset, rows, cols,
                        out.data());
          for (size_t r = 0; r < rows; ++r) {
            const double want = ScalarBackend().Dot(
                x.data() + offset, mat.data() + offset + r * cols, cols);
            const double tol = 1e-9 * std::max(1.0, std::fabs(want));
            EXPECT_NEAR(out[r], want, tol)
                << "rows=" << rows << " cols=" << cols << " r=" << r
                << " offset=" << offset;
          }
        }
      }
    }
  }
}

// GemvAligned contract: 32-byte-aligned base pointers, cols a multiple of 4
// (the padded stride, padding zero-filled). Must match the scalar per-row
// dot over the padded width to 1e-9 — and the padding must contribute
// nothing (checked by comparing against the unpadded dot too).
TEST(SimdKernelsTest, GemvAlignedMatchesScalarOnPaddedStore) {
  Rng rng(31);
  for (const Backend* backend : AvailableBackends()) {
    SCOPED_TRACE(backend->name);
    for (size_t rows : {1, 2, 3, 5, 8}) {
      for (size_t cols = 1; cols <= 18; ++cols) {
        const size_t stride = data::PaddedStride(cols);
        data::AlignedVector x(stride, 0.0);
        data::AlignedVector mat(rows * stride, 0.0);
        FillRandom(&rng, x.data(), cols);
        for (size_t r = 0; r < rows; ++r) {
          FillRandom(&rng, mat.data() + r * stride, cols);
        }
        ASSERT_EQ(reinterpret_cast<uintptr_t>(x.data()) % 32, 0u);
        ASSERT_EQ(reinterpret_cast<uintptr_t>(mat.data()) % 32, 0u);
        std::vector<double> out(rows, -1.0);
        backend->GemvAligned(x.data(), mat.data(), rows, stride, out.data());
        for (size_t r = 0; r < rows; ++r) {
          const double padded =
              ScalarBackend().Dot(x.data(), mat.data() + r * stride, stride);
          const double unpadded =
              ScalarBackend().Dot(x.data(), mat.data() + r * stride, cols);
          // Zero padding contributes exact zeros: padded == unpadded.
          EXPECT_EQ(padded, unpadded) << "cols=" << cols << " r=" << r;
          const double tol = 1e-9 * std::max(1.0, std::fabs(padded));
          EXPECT_NEAR(out[r], padded, tol)
              << "rows=" << rows << " cols=" << cols << " r=" << r;
        }
      }
    }
  }
}

// CatDeltaBounds contract: every table entry — and therefore the minima —
// bit-for-bit identical across backends (the pruning decisions derived from
// the tables must not depend on the dispatched backend).
TEST(SimdKernelsTest, CatDeltaBoundsBitForBitAcrossBackends) {
  Rng rng(417);
  for (const Backend* backend : AvailableBackends()) {
    SCOPED_TRACE(backend->name);
    for (size_t m = 1; m <= 33; ++m) {
      for (int trial = 0; trial < 4; ++trial) {
        std::vector<int64_t> counts(m);
        std::vector<double> fractions(m);
        double total = 0.0;
        int64_t size = 0;
        for (size_t s = 0; s < m; ++s) {
          counts[s] = rng.UniformInt(int64_t{0}, int64_t{5000});
          size += counts[s];
          fractions[s] = rng.UniformDouble(0.0, 1.0) + 1e-6;
          total += fractions[s];
        }
        for (size_t s = 0; s < m; ++s) fractions[s] /= total;
        double u2 = 0.0, uq = 0.0, q2 = 0.0;
        ScalarBackend().CatMoments(counts.data(), fractions.data(), m,
                                   static_cast<double>(size), &u2, &uq);
        for (size_t s = 0; s < m; ++s) q2 += fractions[s] * fractions[s];
        const double sb = rng.UniformDouble(0.0, 1e-3);
        const double sr = rng.UniformDouble(0.0, 1e-3);
        const double si = rng.UniformDouble(0.0, 1e-3);
        std::vector<double> want_rem(m), want_ins(m), got_rem(m), got_ins(m);
        double want_rmin = 0.0, want_imin = 0.0, got_rmin = 0.0, got_imin = 0.0;
        ScalarBackend().CatDeltaBounds(counts.data(), fractions.data(), m,
                                       static_cast<double>(size), u2, uq, q2,
                                       sb, sr, si, want_rem.data(),
                                       want_ins.data(), &want_rmin, &want_imin);
        backend->CatDeltaBounds(counts.data(), fractions.data(), m,
                                static_cast<double>(size), u2, uq, q2, sb, sr,
                                si, got_rem.data(), got_ins.data(), &got_rmin,
                                &got_imin);
        EXPECT_EQ(std::memcmp(got_rem.data(), want_rem.data(),
                              m * sizeof(double)), 0) << "m=" << m;
        EXPECT_EQ(std::memcmp(got_ins.data(), want_ins.data(),
                              m * sizeof(double)), 0) << "m=" << m;
        EXPECT_EQ(std::memcmp(&got_rmin, &want_rmin, sizeof(double)), 0);
        EXPECT_EQ(std::memcmp(&got_imin, &want_imin, sizeof(double)), 0);
        // And the minima really are the row minima.
        EXPECT_EQ(want_rmin, *std::min_element(want_rem.begin(), want_rem.end()));
        EXPECT_EQ(want_imin, *std::min_element(want_ins.begin(), want_ins.end()));
      }
    }
  }
}

TEST(SimdKernelsTest, CatMomentsBitForBitAcrossBackends) {
  Rng rng(99);
  for (const Backend* backend : AvailableBackends()) {
    SCOPED_TRACE(backend->name);
    for (size_t m = 1; m <= 33; ++m) {
      for (int trial = 0; trial < 8; ++trial) {
        std::vector<int64_t> counts(m);
        std::vector<double> fractions(m);
        double total = 0.0;
        for (size_t s = 0; s < m; ++s) {
          counts[s] = rng.UniformInt(int64_t{0}, int64_t{100000});
          fractions[s] = rng.UniformDouble(0.0, 1.0) + 1e-6;
          total += fractions[s];
        }
        for (size_t s = 0; s < m; ++s) fractions[s] /= total;
        const double size = static_cast<double>(
            rng.UniformInt(int64_t{0}, int64_t{1000000}));
        double want_u2 = 0.0, want_uq = 0.0, got_u2 = 0.0, got_uq = 0.0;
        ScalarBackend().CatMoments(counts.data(), fractions.data(), m, size,
                                   &want_u2, &want_uq);
        backend->CatMoments(counts.data(), fractions.data(), m, size, &got_u2,
                            &got_uq);
        // Bit-for-bit: memcmp of the raw doubles, not a tolerance.
        EXPECT_EQ(std::memcmp(&got_u2, &want_u2, sizeof(double)), 0)
            << "m=" << m << " u2 " << got_u2 << " vs " << want_u2;
        EXPECT_EQ(std::memcmp(&got_uq, &want_uq, sizeof(double)), 0)
            << "m=" << m << " uq " << got_uq << " vs " << want_uq;
      }
    }
  }
}

TEST(SimdKernelsTest, CatMomentsMatchesDirectExpansion) {
  Rng rng(5);
  for (size_t m = 1; m <= 17; ++m) {
    std::vector<int64_t> counts(m);
    std::vector<double> fractions(m, 1.0 / static_cast<double>(m));
    int64_t size = 0;
    for (size_t s = 0; s < m; ++s) {
      counts[s] = rng.UniformInt(int64_t{0}, int64_t{500});
      size += counts[s];
    }
    double direct_u2 = 0.0, direct_uq = 0.0;
    for (size_t s = 0; s < m; ++s) {
      const double u = static_cast<double>(counts[s]) -
                       static_cast<double>(size) * fractions[s];
      direct_u2 += u * u;
      direct_uq += u * fractions[s];
    }
    for (const Backend* backend : AvailableBackends()) {
      double u2 = 0.0, uq = 0.0;
      backend->CatMoments(counts.data(), fractions.data(), m,
                          static_cast<double>(size), &u2, &uq);
      EXPECT_NEAR(u2, direct_u2, 1e-9 * std::max(1.0, direct_u2))
          << backend->name << " m=" << m;
      EXPECT_NEAR(uq, direct_uq, 1e-9) << backend->name << " m=" << m;
    }
  }
}

// End-to-end: a FairKMState driven with the scalar backend and one driven
// with each other backend agree on every batched K-Means delta to 1e-9 and
// on the fairness deltas bit-for-bit (CatMoments contract).
TEST(SimdKernelsTest, FairKMStateDeltasBackendIndependent) {
  constexpr size_t kRows = 60, kDims = 7;
  constexpr int kK = 4;
  Rng rng(1234);
  data::Matrix points(kRows, kDims);
  FillRandom(&rng, points.data().data(), kRows * kDims);

  data::SensitiveView sensitive;
  data::CategoricalSensitive attr;
  attr.name = "group";
  attr.cardinality = 5;
  attr.codes.resize(kRows);
  std::vector<int64_t> value_counts(5, 0);
  for (size_t i = 0; i < kRows; ++i) {
    attr.codes[i] = static_cast<int32_t>(rng.UniformInt(uint64_t{5}));
    ++value_counts[static_cast<size_t>(attr.codes[i])];
  }
  for (int64_t count : value_counts) {
    attr.dataset_fractions.push_back(static_cast<double>(count) /
                                     static_cast<double>(kRows));
  }
  sensitive.categorical.push_back(std::move(attr));

  cluster::Assignment initial(kRows);
  for (auto& a : initial) a = static_cast<int32_t>(rng.UniformInt(uint64_t{kK}));

  struct Probe {
    std::vector<double> km;
    std::vector<double> fair;
  };
  auto run_with = [&](const Backend* backend) {
    SetActiveBackend(backend);
    auto state =
        FairKMState::Create(&points, &sensitive, kK, initial).ValueOrDie();
    Probe probe;
    std::vector<double> km(kK);
    for (size_t i = 0; i < kRows; ++i) {
      state.DeltaKMeansAllClusters(i, km.data());
      for (int c = 0; c < kK; ++c) {
        probe.km.push_back(km[static_cast<size_t>(c)]);
        probe.fair.push_back(state.DeltaFairness(i, c));
      }
      // Exercise Move/RecomputeCatMoments too.
      if (i % 7 == 0) state.Move(i, static_cast<int>(i) % kK);
    }
    SetActiveBackend(nullptr);
    return probe;
  };

  const Probe want = run_with(&ScalarBackend());
  for (const Backend* backend : AvailableBackends()) {
    if (backend == &ScalarBackend()) continue;
    SCOPED_TRACE(backend->name);
    const Probe got = run_with(backend);
    ASSERT_EQ(got.km.size(), want.km.size());
    for (size_t i = 0; i < want.km.size(); ++i) {
      EXPECT_NEAR(got.km[i], want.km[i],
                  1e-9 * std::max(1.0, std::fabs(want.km[i])))
          << "km delta " << i;
      EXPECT_EQ(got.fair[i], want.fair[i]) << "fairness delta " << i;
    }
  }
}

}  // namespace
}  // namespace kernels
}  // namespace core
}  // namespace fairkm
