// FairKM — Fair K-Means clustering with multiple sensitive attributes.
//
// Reproduces the algorithm of Abraham, Deepak P & Sundaram, "Fairness in
// Clustering with Multiple Sensitive Attributes" (EDBT 2020). The objective
// (Eq. 1) couples the classical K-Means loss over the task attributes N with
// a fairness deviation term over the sensitive attributes S (Eq. 7),
// balanced by lambda. Optimization is the paper's Algorithm 1: round-robin
// single-point reassignment with immediate prototype and fractional-
// representation updates, run until convergence or max_iterations.
//
// Supported paper extensions: numeric sensitive attributes (§4.4.1,
// Eq. 22), per-attribute fairness weights (§4.4.2, Eq. 23), and mini-batch
// prototype updates (§6.1 future work).

#ifndef FAIRKM_CORE_FAIRKM_H_
#define FAIRKM_CORE_FAIRKM_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/types.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/objective.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace core {

/// \brief How one Algorithm-1 sweep evaluates its candidate moves.
enum class SweepMode {
  /// Strictly sequential round-robin (paper Algorithm 1; also the §6.1
  /// mini-batch variant when minibatch_size > 0).
  kSerial,
  /// Snapshot-parallel: within each mini-batch the K-Means candidate deltas
  /// of all points are evaluated concurrently against the frozen prototype
  /// snapshot, then moves are chosen and applied sequentially with live
  /// fairness aggregates. Produces trajectories identical to kSerial with
  /// the same minibatch_size (the snapshot already decouples evaluation from
  /// application — §6.1 semantics); requires minibatch_size > 0.
  kParallelSnapshot,
};

/// \brief FairKM configuration.
struct FairKMOptions {
  int k = 5;
  /// Fairness weight lambda of Eq. 1. Negative means "auto": the paper's §5.4
  /// heuristic lambda = (n/k)^2.
  double lambda = -1.0;
  /// The paper uses 30 for its empirical study (§5.4).
  int max_iterations = 30;
  /// Paper Algorithm 1 step 1 initializes clusters randomly.
  cluster::KMeansInit init = cluster::KMeansInit::kRandomAssignment;
  /// Fairness-term construction knobs (ablations; paper defaults).
  FairnessTermConfig fairness;
  /// Mini-batch prototype updates (§6.1): 0 = update after every move
  /// (paper behaviour); B > 0 = refresh prototypes every B processed points.
  int minibatch_size = 0;
  /// Candidate evaluation strategy; kParallelSnapshot needs minibatch_size > 0.
  SweepMode sweep_mode = SweepMode::kSerial;
  /// Worker threads for kParallelSnapshot (0 = hardware concurrency).
  int num_threads = 0;
  /// A move must improve the objective by at least this much, which guards
  /// against floating-point oscillation across sweeps.
  double min_improvement = 1e-9;
  /// Bound-gated candidate pruning (core/pruning.h): skip points whose
  /// distance + fairness bounds prove no improving move exists, keeping the
  /// trajectory bit-identical to the exhaustive sweep. On by default; the
  /// FAIRKM_DISABLE_PRUNING environment variable (or fairkm_cli --no-prune)
  /// forces the exact path regardless.
  bool enable_pruning = true;

  /// \brief The one documented validity surface for this struct: every
  /// entry point that consumes FairKMOptions (FairKMSolver::Create, the
  /// RunFairKM wrapper, core::ShardedSweep::Create) calls this instead of
  /// scattering ad-hoc checks. Rejected (kInvalidArgument):
  ///   * k <= 0,
  ///   * max_iterations <= 0,
  ///   * minibatch_size < 0,
  ///   * num_threads < 0,
  ///   * sweep_mode == kParallelSnapshot with minibatch_size == 0 (the
  ///     parallel sweep needs the frozen-snapshot batch semantics),
  ///   * non-finite lambda (negative finite lambda means "auto"),
  ///   * NaN or negative min_improvement.
  Status Validate() const;
};

/// \brief FairKM output: clustering plus the decomposed objective.
/// lambda_used / sweep_seconds / pruned_fraction live in the
/// cluster::ClusteringResult base so method-agnostic harnesses see them.
struct FairKMResult : cluster::ClusteringResult {
  double kmeans_term = 0.0;    ///< First term of Eq. 1 at the final state.
  double fairness_term = 0.0;  ///< deviation_S(C, X) at the final state.
  /// Total objective after every sweep (non-increasing when minibatch_size
  /// is 0, since every accepted move strictly decreases Eq. 1).
  std::vector<double> objective_history;

  /// Whether bound-gated pruning actually ran (options + environment).
  bool pruning_enabled = false;
  /// Candidate-evaluation accounting across all sweeps: each point processed
  /// contributes k-1 candidates to `total_candidates`; a point skipped by
  /// the pruning gate contributes its k-1 to `pruned_candidates` as well.
  uint64_t total_candidates = 0;
  uint64_t pruned_candidates = 0;
  /// Fraction of candidate evaluations the pruning gate rejected (0 when
  /// pruning was off or nothing was processed).
  double PrunedFraction() const {
    return total_candidates == 0
               ? 0.0
               : static_cast<double>(pruned_candidates) /
                     static_cast<double>(total_candidates);
  }
};

/// \brief The paper's §5.4 heuristic: lambda = (n/k)^2.
double SuggestLambda(size_t num_rows, int k);

/// \brief Runs FairKM. `sensitive` may contain any mix of categorical and
/// numeric attributes; with an empty view (or lambda = 0) FairKM degenerates
/// to a move-based K-Means.
///
/// This is a thin compatibility wrapper over core::FairKMSolver
/// (core/solver.h): construct, Init from `rng`, Run to convergence or
/// options.max_iterations. Callers that run many seeds, need stepwise
/// control, checkpoints or out-of-sample assignment should use the solver
/// directly. Deprecated since the PR 5 lifecycle migration; the remaining
/// in-tree callers are the oracle cross-checks that pin the wrapper's
/// bit-identical-to-solver contract.
[[deprecated("use FairKMSolver")]] Result<FairKMResult> RunFairKM(
    const data::Matrix& points, const data::SensitiveView& sensitive,
    const FairKMOptions& options, Rng* rng);

}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_FAIRKM_H_
