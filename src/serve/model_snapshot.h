// Immutable published model snapshots — the reader side of the serving
// tier's single-writer / many-readers contract.
//
// A training solver keeps sweeping (mutating its aggregates in place) while
// serving threads assign out-of-sample points. Readers must never see a
// half-updated model, so the tier freezes the solver's trained model into an
// immutable ModelSnapshot (core::ModelExport: aligned centroids with cached
// norms, cluster sizes, fairness moment tables, attribute structure) and
// publishes it through a std::shared_ptr that the AssignService swaps
// atomically (std::atomic_load/atomic_store — C++17 has no
// std::atomic<std::shared_ptr>). Every in-flight request holds a shared_ptr
// to the snapshot it started with, so a publish never invalidates a reader
// mid-request; the old snapshot dies when its last reader drops it.
//
// This mirrors the paper's mini-batch consistency model (§6.1): the writer
// exports at mini-batch boundaries — where all aggregates are consistent —
// and readers score against the latest frozen prototype generation.

#ifndef FAIRKM_SERVE_MODEL_SNAPSHOT_H_
#define FAIRKM_SERVE_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "common/status.h"
#include "core/solver.h"

namespace fairkm {
namespace serve {

/// \brief One frozen trained model. Immutable after construction — share it
/// freely across threads via shared_ptr<const ModelSnapshot>.
class ModelSnapshot {
 public:
  explicit ModelSnapshot(core::ModelExport model, uint64_t version = 0)
      : model_(std::move(model)), version_(version) {}

  const core::ModelExport& model() const { return model_; }
  /// \brief Publish sequence number (0 for snapshots never published).
  uint64_t version() const { return version_; }
  int k() const { return model_.k; }
  size_t d() const { return model_.d; }
  size_t training_rows() const { return model_.num_rows; }
  double lambda() const { return model_.lambda; }

  /// \brief True when at least one cluster is non-empty (Assign needs a
  /// prototype to score against; an all-empty model can serve nothing).
  bool has_candidates() const {
    for (const size_t count : model_.counts) {
      if (count > 0) return true;
    }
    return false;
  }

 private:
  core::ModelExport model_;
  uint64_t version_;
};

/// \brief Freezes `solver`'s current trained model into a shareable
/// snapshot. Requires an initialized solver at a consistent point — between
/// sweeps, or inside a Run progress callback (mini-batch boundaries); do not
/// call concurrently with a sweep mutating the same solver.
Result<std::shared_ptr<const ModelSnapshot>> MakeModelSnapshot(
    const core::FairKMSolver& solver, uint64_t version = 0);

}  // namespace serve
}  // namespace fairkm

#endif  // FAIRKM_SERVE_MODEL_SNAPSHOT_H_
