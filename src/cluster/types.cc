#include "cluster/types.h"

namespace fairkm {
namespace cluster {

Status ValidateAssignment(const Assignment& assignment, size_t num_rows, int k) {
  if (assignment.size() != num_rows) {
    return Status::InvalidArgument("assignment covers " +
                                   std::to_string(assignment.size()) + " rows, expected " +
                                   std::to_string(num_rows));
  }
  for (int32_t c : assignment) {
    if (c < 0 || c >= k) {
      return Status::OutOfRange("cluster id " + std::to_string(c) +
                                " outside [0, " + std::to_string(k) + ")");
    }
  }
  return Status::OK();
}

std::vector<size_t> ClusterSizes(const Assignment& assignment, int k) {
  std::vector<size_t> sizes(static_cast<size_t>(k), 0);
  for (int32_t c : assignment) {
    FAIRKM_DCHECK(c >= 0 && c < k);
    ++sizes[static_cast<size_t>(c)];
  }
  return sizes;
}

std::vector<std::vector<size_t>> GroupByCluster(const Assignment& assignment, int k) {
  std::vector<std::vector<size_t>> groups(static_cast<size_t>(k));
  for (size_t i = 0; i < assignment.size(); ++i) {
    groups[static_cast<size_t>(assignment[i])].push_back(i);
  }
  return groups;
}

data::Matrix ComputeCentroids(const data::Matrix& points, const Assignment& assignment,
                              int k) {
  const size_t d = points.cols();
  data::Matrix centroids(static_cast<size_t>(k), d);
  std::vector<size_t> sizes(static_cast<size_t>(k), 0);
  for (size_t i = 0; i < points.rows(); ++i) {
    const size_t c = static_cast<size_t>(assignment[i]);
    ++sizes[c];
    const double* row = points.Row(i);
    double* acc = centroids.Row(c);
    for (size_t j = 0; j < d; ++j) acc[j] += row[j];
  }
  for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
    if (sizes[c] == 0) continue;
    double* acc = centroids.Row(c);
    const double inv = 1.0 / static_cast<double>(sizes[c]);
    for (size_t j = 0; j < d; ++j) acc[j] *= inv;
  }
  return centroids;
}

double SumOfSquaredErrors(const data::Matrix& points, const Assignment& assignment,
                          const data::Matrix& centroids) {
  double sse = 0.0;
  for (size_t i = 0; i < points.rows(); ++i) {
    sse += data::SquaredDistance(
        points.Row(i), centroids.Row(static_cast<size_t>(assignment[i])),
        points.cols());
  }
  return sse;
}

void FinalizeResult(const data::Matrix& points, int k, ClusteringResult* result) {
  result->centroids = ComputeCentroids(points, result->assignment, k);
  result->sizes = ClusterSizes(result->assignment, k);
  result->kmeans_objective =
      SumOfSquaredErrors(points, result->assignment, result->centroids);
}

}  // namespace cluster
}  // namespace fairkm
