// AssignService tests: snapshot publish/swap semantics, per-request
// batching + metrics accounting, the bounded-concurrency admission gate,
// and — the reason the TSan CI job runs this suite — concurrent AssignBatch
// requests racing an actively training solver that publishes snapshots from
// its progress callback.

#include "serve/assign_service.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/solver.h"
#include "serve/assign_batch.h"
#include "serve/model_snapshot.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace serve {
namespace {

using core::FairKMOptions;
using core::FairKMSolver;
using core::SweepProgress;
using testutil::MakeSeededWorld;
using testutil::SeededWorld;
using testutil::WorldSpec;

FairKMOptions BaseOptions() {
  FairKMOptions options;
  options.k = 3;
  options.lambda = 60.0;
  options.max_iterations = 12;
  return options;
}

FairKMSolver TrainSolver(const SeededWorld& world, const FairKMOptions& options,
                         uint64_t seed) {
  FairKMSolver solver =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  EXPECT_TRUE(solver.Init(seed).ok());
  EXPECT_TRUE(solver.Run().ok());
  return solver;
}

TEST(ServeServiceTest, RequiresPublishedModel) {
  AssignService service;
  const SeededWorld world = MakeSeededWorld(100);
  EXPECT_EQ(service.snapshot(), nullptr);
  // Before the first Publish the service is NOT misconfigured and the
  // request is NOT malformed — the right answer is the retryable
  // kUnavailable, so a client backoff loop rides out a slow first publish.
  const auto result = service.Assign(world.points);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  const ServeMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.requests, 1u);
  EXPECT_EQ(metrics.errors, 1u);
  EXPECT_EQ(metrics.not_ready, 1u);
  EXPECT_EQ(metrics.snapshots_published, 0u);
  EXPECT_EQ(metrics.snapshot_age_seconds, -1.0);
}

TEST(ServeServiceTest, MatchesDirectAssignBatchAndCountsBatches) {
  const SeededWorld world = MakeSeededWorld(101);
  const SeededWorld fresh = MakeSeededWorld(102);
  FairKMSolver solver = TrainSolver(world, BaseOptions(), 17);
  const std::shared_ptr<const ModelSnapshot> snapshot =
      MakeModelSnapshot(solver, /*version=*/1).ValueOrDie();

  AssignServiceOptions options;
  options.max_batch_points = 16;
  options.max_concurrency = 2;
  AssignService service(options);
  service.Publish(snapshot);
  ASSERT_NE(service.snapshot(), nullptr);
  EXPECT_EQ(service.snapshot()->version(), 1u);

  const cluster::Assignment via_service =
      service.Assign(fresh.points, &fresh.sensitive).ValueOrDie();
  EXPECT_EQ(via_service,
            AssignBatch(*snapshot, fresh.points, &fresh.sensitive)
                .ValueOrDie());
  EXPECT_EQ(via_service, solver.Assign(fresh.points, fresh.sensitive)
                             .ValueOrDie());

  // 60 points in chunks of 16 -> 4 batches (16, 16, 16, 12).
  const size_t rows = fresh.points.rows();
  ASSERT_EQ(rows, 60u);
  ServeMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.requests, 1u);
  EXPECT_EQ(metrics.errors, 0u);
  EXPECT_EQ(metrics.points, rows);
  EXPECT_EQ(metrics.batches, 4u);
  EXPECT_EQ(metrics.avg_batch_points, static_cast<double>(rows) / 4.0);
  EXPECT_EQ(metrics.max_batch_points, 16u);
  EXPECT_EQ(metrics.snapshots_published, 1u);
  EXPECT_GE(metrics.snapshot_age_seconds, 0.0);
  EXPECT_GE(metrics.points_per_second, 0.0);

  // A zero-row request counts as a request without scoring work.
  const data::Matrix no_points(0, world.points.cols());
  EXPECT_TRUE(service.Assign(no_points).ValueOrDie().empty());
  metrics = service.Metrics();
  EXPECT_EQ(metrics.requests, 2u);
  EXPECT_EQ(metrics.points, rows);
  EXPECT_EQ(metrics.batches, 4u);

  // Publishing a new generation bumps the version readers see.
  service.Publish(MakeModelSnapshot(solver, /*version=*/2).ValueOrDie());
  EXPECT_EQ(service.snapshot()->version(), 2u);
  EXPECT_EQ(service.Metrics().snapshots_published, 2u);
}

TEST(ServeServiceTest, AdmissionGateBoundsConcurrency) {
  const SeededWorld world = MakeSeededWorld(103);
  FairKMSolver solver = TrainSolver(world, BaseOptions(), 19);

  AssignServiceOptions options;
  options.max_batch_points = 8;
  options.max_concurrency = 1;
  AssignService service(options);
  service.Publish(MakeModelSnapshot(solver).ValueOrDie());

  const cluster::Assignment expected =
      service.Assign(world.points, &world.sensitive).ValueOrDie();

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        auto result = service.Assign(world.points, &world.sensitive);
        if (!result.ok() || result.ValueOrDie() != expected) ++mismatches;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  const ServeMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.requests, 1u + kThreads * kRequestsPerThread);
  EXPECT_EQ(metrics.errors, 0u);
  // The whole point of max_concurrency = 1: never two requests scoring at
  // once, no matter how many threads knock.
  EXPECT_EQ(metrics.peak_in_flight, 1u);
}

// The serving-tier race the snapshot design exists for: one trainer thread
// keeps sweeping and publishes a fresh immutable snapshot at every
// mini-batch boundary while reader threads assign out-of-sample points
// non-stop. Run under TSan in CI (suite matches the |Serve regex).
TEST(ServeServiceTest, ConcurrentAssignDuringActiveRun) {
  WorldSpec spec;
  spec.per_blob = 100;
  const SeededWorld world = MakeSeededWorld(104, spec);
  const SeededWorld fresh = MakeSeededWorld(105, spec);

  FairKMOptions options = BaseOptions();
  options.minibatch_size = 16;  // Many publish points per sweep.
  options.max_iterations = 8;
  FairKMSolver solver =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(solver.Init(uint64_t{23}).ok());

  AssignServiceOptions service_options;
  service_options.max_batch_points = 32;
  service_options.max_concurrency = 2;
  AssignService service(service_options);
  service.Publish(MakeModelSnapshot(solver, /*version=*/0).ValueOrDie());

  std::atomic<bool> done{false};
  std::atomic<int> reader_failures{0};
  std::atomic<uint64_t> reader_requests{0};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto result = service.Assign(fresh.points, &fresh.sensitive);
        if (!result.ok() || result.ValueOrDie().size() != fresh.points.rows()) {
          ++reader_failures;
          return;
        }
        ++reader_requests;
      }
    });
  }

  // Trainer: publish a fresh generation at every mini-batch boundary. The
  // callback runs on the trainer thread with all aggregates consistent —
  // the documented export point.
  uint64_t version = 0;
  const auto publish = [&](const SweepProgress&) {
    service.Publish(MakeModelSnapshot(solver, ++version).ValueOrDie());
    return true;
  };
  ASSERT_TRUE(solver.Run({}, publish).ok());
  // Keep serving until every reader has demonstrably completed requests
  // against the published generations (on a loaded single-core host the
  // whole run can finish before a reader is first scheduled).
  while (reader_failures.load() == 0 &&
         reader_requests.load() < static_cast<uint64_t>(2 * kReaders)) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GT(version, 0u);
  const ServeMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.errors, 0u);
  EXPECT_GT(metrics.requests, 0u);
  EXPECT_EQ(metrics.snapshots_published, version + 1);
  EXPECT_LE(metrics.peak_in_flight, 2u);
  EXPECT_EQ(service.snapshot()->version(), version);

  // Quiesced: the final published generation equals a fresh export, and the
  // service result matches the scalar oracle on it.
  EXPECT_EQ(service.Assign(fresh.points, &fresh.sensitive).ValueOrDie(),
            solver.Assign(fresh.points, fresh.sensitive).ValueOrDie());
}

TEST(ServeServiceTest, RequestCacheHitsMissesAndPublishInvalidation) {
  const SeededWorld world = MakeSeededWorld(106);
  const SeededWorld fresh = MakeSeededWorld(107);
  FairKMSolver solver = TrainSolver(world, BaseOptions(), 29);

  AssignServiceOptions options;
  options.request_cache_capacity = 4;
  AssignService service(options);
  service.Publish(MakeModelSnapshot(solver, /*version=*/1).ValueOrDie());

  // First request scores (miss), the identical repeat is answered from the
  // cache — byte-identical result, no extra scored points or batches.
  const cluster::Assignment scored =
      service.Assign(fresh.points, &fresh.sensitive).ValueOrDie();
  ServeMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.cache_misses, 1u);
  EXPECT_EQ(metrics.cache_hits, 0u);
  const uint64_t scored_points = metrics.points;
  const uint64_t scored_batches = metrics.batches;

  const cluster::Assignment cached =
      service.Assign(fresh.points, &fresh.sensitive).ValueOrDie();
  EXPECT_EQ(cached, scored);
  metrics = service.Metrics();
  EXPECT_EQ(metrics.cache_hits, 1u);
  EXPECT_EQ(metrics.cache_misses, 1u);
  EXPECT_EQ(metrics.requests, 2u);
  EXPECT_EQ(metrics.points, scored_points);    // The hit scored nothing.
  EXPECT_EQ(metrics.batches, scored_batches);

  // A different batch is its own key.
  const cluster::Assignment other =
      service.Assign(world.points, &world.sensitive).ValueOrDie();
  EXPECT_EQ(other, solver.Assign(world.points, world.sensitive).ValueOrDie());
  metrics = service.Metrics();
  EXPECT_EQ(metrics.cache_hits, 1u);
  EXPECT_EQ(metrics.cache_misses, 2u);

  // Publish invalidates: the same request must re-score under the new
  // generation (an entry may never outlive the snapshot it answered for).
  service.Publish(MakeModelSnapshot(solver, /*version=*/2).ValueOrDie());
  const cluster::Assignment rescored =
      service.Assign(fresh.points, &fresh.sensitive).ValueOrDie();
  EXPECT_EQ(rescored, scored);  // Same model state, so same answer...
  metrics = service.Metrics();
  EXPECT_EQ(metrics.cache_hits, 1u);    // ...but NOT from the cache.
  EXPECT_EQ(metrics.cache_misses, 3u);
  EXPECT_GT(metrics.points, scored_points);
}

TEST(ServeServiceTest, RequestCacheEvictsLeastRecentlyUsed) {
  const SeededWorld world = MakeSeededWorld(108);
  FairKMSolver solver = TrainSolver(world, BaseOptions(), 31);

  AssignServiceOptions options;
  options.request_cache_capacity = 1;  // Room for exactly one entry.
  AssignService service(options);
  service.Publish(MakeModelSnapshot(solver, /*version=*/1).ValueOrDie());

  const SeededWorld a = MakeSeededWorld(109);
  const SeededWorld b = MakeSeededWorld(110);
  ASSERT_TRUE(service.Assign(a.points, &a.sensitive).ok());  // miss, cache A
  ASSERT_TRUE(service.Assign(b.points, &b.sensitive).ok());  // miss, evict A
  ASSERT_TRUE(service.Assign(a.points, &a.sensitive).ok());  // miss again
  ASSERT_TRUE(service.Assign(a.points, &a.sensitive).ok());  // hit
  const ServeMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.cache_misses, 3u);
  EXPECT_EQ(metrics.cache_hits, 1u);
}

TEST(ServeServiceTest, DisabledRequestCacheKeepsIdenticalBehavior) {
  const SeededWorld world = MakeSeededWorld(111);
  FairKMSolver solver = TrainSolver(world, BaseOptions(), 37);
  AssignService service;  // request_cache_capacity defaults to 0.
  service.Publish(MakeModelSnapshot(solver).ValueOrDie());
  const cluster::Assignment first =
      service.Assign(world.points, &world.sensitive).ValueOrDie();
  EXPECT_EQ(first, service.Assign(world.points, &world.sensitive).ValueOrDie());
  const ServeMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.cache_hits, 0u);
  EXPECT_EQ(metrics.cache_misses, 0u);
  EXPECT_EQ(metrics.points, 2 * world.points.rows());  // Both scored.
}

}  // namespace
}  // namespace serve
}  // namespace fairkm
