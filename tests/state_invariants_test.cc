// Long-horizon invariant tests: FairKMState incremental aggregates must match
// from-scratch recomputation after arbitrary Move sequences (the ISSUE-1
// acceptance bar is >= 1000 random moves), and the O(d) move deltas must
// match brute-force before/after objective evaluation throughout.

#include <gtest/gtest.h>

#include <cmath>

#include "core/fairkm_state.h"
#include "testlib/brute_force.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace testutil {
namespace {

core::FairKMState MakeState(const SeededWorld& world,
                            core::FairnessTermConfig config = {}) {
  // ValueOrDie aborts with the status message on error (FairKMState has no
  // default constructor to fall back on).
  return core::FairKMState::Create(&world.points, &world.sensitive, world.k,
                                   world.assignment, config)
      .ValueOrDie();
}

TEST(StateInvariants, AggregatesMatchBruteForceAfterThousandRandomMoves) {
  const SeededWorld world = MakeSeededWorld(/*seed=*/11);
  core::FairKMState state = MakeState(world);
  ASSERT_TRUE(StateMatchesBruteForce(state, world.points, world.sensitive));

  Rng rng(12);
  const std::vector<MoveOp> moves =
      RandomMoveSequence(1200, world.points.rows(), world.k, &rng);
  size_t applied = 0;
  for (const MoveOp& move : moves) {
    state.Move(move.point, move.to);
    ++applied;
    // A full brute-force comparison after every single move is O(n d) * 1200;
    // the world is tiny, so check a rolling subsample plus the final state.
    if (applied % 40 == 0) {
      ASSERT_TRUE(StateMatchesBruteForce(state, world.points, world.sensitive))
          << "after move " << applied;
    }
  }
  ASSERT_GE(applied, 1000u);
  EXPECT_TRUE(StateMatchesBruteForce(state, world.points, world.sensitive));
}

TEST(StateInvariants, DeltasMatchBruteForceAlongRandomTrajectory) {
  const SeededWorld world = MakeSeededWorld(/*seed=*/21);
  core::FairKMState state = MakeState(world);

  Rng rng(22);
  const std::vector<MoveOp> moves =
      RandomMoveSequence(250, world.points.rows(), world.k, &rng);
  for (const MoveOp& move : moves) {
    const double dk = state.DeltaKMeans(move.point, move.to);
    const double df = state.DeltaFairness(move.point, move.to);
    const double brute_dk =
        BruteForceDeltaKMeans(world.points, state.assignment(), world.k,
                              move.point, move.to);
    const double brute_df =
        BruteForceDeltaFairness(world.sensitive, state.assignment(), world.k,
                                move.point, move.to);
    ASSERT_NEAR(dk, brute_dk, 1e-9 * std::max(1.0, std::fabs(brute_dk)))
        << "point " << move.point << " -> " << move.to;
    ASSERT_NEAR(df, brute_df, 1e-9 * std::max(1.0, std::fabs(brute_df)))
        << "point " << move.point << " -> " << move.to;
    state.Move(move.point, move.to);
  }
}

TEST(StateInvariants, BatchedKernelMatchesSingleCandidateAndReference) {
  const SeededWorld world = MakeSeededWorld(/*seed=*/71);
  core::FairKMState state = MakeState(world);

  // Along a random move trajectory, the batched all-clusters kernel, the
  // single-candidate expanded-form delta and the pre-optimization reference
  // kernel must agree for every candidate cluster.
  Rng rng(72);
  const std::vector<MoveOp> moves =
      RandomMoveSequence(150, world.points.rows(), world.k, &rng);
  std::vector<double> batched(static_cast<size_t>(world.k));
  for (const MoveOp& move : moves) {
    state.DeltaKMeansAllClusters(move.point, batched.data());
    for (int c = 0; c < world.k; ++c) {
      const double single = state.DeltaKMeans(move.point, c);
      const double reference = state.ReferenceDeltaKMeans(move.point, c);
      ASSERT_NEAR(batched[static_cast<size_t>(c)], single,
                  1e-9 * std::max(1.0, std::fabs(single)))
          << "point " << move.point << " -> " << c;
      ASSERT_NEAR(single, reference, 1e-9 * std::max(1.0, std::fabs(reference)))
          << "point " << move.point << " -> " << c;
    }
    state.Move(move.point, move.to);
  }
}

TEST(StateInvariants, ClosedFormFairnessMatchesReferenceKernel) {
  WorldSpec spec;
  spec.random_weights = true;
  for (core::ClusterWeighting weighting :
       {core::ClusterWeighting::kSquaredFraction,
        core::ClusterWeighting::kFractional, core::ClusterWeighting::kUnweighted}) {
    core::FairnessTermConfig config;
    config.weighting = weighting;
    const SeededWorld world = MakeSeededWorld(/*seed=*/81, spec);
    core::FairKMState state = MakeState(world, config);

    Rng rng(82);
    const std::vector<MoveOp> moves =
        RandomMoveSequence(200, world.points.rows(), world.k, &rng);
    for (const MoveOp& move : moves) {
      for (int c = 0; c < world.k; ++c) {
        const double fast = state.DeltaFairness(move.point, c);
        const double reference = state.ReferenceDeltaFairness(move.point, c);
        ASSERT_NEAR(fast, reference, 1e-9 * std::max(1.0, std::fabs(reference)))
            << "point " << move.point << " -> " << c;
      }
      state.Move(move.point, move.to);
    }
  }
}

TEST(StateInvariants, BatchedKernelTracksStaleSnapshot) {
  const SeededWorld world = MakeSeededWorld(/*seed=*/91);
  core::FairKMState state = MakeState(world);
  state.EnablePrototypeSnapshot(true);

  // Let the snapshot go stale, then require all three K-Means kernels to
  // agree against it (they must all read the same frozen prototypes).
  Rng rng(92);
  const std::vector<MoveOp> moves =
      RandomMoveSequence(80, world.points.rows(), world.k, &rng);
  std::vector<double> batched(static_cast<size_t>(world.k));
  size_t step = 0;
  for (const MoveOp& move : moves) {
    state.Move(move.point, move.to);
    if (++step % 25 == 0) state.RefreshPrototypes();
    state.DeltaKMeansAllClusters(move.point, batched.data());
    for (int c = 0; c < world.k; ++c) {
      const double reference = state.ReferenceDeltaKMeans(move.point, c);
      ASSERT_NEAR(batched[static_cast<size_t>(c)], reference,
                  1e-9 * std::max(1.0, std::fabs(reference)))
          << "step " << step << " candidate " << c;
      ASSERT_NEAR(state.DeltaKMeans(move.point, c), reference,
                  1e-9 * std::max(1.0, std::fabs(reference)));
    }
  }
}

TEST(StateInvariants, MoveToOwnClusterIsIdentityAndDeltaZero) {
  const SeededWorld world = MakeSeededWorld(/*seed=*/31);
  core::FairKMState state = MakeState(world);
  for (size_t i = 0; i < world.points.rows(); i += 7) {
    const int own = state.cluster_of(i);
    EXPECT_EQ(state.DeltaKMeans(i, own), 0.0);
    EXPECT_EQ(state.DeltaFairness(i, own), 0.0);
    state.Move(i, own);
  }
  EXPECT_TRUE(StateMatchesBruteForce(state, world.points, world.sensitive));
}

TEST(StateInvariants, SurvivesEmptyingAndRefillingClusters) {
  WorldSpec spec;
  spec.blobs = 2;
  spec.per_blob = 8;
  spec.k = 4;
  const SeededWorld world = MakeSeededWorld(/*seed=*/41, spec);
  core::FairKMState state = MakeState(world);

  // Drain everything into cluster 0, then scatter back out; aggregates must
  // stay exact through the empty-cluster regime.
  for (size_t i = 0; i < world.points.rows(); ++i) state.Move(i, 0);
  EXPECT_EQ(state.cluster_size(0), world.points.rows());
  for (int c = 1; c < world.k; ++c) EXPECT_EQ(state.cluster_size(c), 0u);
  EXPECT_TRUE(StateMatchesBruteForce(state, world.points, world.sensitive));

  for (size_t i = 0; i < world.points.rows(); ++i) {
    state.Move(i, static_cast<int>(i) % world.k);
  }
  EXPECT_TRUE(StateMatchesBruteForce(state, world.points, world.sensitive));
}

TEST(StateInvariants, HoldsForAllClusterWeightingsAndWeights) {
  WorldSpec spec;
  spec.random_weights = true;
  for (core::ClusterWeighting weighting :
       {core::ClusterWeighting::kSquaredFraction,
        core::ClusterWeighting::kFractional, core::ClusterWeighting::kUnweighted}) {
    for (bool normalize : {true, false}) {
      core::FairnessTermConfig config;
      config.weighting = weighting;
      config.normalize_domain = normalize;
      const SeededWorld world = MakeSeededWorld(/*seed=*/51, spec);
      core::FairKMState state = MakeState(world, config);

      Rng rng(52);
      const std::vector<MoveOp> moves =
          RandomMoveSequence(120, world.points.rows(), world.k, &rng);
      for (const MoveOp& move : moves) {
        const double df = state.DeltaFairness(move.point, move.to);
        const double brute_df =
            BruteForceDeltaFairness(world.sensitive, state.assignment(), world.k,
                                    move.point, move.to, config);
        ASSERT_NEAR(df, brute_df, 1e-9 * std::max(1.0, std::fabs(brute_df)));
        state.Move(move.point, move.to);
      }
      ASSERT_TRUE(StateMatchesBruteForce(state, world.points, world.sensitive,
                                         config));
    }
  }
}

TEST(StateInvariants, PrototypeSnapshotFreezesKMeansDeltasUntilRefresh) {
  const SeededWorld world = MakeSeededWorld(/*seed=*/61);
  core::FairKMState state = MakeState(world);
  state.EnablePrototypeSnapshot(true);

  // With a fresh snapshot the delta agrees with the live computation.
  core::FairKMState live = MakeState(world);
  const size_t probe = 5;
  const int target = (live.cluster_of(probe) + 1) % world.k;
  EXPECT_NEAR(state.DeltaKMeans(probe, target), live.DeltaKMeans(probe, target),
              1e-12);

  // After moves the snapshot goes stale; RefreshPrototypes re-synchronizes it
  // with the live aggregates, which stay exact throughout.
  Rng rng(62);
  const std::vector<MoveOp> moves =
      RandomMoveSequence(60, world.points.rows(), world.k, &rng);
  for (const MoveOp& move : moves) {
    state.Move(move.point, move.to);
    live.Move(move.point, move.to);
  }
  state.RefreshPrototypes();
  EXPECT_NEAR(state.DeltaKMeans(probe, target), live.DeltaKMeans(probe, target),
              1e-12);
  EXPECT_TRUE(StateMatchesBruteForce(state, world.points, world.sensitive));
}

}  // namespace
}  // namespace testutil
}  // namespace fairkm
