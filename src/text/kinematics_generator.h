// Synthetic kinematics word-problem dataset generator.
//
// The paper's second dataset is a private collection of 161 kinematics word
// problems in five types (its Table 2), embedded with Doc2Vec into 100
// dimensions. This module is the documented substitution (DESIGN.md §3.2):
// it generates real English word problems from per-type template families
// with the exact per-type counts of the paper's Table 4 —
//   Type 1 horizontal motion: 60, Type 2 vertical with initial velocity: 36,
//   Type 3 free fall: 15, Type 4 horizontally projected: 31,
//   Type 5 two-dimensional projectile: 19
// — and embeds them via TF-IDF + seeded Gaussian random projection. The five
// binary type indicators form the sensitive attribute set S; the embedding
// columns form N.

#ifndef FAIRKM_TEXT_KINEMATICS_GENERATOR_H_
#define FAIRKM_TEXT_KINEMATICS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace fairkm {
namespace text {

/// \brief Generation knobs for the kinematics dataset.
struct KinematicsOptions {
  uint64_t seed = 7;
  /// Problems per type; defaults match the paper's Table 4 (total 161).
  std::vector<size_t> type_counts = {60, 36, 15, 31, 19};
  /// Embedding dimensionality (paper: 100).
  size_t embedding_dim = 100;
  /// Per-document Gaussian noise blended into the embedding before the final
  /// L2 normalization. Doc2Vec vectors trained on 161 short documents are
  /// extremely noisy (the paper's S-blind silhouette on Kinematics is 0.039);
  /// this knob reproduces that regime. 0 disables.
  double noise_level = 1.1;
};

/// \brief Raw generated corpus: problem text plus its type in [0, 5).
struct KinematicsCorpus {
  std::vector<std::string> problems;
  std::vector<int> types;
};

/// \brief Generates the word-problem texts.
Result<KinematicsCorpus> GenerateKinematicsCorpus(const KinematicsOptions& options);

/// \brief Human-readable description of each problem type (paper Table 2).
const std::vector<std::string>& KinematicsTypeDescriptions();

/// \brief Names of the 5 binary sensitive attributes ("type_1".."type_5").
const std::vector<std::string>& KinematicsSensitiveNames();

/// \brief Names of the embedding columns ("emb_0".."emb_{dim-1}").
std::vector<std::string> KinematicsEmbeddingNames(size_t dim);

/// \brief Generates the full dataset: embedding columns (N), five binary type
/// indicator columns (S, labels {"no","yes"}), and a "type" column with the
/// five type names for convenience.
Result<data::Dataset> GenerateKinematicsDataset(const KinematicsOptions& options);

}  // namespace text
}  // namespace fairkm

#endif  // FAIRKM_TEXT_KINEMATICS_GENERATOR_H_
