#include "serve/model_snapshot.h"

namespace fairkm {
namespace serve {

Result<std::shared_ptr<const ModelSnapshot>> MakeModelSnapshot(
    const core::FairKMSolver& solver, uint64_t version) {
  FAIRKM_ASSIGN_OR_RETURN(core::ModelExport model, solver.ExportModel());
  return std::shared_ptr<const ModelSnapshot>(
      std::make_shared<ModelSnapshot>(std::move(model), version));
}

}  // namespace serve
}  // namespace fairkm
