// End-to-end integration tests reproducing the paper's qualitative findings
// in miniature: FairKM must beat both K-Means(N) and ZGYA(S) on fairness
// while staying far closer to K-Means(N) on cluster quality than ZGYA does.

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "cluster/zgya.h"
#include "core/fairkm.h"
#include "exp/datasets.h"
#include "exp/runner.h"
#include "metrics/fairness.h"
#include "metrics/quality.h"
#include "test_util.h"

namespace fairkm {
namespace {

TEST(KinematicsIntegrationTest, PaperShapeHolds) {
  auto data = exp::LoadKinematicsExperiment().ValueOrDie();
  exp::ExperimentRunner runner(&data, 2);
  const int k = 5;
  const size_t seeds = 5;

  exp::RunConfig blind;
  blind.method = exp::Method::kKMeansBlind;
  blind.fairkm.k = k;
  auto blind_agg = runner.Run(blind, seeds).ValueOrDie();

  exp::RunConfig fair;
  fair.method = exp::Method::kFairKMAll;
  fair.fairkm.k = k;
  fair.fairkm.lambda = data.paper_lambda;
  auto fair_agg = runner.Run(fair, seeds).ValueOrDie();

  // FairKM improves mean fairness substantially over the blind baseline
  // (paper Table 8 reports ~85% on AE; demand at least 40% here).
  EXPECT_LT(fair_agg.FairnessOf("mean").ae.mean(),
            0.6 * blind_agg.FairnessOf("mean").ae.mean());
  EXPECT_LT(fair_agg.FairnessOf("mean").aw.mean(),
            0.6 * blind_agg.FairnessOf("mean").aw.mean());
  EXPECT_LT(fair_agg.FairnessOf("mean").me.mean(),
            blind_agg.FairnessOf("mean").me.mean());

  // Cluster quality is traded off but not destroyed (Table 7: CO within a
  // few percent; allow 25% headroom).
  EXPECT_LT(fair_agg.co.mean(), 1.25 * blind_agg.co.mean());
}

TEST(KinematicsIntegrationTest, FairKMSingleBeatsZgyaSingle) {
  auto data = exp::LoadKinematicsExperiment().ValueOrDie();
  exp::ExperimentRunner runner(&data, 2);
  const int k = 5;
  const size_t seeds = 4;

  double fairkm_aw = 0.0, zgya_aw = 0.0;
  for (const auto& attr : data.sensitive_names) {
    exp::RunConfig fair;
    fair.method = exp::Method::kFairKMSingle;
    fair.fairkm.k = k;
    fair.fairkm.lambda = data.paper_lambda;
    fair.single_attribute = attr;
    auto fair_agg = runner.Run(fair, seeds).ValueOrDie();
    fairkm_aw += fair_agg.FairnessOf(attr).aw.mean();

    exp::RunConfig zgya;
    zgya.method = exp::Method::kZgyaSingle;
    zgya.fairkm.k = k;
    zgya.zgya_lambda = data.zgya_lambda;
    zgya.zgya_soft_temperature = data.zgya_soft_temperature;
    zgya.single_attribute = attr;
    auto zgya_agg = runner.Run(zgya, seeds).ValueOrDie();
    zgya_aw += zgya_agg.FairnessOf(attr).aw.mean();
  }
  // Averaged over the 5 type attributes, FairKM(S) must beat ZGYA(S) on AW
  // (paper §5.6, Figure 3).
  EXPECT_LT(fairkm_aw, zgya_aw);
}

TEST(AdultIntegrationTest, PaperShapeHoldsOnSubsample) {
  exp::AdultExperimentOptions opt;
  opt.subsample = 1500;
  auto data = exp::LoadAdultExperiment(opt).ValueOrDie();
  exp::ExperimentRunner runner(&data, 2);
  const int k = 5;
  const size_t seeds = 3;
  const double lambda = core::SuggestLambda(data.features.rows(), k);

  exp::RunConfig blind;
  blind.method = exp::Method::kKMeansBlind;
  blind.fairkm.k = k;
  auto blind_agg = runner.Run(blind, seeds).ValueOrDie();

  exp::RunConfig fair;
  fair.method = exp::Method::kFairKMAll;
  fair.fairkm.k = k;
  fair.fairkm.lambda = lambda;
  auto fair_agg = runner.Run(fair, seeds).ValueOrDie();

  exp::RunConfig zgya;
  zgya.method = exp::Method::kZgyaSingle;
  zgya.fairkm.k = k;
  zgya.zgya_lambda = data.zgya_lambda;
  zgya.zgya_soft_temperature = data.zgya_soft_temperature;
  zgya.single_attribute = "gender";
  auto zgya_agg = runner.Run(zgya, seeds).ValueOrDie();

  // Fairness: FairKM (all attributes at once) beats blind K-Means on the
  // cross-attribute mean (Table 6 top block).
  EXPECT_LT(fair_agg.FairnessOf("mean").ae.mean(),
            blind_agg.FairnessOf("mean").ae.mean());
  // FairKM's gender fairness beats even the gender-targeted ZGYA (the
  // paper's "synthetically favorable" comparison).
  EXPECT_LT(fair_agg.FairnessOf("gender").ae.mean(),
            zgya_agg.FairnessOf("gender").ae.mean());

  // Quality: ZGYA wrecks CO relative to K-Means far more than FairKM does
  // (Table 5: 10x vs 1.2x).
  EXPECT_GT(zgya_agg.co.mean(), fair_agg.co.mean());
  // And FairKM stays within a modest factor of the blind optimum.
  EXPECT_LT(fair_agg.co.mean(), 2.0 * blind_agg.co.mean());
  // Silhouette ordering: blind >= FairKM > ZGYA (Table 5).
  EXPECT_GT(fair_agg.sh.mean(), zgya_agg.sh.mean());
}

TEST(LambdaSweepIntegrationTest, FairnessImprovesMonotonicallyInTrend) {
  auto data = exp::LoadKinematicsExperiment().ValueOrDie();
  exp::ExperimentRunner runner(&data, 2);
  const int k = 5;
  std::vector<double> lambdas = {0.0, 250.0, 1000.0, 10000.0};
  std::vector<double> ae;
  for (double lambda : lambdas) {
    exp::RunConfig config;
    config.method = exp::Method::kFairKMAll;
    config.fairkm.k = k;
    config.fairkm.lambda = lambda;
    auto agg = runner.Run(config, 4).ValueOrDie();
    ae.push_back(agg.FairnessOf("mean").ae.mean());
  }
  // Endpoints must order correctly (paper Figure 7); allow mid-sweep noise.
  EXPECT_LT(ae.back(), ae.front());
  EXPECT_LT(ae[2], ae[0]);
}

TEST(AblationIntegrationTest, ClusterWeightingPreventsDegenerateClusters) {
  // Without the (|C|/n)^2 weighting (using the unweighted sum instead), the
  // fairness term can be driven down by emptying clusters. Verify that the
  // paper's weighting yields a more balanced cluster-size profile.
  auto data = exp::LoadKinematicsExperiment().ValueOrDie();
  const int k = 5;

  core::FairKMOptions paper;
  paper.k = k;
  paper.lambda = data.paper_lambda;
  Rng r1(3);
  auto with = testutil::RunFairKMSession(data.features, data.sensitive, paper, &r1).ValueOrDie();

  core::FairKMOptions ablated = paper;
  ablated.fairness.weighting = core::ClusterWeighting::kUnweighted;
  // The unweighted term is on a different scale; use a matched-strength
  // lambda so the comparison is about shape, not magnitude.
  ablated.lambda = data.paper_lambda / (k * k);
  Rng r2(3);
  auto without =
      testutil::RunFairKMSession(data.features, data.sensitive, ablated, &r2).ValueOrDie();

  auto count_small = [&](const std::vector<size_t>& sizes) {
    size_t small = 0;
    for (size_t s : sizes) small += s < data.features.rows() / (4 * k) ? 1 : 0;
    return small;
  };
  EXPECT_LE(count_small(with.sizes), count_small(without.sizes));
}

}  // namespace
}  // namespace fairkm
