// Durable solver checkpoints: field-exact round-trips through the on-disk
// format, corruption (torn/truncated/bit-flipped files) surfacing as
// kDataLoss, auto-checkpointing Run budgets, and newest-valid-wins resume
// with fallback past corrupt files — all under deterministic fault
// injection, with zero crashes.

#include "core/checkpoint_io.h"

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/io.h"
#include "core/fairkm.h"
#include "core/solver.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace core {
namespace {

namespace fs = std::filesystem;

using testutil::MakeSeededWorld;
using testutil::SeededWorld;

FairKMOptions BaseOptions() {
  FairKMOptions options;
  options.k = 3;
  options.lambda = 60.0;
  options.max_iterations = 12;
  options.minibatch_size = 16;
  return options;
}

class CheckpointIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fairkm_ckpt_test_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    fault::DisarmAll();
    fs::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// Field-exact equality of two checkpoints (double comparisons are exact:
// the format stores raw 8-byte images).
void ExpectCheckpointsEqual(const SolverCheckpoint& a,
                            const SolverCheckpoint& b) {
  EXPECT_EQ(a.num_rows, b.num_rows);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.batch_size, b.batch_size);
  EXPECT_EQ(a.parallel, b.parallel);
  EXPECT_EQ(a.lambda, b.lambda);
  EXPECT_EQ(a.sweeps_completed, b.sweeps_completed);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.next_point, b.next_point);
  EXPECT_EQ(a.moves_in_sweep, b.moves_in_sweep);
  EXPECT_EQ(a.objective_history, b.objective_history);
  EXPECT_EQ(a.total_candidates, b.total_candidates);
  EXPECT_EQ(a.pruned_candidates, b.pruned_candidates);
  EXPECT_EQ(a.sweep_seconds, b.sweep_seconds);

  EXPECT_EQ(a.state.assignment, b.state.assignment);
  EXPECT_EQ(a.state.counts, b.state.counts);
  EXPECT_TRUE(a.state.sums == b.state.sums);
  EXPECT_EQ(a.state.sum_norms, b.state.sum_norms);
  EXPECT_EQ(a.state.cat_counts, b.state.cat_counts);
  EXPECT_EQ(a.state.num_sums, b.state.num_sums);
  EXPECT_EQ(a.state.cat_u2, b.state.cat_u2);
  EXPECT_EQ(a.state.cat_uq, b.state.cat_uq);
  EXPECT_EQ(a.state.use_snapshot, b.state.use_snapshot);
  EXPECT_EQ(a.state.proto_counts, b.state.proto_counts);
  EXPECT_TRUE(a.state.proto_sums == b.state.proto_sums);
  EXPECT_EQ(a.state.proto_sum_norms, b.state.proto_sum_norms);
  EXPECT_EQ(a.state.track_bounds, b.state.track_bounds);
  EXPECT_EQ(a.state.drift, b.state.drift);
  EXPECT_EQ(a.state.max_step_sum, b.state.max_step_sum);
  EXPECT_EQ(a.state.cat_rem_delta, b.state.cat_rem_delta);
  EXPECT_EQ(a.state.cat_ins_delta, b.state.cat_ins_delta);
  EXPECT_EQ(a.state.fair_rem_bound, b.state.fair_rem_bound);
  EXPECT_EQ(a.state.fair_ins_bound, b.state.fair_ins_bound);
  EXPECT_EQ(a.state.ins_best, b.state.ins_best);
  EXPECT_EQ(a.state.ins_second, b.state.ins_second);
  EXPECT_EQ(a.state.ins_best_cluster, b.state.ins_best_cluster);
  EXPECT_EQ(a.state.addf_best, b.state.addf_best);
  EXPECT_EQ(a.state.addf_second, b.state.addf_second);
  EXPECT_EQ(a.state.addf_best_cluster, b.state.addf_best_cluster);

  EXPECT_EQ(a.has_pruner, b.has_pruner);
  if (a.has_pruner && b.has_pruner) {
    EXPECT_EQ(a.pruner.lb0, b.pruner.lb0);
    EXPECT_EQ(a.pruner.drift_ref, b.pruner.drift_ref);
    EXPECT_EQ(a.pruner.lbmin0, b.pruner.lbmin0);
    EXPECT_EQ(a.pruner.max_drift_ref, b.pruner.max_drift_ref);
    EXPECT_EQ(a.pruner.fresh, b.pruner.fresh);
  }
}

SolverCheckpoint TrainedCheckpoint(const SeededWorld& world,
                                   const FairKMOptions& options,
                                   int sweeps) {
  FairKMSolver solver =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  EXPECT_TRUE(solver.Init(uint64_t{11}).ok());
  RunBudget leg;
  leg.max_sweeps = sweeps;
  EXPECT_TRUE(solver.Run(leg).ok());
  return solver.Snapshot().ValueOrDie();
}

TEST_F(CheckpointIoTest, RoundTripIsFieldExact) {
  const SeededWorld world = MakeSeededWorld(91);
  const SolverCheckpoint cp = TrainedCheckpoint(world, BaseOptions(), 3);
  const std::string path = Path("ckpt.fkmc");
  ASSERT_TRUE(WriteSolverCheckpoint(path, cp).ok());
  Result<SolverCheckpoint> back = ReadSolverCheckpoint(path);
  ASSERT_TRUE(back.ok()) << back.status();
  ExpectCheckpointsEqual(cp, back.ValueOrDie());
}

TEST_F(CheckpointIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadSolverCheckpoint(Path("absent.fkmc")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CheckpointIoTest, TruncatedAndBitFlippedFilesAreDataLoss) {
  const SeededWorld world = MakeSeededWorld(92);
  const SolverCheckpoint cp = TrainedCheckpoint(world, BaseOptions(), 2);
  const std::string path = Path("ckpt.fkmc");
  ASSERT_TRUE(WriteSolverCheckpoint(path, cp).ok());
  std::string raw;
  ASSERT_TRUE(io::ReadFile(path, &raw, "test").ok());
  ASSERT_GT(raw.size(), 64u);

  // A spread of truncation points, including mid-header and mid-payload.
  for (size_t keep :
       {size_t{0}, size_t{3}, size_t{16}, size_t{40}, raw.size() / 2,
        raw.size() - 1}) {
    ASSERT_TRUE(io::AtomicWriteFile(path, raw.substr(0, keep), "test").ok());
    EXPECT_EQ(ReadSolverCheckpoint(path).status().code(),
              StatusCode::kDataLoss)
        << "truncated to " << keep;
  }

  // A spread of single-bit flips across the file.
  for (size_t pos : {size_t{0}, size_t{9}, size_t{17}, size_t{33},
                     raw.size() / 2, raw.size() - 2}) {
    std::string mutated = raw;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x04);
    ASSERT_TRUE(io::AtomicWriteFile(path, mutated, "test").ok());
    Status st = ReadSolverCheckpoint(path).status();
    EXPECT_FALSE(st.ok()) << "bit flip at " << pos;
  }
}

TEST_F(CheckpointIoTest, InjectedTornRenameReadsAsDataLoss) {
  const SeededWorld world = MakeSeededWorld(93);
  const SolverCheckpoint cp = TrainedCheckpoint(world, BaseOptions(), 2);
  const std::string path = Path("ckpt.fkmc");

  ASSERT_TRUE(fault::ArmFromString("checkpoint.rename=torn").ok());
  ASSERT_TRUE(WriteSolverCheckpoint(path, cp).ok());  // silently torn
  fault::DisarmAll();
  EXPECT_EQ(ReadSolverCheckpoint(path).status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointIoTest, InjectedShortWriteReadsAsDataLoss) {
  const SeededWorld world = MakeSeededWorld(93);
  const SolverCheckpoint cp = TrainedCheckpoint(world, BaseOptions(), 2);
  const std::string path = Path("ckpt.fkmc");

  ASSERT_TRUE(fault::ArmFromString("checkpoint.write=short,keep=100").ok());
  ASSERT_TRUE(WriteSolverCheckpoint(path, cp).ok());
  fault::DisarmAll();
  EXPECT_EQ(ReadSolverCheckpoint(path).status().code(), StatusCode::kDataLoss);
}

TEST_F(CheckpointIoTest, InjectedIOErrorsSurfaceWithoutCorruptingOldFile) {
  const SeededWorld world = MakeSeededWorld(94);
  const SolverCheckpoint cp = TrainedCheckpoint(world, BaseOptions(), 2);
  const std::string path = Path("ckpt.fkmc");
  ASSERT_TRUE(WriteSolverCheckpoint(path, cp).ok());

  for (const char* point :
       {"checkpoint.open", "checkpoint.write", "checkpoint.fsync",
        "checkpoint.rename"}) {
    ASSERT_TRUE(fault::ArmFromString(std::string(point) + "=error").ok());
    EXPECT_EQ(WriteSolverCheckpoint(path, cp).code(), StatusCode::kIOError)
        << point;
    fault::DisarmAll();
    // The previous good file survives every failed replacement attempt.
    EXPECT_TRUE(ReadSolverCheckpoint(path).ok()) << point;
  }

  ASSERT_TRUE(fault::ArmFromString("checkpoint.read=error").ok());
  EXPECT_EQ(ReadSolverCheckpoint(path).status().code(), StatusCode::kIOError);
}

TEST_F(CheckpointIoTest, FileNamesSortChronologically) {
  EXPECT_EQ(CheckpointFileName(7), "ckpt-00000007.fkmc");
  EXPECT_LT(CheckpointFileName(9), CheckpointFileName(10));
  EXPECT_LT(CheckpointFileName(99), CheckpointFileName(100));
}

TEST_F(CheckpointIoTest, ListCheckpointFilesFiltersAndSorts) {
  ASSERT_TRUE(io::AtomicWriteFile(Path(CheckpointFileName(2)), "x", "t").ok());
  ASSERT_TRUE(io::AtomicWriteFile(Path(CheckpointFileName(1)), "x", "t").ok());
  ASSERT_TRUE(io::AtomicWriteFile(Path("notes.txt"), "x", "t").ok());
  ASSERT_TRUE(io::AtomicWriteFile(Path("ckpt-junk.fkmc"), "x", "t").ok());
  Result<std::vector<std::string>> names = ListCheckpointFiles(dir_.string());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.ValueOrDie(),
            (std::vector<std::string>{CheckpointFileName(1),
                                      CheckpointFileName(2)}));
  EXPECT_EQ(ListCheckpointFiles(Path("missing")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CheckpointIoTest, AutoCheckpointingRunWritesAndPrunes) {
  const SeededWorld world = MakeSeededWorld(95);
  FairKMOptions options = BaseOptions();
  FairKMSolver solver =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(solver.Init(uint64_t{11}).ok());

  RunBudget budget;
  budget.checkpoint_dir = dir_.string();
  budget.checkpoint_every = 1;
  budget.checkpoint_keep = 2;
  ASSERT_TRUE(solver.Run(budget).ok());
  ASSERT_GT(solver.sweeps_completed(), 2);

  // Pruning kept exactly checkpoint_keep files, the newest ones.
  std::vector<std::string> names =
      ListCheckpointFiles(dir_.string()).ValueOrDie();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names.back(), CheckpointFileName(solver.sweeps_completed()));

  // The newest file restores to the finished state.
  FairKMSolver restored =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(restored.LoadCheckpoint(dir_.string() + "/" + names.back()).ok());
  EXPECT_EQ(restored.sweeps_completed(), solver.sweeps_completed());
  EXPECT_EQ(restored.converged(), solver.converged());
  EXPECT_EQ(restored.assignment(), solver.assignment());
}

TEST_F(CheckpointIoTest, QuarantineRenamesAsideAndListSkips) {
  ASSERT_TRUE(
      io::AtomicWriteFile(Path(CheckpointFileName(1)), "good-enough", "t")
          .ok());
  ASSERT_TRUE(
      io::AtomicWriteFile(Path(CheckpointFileName(2)), "garbage", "t").ok());

  ASSERT_TRUE(QuarantineCheckpoint(Path(CheckpointFileName(2))).ok());
  EXPECT_FALSE(fs::exists(Path(CheckpointFileName(2))));
  EXPECT_TRUE(fs::exists(Path(CheckpointFileName(2)) + ".corrupt"));

  // Quarantined frames are invisible to resume and retention alike.
  const auto names = ListCheckpointFiles(dir_.string()).ValueOrDie();
  EXPECT_EQ(names, std::vector<std::string>{CheckpointFileName(1)});

  // Idempotent: the original being already gone is OK, and a second
  // corrupt frame of the same name replaces the old quarantine file.
  EXPECT_TRUE(QuarantineCheckpoint(Path(CheckpointFileName(2))).ok());
  ASSERT_TRUE(
      io::AtomicWriteFile(Path(CheckpointFileName(2)), "garbage2", "t").ok());
  EXPECT_TRUE(QuarantineCheckpoint(Path(CheckpointFileName(2))).ok());
  EXPECT_TRUE(fs::exists(Path(CheckpointFileName(2)) + ".corrupt"));
}

TEST_F(CheckpointIoTest, PruneKeepsNewestAndNeverTouchesQuarantine) {
  for (int sweep : {1, 2, 3, 4, 5}) {
    ASSERT_TRUE(
        io::AtomicWriteFile(Path(CheckpointFileName(sweep)), "x", "t").ok());
  }
  ASSERT_TRUE(QuarantineCheckpoint(Path(CheckpointFileName(3))).ok());

  ASSERT_TRUE(PruneCheckpointDir(dir_.string(), 2).ok());
  const auto names = ListCheckpointFiles(dir_.string()).ValueOrDie();
  EXPECT_EQ(names, (std::vector<std::string>{CheckpointFileName(4),
                                             CheckpointFileName(5)}));
  // The quarantined frame survives pruning: it is post-mortem evidence,
  // not retention inventory.
  EXPECT_TRUE(fs::exists(Path(CheckpointFileName(3)) + ".corrupt"));
}

TEST_F(CheckpointIoTest, ResumeQuarantinesTheCorruptFramesItSkips) {
  const SeededWorld world = MakeSeededWorld(95);
  FairKMOptions options = BaseOptions();
  ASSERT_TRUE(
      io::AtomicWriteFile(Path(CheckpointFileName(7)), "garbage", "t").ok());
  FairKMSolver solver =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  EXPECT_EQ(solver.ResumeFromCheckpointDir(dir_.string()).code(),
            StatusCode::kDataLoss);
  EXPECT_FALSE(fs::exists(Path(CheckpointFileName(7))));
  EXPECT_TRUE(fs::exists(Path(CheckpointFileName(7)) + ".corrupt"));
  // The directory now lists no checkpoints, so a re-resume is a clean
  // kNotFound instead of re-parsing the same torn frame forever.
  EXPECT_EQ(solver.ResumeFromCheckpointDir(dir_.string()).code(),
            StatusCode::kNotFound);
}

TEST_F(CheckpointIoTest, ResumeFallsBackPastCorruptNewestCheckpoint) {
  const SeededWorld world = MakeSeededWorld(96);
  FairKMOptions options = BaseOptions();

  // Reference: the uninterrupted trajectory.
  FairKMSolver reference =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(reference.Init(uint64_t{11}).ok());
  ASSERT_TRUE(reference.Run().ok());

  // Save checkpoints after sweeps 2 and 3, then tear the newest: the model
  // of a crash mid-write on the last interval.
  FairKMSolver trainer =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(trainer.Init(uint64_t{11}).ok());
  RunBudget two;
  two.max_sweeps = 2;
  ASSERT_TRUE(trainer.Run(two).ok());
  ASSERT_TRUE(trainer.SaveCheckpoint(Path(CheckpointFileName(2))).ok());
  RunBudget one;
  one.max_sweeps = 1;
  ASSERT_TRUE(trainer.Run(one).ok());
  ASSERT_TRUE(fault::ArmFromString("checkpoint.rename=torn").ok());
  ASSERT_TRUE(trainer.SaveCheckpoint(Path(CheckpointFileName(3))).ok());
  fault::DisarmAll();

  // Resume picks the torn sweep-3 file first, rejects it with kDataLoss
  // internally, and falls back to the good sweep-2 checkpoint.
  FairKMSolver resumed =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(resumed.ResumeFromCheckpointDir(dir_.string()).ok());
  EXPECT_EQ(resumed.sweeps_completed(), 2);

  // Continuing from the fallback replays the uninterrupted trajectory.
  ASSERT_TRUE(resumed.Run().ok());
  const FairKMResult a = reference.CurrentResult().ValueOrDie();
  const FairKMResult b = resumed.CurrentResult().ValueOrDie();
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.objective_history, b.objective_history);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST_F(CheckpointIoTest, ResumeWithAllCheckpointsCorruptIsDataLoss) {
  const SeededWorld world = MakeSeededWorld(97);
  FairKMOptions options = BaseOptions();
  ASSERT_TRUE(
      io::AtomicWriteFile(Path(CheckpointFileName(1)), "garbage", "t").ok());
  ASSERT_TRUE(
      io::AtomicWriteFile(Path(CheckpointFileName(2)), "garbage", "t").ok());
  FairKMSolver solver =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  EXPECT_EQ(solver.ResumeFromCheckpointDir(dir_.string()).code(),
            StatusCode::kDataLoss);
  EXPECT_FALSE(solver.initialized());

  EXPECT_EQ(solver.ResumeFromCheckpointDir(Path("missing")).code(),
            StatusCode::kNotFound);
  fs::remove_all(dir_);
  fs::create_directories(dir_);
  EXPECT_EQ(solver.ResumeFromCheckpointDir(dir_.string()).code(),
            StatusCode::kNotFound);
}

TEST_F(CheckpointIoTest, RunResumeBudgetRestoresNewestValidCheckpoint) {
  const SeededWorld world = MakeSeededWorld(98);
  FairKMOptions options = BaseOptions();

  FairKMSolver reference =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(reference.Init(uint64_t{21}).ok());
  ASSERT_TRUE(reference.Run().ok());

  // Leg 1: run two sweeps with auto-checkpointing.
  RunBudget leg;
  leg.checkpoint_dir = dir_.string();
  leg.checkpoint_every = 1;
  leg.max_sweeps = 2;
  {
    FairKMSolver first =
        FairKMSolver::Create(&world.points, &world.sensitive, options)
            .ValueOrDie();
    ASSERT_TRUE(first.Init(uint64_t{21}).ok());
    ASSERT_TRUE(first.Run(leg).ok());
  }  // "crash": the solver dies with its in-memory state

  // Leg 2: a fresh process resumes from disk via the budget and finishes.
  FairKMSolver second =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  RunBudget resume_leg;
  resume_leg.checkpoint_dir = dir_.string();
  resume_leg.checkpoint_every = 1;
  resume_leg.resume = true;
  ASSERT_TRUE(second.Run(resume_leg).ok());  // no Init: state comes from disk

  const FairKMResult a = reference.CurrentResult().ValueOrDie();
  const FairKMResult b = second.CurrentResult().ValueOrDie();
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.objective_history, b.objective_history);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.total_candidates, b.total_candidates);
  EXPECT_EQ(a.pruned_candidates, b.pruned_candidates);
}

TEST_F(CheckpointIoTest, AutoCheckpointWriteFailureSurfacesCleanly) {
  const SeededWorld world = MakeSeededWorld(99);
  FairKMOptions options = BaseOptions();
  FairKMSolver solver =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(solver.Init(uint64_t{5}).ok());

  ASSERT_TRUE(fault::ArmFromString("checkpoint.write=error").ok());
  RunBudget budget;
  budget.checkpoint_dir = dir_.string();
  budget.checkpoint_every = 1;
  Result<RunStop> r = solver.Run(budget);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  fault::DisarmAll();

  // The solver is still consistent and can finish without checkpointing.
  ASSERT_TRUE(solver.Run().ok());
  EXPECT_TRUE(solver.CurrentResult().ok());
}

TEST_F(CheckpointIoTest, LoadIntoMismatchedSolverIsInvalidArgument) {
  const SeededWorld world = MakeSeededWorld(90);
  const SolverCheckpoint cp = TrainedCheckpoint(world, BaseOptions(), 2);
  const std::string path = Path("ckpt.fkmc");
  ASSERT_TRUE(WriteSolverCheckpoint(path, cp).ok());

  FairKMOptions other = BaseOptions();
  other.k = 4;
  FairKMSolver mismatched =
      FairKMSolver::Create(&world.points, &world.sensitive, other).ValueOrDie();
  EXPECT_EQ(mismatched.LoadCheckpoint(path).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace core
}  // namespace fairkm
