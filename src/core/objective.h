// Standalone evaluation of the FairKM objective (paper Eq. 1).
//
//   O = sum_C sum_{X in C} dist_N(X, C)  +  lambda * deviation_S(C, X)
//
// The K-Means term is cluster::SumOfSquaredErrors. The fairness deviation
// term (Eq. 7 for categorical, Eq. 22 for numeric sensitive attributes, with
// the Eq. 23 per-attribute weights) is computed here, including the two
// design knobs the paper motivates in §4.1 and which our ablation benches
// toggle: domain-cardinality normalization (Eq. 4) and cluster weighting by
// squared fractional cardinality (Eq. 6).

#ifndef FAIRKM_CORE_OBJECTIVE_H_
#define FAIRKM_CORE_OBJECTIVE_H_

#include "cluster/types.h"
#include "common/status.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace core {

/// \brief How each cluster's deviation is weighted in the sum over clusters.
enum class ClusterWeighting {
  /// (|C|/|X|)^2 — the paper's choice (Eq. 6).
  kSquaredFraction,
  /// |C|/|X| — cardinality-weighted sum (a boundary-case-prone alternative
  /// the paper argues against in §4.1).
  kFractional,
  /// 1 — unweighted sum (the other alternative argued against).
  kUnweighted,
};

/// \brief Knobs of the fairness deviation term.
struct FairnessTermConfig {
  /// Divide each categorical attribute's deviation by |Values(S)| (Eq. 4).
  bool normalize_domain = true;
  ClusterWeighting weighting = ClusterWeighting::kSquaredFraction;
};

/// \brief Evaluates deviation_S(C, X) (Eq. 7 / 22 / 23) from scratch.
///
/// Attribute weights are taken from the SensitiveView (w_S of Eq. 23).
double ComputeFairnessTerm(const data::SensitiveView& sensitive,
                           const cluster::Assignment& assignment, int k,
                           const FairnessTermConfig& config = {});

/// \brief Both terms of Eq. 1, evaluated from scratch.
struct ObjectiveValue {
  double kmeans_term = 0.0;
  double fairness_term = 0.0;

  double Total(double lambda) const { return kmeans_term + lambda * fairness_term; }
};

/// \brief Evaluates the full FairKM objective from scratch (reference path;
/// the optimizer uses incremental deltas — see core/fairkm_state.h).
ObjectiveValue ComputeObjective(const data::Matrix& points,
                                const data::SensitiveView& sensitive,
                                const cluster::Assignment& assignment, int k,
                                const FairnessTermConfig& config = {});

/// \brief Per-cluster scale factor applied to sum_s u_s^2 where
/// u_s = |C_s| - |C| * Fr_X(s); see fairkm_state.cc for the derivation.
/// Returns 0 for empty clusters.
double ClusterScale(ClusterWeighting weighting, size_t cluster_size, size_t num_rows);

}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_OBJECTIVE_H_
