#include "common/io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/fault_injection.h"

namespace fairkm {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fairkm_io_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    fault::DisarmAll();
    fs::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  // The CRC32C check value: ASCII "123456789".
  const std::string check = "123456789";
  EXPECT_EQ(Crc32c(check.data(), check.size()), 0xE3069283u);
  // 32 zero bytes (iSCSI test vector).
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32Test, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{13},
                       data.size()}) {
    const uint32_t part = Crc32c(data.data(), split);
    EXPECT_EQ(Crc32cExtend(part, data.data() + split, data.size() - split),
              whole)
        << "split at " << split;
  }
}

TEST(Crc32Test, MaskIsInvertibleEnoughToDiffer) {
  const uint32_t crc = Crc32c("abc", 3);
  EXPECT_NE(MaskCrc32c(crc), crc);
  EXPECT_NE(MaskCrc32c(MaskCrc32c(crc)), MaskCrc32c(crc));
}

TEST(BinaryIoTest, ScalarRoundTrip) {
  io::BinaryWriter w;
  w.PutU32(0xDEADBEEFu);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutI64(-42);
  w.PutU8(7);
  w.PutDouble(3.141592653589793);
  w.PutDouble(-0.0);
  w.PutString("sensitive-attr");

  io::BinaryReader r(w.buffer());
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  uint8_t u8;
  double d1, d2;
  std::string s;
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetDouble(&d1).ok());
  ASSERT_TRUE(r.GetDouble(&d2).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(d1, 3.141592653589793);
  EXPECT_TRUE(std::signbit(d2));
  EXPECT_EQ(s, "sensitive-attr");
  EXPECT_TRUE(r.ExpectFullyConsumed().ok());
}

TEST(BinaryIoTest, TruncatedReadIsDataLoss) {
  io::BinaryWriter w;
  w.PutU32(1);
  io::BinaryReader r(w.buffer());
  uint64_t u64;
  EXPECT_EQ(r.GetU64(&u64).code(), StatusCode::kDataLoss);
}

TEST(BinaryIoTest, OversizedDeclaredLengthIsDataLoss) {
  // A string header claiming far more bytes than the payload holds must be
  // rejected before any allocation happens.
  io::BinaryWriter w;
  w.PutU64(uint64_t{1} << 60);
  io::BinaryReader r(w.buffer());
  std::string s;
  EXPECT_EQ(r.GetString(&s).code(), StatusCode::kDataLoss);

  io::BinaryReader r2(w.buffer());
  size_t count;
  EXPECT_EQ(r2.GetCount(sizeof(double), &count).code(), StatusCode::kDataLoss);
}

TEST(BinaryIoTest, TrailingBytesAreDataLoss) {
  io::BinaryWriter w;
  w.PutU32(1);
  w.PutU32(2);
  io::BinaryReader r(w.buffer());
  uint32_t v;
  ASSERT_TRUE(r.GetU32(&v).ok());
  EXPECT_EQ(r.ExpectFullyConsumed().code(), StatusCode::kDataLoss);
}

TEST_F(IoTest, AtomicWriteReadRoundTrip) {
  const std::string path = Path("blob.bin");
  std::string data = "hello";
  data.push_back('\0');
  data += "binary";
  ASSERT_TRUE(io::AtomicWriteFile(path, data, "test").ok());
  // No temp residue after a successful write.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::string back;
  ASSERT_TRUE(io::ReadFile(path, &back, "test").ok());
  EXPECT_EQ(back, data);
}

TEST_F(IoTest, ReadMissingFileIsNotFound) {
  std::string out;
  EXPECT_EQ(io::ReadFile(Path("nope.bin"), &out, "test").code(),
            StatusCode::kNotFound);
}

std::vector<io::Section> SampleSections() {
  io::BinaryWriter a;
  a.PutU32(42);
  a.PutDouble(2.5);
  io::BinaryWriter b;
  b.PutString("payload two");
  return {{1, a.Release()}, {2, b.Release()}};
}

constexpr uint32_t kMagic = 0x464B4D43;  // "FKMC"

TEST_F(IoTest, SectionFileRoundTrip) {
  const std::string path = Path("sections.fkmc");
  ASSERT_TRUE(
      io::WriteSectionFile(path, kMagic, 3, SampleSections(), "test").ok());
  Result<io::SectionFile> r = io::ReadSectionFile(path, kMagic, 3, "test");
  ASSERT_TRUE(r.ok()) << r.status();
  const io::SectionFile& f = r.ValueOrDie();
  EXPECT_EQ(f.version, 3u);
  ASSERT_EQ(f.sections.size(), 2u);
  ASSERT_NE(f.Find(1), nullptr);
  ASSERT_NE(f.Find(2), nullptr);
  EXPECT_EQ(f.Find(3), nullptr);

  io::BinaryReader ra(f.Find(1)->payload);
  uint32_t v;
  double d;
  ASSERT_TRUE(ra.GetU32(&v).ok());
  ASSERT_TRUE(ra.GetDouble(&d).ok());
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(d, 2.5);
}

TEST_F(IoTest, SectionFileBadMagicIsDataLoss) {
  const std::string path = Path("sections.fkmc");
  ASSERT_TRUE(
      io::WriteSectionFile(path, kMagic, 1, SampleSections(), "test").ok());
  EXPECT_EQ(io::ReadSectionFile(path, kMagic + 1, 1, "test").status().code(),
            StatusCode::kDataLoss);
}

TEST_F(IoTest, SectionFileNewerVersionIsInvalidArgument) {
  const std::string path = Path("sections.fkmc");
  ASSERT_TRUE(
      io::WriteSectionFile(path, kMagic, 9, SampleSections(), "test").ok());
  EXPECT_EQ(io::ReadSectionFile(path, kMagic, 1, "test").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(IoTest, SectionFileBitFlipIsDataLoss) {
  const std::string path = Path("sections.fkmc");
  ASSERT_TRUE(
      io::WriteSectionFile(path, kMagic, 1, SampleSections(), "test").ok());
  std::string raw;
  ASSERT_TRUE(io::ReadFile(path, &raw, "test").ok());
  // Flip one bit in every byte position in turn; every single-bit corruption
  // must be caught by a header or payload checksum (or a framing check).
  for (size_t i = 0; i < raw.size(); ++i) {
    std::string mutated = raw;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x10);
    ASSERT_TRUE(io::AtomicWriteFile(path, mutated, "test").ok());
    Status st = io::ReadSectionFile(path, kMagic, 1, "test").status();
    EXPECT_FALSE(st.ok()) << "bit flip at byte " << i << " went undetected";
  }
}

TEST_F(IoTest, SectionFileTruncationIsDataLoss) {
  const std::string path = Path("sections.fkmc");
  ASSERT_TRUE(
      io::WriteSectionFile(path, kMagic, 1, SampleSections(), "test").ok());
  std::string raw;
  ASSERT_TRUE(io::ReadFile(path, &raw, "test").ok());
  for (size_t keep = 0; keep < raw.size(); ++keep) {
    ASSERT_TRUE(
        io::AtomicWriteFile(path, raw.substr(0, keep), "test").ok());
    Status st = io::ReadSectionFile(path, kMagic, 1, "test").status();
    EXPECT_EQ(st.code(), StatusCode::kDataLoss)
        << "truncation to " << keep << " bytes: " << st;
  }
}

TEST_F(IoTest, InjectedWriteErrorLeavesOldFileIntact) {
  const std::string path = Path("sections.fkmc");
  ASSERT_TRUE(
      io::WriteSectionFile(path, kMagic, 1, SampleSections(), "test").ok());

  fault::FaultSpec spec;
  spec.kind = fault::Kind::kError;
  fault::Arm("test.write", spec);
  io::BinaryWriter other;
  other.PutU32(7);
  Status st =
      io::WriteSectionFile(path, kMagic, 1, {{5, other.Release()}}, "test");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  fault::DisarmAll();

  // The destination still holds the previous good image.
  Result<io::SectionFile> r = io::ReadSectionFile(path, kMagic, 1, "test");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r.ValueOrDie().Find(1), nullptr);
}

TEST_F(IoTest, InjectedShortWriteIsSilentButDetectedOnRead) {
  const std::string path = Path("sections.fkmc");
  fault::FaultSpec spec;
  spec.kind = fault::Kind::kShortWrite;
  spec.keep_bytes = 10;
  fault::Arm("test.write", spec);
  // The write itself reports success: the corruption is only observable
  // through the reader's checksums — that is the property under test.
  ASSERT_TRUE(
      io::WriteSectionFile(path, kMagic, 1, SampleSections(), "test").ok());
  fault::DisarmAll();
  EXPECT_EQ(io::ReadSectionFile(path, kMagic, 1, "test").status().code(),
            StatusCode::kDataLoss);
}

TEST_F(IoTest, InjectedTornRenameIsSilentButDetectedOnRead) {
  const std::string path = Path("sections.fkmc");
  fault::FaultSpec spec;
  spec.kind = fault::Kind::kTornRename;
  fault::Arm("test.rename", spec);
  ASSERT_TRUE(
      io::WriteSectionFile(path, kMagic, 1, SampleSections(), "test").ok());
  fault::DisarmAll();
  EXPECT_EQ(io::ReadSectionFile(path, kMagic, 1, "test").status().code(),
            StatusCode::kDataLoss);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(IoTest, InjectedDirsyncFailureIsCountedNotFatal) {
  // Directory fsync is best-effort: a fired dirsync fault must not fail the
  // write (the rename succeeded), but it must tick the process-wide counter
  // so supervisors can observe the durability downgrade.
  io::ResetDirFsyncFailures();
  const std::string path = Path("sections.fkmc");
  fault::FaultSpec spec;
  spec.kind = fault::Kind::kError;
  fault::Arm("test.dirsync", spec);
  ASSERT_TRUE(
      io::WriteSectionFile(path, kMagic, 1, SampleSections(), "test").ok());
  EXPECT_EQ(io::DirFsyncFailures(), 1u);
  fault::DisarmAll();

  // The file itself is complete and readable despite the skipped dir fsync.
  EXPECT_TRUE(io::ReadSectionFile(path, kMagic, 1, "test").ok());

  ASSERT_TRUE(io::AtomicWriteFile(Path("clean.bin"), "x", "test").ok());
  EXPECT_EQ(io::DirFsyncFailures(), 1u);  // no new failures
  io::ResetDirFsyncFailures();
  EXPECT_EQ(io::DirFsyncFailures(), 0u);
}

TEST_F(IoTest, ListDirectoryAndRemove) {
  ASSERT_TRUE(io::AtomicWriteFile(Path("b.bin"), "b", "test").ok());
  ASSERT_TRUE(io::AtomicWriteFile(Path("a.bin"), "a", "test").ok());
  fs::create_directories(dir_ / "subdir");

  Result<std::vector<std::string>> names = io::ListDirectory(dir_.string());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.ValueOrDie(),
            (std::vector<std::string>{"a.bin", "b.bin"}));

  ASSERT_TRUE(io::RemoveFile(Path("a.bin")).ok());
  ASSERT_TRUE(io::RemoveFile(Path("a.bin")).ok());  // idempotent
  names = io::ListDirectory(dir_.string());
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.ValueOrDie(), (std::vector<std::string>{"b.bin"}));

  EXPECT_EQ(io::ListDirectory(Path("missing")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(IoTest, CreateDirectoriesIsIdempotent) {
  const std::string nested = (dir_ / "x" / "y" / "z").string();
  ASSERT_TRUE(io::CreateDirectories(nested).ok());
  ASSERT_TRUE(io::CreateDirectories(nested).ok());
  EXPECT_TRUE(fs::is_directory(nested));
}

}  // namespace
}  // namespace fairkm
