// Unit coverage for the snapshot-parallel sweep (core/fairkm.cc): option
// validation, determinism across thread counts, and equality with the serial
// mini-batch sweep. This suite is also the ThreadSanitizer target in
// tools/check.sh — it drives the concurrent candidate-evaluation phase hard
// enough for TSan to observe the ThreadPool handoffs.

#include <gtest/gtest.h>

#include <cmath>

#include "core/fairkm.h"
#include "test_util.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace testutil {
namespace {

core::FairKMResult MustRun(const SeededWorld& world,
                           const core::FairKMOptions& options, uint64_t seed) {
  Rng rng(seed);
  auto result = RunFairKMSession(world.points, world.sensitive, options, &rng);
  if (!result.ok()) {
    ADD_FAILURE() << "FairKM session: " << result.status().ToString();
    return core::FairKMResult{};
  }
  return result.MoveValueUnsafe();
}

TEST(FairKMParallel, RejectsParallelSweepWithoutMinibatch) {
  const SeededWorld world = MakeSeededWorld(11);
  core::FairKMOptions options;
  options.k = world.k;
  options.sweep_mode = core::SweepMode::kParallelSnapshot;
  options.minibatch_size = 0;
  Rng rng(12);
  EXPECT_FALSE(RunFairKMSession(world.points, world.sensitive, options, &rng).ok());
}

TEST(FairKMParallel, RejectsNegativeThreadCount) {
  const SeededWorld world = MakeSeededWorld(13);
  core::FairKMOptions options;
  options.k = world.k;
  options.minibatch_size = 8;
  options.sweep_mode = core::SweepMode::kParallelSnapshot;
  options.num_threads = -1;
  Rng rng(14);
  EXPECT_FALSE(RunFairKMSession(world.points, world.sensitive, options, &rng).ok());
}

TEST(FairKMParallel, ThreadCountDoesNotChangeTheTrajectory) {
  WorldSpec spec;
  spec.per_blob = 30;  // 90 points over 6 mini-batches.
  const SeededWorld world = MakeSeededWorld(15, spec);
  core::FairKMOptions options;
  options.k = world.k;
  options.max_iterations = 10;
  options.minibatch_size = 16;
  options.sweep_mode = core::SweepMode::kParallelSnapshot;

  options.num_threads = 1;
  const core::FairKMResult base = MustRun(world, options, 99);
  ASSERT_FALSE(base.assignment.empty());
  for (int threads : {2, 3, 8}) {
    options.num_threads = threads;
    const core::FairKMResult got = MustRun(world, options, 99);
    EXPECT_EQ(got.assignment, base.assignment) << threads << " threads";
    ASSERT_EQ(got.objective_history.size(), base.objective_history.size());
    for (size_t s = 0; s < base.objective_history.size(); ++s) {
      EXPECT_DOUBLE_EQ(got.objective_history[s], base.objective_history[s])
          << "sweep " << s << ", " << threads << " threads";
    }
  }
}

TEST(FairKMParallel, MatchesSerialMinibatchSweep) {
  const SeededWorld world = MakeSeededWorld(16);
  core::FairKMOptions serial;
  serial.k = world.k;
  serial.max_iterations = 8;
  serial.minibatch_size = 10;
  const core::FairKMResult want = MustRun(world, serial, 44);

  core::FairKMOptions parallel = serial;
  parallel.sweep_mode = core::SweepMode::kParallelSnapshot;
  parallel.num_threads = 4;
  const core::FairKMResult got = MustRun(world, parallel, 44);

  EXPECT_EQ(got.assignment, want.assignment);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.converged, want.converged);
  EXPECT_NEAR(got.total_objective, want.total_objective,
              1e-9 * std::max(1.0, std::fabs(want.total_objective)));
}

TEST(FairKMParallel, HandlesBatchLargerThanDataset) {
  WorldSpec spec;
  spec.per_blob = 5;  // 15 points, one 64-point "batch".
  const SeededWorld world = MakeSeededWorld(17, spec);
  core::FairKMOptions options;
  options.k = world.k;
  options.max_iterations = 6;
  options.minibatch_size = 64;
  options.sweep_mode = core::SweepMode::kParallelSnapshot;
  options.num_threads = 4;
  const core::FairKMResult got = MustRun(world, options, 55);
  EXPECT_FALSE(got.assignment.empty());

  core::FairKMOptions serial = options;
  serial.sweep_mode = core::SweepMode::kSerial;
  const core::FairKMResult want = MustRun(world, serial, 55);
  EXPECT_EQ(got.assignment, want.assignment);
}

}  // namespace
}  // namespace testutil
}  // namespace fairkm
