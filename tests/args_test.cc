#include "common/args.h"

#include <gtest/gtest.h>

namespace fairkm {
namespace {

TEST(ArgsTest, DefaultsApply) {
  ArgParser parser;
  parser.AddFlag("k", "5", "clusters");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_EQ(parser.GetInt("k"), 5);
}

TEST(ArgsTest, EqualsForm) {
  ArgParser parser;
  parser.AddFlag("k", "5", "clusters");
  const char* argv[] = {"prog", "--k=15"};
  ASSERT_TRUE(parser.Parse(2, argv).ok());
  EXPECT_EQ(parser.GetInt("k"), 15);
}

TEST(ArgsTest, SpaceForm) {
  ArgParser parser;
  parser.AddFlag("lambda", "1.0", "weight");
  const char* argv[] = {"prog", "--lambda", "2.5"};
  ASSERT_TRUE(parser.Parse(3, argv).ok());
  EXPECT_DOUBLE_EQ(parser.GetDouble("lambda"), 2.5);
}

TEST(ArgsTest, BareBooleanFlag) {
  ArgParser parser;
  parser.AddFlag("verbose", "false", "chatty");
  parser.AddFlag("k", "1", "clusters");
  const char* argv[] = {"prog", "--verbose", "--k=2"};
  ASSERT_TRUE(parser.Parse(3, argv).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));
  EXPECT_EQ(parser.GetInt("k"), 2);
}

TEST(ArgsTest, BoolSpellings) {
  ArgParser parser;
  parser.AddFlag("a", "true", "");
  parser.AddFlag("b", "YES", "");
  parser.AddFlag("c", "on", "");
  parser.AddFlag("d", "1", "");
  parser.AddFlag("e", "no", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_TRUE(parser.GetBool("a"));
  EXPECT_TRUE(parser.GetBool("b"));
  EXPECT_TRUE(parser.GetBool("c"));
  EXPECT_TRUE(parser.GetBool("d"));
  EXPECT_FALSE(parser.GetBool("e"));
}

TEST(ArgsTest, UnknownFlagRejected) {
  ArgParser parser;
  parser.AddFlag("k", "5", "clusters");
  const char* argv[] = {"prog", "--mystery=1"};
  Status st = parser.Parse(2, argv);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ArgsTest, PositionalArgumentsCollected) {
  ArgParser parser;
  parser.AddFlag("k", "5", "clusters");
  const char* argv[] = {"prog", "input.csv", "--k=3", "output.csv"};
  ASSERT_TRUE(parser.Parse(4, argv).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"input.csv", "output.csv"}));
}

TEST(ArgsTest, HelpStringMentionsFlags) {
  ArgParser parser;
  parser.AddFlag("seeds", "5", "number of random seeds");
  std::string help = parser.HelpString("prog");
  EXPECT_NE(help.find("--seeds"), std::string::npos);
  EXPECT_NE(help.find("number of random seeds"), std::string::npos);
}

TEST(EnvIntTest, FallbackWhenUnset) {
  EXPECT_EQ(EnvInt("FAIRKM_SURELY_UNSET_VAR_12345", 7), 7);
}

TEST(EnvIntTest, ReadsValue) {
  setenv("FAIRKM_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(EnvInt("FAIRKM_TEST_ENV_INT", 7), 42);
  setenv("FAIRKM_TEST_ENV_INT", "not-a-number", 1);
  EXPECT_EQ(EnvInt("FAIRKM_TEST_ENV_INT", 7), 7);
  unsetenv("FAIRKM_TEST_ENV_INT");
}

}  // namespace
}  // namespace fairkm
