// Shared support for the table/figure reproduction benches.
//
// Environment knobs (all benches honour them):
//   FAIRKM_BENCH_SEEDS      seeds per configuration (default 5; paper: 100)
//   FAIRKM_BENCH_ADULT_ROWS Adult rows (default 0 = the full 15,682)
//   FAIRKM_BENCH_FAST       1 = quick smoke settings (2 seeds, 2,000 rows)
//   FAIRKM_BENCH_THREADS    worker threads across seeds (default: hardware)

#ifndef FAIRKM_BENCH_BENCH_COMMON_H_
#define FAIRKM_BENCH_BENCH_COMMON_H_

#include <cstddef>
#include <string>

#include "exp/datasets.h"
#include "exp/runner.h"

namespace fairkm {
namespace bench {

/// \brief Resolved bench settings.
struct BenchEnv {
  size_t seeds = 5;
  size_t adult_rows = 0;  ///< 0 = full dataset.
  size_t threads = 4;
  bool fast = false;
};

/// \brief Reads the FAIRKM_BENCH_* environment variables.
BenchEnv LoadBenchEnv();

/// \brief Loads (and caches per process) the Adult experiment data under the
/// env-selected row count.
const exp::ExperimentData& AdultData(const BenchEnv& env);

/// \brief Loads (and caches) the Kinematics experiment data.
const exp::ExperimentData& KinematicsData();

/// \brief Prints the standard bench banner (dataset sizes, seeds, lambdas).
void PrintBanner(const std::string& title, const BenchEnv& env);

/// \brief FairKM improvement over the best baseline, in percent (the paper's
/// "FairKM Impr(%)" column): 100 * (best_baseline - fairkm) / best_baseline.
double ImprovementPercent(double fairkm, double baseline_a, double baseline_b);

}  // namespace bench
}  // namespace fairkm

#endif  // FAIRKM_BENCH_BENCH_COMMON_H_
