// FairKMOptions::Validate is the one documented validity surface of the
// options struct: every entry point that consumes FairKMOptions calls it
// instead of scattering ad-hoc checks. This suite pins each documented
// rejection, the documented accepts (auto lambda, zero minibatch), and that
// the rejections propagate unchanged through FairKMSolver::Create.

#include "core/fairkm.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/solver.h"
#include "data/matrix.h"
#include "data/sensitive.h"
#include "test_util.h"

namespace fairkm {
namespace core {
namespace {

void ExpectInvalid(const FairKMOptions& options, const char* what) {
  const Status st = options.Validate();
  ASSERT_FALSE(st.ok()) << what;
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << what;
}

TEST(FairKMOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(FairKMOptions().Validate().ok());
}

TEST(FairKMOptionsTest, PaperAndMiniBatchConfigurationsAreValid) {
  FairKMOptions options;
  options.k = 8;
  options.lambda = 60.0;
  options.max_iterations = 30;
  options.minibatch_size = 512;
  EXPECT_TRUE(options.Validate().ok());

  options.sweep_mode = SweepMode::kParallelSnapshot;
  options.num_threads = 4;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(FairKMOptionsTest, RejectsNonPositiveK) {
  FairKMOptions options;
  options.k = 0;
  ExpectInvalid(options, "k = 0");
  options.k = -3;
  ExpectInvalid(options, "k = -3");
}

TEST(FairKMOptionsTest, RejectsNonPositiveMaxIterations) {
  FairKMOptions options;
  options.max_iterations = 0;
  ExpectInvalid(options, "max_iterations = 0");
  options.max_iterations = -1;
  ExpectInvalid(options, "max_iterations = -1");
}

TEST(FairKMOptionsTest, RejectsNegativeMinibatchSize) {
  FairKMOptions options;
  options.minibatch_size = -1;
  ExpectInvalid(options, "minibatch_size = -1");
  // 0 is the paper behaviour (update after every move), not an error.
  options.minibatch_size = 0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(FairKMOptionsTest, RejectsNegativeNumThreads) {
  FairKMOptions options;
  options.num_threads = -2;
  ExpectInvalid(options, "num_threads = -2");
  // 0 means hardware concurrency.
  options.num_threads = 0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(FairKMOptionsTest, ParallelSnapshotRequiresMiniBatching) {
  FairKMOptions options;
  options.sweep_mode = SweepMode::kParallelSnapshot;
  options.minibatch_size = 0;
  const Status st = options.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("minibatch_size"), std::string::npos);

  options.minibatch_size = 1;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(FairKMOptionsTest, NegativeFiniteLambdaMeansAuto) {
  FairKMOptions options;
  options.lambda = -1.0;
  EXPECT_TRUE(options.Validate().ok());
  options.lambda = 0.0;  // Degenerates to move-based K-Means; still valid.
  EXPECT_TRUE(options.Validate().ok());
}

TEST(FairKMOptionsTest, RejectsNonFiniteLambda) {
  FairKMOptions options;
  options.lambda = std::numeric_limits<double>::quiet_NaN();
  ExpectInvalid(options, "lambda = NaN");
  options.lambda = std::numeric_limits<double>::infinity();
  ExpectInvalid(options, "lambda = +inf");
  options.lambda = -std::numeric_limits<double>::infinity();
  ExpectInvalid(options, "lambda = -inf");
}

TEST(FairKMOptionsTest, RejectsBadMinImprovement) {
  FairKMOptions options;
  options.min_improvement = std::numeric_limits<double>::quiet_NaN();
  ExpectInvalid(options, "min_improvement = NaN");
  options.min_improvement = -1e-9;
  ExpectInvalid(options, "min_improvement < 0");
  options.min_improvement = 0.0;
  EXPECT_TRUE(options.Validate().ok());
}

// The solver (and through it every session-API entry point) must surface
// Validate's verdict verbatim rather than re-deriving its own checks.
TEST(FairKMOptionsTest, SolverCreatePropagatesValidate) {
  Rng rng(77);
  const data::Matrix points = testutil::MakeBlobs(2, 10, 3, &rng);
  const data::SensitiveView sensitive =
      testutil::MakeView({testutil::MakeCategorical(
          testutil::RandomCodes(points.rows(), 2, &rng), 2)});

  FairKMOptions bad;
  bad.k = 0;
  const auto rejected = FairKMSolver::Create(&points, &sensitive, bad);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(rejected.status().message(), bad.Validate().message());

  FairKMOptions snapshot_without_batch;
  snapshot_without_batch.k = 2;
  snapshot_without_batch.sweep_mode = SweepMode::kParallelSnapshot;
  const auto rejected2 =
      FairKMSolver::Create(&points, &sensitive, snapshot_without_batch);
  ASSERT_FALSE(rejected2.ok());
  EXPECT_EQ(rejected2.status().code(), StatusCode::kInvalidArgument);

  FairKMOptions good;
  good.k = 2;
  good.max_iterations = 3;
  EXPECT_TRUE(FairKMSolver::Create(&points, &sensitive, good).ok());
}

}  // namespace
}  // namespace core
}  // namespace fairkm
