#include "core/fairkm.h"

#include "core/fairkm_state.h"

namespace fairkm {
namespace core {

double SuggestLambda(size_t num_rows, int k) {
  FAIRKM_DCHECK(k > 0);
  const double ratio = static_cast<double>(num_rows) / static_cast<double>(k);
  return ratio * ratio;
}

Result<FairKMResult> RunFairKM(const data::Matrix& points,
                               const data::SensitiveView& sensitive,
                               const FairKMOptions& options, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (options.minibatch_size < 0) {
    return Status::InvalidArgument("minibatch_size must be non-negative");
  }
  // Validate k before SuggestLambda, whose k > 0 DCHECK would abort first in
  // debug builds.
  if (options.k <= 0) return Status::InvalidArgument("k must be positive");
  const size_t n = points.rows();
  const double lambda =
      options.lambda < 0 ? SuggestLambda(n, options.k) : options.lambda;

  FAIRKM_ASSIGN_OR_RETURN(
      cluster::Assignment initial,
      cluster::MakeInitialAssignment(points, options.k, options.init, rng));
  FAIRKM_ASSIGN_OR_RETURN(FairKMState state,
                          FairKMState::Create(&points, &sensitive, options.k,
                                              std::move(initial), options.fairness));

  const bool minibatch = options.minibatch_size > 0;
  state.EnablePrototypeSnapshot(minibatch);

  FairKMResult result;
  result.lambda_used = lambda;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    size_t moves = 0;
    // Round-robin over objects (paper Algorithm 1, step 4): each object is
    // re-assigned to the cluster minimizing the exact objective change
    // (Eq. 9), with prototypes and fractional representations updated
    // immediately (steps 6-7) — or in mini-batches when configured.
    for (size_t i = 0; i < n; ++i) {
      const int from = state.cluster_of(i);
      double best_delta = -options.min_improvement;
      int best_cluster = from;
      for (int c = 0; c < options.k; ++c) {
        if (c == from) continue;
        const double delta =
            state.DeltaKMeans(i, c) + lambda * state.DeltaFairness(i, c);
        if (delta < best_delta) {
          best_delta = delta;
          best_cluster = c;
        }
      }
      if (best_cluster != from) {
        state.Move(i, best_cluster);
        ++moves;
      }
      if (minibatch && (i + 1) % static_cast<size_t>(options.minibatch_size) == 0) {
        state.RefreshPrototypes();
      }
    }
    if (minibatch) state.RefreshPrototypes();
    result.iterations = iter + 1;
    result.objective_history.push_back(state.KMeansTerm() +
                                       lambda * state.FairnessTerm());
    if (moves == 0) {
      result.converged = true;
      break;
    }
  }

  result.assignment = state.assignment();
  cluster::FinalizeResult(points, options.k, &result);
  result.kmeans_term = result.kmeans_objective;
  result.fairness_term = state.FairnessTerm();
  result.total_objective = result.kmeans_term + lambda * result.fairness_term;
  return result;
}

}  // namespace core
}  // namespace fairkm
