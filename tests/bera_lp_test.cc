#include "cluster/bera_lp.h"

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "metrics/fairness.h"
#include "test_util.h"

namespace fairkm {
namespace cluster {
namespace {

struct World {
  data::Matrix points;
  data::SensitiveView sensitive;
  data::Matrix centers;
};

World MakeWorld(uint64_t seed, int blobs = 2, int per_blob = 30) {
  Rng rng(seed);
  World w;
  w.points = testutil::MakeBlobs(blobs, per_blob, 2, &rng);
  const size_t n = w.points.rows();
  std::vector<int32_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    const int blob = static_cast<int>(i / static_cast<size_t>(per_blob));
    codes[i] = rng.UniformDouble() < 0.85 ? blob % 2 : 1 - blob % 2;
  }
  w.sensitive = testutil::MakeView({testutil::MakeCategorical(codes, 2, "g")});
  KMeansOptions opt;
  opt.k = blobs;
  Rng krng(seed ^ 0xF00);
  w.centers = RunKMeans(w.points, opt, &krng).ValueOrDie().centroids;
  return w;
}

TEST(BeraLpTest, ValidatesInputs) {
  World w = MakeWorld(1);
  data::Matrix empty;
  EXPECT_FALSE(RunBeraFairAssignment(empty, w.centers, w.sensitive).ok());
  EXPECT_FALSE(RunBeraFairAssignment(w.points, empty, w.sensitive).ok());
  data::SensitiveView no_cats;
  EXPECT_FALSE(RunBeraFairAssignment(w.points, w.centers, no_cats).ok());
  BeraOptions bad;
  bad.bound_slack = -0.5;
  EXPECT_FALSE(RunBeraFairAssignment(w.points, w.centers, w.sensitive, bad).ok());
}

TEST(BeraLpTest, FractionalSolutionRespectsBounds) {
  World w = MakeWorld(3);
  BeraOptions opt;
  opt.bound_slack = 0.3;
  auto r = RunBeraFairAssignment(w.points, w.centers, w.sensitive, opt);
  ASSERT_TRUE(r.ok());
  const BeraResult& result = r.ValueOrDie();
  EXPECT_TRUE(ValidateAssignment(result.assignment, w.points.rows(), 2).ok());
  EXPECT_GT(result.lp_objective, 0.0);
  // Rounding can only increase cost relative to the fractional optimum.
  EXPECT_GE(result.rounded_objective, result.lp_objective - 1e-6);
}

TEST(BeraLpTest, ImprovesFairnessOverNearestAssignment) {
  World w = MakeWorld(5);
  const auto& attr = w.sensitive.categorical[0];

  Assignment nearest;
  AssignToNearest(w.points, w.centers, &nearest);
  auto fair_nearest = metrics::EvaluateAttributeFairness(attr, nearest, 2);

  BeraOptions opt;
  opt.bound_slack = 0.15;
  auto r = RunBeraFairAssignment(w.points, w.centers, w.sensitive, opt).ValueOrDie();
  auto fair_bera = metrics::EvaluateAttributeFairness(attr, r.assignment, 2);

  EXPECT_LT(fair_bera.ae, fair_nearest.ae);
  EXPECT_LT(fair_bera.me, fair_nearest.me);
}

TEST(BeraLpTest, TightBoundsApproachProportionality) {
  World w = MakeWorld(7);
  BeraOptions opt;
  opt.bound_slack = 0.05;
  auto r = RunBeraFairAssignment(w.points, w.centers, w.sensitive, opt).ValueOrDie();
  const auto& attr = w.sensitive.categorical[0];
  auto fairness = metrics::EvaluateAttributeFairness(attr, r.assignment, 2);
  // With a 5% multiplicative band and rounding noise, max deviation of the
  // per-cluster share from the dataset share stays small.
  EXPECT_LT(fairness.me, 0.15);
}

TEST(BeraLpTest, LooseBoundsRecoverNearestAssignment) {
  World w = MakeWorld(9);
  BeraOptions opt;
  opt.bound_slack = 100.0;  // Bounds never bind.
  auto r = RunBeraFairAssignment(w.points, w.centers, w.sensitive, opt).ValueOrDie();
  Assignment nearest;
  AssignToNearest(w.points, w.centers, &nearest);
  EXPECT_EQ(r.assignment, nearest);
}

TEST(BeraLpTest, MultipleOverlappingGroups) {
  // Two binary attributes — the "overlapping groups" setting of Bera et al.
  Rng rng(11);
  World w = MakeWorld(11);
  const size_t n = w.points.rows();
  auto second = testutil::MakeCategorical(testutil::RandomCodes(n, 2, &rng), 2, "h");
  w.sensitive.categorical.push_back(second);
  BeraOptions opt;
  opt.bound_slack = 0.4;
  auto r = RunBeraFairAssignment(w.points, w.centers, w.sensitive, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(ValidateAssignment(r.ValueOrDie().assignment, n, 2).ok());
}

}  // namespace
}  // namespace cluster
}  // namespace fairkm
