#!/usr/bin/env bash
# Runs the scaling bench and records its timings as JSON, so the perf
# trajectory of the FairKM hot loop is tracked PR over PR.
#
#   tools/bench_json.sh                 # writes BENCH_scaling.json at repo root
#   OUT=/tmp/b.json tools/bench_json.sh # custom output path
#
# The script configures and builds its build dir as CMAKE_BUILD_TYPE=Release
# itself (default BUILD_DIR=build-bench so it never flips a developer's Debug
# tree; CI points BUILD_DIR at its already-Release dir and the reconfigure is
# a no-op). Recording an unoptimized binary is rejected twice: the configure
# here, and gate 0 below on the BM_BuildConfig_<type> marker the binary
# itself emits — so a debug record fails loudly even if the JSON was produced
# outside this script.
#
# Gates run against the JSON just written:
#   0. Build type: the BM_BuildConfig_* marker (NDEBUG of the bench binary,
#      not of the benchmark library) must say "release".
#   1. Delta-kernel speedup: BM_SweepCandidates_Reference (the
#      pre-optimization kernels, kept in FairKMState as oracles) vs
#      BM_SweepCandidates_DeltaKernels (the batched K-Means pass + O(1)
#      fairness closed form, routed through the dispatch-selected kernel
#      backend). Fails below MIN_SPEEDUP (default 2.0).
#   2. SIMD dispatch sanity: BM_KernelGemv_Scalar/256 vs
#      BM_KernelGemv_Dispatch/256 (cpu_time). The dispatch-selected backend
#      must at least match the scalar kernel — ratio >= MIN_SIMD_RATIO
#      (default 0.9). The d=256 GEMV microbench is the gate anchor because
#      it is far less noisy than the sweep-level pair (identical code
#      measures within ~1% run-to-run, vs ~15% wobble for the 0.4 ms sweep
#      loop on shared runners) while a genuine SIMD regression still shows
#      up at full magnitude. The sweep-level scalar-vs-dispatch pair
#      (BM_SweepCandidates_DeltaKernels_Scalar vs _DeltaKernels) is recorded
#      and printed for trend tracking but not gated.
#   3. Pruning speedup: BM_FairKM_Sweep_d64_Exact vs _Pruned (d=64, n=50k
#      synthetic tf-idf-like world, bit-identical trajectories) must show
#      >= MIN_PRUNE_SPEEDUP (default 2.0) end-to-end.
#   4. Pruned fraction: the pruned_fraction counter of
#      BM_FairKM_AllAttributes (Adult, all sensitive attributes) must be
#      >= MIN_PRUNED_FRACTION (default 0.5) — the bounds must actually bite
#      on the paper's own workload, not just on synthetic data.
#   5. Solver reuse: BM_FairKM_MultiSeed_Cold (fresh FairKMSolver per seed)
#      vs BM_FairKM_MultiSeed_Reused (one solver re-Init'ed per seed, the
#      session API's warm path) must show >= MIN_REUSE_SPEEDUP (default
#      1.03; ~1.1x measured — trajectories are bit-identical, the gate
#      asserts the amortized construction actually pays).
#   6. Batched serving: BM_Assign_Scalar (per-point FairKMSolver::Assign)
#      vs BM_Assign_Batched (serve::AssignBatch over a frozen ModelSnapshot,
#      expanded-form distances on the aligned GEMV kernels) must show
#      >= MIN_ASSIGN_SPEEDUP (default 1.7; ~1.9-2.1x measured depending
#      on host — the gate asserts batching pays, not a specific margin, so
#      the floor leaves headroom for slower containers). Bit-identical
#      (tests/serve_assign_test.cc); only the scoring path differs.
#   7. Sharded-sweep overhead: BM_FairKM_SnapshotSweep_Sharded (mmap store +
#      core::ShardedSweep eviction) vs BM_FairKM_SnapshotSweep_InProcess
#      (matrix-backed solver, same options and seed, bit-identical
#      trajectory) must stay within MAX_SHARDED_OVERHEAD (default 1.15) —
#      out-of-core residency control is bought with madvise calls and page
#      refaults, not with a slower sweep. Store materialization is excluded
#      (the store is built once outside the timed loop).
#   8. Online admit throughput: the points_per_sec counter of
#      BM_Online_Admit (live Eq. 1 insertion scoring + store append + state
#      adoption + dataset-distribution refresh, batches of 64 against a
#      4096-row engine) must be >= MIN_ADMIT_POINTS_PER_SEC (default 2000
#      points/s — a deliberately conservative floor: the admit path must
#      stay incremental; falling through to anything resembling a per-batch
#      retrain drops throughput by orders of magnitude, which is what this
#      gate is built to catch). BM_Online_DriftResweep (the full bounded
#      drift response: canonical flush + one budgeted sweep + republish) is
#      recorded for trend tracking but not gated — its cost is O(n) by
#      design.
# The BM_ActiveKernelBackend_<name> marker entry records which backend the
# runtime dispatch picked for this host/run.
#
# Knobs: BUILD_DIR (default build-bench), OUT (default BENCH_scaling.json),
# FILTER (default: the FairKM sweep/kernel benches), MIN_TIME (default 0.2),
# MIN_SPEEDUP (default 2.0), MIN_SIMD_RATIO (default 0.9),
# MIN_PRUNE_SPEEDUP (default 2.0), MIN_PRUNED_FRACTION (default 0.5),
# MIN_REUSE_SPEEDUP (default 1.03), MIN_ASSIGN_SPEEDUP (default 1.7),
# MAX_SHARDED_OVERHEAD (default 1.15),
# MIN_ADMIT_POINTS_PER_SEC (default 2000),
# SHARDED_ROWS (unset: carry the existing sharded_scaling curve forward;
# set to e.g. "1000000,10000000" to re-measure it with tools/sharded_scaling),
# SKIP_BUILD=1 to use an existing binary as-is (gate 0 still applies).

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-bench}
OUT=${OUT:-BENCH_scaling.json}
FILTER=${FILTER:-'Assign_|SweepCandidates|FairKM_AllAttributes|FairKM_MiniBatch|FairKM_MultiSeed|FairKM_ParallelSweep|FairKM_SnapshotSweep|FairKM_Sweep|MoveDeltaEvaluation|KernelGemv|KernelCatMoments|ActiveKernelBackend|BuildConfig|Online_'}
MIN_TIME=${MIN_TIME:-0.2}
MIN_SPEEDUP=${MIN_SPEEDUP:-2.0}
MIN_SIMD_RATIO=${MIN_SIMD_RATIO:-0.9}
MIN_PRUNE_SPEEDUP=${MIN_PRUNE_SPEEDUP:-2.0}
MIN_PRUNED_FRACTION=${MIN_PRUNED_FRACTION:-0.5}
MIN_REUSE_SPEEDUP=${MIN_REUSE_SPEEDUP:-1.03}
MIN_ASSIGN_SPEEDUP=${MIN_ASSIGN_SPEEDUP:-1.7}
MAX_SHARDED_OVERHEAD=${MAX_SHARDED_OVERHEAD:-1.15}
MIN_ADMIT_POINTS_PER_SEC=${MIN_ADMIT_POINTS_PER_SEC:-2000}
BENCH="$BUILD_DIR/bench/bench_scaling"

if [[ "${SKIP_BUILD:-0}" != "1" ]]; then
  # Release is non-negotiable for a perf record; an existing cache keeps its
  # other settings (compiler launcher etc.), only the build type is pinned.
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" --target bench_scaling -j "$(nproc)"
fi

if [[ ! -x "$BENCH" ]]; then
  echo "bench_json: $BENCH not built; run: cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR --target bench_scaling" >&2
  exit 2
fi

# The out-of-core scaling curve (tools/sharded_scaling) lives under a
# top-level `sharded_scaling` key in $OUT. google-benchmark rewrites the
# whole file, so stash the prior curve and merge it back afterwards; set
# SHARDED_ROWS (e.g. "1000000,10000000") to re-measure it fresh instead.
SHARDED_PREV=""
if [[ -f "$OUT" ]]; then
  SHARDED_PREV=$(jq -c '.sharded_scaling // empty' "$OUT")
fi

"$BENCH" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

if [[ -n "${SHARDED_ROWS:-}" ]]; then
  cmake --build "$BUILD_DIR" --target sharded_scaling -j "$(nproc)"
  "$BUILD_DIR/tools/sharded_scaling" --rows="$SHARDED_ROWS" --out="$OUT.sharded"
  SHARDED_PREV=$(cat "$OUT.sharded")
  rm -f "$OUT.sharded"
fi
if [[ -n "$SHARDED_PREV" ]]; then
  jq --argjson s "$SHARDED_PREV" '. + {sharded_scaling: $s}' "$OUT" > "$OUT.tmp"
  mv "$OUT.tmp" "$OUT"
fi

# Gate 0: the binary must have been compiled with NDEBUG (Release); the
# BM_BuildConfig_<type> marker stamps that into the record itself.
jq -e '
  ([.benchmarks[] | select(.name | startswith("BM_BuildConfig_")) | .name
    | ltrimstr("BM_BuildConfig_")] | first // "missing") as $cfg
  | "bench binary build config: \($cfg)",
    (if $cfg == "release" then "OK: optimized record"
     else error("bench binary built as \($cfg), not release — perf record rejected") end)
' "$OUT"

# Gate 1: reference kernels vs delta kernels, from the JSON just written
# (works for both real google-benchmark and the vendored shim — the schema
# is the same).
jq -e --argjson min "$MIN_SPEEDUP" '
  (.benchmarks[] | select(.name == "BM_SweepCandidates_Reference") | .real_time) as $ref
  | (.benchmarks[] | select(.name == "BM_SweepCandidates_DeltaKernels") | .real_time) as $opt
  | ($ref / $opt) as $speedup
  | "candidate-evaluation speedup: \($speedup * 100 | round / 100)x (reference \($ref) vs delta kernels \($opt))",
    (if $speedup >= $min then "OK: >= \($min)x"
     else error("speedup \($speedup) below required \($min)x") end)
' "$OUT"

# Gate 2: the dispatch-selected kernel backend must not regress the GEMV
# primitive relative to the pinned-scalar backend (d = 256, cpu_time).
# The sweep-level ratio is printed alongside for trend tracking.
jq -e --argjson min "$MIN_SIMD_RATIO" '
  (.benchmarks[] | select(.name == "BM_KernelGemv_Scalar/256") | .cpu_time) as $scalar
  | (.benchmarks[] | select(.name == "BM_KernelGemv_Dispatch/256") | .cpu_time) as $dispatch
  | (.benchmarks[] | select(.name == "BM_SweepCandidates_DeltaKernels_Scalar") | .real_time) as $sweep_scalar
  | (.benchmarks[] | select(.name == "BM_SweepCandidates_DeltaKernels") | .real_time) as $sweep_dispatch
  | ([.benchmarks[] | select(.name | startswith("BM_ActiveKernelBackend_")) | .name
      | ltrimstr("BM_ActiveKernelBackend_")] | first // "unknown") as $backend
  | ($scalar / $dispatch) as $ratio
  | "dispatch backend: \($backend); scalar-vs-dispatch GEMV(d=256) ratio: \($ratio * 100 | round / 100)x, sweep ratio: \($sweep_scalar / $sweep_dispatch * 100 | round / 100)x",
    (if $ratio >= $min then "OK: >= \($min)x"
     else error("dispatch backend \($backend) regresses the GEMV kernel: ratio \($ratio) below \($min)") end)
' "$OUT"

# Gate 3: bound-gated pruning must beat the exhaustive sweep at the sweep
# level on the d=64 / n=50k synthetic world (same seed, bit-identical
# trajectory). The sweep_seconds counter isolates the optimization sweeps
# from the O(n d) init/finalize work both paths share; the end-to-end
# real_time ratio is printed alongside for trend tracking.
jq -e --argjson min "$MIN_PRUNE_SPEEDUP" '
  (.benchmarks[] | select(.name == "BM_FairKM_Sweep_d64_Exact") | .sweep_seconds) as $exact
  | (.benchmarks[] | select(.name == "BM_FairKM_Sweep_d64_Pruned") | .sweep_seconds) as $pruned
  | (.benchmarks[] | select(.name == "BM_FairKM_Sweep_d64_Exact") | .real_time) as $exact_e2e
  | (.benchmarks[] | select(.name == "BM_FairKM_Sweep_d64_Pruned") | .real_time) as $pruned_e2e
  | (.benchmarks[] | select(.name == "BM_FairKM_Sweep_d64_Pruned") | .pruned_fraction // 0) as $frac
  | ($exact / $pruned) as $speedup
  | "pruning sweep-level speedup (d=64, n=50k): \($speedup * 100 | round / 100)x (end-to-end \($exact_e2e / $pruned_e2e * 100 | round / 100)x; pruned fraction \($frac * 100 | round)%)",
    (if $speedup >= $min then "OK: >= \($min)x"
     else error("pruning sweep-level speedup \($speedup) below required \($min)x") end)
' "$OUT"

# Gate 4: the gate must reject at least MIN_PRUNED_FRACTION of candidate
# evaluations on the Adult all-attributes config.
jq -e --argjson min "$MIN_PRUNED_FRACTION" '
  (.benchmarks[] | select(.name == "BM_FairKM_AllAttributes") | .pruned_fraction // 0) as $frac
  | "Adult all-attributes pruned fraction: \($frac * 100 | round)%",
    (if $frac >= $min then "OK: >= \($min * 100 | round)%"
     else error("pruned fraction \($frac) below required \($min)") end)
' "$OUT"

# Gate 5: reusing one FairKMSolver across seeds must beat constructing a
# cold solver per seed (same seeds, bit-identical trajectories — only the
# per-seed setup work differs).
jq -e --argjson min "$MIN_REUSE_SPEEDUP" '
  (.benchmarks[] | select(.name == "BM_FairKM_MultiSeed_Cold") | .real_time) as $cold
  | (.benchmarks[] | select(.name == "BM_FairKM_MultiSeed_Reused") | .real_time) as $reused
  | ($cold / $reused) as $speedup
  | "multi-seed solver-reuse speedup: \($speedup * 100 | round / 100)x (cold \($cold) vs reused \($reused))",
    (if $speedup >= $min then "OK: >= \($min)x"
     else error("solver-reuse speedup \($speedup) below required \($min)x") end)
' "$OUT"

# Gate 6: the batched serving path must beat the per-point scalar Assign by
# a real margin — same model, same points, bit-identical assignments; the
# difference is the aligned GEMV + expanded-form distance scoring.
jq -e --argjson min "$MIN_ASSIGN_SPEEDUP" '
  (.benchmarks[] | select(.name == "BM_Assign_Scalar") | .real_time) as $scalar
  | (.benchmarks[] | select(.name == "BM_Assign_Batched") | .real_time) as $batched
  | (.benchmarks[] | select(.name == "BM_Assign_Batched") | .points_per_sec // 0) as $pps
  | ($scalar / $batched) as $speedup
  | "batched-assign speedup: \($speedup * 100 | round / 100)x (scalar \($scalar) vs batched \($batched); batched throughput \($pps | round) points/s)",
    (if $speedup >= $min then "OK: >= \($min)x"
     else error("batched-assign speedup \($speedup) below required \($min)x") end)
' "$OUT"

# Gate 7: the sharded out-of-core sweep walks the same trajectory as the
# in-process snapshot sweep (tests/sharded_sweep_test.cc pins bit-identity);
# this gate bounds what the residency control COSTS. Eviction counters are
# recorded in the sharded entry for trend tracking.
jq -e --argjson max "$MAX_SHARDED_OVERHEAD" '
  (.benchmarks[] | select(.name == "BM_FairKM_SnapshotSweep_InProcess") | .real_time) as $mem
  | (.benchmarks[] | select(.name == "BM_FairKM_SnapshotSweep_Sharded") | .real_time) as $sharded
  | (.benchmarks[] | select(.name == "BM_FairKM_SnapshotSweep_Sharded") | .evictions // 0) as $evictions
  | ($sharded / $mem) as $overhead
  | "sharded-sweep overhead: \($overhead * 100 | round / 100)x (in-process \($mem) vs sharded \($sharded); \($evictions | round) evictions/iter)",
    (if $overhead <= $max then "OK: <= \($max)x"
     else error("sharded sweep overhead \($overhead) above allowed \($max)x") end)
' "$OUT"

# Gate 8: the online admit path must sustain incremental throughput. The
# counter times ONLY the Admit calls (retires that keep the engine at a
# steady row count run outside the timed region), so this is the live
# insertion-scoring path: anything that degenerates toward a per-batch
# retrain craters points_per_sec and fails here. The forced-re-sweep bench
# is printed alongside for trend tracking (its cost is O(n) by design).
jq -e --argjson min "$MIN_ADMIT_POINTS_PER_SEC" '
  (.benchmarks[] | select(.name == "BM_Online_Admit") | .points_per_sec // 0) as $pps
  | (.benchmarks[] | select(.name == "BM_Online_DriftResweep") | .real_time) as $resweep
  | "online admit throughput: \($pps | round) points/s (drift re-sweep \($resweep * 100 | round / 100) ms/cycle)",
    (if $pps >= $min then "OK: >= \($min) points/s"
     else error("online admit throughput \($pps) below required \($min) points/s") end)
' "$OUT"

echo "wrote $OUT"
