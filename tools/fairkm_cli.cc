// fairkm_cli — fair clustering for CSV files, end to end.
//
//   $ fairkm_cli --input people.csv --sensitive gender,race --k 5 --output out.csv
//
// Reads a CSV (header required), infers column types (numeric vs
// categorical), clusters on the chosen task attributes with the chosen
// method, reports quality/fairness measures, and writes the input back out
// with an extra "cluster" column.

#include <cstdio>
#include <memory>
#include <set>

#include "cluster/clusterer.h"
#include "common/args.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "core/fairkm.h"
#include "core/kernels/kernels.h"
#include "core/solver.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "data/sensitive.h"
#include "exp/table.h"
#include "metrics/fairness.h"
#include "metrics/quality.h"

using namespace fairkm;

namespace {

Status Run(const ArgParser& args) {
  // Kernel backend: "auto" keeps the runtime cpuid dispatch (which
  // FAIRKM_FORCE_SCALAR in the environment already narrows to scalar);
  // "scalar" pins the portable backend from the command line.
  const std::string kernels = ToLower(args.GetString("kernels"));
  if (kernels == "scalar") {
    core::kernels::SetActiveBackend(&core::kernels::ScalarBackend());
  } else if (kernels != "auto") {
    return Status::InvalidArgument("--kernels must be auto or scalar");
  }

  const std::string input = args.GetString("input");
  if (input.empty()) return Status::InvalidArgument("--input is required");

  FAIRKM_ASSIGN_OR_RETURN(CsvTable csv, ReadCsvFile(input));
  FAIRKM_ASSIGN_OR_RETURN(data::Dataset dataset, data::Dataset::FromCsv(csv));
  if (dataset.empty()) return Status::InvalidArgument("input has no rows");

  // Sensitive attributes: categorical columns named in --sensitive, numeric
  // columns named in --numeric-sensitive.
  std::vector<std::string> cat_sensitive;
  for (const auto& name : Split(args.GetString("sensitive"), ',')) {
    if (!Trim(name).empty()) cat_sensitive.push_back(Trim(name));
  }
  std::vector<std::string> num_sensitive;
  for (const auto& name : Split(args.GetString("numeric-sensitive"), ',')) {
    if (!Trim(name).empty()) num_sensitive.push_back(Trim(name));
  }
  FAIRKM_ASSIGN_OR_RETURN(
      data::SensitiveView sensitive,
      data::MakeSensitiveView(dataset, cat_sensitive, num_sensitive));

  // Task attributes: --features, or every numeric column that is not a
  // numeric sensitive attribute.
  std::vector<std::string> features;
  for (const auto& name : Split(args.GetString("features"), ',')) {
    if (!Trim(name).empty()) features.push_back(Trim(name));
  }
  if (features.empty()) {
    std::set<std::string> excluded(num_sensitive.begin(), num_sensitive.end());
    for (const auto& name : dataset.NumericNames()) {
      if (!excluded.count(name)) features.push_back(name);
    }
  }
  if (features.empty()) {
    return Status::InvalidArgument("no numeric task attributes (use --features)");
  }
  FAIRKM_ASSIGN_OR_RETURN(data::Matrix matrix, dataset.ToMatrix(features));

  const std::string scale = ToLower(args.GetString("scale"));
  if (scale == "minmax") {
    data::MinMaxNormalize(&matrix);
  } else if (scale == "zscore") {
    data::Standardize(&matrix);
  } else if (scale != "none") {
    return Status::InvalidArgument("--scale must be minmax, zscore or none");
  }

  const int k = static_cast<int>(args.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed"));
  const std::string method = ToLower(args.GetString("method"));
  Rng rng(seed);

  // Uniform method selection through the cluster::Clusterer registry. The
  // FairKM entry takes its full typed options (the generic registry knobs
  // cover only the shared subset — k/lambda/iterations/attribute).
  core::EnsureFairKMClustererRegistered();
  std::unique_ptr<cluster::Clusterer> clusterer;
  if (method == "fairkm") {
    if (sensitive.empty()) {
      return Status::InvalidArgument("fairkm needs --sensitive attributes");
    }
    core::FairKMOptions options;
    options.k = k;
    options.lambda = args.GetDouble("lambda");
    // 0 = method default (30, the paper's §5.4 protocol).
    if (const int cap = static_cast<int>(args.GetInt("max-iterations")); cap > 0) {
      options.max_iterations = cap;
    }
    options.minibatch_size = static_cast<int>(args.GetInt("minibatch"));
    options.num_threads = static_cast<int>(args.GetInt("threads"));
    options.enable_pruning = !args.GetBool("no-prune");
    const std::string sweep = ToLower(args.GetString("sweep"));
    if (sweep == "parallel") {
      options.sweep_mode = core::SweepMode::kParallelSnapshot;
      if (options.minibatch_size <= 0) {
        return Status::InvalidArgument(
            "--sweep parallel requires --minibatch > 0");
      }
    } else if (sweep != "serial") {
      return Status::InvalidArgument("--sweep must be serial or parallel");
    }
    clusterer = core::MakeFairKMClusterer(options);
  } else {
    cluster::ClustererOptions options;
    options.k = k;
    options.lambda = args.GetDouble("lambda");
    // <= 0 keeps each method's own default (K-Means: 100 Lloyd iterations,
    // ZGYA: 30 sweeps).
    options.max_iterations = static_cast<int>(args.GetInt("max-iterations"));
    FAIRKM_ASSIGN_OR_RETURN(clusterer, cluster::CreateClusterer(method, options));
  }
  FAIRKM_ASSIGN_OR_RETURN(cluster::ClusteringResult result,
                          clusterer->Cluster(matrix, sensitive, &rng));
  if (method == "fairkm") {
    std::printf("FairKM: lambda = %g, %d iterations, converged = %s\n",
                result.lambda_used, result.iterations,
                result.converged ? "yes" : "no");
    std::printf("sweep: %.1f ms, pruned %.1f%% of the candidate evaluations\n",
                result.sweep_seconds * 1e3, result.pruned_fraction * 100.0);
  }
  cluster::Assignment assignment = std::move(result.assignment);

  // Report.
  std::printf("n = %zu rows, %zu task attributes, k = %d, method = %s\n",
              matrix.rows(), matrix.cols(), k, method.c_str());
  std::printf("kernel backend: %s\n", core::kernels::ActiveBackend().name);
  std::printf("clustering objective (SSE): %.4f\n",
              metrics::ClusteringObjective(matrix, assignment, k));
  std::printf("silhouette: %.4f\n", metrics::SilhouetteScore(matrix, assignment, k));
  if (!sensitive.empty()) {
    auto fairness = metrics::EvaluateFairness(sensitive, assignment, k);
    exp::TablePrinter table({"Sensitive attribute", "AE", "AW", "ME", "MW"});
    for (const auto& attr : fairness.per_attribute) {
      table.AddRow({attr.attribute, exp::Cell(attr.ae), exp::Cell(attr.aw),
                    exp::Cell(attr.me), exp::Cell(attr.mw)});
    }
    table.AddSeparator();
    table.AddRow({"mean", exp::Cell(fairness.mean.ae), exp::Cell(fairness.mean.aw),
                  exp::Cell(fairness.mean.me), exp::Cell(fairness.mean.mw)});
    table.Print();
  }

  // Output CSV: input columns + cluster id.
  const std::string output = args.GetString("output");
  if (!output.empty()) {
    csv.header.push_back("cluster");
    for (size_t i = 0; i < csv.rows.size(); ++i) {
      csv.rows[i].push_back(std::to_string(assignment[i]));
    }
    FAIRKM_RETURN_NOT_OK(WriteCsvFile(csv, output));
    std::printf("wrote %s\n", output.c_str());
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.AddFlag("input", "", "input CSV file (header required)");
  args.AddFlag("output", "", "output CSV file (input + cluster column)");
  args.AddFlag("features", "", "comma-separated task columns (default: all numeric)");
  args.AddFlag("sensitive", "", "comma-separated categorical sensitive columns");
  args.AddFlag("numeric-sensitive", "", "comma-separated numeric sensitive columns");
  args.AddFlag("method", "fairkm",
               "clusterer registry name: kmeans | fairkm | zgya | zgya-hard");
  args.AddFlag("k", "5", "number of clusters");
  args.AddFlag("lambda", "-1", "fairness weight (-1 = auto heuristic)");
  args.AddFlag("max-iterations", "0",
               "optimizer iteration cap (0 = method default: fairkm/zgya 30, "
               "kmeans 100)");
  args.AddFlag("minibatch", "0", "prototype refresh batch (0 = every move)");
  args.AddFlag("sweep", "serial", "candidate evaluation: serial | parallel");
  args.AddFlag("threads", "0", "parallel sweep workers (0 = hardware)");
  args.AddFlag("no-prune", "false",
               "disable bound-gated candidate pruning (exact sweep; "
               "FAIRKM_DISABLE_PRUNING=1 does the same)");
  args.AddFlag("scale", "minmax", "feature scaling: minmax | zscore | none");
  args.AddFlag("kernels", "auto",
               "kernel backend: auto (cpuid dispatch) | scalar");
  args.AddFlag("seed", "42", "random seed");
  args.AddFlag("help", "false", "show usage");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 args.HelpString("fairkm_cli").c_str());
    return 1;
  }
  if (args.GetBool("help")) {
    std::printf("%s", args.HelpString("fairkm_cli").c_str());
    return 0;
  }
  if (Status st = Run(args); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
