// Durable file I/O and the section-framed binary container used by solver
// checkpoints and serving-tier model snapshots.
//
// Write path (AtomicWriteFile): the payload goes to a temp file in the
// destination directory, is fsync'd, atomically renamed over the final path,
// and the parent directory is fsync'd so the rename itself survives a crash.
// Readers therefore see either the old file or the complete new one — never
// a half-written image — on any POSIX filesystem that honors rename
// atomicity. Every step carries a fault point (`<scope>.open`,
// `<scope>.write`, `<scope>.fsync`, `<scope>.rename`, `<scope>.dirsync`) so
// tests can force I/O errors, short writes, torn renames and disk-full
// conditions deterministically (common/fault_injection.h).
//
// Container format (WriteSectionFile / ReadSectionFile), all integers
// little-endian:
//
//   header   magic:u32  version:u32  section_count:u32  header_crc:u32
//   section  tag:u32  payload_size:u64  payload_crc:u32  payload bytes
//   ...repeated section_count times...
//
// Both CRCs are masked CRC32C (common/crc32.h); the header CRC covers the
// first 12 bytes, each section CRC covers the section's tag, declared size,
// and payload, so flipped framing fields are as detectable as flipped data. Any
// mismatch — bad magic, bad CRC, truncated section, trailing garbage —
// reads as kDataLoss so callers can fall back to an older checkpoint. An
// unsupported (newer) format version reads as kInvalidArgument: the file is
// intact, this binary is just too old for it.
//
// BinaryWriter/BinaryReader are the flat serializers for section payloads.
// Doubles travel as their raw 8-byte images (memcpy, no text round-trip) so
// restored solver state is bit-identical. BinaryReader returns kDataLoss on
// any overrun and validates declared lengths against the remaining bytes
// before allocating, so a corrupt length field cannot trigger a huge
// allocation or an out-of-bounds read.

#ifndef FAIRKM_COMMON_IO_H_
#define FAIRKM_COMMON_IO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace fairkm {
namespace io {

/// \brief Append-only buffer builder for section payloads (little-endian).
class BinaryWriter {
 public:
  void PutU32(uint32_t v) { PutLE(v); }
  void PutU64(uint64_t v) { PutLE(v); }
  void PutI64(int64_t v) { PutLE(static_cast<uint64_t>(v)); }
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  /// Raw 8-byte image — bit-exact, including NaN payloads and -0.0.
  void PutDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLE(bits);
  }

  void PutBytes(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }

  /// u64 length followed by the bytes.
  void PutString(const std::string& s) {
    PutU64(s.size());
    PutBytes(s.data(), s.size());
  }

  /// u64 count followed by the elements (works for any Put-able scalar).
  template <typename Vec, typename PutElem>
  void PutVector(const Vec& v, PutElem put) {
    PutU64(v.size());
    for (const auto& e : v) put(e);
  }

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLE(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buf_;
};

/// \brief Bounds-checked cursor over a section payload. All failures are
/// kDataLoss: a payload that passed its CRC but does not parse means the
/// writer and reader disagree, which is corruption from the caller's view.
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t size)
      : p_(static_cast<const uint8_t*>(data)), size_(size) {}

  explicit BinaryReader(const std::string& buf)
      : BinaryReader(buf.data(), buf.size()) {}

  Status GetU32(uint32_t* out) { return GetLE(out); }
  Status GetU64(uint64_t* out) { return GetLE(out); }
  Status GetU8(uint8_t* out) { return GetLE(out); }

  Status GetI64(int64_t* out) {
    uint64_t bits = 0;
    FAIRKM_RETURN_NOT_OK(GetLE(&bits));
    *out = static_cast<int64_t>(bits);
    return Status::OK();
  }

  Status GetDouble(double* out) {
    uint64_t bits = 0;
    FAIRKM_RETURN_NOT_OK(GetLE(&bits));
    std::memcpy(out, &bits, sizeof(bits));
    return Status::OK();
  }

  Status GetString(std::string* out) {
    uint64_t n = 0;
    FAIRKM_RETURN_NOT_OK(GetLength(&n));
    out->assign(reinterpret_cast<const char*>(p_ + pos_),
                static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return Status::OK();
  }

  /// Reads a u64 element count, refusing counts whose minimal encoding
  /// (`elem_size` bytes each) would not fit in the remaining payload.
  Status GetCount(size_t elem_size, size_t* out) {
    uint64_t n = 0;
    FAIRKM_RETURN_NOT_OK(GetU64(&n));
    if (elem_size > 0 && n > remaining() / elem_size) {
      return Status::DataLoss("declared count exceeds payload size");
    }
    *out = static_cast<size_t>(n);
    return Status::OK();
  }

  Status Skip(size_t n) {
    if (remaining() < n) return Status::DataLoss("payload truncated");
    pos_ += n;
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }

  /// A fully-consumed payload is part of the format contract; leftover bytes
  /// mean a version skew that the version field failed to capture.
  Status ExpectFullyConsumed() const {
    if (pos_ != size_) {
      return Status::DataLoss("payload has trailing bytes");
    }
    return Status::OK();
  }

 private:
  /// Like GetCount with elem_size 1 (byte strings).
  Status GetLength(uint64_t* out) {
    FAIRKM_RETURN_NOT_OK(GetU64(out));
    if (*out > remaining()) {
      return Status::DataLoss("declared length exceeds payload size");
    }
    return Status::OK();
  }

  template <typename T>
  Status GetLE(T* out) {
    if (remaining() < sizeof(T)) {
      return Status::DataLoss("payload truncated");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(p_[pos_ + i]) << (8 * i));
    }
    *out = v;
    pos_ += sizeof(T);
    return Status::OK();
  }

  const uint8_t* p_;
  size_t size_;
  size_t pos_ = 0;
};

/// \brief One tagged payload inside a section file.
struct Section {
  uint32_t tag = 0;
  std::string payload;
};

/// \brief Parsed section file: format version plus sections in file order.
struct SectionFile {
  uint32_t version = 0;
  std::vector<Section> sections;

  /// First section with `tag`, or null when absent.
  const Section* Find(uint32_t tag) const {
    for (const auto& s : sections) {
      if (s.tag == tag) return &s;
    }
    return nullptr;
  }
};

/// \brief Durably replaces `path` with `data` (temp + fsync + rename +
/// parent-dir fsync). `fault_scope` names the fault points exercised along
/// the way; production callers pass a short stable scope like "checkpoint".
Status AtomicWriteFile(const std::string& path, const std::string& data,
                       const std::string& fault_scope);

/// \brief Reads all of `path` into `*out`. kNotFound when the file does not
/// exist, kIOError on other failures; fault point `<scope>.read`.
Status ReadFile(const std::string& path, std::string* out,
                const std::string& fault_scope);

/// \brief Frames `sections` in the container format and durably writes them.
Status WriteSectionFile(const std::string& path, uint32_t magic,
                        uint32_t version, const std::vector<Section>& sections,
                        const std::string& fault_scope);

/// \brief Reads and verifies a section file. kDataLoss on any corruption,
/// kInvalidArgument when the format version is newer than `max_version`,
/// kNotFound when the file is absent.
Result<SectionFile> ReadSectionFile(const std::string& path, uint32_t magic,
                                    uint32_t max_version,
                                    const std::string& fault_scope);

/// \brief Best-effort fsync of the directory containing `path`, making a
/// just-completed rename durable. Failures (filesystems that reject
/// directory fsync, a fired `<scope>.dirsync` fault) do not fail the caller
/// — the rename itself succeeded — but they are no longer silent: each one
/// increments the process-wide DirFsyncFailures() counter so supervisors and
/// tests can observe the durability downgrade.
void SyncParentDirBestEffort(const std::string& path,
                             const std::string& fault_scope);

/// \brief Directory-fsync failures swallowed by SyncParentDirBestEffort
/// since process start (or the last reset). Monotonic, thread-safe.
uint64_t DirFsyncFailures();

/// \brief Resets the DirFsyncFailures() counter (test isolation).
void ResetDirFsyncFailures();

/// \brief Creates `path` and any missing parents (OK when already present).
Status CreateDirectories(const std::string& path);

/// \brief Regular-file names (not paths) directly inside `dir`, sorted.
Result<std::vector<std::string>> ListDirectory(const std::string& dir);

/// \brief Deletes `path`; OK when it is already gone.
Status RemoveFile(const std::string& path);

}  // namespace io
}  // namespace fairkm

#endif  // FAIRKM_COMMON_IO_H_
