// ZGYA baseline: K-Means with a per-cluster KL-divergence fairness loss for a
// single multi-valued sensitive attribute (Ziko, Granger, Yuan & Ben Ayed,
// "Clustering with Fairness Constraints: A Flexible and Scalable Approach",
// arXiv:1906.08207 — the FairKM paper's primary baseline, referred to as
// ZGYA after the authors).
//
// No reference implementation is available offline, so this module implements
// the description given in the FairKM paper §2.2 (DESIGN.md §3.3):
//
//   E = sum_C SSE_N(C) + lambda * sum_C KL(P_C || U)
//
// where P_C is the distribution of the sensitive attribute's values inside
// cluster C and U is the dataset-level distribution. Two optimizers are
// provided:
//   * kHardMoves (default): the same round-robin single-point move scheme as
//     FairKM, against the exact objective above. Deterministic given a seed
//     and directly comparable with FairKM in the benches.
//   * kSoftVariational: soft assignments updated by softmax bound updates on
//     a first-order expansion of the KL term, then hardened — the flavour of
//     the published algorithm.
//
// The two deltas FairKM's design changes relative to this construction —
// cluster-cardinality weighting and domain-cardinality normalization — are
// exactly what the paper credits for FairKM's empirical wins; keeping this
// baseline faithful to the unweighted, unnormalized KL loss is therefore
// load-bearing for reproduction.

#ifndef FAIRKM_CLUSTER_ZGYA_H_
#define FAIRKM_CLUSTER_ZGYA_H_

#include "cluster/kmeans.h"
#include "cluster/types.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace cluster {

/// \brief ZGYA configuration.
struct ZgyaOptions {
  int k = 5;
  /// Fairness weight. Negative means "auto": 2 * avg_var * n / k, where
  /// avg_var is the mean squared distance of points to the global mean. This
  /// balances the magnitude of a single-point move's effect on both terms.
  double lambda = -1.0;
  int max_iterations = 30;
  KMeansInit init = KMeansInit::kRandomAssignment;

  enum class Mode { kHardMoves, kSoftVariational };
  Mode mode = Mode::kHardMoves;

  /// Soft mode: inner bound-update rounds per outer (centroid) iteration.
  int soft_inner_iterations = 5;
  /// Soft mode: softmax temperature relative to the mean point-center
  /// distance (keeps the updates scale-free).
  double soft_temperature = 1.0;
  /// Soft mode: damping for the bound updates; each round keeps this much of
  /// the previous assignment (0 = undamped). Stabilizes the linearized KL
  /// gradient, which otherwise overshoots the target proportions.
  double soft_damping = 0.5;

  double min_improvement = 1e-9;
};

/// \brief ZGYA output with the decomposed objective (lambda_used lives in
/// the ClusteringResult base).
struct ZgyaResult : ClusteringResult {
  double kmeans_term = 0.0;
  double kl_term = 0.0;  ///< sum_C KL(P_C || U) at the final state.
};

/// \brief sum over clusters of KL(P_C || U) for the given attribute.
double ZgyaKlTerm(const data::CategoricalSensitive& attr, const Assignment& assignment,
                  int k);

/// \brief Runs ZGYA for one sensitive attribute (the method is defined for a
/// single multi-valued attribute; the paper invokes it once per attribute).
Result<ZgyaResult> RunZgya(const data::Matrix& points,
                           const data::CategoricalSensitive& attr,
                           const ZgyaOptions& options, Rng* rng);

}  // namespace cluster
}  // namespace fairkm

#endif  // FAIRKM_CLUSTER_ZGYA_H_
