// Reproduces paper Figure 2: Adult, Max Wasserstein (MW) per sensitive
// attribute — ZGYA(S) vs FairKM (All) vs FairKM(S), k = 5.

#include "bench_tables.h"

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Figure 2 — Adult: MW comparison per attribute (k = 5)", env);
  RunFigureComparison(AdultData(env), "mw", env);
  return 0;
}
