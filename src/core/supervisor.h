// core::SupervisedRunner — a self-healing driver around a FairKMSolver
// session.
//
// The solver itself is deliberately fail-fast: a non-finite objective, a
// torn checkpoint, or a store file truncated under the mapping surfaces as a
// Status and the caller decides. This runner IS that caller for long
// unattended runs. It drives the session one sweep at a time under a
// SupervisorPolicy and, on every fault, rolls the run back to the last good
// checkpoint instead of dying:
//
//   * Divergence watchdog — after each sweep the Eq. 1 objective must be
//     finite and must not regress beyond `regression_tolerance` against the
//     best value seen at a checkpointed state. FairKM's sweep only accepts
//     objective-improving moves, so a regression is numerical trouble, not
//     optimization noise. A sweep whose wall time exceeds
//     `stall_timeout_seconds` trips the same watchdog.
//   * Rollback — a tripped watchdog (or an I/O-class error from the sweep,
//     the store backing check, or a checkpoint write) restores the newest
//     durable checkpoint via FairKMSolver::ResumeFromCheckpointDir —
//     quarantining corrupt frames on the way — falling back to the
//     in-memory last-good snapshot, then to a fresh re-Init(seed). Each
//     recovery consumes one unit of the `max_rollbacks` budget and sleeps a
//     full-jitter backoff first (the serve/retry.h policy semantics,
//     re-implemented here because core cannot link serve).
//   * Graceful degradation — repeated I/O faults walk a demotion ladder:
//     mmap store -> in-memory copy, then pruning on -> off, then parallel
//     sweep -> serial. A demotion rebuilds the solver with the downgraded
//     configuration and warm-starts it from the last good assignment, so
//     progress carries across the rebuild.
//
// Determinism note: a rollback replays sweeps the solver already ran, and
// Snapshot/Restore replays are bit-identical, so a supervised run that
// recovered from a transient fault converges to the same answer as an
// undisturbed run — SupervisorStats is the only observable difference.
//
// Fault points (for tests and the check.sh gate):
//   supervisor.objective  forces the post-sweep objective to read non-finite
//                         (an injected divergence; any armed kind trips it),
//   supervisor.stall      sits inside the timed sweep window, so an armed
//                         delay spec inflates the measured sweep time.

#ifndef FAIRKM_CORE_SUPERVISOR_H_
#define FAIRKM_CORE_SUPERVISOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "core/solver.h"
#include "data/matrix.h"
#include "data/point_store.h"
#include "data/sensitive.h"

namespace fairkm {
namespace core {

/// \brief Knobs of the self-healing loop. Defaults favor tests and CLI runs:
/// millisecond-scale backoff, three recoveries, checkpoint every sweep.
struct SupervisorPolicy {
  /// Max allowed objective increase over the best checkpointed value before
  /// the watchdog calls it a regression, relative to max(1, |best|).
  double regression_tolerance = 1e-6;
  /// A single sweep taking longer than this (wall seconds) trips the
  /// watchdog; <= 0 disables the stall check.
  double stall_timeout_seconds = -1.0;
  /// Recoveries (of any kind) the run may consume before the supervisor
  /// gives up and surfaces the last fault.
  int max_rollbacks = 3;

  // --- Full-jitter backoff before each recovery (serve::RetryPolicy
  // semantics: sleep ~ U[0, min(initial * multiplier^(i-1), max)] on the
  // i-th recovery).
  double initial_backoff_seconds = 0.001;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 0.100;

  // --- Durable checkpoints (core/checkpoint_io.h). Empty dir keeps the
  // supervisor purely in-memory (snapshot rollback only).
  std::string checkpoint_dir;
  int checkpoint_every = 1;  ///< Sweeps between durable checkpoints.
  int checkpoint_keep = 3;   ///< Retention (quarantined files not counted).
  /// Resume from the newest valid checkpoint in checkpoint_dir at Run start
  /// (corrupt frames are quarantined, an empty dir falls through to a fresh
  /// Init).
  bool resume = true;

  // --- Demotion ladder on repeated I/O faults.
  /// Consecutive I/O faults that trigger one demotion rung.
  int io_faults_per_demotion = 2;
  bool allow_store_demotion = true;     ///< mmap store -> in-memory.
  bool allow_pruning_demotion = true;   ///< enable_pruning -> false.
  bool allow_parallel_demotion = true;  ///< kParallelSnapshot -> kSerial.
};

/// \brief Everything the self-healing loop did, surfaced through the CLI
/// (--supervise) and exp::ExperimentRunner.
struct SupervisorStats {
  int rollbacks = 0;           ///< Recoveries performed (all causes).
  int nonfinite_faults = 0;    ///< Watchdog: NaN/Inf objective.
  int regression_faults = 0;   ///< Watchdog: objective regressed past tol.
  int stall_faults = 0;        ///< Watchdog: sweep exceeded stall timeout.
  int io_faults = 0;           ///< I/O-class errors (sweep, store, ckpt).
  int store_demotions = 0;     ///< mmap -> memory rebuilds.
  int pruning_demotions = 0;   ///< pruning disabled rebuilds.
  int parallel_demotions = 0;  ///< parallel -> serial rebuilds.
  int checkpoints_saved = 0;
  /// Best-effort parent-directory fsyncs that failed during the run
  /// (io::DirFsyncFailures delta; nonzero means rename durability is
  /// degraded on this filesystem, not that data was lost).
  uint64_t dir_fsync_failures = 0;
  int sweeps_total = 0;        ///< Healthy sweeps kept (replays included).
  double best_objective = 0.0; ///< Best checkpointed Eq. 1 value.
  bool converged = false;
};

/// \brief Self-healing training runtime (see the header comment). Move-only;
/// the bound points/sensitive must outlive it unchanged.
class SupervisedRunner {
 public:
  /// \brief Validates inputs and binds them. `points` is required even for
  /// an mmap `store_spec` — the matrix is the rebuild source when the
  /// demotion ladder abandons the store file.
  static Result<SupervisedRunner> Create(const data::Matrix* points,
                                         const data::SensitiveView* sensitive,
                                         const FairKMOptions& options,
                                         const data::PointStoreSpec& store_spec,
                                         const SupervisorPolicy& policy);

  SupervisedRunner(SupervisedRunner&&) noexcept = default;
  SupervisedRunner& operator=(SupervisedRunner&&) noexcept = default;
  SupervisedRunner(const SupervisedRunner&) = delete;
  SupervisedRunner& operator=(const SupervisedRunner&) = delete;

  /// \brief Drives a full supervised run: build (or rebuild) the session,
  /// resume-or-Init(seed), then sweep under the watchdog until convergence,
  /// the solver's iteration cap, or the supervisor budgets stop it.
  /// `max_sweeps` / `max_seconds` bound this call (< 0 = unbounded; the
  /// options' max_iterations still caps the session). Fails with the last
  /// fault once `max_rollbacks` recoveries are spent.
  Result<RunStop> Run(uint64_t seed, int max_sweeps = -1,
                      double max_seconds = -1.0);

  /// \brief Counters of the most recent Run (zeroed at each Run start).
  const SupervisorStats& stats() const { return stats_; }

  /// \brief The live session after a Run (requires a prior successful Run).
  const FairKMSolver& solver() const { return *solver_; }

  /// \brief Finalized result of the current state (requires a prior Run).
  Result<FairKMResult> CurrentResult() const;

 private:
  enum class FaultKind { kNonFinite, kRegression, kStall, kIO };

  SupervisedRunner(const data::Matrix* points,
                   const data::SensitiveView* sensitive, FairKMOptions options,
                   data::PointStoreSpec store_spec, SupervisorPolicy policy);

  /// Builds solver_ from the current (possibly demoted) options_/spec_.
  Status BuildSolver();
  /// Recovery: count the fault, back off, maybe demote (I/O streaks), then
  /// restore dir -> snapshot -> fresh Init. Fails when the rollback budget
  /// is spent.
  Status HandleFault(FaultKind kind, const Status& cause);
  /// One rung of the demotion ladder; returns false when fully demoted.
  bool DemoteOnce();
  Status RestoreLastGood();
  /// Writes ckpt-<sweeps>.fkmc into checkpoint_dir and prunes retention.
  Status SaveDurableCheckpoint();
  void BackoffSleep(int attempt);

  const data::Matrix* points_;
  const data::SensitiveView* sensitive_;
  FairKMOptions options_;          // Current, possibly demoted.
  data::PointStoreSpec spec_;      // Current, possibly demoted.
  SupervisorPolicy policy_;
  uint64_t seed_ = 0;

  std::unique_ptr<FairKMSolver> solver_;
  std::optional<SolverCheckpoint> last_good_;
  double best_objective_ = 0.0;
  bool has_best_ = false;
  int io_fault_streak_ = 0;
  Rng jitter_rng_{0x5eedf00d};
  SupervisorStats stats_;
};

}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_SUPERVISOR_H_
