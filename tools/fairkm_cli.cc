// fairkm_cli — fair clustering for CSV files, end to end.
//
//   $ fairkm_cli --input people.csv --sensitive gender,race --k 5 --output out.csv
//
// Reads a CSV (header required), infers column types (numeric vs
// categorical), clusters on the chosen task attributes with the chosen
// method, reports quality/fairness measures, and writes the input back out
// with an extra "cluster" column.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <memory>
#include <set>
#include <thread>

#include "cluster/clusterer.h"
#include "common/args.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/fairkm.h"
#include "core/fairkm_state.h"
#include "core/kernels/kernels.h"
#include "core/sharded_sweep.h"
#include "core/solver.h"
#include "core/supervisor.h"
#include "data/dataset.h"
#include "data/point_store.h"
#include "data/preprocess.h"
#include "data/sensitive.h"
#include "exp/datasets.h"
#include "exp/table.h"
#include "metrics/fairness.h"
#include "metrics/quality.h"
#include "online/online_fairkm.h"
#include "serve/assign_service.h"
#include "serve/model_snapshot.h"

using namespace fairkm;

namespace {

// Kernel backend: "auto" keeps the runtime cpuid dispatch (which
// FAIRKM_FORCE_SCALAR in the environment already narrows to scalar);
// "scalar" pins the portable backend from the command line.
Status ApplyKernelFlag(const ArgParser& args) {
  const std::string kernels = ToLower(args.GetString("kernels"));
  if (kernels == "scalar") {
    core::kernels::SetActiveBackend(&core::kernels::ScalarBackend());
  } else if (kernels != "auto") {
    return Status::InvalidArgument("--kernels must be auto or scalar");
  }
  return Status::OK();
}

const char* RunStopName(core::RunStop stop) {
  switch (stop) {
    case core::RunStop::kConverged: return "converged";
    case core::RunStop::kIterationCap: return "iteration cap";
    case core::RunStop::kSweepBudget: return "sweep budget";
    case core::RunStop::kTimeBudget: return "time budget";
    case core::RunStop::kCancelled: return "cancelled";
  }
  return "unknown";
}

// --serve-bench: exercises the serving tier end to end on the synthetic
// Adult dataset. One trainer thread (this one) keeps sweeping and publishes
// a fresh immutable ModelSnapshot at every mini-batch boundary; N reader
// threads hammer AssignService::Assign with the full dataset as the request
// until the deadline. Prints the ServeMetrics counters at the end.
Status ServeBench(const ArgParser& args) {
  FAIRKM_RETURN_NOT_OK(ApplyKernelFlag(args));
  const double seconds = args.GetDouble("serve-seconds");
  const int readers = static_cast<int>(args.GetInt("serve-readers"));
  const size_t batch = static_cast<size_t>(args.GetInt("serve-batch"));
  const size_t rows = static_cast<size_t>(args.GetInt("serve-rows"));
  const double deadline_ms = args.GetDouble("serve-deadline-ms");
  const double queue_timeout_ms = args.GetDouble("serve-queue-timeout-ms");
  if (seconds <= 0.0) {
    return Status::InvalidArgument("--serve-seconds must be positive");
  }
  if (readers <= 0) {
    return Status::InvalidArgument("--serve-readers must be positive");
  }
  if (batch == 0) return Status::InvalidArgument("--serve-batch must be positive");

  exp::AdultExperimentOptions data_options;
  data_options.subsample = rows;
  FAIRKM_ASSIGN_OR_RETURN(exp::ExperimentData data,
                          exp::LoadAdultExperiment(data_options));

  core::FairKMOptions options;
  options.k = static_cast<int>(args.GetInt("k"));
  options.lambda = args.GetDouble("lambda");
  options.minibatch_size = static_cast<int>(args.GetInt("minibatch"));
  // The publish cadence is the mini-batch boundary; a serving trainer without
  // mini-batching would republish only once per sweep.
  if (options.minibatch_size <= 0) options.minibatch_size = 256;
  options.num_threads = static_cast<int>(args.GetInt("threads"));
  options.enable_pruning = !args.GetBool("no-prune");
  if (const int cap = static_cast<int>(args.GetInt("max-iterations")); cap > 0) {
    options.max_iterations = cap;
  }

  FAIRKM_ASSIGN_OR_RETURN(
      core::FairKMSolver solver,
      core::FairKMSolver::Create(&data.features, &data.sensitive, options));
  FAIRKM_RETURN_NOT_OK(
      solver.Init(static_cast<uint64_t>(args.GetInt("seed"))));

  serve::AssignServiceOptions service_options;
  service_options.max_batch_points = batch;
  service_options.max_concurrency = readers;
  service_options.max_queue_depth =
      static_cast<size_t>(args.GetInt("serve-queue-depth"));
  serve::AssignService service(service_options);
  serve::AssignRequestOptions request_options;
  if (deadline_ms > 0.0) request_options.deadline_seconds = deadline_ms / 1e3;
  if (queue_timeout_ms > 0.0) {
    request_options.queue_timeout_seconds = queue_timeout_ms / 1e3;
  }
  uint64_t version = 0;
  FAIRKM_ASSIGN_OR_RETURN(std::shared_ptr<const serve::ModelSnapshot> first,
                          serve::MakeModelSnapshot(solver, version));
  service.Publish(std::move(first));

  std::printf(
      "serve-bench: n = %zu rows, %zu features, k = %d, lambda = %g\n",
      data.features.rows(), data.features.cols(), options.k, solver.lambda());
  std::printf("serve-bench: %d readers, batch %zu, %.1f s deadline\n", readers,
              batch, seconds);
  std::printf("kernel backend: %s\n", core::kernels::ActiveBackend().name);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reader_errors{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(readers));
  for (int t = 0; t < readers; ++t) {
    pool.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto result =
            service.Assign(data.features, &data.sensitive, request_options);
        if (result.ok()) continue;
        // Load shedding and deadline misses are expected degradation under
        // overload (counted in ServeMetrics); anything else is a real bug.
        const StatusCode code = result.status().code();
        if (code == StatusCode::kUnavailable ||
            code == StatusCode::kDeadlineExceeded) {
          continue;
        }
        ++reader_errors;
        break;
      }
    });
  }

  // Trainer: republish at every mini-batch boundary until the optimizer
  // converges/caps or the deadline cuts it off; the readers then run the
  // remaining clock against the last published generation.
  Timer timer;
  const auto republish = [&](const core::SweepProgress&) {
    auto snapshot = serve::MakeModelSnapshot(solver, version + 1);
    if (snapshot.ok()) {
      ++version;
      service.Publish(snapshot.ValueOrDie());
    }
    return timer.ElapsedSeconds() < seconds;
  };
  core::RunBudget budget;
  budget.max_seconds = seconds;
  FAIRKM_ASSIGN_OR_RETURN(const core::RunStop stop,
                          solver.Run(budget, republish));
  while (timer.ElapsedSeconds() < seconds && reader_errors.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : pool) reader.join();
  FAIRKM_RETURN_NOT_OK(service.Drain(5.0));
  service.Shutdown();

  std::printf("trainer: %d sweeps, stop = %s, %llu snapshots published\n",
              solver.sweeps_completed(), RunStopName(stop),
              static_cast<unsigned long long>(version + 1));
  const serve::ServeMetrics m = service.Metrics();
  std::printf("requests:         %llu (%llu errors)\n",
              static_cast<unsigned long long>(m.requests),
              static_cast<unsigned long long>(m.errors));
  std::printf("points scored:    %llu (%.0f points/s)\n",
              static_cast<unsigned long long>(m.points), m.points_per_second);
  std::printf("batches:          %llu (avg %.1f points, max %llu)\n",
              static_cast<unsigned long long>(m.batches), m.avg_batch_points,
              static_cast<unsigned long long>(m.max_batch_points));
  std::printf("busy:             %.3f s scoring, peak %llu in flight\n",
              m.busy_seconds,
              static_cast<unsigned long long>(m.peak_in_flight));
  std::printf("shed:             %llu queue-full, %llu queue-timeout, "
              "%llu not-ready\n",
              static_cast<unsigned long long>(m.shed_queue_full),
              static_cast<unsigned long long>(m.shed_queue_timeout),
              static_cast<unsigned long long>(m.not_ready));
  std::printf("deadline:         %llu exceeded, %llu partial points burnt, "
              "peak queue %llu\n",
              static_cast<unsigned long long>(m.deadline_exceeded),
              static_cast<unsigned long long>(m.deadline_partial_points),
              static_cast<unsigned long long>(m.peak_queue_depth));
  std::printf("snapshot:         v%llu, age %.3f s\n",
              static_cast<unsigned long long>(service.snapshot()->version()),
              m.snapshot_age_seconds);
  if (reader_errors.load() > 0) {
    return Status::Internal("serve-bench reader requests failed");
  }
  return Status::OK();
}

// Row-range slices of the Adult world, used by --online-bench to split one
// coherent dataset into an initial training set and an admit stream whose
// feature/sensitive structure matches it by construction.
data::Matrix SliceRows(const data::Matrix& m, size_t begin, size_t count) {
  data::Matrix out(count, m.cols());
  for (size_t i = 0; i < count; ++i) {
    const double* src = m.Row(begin + i);
    double* dst = out.Row(i);
    for (size_t j = 0; j < m.cols(); ++j) dst[j] = src[j];
  }
  return out;
}

data::SensitiveView SliceView(const data::SensitiveView& view, size_t begin,
                              size_t count) {
  data::SensitiveView out;
  for (const auto& attr : view.categorical) {
    data::CategoricalSensitive a;
    a.name = attr.name;
    a.cardinality = attr.cardinality;
    a.weight = attr.weight;
    a.codes.assign(attr.codes.begin() + static_cast<ptrdiff_t>(begin),
                   attr.codes.begin() + static_cast<ptrdiff_t>(begin + count));
    // Dataset-level fractions are n-dependent; the engine re-derives them
    // over the live population after every membership change, so the slice
    // only has to carry the structure and the codes.
    a.dataset_fractions.assign(static_cast<size_t>(attr.cardinality), 0.0);
    out.categorical.push_back(std::move(a));
  }
  for (const auto& attr : view.numeric) {
    data::NumericSensitive a;
    a.name = attr.name;
    a.weight = attr.weight;
    a.values.assign(attr.values.begin() + static_cast<ptrdiff_t>(begin),
                    attr.values.begin() + static_cast<ptrdiff_t>(begin + count));
    out.numeric.push_back(std::move(a));
  }
  return out;
}

// --online-bench: drives the online fairness engine end to end on the
// synthetic Adult dataset. Trains on the first --online-initial rows, then
// streams the rest in as Admit batches (retiring a fraction of each batch to
// keep churn realistic), letting the drift monitor decide when to re-sweep.
// Prints admit throughput, the drift/re-sweep counters, and a final oracle
// line: after Flush(), the live state must match a from-scratch rebuild over
// the surviving rows bit for bit. Also the target of the check.sh online
// fault gate — with FAIRKM_FAULT='supervisor.objective=error,fires=1' armed
// and --drift-tolerance huge, exactly one re-sweep must fire.
Status OnlineBench(const ArgParser& args) {
  FAIRKM_RETURN_NOT_OK(ApplyKernelFlag(args));
  const size_t initial = static_cast<size_t>(args.GetInt("online-initial"));
  const size_t batch = static_cast<size_t>(args.GetInt("online-admit-batch"));
  const size_t batches =
      static_cast<size_t>(args.GetInt("online-admit-batches"));
  const double retire_fraction = args.GetDouble("online-retire-fraction");
  if (initial == 0) {
    return Status::InvalidArgument("--online-initial must be positive");
  }
  if (batch == 0) {
    return Status::InvalidArgument("--online-admit-batch must be positive");
  }
  if (retire_fraction < 0.0 || retire_fraction >= 1.0) {
    return Status::InvalidArgument(
        "--online-retire-fraction must be in [0, 1)");
  }

  exp::AdultExperimentOptions data_options;
  data_options.subsample = initial + batch * batches;
  FAIRKM_ASSIGN_OR_RETURN(exp::ExperimentData data,
                          exp::LoadAdultExperiment(data_options));
  if (data.features.rows() < initial + batch * batches) {
    return Status::InvalidArgument(
        "--online-initial/--online-admit-batch stream larger than the "
        "dataset");
  }

  online::OnlineOptions options;
  options.solver.k = static_cast<int>(args.GetInt("k"));
  options.solver.lambda = args.GetDouble("lambda");
  options.solver.minibatch_size = static_cast<int>(args.GetInt("minibatch"));
  options.solver.enable_pruning = !args.GetBool("no-prune");
  if (const int cap = static_cast<int>(args.GetInt("max-iterations"));
      cap > 0) {
    options.solver.max_iterations = cap;
  }
  options.drift.regression_tolerance = args.GetDouble("drift-tolerance");
  options.drift.resweep_max_sweeps =
      static_cast<int>(args.GetInt("resweep-sweeps"));

  const data::Matrix train = SliceRows(data.features, 0, initial);
  const data::SensitiveView train_view = SliceView(data.sensitive, 0, initial);
  serve::AssignService service;
  FAIRKM_ASSIGN_OR_RETURN(
      std::unique_ptr<online::OnlineFairKM> engine,
      online::OnlineFairKM::Create(
          train, train_view, options,
          static_cast<uint64_t>(args.GetInt("seed")), &service));

  std::printf(
      "online-bench: n0 = %zu rows, %zu features, k = %d, lambda = %g\n",
      initial, data.features.cols(), options.solver.k,
      engine->solver().lambda());
  std::printf(
      "online-bench: %zu admit batches of %zu (retire fraction %.2f), drift "
      "tolerance %g, re-sweep budget %d\n",
      batches, batch, retire_fraction, options.drift.regression_tolerance,
      options.drift.resweep_max_sweeps);
  std::printf("kernel backend: %s\n", core::kernels::ActiveBackend().name);

  Timer timer;
  double admit_seconds = 0.0;
  uint64_t admitted = 0, retired = 0;
  for (size_t b = 0; b < batches; ++b) {
    const size_t begin = initial + b * batch;
    const data::Matrix points = SliceRows(data.features, begin, batch);
    const data::SensitiveView view = SliceView(data.sensitive, begin, batch);
    Timer admit_timer;
    FAIRKM_ASSIGN_OR_RETURN(std::vector<uint64_t> ids,
                            engine->Admit(points, &view));
    admit_seconds += admit_timer.ElapsedSeconds();
    admitted += ids.size();
    const size_t to_retire =
        static_cast<size_t>(retire_fraction * static_cast<double>(ids.size()));
    if (to_retire > 0) {
      ids.resize(to_retire);
      FAIRKM_RETURN_NOT_OK(engine->Retire(ids));
      retired += to_retire;
    }
  }
  const double wall = timer.ElapsedSeconds();

  const online::OnlineStats stats = engine->Stats();
  std::printf(
      "admit: %llu points in %zu batches, %.1f ms (%.0f points/s); "
      "%llu retired\n",
      static_cast<unsigned long long>(admitted), batches, admit_seconds * 1e3,
      admit_seconds > 0.0 ? static_cast<double>(admitted) / admit_seconds
                          : 0.0,
      static_cast<unsigned long long>(retired));
  std::printf("stream: %.1f ms wall\n", wall * 1e3);
  std::printf(
      "online: resweeps = %llu, flushes = %llu, generation = %llu, "
      "live rows = %zu\n",
      static_cast<unsigned long long>(stats.resweeps),
      static_cast<unsigned long long>(stats.flushes),
      static_cast<unsigned long long>(stats.generation), stats.live_rows);
  std::printf("online: objective = %.6f (per point %.6f, baseline %.6f)\n",
              stats.last_objective,
              stats.live_rows > 0
                  ? stats.last_objective / static_cast<double>(stats.live_rows)
                  : 0.0,
              stats.baseline_per_point);

  // Oracle: the flushed live state must equal a from-scratch rebuild over
  // the surviving rows — the consistency anchor of the whole engine.
  FAIRKM_RETURN_NOT_OK(engine->Flush());
  const data::Matrix survivors = engine->SurvivingPoints();
  const data::SensitiveView survivor_view = engine->SurvivingSensitive();
  FAIRKM_ASSIGN_OR_RETURN(
      core::FairKMState fresh,
      core::FairKMState::Create(&survivors, &survivor_view,
                                engine->solver().k(),
                                engine->CurrentAssignment()));
  const core::FairKMState& live = engine->solver().state();
  const bool oracle_ok =
      live.KMeansTermCached() == fresh.KMeansTermCached() &&
      live.FairnessTermCached() == fresh.FairnessTermCached();
  std::printf("online: oracle = %s (flushed state vs from-scratch rebuild)\n",
              oracle_ok ? "ok" : "MISMATCH");
  const auto snapshot = service.snapshot();
  std::printf("snapshot: v%llu published\n",
              snapshot != nullptr
                  ? static_cast<unsigned long long>(snapshot->version())
                  : 0ULL);
  if (!oracle_ok) {
    return Status::Internal(
        "online-bench oracle mismatch: flushed state diverged from the "
        "from-scratch rebuild");
  }
  return Status::OK();
}

// Shared tail of Run(): method-specific telemetry lines, the quality and
// fairness report, and the optional input-plus-cluster-column output CSV.
Status Report(const ArgParser& args, const std::string& method,
              const data::Matrix& matrix, const data::SensitiveView& sensitive,
              cluster::ClusteringResult result, CsvTable csv) {
  const int k = static_cast<int>(args.GetInt("k"));
  if (method == "fairkm") {
    std::printf("FairKM: lambda = %g, %d iterations, converged = %s\n",
                result.lambda_used, result.iterations,
                result.converged ? "yes" : "no");
    std::printf("sweep: %.1f ms, pruned %.1f%% of the candidate evaluations\n",
                result.sweep_seconds * 1e3, result.pruned_fraction * 100.0);
  }
  cluster::Assignment assignment = std::move(result.assignment);

  std::printf("n = %zu rows, %zu task attributes, k = %d, method = %s\n",
              matrix.rows(), matrix.cols(), k, method.c_str());
  std::printf("kernel backend: %s\n", core::kernels::ActiveBackend().name);
  std::printf("clustering objective (SSE): %.4f\n",
              metrics::ClusteringObjective(matrix, assignment, k));
  std::printf("silhouette: %.4f\n", metrics::SilhouetteScore(matrix, assignment, k));
  if (!sensitive.empty()) {
    auto fairness = metrics::EvaluateFairness(sensitive, assignment, k);
    exp::TablePrinter table({"Sensitive attribute", "AE", "AW", "ME", "MW"});
    for (const auto& attr : fairness.per_attribute) {
      table.AddRow({attr.attribute, exp::Cell(attr.ae), exp::Cell(attr.aw),
                    exp::Cell(attr.me), exp::Cell(attr.mw)});
    }
    table.AddSeparator();
    table.AddRow({"mean", exp::Cell(fairness.mean.ae), exp::Cell(fairness.mean.aw),
                  exp::Cell(fairness.mean.me), exp::Cell(fairness.mean.mw)});
    table.Print();
  }

  // Output CSV: input columns + cluster id.
  const std::string output = args.GetString("output");
  if (!output.empty()) {
    csv.header.push_back("cluster");
    for (size_t i = 0; i < csv.rows.size(); ++i) {
      csv.rows[i].push_back(std::to_string(assignment[i]));
    }
    FAIRKM_RETURN_NOT_OK(WriteCsvFile(csv, output));
    std::printf("wrote %s\n", output.c_str());
  }
  return Status::OK();
}

Status Run(const ArgParser& args) {
  FAIRKM_RETURN_NOT_OK(ApplyKernelFlag(args));

  const std::string input = args.GetString("input");
  if (input.empty()) return Status::InvalidArgument("--input is required");

  FAIRKM_ASSIGN_OR_RETURN(CsvTable csv, ReadCsvFile(input));
  FAIRKM_ASSIGN_OR_RETURN(data::Dataset dataset, data::Dataset::FromCsv(csv));
  if (dataset.empty()) return Status::InvalidArgument("input has no rows");

  // Sensitive attributes: categorical columns named in --sensitive, numeric
  // columns named in --numeric-sensitive.
  std::vector<std::string> cat_sensitive;
  for (const auto& name : Split(args.GetString("sensitive"), ',')) {
    if (!Trim(name).empty()) cat_sensitive.push_back(Trim(name));
  }
  std::vector<std::string> num_sensitive;
  for (const auto& name : Split(args.GetString("numeric-sensitive"), ',')) {
    if (!Trim(name).empty()) num_sensitive.push_back(Trim(name));
  }
  FAIRKM_ASSIGN_OR_RETURN(
      data::SensitiveView sensitive,
      data::MakeSensitiveView(dataset, cat_sensitive, num_sensitive));

  // Task attributes: --features, or every numeric column that is not a
  // numeric sensitive attribute.
  std::vector<std::string> features;
  for (const auto& name : Split(args.GetString("features"), ',')) {
    if (!Trim(name).empty()) features.push_back(Trim(name));
  }
  if (features.empty()) {
    std::set<std::string> excluded(num_sensitive.begin(), num_sensitive.end());
    for (const auto& name : dataset.NumericNames()) {
      if (!excluded.count(name)) features.push_back(name);
    }
  }
  if (features.empty()) {
    return Status::InvalidArgument("no numeric task attributes (use --features)");
  }
  FAIRKM_ASSIGN_OR_RETURN(data::Matrix matrix, dataset.ToMatrix(features));

  const std::string scale = ToLower(args.GetString("scale"));
  if (scale == "minmax") {
    data::MinMaxNormalize(&matrix);
  } else if (scale == "zscore") {
    data::Standardize(&matrix);
  } else if (scale != "none") {
    return Status::InvalidArgument("--scale must be minmax, zscore or none");
  }

  const int k = static_cast<int>(args.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed"));
  const std::string method = ToLower(args.GetString("method"));
  Rng rng(seed);

  // Uniform method selection through the cluster::Clusterer registry. The
  // FairKM entry takes its full typed options (the generic registry knobs
  // cover only the shared subset — k/lambda/iterations/attribute).
  core::EnsureFairKMClustererRegistered();
  const std::string checkpoint_dir = args.GetString("checkpoint-dir");
  if (!checkpoint_dir.empty() && method != "fairkm") {
    return Status::InvalidArgument("--checkpoint-dir requires --method fairkm");
  }
  if (args.GetBool("resume") && checkpoint_dir.empty()) {
    return Status::InvalidArgument("--resume requires --checkpoint-dir");
  }
  if (args.GetBool("supervise") && method != "fairkm") {
    return Status::InvalidArgument("--supervise requires --method fairkm");
  }
  std::unique_ptr<cluster::Clusterer> clusterer;
  if (method == "fairkm") {
    if (sensitive.empty()) {
      return Status::InvalidArgument("fairkm needs --sensitive attributes");
    }
    core::FairKMOptions options;
    options.k = k;
    options.lambda = args.GetDouble("lambda");
    // 0 = method default (30, the paper's §5.4 protocol).
    if (const int cap = static_cast<int>(args.GetInt("max-iterations")); cap > 0) {
      options.max_iterations = cap;
    }
    options.minibatch_size = static_cast<int>(args.GetInt("minibatch"));
    options.num_threads = static_cast<int>(args.GetInt("threads"));
    options.enable_pruning = !args.GetBool("no-prune");
    const std::string sweep = ToLower(args.GetString("sweep"));
    if (sweep == "parallel") {
      options.sweep_mode = core::SweepMode::kParallelSnapshot;
      if (options.minibatch_size <= 0) {
        return Status::InvalidArgument(
            "--sweep parallel requires --minibatch > 0");
      }
    } else if (sweep != "serial") {
      return Status::InvalidArgument("--sweep must be serial or parallel");
    }
    FAIRKM_ASSIGN_OR_RETURN(data::PointStoreSpec store_spec,
                            data::PointStoreSpec::Parse(args.GetString("store")));
    if (args.GetBool("supervise")) {
      // Self-healing runtime (core/supervisor.h): divergence watchdog,
      // checkpoint rollback, and the I/O demotion ladder around the run.
      // Works with either store backend (the supervised session drives the
      // store-backed solver directly, not the sharded driver).
      core::SupervisorPolicy policy;
      policy.checkpoint_dir = checkpoint_dir;
      if (!checkpoint_dir.empty()) {
        policy.checkpoint_every =
            static_cast<int>(args.GetInt("checkpoint-every"));
        if (policy.checkpoint_every <= 0) {
          return Status::InvalidArgument("--checkpoint-every must be positive");
        }
        policy.resume = args.GetBool("resume");
      }
      policy.max_rollbacks = static_cast<int>(args.GetInt("max-rollbacks"));
      policy.stall_timeout_seconds = args.GetDouble("stall-timeout-ms") / 1e3;
      if (args.GetDouble("stall-timeout-ms") <= 0.0) {
        policy.stall_timeout_seconds = -1.0;
      }
      FAIRKM_ASSIGN_OR_RETURN(
          core::SupervisedRunner runner,
          core::SupervisedRunner::Create(&matrix, &sensitive, options,
                                         store_spec, policy));
      FAIRKM_ASSIGN_OR_RETURN(const core::RunStop stop, runner.Run(seed));
      const core::SupervisorStats& stats = runner.stats();
      std::printf("supervisor: stop = %s, %d sweeps kept, best objective %.6g\n",
                  RunStopName(stop), stats.sweeps_total, stats.best_objective);
      std::printf("supervisor: rollbacks = %d (non-finite %d, regression %d, "
                  "stall %d, io %d)\n",
                  stats.rollbacks, stats.nonfinite_faults,
                  stats.regression_faults, stats.stall_faults, stats.io_faults);
      std::printf("supervisor: demotions store %d / pruning %d / parallel %d, "
                  "%d checkpoints saved, %llu dir-fsync failures\n",
                  stats.store_demotions, stats.pruning_demotions,
                  stats.parallel_demotions, stats.checkpoints_saved,
                  static_cast<unsigned long long>(stats.dir_fsync_failures));
      FAIRKM_ASSIGN_OR_RETURN(core::FairKMResult fair_result,
                              runner.CurrentResult());
      return Report(args, method, matrix, sensitive, std::move(fair_result),
                    std::move(csv));
    }
    if (store_spec.backend == data::PointStoreSpec::Backend::kMmap) {
      // Out-of-core path: materialize the (scaled) matrix once into the
      // aligned store file, map it read-only, and drive the sharded sweep —
      // the dataset pages stream through the page cache instead of living
      // on the heap, and each shard is evicted as the cursor passes it.
      if (options.sweep_mode != core::SweepMode::kParallelSnapshot) {
        return Status::InvalidArgument(
            "--store=mmap:<path> requires --sweep parallel and --minibatch > 0 "
            "(the sharded driver runs over the snapshot batch engine)");
      }
      FAIRKM_ASSIGN_OR_RETURN(std::shared_ptr<const data::PointStore> store,
                              data::PointStore::Create(matrix, store_spec));
      FAIRKM_ASSIGN_OR_RETURN(
          core::ShardedSweep sweep,
          core::ShardedSweep::Create(store, &sensitive, options,
                                     static_cast<int>(args.GetInt("shards"))));
      FAIRKM_RETURN_NOT_OK(sweep.Init(&rng));
      core::RunBudget budget;
      if (!checkpoint_dir.empty()) {
        budget.checkpoint_dir = checkpoint_dir;
        budget.checkpoint_every =
            static_cast<int>(args.GetInt("checkpoint-every"));
        budget.resume = args.GetBool("resume");
        if (budget.checkpoint_every <= 0) {
          return Status::InvalidArgument("--checkpoint-every must be positive");
        }
      }
      FAIRKM_ASSIGN_OR_RETURN(const core::RunStop stop, sweep.Run(budget));
      const core::ShardedSweepStats& stats = sweep.stats();
      std::printf("store: %s (%.1f MiB on disk)\n", store->file_path().c_str(),
                  static_cast<double>(store->data_bytes()) / (1024.0 * 1024.0));
      std::printf("sharded sweep: %d shards x %zu rows, %llu evictions, "
                  "peak RSS %.1f MiB, stop = %s\n",
                  stats.num_shards, stats.shard_rows,
                  static_cast<unsigned long long>(stats.evictions),
                  static_cast<double>(stats.peak_rss_bytes) / (1024.0 * 1024.0),
                  RunStopName(stop));
      FAIRKM_ASSIGN_OR_RETURN(core::FairKMResult fair_result,
                              sweep.solver().CurrentResult());
      return Report(args, method, matrix, sensitive, std::move(fair_result),
                    std::move(csv));
    }
    if (checkpoint_dir.empty()) {
      clusterer = core::MakeFairKMClusterer(options);
    } else {
      // Durable-checkpoint path: drive the solver session directly so the
      // run auto-checkpoints (core/checkpoint_io.h format: temp file +
      // fsync + atomic rename, CRC-verified on read) and --resume can pick
      // up where a crashed or cancelled run stopped.
      core::RunBudget budget;
      budget.checkpoint_dir = checkpoint_dir;
      budget.checkpoint_every =
          static_cast<int>(args.GetInt("checkpoint-every"));
      budget.resume = args.GetBool("resume");
      if (budget.checkpoint_every <= 0) {
        return Status::InvalidArgument("--checkpoint-every must be positive");
      }
      FAIRKM_ASSIGN_OR_RETURN(
          core::FairKMSolver solver,
          core::FairKMSolver::Create(&matrix, &sensitive, options));
      FAIRKM_RETURN_NOT_OK(solver.Init(&rng));
      FAIRKM_ASSIGN_OR_RETURN(const core::RunStop stop, solver.Run(budget));
      std::printf("checkpoints: %s, every %d sweeps, stop = %s\n",
                  checkpoint_dir.c_str(), budget.checkpoint_every,
                  RunStopName(stop));
      FAIRKM_ASSIGN_OR_RETURN(core::FairKMResult fair_result,
                              solver.CurrentResult());
      return Report(args, method, matrix, sensitive, std::move(fair_result),
                    std::move(csv));
    }
  } else {
    cluster::ClustererOptions options;
    options.k = k;
    options.lambda = args.GetDouble("lambda");
    // <= 0 keeps each method's own default (K-Means: 100 Lloyd iterations,
    // ZGYA: 30 sweeps).
    options.max_iterations = static_cast<int>(args.GetInt("max-iterations"));
    FAIRKM_ASSIGN_OR_RETURN(clusterer, cluster::CreateClusterer(method, options));
  }
  FAIRKM_ASSIGN_OR_RETURN(cluster::ClusteringResult result,
                          clusterer->Cluster(matrix, sensitive, &rng));
  return Report(args, method, matrix, sensitive, std::move(result),
                std::move(csv));
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.AddFlag("input", "", "input CSV file (header required)");
  args.AddFlag("output", "", "output CSV file (input + cluster column)");
  args.AddFlag("features", "", "comma-separated task columns (default: all numeric)");
  args.AddFlag("sensitive", "", "comma-separated categorical sensitive columns");
  args.AddFlag("numeric-sensitive", "", "comma-separated numeric sensitive columns");
  args.AddFlag("method", "fairkm",
               "clusterer registry name: kmeans | fairkm | zgya | zgya-hard");
  args.AddFlag("k", "5", "number of clusters");
  args.AddFlag("lambda", "-1", "fairness weight (-1 = auto heuristic)");
  args.AddFlag("max-iterations", "0",
               "optimizer iteration cap (0 = method default: fairkm/zgya 30, "
               "kmeans 100)");
  args.AddFlag("minibatch", "0", "prototype refresh batch (0 = every move)");
  args.AddFlag("sweep", "serial", "candidate evaluation: serial | parallel");
  args.AddFlag("threads", "0", "parallel sweep workers (0 = hardware)");
  args.AddFlag("no-prune", "false",
               "disable bound-gated candidate pruning (exact sweep; "
               "FAIRKM_DISABLE_PRUNING=1 does the same)");
  args.AddFlag("store", "mem",
               "fairkm point storage: mem | mmap:<path> (write the aligned "
               "store file once, map it read-only, run the out-of-core "
               "sharded sweep; requires --sweep parallel)");
  args.AddFlag("shards", "0",
               "fairkm --store=mmap: shards for the out-of-core sweep, each "
               "evicted from the page cache as the sweep passes it (0 = auto)");
  args.AddFlag("scale", "minmax", "feature scaling: minmax | zscore | none");
  args.AddFlag("kernels", "auto",
               "kernel backend: auto (cpuid dispatch) | scalar");
  args.AddFlag("seed", "42", "random seed");
  args.AddFlag("checkpoint-dir", "",
               "fairkm: directory for durable auto-checkpoints (CRC-verified, "
               "atomically replaced; empty = off)");
  args.AddFlag("checkpoint-every", "5",
               "fairkm: sweeps between auto-checkpoints (one more is always "
               "taken when the run stops)");
  args.AddFlag("resume", "false",
               "fairkm: restore the newest valid checkpoint in "
               "--checkpoint-dir before running (corrupt files are skipped)");
  args.AddFlag("supervise", "false",
               "fairkm: run under the self-healing supervisor (divergence "
               "watchdog, rollback to the last good checkpoint, I/O demotion "
               "ladder); combine with --checkpoint-dir for durable rollback");
  args.AddFlag("max-rollbacks", "3",
               "supervise: recoveries allowed before the run fails");
  args.AddFlag("stall-timeout-ms", "0",
               "supervise: a sweep slower than this trips the watchdog "
               "(0 = off)");
  args.AddFlag("serve-bench", "false",
               "run the serving-tier benchmark (trainer publishing snapshots "
               "+ concurrent readers) on the synthetic Adult dataset and "
               "print the AssignService metrics");
  args.AddFlag("serve-seconds", "2", "serve-bench: wall-clock deadline");
  args.AddFlag("serve-readers", "2", "serve-bench: concurrent reader threads");
  args.AddFlag("serve-batch", "512", "serve-bench: max points per scoring batch");
  args.AddFlag("serve-rows", "8192",
               "serve-bench: Adult subsample size (0 = full dataset)");
  args.AddFlag("serve-deadline-ms", "0",
               "serve-bench: per-request deadline in milliseconds, queue wait "
               "included (0 = none)");
  args.AddFlag("serve-queue-timeout-ms", "0",
               "serve-bench: give up on requests that wait longer than this "
               "in the admission queue (0 = none)");
  args.AddFlag("serve-queue-depth", "1024",
               "serve-bench: admission-queue depth; requests beyond it are "
               "shed immediately");
  args.AddFlag("online-bench", "false",
               "run the online fairness engine benchmark on the synthetic "
               "Adult dataset: train on --online-initial rows, stream the "
               "rest through Admit/Retire with the drift monitor live, then "
               "verify the flushed state against a from-scratch rebuild");
  args.AddFlag("online-initial", "2000",
               "online-bench: initial training rows");
  args.AddFlag("online-admit-batch", "32",
               "online-bench: points per admit batch");
  args.AddFlag("online-admit-batches", "20",
               "online-bench: number of admit batches streamed in");
  args.AddFlag("online-retire-fraction", "0.25",
               "online-bench: fraction of each admitted batch retired "
               "immediately (churn)");
  args.AddFlag("drift-tolerance", "0.05",
               "online-bench: per-point objective regression (relative to "
               "the last re-train baseline) that triggers a bounded "
               "re-sweep");
  args.AddFlag("resweep-sweeps", "2",
               "online-bench: sweep budget of each drift-triggered re-sweep");
  args.AddFlag("help", "false", "show usage");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 args.HelpString("fairkm_cli").c_str());
    return 1;
  }
  if (args.GetBool("help")) {
    std::printf("%s", args.HelpString("fairkm_cli").c_str());
    return 0;
  }
  if (Status st = args.GetBool("serve-bench")    ? ServeBench(args)
                  : args.GetBool("online-bench") ? OnlineBench(args)
                                                 : Run(args);
      !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
