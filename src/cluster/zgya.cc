#include "cluster/zgya.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fairkm {
namespace cluster {
namespace {

constexpr double kEps = 1e-12;

// KL(P_C || U) for one cluster given its value counts and size.
double ClusterKl(const int64_t* counts, int m, size_t size,
                 const std::vector<double>& u) {
  if (size == 0) return 0.0;
  const double inv = 1.0 / static_cast<double>(size);
  double kl = 0.0;
  for (int s = 0; s < m; ++s) {
    const double p = static_cast<double>(counts[s]) * inv;
    if (p <= 0.0) continue;
    kl += p * std::log(p / std::max(u[static_cast<size_t>(s)], kEps));
  }
  return kl;
}

double AutoLambda(const data::Matrix& points, int k) {
  // Mean squared distance to the global mean ~ per-point SSE scale.
  const size_t n = points.rows();
  const size_t d = points.cols();
  std::vector<double> mean(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = points.Row(i);
    for (size_t j = 0; j < d; ++j) mean[j] += row[j];
  }
  for (double& v : mean) v /= static_cast<double>(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += data::SquaredDistance(points.Row(i), mean.data(), d);
  }
  const double avg_var = total / static_cast<double>(n);
  return 0.4 * avg_var * static_cast<double>(n) / static_cast<double>(k);
}

// Incremental hard-move state: cluster sizes, feature sums, value counts.
class HardState {
 public:
  HardState(const data::Matrix& points, const data::CategoricalSensitive& attr, int k,
            Assignment assignment)
      : points_(points),
        attr_(attr),
        k_(k),
        d_(points.cols()),
        assignment_(std::move(assignment)),
        counts_(static_cast<size_t>(k), 0),
        sums_(static_cast<size_t>(k) * points.cols(), 0.0),
        value_counts_(static_cast<size_t>(k) * attr.cardinality, 0) {
    for (size_t i = 0; i < points_.rows(); ++i) {
      const size_t c = static_cast<size_t>(assignment_[i]);
      ++counts_[c];
      const double* row = points_.Row(i);
      double* acc = sums_.data() + c * d_;
      for (size_t j = 0; j < d_; ++j) acc[j] += row[j];
      ++value_counts_[c * attr_.cardinality + attr_.codes[i]];
    }
  }

  double DeltaKMeans(size_t i, int to) const {
    const int from = assignment_[i];
    if (to == from) return 0.0;
    double delta = 0.0;
    const size_t c_from = counts_[static_cast<size_t>(from)];
    if (c_from > 1) {
      delta -= static_cast<double>(c_from) / static_cast<double>(c_from - 1) *
               DistanceToMean(i, from, c_from);
    }
    const size_t c_to = counts_[static_cast<size_t>(to)];
    if (c_to > 0) {
      delta += static_cast<double>(c_to) / static_cast<double>(c_to + 1) *
               DistanceToMean(i, to, c_to);
    }
    return delta;
  }

  // Change of sum_C KL(P_C || U) when moving point i to cluster `to`:
  // recompute the two affected clusters' KL before/after in O(m).
  double DeltaKl(size_t i, int to) const {
    const int from = assignment_[i];
    if (to == from) return 0.0;
    const int m = attr_.cardinality;
    const int32_t v = attr_.codes[i];

    std::vector<int64_t> buf(static_cast<size_t>(m));
    const int64_t* from_counts = value_counts_.data() + static_cast<size_t>(from) * m;
    const int64_t* to_counts = value_counts_.data() + static_cast<size_t>(to) * m;

    double delta = 0.0;
    delta -= ClusterKl(from_counts, m, counts_[static_cast<size_t>(from)],
                       attr_.dataset_fractions);
    delta -= ClusterKl(to_counts, m, counts_[static_cast<size_t>(to)],
                       attr_.dataset_fractions);
    std::copy(from_counts, from_counts + m, buf.begin());
    --buf[static_cast<size_t>(v)];
    delta += ClusterKl(buf.data(), m, counts_[static_cast<size_t>(from)] - 1,
                       attr_.dataset_fractions);
    std::copy(to_counts, to_counts + m, buf.begin());
    ++buf[static_cast<size_t>(v)];
    delta += ClusterKl(buf.data(), m, counts_[static_cast<size_t>(to)] + 1,
                       attr_.dataset_fractions);
    return delta;
  }

  void Move(size_t i, int to) {
    const int from = assignment_[i];
    if (to == from) return;
    const double* row = points_.Row(i);
    double* from_sums = sums_.data() + static_cast<size_t>(from) * d_;
    double* to_sums = sums_.data() + static_cast<size_t>(to) * d_;
    for (size_t j = 0; j < d_; ++j) {
      from_sums[j] -= row[j];
      to_sums[j] += row[j];
    }
    --counts_[static_cast<size_t>(from)];
    ++counts_[static_cast<size_t>(to)];
    const int32_t v = attr_.codes[i];
    --value_counts_[static_cast<size_t>(from) * attr_.cardinality + v];
    ++value_counts_[static_cast<size_t>(to) * attr_.cardinality + v];
    assignment_[i] = static_cast<int32_t>(to);
  }

  double KlTerm() const {
    double total = 0.0;
    for (int c = 0; c < k_; ++c) {
      total += ClusterKl(value_counts_.data() + static_cast<size_t>(c) * attr_.cardinality,
                         attr_.cardinality, counts_[static_cast<size_t>(c)],
                         attr_.dataset_fractions);
    }
    return total;
  }

  const Assignment& assignment() const { return assignment_; }
  int cluster_of(size_t i) const { return assignment_[i]; }

 private:
  double DistanceToMean(size_t i, int c, size_t count) const {
    const double* row = points_.Row(i);
    const double* sums = sums_.data() + static_cast<size_t>(c) * d_;
    const double inv = 1.0 / static_cast<double>(count);
    double total = 0.0;
    for (size_t j = 0; j < d_; ++j) {
      const double diff = row[j] - sums[j] * inv;
      total += diff * diff;
    }
    return total;
  }

  const data::Matrix& points_;
  const data::CategoricalSensitive& attr_;
  int k_;
  size_t d_;
  Assignment assignment_;
  std::vector<size_t> counts_;
  std::vector<double> sums_;
  std::vector<int64_t> value_counts_;
};

Result<ZgyaResult> RunHard(const data::Matrix& points,
                           const data::CategoricalSensitive& attr,
                           const ZgyaOptions& options, double lambda, Rng* rng) {
  FAIRKM_ASSIGN_OR_RETURN(
      Assignment initial,
      MakeInitialAssignment(points, options.k, options.init, rng));
  HardState state(points, attr, options.k, std::move(initial));

  ZgyaResult result;
  result.lambda_used = lambda;
  const size_t n = points.rows();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    size_t moves = 0;
    for (size_t i = 0; i < n; ++i) {
      const int from = state.cluster_of(i);
      double best_delta = -options.min_improvement;
      int best_cluster = from;
      for (int c = 0; c < options.k; ++c) {
        if (c == from) continue;
        const double delta = state.DeltaKMeans(i, c) + lambda * state.DeltaKl(i, c);
        if (delta < best_delta) {
          best_delta = delta;
          best_cluster = c;
        }
      }
      if (best_cluster != from) {
        state.Move(i, best_cluster);
        ++moves;
      }
    }
    result.iterations = iter + 1;
    if (moves == 0) {
      result.converged = true;
      break;
    }
  }
  result.assignment = state.assignment();
  result.kl_term = state.KlTerm();
  return result;
}

Result<ZgyaResult> RunSoft(const data::Matrix& points,
                           const data::CategoricalSensitive& attr,
                           const ZgyaOptions& options, double lambda, Rng* rng) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  const int k = options.k;
  const int m = attr.cardinality;

  // Soft assignment matrix s (n x k). Soft K-Means collapses from a uniform
  // random start (all centroids land on the global mean), so the soft mode
  // always seeds from k-means++ centers regardless of options.init.
  FAIRKM_ASSIGN_OR_RETURN(
      Assignment hard,
      MakeInitialAssignment(points, k, KMeansInit::kKMeansPlusPlus, rng));
  std::vector<double> s(n * static_cast<size_t>(k), 0.0);
  for (size_t i = 0; i < n; ++i) s[i * k + static_cast<size_t>(hard[i])] = 1.0;

  data::Matrix centers(static_cast<size_t>(k), d);
  std::vector<double> dist(n * static_cast<size_t>(k), 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Soft centroid update: mu_k = sum_p s_pk x_p / sum_p s_pk.
    std::vector<double> weights(static_cast<size_t>(k), 0.0);
    std::fill(centers.data().begin(), centers.data().end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double* row = points.Row(i);
      for (int c = 0; c < k; ++c) {
        const double w = s[i * k + static_cast<size_t>(c)];
        if (w <= 0.0) continue;
        weights[static_cast<size_t>(c)] += w;
        double* mu = centers.Row(static_cast<size_t>(c));
        for (size_t j = 0; j < d; ++j) mu[j] += w * row[j];
      }
    }
    double mean_dist = 0.0;
    for (int c = 0; c < k; ++c) {
      if (weights[static_cast<size_t>(c)] > kEps) {
        double* mu = centers.Row(static_cast<size_t>(c));
        for (size_t j = 0; j < d; ++j) mu[j] /= weights[static_cast<size_t>(c)];
      }
    }
    for (size_t i = 0; i < n; ++i) {
      for (int c = 0; c < k; ++c) {
        dist[i * k + static_cast<size_t>(c)] = data::SquaredDistance(
            points.Row(i), centers.Row(static_cast<size_t>(c)), d);
        mean_dist += dist[i * k + static_cast<size_t>(c)];
      }
    }
    mean_dist /= static_cast<double>(n * static_cast<size_t>(k));
    // Anneal: early iterations explore, later ones sharpen towards a hard
    // assignment so the final argmax is meaningful.
    const double anneal =
        1.0 / (1.0 + static_cast<double>(iter) * 0.5);
    const double temperature =
        std::max(kEps, options.soft_temperature * mean_dist * anneal);

    // Inner bound updates: first-order expansion of the KL term around the
    // current soft counts gives per-point gradients
    //   g_pk = 1/n_k - U_{j(p)} / m_{j(p)k}
    // (see DESIGN.md §3.3); points then redistribute by softmax.
    for (int inner = 0; inner < options.soft_inner_iterations; ++inner) {
      std::vector<double> nk(static_cast<size_t>(k), 0.0);
      std::vector<double> mjk(static_cast<size_t>(k) * m, 0.0);
      for (size_t i = 0; i < n; ++i) {
        for (int c = 0; c < k; ++c) {
          const double w = s[i * k + static_cast<size_t>(c)];
          nk[static_cast<size_t>(c)] += w;
          mjk[static_cast<size_t>(c) * m + attr.codes[i]] += w;
        }
      }
      for (size_t i = 0; i < n; ++i) {
        const int32_t j = attr.codes[i];
        const double u = attr.dataset_fractions[static_cast<size_t>(j)];
        double best = std::numeric_limits<double>::infinity();
        std::vector<double> cost(static_cast<size_t>(k));
        for (int c = 0; c < k; ++c) {
          const double g =
              1.0 / std::max(nk[static_cast<size_t>(c)], kEps) -
              u / std::max(mjk[static_cast<size_t>(c) * m + j], kEps);
          cost[static_cast<size_t>(c)] =
              dist[i * k + static_cast<size_t>(c)] + lambda * g;
          best = std::min(best, cost[static_cast<size_t>(c)]);
        }
        double total = 0.0;
        std::vector<double> fresh(static_cast<size_t>(k));
        for (int c = 0; c < k; ++c) {
          const double e =
              std::exp(-(cost[static_cast<size_t>(c)] - best) / temperature);
          fresh[static_cast<size_t>(c)] = e;
          total += e;
        }
        const double keep = options.soft_damping;
        for (int c = 0; c < k; ++c) {
          double& cell = s[i * k + static_cast<size_t>(c)];
          cell = keep * cell + (1.0 - keep) * fresh[static_cast<size_t>(c)] / total;
        }
      }
    }
  }

  // Harden.
  ZgyaResult result;
  result.lambda_used = lambda;
  result.iterations = options.max_iterations;
  result.assignment.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int best = 0;
    double best_w = -1.0;
    for (int c = 0; c < k; ++c) {
      if (s[i * k + static_cast<size_t>(c)] > best_w) {
        best_w = s[i * k + static_cast<size_t>(c)];
        best = c;
      }
    }
    result.assignment[i] = static_cast<int32_t>(best);
  }
  result.kl_term = ZgyaKlTerm(attr, result.assignment, k);
  return result;
}

}  // namespace

double ZgyaKlTerm(const data::CategoricalSensitive& attr, const Assignment& assignment,
                  int k) {
  const int m = attr.cardinality;
  std::vector<int64_t> counts(static_cast<size_t>(k) * m, 0);
  std::vector<size_t> sizes(static_cast<size_t>(k), 0);
  for (size_t i = 0; i < assignment.size(); ++i) {
    ++counts[static_cast<size_t>(assignment[i]) * m + attr.codes[i]];
    ++sizes[static_cast<size_t>(assignment[i])];
  }
  double total = 0.0;
  for (int c = 0; c < k; ++c) {
    total += ClusterKl(counts.data() + static_cast<size_t>(c) * m, m,
                       sizes[static_cast<size_t>(c)], attr.dataset_fractions);
  }
  return total;
}

Result<ZgyaResult> RunZgya(const data::Matrix& points,
                           const data::CategoricalSensitive& attr,
                           const ZgyaOptions& options, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (options.k <= 0) return Status::InvalidArgument("k must be positive");
  if (points.rows() == 0) return Status::InvalidArgument("no points to cluster");
  if (attr.codes.size() != points.rows()) {
    return Status::InvalidArgument("sensitive attribute row count mismatch");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  const double lambda =
      options.lambda < 0 ? AutoLambda(points, options.k) : options.lambda;

  ZgyaResult result;
  if (options.mode == ZgyaOptions::Mode::kHardMoves) {
    FAIRKM_ASSIGN_OR_RETURN(result, RunHard(points, attr, options, lambda, rng));
  } else {
    FAIRKM_ASSIGN_OR_RETURN(result, RunSoft(points, attr, options, lambda, rng));
  }
  FinalizeResult(points, options.k, &result);
  result.kmeans_term = result.kmeans_objective;
  result.total_objective = result.kmeans_term + lambda * result.kl_term;
  return result;
}

}  // namespace cluster
}  // namespace fairkm
