#include "data/pca.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace fairkm {
namespace data {
namespace {

// Anisotropic Gaussian cloud: dominant axis along `direction`.
Matrix MakeAnisotropic(const std::vector<double>& direction, double major,
                       double minor, size_t n, Rng* rng) {
  const size_t d = direction.size();
  double norm = 0;
  for (double v : direction) norm += v * v;
  norm = std::sqrt(norm);
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    const double along = rng->Normal(0, major);
    for (size_t j = 0; j < d; ++j) {
      m.At(i, j) = along * direction[j] / norm + rng->Normal(0, minor);
    }
  }
  return m;
}

TEST(PcaTest, ValidatesInputs) {
  Matrix empty;
  PcaOptions opt;
  EXPECT_FALSE(FitPca(empty, opt).ok());
  Matrix m(4, 2, 1.0);
  opt.num_components = 0;
  EXPECT_FALSE(FitPca(m, opt).ok());
  opt.num_components = 3;
  EXPECT_FALSE(FitPca(m, opt).ok());
  opt.num_components = 1;
  opt.power_iterations = 0;
  EXPECT_FALSE(FitPca(m, opt).ok());
}

TEST(PcaTest, RecoversDominantDirection) {
  Rng rng(3);
  std::vector<double> direction = {3.0, 4.0, 0.0};  // Unit: (0.6, 0.8, 0).
  Matrix m = MakeAnisotropic(direction, 5.0, 0.3, 2000, &rng);
  PcaOptions opt;
  opt.num_components = 1;
  auto model = FitPca(m, opt).ValueOrDie();
  const double* v = model.components.Row(0);
  // Up to sign.
  const double dot = std::fabs(v[0] * 0.6 + v[1] * 0.8);
  EXPECT_GT(dot, 0.99);
  EXPECT_NEAR(model.variances[0], 25.0, 2.5);  // major^2.
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  Rng rng(5);
  Matrix m(300, 4);
  for (size_t i = 0; i < 300; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      m.At(i, j) = rng.Normal(0, 1.0 + static_cast<double>(j));
    }
  }
  PcaOptions opt;
  opt.num_components = 3;
  auto model = FitPca(m, opt).ValueOrDie();
  for (size_t a = 0; a < 3; ++a) {
    double norm = 0;
    for (size_t j = 0; j < 4; ++j) {
      norm += model.components.At(a, j) * model.components.At(a, j);
    }
    EXPECT_NEAR(norm, 1.0, 1e-6);
    for (size_t b = a + 1; b < 3; ++b) {
      double dot = 0;
      for (size_t j = 0; j < 4; ++j) {
        dot += model.components.At(a, j) * model.components.At(b, j);
      }
      EXPECT_NEAR(dot, 0.0, 1e-4) << a << "," << b;
    }
  }
  // Variances come out sorted (power iteration finds them largest-first).
  EXPECT_GE(model.variances[0], model.variances[1] - 1e-9);
  EXPECT_GE(model.variances[1], model.variances[2] - 1e-9);
}

TEST(PcaTest, TransformCentersAndProjects) {
  Rng rng(7);
  Matrix m = MakeAnisotropic({1.0, 0.0}, 4.0, 0.2, 500, &rng);
  // Shift the cloud away from the origin; PCA should remove the mean.
  for (size_t i = 0; i < m.rows(); ++i) {
    m.At(i, 0) += 10.0;
    m.At(i, 1) += -3.0;
  }
  PcaOptions opt;
  opt.num_components = 1;
  auto model = FitPca(m, opt).ValueOrDie();
  auto projected = PcaTransform(model, m).ValueOrDie();
  EXPECT_EQ(projected.rows(), 500u);
  EXPECT_EQ(projected.cols(), 1u);
  double mean = 0;
  for (size_t i = 0; i < 500; ++i) mean += projected.At(i, 0);
  EXPECT_NEAR(mean / 500, 0.0, 1e-9);
  // Projection variance matches the component's eigenvalue.
  double var = 0;
  for (size_t i = 0; i < 500; ++i) var += projected.At(i, 0) * projected.At(i, 0);
  EXPECT_NEAR(var / 500, model.variances[0], 0.05 * model.variances[0] + 1e-9);
}

TEST(PcaTest, TransformRejectsWidthMismatch) {
  Rng rng(9);
  Matrix m = MakeAnisotropic({1.0, 1.0}, 2.0, 0.5, 50, &rng);
  PcaOptions opt;
  auto model = FitPca(m, opt).ValueOrDie();
  Matrix wrong(5, 3);
  EXPECT_FALSE(PcaTransform(model, wrong).ok());
}

TEST(PcaTest, DeterministicGivenSeed) {
  Rng rng(11);
  Matrix m = MakeAnisotropic({1.0, 2.0, 3.0}, 3.0, 1.0, 200, &rng);
  PcaOptions opt;
  opt.num_components = 2;
  auto a = FitPca(m, opt).ValueOrDie();
  auto b = FitPca(m, opt).ValueOrDie();
  EXPECT_EQ(a.components.data(), b.components.data());
}

}  // namespace
}  // namespace data
}  // namespace fairkm
