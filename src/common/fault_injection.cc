#include "common/fault_injection.h"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace fairkm {
namespace fault {

namespace internal {
std::atomic<int> armed_points{0};
}  // namespace internal

namespace {

struct PointState {
  FaultSpec spec;
  uint64_t hits = 0;   // times reached while armed
  int fired = 0;       // times the fault actually applied
  bool disarmed = false;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState> points;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: used during shutdown
  return *registry;
}

Status MakeErrorStatus(const char* point, const FaultSpec& spec) {
  if (spec.kind == Kind::kDiskFull) {
    // Disk-full is always the typed resource error, whatever `code` says —
    // the degradation ladders key on kResourceExhausted specifically.
    std::string msg = spec.message.empty()
                          ? std::string("injected disk full (ENOSPC) at ") +
                                point
                          : spec.message;
    return Status::ResourceExhausted(std::move(msg));
  }
  std::string msg = spec.message.empty()
                        ? std::string("injected fault at ") + point
                        : spec.message;
  return Status(spec.code, std::move(msg));
}

void RecountArmedLocked(Registry& reg) {
  int armed = 0;
  for (const auto& kv : reg.points) {
    if (!kv.second.disarmed) ++armed;
  }
  internal::armed_points.store(armed, std::memory_order_relaxed);
}

bool ParseKind(const std::string& v, FaultSpec* spec) {
  if (v == "error") {
    spec->kind = Kind::kError;
  } else if (v == "short") {
    spec->kind = Kind::kShortWrite;
    if (spec->keep_bytes == SIZE_MAX) spec->keep_bytes = 0;
  } else if (v == "torn") {
    spec->kind = Kind::kTornRename;
  } else if (v == "delay") {
    spec->kind = Kind::kDelay;
  } else if (v == "diskfull") {
    spec->kind = Kind::kDiskFull;
  } else if (v == "kill") {
    spec->kind = Kind::kKill;
  } else {
    return false;
  }
  return true;
}

bool ParseCode(const std::string& v, FaultSpec* spec) {
  if (v == "io") {
    spec->code = StatusCode::kIOError;
  } else if (v == "dataloss") {
    spec->code = StatusCode::kDataLoss;
  } else if (v == "unavailable") {
    spec->code = StatusCode::kUnavailable;
  } else if (v == "internal") {
    spec->code = StatusCode::kInternal;
  } else if (v == "exhausted") {
    spec->code = StatusCode::kResourceExhausted;
  } else {
    return false;
  }
  return true;
}

// Arms faults named in the FAIRKM_FAULT environment variable before main()
// runs, so child processes under test need no code changes. A malformed
// value aborts: a typo silently arming nothing would invalidate the test.
struct EnvArmer {
  EnvArmer() {
    const char* env = std::getenv("FAIRKM_FAULT");
    if (env == nullptr || env[0] == '\0') return;
    Status st = ArmFromString(env);
    if (!st.ok()) {
      std::fprintf(stderr, "FAIRKM_FAULT: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
};
const EnvArmer env_armer;

}  // namespace

void Arm(const std::string& point, FaultSpec spec) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  PointState& state = reg.points[point];
  state.spec = std::move(spec);
  state.hits = 0;
  state.fired = 0;
  state.disarmed = false;
  RecountArmedLocked(reg);
}

void Disarm(const std::string& point) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it != reg.points.end()) it->second.disarmed = true;
  RecountArmedLocked(reg);
}

void DisarmAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points.clear();
  internal::armed_points.store(0, std::memory_order_relaxed);
}

bool Hit(const char* point, FaultAction* action) {
  if (!Enabled()) return false;
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it == reg.points.end() || it->second.disarmed) return false;
  PointState& state = it->second;
  const FaultSpec& spec = state.spec;
  const uint64_t hit_index = state.hits++;
  if (hit_index < static_cast<uint64_t>(spec.skip)) return false;
  if (spec.max_fires >= 0 && state.fired >= spec.max_fires) return false;
  ++state.fired;
  if (spec.max_fires >= 0 && state.fired >= spec.max_fires) {
    state.disarmed = true;
    RecountArmedLocked(reg);
  }
  if (spec.kind == Kind::kKill) {
    // The crash harness's kill site: die exactly here, with the registry
    // mutex held and no unwinding — indistinguishable from `kill -9` landing
    // mid-operation. Never returns.
    ::kill(::getpid(), SIGKILL);
    ::pause();  // unreachable; quiets noreturn-path warnings
  }
  action->kind = spec.kind;
  action->keep_bytes = spec.keep_bytes;
  action->delay_seconds = spec.delay_seconds;
  action->status = spec.kind == Kind::kDelay ? Status::OK()
                                             : MakeErrorStatus(point, spec);
  return true;
}

uint64_t HitCount(const std::string& point) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.hits;
}

Status Check(const char* point) {
  FaultAction action;
  if (!Hit(point, &action)) return Status::OK();
  if (action.kind == Kind::kDelay) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(action.delay_seconds));
    return Status::OK();
  }
  // kError, and also short/torn faults reaching a plain fault point: surface
  // the injected status rather than silently ignoring the arming.
  return action.status;
}

Status ArmFromString(const std::string& env_value) {
  size_t pos = 0;
  while (pos < env_value.size()) {
    size_t end = env_value.find(';', pos);
    if (end == std::string::npos) end = env_value.size();
    const std::string clause = env_value.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;

    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault clause is not point=kind[,...]: " +
                                     clause);
    }
    const std::string point = clause.substr(0, eq);
    FaultSpec spec;
    size_t field_pos = eq + 1;
    bool first_field = true;
    while (field_pos <= clause.size()) {
      size_t field_end = clause.find(',', field_pos);
      if (field_end == std::string::npos) field_end = clause.size();
      const std::string field = clause.substr(field_pos, field_end - field_pos);
      field_pos = field_end + 1;
      if (field.empty()) {
        if (first_field) {
          return Status::InvalidArgument("fault clause missing kind: " +
                                         clause);
        }
        continue;
      }
      if (first_field) {
        first_field = false;
        if (!ParseKind(field, &spec)) {
          return Status::InvalidArgument("unknown fault kind: " + field);
        }
        continue;
      }
      const size_t feq = field.find('=');
      if (feq == std::string::npos || feq == 0 || feq + 1 >= field.size()) {
        return Status::InvalidArgument("fault option is not key=value: " +
                                       field);
      }
      const std::string key = field.substr(0, feq);
      const std::string value = field.substr(feq + 1);
      char* parse_end = nullptr;
      if (key == "code") {
        if (!ParseCode(value, &spec)) {
          return Status::InvalidArgument("unknown fault code: " + value);
        }
      } else if (key == "skip") {
        spec.skip = static_cast<int>(std::strtol(value.c_str(), &parse_end, 10));
        if (parse_end == nullptr || *parse_end != '\0' || spec.skip < 0) {
          return Status::InvalidArgument("bad skip value: " + value);
        }
      } else if (key == "fires") {
        spec.max_fires =
            static_cast<int>(std::strtol(value.c_str(), &parse_end, 10));
        if (parse_end == nullptr || *parse_end != '\0' || spec.max_fires < 0) {
          return Status::InvalidArgument("bad fires value: " + value);
        }
      } else if (key == "keep") {
        const long long keep = std::strtoll(value.c_str(), &parse_end, 10);
        if (parse_end == nullptr || *parse_end != '\0' || keep < 0) {
          return Status::InvalidArgument("bad keep value: " + value);
        }
        spec.keep_bytes = static_cast<size_t>(keep);
      } else if (key == "seconds") {
        spec.delay_seconds = std::strtod(value.c_str(), &parse_end);
        if (parse_end == nullptr || *parse_end != '\0' ||
            spec.delay_seconds < 0) {
          return Status::InvalidArgument("bad seconds value: " + value);
        }
      } else {
        return Status::InvalidArgument("unknown fault option: " + key);
      }
    }
    if (first_field) {
      return Status::InvalidArgument("fault clause missing kind: " + clause);
    }
    Arm(point, std::move(spec));
  }
  return Status::OK();
}

}  // namespace fault
}  // namespace fairkm
