#include "core/fairkm.h"

#include <algorithm>
#include <memory>

#include "common/thread_pool.h"
#include "core/fairkm_state.h"

namespace fairkm {
namespace core {

double SuggestLambda(size_t num_rows, int k) {
  FAIRKM_DCHECK(k > 0);
  const double ratio = static_cast<double>(num_rows) / static_cast<double>(k);
  return ratio * ratio;
}

namespace {

// Picks the best move for point i given its precomputed per-cluster K-Means
// deltas and the live O(1)-per-attribute fairness deltas, and applies it.
// Returns true when the point moved.
bool ApplyBestMove(FairKMState* state, size_t i, const double* km_deltas,
                   double lambda, double min_improvement, int k) {
  const int from = state->cluster_of(i);
  double best_delta = -min_improvement;
  int best_cluster = from;
  for (int c = 0; c < k; ++c) {
    if (c == from) continue;
    const double delta = km_deltas[c] + lambda * state->DeltaFairness(i, c);
    if (delta < best_delta) {
      best_delta = delta;
      best_cluster = c;
    }
  }
  if (best_cluster == from) return false;
  state->Move(i, best_cluster);
  return true;
}

}  // namespace

Result<FairKMResult> RunFairKM(const data::Matrix& points,
                               const data::SensitiveView& sensitive,
                               const FairKMOptions& options, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (options.minibatch_size < 0) {
    return Status::InvalidArgument("minibatch_size must be non-negative");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be non-negative");
  }
  const bool parallel = options.sweep_mode == SweepMode::kParallelSnapshot;
  if (parallel && options.minibatch_size <= 0) {
    return Status::InvalidArgument(
        "parallel snapshot sweep requires minibatch_size > 0 (candidates are "
        "evaluated against the frozen prototype snapshot)");
  }
  // Validate k before SuggestLambda, whose k > 0 DCHECK would abort first in
  // debug builds.
  if (options.k <= 0) return Status::InvalidArgument("k must be positive");
  const size_t n = points.rows();
  const size_t k = static_cast<size_t>(options.k);
  const double lambda =
      options.lambda < 0 ? SuggestLambda(n, options.k) : options.lambda;

  FAIRKM_ASSIGN_OR_RETURN(
      cluster::Assignment initial,
      cluster::MakeInitialAssignment(points, options.k, options.init, rng));
  FAIRKM_ASSIGN_OR_RETURN(FairKMState state,
                          FairKMState::Create(&points, &sensitive, options.k,
                                              std::move(initial), options.fairness));

  const bool minibatch = options.minibatch_size > 0;
  state.EnablePrototypeSnapshot(minibatch);
  // Hoisted batch size: one full sweep is a single "batch" without
  // mini-batching, so the sweep loop below is uniform across modes.
  const size_t batch_size =
      minibatch ? static_cast<size_t>(options.minibatch_size) : n;

  const size_t num_threads = !parallel ? 1
                             : options.num_threads > 0
                                 ? static_cast<size_t>(options.num_threads)
                                 : ThreadPool::DefaultThreadCount();
  std::unique_ptr<ThreadPool> pool;
  if (parallel && num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);

  // Scratch for the batched K-Means kernel: one row of k candidate deltas per
  // in-flight point (the whole batch in parallel mode, one row otherwise).
  std::vector<double> km_deltas(parallel ? std::min(batch_size, n) * k : k);

  FairKMResult result;
  result.lambda_used = lambda;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    size_t moves = 0;
    // Round-robin over objects (paper Algorithm 1, step 4): each object is
    // re-assigned to the cluster minimizing the exact objective change
    // (Eq. 9), with prototypes and fractional representations updated
    // immediately (steps 6-7) — or in mini-batches when configured.
    for (size_t batch_start = 0; batch_start < n; batch_start += batch_size) {
      const size_t batch_end = std::min(n, batch_start + batch_size);
      if (parallel) {
        // Phase 1 (concurrent, read-only): batched K-Means deltas for every
        // point of the mini-batch against the frozen snapshot. Fairness
        // deltas are intentionally left to phase 2 — they read live
        // aggregates, which is exactly what the serial mini-batch sweep
        // does, so both modes walk identical trajectories.
        const size_t count = batch_end - batch_start;
        auto eval_point = [&](size_t offset) {
          state.DeltaKMeansAllClusters(batch_start + offset,
                                       km_deltas.data() + offset * k);
        };
        if (pool) {
          const size_t shards = std::min(pool->num_threads(), count);
          const size_t chunk = (count + shards - 1) / shards;
          for (size_t s = 0; s < shards; ++s) {
            const size_t lo = s * chunk;
            const size_t hi = std::min(count, lo + chunk);
            if (lo >= hi) break;
            pool->Submit([&eval_point, lo, hi] {
              for (size_t off = lo; off < hi; ++off) eval_point(off);
            });
          }
          pool->Wait();
        } else {
          for (size_t off = 0; off < count; ++off) eval_point(off);
        }
        // Phase 2 (sequential): pick and apply moves in round-robin order.
        for (size_t i = batch_start; i < batch_end; ++i) {
          if (ApplyBestMove(&state, i, km_deltas.data() + (i - batch_start) * k,
                            lambda, options.min_improvement, options.k)) {
            ++moves;
          }
        }
      } else {
        for (size_t i = batch_start; i < batch_end; ++i) {
          state.DeltaKMeansAllClusters(i, km_deltas.data());
          if (ApplyBestMove(&state, i, km_deltas.data(), lambda,
                            options.min_improvement, options.k)) {
            ++moves;
          }
        }
      }
      // Interior batch boundary: re-synchronize the prototype snapshot. The
      // end-of-sweep refresh below covers the final batch, so a sweep that
      // ends exactly on a boundary refreshes once, not twice.
      if (minibatch && batch_end < n) state.RefreshPrototypes();
    }
    if (minibatch) state.RefreshPrototypes();
    result.iterations = iter + 1;
    result.objective_history.push_back(state.KMeansTerm() +
                                       lambda * state.FairnessTerm());
    if (moves == 0) {
      result.converged = true;
      break;
    }
  }

  result.assignment = state.assignment();
  cluster::FinalizeResult(points, options.k, &result);
  result.kmeans_term = result.kmeans_objective;
  result.fairness_term = state.FairnessTerm();
  result.total_objective = result.kmeans_term + lambda * result.fairness_term;
  return result;
}

}  // namespace core
}  // namespace fairkm
