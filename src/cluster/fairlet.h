// Fairlet decomposition for a single binary sensitive attribute, after
// Chierichetti, Kumar, Lattanzi & Vassilvitskii, "Fair Clustering Through
// Fairlets" (NIPS 2017) — related-work family [6] of the FairKM paper.
//
// The dataset is decomposed into fairlets, each holding exactly one minority
// point and between floor(R/B) and ceil(R/B) majority points (R, B the
// majority/minority counts), so every fairlet's balance is at least
// B/R-optimal. Fairlet centers are then clustered with K-Means and every
// member inherits its fairlet's cluster, which guarantees per-cluster
// balance >= 1/ceil(R/B).
//
// Construction is greedy nearest-neighbour; when `refine_with_lp` is set the
// majority-to-fairlet assignment is re-solved exactly as a transportation LP
// (integral at optimum) via the lp/ substrate — the original paper's
// min-cost-flow step (DESIGN.md §3).

#ifndef FAIRKM_CLUSTER_FAIRLET_H_
#define FAIRKM_CLUSTER_FAIRLET_H_

#include <vector>

#include "cluster/kmeans.h"
#include "cluster/types.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace cluster {

/// \brief Fairlet clustering configuration.
struct FairletOptions {
  int k = 5;
  /// Re-solve the majority assignment exactly via a transportation LP
  /// (practical for a few hundred points; the greedy result is kept when the
  /// LP is not beneficial or fails).
  bool refine_with_lp = false;
  KMeansOptions kmeans;  ///< Used to cluster the fairlet centers (k is taken
                         ///< from FairletOptions.k).
};

/// \brief Output of fairlet clustering.
struct FairletResult : ClusteringResult {
  /// Point indices per fairlet (first entry is the minority point).
  std::vector<std::vector<size_t>> fairlets;
  /// Total within-fairlet cost sum_f sum_{i in f} d(i, anchor_f).
  double decomposition_cost = 0.0;
  /// Smallest per-cluster balance min(#x/#y, #y/#x) achieved.
  double min_cluster_balance = 0.0;
};

/// \brief Balance min(#x/#y, #y/#x) of a binary attribute within one point
/// subset; 0 when a side is empty.
double Balance(const data::CategoricalSensitive& attr,
               const std::vector<size_t>& members);

/// \brief Runs fairlet decomposition + K-Means over fairlet centers. The
/// attribute must be binary and both values must be present.
Result<FairletResult> RunFairletClustering(const data::Matrix& points,
                                           const data::CategoricalSensitive& attr,
                                           const FairletOptions& options, Rng* rng);

}  // namespace cluster
}  // namespace fairkm

#endif  // FAIRKM_CLUSTER_FAIRLET_H_
