// Seeded Gaussian random projection of sparse TF-IDF vectors to a dense
// low-dimensional space.
//
// This is the library's Doc2Vec substitute (DESIGN.md §3.2): by the
// Johnson-Lindenstrauss lemma the projection approximately preserves the
// inter-document geometry that a learned embedding would expose to K-Means.

#ifndef FAIRKM_TEXT_RANDOM_PROJECTION_H_
#define FAIRKM_TEXT_RANDOM_PROJECTION_H_

#include <cstdint>
#include <vector>

#include "data/matrix.h"
#include "text/tfidf.h"

namespace fairkm {
namespace text {

/// \brief Projects `docs` (over a vocabulary of `vocab_size` terms) to
/// `dim`-dimensional dense rows using a seeded N(0, 1/dim) projection matrix,
/// then L2-normalizes each row. Deterministic in `seed`.
data::Matrix ProjectToDense(const std::vector<SparseVector>& docs, size_t vocab_size,
                            size_t dim, uint64_t seed);

}  // namespace text
}  // namespace fairkm

#endif  // FAIRKM_TEXT_RANDOM_PROJECTION_H_
