// SensitiveView: the sensitive-attribute set S extracted into the compact
// representation the fair clustering algorithms consume.
//
// FairKM (Eq. 7/22/23) needs, per categorical sensitive attribute, the code of
// every object plus the dataset-level fractional representation of each value;
// per numeric sensitive attribute, the values plus the dataset mean. Both can
// carry a fairness weight w_S (Eq. 23).

#ifndef FAIRKM_DATA_SENSITIVE_H_
#define FAIRKM_DATA_SENSITIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace fairkm {
namespace data {

/// \brief One categorical sensitive attribute over all rows.
struct CategoricalSensitive {
  std::string name;
  int cardinality = 0;
  std::vector<int32_t> codes;              ///< Per-row value code.
  std::vector<double> dataset_fractions;   ///< Fr_X(s) for each value s.
  double weight = 1.0;                     ///< w_S of Eq. 23.
};

/// \brief One numeric sensitive attribute over all rows (Eq. 22 extension).
struct NumericSensitive {
  std::string name;
  std::vector<double> values;  ///< Per-row value.
  double dataset_mean = 0.0;   ///< Dataset-level average X.S.
  double weight = 1.0;
};

/// \brief All sensitive attributes for one dataset.
struct SensitiveView {
  std::vector<CategoricalSensitive> categorical;
  std::vector<NumericSensitive> numeric;

  size_t num_rows() const {
    if (!categorical.empty()) return categorical[0].codes.size();
    if (!numeric.empty()) return numeric[0].values.size();
    return 0;
  }
  bool empty() const { return categorical.empty() && numeric.empty(); }

  /// \brief Structural validation against an expected row count. num_rows()
  /// only reads the FIRST attribute, so a ragged view (e.g. a second
  /// categorical attribute with fewer rows) passes a num_rows() check and
  /// then indexes out of bounds downstream. This checks EVERY attribute:
  /// each categorical attribute must have `expected_rows` codes, a positive
  /// cardinality, one dataset fraction per value, and every code within
  /// [0, cardinality); each numeric attribute must have `expected_rows`
  /// values. An empty view is always valid.
  Status Validate(size_t expected_rows) const;

  /// \brief View restricted to a single categorical attribute (used for the
  /// per-attribute ZGYA(S) / FairKM(S) invocations of the paper's §5.6).
  Result<SensitiveView> SelectCategorical(const std::string& name) const;
};

/// \brief Builds a SensitiveView from named dataset columns. `weights`, when
/// non-empty, must parallel cat_names followed by num_names.
Result<SensitiveView> MakeSensitiveView(const Dataset& dataset,
                                        const std::vector<std::string>& cat_names,
                                        const std::vector<std::string>& num_names = {},
                                        const std::vector<double>& weights = {});

}  // namespace data
}  // namespace fairkm

#endif  // FAIRKM_DATA_SENSITIVE_H_
