#!/usr/bin/env bash
# Header self-containment check: every public header under src/ (the set
# install() ships to ${includedir}/fairkm and exports through
# find_package(fairkm)) must compile as a standalone translation unit — an
# external consumer may include any of them first, so each must pull in its
# own dependencies.
#
#   tools/check_headers.sh            # all of src/**/*.h
#   CXX=clang++ tools/check_headers.sh
#
# Knobs: CXX (default c++), CXXFLAGS_EXTRA (appended).

set -uo pipefail

cd "$(dirname "$0")/.."

CXX=${CXX:-c++}
if ! command -v "$CXX" > /dev/null 2>&1; then
  echo "check_headers: compiler '$CXX' not found" >&2
  exit 2
fi
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
checked=0
while IFS= read -r hdr; do
  hdr=${hdr#src/}
  printf '#include "%s"\n' "$hdr" > "$TMP/tu.cc"
  if ! "$CXX" -std=c++17 -fsyntax-only -Wall -Wextra -Werror -Isrc \
       ${CXXFLAGS_EXTRA:-} "$TMP/tu.cc" 2> "$TMP/err"; then
    echo "NOT SELF-CONTAINED: src/$hdr" >&2
    cat "$TMP/err" >&2
    fail=1
  fi
  checked=$((checked + 1))
done < <(find src -name '*.h' | sort)

if [[ "$fail" != 0 ]]; then
  echo "header self-containment check FAILED" >&2
  exit 1
fi
echo "header self-containment: $checked headers OK"
