// Aligned, padded point store — the hot-path feature layout of the FairKM
// optimizer.
//
// The general-purpose data::Matrix is row-major with rows packed back to
// back, so a row of d doubles is 32-byte aligned only by accident and every
// SIMD kernel pass needs a scalar tail when d % 4 != 0. The optimizer sweep
// streams the same point rows and cluster-sum rows millions of times per
// run, so FairKMState copies the feature matrix once into this store:
//
//   * each row is padded to a whole number of 4-double lanes
//     (data::PaddedStride) and the padding is zero-filled, so kernels can run
//     dot products over the full stride with no tail handling — the padded
//     products are exact zeros and leave every accumulation unchanged;
//   * the backing buffer is 32-byte aligned (data::AlignedVector), and since
//     the stride is a multiple of the lane width, *every* row is 32-byte
//     aligned — the AVX2 backend's aligned-load fast path (GemvAligned)
//     relies on exactly this contract;
//   * rows are kept contiguous (point i at data + i * stride) so a sweep in
//     round-robin order walks the buffer linearly, and the per-cluster lanes
//     of the k x stride sums matrix stay cache-blocked the same way.
//
// The store is a read-mostly copy: it never mutates after construction, so
// the snapshot-parallel sweep can stream it from every worker thread.

#ifndef FAIRKM_DATA_POINT_STORE_H_
#define FAIRKM_DATA_POINT_STORE_H_

#include <cstddef>

#include "data/matrix.h"

namespace fairkm {
namespace data {

/// \brief 32-byte-aligned, lane-padded row store of the feature matrix.
class PointStore {
 public:
  PointStore() = default;

  /// \brief Copies `m` into padded/aligned storage (padding zero-filled).
  explicit PointStore(const Matrix& m);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// \brief Row width in doubles, a multiple of 4; entries in
  /// [cols(), stride()) are zero.
  size_t stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// \brief 32-byte-aligned pointer to row r (stride() doubles long).
  const double* Row(size_t r) const {
    FAIRKM_DCHECK(r < rows_);
    return data_.data() + r * stride_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  AlignedVector data_;
};

}  // namespace data
}  // namespace fairkm

#endif  // FAIRKM_DATA_POINT_STORE_H_
