// Quickstart: build a small dataset in code, train FairKM through the
// session API, inspect the output, then serve out-of-sample points.
//
//   $ ./examples/quickstart
//
// The dataset has two numeric task attributes forming two obvious spatial
// groups, and one binary sensitive attribute ("group") that is correlated
// with the geometry. Plain K-Means therefore produces demographically pure
// clusters; FairKM produces clusters whose group mix matches the dataset.
// The FairKM run uses core::FairKMSolver — Create once, Init with a seed,
// Run with a progress callback, then Assign() new points against the
// trained prototypes.

#include <cstdio>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "core/solver.h"
#include "data/dataset.h"
#include "data/sensitive.h"
#include "metrics/fairness.h"

using namespace fairkm;

int main() {
  // --- 1. Build a dataset --------------------------------------------------
  Rng rng(7);
  data::Dataset dataset;
  std::vector<double> x, y;
  std::vector<int32_t> group;
  for (int i = 0; i < 200; ++i) {
    const bool right = i % 2 == 1;
    x.push_back((right ? 4.0 : 0.0) + rng.Normal(0, 0.8));
    y.push_back(rng.Normal(0, 0.8));
    // Group membership leans 85/15 with the spatial side: the geometry leaks
    // the sensitive attribute.
    group.push_back(rng.Bernoulli(0.85) == right ? 1 : 0);
  }
  dataset.AddNumeric("x", std::move(x)).Abort();
  dataset.AddNumeric("y", std::move(y)).Abort();
  dataset.AddCategorical("group", std::move(group), {"A", "B"}).Abort();

  data::Matrix features = dataset.ToMatrix({"x", "y"}).ValueOrDie();
  data::SensitiveView sensitive =
      data::MakeSensitiveView(dataset, {"group"}).ValueOrDie();

  // --- 2. Cluster: blind K-Means vs FairKM ---------------------------------
  const int k = 2;
  cluster::KMeansOptions kmeans_options;
  kmeans_options.k = k;
  Rng kmeans_rng(1);
  auto blind = cluster::RunKMeans(features, kmeans_options, &kmeans_rng).ValueOrDie();

  // The FairKM session: Create binds the inputs, Init(seed) starts a run,
  // Run drives it — here with a progress callback watching the objective
  // fall sweep by sweep (return false from it to cancel cooperatively).
  core::FairKMOptions fair_options;
  fair_options.k = k;  // lambda < 0 -> the paper's (n/k)^2 heuristic.
  auto solver =
      core::FairKMSolver::Create(&features, &sensitive, fair_options).ValueOrDie();
  solver.Init(uint64_t{1}).Abort();
  std::printf("FairKM sweeps:");
  solver
      .Run({}, [](const core::SweepProgress& p) {
        if (p.sweep_complete) std::printf(" %.0f", p.objective);
        return true;  // keep going
      })
      .ValueOrDie();
  std::printf("  (converged after %d sweeps)\n\n", solver.sweeps_completed());
  auto fair = solver.CurrentResult().ValueOrDie();

  // --- 3. Compare ----------------------------------------------------------
  auto report = [&](const char* name, const cluster::Assignment& assignment,
                    double sse) {
    auto fairness = metrics::EvaluateFairness(sensitive, assignment, k);
    std::printf("%-10s  SSE = %7.2f   AE = %.4f   (dataset group mix %.0f/%.0f)\n",
                name, sse, fairness.mean.ae,
                100 * sensitive.categorical[0].dataset_fractions[0],
                100 * sensitive.categorical[0].dataset_fractions[1]);
    for (int c = 0; c < k; ++c) {
      size_t total = 0, a = 0;
      for (size_t i = 0; i < assignment.size(); ++i) {
        if (assignment[i] != c) continue;
        ++total;
        if (sensitive.categorical[0].codes[i] == 0) ++a;
      }
      std::printf("    cluster %d: %3zu points, group mix %.0f/%.0f\n", c, total,
                  total ? 100.0 * a / total : 0.0,
                  total ? 100.0 * (total - a) / total : 0.0);
    }
  };
  std::printf("FairKM quickstart (n = 200, k = 2, lambda = %.0f)\n\n",
              fair.lambda_used);
  report("K-Means", blind.assignment, blind.kmeans_objective);
  report("FairKM", fair.assignment, fair.kmeans_objective);

  // --- 4. Serve out-of-sample points ---------------------------------------
  // The trained solver maps new points to the trained prototypes under the
  // Eq. 1 insertion cost — no retraining, the model is not mutated.
  data::Matrix fresh(4, 2);
  const double probes[4][2] = {{0.0, 0.0}, {4.0, 0.0}, {2.0, 0.5}, {-1.0, -1.0}};
  for (size_t i = 0; i < 4; ++i) {
    fresh.Row(i)[0] = probes[i][0];
    fresh.Row(i)[1] = probes[i][1];
  }
  auto served = solver.Assign(fresh).ValueOrDie();
  std::printf("\nOut-of-sample Assign():");
  for (size_t i = 0; i < served.size(); ++i) {
    std::printf("  (%.1f, %.1f) -> cluster %d", fresh.Row(i)[0], fresh.Row(i)[1],
                served[i]);
  }
  std::printf(
      "\n\nFairKM trades a little SSE for cluster group mixes that mirror the\n"
      "dataset. Tune the trade-off with FairKMOptions::lambda (see\n"
      "examples/lambda_tradeoff.cpp, which sweeps it on one reused solver).\n");
  return 0;
}
