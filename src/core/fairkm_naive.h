// Naive reference implementation of FairKM.
//
// Identical search procedure to RunFairKM, but every candidate move is
// evaluated by recomputing the full objective (Eq. 1) from scratch —
// O(n d + sum_S m_S) per candidate instead of O(d + sum_S m_S) deltas. This
// exists purely as ground truth: property tests check that the fast
// incremental optimizer makes the same decisions and reaches the same
// objective, and bench_scaling quantifies the speedup (paper §4.2 motivates
// the incremental update equations with exactly this contrast).

#ifndef FAIRKM_CORE_FAIRKM_NAIVE_H_
#define FAIRKM_CORE_FAIRKM_NAIVE_H_

#include "core/fairkm.h"

namespace fairkm {
namespace core {

/// \brief Runs FairKM with brute-force objective evaluation. Only suitable
/// for small inputs (cost is quadratic in n per sweep). Mini-batch mode is
/// not supported (returns InvalidArgument).
Result<FairKMResult> RunFairKMNaive(const data::Matrix& points,
                                    const data::SensitiveView& sensitive,
                                    const FairKMOptions& options, Rng* rng);

}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_FAIRKM_NAIVE_H_
