// Clustering-quality evaluation measures (paper §5.2.1): CO, SH, DevC, DevO.
//
// These depend only on the task attributes N (and, for the deviation pair,
// on a reference S-blind clustering).

#ifndef FAIRKM_METRICS_QUALITY_H_
#define FAIRKM_METRICS_QUALITY_H_

#include <cstdint>

#include "cluster/types.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/matrix.h"

namespace fairkm {
namespace metrics {

/// \brief Clustering objective CO (Eq. 24): SSE to cluster centroids. Lower
/// is better.
double ClusteringObjective(const data::Matrix& points,
                           const cluster::Assignment& assignment, int k);

/// \brief Silhouette configuration.
struct SilhouetteOptions {
  /// Above this row count the mean silhouette is estimated over a uniform
  /// sample of points (each sampled point still measured against all rows).
  size_t max_exact_rows = 4000;
  size_t sample_size = 2000;
  uint64_t seed = 17;
};

/// \brief Silhouette score SH in [-1, 1]; higher is better. Euclidean
/// distances over N; singleton clusters score 0 (sklearn convention).
double SilhouetteScore(const data::Matrix& points,
                       const cluster::Assignment& assignment, int k,
                       const SilhouetteOptions& options = {});

/// \brief Centroid-based deviation DevC between a clustering's centroids and
/// a reference clustering's centroids: the minimum-cost perfect matching
/// (Hungarian) under squared Euclidean cost. Identical centroid sets yield
/// 0. The paper describes DevC only loosely ("sum of pair-wise dot-products");
/// since its Table 5 reports DevC = 0 for the reference against itself, the
/// measure must be a matching distance — see DESIGN.md §3.4.
Result<double> CentroidDeviation(const data::Matrix& centroids,
                                 const data::Matrix& reference_centroids);

/// \brief Object-pairwise deviation DevO: the fraction of object pairs on
/// whose co-membership the two clusterings disagree (1 - Rand index),
/// computed exactly in O(n + k_a k_b) via the contingency table.
Result<double> ObjectPairDeviation(const cluster::Assignment& a, int k_a,
                                   const cluster::Assignment& b, int k_b);

}  // namespace metrics
}  // namespace fairkm

#endif  // FAIRKM_METRICS_QUALITY_H_
