#!/usr/bin/env bash
# CI entry point: tier-1 verify (configure, build, full ctest), an explicit
# fault-injection/durability gate, then an ASan/UBSan build of the
# unit+integration suites and a TSan build of the suites that exercise the
# parallel sweep, the thread pool and the serving tier.
#
#   tools/check.sh            # everything
#   tools/check.sh --fast     # tier-1 only, skip the sanitizer passes
#
# Knobs: BUILD_DIR (default build), SAN_BUILD_DIR (default build-asan),
# TSAN_BUILD_DIR (default build-tsan), JOBS (default nproc).

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
SAN_BUILD_DIR=${SAN_BUILD_DIR:-build-asan}
TSAN_BUILD_DIR=${TSAN_BUILD_DIR:-build-tsan}
JOBS=${JOBS:-$(nproc)}
FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== header self-containment (installed public headers) =="
tools/check_headers.sh

echo "== tier-1: configure + build + ctest (${BUILD_DIR}) =="
cmake -B "$BUILD_DIR" -S . -DFAIRKM_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Explicit gate over the fault-injection/durability surface: the corruption,
# torn-write and degraded-serve suites plus the CLI smoke (which includes an
# env-armed FAIRKM_FAULT run). Redundant with the full ctest above by
# construction — the point is that label/regex drift elsewhere can never
# silently drop these suites from CI.
echo "== fault injection: durability + degraded-serve suites =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'FaultInjection|Crc32|BinaryIo|IoTest|CheckpointIo|SnapshotIo|ServeRobustness|RetryPolicy|cli_smoke|Supervisor|crash_recovery|OnlineDrift|OnlineRecovery'

# Supervisor self-healing gate: an env-armed divergence fault (one forced
# non-finite objective) against the CLI's --supervise path must cost exactly
# one rollback and still report a converged run. Guards the whole watchdog →
# checkpoint-rollback → replay loop end to end from outside the process.
echo "== supervisor: injected divergence -> one rollback + converged =="
SUP_DIR="$BUILD_DIR/supervise_gate"
rm -rf "$SUP_DIR" && mkdir -p "$SUP_DIR"
awk 'BEGIN {
  srand(7); print "f1,f2,s"
  for (i = 0; i < 150; ++i) {
    b = i % 3
    printf "%.4f,%.4f,%s\n", b * 4 + rand(), b * -2 + rand(), (i % 2 ? "a" : "b")
  }
}' > "$SUP_DIR/toy.csv"
SUP_OUT=$(FAIRKM_FAULT='supervisor.objective=error,fires=1' \
  "$BUILD_DIR/tools/fairkm_cli" --input "$SUP_DIR/toy.csv" --sensitive s \
  --k 3 --method fairkm --supervise --checkpoint-dir "$SUP_DIR/ckpt" --seed 5)
echo "$SUP_OUT" | head -3
echo "$SUP_OUT" | grep -q 'supervisor: stop = converged' \
  || { echo "supervisor gate: run did not converge" >&2; exit 1; }
echo "$SUP_OUT" | grep -q 'supervisor: rollbacks = 1 (non-finite 1' \
  || { echo "supervisor gate: expected exactly one non-finite rollback" >&2; exit 1; }

# Online drift gate: the same env-armed divergence fault against the online
# engine's drift monitor (shared "supervisor.objective" point) must trigger
# exactly one bounded re-sweep — with the tolerance pushed out of reach, the
# injected non-finite objective is the ONLY thing that can fire it — and the
# flushed state must still match a from-scratch rebuild (the oracle line).
echo "== online: injected divergence -> exactly one bounded re-sweep =="
ONLINE_OUT=$(FAIRKM_FAULT='supervisor.objective=error,fires=1' \
  "$BUILD_DIR/tools/fairkm_cli" --online-bench --seed 5 \
  --drift-tolerance 1e12)
echo "$ONLINE_OUT" | grep -E 'resweeps|oracle'
echo "$ONLINE_OUT" | grep -q 'online: resweeps = 1,' \
  || { echo "online gate: expected exactly one drift re-sweep" >&2; exit 1; }
echo "$ONLINE_OUT" | grep -q 'online: oracle = ok' \
  || { echo "online gate: flushed state diverged from rebuild" >&2; exit 1; }

if [[ "$FAST" == "1" ]]; then
  echo "== skipping sanitizer pass (--fast) =="
  exit 0
fi

echo "== sanitizers: ASan + UBSan unit+integration suites (${SAN_BUILD_DIR}) =="
cmake -B "$SAN_BUILD_DIR" -S . \
  -DFAIRKM_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=Debug \
  -DFAIRKM_BUILD_BENCHES=OFF \
  -DFAIRKM_BUILD_EXAMPLES=OFF
cmake --build "$SAN_BUILD_DIR" -j "$JOBS"
ctest --test-dir "$SAN_BUILD_DIR" --output-on-failure -j "$JOBS" -L 'unit|integration'

echo "== sanitizers: TSan parallel-sweep + thread-pool suites (${TSAN_BUILD_DIR}) =="
cmake -B "$TSAN_BUILD_DIR" -S . \
  -DFAIRKM_SANITIZE_THREAD=ON \
  -DCMAKE_BUILD_TYPE=Debug \
  -DFAIRKM_BUILD_BENCHES=OFF \
  -DFAIRKM_BUILD_EXAMPLES=OFF
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS"
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'FairKMParallel|ThreadPool|FairKMCrossCheck.ParallelSnapshot|StressScaling.Optimizer|Pruning|FairKMSolver|Serve|RetryPolicy|Online'

echo "== all checks passed =="
