// Experiment dataset loading: the two evaluation datasets of the paper (§5.1)
// prepared exactly as the study requires — task attributes standardized into
// a feature matrix, sensitive attributes extracted into a SensitiveView.

#ifndef FAIRKM_EXP_DATASETS_H_
#define FAIRKM_EXP_DATASETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace exp {

/// \brief A dataset prepared for the experiment pipeline.
struct ExperimentData {
  std::string name;
  data::Dataset dataset;
  data::Matrix features;             ///< Standardized task attributes N.
  data::SensitiveView sensitive;     ///< All sensitive attributes S.
  std::vector<std::string> sensitive_names;
  double paper_lambda = 0.0;         ///< The lambda the paper uses (§5.4).
  /// ZGYA's fairness weight for this dataset. The paper never discloses the
  /// value it ran the baseline with; these are calibrated (DESIGN.md §3.3,
  /// EXPERIMENTS.md) so that the baseline reproduces the paper's observed
  /// per-dataset behaviour: modest fairness gains on Kinematics, coherence
  /// collapse plus worse-than-blind fairness on Adult.
  double zgya_lambda = -1.0;
  /// Calibrated softmax temperature for ZGYA's soft bound updates (same
  /// rationale as zgya_lambda; see EXPERIMENTS.md).
  double zgya_soft_temperature = 1.0;
};

/// \brief Adult experiment options.
struct AdultExperimentOptions {
  uint64_t seed = 42;
  /// When positive, uniformly subsample the parity dataset to this many rows
  /// (used by fast bench modes; 0 = full 15,682 rows).
  size_t subsample = 0;
};

/// \brief Generates + prepares the Adult dataset (15,682 rows, 8 standardized
/// task attributes, 5 sensitive attributes; paper lambda 1e6).
Result<ExperimentData> LoadAdultExperiment(const AdultExperimentOptions& options = {});

/// \brief Generates + prepares the Kinematics dataset (161 problems, 100
/// embedding dimensions, 5 binary sensitive attributes; paper lambda 1e3).
Result<ExperimentData> LoadKinematicsExperiment(uint64_t seed = 7);

}  // namespace exp
}  // namespace fairkm

#endif  // FAIRKM_EXP_DATASETS_H_
