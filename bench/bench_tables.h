// Reusable drivers behind the per-table/per-figure bench binaries.

#ifndef FAIRKM_BENCH_BENCH_TABLES_H_
#define FAIRKM_BENCH_BENCH_TABLES_H_

#include <string>
#include <vector>

#include "bench_common.h"

namespace fairkm {
namespace bench {

/// \brief Reference values lifted from the paper, printed next to ours.
struct PaperQualityReference {
  // Indexed like the table rows: CO, SH, DevC, DevO per method.
  std::vector<double> kmeans, zgya, fairkm;
};

/// \brief Reproduces a clustering-quality table (paper Tables 5 / 7):
/// CO / SH / DevC / DevO for K-Means(N), Avg. ZGYA and FairKM at each k.
void RunQualityTable(const exp::ExperimentData& data, const std::vector<int>& ks,
                     const BenchEnv& env,
                     const std::vector<PaperQualityReference>& paper_refs);

/// \brief Reproduces a fairness table (paper Tables 6 / 8): AE/AW/ME/MW for
/// the mean across S and per attribute; K-Means(N) vs attribute-targeted
/// ZGYA(S) vs all-attribute FairKM, with the FairKM Impr(%) column.
void RunFairnessTable(const exp::ExperimentData& data, const std::vector<int>& ks,
                      const BenchEnv& env);

/// \brief Reproduces a per-attribute comparison figure (paper Figures 1-4):
/// ZGYA(S) vs FairKM(All) vs FairKM(S) on one measure ("aw" or "mw"), k = 5.
void RunFigureComparison(const exp::ExperimentData& data, const std::string& measure,
                         const BenchEnv& env);

/// \brief Reproduces a lambda-sensitivity figure (paper Figures 5-7) on the
/// Kinematics dataset: `what` selects "quality" (CO, SH), "deviation"
/// (DevC, DevO) or "fairness" (AE/AW/ME/MW).
void RunLambdaSweep(const exp::ExperimentData& data, const std::string& what,
                    const BenchEnv& env);

}  // namespace bench
}  // namespace fairkm

#endif  // FAIRKM_BENCH_BENCH_TABLES_H_
