#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace fairkm {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, MinimumOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksCanSubmitResultsConcurrently) {
  ThreadPool pool(8);
  std::vector<int> results(500, 0);
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&results, i] { results[static_cast<size_t>(i)] = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 500; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversAllIndices) {
  std::vector<int> hits(1000, 0);
  ParallelFor(1000, 8, [&](size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SerialFallbackMatches) {
  std::vector<int> serial(64, 0), parallel(64, 0);
  ParallelFor(64, 1, [&](size_t i) { serial[i] = static_cast<int>(i) * 3; });
  ParallelFor(64, 16, [&](size_t i) { parallel[i] = static_cast<int>(i) * 3; });
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> counter{0};
  ParallelFor(3, 64, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

}  // namespace
}  // namespace fairkm
