#include "text/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace fairkm {
namespace text {
namespace {

std::vector<std::vector<std::string>> Corpus() {
  return {
      {"ball", "thrown", "up"},
      {"ball", "dropped"},
      {"car", "moves", "fast"},
  };
}

TEST(TfidfTest, VocabularyIsLexicographic) {
  TfidfVectorizer v;
  v.Fit(Corpus());
  EXPECT_EQ(v.vocab_size(), 7u);
  EXPECT_EQ(v.TermId("ball"), 0);
  EXPECT_EQ(v.TermId("car"), 1);
  EXPECT_EQ(v.TermId("up"), 6);
  EXPECT_EQ(v.TermId("unknown"), -1);
}

TEST(TfidfTest, TransformIsL2Normalized) {
  TfidfVectorizer v;
  v.Fit(Corpus());
  SparseVector sv = v.Transform({"ball", "thrown", "up"});
  EXPECT_NEAR(sv.L2Norm(), 1.0, 1e-12);
}

TEST(TfidfTest, RarerTermsWeighHigher) {
  TfidfVectorizer v;
  v.Fit(Corpus());
  // "ball" appears in 2 docs, "car" in 1; same term frequency in a probe doc.
  SparseVector sv = v.Transform({"ball", "car"});
  double w_ball = 0, w_car = 0;
  for (auto& [id, w] : sv.entries) {
    if (id == v.TermId("ball")) w_ball = w;
    if (id == v.TermId("car")) w_car = w;
  }
  EXPECT_GT(w_car, w_ball);
  EXPECT_GT(w_ball, 0.0);
}

TEST(TfidfTest, OutOfVocabularyDropped) {
  TfidfVectorizer v;
  v.Fit(Corpus());
  SparseVector sv = v.Transform({"quantum", "entanglement"});
  EXPECT_TRUE(sv.entries.empty());
  EXPECT_EQ(sv.L2Norm(), 0.0);
}

TEST(TfidfTest, TermFrequencyCounts) {
  TfidfVectorizer v;
  v.Fit(Corpus());
  SparseVector once = v.Transform({"ball"});
  SparseVector twice = v.Transform({"ball", "ball"});
  // Both normalize to the same single-entry unit vector.
  ASSERT_EQ(once.entries.size(), 1u);
  ASSERT_EQ(twice.entries.size(), 1u);
  EXPECT_NEAR(once.entries[0].second, twice.entries[0].second, 1e-12);
}

TEST(TfidfTest, FitTransformMatchesSeparateCalls) {
  TfidfVectorizer v1, v2;
  auto docs = Corpus();
  auto batch = v1.FitTransform(docs);
  v2.Fit(docs);
  for (size_t i = 0; i < docs.size(); ++i) {
    SparseVector single = v2.Transform(docs[i]);
    ASSERT_EQ(batch[i].entries.size(), single.entries.size());
    for (size_t e = 0; e < single.entries.size(); ++e) {
      EXPECT_EQ(batch[i].entries[e].first, single.entries[e].first);
      EXPECT_NEAR(batch[i].entries[e].second, single.entries[e].second, 1e-12);
    }
  }
}

TEST(TfidfTest, EntriesSortedByTermId) {
  TfidfVectorizer v;
  v.Fit(Corpus());
  SparseVector sv = v.Transform({"up", "ball", "car"});
  for (size_t e = 1; e < sv.entries.size(); ++e) {
    EXPECT_LT(sv.entries[e - 1].first, sv.entries[e].first);
  }
}

}  // namespace
}  // namespace text
}  // namespace fairkm
