#include "lp/simplex.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "lp/model.h"

namespace fairkm {
namespace lp {
namespace {

TEST(SimplexTest, EmptyModelRejected) {
  Model model;
  EXPECT_EQ(Solve(model).status().code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, UnconstrainedNonNegativeCostsIsZero) {
  Model model;
  model.AddVariable(1.0);
  model.AddVariable(0.0);
  auto r = Solve(model);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.ValueOrDie().objective, 0.0);
}

TEST(SimplexTest, UnconstrainedNegativeCostUnbounded) {
  Model model;
  model.AddVariable(-1.0);
  EXPECT_EQ(Solve(model).status().code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, SimpleMaximizationAsMinimization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  => x=4, y=0, value 12.
  Model model;
  int x = model.AddVariable(-3.0);
  int y = model.AddVariable(-2.0);
  ASSERT_TRUE(model.AddConstraint({{x, 1}, {y, 1}}, Sense::kLessEqual, 4).ok());
  ASSERT_TRUE(model.AddConstraint({{x, 1}, {y, 3}}, Sense::kLessEqual, 6).ok());
  auto r = Solve(model);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().objective, -12.0, 1e-9);
  EXPECT_NEAR(r.ValueOrDie().values[static_cast<size_t>(x)], 4.0, 1e-9);
  EXPECT_NEAR(r.ValueOrDie().values[static_cast<size_t>(y)], 0.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, x - y = 1 => x=2, y=1, value 4.
  Model model;
  int x = model.AddVariable(1.0);
  int y = model.AddVariable(2.0);
  ASSERT_TRUE(model.AddConstraint({{x, 1}, {y, 1}}, Sense::kEqual, 3).ok());
  ASSERT_TRUE(model.AddConstraint({{x, 1}, {y, -1}}, Sense::kEqual, 1).ok());
  auto r = Solve(model);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().objective, 4.0, 1e-9);
  EXPECT_NEAR(r.ValueOrDie().values[static_cast<size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(r.ValueOrDie().values[static_cast<size_t>(y)], 1.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 => x=4, y=0, value 8.
  Model model;
  int x = model.AddVariable(2.0);
  int y = model.AddVariable(3.0);
  ASSERT_TRUE(model.AddConstraint({{x, 1}, {y, 1}}, Sense::kGreaterEqual, 4).ok());
  ASSERT_TRUE(model.AddConstraint({{x, 1}}, Sense::kGreaterEqual, 1).ok());
  auto r = Solve(model);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().objective, 8.0, 1e-9);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // min x s.t. -x <= -2  (i.e. x >= 2).
  Model model;
  int x = model.AddVariable(1.0);
  ASSERT_TRUE(model.AddConstraint({{x, -1}}, Sense::kLessEqual, -2).ok());
  auto r = Solve(model);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().values[static_cast<size_t>(x)], 2.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 cannot hold.
  Model model;
  int x = model.AddVariable(1.0);
  ASSERT_TRUE(model.AddConstraint({{x, 1}}, Sense::kLessEqual, 1).ok());
  ASSERT_TRUE(model.AddConstraint({{x, 1}}, Sense::kGreaterEqual, 2).ok());
  EXPECT_EQ(Solve(model).status().code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // min -x s.t. x >= 1: objective decreases without bound.
  Model model;
  int x = model.AddVariable(-1.0);
  ASSERT_TRUE(model.AddConstraint({{x, 1}}, Sense::kGreaterEqual, 1).ok());
  EXPECT_EQ(Solve(model).status().code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, UpperBoundsHonored) {
  // min -x - y with x <= 2, y <= 3 (variable bounds) => value -5.
  Model model;
  int x = model.AddVariable(-1.0, 2.0);
  int y = model.AddVariable(-1.0, 3.0);
  (void)x;
  (void)y;
  // Need at least one row so the tableau path is exercised.
  ASSERT_TRUE(model.AddConstraint({{x, 1}, {y, 1}}, Sense::kLessEqual, 100).ok());
  auto r = Solve(model);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().objective, -5.0, 1e-9);
}

TEST(SimplexTest, DuplicateTermsMerged) {
  // x + x <= 4 means 2x <= 4.
  Model model;
  int x = model.AddVariable(-1.0);
  ASSERT_TRUE(model.AddConstraint({{x, 1}, {x, 1}}, Sense::kLessEqual, 4).ok());
  auto r = Solve(model);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().values[static_cast<size_t>(x)], 2.0, 1e-9);
}

TEST(SimplexTest, ConstraintReferencingUnknownVariableRejected) {
  Model model;
  model.AddVariable(1.0);
  EXPECT_FALSE(model.AddConstraint({{5, 1.0}}, Sense::kEqual, 1).ok());
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degenerate LP (multiple optimal bases at the same vertex).
  Model model;
  int x = model.AddVariable(-1.0);
  int y = model.AddVariable(-1.0);
  ASSERT_TRUE(model.AddConstraint({{x, 1}}, Sense::kLessEqual, 1).ok());
  ASSERT_TRUE(model.AddConstraint({{x, 1}, {y, 1}}, Sense::kLessEqual, 1).ok());
  ASSERT_TRUE(model.AddConstraint({{y, 1}}, Sense::kLessEqual, 1).ok());
  auto r = Solve(model);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.ValueOrDie().objective, -1.0, 1e-9);
}

TEST(SimplexTest, TransportationProblemIntegralOptimum) {
  // 2 suppliers (capacity 3, 2) x 3 consumers (demand 2, 2, 1).
  // Costs chosen so the optimum is unique and integral.
  Model model;
  const double cost[2][3] = {{1, 4, 5}, {3, 1, 2}};
  int v[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) v[i][j] = model.AddVariable(cost[i][j]);
  }
  for (int i = 0; i < 2; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < 3; ++j) terms.emplace_back(v[i][j], 1.0);
    ASSERT_TRUE(model
                    .AddConstraint(std::move(terms), Sense::kLessEqual,
                                   i == 0 ? 3.0 : 2.0)
                    .ok());
  }
  const double demand[3] = {2, 2, 1};
  for (int j = 0; j < 3; ++j) {
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < 2; ++i) terms.emplace_back(v[i][j], 1.0);
    ASSERT_TRUE(model.AddConstraint(std::move(terms), Sense::kEqual, demand[j]).ok());
  }
  auto r = Solve(model);
  ASSERT_TRUE(r.ok());
  // Supply 5 = demand 5, so both suppliers are exhausted. Supplier 0 must
  // ship 3 units and its cheapest 3 are c0 (2 @ 1) + c1 (1 @ 4); supplier 1
  // ships c1 (1 @ 1) + c2 (1 @ 2). Total = 2 + 4 + 1 + 2 = 9, and every
  // alternative split also costs 9 (verified by enumeration).
  EXPECT_NEAR(r.ValueOrDie().objective, 9.0, 1e-9);
  for (double x : r.ValueOrDie().values) {
    EXPECT_NEAR(x, std::round(x), 1e-7);  // Integral optimum.
  }
}

TEST(SimplexTest, IterationCapReturnsNotConverged) {
  // A modest LP with a 1-pivot budget cannot finish.
  Model model;
  int x = model.AddVariable(-1.0);
  int y = model.AddVariable(-2.0);
  ASSERT_TRUE(model.AddConstraint({{x, 1}, {y, 1}}, Sense::kLessEqual, 4).ok());
  ASSERT_TRUE(model.AddConstraint({{x, 2}, {y, 1}}, Sense::kGreaterEqual, 1).ok());
  SimplexOptions options;
  options.max_iterations = 1;
  EXPECT_EQ(Solve(model, options).status().code(), StatusCode::kNotConverged);
}

TEST(SimplexTest, SolutionReportsIterationCount) {
  Model model;
  int x = model.AddVariable(-1.0);
  ASSERT_TRUE(model.AddConstraint({{x, 1}}, Sense::kLessEqual, 3).ok());
  auto r = Solve(model);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.ValueOrDie().iterations, 1);
}

// Property sweep: random feasible LPs must satisfy their own constraints at
// the reported optimum, and the optimum must not beat any feasible probe.
class RandomLpSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpSweep, OptimumIsFeasibleAndNotBeatenByProbes) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int n = 4;
  const int m = 3;
  Model model;
  std::vector<double> costs(n);
  for (int j = 0; j < n; ++j) {
    costs[static_cast<size_t>(j)] = rng.UniformDouble(0.1, 2.0);  // Positive => bounded.
    model.AddVariable(costs[static_cast<size_t>(j)]);
  }
  std::vector<std::vector<double>> rows(m, std::vector<double>(n));
  std::vector<double> rhs(m);
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < n; ++j) {
      rows[static_cast<size_t>(i)][static_cast<size_t>(j)] = rng.UniformDouble(0.1, 1.0);
      terms.emplace_back(j, rows[static_cast<size_t>(i)][static_cast<size_t>(j)]);
    }
    rhs[static_cast<size_t>(i)] = rng.UniformDouble(1.0, 3.0);
    ASSERT_TRUE(
        model.AddConstraint(std::move(terms), Sense::kGreaterEqual,
                            rhs[static_cast<size_t>(i)]).ok());
  }
  auto r = Solve(model);
  ASSERT_TRUE(r.ok());
  const auto& sol = r.ValueOrDie();

  // Feasibility at the optimum.
  for (int i = 0; i < m; ++i) {
    double lhs = 0;
    for (int j = 0; j < n; ++j) {
      lhs += rows[static_cast<size_t>(i)][static_cast<size_t>(j)] *
             sol.values[static_cast<size_t>(j)];
    }
    EXPECT_GE(lhs, rhs[static_cast<size_t>(i)] - 1e-6);
  }
  for (double x : sol.values) EXPECT_GE(x, -1e-9);

  // Random feasible probes should never improve on the optimum.
  for (int probe = 0; probe < 50; ++probe) {
    std::vector<double> x(n);
    for (int j = 0; j < n; ++j) x[static_cast<size_t>(j)] = rng.UniformDouble(0.0, 6.0);
    bool feasible = true;
    for (int i = 0; i < m && feasible; ++i) {
      double lhs = 0;
      for (int j = 0; j < n; ++j) {
        lhs += rows[static_cast<size_t>(i)][static_cast<size_t>(j)] *
               x[static_cast<size_t>(j)];
      }
      feasible = lhs >= rhs[static_cast<size_t>(i)];
    }
    if (!feasible) continue;
    double obj = 0;
    for (int j = 0; j < n; ++j) {
      obj += costs[static_cast<size_t>(j)] * x[static_cast<size_t>(j)];
    }
    EXPECT_GE(obj, sol.objective - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpSweep, ::testing::Range(1, 13));

}  // namespace
}  // namespace lp
}  // namespace fairkm
