// Incremental FairKM optimizer state.
//
// Maintains, for a live clustering assignment:
//   * per-cluster sizes and feature sums (exact centroids at all times),
//   * per-cluster value counts for every categorical sensitive attribute,
//   * per-cluster value sums for every numeric sensitive attribute,
//   * per-point squared norms and per-cluster squared sum-norms (the
//     expanded-form K-Means delta caches),
//   * per (attribute, cluster) fairness moments sum_s u_s^2 and
//     sum_s u_s q_s, where u_s = |C_s| - |C| Fr_X(s) and q_s = Fr_X(s),
// and computes the exact change of both objective terms for a candidate move
// of one point in O(d) (K-Means term) + O(|S|) (fairness term, one scalar
// expression per attribute) instead of the original O(d) + O(sum_S m_S)
// two-loop evaluation. The batched DeltaKMeansAllClusters kernel evaluates
// every candidate cluster for one point in a single contiguous pass over the
// k x d sums matrix, which is what the optimizer sweep uses.
//
// The dense primitives (the x . S_c dot products / blocked GEMV, and the
// per-(attribute, cluster) moment recomputation) route through
// core/kernels/kernels.h, which dispatches at runtime between a scalar
// reference backend and an AVX2/FMA backend (FAIRKM_FORCE_SCALAR pins the
// scalar one). CatMoments is bit-for-bit identical across backends, so the
// fairness aggregates never depend on the host CPU.
//
// Derivation of the O(1) fairness delta (expanding Eqs. 16-19): removing a
// point with value v from a cluster sends u_s -> u_s + q_s - [s=v], so
//   sum_s u'_s^2 = U2 + Q2 + 1 + 2 (UQ - u_v - q_v)
// with U2 = sum_s u_s^2, UQ = sum_s u_s q_s and the per-attribute constant
// Q2 = sum_s q_s^2; insertion sends u_s -> u_s - q_s + [s=v], so
//   sum_s u'_s^2 = U2 + Q2 + 1 - 2 (UQ - u_v + q_v).
// u_v needs only the single touched count |C_v|, making the delta O(1) per
// attribute. U2/UQ are recomputed from the exact integer counts in O(m_S)
// for the two touched clusters on Move (which is already O(m_S) there), so
// they never accumulate floating-point drift.
//
// The pre-expansion kernels are retained as ReferenceDeltaKMeans /
// ReferenceDeltaFairness: property tests cross-validate the optimized
// kernels against them and against scratch recomputation to 1e-9, and the
// scaling bench uses them as the "before" timing baseline.

#ifndef FAIRKM_CORE_FAIRKM_STATE_H_
#define FAIRKM_CORE_FAIRKM_STATE_H_

#include <cstdint>
#include <vector>

#include "cluster/types.h"
#include "common/status.h"
#include "core/objective.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace core {

/// \brief Mutable aggregates backing the round-robin optimization (§4.2).
///
/// The referenced points/sensitive views must outlive the state.
class FairKMState {
 public:
  /// \brief Builds aggregates for an initial assignment. `sensitive` may be
  /// empty (state degenerates to incremental K-Means bookkeeping).
  static Result<FairKMState> Create(const data::Matrix* points,
                                    const data::SensitiveView* sensitive, int k,
                                    cluster::Assignment initial,
                                    FairnessTermConfig config = {});

  /// \brief Exact change of the K-Means term if point `i` moved to `to`
  /// (0 when `to` is its current cluster).
  double DeltaKMeans(size_t i, int to) const;

  /// \brief Batched K-Means deltas: fills `out[c]` with DeltaKMeans(i, c) for
  /// every cluster in one contiguous pass over the k x d sums matrix.
  /// `out` must have room for k() doubles. This is the optimizer's hot
  /// kernel; it is read-only and safe to call concurrently for distinct
  /// points while no Move/RefreshPrototypes runs.
  void DeltaKMeansAllClusters(size_t i, double* out) const;

  /// \brief Exact change of the fairness deviation term for the same move,
  /// in O(1) per sensitive attribute (see the header comment derivation).
  double DeltaFairness(size_t i, int to) const;

  /// \brief Pre-expansion O(d) two-distance K-Means delta (oracle/bench).
  double ReferenceDeltaKMeans(size_t i, int to) const;

  /// \brief Pre-expansion O(sum_S m_S) fairness delta (oracle/bench).
  double ReferenceDeltaFairness(size_t i, int to) const;

  /// \brief Applies the move, updating all aggregates in O(d + sum_S m_S).
  void Move(size_t i, int to);

  /// \brief K-Means term recomputed from scratch against exact centroids.
  double KMeansTerm() const;

  /// \brief Fairness term recomputed from the count aggregates (O(k sum m)).
  double FairnessTerm() const;

  /// \brief Exact centroid matrix (k x d) of the current assignment.
  data::Matrix Centroids() const;

  const cluster::Assignment& assignment() const { return assignment_; }
  int cluster_of(size_t i) const { return assignment_[i]; }
  size_t cluster_size(int c) const { return counts_[static_cast<size_t>(c)]; }
  int k() const { return k_; }
  size_t num_rows() const { return n_; }

  /// \brief Mini-batch support (paper §6.1): when enabled, DeltaKMeans reads
  /// a prototype snapshot instead of the live sums; RefreshPrototypes()
  /// re-synchronizes the snapshot. Fairness aggregates are always live (they
  /// are O(1) to maintain; the paper's bottleneck is the centroid update).
  void EnablePrototypeSnapshot(bool enable);
  void RefreshPrototypes();

 private:
  FairKMState(const data::Matrix* points, const data::SensitiveView* sensitive, int k,
              FairnessTermConfig config);

  void BuildAggregates(cluster::Assignment initial);

  // Recomputes cat_u2_/cat_uq_ for one (attribute, cluster) pair from the
  // exact integer counts. O(m_a).
  void RecomputeCatMoments(size_t a, int c);

  // Squared distance from point i to the mean of the given sums/count pair.
  double DistanceToMean(size_t i, const double* sums, double count) const;

  // Expanded-form squared distance ||x_i||^2 - 2 x.S_c/|C| + ||S_c||^2/|C|^2
  // against live or snapshot aggregates. `count` must be positive.
  double CachedDistanceToMean(size_t i, const double* sums, double sum_norm,
                              double count) const;

  const data::Matrix* points_;
  const data::SensitiveView* sensitive_;
  int k_;
  size_t n_;
  size_t d_;
  FairnessTermConfig config_;

  cluster::Assignment assignment_;
  std::vector<size_t> counts_;        // Cluster sizes.
  std::vector<double> sums_;          // k x d feature sums (row-major).
  // cat_counts_[a][c * m_a + s] = |C_s| for attribute a.
  std::vector<std::vector<int64_t>> cat_counts_;
  // num_sums_[a][c] = sum of attribute a over cluster c.
  std::vector<std::vector<double>> num_sums_;

  // K-Means delta caches: ||x_i||^2 (immutable) and ||S_c||^2 (recomputed
  // for the two touched clusters on Move).
  std::vector<double> point_norms_;
  std::vector<double> sum_norms_;

  // Fairness moments: cat_u2_[a][c] = sum_s u_s^2, cat_uq_[a][c] =
  // sum_s u_s q_s, cat_q2_[a] = sum_s q_s^2 (assignment-independent).
  std::vector<std::vector<double>> cat_u2_;
  std::vector<std::vector<double>> cat_uq_;
  std::vector<double> cat_q2_;

  bool use_snapshot_ = false;
  std::vector<size_t> proto_counts_;
  std::vector<double> proto_sums_;
  std::vector<double> proto_sum_norms_;
};

}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_FAIRKM_STATE_H_
