// CRC32C (Castagnoli) — the per-section integrity checksum of the durable
// checkpoint format (common/io.h).
//
// The Castagnoli polynomial (0x1EDC6F41, reflected 0x82F63B78) is the one
// storage systems standardized on (iSCSI, ext4, RocksDB, LevelDB): it has
// better burst-error detection than the zlib CRC32 and hardware support on
// modern ISAs. This implementation is the portable slice-by-8 table variant —
// ~1 byte/cycle, far faster than checkpoint I/O itself — so the on-disk
// format never depends on host SSE4.2.

#ifndef FAIRKM_COMMON_CRC32_H_
#define FAIRKM_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace fairkm {

/// \brief CRC32C of `size` bytes at `data` (standard init/xorout; the empty
/// buffer hashes to 0, "123456789" to 0xE3069283).
uint32_t Crc32c(const void* data, size_t size);

/// \brief Streaming form: extends `crc` (a previous Crc32c/Crc32cExtend
/// result, or 0 for a fresh stream) with `size` more bytes. Equivalent to
/// hashing the concatenated buffer in one call.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

/// \brief Masked CRC in the RocksDB/TFRecord style: storing a CRC of data
/// that itself contains CRCs makes accidental fixed points more likely, so
/// the stored form is rotated and offset. Verify by comparing
/// MaskCrc32c(computed) against the stored value.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8U;
}

}  // namespace fairkm

#endif  // FAIRKM_COMMON_CRC32_H_
