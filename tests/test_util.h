// Shared helpers for FairKM tests: synthetic Gaussian blobs with attached
// sensitive attributes.

#ifndef FAIRKM_TESTS_TEST_UTIL_H_
#define FAIRKM_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/solver.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace testutil {

/// \brief `blobs` Gaussian clusters of `per_blob` points in `dim` dimensions,
/// blob centers on a coarse grid so blobs are well separated.
inline data::Matrix MakeBlobs(int blobs, int per_blob, int dim, Rng* rng,
                              double spread = 0.4, double grid = 6.0) {
  data::Matrix m(static_cast<size_t>(blobs) * per_blob, static_cast<size_t>(dim));
  size_t row = 0;
  for (int b = 0; b < blobs; ++b) {
    for (int p = 0; p < per_blob; ++p, ++row) {
      for (int j = 0; j < dim; ++j) {
        const double center = ((b >> (j % 3)) & 1) ? grid : 0.0;
        m.At(row, static_cast<size_t>(j)) =
            center + static_cast<double>(b) * 0.37 + rng->Normal(0.0, spread);
      }
    }
  }
  return m;
}

/// \brief A categorical sensitive attribute with the given per-row codes.
inline data::CategoricalSensitive MakeCategorical(const std::vector<int32_t>& codes,
                                                  int cardinality,
                                                  const std::string& name = "attr") {
  data::CategoricalSensitive attr;
  attr.name = name;
  attr.cardinality = cardinality;
  attr.codes = codes;
  attr.dataset_fractions.assign(static_cast<size_t>(cardinality), 0.0);
  for (int32_t c : codes) attr.dataset_fractions[static_cast<size_t>(c)] += 1.0;
  for (double& f : attr.dataset_fractions) f /= static_cast<double>(codes.size());
  return attr;
}

/// \brief Random codes for n rows over `cardinality` values.
inline std::vector<int32_t> RandomCodes(size_t n, int cardinality, Rng* rng) {
  std::vector<int32_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    codes[i] = static_cast<int32_t>(rng->UniformInt(static_cast<uint64_t>(cardinality)));
  }
  return codes;
}

/// \brief A SensitiveView over the given categorical attributes.
inline data::SensitiveView MakeView(std::vector<data::CategoricalSensitive> cats) {
  data::SensitiveView view;
  view.categorical = std::move(cats);
  return view;
}

/// \brief A numeric sensitive attribute.
inline data::NumericSensitive MakeNumeric(const std::vector<double>& values,
                                          const std::string& name = "num") {
  data::NumericSensitive attr;
  attr.name = name;
  attr.values = values;
  double sum = 0;
  for (double v : values) sum += v;
  attr.dataset_mean = values.empty() ? 0.0 : sum / static_cast<double>(values.size());
  return attr;
}

/// \brief One blocking FairKM run through the session API — what the
/// deprecated core::RunFairKM wrapper did, spelled as Create + Init + Run +
/// CurrentResult. Equal inputs and rng draws give bit-identical results;
/// tests that exercise FairKM behaviour (not the wrapper itself) go through
/// this so the deprecated symbol has no non-oracle callers left.
inline Result<core::FairKMResult> RunFairKMSession(
    const data::Matrix& points, const data::SensitiveView& sensitive,
    const core::FairKMOptions& options, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  FAIRKM_ASSIGN_OR_RETURN(
      core::FairKMSolver solver,
      core::FairKMSolver::Create(&points, &sensitive, options));
  FAIRKM_RETURN_NOT_OK(solver.Init(rng));
  FAIRKM_ASSIGN_OR_RETURN(core::RunStop stop, solver.Run());
  (void)stop;
  return solver.CurrentResult();
}

}  // namespace testutil
}  // namespace fairkm

#endif  // FAIRKM_TESTS_TEST_UTIL_H_
