#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace fairkm {
namespace text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  EXPECT_EQ(Tokenize("A Ball is Thrown"),
            (std::vector<std::string>{"a", "ball", "is", "thrown"}));
}

TEST(TokenizerTest, PunctuationSeparates) {
  EXPECT_EQ(Tokenize("stop, now! go?"),
            (std::vector<std::string>{"stop", "now", "go"}));
}

TEST(TokenizerTest, NumbersBecomePlaceholder) {
  EXPECT_EQ(Tokenize("travels 25 metres"),
            (std::vector<std::string>{"travels", "<num>", "metres"}));
}

TEST(TokenizerTest, DecimalNumbersSingleToken) {
  EXPECT_EQ(Tokenize("at 2.5 metres"),
            (std::vector<std::string>{"at", "<num>", "metres"}));
}

TEST(TokenizerTest, AlphanumericTokensKept) {
  // Mixed tokens are not numbers.
  EXPECT_EQ(Tokenize("x2 speed"), (std::vector<std::string>{"x2", "speed"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n").empty());
}

TEST(TokenizerTest, TrailingDotAfterNumber) {
  // "12." parses as a number token followed by nothing.
  std::vector<std::string> tokens = Tokenize("after 12. Then");
  EXPECT_EQ(tokens, (std::vector<std::string>{"after", "<num>", "then"}));
}

}  // namespace
}  // namespace text
}  // namespace fairkm
