#include "data/sensitive.h"

#include <gtest/gtest.h>

#include <limits>

namespace fairkm {
namespace data {
namespace {

Dataset MakeSample() {
  Dataset d;
  d.AddNumeric("age", {20, 30, 40, 50}).Abort();
  d.AddCategorical("gender", {0, 1, 0, 1}, {"M", "F"}).Abort();
  d.AddCategorical("race", {0, 0, 1, 2}, {"a", "b", "c"}).Abort();
  return d;
}

TEST(SensitiveViewTest, BuildsCategoricalAttributes) {
  Dataset d = MakeSample();
  auto r = MakeSensitiveView(d, {"gender", "race"});
  ASSERT_TRUE(r.ok());
  const SensitiveView& view = r.ValueOrDie();
  ASSERT_EQ(view.categorical.size(), 2u);
  EXPECT_EQ(view.categorical[0].name, "gender");
  EXPECT_EQ(view.categorical[0].cardinality, 2);
  EXPECT_EQ(view.categorical[1].cardinality, 3);
  EXPECT_DOUBLE_EQ(view.categorical[1].dataset_fractions[0], 0.5);
  EXPECT_DOUBLE_EQ(view.categorical[1].dataset_fractions[1], 0.25);
  EXPECT_EQ(view.num_rows(), 4u);
  EXPECT_FALSE(view.empty());
}

TEST(SensitiveViewTest, BuildsNumericAttributes) {
  Dataset d = MakeSample();
  auto r = MakeSensitiveView(d, {}, {"age"});
  ASSERT_TRUE(r.ok());
  const SensitiveView& view = r.ValueOrDie();
  ASSERT_EQ(view.numeric.size(), 1u);
  EXPECT_DOUBLE_EQ(view.numeric[0].dataset_mean, 35.0);
  EXPECT_EQ(view.num_rows(), 4u);
}

TEST(SensitiveViewTest, DefaultWeightsAreOne) {
  Dataset d = MakeSample();
  auto view = MakeSensitiveView(d, {"gender"}, {"age"}).ValueOrDie();
  EXPECT_DOUBLE_EQ(view.categorical[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(view.numeric[0].weight, 1.0);
}

TEST(SensitiveViewTest, ExplicitWeights) {
  Dataset d = MakeSample();
  auto r = MakeSensitiveView(d, {"gender", "race"}, {"age"}, {2.0, 3.0, 0.5});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.ValueOrDie().categorical[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(r.ValueOrDie().categorical[1].weight, 3.0);
  EXPECT_DOUBLE_EQ(r.ValueOrDie().numeric[0].weight, 0.5);
}

TEST(SensitiveViewTest, WeightCountMismatchRejected) {
  Dataset d = MakeSample();
  EXPECT_FALSE(MakeSensitiveView(d, {"gender"}, {}, {1.0, 2.0}).ok());
}

TEST(SensitiveViewTest, UnknownAttributeRejected) {
  Dataset d = MakeSample();
  EXPECT_FALSE(MakeSensitiveView(d, {"ghost"}).ok());
  EXPECT_FALSE(MakeSensitiveView(d, {}, {"ghost"}).ok());
}

TEST(SensitiveViewTest, SelectCategorical) {
  Dataset d = MakeSample();
  auto view = MakeSensitiveView(d, {"gender", "race"}).ValueOrDie();
  auto single = view.SelectCategorical("race");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.ValueOrDie().categorical.size(), 1u);
  EXPECT_EQ(single.ValueOrDie().categorical[0].name, "race");
  EXPECT_FALSE(view.SelectCategorical("ghost").ok());
}

TEST(SensitiveViewTest, EmptyView) {
  SensitiveView view;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.num_rows(), 0u);
}

TEST(SensitiveViewTest, ValidateChecksEveryAttribute) {
  Dataset d = MakeSample();
  const SensitiveView view =
      MakeSensitiveView(d, {"gender", "race"}, {"age"}).ValueOrDie();
  const size_t rows = view.num_rows();
  EXPECT_TRUE(view.Validate(rows).ok());
  EXPECT_FALSE(view.Validate(rows + 1).ok());

  // An empty view is consistent with any row count.
  EXPECT_TRUE(SensitiveView{}.Validate(17).ok());

  // Ragged SECOND categorical attribute: num_rows() still reports the full
  // row count (it reads only the first attribute), Validate must not.
  SensitiveView ragged_cat = view;
  ragged_cat.categorical[1].codes.pop_back();
  EXPECT_EQ(ragged_cat.num_rows(), rows);
  EXPECT_FALSE(ragged_cat.Validate(rows).ok());

  // Ragged numeric attribute.
  SensitiveView ragged_num = view;
  ragged_num.numeric[0].values.pop_back();
  EXPECT_FALSE(ragged_num.Validate(rows).ok());

  // Non-positive cardinality, short fraction table, out-of-range code.
  SensitiveView bad_card = view;
  bad_card.categorical[0].cardinality = 0;
  EXPECT_FALSE(bad_card.Validate(rows).ok());

  SensitiveView bad_fractions = view;
  bad_fractions.categorical[0].dataset_fractions.pop_back();
  EXPECT_FALSE(bad_fractions.Validate(rows).ok());

  SensitiveView bad_code = view;
  bad_code.categorical[0].codes[0] =
      static_cast<int32_t>(bad_code.categorical[0].cardinality);
  EXPECT_FALSE(bad_code.Validate(rows).ok());
}

TEST(SensitiveViewTest, ValidateRejectsNonFiniteNumericValues) {
  Dataset d = MakeSample();
  const SensitiveView view =
      MakeSensitiveView(d, {"gender"}, {"age"}).ValueOrDie();
  const size_t rows = view.num_rows();
  ASSERT_TRUE(view.Validate(rows).ok());

  SensitiveView nan_value = view;
  nan_value.numeric[0].values[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(nan_value.Validate(rows).code(), StatusCode::kInvalidArgument);

  SensitiveView inf_value = view;
  inf_value.numeric[0].values[0] = std::numeric_limits<double>::infinity();
  EXPECT_EQ(inf_value.Validate(rows).code(), StatusCode::kInvalidArgument);

  SensitiveView bad_mean = view;
  bad_mean.numeric[0].dataset_mean = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(bad_mean.Validate(rows).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace data
}  // namespace fairkm
