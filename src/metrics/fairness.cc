#include "metrics/fairness.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "metrics/distribution.h"

namespace fairkm {
namespace metrics {

AttributeFairness EvaluateAttributeFairness(const data::CategoricalSensitive& attr,
                                            const cluster::Assignment& assignment,
                                            int k) {
  AttributeFairness out;
  out.attribute = attr.name;
  const data::Matrix dist = ClusterDistributions(attr, assignment, k);
  const std::vector<size_t> sizes = cluster::ClusterSizes(assignment, k);
  const std::vector<double>& dataset = attr.dataset_fractions;

  double weighted_e = 0.0, weighted_w = 0.0;
  size_t total = 0;
  std::vector<double> cluster_dist(static_cast<size_t>(attr.cardinality));
  for (int c = 0; c < k; ++c) {
    const size_t size = sizes[static_cast<size_t>(c)];
    if (size == 0) continue;
    for (int s = 0; s < attr.cardinality; ++s) {
      cluster_dist[static_cast<size_t>(s)] =
          dist.At(static_cast<size_t>(c), static_cast<size_t>(s));
    }
    const double e = EuclideanDistance(cluster_dist, dataset);
    const double w = Wasserstein1(cluster_dist, dataset);
    weighted_e += static_cast<double>(size) * e;
    weighted_w += static_cast<double>(size) * w;
    total += size;
    out.me = std::max(out.me, e);
    out.mw = std::max(out.mw, w);
  }
  if (total > 0) {
    out.ae = weighted_e / static_cast<double>(total);
    out.aw = weighted_w / static_cast<double>(total);
  }
  return out;
}

AttributeFairness EvaluateNumericAttributeFairness(const data::NumericSensitive& attr,
                                                   const cluster::Assignment& assignment,
                                                   int k) {
  AttributeFairness out;
  out.attribute = attr.name;
  const auto groups = cluster::GroupByCluster(assignment, k);
  double weighted_e = 0.0, weighted_w = 0.0;
  size_t total = 0;
  for (const auto& members : groups) {
    if (members.empty()) continue;
    std::vector<double> values;
    values.reserve(members.size());
    for (size_t i : members) values.push_back(attr.values[i]);
    const double e = std::fabs(Mean(values) - attr.dataset_mean);
    const double w = EmpiricalWasserstein1(values, attr.values);
    weighted_e += static_cast<double>(members.size()) * e;
    weighted_w += static_cast<double>(members.size()) * w;
    total += members.size();
    out.me = std::max(out.me, e);
    out.mw = std::max(out.mw, w);
  }
  if (total > 0) {
    out.ae = weighted_e / static_cast<double>(total);
    out.aw = weighted_w / static_cast<double>(total);
  }
  return out;
}

FairnessSummary EvaluateFairness(const data::SensitiveView& sensitive,
                                 const cluster::Assignment& assignment, int k) {
  FairnessSummary summary;
  for (const auto& attr : sensitive.categorical) {
    summary.per_attribute.push_back(EvaluateAttributeFairness(attr, assignment, k));
  }
  for (const auto& attr : sensitive.numeric) {
    summary.per_attribute.push_back(
        EvaluateNumericAttributeFairness(attr, assignment, k));
  }
  summary.mean.attribute = "mean";
  if (!summary.per_attribute.empty()) {
    const double inv = 1.0 / static_cast<double>(summary.per_attribute.size());
    for (const auto& a : summary.per_attribute) {
      summary.mean.ae += a.ae * inv;
      summary.mean.aw += a.aw * inv;
      summary.mean.me += a.me * inv;
      summary.mean.mw += a.mw * inv;
    }
  }
  return summary;
}

double MinClusterBalance(const data::CategoricalSensitive& attr,
                         const cluster::Assignment& assignment, int k) {
  FAIRKM_DCHECK(attr.cardinality == 2);
  const auto groups = cluster::GroupByCluster(assignment, k);
  double min_balance = 1.0;
  for (const auto& members : groups) {
    if (members.empty()) continue;
    size_t zero = 0;
    for (size_t i : members) {
      if (attr.codes[i] == 0) ++zero;
    }
    const size_t one = members.size() - zero;
    if (zero == 0 || one == 0) return 0.0;
    const double balance =
        std::min(static_cast<double>(zero) / static_cast<double>(one),
                 static_cast<double>(one) / static_cast<double>(zero));
    min_balance = std::min(min_balance, balance);
  }
  return min_balance;
}

}  // namespace metrics
}  // namespace fairkm
