// Lambda trade-off explorer: sweeps FairKM's single hyper-parameter and
// prints the coherence/fairness frontier, the practical tool for choosing a
// lambda on a new dataset (paper §5.4 and §5.7).
//
//   $ ./examples/lambda_tradeoff --dataset kinematics --points 8

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/args.h"
#include "core/solver.h"
#include "exp/datasets.h"
#include "exp/table.h"
#include "metrics/fairness.h"
#include "metrics/quality.h"

using namespace fairkm;

int main(int argc, char** argv) {
  ArgParser args;
  args.AddFlag("dataset", "kinematics", "kinematics | adult");
  args.AddFlag("rows", "3000", "adult rows when --dataset adult (0 = full)");
  args.AddFlag("k", "5", "number of clusters");
  args.AddFlag("points", "8", "number of lambda points in the sweep");
  args.AddFlag("seed", "11", "random seed");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 args.HelpString("lambda_tradeoff").c_str());
    return 1;
  }
  const int k = static_cast<int>(args.GetInt("k"));
  const int points = static_cast<int>(args.GetInt("points"));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed"));

  exp::ExperimentData data;
  if (args.GetString("dataset") == "adult") {
    exp::AdultExperimentOptions options;
    options.subsample = static_cast<size_t>(args.GetInt("rows"));
    data = exp::LoadAdultExperiment(options).ValueOrDie();
  } else {
    data = exp::LoadKinematicsExperiment().ValueOrDie();
  }

  const double center = core::SuggestLambda(data.features.rows(), k);
  std::printf("Dataset %s (n = %zu), k = %d; heuristic lambda (n/k)^2 = %.0f\n\n",
              data.name.c_str(), data.features.rows(), k, center);

  // One FairKMSolver serves the whole sweep: the aligned point store, norm
  // caches and every buffer are built at the first Init and reused for each
  // lambda point (SetLambda + re-Init is the session API's warm path) —
  // per-point cost is pure optimization, not setup.
  core::FairKMOptions options;
  options.k = k;
  auto solver =
      core::FairKMSolver::Create(&data.features, &data.sensitive, options)
          .ValueOrDie();

  exp::TablePrinter table(
      {"lambda", "CO (down)", "SH (up)", "AE (down)", "MW (down)", "iters"});
  for (int p = 0; p < points; ++p) {
    // Log-spaced sweep from center/16 to center*8.
    const double lambda =
        center / 16.0 *
        std::pow(128.0, static_cast<double>(p) / std::max(1, points - 1));
    solver.SetLambda(lambda).Abort();
    solver.Init(seed).Abort();
    solver.Run().ValueOrDie();
    auto r = solver.CurrentResult().ValueOrDie();
    auto fairness = metrics::EvaluateFairness(data.sensitive, r.assignment, k);
    table.AddRow({exp::Cell(lambda, 0), exp::Cell(r.kmeans_objective, 2),
                  exp::Cell(metrics::SilhouetteScore(data.features, r.assignment, k)),
                  exp::Cell(fairness.mean.ae), exp::Cell(fairness.mean.mw),
                  std::to_string(r.iterations)});
  }
  table.Print();
  std::printf(
      "\nPick the smallest lambda whose fairness deviations meet your target;\n"
      "behaviour varies smoothly around the (n/k)^2 heuristic (paper §5.4).\n");
  return 0;
}
