// Seeded random worlds for invariant and cross-check tests: Gaussian blob
// features with attached categorical/numeric sensitive attributes and a
// random initial assignment, all a pure function of the seed.

#ifndef FAIRKM_TESTS_TESTLIB_WORLDS_H_
#define FAIRKM_TESTS_TESTLIB_WORLDS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/types.h"
#include "common/rng.h"
#include "core/fairkm_state.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace testutil {

/// \brief Shape of a synthetic world.
struct WorldSpec {
  int blobs = 3;
  int per_blob = 20;
  int dim = 4;
  int k = 3;
  /// Categorical sensitive attributes with cardinalities 2, 3, 4, ...
  int categorical_attrs = 2;
  int numeric_attrs = 1;
  /// When true, attribute weights are drawn from [0.5, 2) (Eq. 23).
  bool random_weights = false;
};

/// \brief A fully materialized world plus a random initial assignment.
struct SeededWorld {
  data::Matrix points;
  data::SensitiveView sensitive;
  cluster::Assignment assignment;
  int k = 0;
};

/// \brief Deterministically builds a world from a seed.
SeededWorld MakeSeededWorld(uint64_t seed, const WorldSpec& spec = {});

/// \brief One point relocation.
struct MoveOp {
  size_t point;
  int to;
};

/// \brief Draws a uniformly random move sequence (any point to any cluster,
/// no-op moves included on purpose — the state must tolerate them).
std::vector<MoveOp> RandomMoveSequence(size_t num_moves, size_t num_rows, int k,
                                       Rng* rng);

}  // namespace testutil
}  // namespace fairkm

#endif  // FAIRKM_TESTS_TESTLIB_WORLDS_H_
