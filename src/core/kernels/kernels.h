// Vectorized kernel backends for the FairKM hot loops.
//
// The optimizer's per-candidate cost is dominated by two primitive shapes:
//   * dense dot products / blocked GEMV — the x . S_c pass over the k x d
//     sums matrix inside DeltaKMeansAllClusters and the expanded-form
//     distance in DeltaKMeans,
//   * the per-(attribute, cluster) fairness moments sum_s u_s^2 and
//     sum_s u_s q_s (u_s = |C_s| - |C| q_s) recomputed on every Move.
//
// Each primitive exists in a scalar reference backend (plain loops, compiled
// for the baseline ISA) and, on x86-64 hosts whose compiler supports it, an
// AVX2/FMA backend compiled in its own translation unit with -mavx2 -mfma.
// Which backend runs is decided once at startup by runtime CPU detection
// (cpuid via __builtin_cpu_supports), so a single binary runs correctly on
// non-AVX hosts; setting the environment variable FAIRKM_FORCE_SCALAR to a
// non-empty value other than "0" (or calling SetActiveBackend) pins the
// scalar backend — CI runs one job this way so the scalar dispatch path
// stays exercised.
//
// Contract between backends:
//   * Dot/Gemv agree with the scalar backend to floating-point reassociation
//     only (the SIMD versions use multiple accumulators + FMA); callers
//     tolerate ~1e-9 relative differences, and tests/simd_kernels_test.cc
//     enforces that bound across dims 1..33 and unaligned bases.
//   * CatMoments is BIT-FOR-BIT identical across backends: both use the same
//     4-lane blocked accumulation with an identical reduction tree and no
//     FMA contraction (the kernel TUs build with -ffp-contract=off), so the
//     fairness aggregates — and therefore the optimizer trajectory of the
//     fairness term — do not depend on the dispatched backend.

#ifndef FAIRKM_CORE_KERNELS_KERNELS_H_
#define FAIRKM_CORE_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace fairkm {
namespace core {
namespace kernels {

/// \brief One kernel implementation set. All pointers are non-null.
struct Backend {
  const char* name;

  /// sum_j a[j] * b[j] over n doubles (no alignment requirement).
  double (*Dot)(const double* a, const double* b, size_t n);

  /// Blocked row-major GEMV: out[r] = dot(x, mat + r * cols) for r in
  /// [0, rows). One contiguous pass over the rows x cols matrix.
  void (*Gemv)(const double* x, const double* mat, size_t rows, size_t cols,
               double* out);

  /// Aligned fast-path GEMV over a lane-padded store (data/point_store.h):
  /// `x`, `mat` and every row of `mat` must be 32-byte aligned and `cols`
  /// must be a multiple of 4 (the padded stride, with zero-filled padding —
  /// the padded products are exact zeros). Same accuracy contract as Gemv
  /// (reassociation tolerated across backends), but free of tail handling
  /// and unaligned loads. DeltaKMeansAllClusters routes through this.
  void (*GemvAligned)(const double* x, const double* mat, size_t rows,
                      size_t cols, double* out);

  /// Fairness moments for one (attribute, cluster) pair: with
  /// u_s = counts[s] - size * fractions[s], writes *u2 = sum_s u_s^2 and
  /// *uq = sum_s u_s * fractions[s]. Bit-for-bit stable across backends.
  void (*CatMoments)(const int64_t* counts, const double* fractions, size_t m,
                     double size, double* u2, double* uq);

  /// Bounds-update kernel for the pruning engine (core/pruning.h): fills the
  /// per-value fairness move-delta tables of one (attribute, cluster) pair.
  /// With u_v = counts[v] - size * fractions[v] and the precomputed moments
  /// u2 = sum u^2, uq = sum u q, q2 = sum q^2, writes for every value v
  ///   rem[v] = scale_rem_after * (u2+q2+1 + 2*(uq - u_v - fractions[v]))
  ///            - scale_before * u2      (fairness change of removing a
  ///                                      point with value v from C)
  ///   ins[v] = scale_ins_after * (u2+q2+1 - 2*(uq - u_v + fractions[v]))
  ///            - scale_before * u2      (change of inserting one)
  /// (un-weighted, un-normalized) and returns the minima over v in
  /// *rem_min / *ins_min. Every table entry is computed elementwise with the
  /// same mul/add sequence in both backends (no accumulation, no FMA
  /// contraction) and min is order-insensitive, so the tables — and the
  /// pruning decisions derived from them — are bit-for-bit
  /// backend-independent.
  void (*CatDeltaBounds)(const int64_t* counts, const double* fractions,
                         size_t m, double size, double u2, double uq,
                         double q2, double scale_before,
                         double scale_rem_after, double scale_ins_after,
                         double* rem, double* ins, double* rem_min,
                         double* ins_min);
};

/// \brief The portable reference backend (always available).
const Backend& ScalarBackend();

/// \brief The AVX2/FMA backend, or nullptr when it was not compiled in or
/// the running CPU lacks AVX2/FMA.
const Backend* Avx2Backend();

/// \brief Pure dispatch decision: best available backend, or scalar when
/// `force_scalar` is set. Exposed so tests can exercise both branches
/// without mutating the process environment.
const Backend& DispatchBackend(bool force_scalar);

/// \brief True when FAIRKM_FORCE_SCALAR is set to a non-empty value other
/// than "0" in the environment.
bool ScalarForcedByEnv();

/// \brief The backend all kernel wrappers route through. Resolved on first
/// use from cpuid + FAIRKM_FORCE_SCALAR; thread-safe to read concurrently.
const Backend& ActiveBackend();

/// \brief Overrides the active backend (benches/tests/CLI flag). Passing
/// nullptr re-runs the dispatch decision on next use. Not thread-safe
/// against concurrent kernel execution; call before spawning workers.
void SetActiveBackend(const Backend* backend);

inline double Dot(const double* a, const double* b, size_t n) {
  return ActiveBackend().Dot(a, b, n);
}

inline void Gemv(const double* x, const double* mat, size_t rows, size_t cols,
                 double* out) {
  ActiveBackend().Gemv(x, mat, rows, cols, out);
}

inline void GemvAligned(const double* x, const double* mat, size_t rows,
                        size_t cols, double* out) {
  ActiveBackend().GemvAligned(x, mat, rows, cols, out);
}

inline void CatMoments(const int64_t* counts, const double* fractions,
                       size_t m, double size, double* u2, double* uq) {
  ActiveBackend().CatMoments(counts, fractions, m, size, u2, uq);
}

inline void CatDeltaBounds(const int64_t* counts, const double* fractions,
                           size_t m, double size, double u2, double uq,
                           double q2, double scale_before,
                           double scale_rem_after, double scale_ins_after,
                           double* rem, double* ins, double* rem_min,
                           double* ins_min) {
  ActiveBackend().CatDeltaBounds(counts, fractions, m, size, u2, uq, q2,
                                 scale_before, scale_rem_after,
                                 scale_ins_after, rem, ins, rem_min, ins_min);
}

}  // namespace kernels
}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_KERNELS_KERNELS_H_
