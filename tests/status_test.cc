#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace fairkm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unbounded("x").code(), StatusCode::kUnbounded);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::NotFound("the thing").message(), "the thing");
}

TEST(StatusTest, RobustnessCodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "Deadline exceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "Data loss");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status st = Status::InvalidArgument("k must be positive");
  EXPECT_EQ(st.ToString(), "Invalid argument: k must be positive");
}

TEST(StatusTest, StreamOperatorMatchesToString) {
  Status st = Status::IOError("no such file");
  std::ostringstream os;
  os << st;
  EXPECT_EQ(os.str(), st.ToString());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STRNE(StatusCodeToString(StatusCode::kInfeasible),
               StatusCodeToString(StatusCode::kUnbounded));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  FAIRKM_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> MakeValue(bool ok) {
  if (!ok) return Status::Internal("boom");
  return 5;
}

Result<int> UsesAssignOrReturn(bool ok) {
  FAIRKM_ASSIGN_OR_RETURN(int v, MakeValue(ok));
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> good = UsesAssignOrReturn(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.ValueOrDie(), 6);
  Result<int> bad = UsesAssignOrReturn(false);
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace fairkm
