#include "text/tfidf.h"

#include <cmath>
#include <set>

namespace fairkm {
namespace text {

double SparseVector::L2Norm() const {
  double sum = 0.0;
  for (const auto& [id, w] : entries) sum += w * w;
  return std::sqrt(sum);
}

void TfidfVectorizer::Fit(const std::vector<std::vector<std::string>>& docs) {
  vocab_.clear();
  idf_.clear();
  // Vocabulary in lexicographic order (std::map) => deterministic term ids.
  std::map<std::string, int> df;
  for (const auto& doc : docs) {
    std::set<std::string> seen(doc.begin(), doc.end());
    for (const auto& token : seen) ++df[token];
  }
  int next_id = 0;
  idf_.reserve(df.size());
  const double n = static_cast<double>(docs.size());
  for (const auto& [token, count] : df) {
    vocab_.emplace(token, next_id++);
    idf_.push_back(std::log((1.0 + n) / (1.0 + count)) + 1.0);
  }
}

SparseVector TfidfVectorizer::Transform(const std::vector<std::string>& doc) const {
  std::map<int, double> tf;
  for (const auto& token : doc) {
    int id = TermId(token);
    if (id >= 0) tf[id] += 1.0;
  }
  SparseVector out;
  out.entries.reserve(tf.size());
  for (const auto& [id, count] : tf) {
    out.entries.emplace_back(id, count * idf_[static_cast<size_t>(id)]);
  }
  const double norm = out.L2Norm();
  if (norm > 0.0) {
    for (auto& [id, w] : out.entries) w /= norm;
  }
  return out;
}

std::vector<SparseVector> TfidfVectorizer::FitTransform(
    const std::vector<std::vector<std::string>>& docs) {
  Fit(docs);
  std::vector<SparseVector> out;
  out.reserve(docs.size());
  for (const auto& doc : docs) out.push_back(Transform(doc));
  return out;
}

int TfidfVectorizer::TermId(const std::string& token) const {
  auto it = vocab_.find(token);
  return it == vocab_.end() ? -1 : it->second;
}

}  // namespace text
}  // namespace fairkm
