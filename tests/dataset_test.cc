#include "data/dataset.h"

#include <gtest/gtest.h>

#include <limits>

#include "data/matrix.h"

namespace fairkm {
namespace data {
namespace {

Dataset MakeSample() {
  Dataset d;
  d.AddNumeric("age", {30, 40, 50, 60}).Abort();
  d.AddNumeric("hours", {20, 35, 40, 45}).Abort();
  d.AddCategorical("gender", {0, 1, 0, 1}, {"M", "F"}).Abort();
  return d;
}

TEST(MatrixTest, Basics) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.empty());
  m.At(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m.Row(1)[2], 7.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 1.5);
}

TEST(MatrixTest, SelectRows) {
  Matrix m(3, 2);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) m.At(i, j) = static_cast<double>(10 * i + j);
  }
  Matrix sel = m.SelectRows({2, 0});
  EXPECT_EQ(sel.rows(), 2u);
  EXPECT_DOUBLE_EQ(sel.At(0, 1), 21.0);
  EXPECT_DOUBLE_EQ(sel.At(1, 0), 0.0);
}

TEST(MatrixTest, SquaredDistance) {
  Matrix m(2, 3);
  double a[3] = {1, 2, 3};
  double b[3] = {4, 6, 3};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b, 3), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, a, 3), 0.0);
}

TEST(DatasetTest, AddAndLookup) {
  Dataset d = MakeSample();
  EXPECT_EQ(d.num_rows(), 4u);
  ASSERT_TRUE(d.FindNumeric("age").ok());
  ASSERT_TRUE(d.FindCategorical("gender").ok());
  EXPECT_EQ(d.FindNumeric("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(d.FindCategorical("age").status().code(), StatusCode::kNotFound);
}

TEST(DatasetTest, DuplicateColumnRejected) {
  Dataset d = MakeSample();
  EXPECT_EQ(d.AddNumeric("age", {1, 2, 3, 4}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(d.AddCategorical("gender", {0, 0, 0, 0}, {"x"}).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatasetTest, LengthMismatchRejected) {
  Dataset d = MakeSample();
  EXPECT_EQ(d.AddNumeric("bad", {1, 2}).code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, NonFiniteValuesRejected) {
  Dataset d;
  EXPECT_EQ(
      d.AddNumeric("bad", {1.0, std::numeric_limits<double>::quiet_NaN()})
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      d.AddNumeric("bad", {std::numeric_limits<double>::infinity(), 2.0})
          .code(),
      StatusCode::kInvalidArgument);
  // A rejected add leaves no trace: the dataset's row count is still
  // unset, so a differently-sized clean column is welcome.
  EXPECT_TRUE(d.AddNumeric("good", {1.0, 2.0, 3.0}).ok());
  EXPECT_EQ(d.num_rows(), 3u);
}

TEST(DatasetTest, OutOfRangeCodesRejected) {
  Dataset d;
  EXPECT_EQ(d.AddCategorical("c", {0, 2}, {"a", "b"}).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(d.AddCategorical("c", {-1, 0}, {"a", "b"}).code(),
            StatusCode::kOutOfRange);
}

TEST(DatasetTest, CategoricalFractions) {
  Dataset d = MakeSample();
  const CategoricalColumn* col = d.FindCategorical("gender").ValueOrDie();
  std::vector<double> fr = col->Fractions();
  ASSERT_EQ(fr.size(), 2u);
  EXPECT_DOUBLE_EQ(fr[0], 0.5);
  EXPECT_DOUBLE_EQ(fr[1], 0.5);
}

TEST(DatasetTest, ToMatrixSelectsAndOrders) {
  Dataset d = MakeSample();
  auto m = d.ToMatrix({"hours", "age"});
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.ValueOrDie().cols(), 2u);
  EXPECT_DOUBLE_EQ(m.ValueOrDie().At(0, 0), 20.0);
  EXPECT_DOUBLE_EQ(m.ValueOrDie().At(0, 1), 30.0);
}

TEST(DatasetTest, ToMatrixUnknownColumn) {
  Dataset d = MakeSample();
  EXPECT_FALSE(d.ToMatrix({"age", "unknown"}).ok());
}

TEST(DatasetTest, NumericNames) {
  Dataset d = MakeSample();
  EXPECT_EQ(d.NumericNames(), (std::vector<std::string>{"age", "hours"}));
}

TEST(DatasetTest, SelectRowsKeepsSchema) {
  Dataset d = MakeSample();
  Dataset sub = d.SelectRows({3, 1});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(sub.FindNumeric("age").ValueOrDie()->values[0], 60.0);
  EXPECT_EQ(sub.FindCategorical("gender").ValueOrDie()->codes[1], 1);
  EXPECT_EQ(sub.FindCategorical("gender").ValueOrDie()->labels,
            (std::vector<std::string>{"M", "F"}));
}

TEST(DatasetTest, CsvRoundTrip) {
  Dataset d = MakeSample();
  CsvTable csv = d.ToCsv();
  EXPECT_EQ(csv.num_rows(), 4u);
  auto back = Dataset::FromCsv(csv);
  ASSERT_TRUE(back.ok());
  const Dataset& b = back.ValueOrDie();
  EXPECT_EQ(b.num_rows(), 4u);
  EXPECT_NEAR(b.FindNumeric("age").ValueOrDie()->values[2], 50.0, 1e-6);
  // Labels come back sorted lexicographically: F=0, M=1.
  const CategoricalColumn* g = b.FindCategorical("gender").ValueOrDie();
  EXPECT_EQ(g->labels, (std::vector<std::string>{"F", "M"}));
  EXPECT_EQ(g->codes[0], 1);  // First row was "M".
}

TEST(DatasetTest, FromCsvTypeInference) {
  CsvTable csv;
  csv.header = {"num", "mixed"};
  csv.rows = {{"1.5", "abc"}, {"2", "1.0"}};
  auto d = Dataset::FromCsv(csv);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.ValueOrDie().FindNumeric("num").ok());
  EXPECT_TRUE(d.ValueOrDie().FindCategorical("mixed").ok());
}

}  // namespace
}  // namespace data
}  // namespace fairkm
