#include "text/kinematics_generator.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "text/random_projection.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace fairkm {
namespace text {
namespace {

std::string Num(Rng* rng, double lo, double hi, int precision = 0) {
  double v = rng->UniformDouble(lo, hi);
  if (precision == 0) return std::to_string(static_cast<long long>(std::lround(v)));
  return FormatDouble(v, precision);
}

std::string Pick(Rng* rng, const std::vector<std::string>& options) {
  return options[rng->UniformInt(options.size())];
}

// Type 1: horizontal straight-line motion.
std::string MakeType1(Rng* rng) {
  const std::string obj = Pick(rng, {"car", "train", "cyclist", "runner", "truck",
                                     "bus", "motorbike", "ship"});
  const std::string v = Num(rng, 5, 40);
  const std::string t = Num(rng, 2, 60);
  const std::string d = Num(rng, 50, 2000);
  const std::string a = Num(rng, 1, 6, 1);
  switch (rng->UniformInt(5)) {
    case 0:
      return "A " + obj + " travels along a straight road at a constant speed of " +
             v + " metres per second. How far does the " + obj + " travel in " + t +
             " seconds?";
    case 1:
      return "A " + obj + " moving in a straight line covers a distance of " + d +
             " metres in " + t + " seconds at uniform velocity. Find the speed of the " +
             obj + ".";
    case 2:
      return "A " + obj + " starts from rest and accelerates uniformly at " + a +
             " metres per second squared along a level track. What is its velocity after " +
             t + " seconds?";
    case 3:
      return "A " + obj + " moving at " + v +
             " metres per second applies its brakes and decelerates uniformly at " + a +
             " metres per second squared on a straight horizontal road. How long does it take to stop?";
    default:
      return "Two " + obj + "s start from the same point on a straight highway. One moves at " +
             v + " metres per second and the other at " + Num(rng, 5, 40) +
             " metres per second in the same direction. What is the distance between them after " +
             t + " seconds?";
  }
}

// Type 2: vertical motion with an initial velocity (thrown up or down).
std::string MakeType2(Rng* rng) {
  const std::string obj = Pick(rng, {"ball", "stone", "coin", "marble", "arrow"});
  const std::string v = Num(rng, 5, 45);
  const std::string t = Num(rng, 1, 8);
  const std::string h = Num(rng, 10, 80);
  switch (rng->UniformInt(5)) {
    case 0:
      return "A " + obj + " is thrown vertically upward with an initial velocity of " +
             v + " metres per second. How high does the " + obj + " rise before it stops momentarily?";
    case 1:
      return "A " + obj + " is thrown straight up at " + v +
             " metres per second from the ground. How long does it take to return to the thrower's hand?";
    case 2:
      return "A " + obj + " is thrown vertically downward with a speed of " + v +
             " metres per second from the top of a tower " + h +
             " metres high. With what velocity does it strike the ground?";
    case 3:
      return "A " + obj + " is projected vertically upward with velocity " + v +
             " metres per second. Find its height and velocity after " + t + " seconds.";
    default:
      return "A " + obj + " thrown vertically upward passes a window " + h +
             " metres above the point of projection after " + t +
             " seconds. Determine the initial velocity of the " + obj + ".";
  }
}

// Type 3: free fall.
std::string MakeType3(Rng* rng) {
  const std::string obj = Pick(rng, {"ball", "stone", "coin", "package", "marble"});
  const std::string h = Num(rng, 20, 300);
  const std::string t = Num(rng, 1, 8);
  switch (rng->UniformInt(4)) {
    case 0:
      return "A " + obj + " is dropped from rest from the top of a building " + h +
             " metres tall. How long does the " + obj + " take to reach the ground?";
    case 1:
      return "A " + obj + " falls freely from rest. What is its velocity after falling for " +
             t + " seconds, and how far has it fallen?";
    case 2:
      return "A " + obj + " is released from rest from a cliff. It hits the ground after " +
             t + " seconds of free fall. Find the height of the cliff.";
    default:
      return "A " + obj + " dropped from a bridge falls freely and strikes the water below in " +
             t + " seconds. With what speed does the " + obj + " hit the water?";
  }
}

// Type 4: horizontally projected from a height.
std::string MakeType4(Rng* rng) {
  const std::string obj = Pick(rng, {"ball", "stone", "marble", "package", "bullet"});
  const std::string v = Num(rng, 5, 60);
  const std::string h = Num(rng, 10, 200);
  switch (rng->UniformInt(4)) {
    case 0:
      return "A " + obj + " is thrown horizontally with a velocity of " + v +
             " metres per second from the top of a tower " + h +
             " metres high. How far from the base of the tower does the " + obj + " land?";
    case 1:
      return "A " + obj + " is projected horizontally at " + v +
             " metres per second from a cliff of height " + h +
             " metres. Find the time of flight and the horizontal range of the " + obj + ".";
    case 2:
      return "An aeroplane flying horizontally at " + v +
             " metres per second at a height of " + h + " metres releases a " + obj +
             ". How far ahead of the release point does the " + obj + " strike the ground?";
    default:
      return "A " + obj + " rolls off the edge of a horizontal table " +
             Num(rng, 1, 3, 1) + " metres high with a speed of " + v +
             " metres per second. At what horizontal distance from the table edge does it hit the floor?";
  }
}

// Type 5: two-dimensional projectile at an angle.
std::string MakeType5(Rng* rng) {
  const std::string obj = Pick(rng, {"ball", "stone", "arrow", "rocket", "bullet"});
  const std::string v = Num(rng, 10, 80);
  const std::string angle = Num(rng, 15, 75);
  switch (rng->UniformInt(4)) {
    case 0:
      return "A " + obj + " is projected with a velocity of " + v +
             " metres per second at an angle of " + angle +
             " degrees to the horizontal. Find the maximum height reached by the " + obj + ".";
    case 1:
      return "A " + obj + " is launched at " + v + " metres per second at " + angle +
             " degrees above the horizontal ground. Determine the horizontal range and the time of flight.";
    case 2:
      return "A " + obj + " is fired with initial speed " + v +
             " metres per second at an elevation of " + angle +
             " degrees. At what times is the " + obj + " at half of its maximum height?";
    default:
      return "A " + obj + " projected at an angle of " + angle +
             " degrees to the horizontal with velocity " + v +
             " metres per second just clears a wall " + Num(rng, 5, 30) +
             " metres high. How far from the point of projection is the wall?";
  }
}

}  // namespace

Result<KinematicsCorpus> GenerateKinematicsCorpus(const KinematicsOptions& options) {
  if (options.type_counts.size() != 5) {
    return Status::InvalidArgument("type_counts must have exactly 5 entries");
  }
  Rng rng(options.seed);
  KinematicsCorpus corpus;
  for (int type = 0; type < 5; ++type) {
    for (size_t i = 0; i < options.type_counts[static_cast<size_t>(type)]; ++i) {
      std::string problem;
      switch (type) {
        case 0:
          problem = MakeType1(&rng);
          break;
        case 1:
          problem = MakeType2(&rng);
          break;
        case 2:
          problem = MakeType3(&rng);
          break;
        case 3:
          problem = MakeType4(&rng);
          break;
        default:
          problem = MakeType5(&rng);
          break;
      }
      corpus.problems.push_back(std::move(problem));
      corpus.types.push_back(type);
    }
  }
  return corpus;
}

const std::vector<std::string>& KinematicsTypeDescriptions() {
  static const std::vector<std::string> kDescriptions = {
      "Horizontal motion",
      "Vertical motion with an initial velocity",
      "Free fall",
      "Horizontally projected",
      "Two-dimensional"};
  return kDescriptions;
}

const std::vector<std::string>& KinematicsSensitiveNames() {
  static const std::vector<std::string> kNames = {"type_1", "type_2", "type_3",
                                                  "type_4", "type_5"};
  return kNames;
}

std::vector<std::string> KinematicsEmbeddingNames(size_t dim) {
  std::vector<std::string> names;
  names.reserve(dim);
  for (size_t d = 0; d < dim; ++d) names.push_back("emb_" + std::to_string(d));
  return names;
}

Result<data::Dataset> GenerateKinematicsDataset(const KinematicsOptions& options) {
  if (options.embedding_dim == 0) {
    return Status::InvalidArgument("embedding_dim must be positive");
  }
  FAIRKM_ASSIGN_OR_RETURN(KinematicsCorpus corpus, GenerateKinematicsCorpus(options));
  const size_t n = corpus.problems.size();

  std::vector<std::vector<std::string>> tokenized;
  tokenized.reserve(n);
  for (const auto& p : corpus.problems) tokenized.push_back(Tokenize(p));

  TfidfVectorizer vectorizer;
  std::vector<SparseVector> tfidf = vectorizer.FitTransform(tokenized);
  data::Matrix embedding = ProjectToDense(tfidf, vectorizer.vocab_size(),
                                          options.embedding_dim, options.seed ^ 0xE3B);
  if (options.noise_level > 0.0) {
    // Blend per-document noise, then restore unit norm: keeps the type signal
    // present but weak, as in small-corpus Doc2Vec embeddings.
    Rng noise_rng(options.seed ^ 0x9D0CE);
    const double scale =
        options.noise_level / std::sqrt(static_cast<double>(options.embedding_dim));
    for (size_t i = 0; i < n; ++i) {
      double* row = embedding.Row(i);
      double norm2 = 0.0;
      for (size_t d = 0; d < options.embedding_dim; ++d) {
        row[d] += noise_rng.Normal() * scale;
        norm2 += row[d] * row[d];
      }
      const double inv = norm2 > 0 ? 1.0 / std::sqrt(norm2) : 0.0;
      for (size_t d = 0; d < options.embedding_dim; ++d) row[d] *= inv;
    }
  }

  data::Dataset out;
  const std::vector<std::string> emb_names =
      KinematicsEmbeddingNames(options.embedding_dim);
  for (size_t d = 0; d < options.embedding_dim; ++d) {
    std::vector<double> column(n);
    for (size_t i = 0; i < n; ++i) column[i] = embedding.At(i, d);
    FAIRKM_RETURN_NOT_OK(out.AddNumeric(emb_names[d], std::move(column)));
  }
  // Five binary indicator attributes: the paper treats the problem types as
  // "5 sensitive binary attributes" (its §5.1).
  for (int type = 0; type < 5; ++type) {
    std::vector<int32_t> codes(n);
    for (size_t i = 0; i < n; ++i) codes[i] = corpus.types[i] == type ? 1 : 0;
    FAIRKM_RETURN_NOT_OK(out.AddCategorical(
        KinematicsSensitiveNames()[static_cast<size_t>(type)], std::move(codes),
        {"no", "yes"}));
  }
  std::vector<int32_t> type_codes(n);
  for (size_t i = 0; i < n; ++i) type_codes[i] = corpus.types[i];
  FAIRKM_RETURN_NOT_OK(
      out.AddCategorical("type", std::move(type_codes), KinematicsTypeDescriptions()));
  return out;
}

}  // namespace text
}  // namespace fairkm
