#include "metrics/fairness.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace fairkm {
namespace metrics {
namespace {

using cluster::Assignment;

TEST(AttributeFairnessTest, PerfectlyMirroredClustersScoreZero) {
  auto attr = testutil::MakeCategorical({0, 1, 0, 1}, 2);
  AttributeFairness f = EvaluateAttributeFairness(attr, {0, 0, 1, 1}, 2);
  EXPECT_NEAR(f.ae, 0.0, 1e-12);
  EXPECT_NEAR(f.aw, 0.0, 1e-12);
  EXPECT_NEAR(f.me, 0.0, 1e-12);
  EXPECT_NEAR(f.mw, 0.0, 1e-12);
}

TEST(AttributeFairnessTest, FullySkewedBinaryKnownValues) {
  // Dataset 50/50; clusters are value-pure. Each cluster distribution is
  // (1,0) or (0,1) vs (0.5,0.5): ED = sqrt(0.5), W1 = 0.5.
  auto attr = testutil::MakeCategorical({0, 0, 1, 1}, 2);
  AttributeFairness f = EvaluateAttributeFairness(attr, {0, 0, 1, 1}, 2);
  EXPECT_NEAR(f.ae, std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(f.aw, 0.5, 1e-12);
  EXPECT_NEAR(f.me, std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(f.mw, 0.5, 1e-12);
}

TEST(AttributeFairnessTest, AverageIsCardinalityWeighted) {
  // Cluster 0 holds 3 of 4 points and is fair; cluster 1 holds 1 point and
  // is maximally skewed. AE must weight by cluster size (Eq. 25).
  auto attr = testutil::MakeCategorical({0, 1, 0, 1}, 2);
  Assignment a = {0, 0, 0, 1};
  AttributeFairness f = EvaluateAttributeFairness(attr, a, 2);
  // Cluster 0: dist (2/3, 1/3) vs (0.5, 0.5): ED = sqrt(2)/6.
  // Cluster 1: (0, 1) vs (0.5, 0.5): ED = sqrt(0.5).
  const double expected_ae = (3.0 * (std::sqrt(2.0) / 6.0) + 1.0 * std::sqrt(0.5)) / 4.0;
  EXPECT_NEAR(f.ae, expected_ae, 1e-12);
  EXPECT_NEAR(f.me, std::sqrt(0.5), 1e-12);  // Max picks the skewed singleton.
}

TEST(AttributeFairnessTest, MaxAtLeastAverage) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    auto attr = testutil::MakeCategorical(testutil::RandomCodes(30, 3, &rng), 3);
    Assignment a(30);
    for (size_t i = 0; i < 30; ++i) {
      a[i] = static_cast<int32_t>(rng.UniformInt(uint64_t{4}));
    }
    AttributeFairness f = EvaluateAttributeFairness(attr, a, 4);
    EXPECT_GE(f.me, f.ae - 1e-12);
    EXPECT_GE(f.mw, f.aw - 1e-12);
  }
}

TEST(AttributeFairnessTest, EmptyClustersIgnored) {
  auto attr = testutil::MakeCategorical({0, 1, 0, 1}, 2);
  AttributeFairness f2 = EvaluateAttributeFairness(attr, {0, 0, 1, 1}, 2);
  AttributeFairness f5 = EvaluateAttributeFairness(attr, {0, 0, 1, 1}, 5);
  EXPECT_NEAR(f2.ae, f5.ae, 1e-12);
  EXPECT_NEAR(f2.me, f5.me, 1e-12);
}

TEST(NumericFairnessTest, EqualMeansScoreZeroAe) {
  data::NumericSensitive attr = testutil::MakeNumeric({1, 7, 1, 7}, "age");
  AttributeFairness f = EvaluateNumericAttributeFairness(attr, {0, 0, 1, 1}, 2);
  EXPECT_NEAR(f.ae, 0.0, 1e-12);
  EXPECT_NEAR(f.me, 0.0, 1e-12);
  // Wasserstein still sees the within-cluster distribution mismatch:
  // cluster values {1,7} vs dataset {1,1,7,7} are identical distributions.
  EXPECT_NEAR(f.aw, 0.0, 1e-12);
}

TEST(NumericFairnessTest, MeanShiftReflectedInAeAndMax) {
  data::NumericSensitive attr = testutil::MakeNumeric({0, 0, 10, 10}, "v");
  AttributeFairness f = EvaluateNumericAttributeFairness(attr, {0, 0, 1, 1}, 2);
  // Each cluster mean deviates by 5 from the dataset mean 5.
  EXPECT_NEAR(f.ae, 5.0, 1e-12);
  EXPECT_NEAR(f.me, 5.0, 1e-12);
  EXPECT_NEAR(f.aw, 5.0, 1e-12);  // Point masses at 0 and 10 vs 50/50 mix.
}

TEST(EvaluateFairnessTest, MeanAcrossAttributes) {
  auto a1 = testutil::MakeCategorical({0, 0, 1, 1}, 2, "skewed");
  auto a2 = testutil::MakeCategorical({0, 1, 0, 1}, 2, "fair");
  data::SensitiveView view = testutil::MakeView({a1, a2});
  FairnessSummary s = EvaluateFairness(view, {0, 0, 1, 1}, 2);
  ASSERT_EQ(s.per_attribute.size(), 2u);
  EXPECT_EQ(s.per_attribute[0].attribute, "skewed");
  EXPECT_NEAR(s.per_attribute[1].ae, 0.0, 1e-12);
  EXPECT_NEAR(s.mean.ae, 0.5 * s.per_attribute[0].ae, 1e-12);
  EXPECT_EQ(s.mean.attribute, "mean");
}

TEST(EvaluateFairnessTest, IncludesNumericAttributes) {
  auto cat = testutil::MakeCategorical({0, 1, 0, 1}, 2, "c");
  data::SensitiveView view = testutil::MakeView({cat});
  view.numeric.push_back(testutil::MakeNumeric({0, 0, 10, 10}, "n"));
  FairnessSummary s = EvaluateFairness(view, {0, 0, 1, 1}, 2);
  ASSERT_EQ(s.per_attribute.size(), 2u);
  EXPECT_EQ(s.per_attribute[1].attribute, "n");
  EXPECT_GT(s.per_attribute[1].ae, 0.0);
}

TEST(MinClusterBalanceTest, PerfectBalanceIsOne) {
  auto attr = testutil::MakeCategorical({0, 1, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(MinClusterBalance(attr, {0, 0, 1, 1}, 2), 1.0);
}

TEST(MinClusterBalanceTest, MonochromeClusterIsZero) {
  auto attr = testutil::MakeCategorical({0, 0, 1, 1}, 2);
  EXPECT_EQ(MinClusterBalance(attr, {0, 0, 1, 1}, 2), 0.0);
}

TEST(MinClusterBalanceTest, TakesWorstCluster) {
  auto attr = testutil::MakeCategorical({0, 1, 0, 0, 0, 1}, 2);
  // Cluster 0 = {0,1}: balance 1. Cluster 1 = {2,3,4,5}: 3 zeros 1 one => 1/3.
  EXPECT_NEAR(MinClusterBalance(attr, {0, 0, 1, 1, 1, 1}, 2), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace metrics
}  // namespace fairkm
