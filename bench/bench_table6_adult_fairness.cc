// Reproduces paper Table 6: fairness on the Adult dataset — AE/AW/ME/MW for
// the mean across S and each sensitive attribute; K-Means(N) vs the
// attribute-targeted ZGYA(S) (the paper's synthetically favorable setting)
// vs the single all-attribute FairKM run, with FairKM Impr(%).

#include "bench_tables.h"

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Table 6 — Fairness evaluation on Adult", env);
  RunFairnessTable(AdultData(env), {5, 15}, env);
  return 0;
}
