// Dense row-major matrix of doubles — the numeric feature representation
// handed to every clustering algorithm.

#ifndef FAIRKM_DATA_MATRIX_H_
#define FAIRKM_DATA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace fairkm {
namespace data {

/// \brief Row-major dense matrix (n_rows x n_cols) of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double* Row(size_t r) { return data_.data() + r * cols_; }
  const double* Row(size_t r) const { return data_.data() + r * cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// \brief Returns a new matrix containing the given rows, in order.
  Matrix SelectRows(const std::vector<size_t>& indices) const {
    Matrix out(indices.size(), cols_);
    for (size_t i = 0; i < indices.size(); ++i) {
      FAIRKM_DCHECK(indices[i] < rows_);
      const double* src = Row(indices[i]);
      double* dst = out.Row(i);
      for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
    }
    return out;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// \brief Squared Euclidean distance between two rows of length `dim`.
inline double SquaredDistance(const double* a, const double* b, size_t dim) {
  double sum = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace data
}  // namespace fairkm

#endif  // FAIRKM_DATA_MATRIX_H_
