#include "text/kinematics_generator.h"

#include <gtest/gtest.h>

#include "data/sensitive.h"

namespace fairkm {
namespace text {
namespace {

TEST(KinematicsCorpusTest, CountsMatchPaperTable4) {
  KinematicsOptions opt;
  auto corpus = GenerateKinematicsCorpus(opt).ValueOrDie();
  EXPECT_EQ(corpus.problems.size(), 161u);
  std::vector<size_t> counts(5, 0);
  for (int t : corpus.types) ++counts[static_cast<size_t>(t)];
  EXPECT_EQ(counts, (std::vector<size_t>{60, 36, 15, 31, 19}));
}

TEST(KinematicsCorpusTest, DeterministicForSeed) {
  KinematicsOptions opt;
  auto a = GenerateKinematicsCorpus(opt).ValueOrDie();
  auto b = GenerateKinematicsCorpus(opt).ValueOrDie();
  EXPECT_EQ(a.problems, b.problems);
  opt.seed = 99;
  auto c = GenerateKinematicsCorpus(opt).ValueOrDie();
  EXPECT_NE(a.problems, c.problems);
}

TEST(KinematicsCorpusTest, ProblemsAreNonTrivialEnglish) {
  auto corpus = GenerateKinematicsCorpus(KinematicsOptions{}).ValueOrDie();
  for (const auto& p : corpus.problems) {
    EXPECT_GT(p.size(), 40u);
    EXPECT_NE(p.find(' '), std::string::npos);
    // Every problem ends as a question or an imperative ("Find ...").
    EXPECT_TRUE(p.back() == '?' || p.back() == '.') << p;
  }
}

TEST(KinematicsCorpusTest, TypeVocabularyIsDistinctive) {
  auto corpus = GenerateKinematicsCorpus(KinematicsOptions{}).ValueOrDie();
  // Free-fall problems mention falling; two-dimensional ones mention angles.
  for (size_t i = 0; i < corpus.problems.size(); ++i) {
    if (corpus.types[i] == 2) {
      EXPECT_TRUE(corpus.problems[i].find("fall") != std::string::npos ||
                  corpus.problems[i].find("dropped") != std::string::npos ||
                  corpus.problems[i].find("released") != std::string::npos)
          << corpus.problems[i];
    }
    if (corpus.types[i] == 4) {
      EXPECT_TRUE(corpus.problems[i].find("angle") != std::string::npos ||
                  corpus.problems[i].find("degrees") != std::string::npos ||
                  corpus.problems[i].find("elevation") != std::string::npos)
          << corpus.problems[i];
    }
  }
}

TEST(KinematicsCorpusTest, InvalidTypeCountsRejected) {
  KinematicsOptions opt;
  opt.type_counts = {1, 2, 3};
  EXPECT_FALSE(GenerateKinematicsCorpus(opt).ok());
}

TEST(KinematicsDatasetTest, ShapeMatchesPaper) {
  KinematicsOptions opt;
  auto d = GenerateKinematicsDataset(opt).ValueOrDie();
  EXPECT_EQ(d.num_rows(), 161u);
  // 100 embedding columns.
  auto m = d.ToMatrix(KinematicsEmbeddingNames(100));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.ValueOrDie().cols(), 100u);
  // 5 binary sensitive attributes.
  for (const auto& name : KinematicsSensitiveNames()) {
    const auto* col = d.FindCategorical(name).ValueOrDie();
    EXPECT_EQ(col->cardinality(), 2) << name;
  }
}

TEST(KinematicsDatasetTest, TypeIndicatorsAreConsistentOneHot) {
  auto d = GenerateKinematicsDataset(KinematicsOptions{}).ValueOrDie();
  const auto* type = d.FindCategorical("type").ValueOrDie();
  for (size_t i = 0; i < d.num_rows(); ++i) {
    int ones = 0;
    for (int t = 0; t < 5; ++t) {
      const auto* ind =
          d.FindCategorical(KinematicsSensitiveNames()[static_cast<size_t>(t)])
              .ValueOrDie();
      if (ind->codes[i] == 1) {
        ++ones;
        EXPECT_EQ(type->codes[i], t);
      }
    }
    EXPECT_EQ(ones, 1);
  }
}

TEST(KinematicsDatasetTest, IndicatorFractionsMatchTable4) {
  auto d = GenerateKinematicsDataset(KinematicsOptions{}).ValueOrDie();
  const auto* t1 = d.FindCategorical("type_1").ValueOrDie();
  EXPECT_NEAR(t1->Fractions()[1], 60.0 / 161.0, 1e-12);
  const auto* t3 = d.FindCategorical("type_3").ValueOrDie();
  EXPECT_NEAR(t3->Fractions()[1], 15.0 / 161.0, 1e-12);
}

TEST(KinematicsDatasetTest, EmbeddingCarriesTypeSignal) {
  // Same-type problems must be closer on average than cross-type problems —
  // the precondition for S-blind clustering being type-skewed.
  KinematicsOptions opt;
  auto d = GenerateKinematicsDataset(opt).ValueOrDie();
  auto m = d.ToMatrix(KinematicsEmbeddingNames(100)).ValueOrDie();
  const auto* type = d.FindCategorical("type").ValueOrDie();
  double same = 0, cross = 0;
  size_t same_n = 0, cross_n = 0;
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = i + 1; j < m.rows(); ++j) {
      const double dist = data::SquaredDistance(m.Row(i), m.Row(j), m.cols());
      if (type->codes[i] == type->codes[j]) {
        same += dist;
        ++same_n;
      } else {
        cross += dist;
        ++cross_n;
      }
    }
  }
  EXPECT_LT(same / static_cast<double>(same_n),
            0.9 * cross / static_cast<double>(cross_n));
}

TEST(KinematicsDatasetTest, CustomDimension) {
  KinematicsOptions opt;
  opt.embedding_dim = 25;
  auto d = GenerateKinematicsDataset(opt).ValueOrDie();
  EXPECT_TRUE(d.ToMatrix(KinematicsEmbeddingNames(25)).ok());
  opt.embedding_dim = 0;
  EXPECT_FALSE(GenerateKinematicsDataset(opt).ok());
}

}  // namespace
}  // namespace text
}  // namespace fairkm
