// TF-IDF vectorization over a fitted vocabulary.

#ifndef FAIRKM_TEXT_TFIDF_H_
#define FAIRKM_TEXT_TFIDF_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace fairkm {
namespace text {

/// \brief Sparse vector: (term id, weight) pairs sorted by term id.
struct SparseVector {
  std::vector<std::pair<int, double>> entries;

  double L2Norm() const;
};

/// \brief Classic TF-IDF with smoothed IDF: idf(t) = ln((1+N)/(1+df)) + 1.
///
/// Fit builds the vocabulary (deterministic: term ids in lexicographic
/// order); Transform maps a token sequence to an L2-normalized TF-IDF vector.
/// Out-of-vocabulary tokens are dropped.
class TfidfVectorizer {
 public:
  /// \brief Builds the vocabulary and document frequencies from a corpus.
  void Fit(const std::vector<std::vector<std::string>>& docs);

  /// \brief TF-IDF vector of one tokenized document (L2-normalized).
  SparseVector Transform(const std::vector<std::string>& doc) const;

  /// \brief Fit + Transform over the corpus.
  std::vector<SparseVector> FitTransform(
      const std::vector<std::vector<std::string>>& docs);

  size_t vocab_size() const { return vocab_.size(); }

  /// \brief Term id of a token, or -1 when out of vocabulary.
  int TermId(const std::string& token) const;

 private:
  std::map<std::string, int> vocab_;
  std::vector<double> idf_;
};

}  // namespace text
}  // namespace fairkm

#endif  // FAIRKM_TEXT_TFIDF_H_
