// cluster::Clusterer adapter for FairKM, backed by the FairKMSolver session
// API: repeated Cluster() calls over the same points/sensitive objects reuse
// one warm solver (point store, norm caches, bound tables, scratch — the
// multi-seed fast path), while a change of inputs transparently rebuilds it.

#include <memory>
#include <string>
#include <utility>

#include "core/solver.h"

namespace fairkm {
namespace core {

namespace {

// Cheap content fingerprint of the inputs, the backstop behind the
// address-identity warm-path key: a caller that recycles one object's
// storage for a DIFFERENT dataset (e.g. a loop-local Matrix landing at the
// same address each iteration) would otherwise silently reuse the stale
// solver. Shape plus first/last-row sums catches that in practice at O(d)
// per call; it is a guard, not a guarantee — see the Cluster() contract in
// cluster/clusterer.h.
struct InputFingerprint {
  size_t rows = 0, cols = 0, cat_attrs = 0, num_attrs = 0;
  double first_row_sum = 0.0, last_row_sum = 0.0;

  static InputFingerprint Of(const data::Matrix& points,
                             const data::SensitiveView& sensitive) {
    InputFingerprint fp;
    fp.rows = points.rows();
    fp.cols = points.cols();
    fp.cat_attrs = sensitive.categorical.size();
    fp.num_attrs = sensitive.numeric.size();
    if (fp.rows > 0) {
      for (size_t j = 0; j < fp.cols; ++j) {
        fp.first_row_sum += points.Row(0)[j];
        fp.last_row_sum += points.Row(fp.rows - 1)[j];
      }
    }
    return fp;
  }

  bool operator==(const InputFingerprint& other) const {
    return rows == other.rows && cols == other.cols &&
           cat_attrs == other.cat_attrs && num_attrs == other.num_attrs &&
           first_row_sum == other.first_row_sum &&
           last_row_sum == other.last_row_sum;
  }
};

class FairKMClusterer : public cluster::Clusterer {
 public:
  FairKMClusterer(FairKMOptions options, std::string attribute)
      : options_(options), attribute_(std::move(attribute)) {}

  const std::string& name() const override {
    static const std::string kName = "fairkm";
    return kName;
  }

  Result<cluster::ClusteringResult> Cluster(
      const data::Matrix& points, const data::SensitiveView& sensitive,
      Rng* rng) override {
    if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
    // Warm-path key: the caller passes the same (address-stable, unchanged)
    // inputs for every run of one configuration — the exp runner's per-seed
    // loop, a CLI invocation, a serving process. Anything else rebuilds;
    // the fingerprint backstops address collisions (recycled storage).
    const InputFingerprint fingerprint = InputFingerprint::Of(points, sensitive);
    if (!solver_ || cached_points_ != &points ||
        cached_sensitive_ != &sensitive || !(fingerprint == fingerprint_)) {
      const data::SensitiveView* view = &sensitive;
      if (!attribute_.empty()) {
        FAIRKM_ASSIGN_OR_RETURN(selected_view_,
                                sensitive.SelectCategorical(attribute_));
        view = &selected_view_;
      }
      FAIRKM_ASSIGN_OR_RETURN(FairKMSolver solver,
                              FairKMSolver::Create(&points, view, options_));
      solver_ = std::make_unique<FairKMSolver>(std::move(solver));
      cached_points_ = &points;
      cached_sensitive_ = &sensitive;
      fingerprint_ = fingerprint;
    }
    FAIRKM_RETURN_NOT_OK(solver_->Init(rng));
    FAIRKM_ASSIGN_OR_RETURN(RunStop stop, solver_->Run());
    (void)stop;
    FAIRKM_ASSIGN_OR_RETURN(FairKMResult result, solver_->CurrentResult());
    return cluster::ClusteringResult(
        std::move(static_cast<cluster::ClusteringResult&>(result)));
  }

 private:
  FairKMOptions options_;
  std::string attribute_;
  // Session cache. selected_view_ must outlive solver_ (the solver
  // references it when attribute_ is set), which member order guarantees.
  data::SensitiveView selected_view_;
  std::unique_ptr<FairKMSolver> solver_;
  const data::Matrix* cached_points_ = nullptr;
  const data::SensitiveView* cached_sensitive_ = nullptr;
  InputFingerprint fingerprint_;
};

}  // namespace

std::unique_ptr<cluster::Clusterer> MakeFairKMClusterer(
    const FairKMOptions& options, const std::string& attribute) {
  return std::unique_ptr<cluster::Clusterer>(
      new FairKMClusterer(options, attribute));
}

void EnsureFairKMClustererRegistered() {
  static const bool registered = [] {
    cluster::RegisterClusterer(
        "fairkm",
        [](const cluster::ClustererOptions& generic)
            -> Result<std::unique_ptr<cluster::Clusterer>> {
          FairKMOptions options;
          options.k = generic.k;
          options.lambda = generic.lambda;
          if (generic.max_iterations > 0) {
            options.max_iterations = generic.max_iterations;
          }
          if (generic.init) options.init = *generic.init;
          return std::unique_ptr<cluster::Clusterer>(
              new FairKMClusterer(options, generic.attribute));
        })
        .Abort();  // Only fails on an empty name; impossible here.
    return true;
  }();
  (void)registered;
}

}  // namespace core
}  // namespace fairkm
