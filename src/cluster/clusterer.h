// Clusterer — the uniform method interface + name-keyed registry.
//
// Every clustering method the library ships (and any a user plugs in) can be
// selected by name and driven through one call shape:
//
//   auto clusterer = cluster::CreateClusterer("zgya", options).ValueOrDie();
//   auto result = clusterer->Cluster(points, sensitive, &rng).ValueOrDie();
//
// Built-in registrations:
//   * "kmeans"    — S-blind Lloyd (cluster/kmeans.h),
//   * "zgya"      — soft variational ZGYA, the published baseline,
//   * "zgya-hard" — ZGYA's objective re-optimized with exact hard moves,
//   * "fairkm"    — the paper's method (registered by the core layer; call
//                   core::EnsureFairKMClustererRegistered() — see
//                   core/solver.h — before creating it by name).
//
// Clusterer instances may retain reusable session state between Cluster()
// calls (the FairKM adapter keeps a warm core::FairKMSolver for repeated
// calls over the same inputs), which is why Cluster() is non-const and why
// harnesses should create one instance per configuration, not per run.

#ifndef FAIRKM_CLUSTER_CLUSTERER_H_
#define FAIRKM_CLUSTER_CLUSTERER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/types.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace cluster {

/// \brief Method-agnostic knobs understood by every registered factory.
/// Method-specific extras (FairKM's mini-batch/sweep/pruning machinery) are
/// available by constructing the method's adapter directly with its own
/// options struct (e.g. core::MakeFairKMClusterer).
struct ClustererOptions {
  int k = 5;
  /// Fairness weight, method-specific semantics; negative = method auto
  /// (FairKM: the (n/k)^2 heuristic; ZGYA: magnitude balancing; ignored by
  /// "kmeans").
  double lambda = -1.0;
  /// <= 0 = method default (FairKM/ZGYA: 30, K-Means: 100).
  int max_iterations = 0;
  /// Initialization override; unset = method default (K-Means: k-means++,
  /// FairKM/ZGYA: random assignment — the paper's Algorithm 1 step 1).
  std::optional<KMeansInit> init;
  /// Single-attribute methods (zgya*, optionally fairkm): restrict to this
  /// categorical sensitive attribute of the view passed to Cluster(). Empty
  /// = use the view as passed (zgya* then require it to hold exactly one
  /// categorical attribute).
  std::string attribute;
  /// ZGYA soft-mode temperature (<= 0 = library default).
  double soft_temperature = -1.0;
};

/// \brief One clustering method behind a uniform call shape.
class Clusterer {
 public:
  virtual ~Clusterer() = default;

  /// \brief The registry key this instance answers to.
  virtual const std::string& name() const = 0;

  /// \brief Runs the method. S-blind methods ignore `sensitive`. Non-const
  /// so implementations may keep reusable session state across calls.
  ///
  /// Session-reuse contract: an implementation may key its warm state on the
  /// IDENTITY of `points`/`sensitive` — pass the same, unchanged objects to
  /// run the same data again (the warm path), and pass distinct objects for
  /// distinct datasets. Mutating a dataset in place between calls (or
  /// recycling one object's storage for different contents) is outside the
  /// contract; the FairKM adapter additionally guards it with a cheap
  /// content fingerprint, but that is a backstop, not an API promise.
  virtual Result<ClusteringResult> Cluster(const data::Matrix& points,
                                           const data::SensitiveView& sensitive,
                                           Rng* rng) = 0;
};

/// \brief Builds a Clusterer from the generic options.
using ClustererFactory =
    std::function<Result<std::unique_ptr<Clusterer>>(const ClustererOptions&)>;

/// \brief Registers (or replaces — last registration wins) a factory under
/// `name`. Thread-safe. Fails only on an empty name.
Status RegisterClusterer(const std::string& name, ClustererFactory factory);

/// \brief True when `name` has a registered factory.
bool IsClustererRegistered(const std::string& name);

/// \brief Instantiates the named method; NotFound lists the known names.
Result<std::unique_ptr<Clusterer>> CreateClusterer(
    const std::string& name, const ClustererOptions& options = {});

/// \brief Sorted registry keys (the built-ins plus anything user-added).
std::vector<std::string> RegisteredClusterers();

}  // namespace cluster
}  // namespace fairkm

#endif  // FAIRKM_CLUSTER_CLUSTERER_H_
