#include "cluster/kcenter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "test_util.h"

namespace fairkm {
namespace cluster {
namespace {

TEST(KCenterTest, ValidatesInputs) {
  data::Matrix empty;
  Rng rng(1);
  EXPECT_FALSE(RunKCenter(empty, 2, &rng).ok());
  data::Matrix two(2, 1);
  EXPECT_FALSE(RunKCenter(two, 0, &rng).ok());
  EXPECT_FALSE(RunKCenter(two, 3, &rng).ok());
  EXPECT_FALSE(RunKCenter(two, 1, nullptr).ok());
}

TEST(KCenterTest, CoversWellSeparatedBlobs) {
  Rng gen(3);
  data::Matrix pts = testutil::MakeBlobs(4, 25, 3, &gen);
  Rng rng(5);
  auto r = RunKCenter(pts, 4, &rng).ValueOrDie();
  EXPECT_EQ(r.centers.size(), 4u);
  // One center per blob => radius is within a blob (blob spread 0.4,
  // inter-blob distance >= 6).
  std::set<size_t> blobs;
  for (size_t c : r.centers) blobs.insert(c / 25);
  EXPECT_EQ(blobs.size(), 4u);
  EXPECT_LT(r.radius, 3.0);
}

TEST(KCenterTest, RadiusIsMaxDistanceToNearestCenter) {
  Rng gen(7);
  data::Matrix pts = testutil::MakeBlobs(2, 20, 2, &gen);
  Rng rng(9);
  auto r = RunKCenter(pts, 3, &rng).ValueOrDie();
  double max_d = 0;
  for (size_t i = 0; i < pts.rows(); ++i) {
    const size_t c = r.centers[static_cast<size_t>(r.assignment[i])];
    max_d = std::max(max_d, std::sqrt(data::SquaredDistance(
                                pts.Row(i), pts.Row(c), pts.cols())));
  }
  EXPECT_NEAR(r.radius, max_d, 1e-12);
}

TEST(KCenterTest, GreedyIs2Approximation) {
  // For k = n the radius must be 0; for any k, doubling the center count
  // cannot increase the radius.
  Rng gen(11);
  data::Matrix pts = testutil::MakeBlobs(3, 10, 2, &gen);
  Rng r1(13), r2(13);
  auto small = RunKCenter(pts, 3, &r1).ValueOrDie();
  auto large = RunKCenter(pts, 6, &r2).ValueOrDie();
  EXPECT_LE(large.radius, small.radius + 1e-12);
  Rng r3(13);
  auto all = RunKCenter(pts, static_cast<int>(pts.rows()), &r3).ValueOrDie();
  EXPECT_NEAR(all.radius, 0.0, 1e-12);
}

TEST(ProportionalQuotaTest, SumsToKAndTracksShares) {
  auto attr = testutil::MakeCategorical({0, 0, 0, 0, 0, 0, 0, 1, 1, 2}, 3);
  std::vector<int> quota = ProportionalQuota(attr, 10);
  EXPECT_EQ(quota[0] + quota[1] + quota[2], 10);
  EXPECT_EQ(quota[0], 7);
  EXPECT_EQ(quota[1], 2);
  EXPECT_EQ(quota[2], 1);
}

TEST(ProportionalQuotaTest, LargestRemainderRounding) {
  // 50/30/20 split at k = 4: exact quotas 2.0/1.2/0.8 -> 2/1/1.
  auto attr = testutil::MakeCategorical({0, 0, 0, 0, 0, 1, 1, 1, 2, 2}, 3);
  std::vector<int> quota = ProportionalQuota(attr, 4);
  EXPECT_EQ(quota, (std::vector<int>{2, 1, 1}));
}

TEST(FairKCenterTest, HonorsQuotaExactly) {
  Rng gen(17);
  data::Matrix pts = testutil::MakeBlobs(3, 20, 2, &gen);
  Rng grng(19);
  auto attr = testutil::MakeCategorical(testutil::RandomCodes(60, 2, &grng), 2);
  Rng rng(21);
  auto r = RunFairKCenter(pts, attr, {3, 2}, &rng).ValueOrDie();
  EXPECT_EQ(r.centers.size(), 5u);
  int count[2] = {0, 0};
  for (size_t c : r.centers) ++count[attr.codes[c]];
  EXPECT_EQ(count[0], 3);
  EXPECT_EQ(count[1], 2);
  // Centers are distinct.
  std::set<size_t> unique(r.centers.begin(), r.centers.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(FairKCenterTest, QuotaValidation) {
  data::Matrix pts(4, 1);
  auto attr = testutil::MakeCategorical({0, 0, 0, 1}, 2);
  Rng rng(23);
  // More centers of value 1 than exist.
  EXPECT_FALSE(RunFairKCenter(pts, attr, {1, 2}, &rng).ok());
  EXPECT_FALSE(RunFairKCenter(pts, attr, {-1, 1}, &rng).ok());
  EXPECT_FALSE(RunFairKCenter(pts, attr, {1, 1, 1}, &rng).ok());  // Wrong size.
}

TEST(FairKCenterTest, FairRadiusNoBetterThanUnconstrained) {
  Rng gen(29);
  data::Matrix pts = testutil::MakeBlobs(4, 15, 3, &gen);
  // Skewed groups: blob 0 is all value 1, the rest value 0.
  std::vector<int32_t> codes(60, 0);
  for (size_t i = 0; i < 15; ++i) codes[i] = 1;
  auto attr = testutil::MakeCategorical(codes, 2);
  Rng r1(31), r2(31);
  auto plain = RunKCenter(pts, 4, &r1).ValueOrDie();
  // Force 3 of 4 centers into the single value-1 blob: radius must suffer.
  auto fair = RunFairKCenter(pts, attr, {1, 3}, &r2).ValueOrDie();
  EXPECT_GE(fair.radius, plain.radius - 1e-9);
}

TEST(FairKCenterTest, ProportionalSummaryMirrorsDataset) {
  Rng gen(37);
  data::Matrix pts = testutil::MakeBlobs(2, 50, 2, &gen);
  Rng grng(39);
  std::vector<int32_t> codes(100);
  for (size_t i = 0; i < 100; ++i) codes[i] = grng.Bernoulli(0.3) ? 1 : 0;
  auto attr = testutil::MakeCategorical(codes, 2);
  const int k = 10;
  std::vector<int> quota = ProportionalQuota(attr, k);
  Rng rng(41);
  auto r = RunFairKCenter(pts, attr, quota, &rng).ValueOrDie();
  int count[2] = {0, 0};
  for (size_t c : r.centers) ++count[attr.codes[c]];
  // Summary shares within one seat of the dataset shares.
  EXPECT_NEAR(static_cast<double>(count[1]) / k, attr.dataset_fractions[1], 0.1);
}

}  // namespace
}  // namespace cluster
}  // namespace fairkm
