// Durable serialization of published model snapshots.
//
// The serving tier's counterpart to core/checkpoint_io: a trained
// core::ModelExport (plus its publish version) is frozen to disk in the
// CRC-framed section container of common/io.h, written atomically
// (temp + fsync + rename), and read back bit-identically — centroids,
// cached norms and fairness moment tables all travel as raw 8-byte double
// images. A server restart can therefore Publish the last exported model
// immediately, before any solver has retrained, and a corrupt or torn file
// reads as kDataLoss instead of poisoning the service.
//
// Fault scope: "snapshot" (snapshot.open / .write / .fsync / .rename /
// .read), armable via FAIRKM_FAULT or fault::Arm in tests.

#ifndef FAIRKM_SERVE_SNAPSHOT_IO_H_
#define FAIRKM_SERVE_SNAPSHOT_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "serve/model_snapshot.h"

namespace fairkm {
namespace serve {

/// \brief Durably writes `snapshot` (model + publish version) to `path`.
Status WriteModelSnapshot(const std::string& path,
                          const ModelSnapshot& snapshot);

/// \brief Reads a snapshot written by WriteModelSnapshot. kNotFound when the
/// file is absent, kDataLoss on any corruption, kInvalidArgument when the
/// file's format version is newer than this binary understands.
Result<std::shared_ptr<const ModelSnapshot>> ReadModelSnapshot(
    const std::string& path);

}  // namespace serve
}  // namespace fairkm

#endif  // FAIRKM_SERVE_SNAPSHOT_IO_H_
