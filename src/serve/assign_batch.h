// Batched out-of-sample assignment against a frozen ModelSnapshot.
//
// FairKMSolver::Assign scores one point at a time with a naive O(d) distance
// loop per candidate cluster. AssignBatch scores whole request batches
// through the aligned kernel path instead: each point row is streamed
// directly from the request matrix when it already has the kernel layout
// (width == padded stride, 32-byte-aligned storage), else copied once into a
// lane-padded 32-byte-aligned scratch block; its x·mu_c against ALL k
// centroids comes from one GemvAligned pass over the snapshot's k x stride
// centroid matrix, and the squared distance uses the expanded form
//
//   d(x, mu_c)^2 = ||x||^2 - 2 x·mu_c + ||mu_c||^2
//
// with ||mu_c||^2 cached in the snapshot at export time (one Dot per point
// for ||x||^2). The Eq. 1 insertion cost on top — |C|/(|C|+1) scaling plus
// lambda times the fairness insertion delta priced from the snapshot's
// moment tables — uses the exact arithmetic of the scalar path, so the two
// paths pick IDENTICAL argmin clusters (the expanded-form distance differs
// from the naive two-loop distance only by floating-point reassociation,
// which the argmin with its deterministic smallest-id tie-break tolerates;
// tests/serve_assign_test.cc locks the bit-identical-assignment contract in
// every backend).
//
// Everything here reads only the immutable snapshot — safe to call from any
// number of threads concurrently, including while the exporting solver keeps
// sweeping.

#ifndef FAIRKM_SERVE_ASSIGN_BATCH_H_
#define FAIRKM_SERVE_ASSIGN_BATCH_H_

#include <cstdint>
#include <vector>

#include "cluster/types.h"
#include "common/status.h"
#include "data/matrix.h"
#include "data/sensitive.h"
#include "serve/model_snapshot.h"

namespace fairkm {
namespace serve {

/// \brief Reusable per-thread scoring buffers (padded point block, per-
/// cluster dot row, gathered sensitive values). Pass one to repeated
/// AssignBatch calls to make the steady state allocation-free; a null
/// scratch makes the call self-contained.
struct AssignScratch {
  data::AlignedVector padded;    ///< Block of lane-padded point rows.
  std::vector<double> dots;      ///< One x·mu_c row (k wide).
  std::vector<size_t> cand;      ///< Non-empty cluster ids, ascending.
  std::vector<double> scale;     ///< Per-cluster |C|/(|C|+1) insertion scale.
  std::vector<int32_t> codes;    ///< Gathered categorical codes of one point.
  std::vector<double> values;    ///< Gathered numeric values of one point.
};

/// \brief Validates a request against the snapshot: feature width, the
/// sensitive view mirroring the trained attribute structure, EVERY
/// attribute's row count (ragged views are rejected before any indexing),
/// and categorical codes within the trained cardinalities.
Status ValidateAssignInputs(const ModelSnapshot& snapshot,
                            const data::Matrix& new_points,
                            const data::SensitiveView* new_sensitive);

/// \brief Scores rows [begin, end) of `new_points` into out[begin..end).
/// Inputs must already be validated (ValidateAssignInputs) and the snapshot
/// must have at least one non-empty cluster. `out` must hold
/// new_points.rows() entries. The AssignService uses this directly for its
/// per-request batching; most callers want AssignBatch.
void AssignRows(const ModelSnapshot& snapshot, const data::Matrix& new_points,
                size_t begin, size_t end,
                const data::SensitiveView* new_sensitive,
                AssignScratch* scratch, cluster::Assignment* out);

/// \brief Batched counterpart of FairKMSolver::Assign: maps every row of
/// `new_points` to the non-empty cluster minimizing its Eq. 1 insertion
/// cost, adding the fairness term iff `new_sensitive` is non-null. Returns
/// the same assignments as the scalar solver path on the exporting solver.
Result<cluster::Assignment> AssignBatch(
    const ModelSnapshot& snapshot, const data::Matrix& new_points,
    const data::SensitiveView* new_sensitive = nullptr,
    AssignScratch* scratch = nullptr);

}  // namespace serve
}  // namespace fairkm

#endif  // FAIRKM_SERVE_ASSIGN_BATCH_H_
