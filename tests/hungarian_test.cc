#include "metrics/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/rng.h"

namespace fairkm {
namespace metrics {
namespace {

TEST(HungarianTest, EmptyRejected) {
  data::Matrix empty;
  std::vector<int> matching;
  EXPECT_FALSE(HungarianAssign(empty, &matching).ok());
}

TEST(HungarianTest, RowsMustNotExceedCols) {
  data::Matrix cost(3, 2);
  std::vector<int> matching;
  EXPECT_FALSE(HungarianAssign(cost, &matching).ok());
}

TEST(HungarianTest, IdentityCostPicksDiagonal) {
  data::Matrix cost(3, 3, 1.0);
  for (size_t i = 0; i < 3; ++i) cost.At(i, i) = 0.0;
  std::vector<int> matching;
  auto r = HungarianAssign(cost, &matching);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.ValueOrDie(), 0.0);
  EXPECT_EQ(matching, (std::vector<int>{0, 1, 2}));
}

TEST(HungarianTest, ClassicExample) {
  // Known optimum: 1 + 2 + 2 = 5? Compute by hand:
  //   [4 1 3]
  //   [2 0 5]
  //   [3 2 2]
  // Best assignment: r0->c1 (1), r1->c0 (2), r2->c2 (2) = 5.
  data::Matrix cost(3, 3);
  const double values[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) cost.At(i, j) = values[i][j];
  }
  std::vector<int> matching;
  auto r = HungarianAssign(cost, &matching);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.ValueOrDie(), 5.0);
}

TEST(HungarianTest, RectangularLeavesColumnsUnmatched) {
  data::Matrix cost(2, 4, 10.0);
  cost.At(0, 3) = 1.0;
  cost.At(1, 2) = 2.0;
  std::vector<int> matching;
  auto r = HungarianAssign(cost, &matching);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.ValueOrDie(), 3.0);
  EXPECT_EQ(matching[0], 3);
  EXPECT_EQ(matching[1], 2);
}

TEST(HungarianTest, MatchingIsPermutation) {
  Rng rng(3);
  data::Matrix cost(6, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) cost.At(i, j) = rng.UniformDouble(0, 10);
  }
  std::vector<int> matching;
  ASSERT_TRUE(HungarianAssign(cost, &matching).ok());
  std::set<int> cols(matching.begin(), matching.end());
  EXPECT_EQ(cols.size(), 6u);
}

TEST(HungarianTest, BeatsOrMatchesBruteForceOnRandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 5;
    data::Matrix cost(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) cost.At(i, j) = rng.UniformDouble(0, 100);
    }
    std::vector<int> matching;
    auto r = HungarianAssign(cost, &matching);
    ASSERT_TRUE(r.ok());

    // Brute force over all 120 permutations.
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    double best = 1e18;
    do {
      double total = 0;
      for (size_t i = 0; i < n; ++i) total += cost.At(i, static_cast<size_t>(perm[i]));
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));

    EXPECT_NEAR(r.ValueOrDie(), best, 1e-9) << "trial " << trial;
  }
}

TEST(HungarianTest, HandlesNegativeCosts) {
  data::Matrix cost(2, 2);
  cost.At(0, 0) = -5;
  cost.At(0, 1) = 1;
  cost.At(1, 0) = 1;
  cost.At(1, 1) = -3;
  std::vector<int> matching;
  auto r = HungarianAssign(cost, &matching);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.ValueOrDie(), -8.0);
}

}  // namespace
}  // namespace metrics
}  // namespace fairkm
