#include "common/proc_stats.h"

#include <cstdio>
#include <cstring>

namespace fairkm {
namespace {

// Reads one "Vm...:  <kB> kB" line from /proc/self/status. Returns 0 when
// the file or the field is missing (non-Linux, restricted procfs).
size_t ReadStatusFieldBytes(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const size_t field_len = std::strlen(field);
  char line[256];
  size_t bytes = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      unsigned long long kb = 0;
      if (std::sscanf(line + field_len + 1, "%llu", &kb) == 1) {
        bytes = static_cast<size_t>(kb) * 1024;
      }
      break;
    }
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

size_t CurrentRssBytes() { return ReadStatusFieldBytes("VmRSS"); }

size_t PeakRssBytes() { return ReadStatusFieldBytes("VmHWM"); }

}  // namespace fairkm
