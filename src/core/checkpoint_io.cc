#include "core/checkpoint_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/io.h"

namespace fairkm {
namespace core {
namespace {

constexpr uint32_t kMagic = 0x464B4D43;  // "CMKF" on disk, read as FKMC
constexpr uint32_t kFormatVersion = 1;
constexpr char kFaultScope[] = "checkpoint";

// Section tags.
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionState = 2;
constexpr uint32_t kSectionPruner = 3;

// ---- generic vector plumbing ------------------------------------------

template <typename Vec>
void PutDoubles(io::BinaryWriter* w, const Vec& v) {
  w->PutU64(v.size());
  for (double x : v) w->PutDouble(x);
}

template <typename Vec>
Status GetDoubles(io::BinaryReader* r, Vec* v) {
  size_t n = 0;
  FAIRKM_RETURN_NOT_OK(r->GetCount(sizeof(double), &n));
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    FAIRKM_RETURN_NOT_OK(r->GetDouble(&(*v)[i]));
  }
  return Status::OK();
}

void PutSizes(io::BinaryWriter* w, const std::vector<size_t>& v) {
  w->PutU64(v.size());
  for (size_t x : v) w->PutU64(x);
}

Status GetSizes(io::BinaryReader* r, std::vector<size_t>* v) {
  size_t n = 0;
  FAIRKM_RETURN_NOT_OK(r->GetCount(sizeof(uint64_t), &n));
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    FAIRKM_RETURN_NOT_OK(r->GetU64(&x));
    (*v)[i] = static_cast<size_t>(x);
  }
  return Status::OK();
}

void PutI32s(io::BinaryWriter* w, const std::vector<int32_t>& v) {
  w->PutU64(v.size());
  for (int32_t x : v) w->PutU32(static_cast<uint32_t>(x));
}

Status GetI32s(io::BinaryReader* r, std::vector<int32_t>* v) {
  size_t n = 0;
  FAIRKM_RETURN_NOT_OK(r->GetCount(sizeof(uint32_t), &n));
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t x = 0;
    FAIRKM_RETURN_NOT_OK(r->GetU32(&x));
    (*v)[i] = static_cast<int32_t>(x);
  }
  return Status::OK();
}

void PutI64s(io::BinaryWriter* w, const std::vector<int64_t>& v) {
  w->PutU64(v.size());
  for (int64_t x : v) w->PutI64(x);
}

Status GetI64s(io::BinaryReader* r, std::vector<int64_t>* v) {
  size_t n = 0;
  FAIRKM_RETURN_NOT_OK(r->GetCount(sizeof(int64_t), &n));
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    FAIRKM_RETURN_NOT_OK(r->GetI64(&(*v)[i]));
  }
  return Status::OK();
}

void PutBytes8(io::BinaryWriter* w, const std::vector<uint8_t>& v) {
  w->PutU64(v.size());
  if (!v.empty()) w->PutBytes(v.data(), v.size());
}

Status GetBytes8(io::BinaryReader* r, std::vector<uint8_t>* v) {
  size_t n = 0;
  FAIRKM_RETURN_NOT_OK(r->GetCount(1, &n));
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    FAIRKM_RETURN_NOT_OK(r->GetU8(&(*v)[i]));
  }
  return Status::OK();
}

template <typename Inner, typename PutInner>
void PutNested(io::BinaryWriter* w, const std::vector<Inner>& v,
               PutInner put_inner) {
  w->PutU64(v.size());
  for (const Inner& inner : v) put_inner(w, inner);
}

template <typename Inner, typename GetInner>
Status GetNested(io::BinaryReader* r, std::vector<Inner>* v,
                 GetInner get_inner) {
  size_t n = 0;
  // Each non-empty inner vector costs at least its own u64 length header.
  FAIRKM_RETURN_NOT_OK(r->GetCount(sizeof(uint64_t), &n));
  v->clear();
  v->resize(n);
  for (size_t i = 0; i < n; ++i) {
    FAIRKM_RETURN_NOT_OK(get_inner(r, &(*v)[i]));
  }
  return Status::OK();
}

void PutNestedDoubles(io::BinaryWriter* w,
                      const std::vector<std::vector<double>>& v) {
  PutNested(w, v, [](io::BinaryWriter* w2, const std::vector<double>& inner) {
    PutDoubles(w2, inner);
  });
}

Status GetNestedDoubles(io::BinaryReader* r,
                        std::vector<std::vector<double>>* v) {
  return GetNested(r, v, [](io::BinaryReader* r2, std::vector<double>* inner) {
    return GetDoubles(r2, inner);
  });
}

// ---- sections ---------------------------------------------------------

std::string EncodeMeta(const SolverCheckpoint& cp) {
  io::BinaryWriter w;
  w.PutU64(cp.num_rows);
  w.PutU32(static_cast<uint32_t>(cp.k));
  w.PutU64(cp.batch_size);
  w.PutU8(cp.parallel ? 1 : 0);
  w.PutDouble(cp.lambda);
  w.PutU32(static_cast<uint32_t>(cp.sweeps_completed));
  w.PutU8(cp.converged ? 1 : 0);
  w.PutU64(cp.next_point);
  w.PutU64(cp.moves_in_sweep);
  PutDoubles(&w, cp.objective_history);
  w.PutU64(cp.total_candidates);
  w.PutU64(cp.pruned_candidates);
  w.PutDouble(cp.sweep_seconds);
  w.PutU8(cp.has_pruner ? 1 : 0);
  return w.Release();
}

Status DecodeMeta(const std::string& payload, SolverCheckpoint* cp) {
  io::BinaryReader r(payload);
  uint64_t u64 = 0;
  uint32_t u32 = 0;
  uint8_t u8 = 0;
  FAIRKM_RETURN_NOT_OK(r.GetU64(&u64));
  cp->num_rows = static_cast<size_t>(u64);
  FAIRKM_RETURN_NOT_OK(r.GetU32(&u32));
  cp->k = static_cast<int>(u32);
  FAIRKM_RETURN_NOT_OK(r.GetU64(&u64));
  cp->batch_size = static_cast<size_t>(u64);
  FAIRKM_RETURN_NOT_OK(r.GetU8(&u8));
  cp->parallel = u8 != 0;
  FAIRKM_RETURN_NOT_OK(r.GetDouble(&cp->lambda));
  FAIRKM_RETURN_NOT_OK(r.GetU32(&u32));
  cp->sweeps_completed = static_cast<int>(u32);
  FAIRKM_RETURN_NOT_OK(r.GetU8(&u8));
  cp->converged = u8 != 0;
  FAIRKM_RETURN_NOT_OK(r.GetU64(&u64));
  cp->next_point = static_cast<size_t>(u64);
  FAIRKM_RETURN_NOT_OK(r.GetU64(&u64));
  cp->moves_in_sweep = static_cast<size_t>(u64);
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &cp->objective_history));
  FAIRKM_RETURN_NOT_OK(r.GetU64(&cp->total_candidates));
  FAIRKM_RETURN_NOT_OK(r.GetU64(&cp->pruned_candidates));
  FAIRKM_RETURN_NOT_OK(r.GetDouble(&cp->sweep_seconds));
  FAIRKM_RETURN_NOT_OK(r.GetU8(&u8));
  cp->has_pruner = u8 != 0;
  return r.ExpectFullyConsumed();
}

std::string EncodeState(const FairKMState::Checkpoint& st) {
  io::BinaryWriter w;
  PutI32s(&w, st.assignment);
  PutSizes(&w, st.counts);
  PutDoubles(&w, st.sums);
  PutDoubles(&w, st.sum_norms);
  PutNested(&w, st.cat_counts,
            [](io::BinaryWriter* w2, const std::vector<int64_t>& inner) {
              PutI64s(w2, inner);
            });
  PutNestedDoubles(&w, st.num_sums);
  PutNestedDoubles(&w, st.cat_u2);
  PutNestedDoubles(&w, st.cat_uq);
  w.PutU8(st.use_snapshot ? 1 : 0);
  PutSizes(&w, st.proto_counts);
  PutDoubles(&w, st.proto_sums);
  PutDoubles(&w, st.proto_sum_norms);
  w.PutU8(st.track_bounds ? 1 : 0);
  PutDoubles(&w, st.drift);
  w.PutDouble(st.max_step_sum);
  PutNestedDoubles(&w, st.cat_rem_delta);
  PutNestedDoubles(&w, st.cat_ins_delta);
  PutDoubles(&w, st.fair_rem_bound);
  PutDoubles(&w, st.fair_ins_bound);
  w.PutDouble(st.ins_best);
  w.PutDouble(st.ins_second);
  w.PutU32(static_cast<uint32_t>(st.ins_best_cluster));
  w.PutDouble(st.addf_best);
  w.PutDouble(st.addf_second);
  w.PutU32(static_cast<uint32_t>(st.addf_best_cluster));
  return w.Release();
}

Status DecodeState(const std::string& payload, FairKMState::Checkpoint* st) {
  io::BinaryReader r(payload);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  FAIRKM_RETURN_NOT_OK(GetI32s(&r, &st->assignment));
  FAIRKM_RETURN_NOT_OK(GetSizes(&r, &st->counts));
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &st->sums));
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &st->sum_norms));
  FAIRKM_RETURN_NOT_OK(GetNested(
      &r, &st->cat_counts,
      [](io::BinaryReader* r2, std::vector<int64_t>* inner) {
        return GetI64s(r2, inner);
      }));
  FAIRKM_RETURN_NOT_OK(GetNestedDoubles(&r, &st->num_sums));
  FAIRKM_RETURN_NOT_OK(GetNestedDoubles(&r, &st->cat_u2));
  FAIRKM_RETURN_NOT_OK(GetNestedDoubles(&r, &st->cat_uq));
  FAIRKM_RETURN_NOT_OK(r.GetU8(&u8));
  st->use_snapshot = u8 != 0;
  FAIRKM_RETURN_NOT_OK(GetSizes(&r, &st->proto_counts));
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &st->proto_sums));
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &st->proto_sum_norms));
  FAIRKM_RETURN_NOT_OK(r.GetU8(&u8));
  st->track_bounds = u8 != 0;
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &st->drift));
  FAIRKM_RETURN_NOT_OK(r.GetDouble(&st->max_step_sum));
  FAIRKM_RETURN_NOT_OK(GetNestedDoubles(&r, &st->cat_rem_delta));
  FAIRKM_RETURN_NOT_OK(GetNestedDoubles(&r, &st->cat_ins_delta));
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &st->fair_rem_bound));
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &st->fair_ins_bound));
  FAIRKM_RETURN_NOT_OK(r.GetDouble(&st->ins_best));
  FAIRKM_RETURN_NOT_OK(r.GetDouble(&st->ins_second));
  FAIRKM_RETURN_NOT_OK(r.GetU32(&u32));
  st->ins_best_cluster = static_cast<int>(u32);
  FAIRKM_RETURN_NOT_OK(r.GetDouble(&st->addf_best));
  FAIRKM_RETURN_NOT_OK(r.GetDouble(&st->addf_second));
  FAIRKM_RETURN_NOT_OK(r.GetU32(&u32));
  st->addf_best_cluster = static_cast<int>(u32);
  return r.ExpectFullyConsumed();
}

std::string EncodePruner(const SweepPruner::Checkpoint& pr) {
  io::BinaryWriter w;
  PutDoubles(&w, pr.lb0);
  PutDoubles(&w, pr.drift_ref);
  PutDoubles(&w, pr.lbmin0);
  PutDoubles(&w, pr.max_drift_ref);
  PutBytes8(&w, pr.fresh);
  return w.Release();
}

Status DecodePruner(const std::string& payload, SweepPruner::Checkpoint* pr) {
  io::BinaryReader r(payload);
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &pr->lb0));
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &pr->drift_ref));
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &pr->lbmin0));
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &pr->max_drift_ref));
  FAIRKM_RETURN_NOT_OK(GetBytes8(&r, &pr->fresh));
  return r.ExpectFullyConsumed();
}

/// Payload parse failures are corruption from the caller's view, but the
/// parser can also return kDataLoss for reasons worth keeping; only rewrap
/// codes that are not already in the corruption family.
Status AsDataLoss(Status st, const char* what, const std::string& path) {
  if (st.ok() || st.code() == StatusCode::kDataLoss) return st;
  return Status::DataLoss(std::string(what) + " section unreadable in " +
                          path + ": " + st.ToString());
}

}  // namespace

Status WriteSolverCheckpoint(const std::string& path,
                             const SolverCheckpoint& cp) {
  std::vector<io::Section> sections;
  sections.push_back({kSectionMeta, EncodeMeta(cp)});
  sections.push_back({kSectionState, EncodeState(cp.state)});
  if (cp.has_pruner) {
    sections.push_back({kSectionPruner, EncodePruner(cp.pruner)});
  }
  return io::WriteSectionFile(path, kMagic, kFormatVersion, sections,
                              kFaultScope);
}

Result<SolverCheckpoint> ReadSolverCheckpoint(const std::string& path) {
  FAIRKM_ASSIGN_OR_RETURN(
      io::SectionFile file,
      io::ReadSectionFile(path, kMagic, kFormatVersion, kFaultScope));
  SolverCheckpoint cp;
  const io::Section* meta = file.Find(kSectionMeta);
  const io::Section* state = file.Find(kSectionState);
  if (meta == nullptr || state == nullptr) {
    return Status::DataLoss("checkpoint misses a required section: " + path);
  }
  FAIRKM_RETURN_NOT_OK(AsDataLoss(DecodeMeta(meta->payload, &cp), "meta",
                                  path));
  FAIRKM_RETURN_NOT_OK(
      AsDataLoss(DecodeState(state->payload, &cp.state), "state", path));
  if (cp.has_pruner) {
    const io::Section* pruner = file.Find(kSectionPruner);
    if (pruner == nullptr) {
      return Status::DataLoss("checkpoint misses its pruner section: " + path);
    }
    FAIRKM_RETURN_NOT_OK(
        AsDataLoss(DecodePruner(pruner->payload, &cp.pruner), "pruner", path));
  }
  return cp;
}

std::string CheckpointFileName(int sweeps_completed) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%08d.fkmc", sweeps_completed);
  return buf;
}

Result<std::vector<std::string>> ListCheckpointFiles(const std::string& dir) {
  FAIRKM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          io::ListDirectory(dir));
  std::vector<std::string> out;
  for (const std::string& name : names) {
    if (name.size() == std::strlen("ckpt-00000000.fkmc") &&
        name.rfind("ckpt-", 0) == 0 &&
        name.compare(name.size() - 5, 5, ".fkmc") == 0) {
      out.push_back(name);
    }
  }
  return out;  // ListDirectory sorts; fixed-width names sort chronologically.
}

Status QuarantineCheckpoint(const std::string& path) {
  const std::string quarantined = path + ".corrupt";
  if (::rename(path.c_str(), quarantined.c_str()) != 0) {
    if (errno == ENOENT) return Status::OK();  // already gone
    return Status::IOError("quarantine rename " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status PruneCheckpointDir(const std::string& dir, int keep) {
  if (keep < 1) keep = 1;
  FAIRKM_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          ListCheckpointFiles(dir));
  Status first_error;
  for (size_t i = 0; i + static_cast<size_t>(keep) < names.size(); ++i) {
    Status st = io::RemoveFile(dir + "/" + names[i]);
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

}  // namespace core
}  // namespace fairkm
