// Quickstart: build a small dataset in code, run FairKM, inspect the output.
//
//   $ ./examples/quickstart
//
// The dataset has two numeric task attributes forming two obvious spatial
// groups, and one binary sensitive attribute ("group") that is correlated
// with the geometry. Plain K-Means therefore produces demographically pure
// clusters; FairKM produces clusters whose group mix matches the dataset.

#include <cstdio>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "core/fairkm.h"
#include "data/dataset.h"
#include "data/sensitive.h"
#include "metrics/fairness.h"

using namespace fairkm;

int main() {
  // --- 1. Build a dataset --------------------------------------------------
  Rng rng(7);
  data::Dataset dataset;
  std::vector<double> x, y;
  std::vector<int32_t> group;
  for (int i = 0; i < 200; ++i) {
    const bool right = i % 2 == 1;
    x.push_back((right ? 4.0 : 0.0) + rng.Normal(0, 0.8));
    y.push_back(rng.Normal(0, 0.8));
    // Group membership leans 85/15 with the spatial side: the geometry leaks
    // the sensitive attribute.
    group.push_back(rng.Bernoulli(0.85) == right ? 1 : 0);
  }
  dataset.AddNumeric("x", std::move(x)).Abort();
  dataset.AddNumeric("y", std::move(y)).Abort();
  dataset.AddCategorical("group", std::move(group), {"A", "B"}).Abort();

  data::Matrix features = dataset.ToMatrix({"x", "y"}).ValueOrDie();
  data::SensitiveView sensitive =
      data::MakeSensitiveView(dataset, {"group"}).ValueOrDie();

  // --- 2. Cluster: blind K-Means vs FairKM ---------------------------------
  const int k = 2;
  cluster::KMeansOptions kmeans_options;
  kmeans_options.k = k;
  Rng kmeans_rng(1);
  auto blind = cluster::RunKMeans(features, kmeans_options, &kmeans_rng).ValueOrDie();

  core::FairKMOptions fair_options;
  fair_options.k = k;  // lambda < 0 -> the paper's (n/k)^2 heuristic.
  Rng fair_rng(1);
  auto fair = core::RunFairKM(features, sensitive, fair_options, &fair_rng)
                  .ValueOrDie();

  // --- 3. Compare ----------------------------------------------------------
  auto report = [&](const char* name, const cluster::Assignment& assignment,
                    double sse) {
    auto fairness = metrics::EvaluateFairness(sensitive, assignment, k);
    std::printf("%-10s  SSE = %7.2f   AE = %.4f   (dataset group mix %.0f/%.0f)\n",
                name, sse, fairness.mean.ae,
                100 * sensitive.categorical[0].dataset_fractions[0],
                100 * sensitive.categorical[0].dataset_fractions[1]);
    for (int c = 0; c < k; ++c) {
      size_t total = 0, a = 0;
      for (size_t i = 0; i < assignment.size(); ++i) {
        if (assignment[i] != c) continue;
        ++total;
        if (sensitive.categorical[0].codes[i] == 0) ++a;
      }
      std::printf("    cluster %d: %3zu points, group mix %.0f/%.0f\n", c, total,
                  total ? 100.0 * a / total : 0.0,
                  total ? 100.0 * (total - a) / total : 0.0);
    }
  };
  std::printf("FairKM quickstart (n = 200, k = 2, lambda = %.0f)\n\n",
              fair.lambda_used);
  report("K-Means", blind.assignment, blind.kmeans_objective);
  report("FairKM", fair.assignment, fair.kmeans_objective);
  std::printf(
      "\nFairKM trades a little SSE for cluster group mixes that mirror the\n"
      "dataset. Tune the trade-off with FairKMOptions::lambda.\n");
  return 0;
}
