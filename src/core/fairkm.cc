#include "core/fairkm.h"

#include "core/solver.h"

namespace fairkm {
namespace core {

double SuggestLambda(size_t num_rows, int k) {
  FAIRKM_DCHECK(k > 0);
  const double ratio = static_cast<double>(num_rows) / static_cast<double>(k);
  return ratio * ratio;
}

// Compatibility wrapper: one blocking run of the FairKMSolver session
// (core/solver.h), which owns the Algorithm-1 sweep engine. Equal inputs and
// rng draws yield trajectories bit-identical to the historical in-place
// implementation.
Result<FairKMResult> RunFairKM(const data::Matrix& points,
                               const data::SensitiveView& sensitive,
                               const FairKMOptions& options, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  FAIRKM_ASSIGN_OR_RETURN(FairKMSolver solver,
                          FairKMSolver::Create(&points, &sensitive, options));
  FAIRKM_RETURN_NOT_OK(solver.Init(rng));
  FAIRKM_ASSIGN_OR_RETURN(RunStop stop, solver.Run());
  (void)stop;  // Converged or hit max_iterations; both finalize below.
  return solver.CurrentResult();
}

}  // namespace core
}  // namespace fairkm
