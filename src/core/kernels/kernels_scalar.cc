// Scalar reference backend. Compiled for the baseline ISA with
// -ffp-contract=off (see src/CMakeLists.txt): Dot/Gemv keep the exact
// sequential accumulation the PR-2 kernels used, and CatMoments uses the
// 4-lane blocked order that the AVX2 backend reproduces bit-for-bit.

#include "core/kernels/kernels.h"

namespace fairkm {
namespace core {
namespace kernels {
namespace {

double DotScalar(const double* a, const double* b, size_t n) {
  double total = 0.0;
  for (size_t j = 0; j < n; ++j) total += a[j] * b[j];
  return total;
}

void GemvScalar(const double* x, const double* mat, size_t rows, size_t cols,
                double* out) {
  const double* row = mat;
  for (size_t r = 0; r < rows; ++r, row += cols) {
    out[r] = DotScalar(x, row, cols);
  }
}

// The scalar backend has no alignment to exploit; the aligned entry point is
// the plain GEMV. (The padded trailing zeros contribute exact 0.0 terms, so
// the result matches an unpadded evaluation bit for bit.)
void GemvAlignedScalar(const double* x, const double* mat, size_t rows,
                       size_t cols, double* out) {
  GemvScalar(x, mat, rows, cols, out);
}

// 4-lane blocked accumulation with the ((l0+l2)+(l1+l3))+tail reduction —
// the exact operation sequence the AVX2 backend performs with vector lanes,
// element-wise IEEE mul/add only. Keep the two implementations in lockstep:
// tests/simd_kernels_test.cc asserts bit-for-bit equality.
void CatMomentsScalar(const int64_t* counts, const double* fractions, size_t m,
                      double size, double* u2, double* uq) {
  double u2l[4] = {0.0, 0.0, 0.0, 0.0};
  double uql[4] = {0.0, 0.0, 0.0, 0.0};
  size_t s = 0;
  for (; s + 4 <= m; s += 4) {
    for (int l = 0; l < 4; ++l) {
      const double q = fractions[s + static_cast<size_t>(l)];
      const double u =
          static_cast<double>(counts[s + static_cast<size_t>(l)]) - size * q;
      u2l[l] += u * u;
      uql[l] += u * q;
    }
  }
  double u2_tail = 0.0, uq_tail = 0.0;
  for (; s < m; ++s) {
    const double q = fractions[s];
    const double u = static_cast<double>(counts[s]) - size * q;
    u2_tail += u * u;
    uq_tail += u * q;
  }
  *u2 = ((u2l[0] + u2l[2]) + (u2l[1] + u2l[3])) + u2_tail;
  *uq = ((uql[0] + uql[2]) + (uql[1] + uql[3])) + uq_tail;
}

// Pruning-engine delta tables. Strictly elementwise (one mul/add sequence
// per value, no accumulation), so the AVX2 backend reproduces every entry —
// and therefore every min — bit for bit.
void CatDeltaBoundsScalar(const int64_t* counts, const double* fractions,
                          size_t m, double size, double u2, double uq,
                          double q2, double scale_before,
                          double scale_rem_after, double scale_ins_after,
                          double* rem, double* ins, double* rem_min,
                          double* ins_min) {
  const double base = u2 + q2 + 1.0;
  const double before = scale_before * u2;
  double rmin = 0.0, imin = 0.0;
  for (size_t v = 0; v < m; ++v) {
    const double q = fractions[v];
    const double u = static_cast<double>(counts[v]) - size * q;
    const double r = scale_rem_after * (base + 2.0 * (uq - u - q)) - before;
    const double s = scale_ins_after * (base - 2.0 * (uq - u + q)) - before;
    rem[v] = r;
    ins[v] = s;
    if (v == 0 || r < rmin) rmin = r;
    if (v == 0 || s < imin) imin = s;
  }
  *rem_min = rmin;
  *ins_min = imin;
}

const Backend kScalarBackend = {"scalar",         DotScalar,
                                GemvScalar,       GemvAlignedScalar,
                                CatMomentsScalar, CatDeltaBoundsScalar};

}  // namespace

const Backend& ScalarBackend() { return kScalarBackend; }

}  // namespace kernels
}  // namespace core
}  // namespace fairkm
