// The out-of-core contract, measured: a dataset streamed to an mmap-backed
// store and swept through core::ShardedSweep must complete with the process
// resident set WELL below the dataset footprint — the rows live in the page
// cache and fully-swept shards hand their pages back, so scaling n is a disk
// problem, not a RAM problem.
//
// The dataset never exists as an in-process Matrix here: rows are generated
// on the fly and streamed through PointStore::FileWriter, exactly like the
// tools/sharded_scaling harness that produced the BENCH_scaling.json curve.
//
// Sizing: 1M rows x 32 features by default (256 MiB of padded row data),
// overridable with FAIRKM_RSS_TEST_ROWS for a laptop quick pass or a
// full-scale 10M soak. The RSS ceiling asserts only when the dataset is
// >= 128 MiB (below that, fixed per-run overhead dominates and the ratio is
// meaningless) and when /proc reports VmHWM at all. Pruning stays off: its
// per-point bound arrays are O(n k) heap, which is the one part of the
// session that does NOT stay out of core.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/proc_stats.h"
#include "common/rng.h"
#include "core/sharded_sweep.h"
#include "core/solver.h"
#include "data/point_store.h"
#include "data/sensitive.h"
#include "test_util.h"

namespace fairkm {
namespace core {
namespace {

size_t RowsFromEnv() {
  const char* env = std::getenv("FAIRKM_RSS_TEST_ROWS");
  if (env != nullptr && *env != '\0') {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 1000000;
}

TEST(ShardedRssTest, TenXDatasetSweepsWithBoundedResidentSet) {
  const size_t n = RowsFromEnv();
  const size_t d = 32;
  const int k = 8;
  const int kCardinality = 3;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "fairkm_sharded_rss").string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  const std::string path = dir + "/points.fkps";

  // Stream synthetic blob rows straight to disk; peak in-process state is
  // one row buffer.
  Rng rng(7);
  std::vector<int32_t> codes(n);
  {
    auto writer =
        data::PointStore::FileWriter::Start(path, n, d).ValueOrDie();
    std::vector<double> row(d);
    for (size_t i = 0; i < n; ++i) {
      const double center = static_cast<double>(i % k) * 3.0;
      for (size_t c = 0; c < d; ++c) {
        row[c] = center + rng.Normal(0.0, 0.5);
      }
      ASSERT_TRUE(writer.Append(row.data()).ok()) << "row " << i;
      codes[i] = static_cast<int32_t>(
          rng.UniformInt(static_cast<uint64_t>(kCardinality)));
    }
    ASSERT_TRUE(writer.Finish().ok());
  }

  // Open's verification walk is itself RSS-bounded (it evicts behind its
  // CRC cursor), so the peak below covers it too.
  const auto store = data::PointStore::Open(path).ValueOrDie();
  ASSERT_EQ(store->rows(), n);
  const size_t dataset_bytes = store->data_bytes();

  const data::SensitiveView sensitive = testutil::MakeView(
      {testutil::MakeCategorical(codes, kCardinality, "group")});

  FairKMOptions options;
  options.k = k;
  options.lambda = -1.0;
  options.max_iterations = 2;
  options.minibatch_size = 8192;
  options.sweep_mode = SweepMode::kParallelSnapshot;
  options.num_threads = 2;
  options.enable_pruning = false;  // O(n k) bound arrays would defeat the test.

  ShardedSweep sweep =
      ShardedSweep::Create(store, &sensitive, options, 16).ValueOrDie();
  ASSERT_TRUE(sweep.Init(uint64_t{11}).ok());
  RunBudget budget;
  budget.max_sweeps = 2;
  ASSERT_TRUE(sweep.Run(budget).ok());

  EXPECT_GT(sweep.stats().evictions, 0u);
  EXPECT_EQ(sweep.stats().shard_rows % 8192, 0u);
  const FairKMResult result = sweep.solver().CurrentResult().ValueOrDie();
  EXPECT_GT(result.total_objective, 0.0);

  const size_t peak_rss = PeakRssBytes();
  if (dataset_bytes >= (size_t{128} << 20) && peak_rss > 0) {
    EXPECT_LT(peak_rss, dataset_bytes * 3 / 4)
        << "resident set not bounded: peak " << (peak_rss >> 20)
        << " MiB against a " << (dataset_bytes >> 20) << " MiB dataset";
  } else {
    GTEST_LOG_(INFO) << "dataset " << (dataset_bytes >> 20)
                     << " MiB too small (or no VmHWM) for the RSS ceiling; "
                        "trajectory checks only";
  }

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace core
}  // namespace fairkm
