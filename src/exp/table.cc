#include "exp/table.h"

#include <cmath>
#include <cstdio>

#include "common/status.h"
#include "common/string_util.h"

namespace fairkm {
namespace exp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  FAIRKM_DCHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t j = 0; j < header_.size(); ++j) widths[j] = header_[j].size();
  for (const auto& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t j = 0; j < header_.size(); ++j) {
      const std::string& cell = j < row.size() ? row[j] : "";
      line += " ";
      // First column left-aligned (labels), the rest right-aligned (numbers).
      line += j == 0 ? PadRight(cell, widths[j]) : PadLeft(cell, widths[j]);
      line += " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t j = 0; j < header_.size(); ++j) {
    sep += std::string(widths[j] + 2, '-') + "+";
  }
  sep += "\n";

  std::string out = sep + render_row(header_) + sep;
  bool last_was_separator = true;  // Collapse a leading/trailing separator.
  for (const auto& row : rows_) {
    if (row.empty()) {
      if (!last_was_separator) out += sep;
      last_was_separator = true;
    } else {
      out += render_row(row);
      last_was_separator = false;
    }
  }
  if (!last_was_separator) out += sep;
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Cell(double value, int precision) {
  if (std::isnan(value)) return "-";
  return FormatDouble(value, precision);
}

std::string PercentCell(double fraction, int precision) {
  if (std::isnan(fraction)) return "-";
  return FormatDouble(fraction * 100.0, precision) + "%";
}

std::string MillisCell(double seconds, int precision) {
  if (std::isnan(seconds)) return "-";
  return FormatDouble(seconds * 1e3, precision) + " ms";
}

}  // namespace exp
}  // namespace fairkm
