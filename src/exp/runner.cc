#include "exp/runner.h"

#include <algorithm>
#include <optional>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/solver.h"
#include "exp/table.h"

namespace fairkm {
namespace exp {

std::string MethodName(Method method) {
  switch (method) {
    case Method::kKMeansBlind:
      return "K-Means(N)";
    case Method::kFairKMAll:
      return "FairKM";
    case Method::kFairKMSingle:
      return "FairKM(S)";
    case Method::kZgyaSingle:
      return "ZGYA(S)";
    case Method::kZgyaHard:
      return "ZGYA-hard(S)";
  }
  return "unknown";
}

const FairnessAggregate& AggregateOutcome::FairnessOf(
    const std::string& attribute) const {
  static const FairnessAggregate kEmpty;
  auto it = fairness.find(attribute);
  return it == fairness.end() ? kEmpty : it->second;
}

std::string PerfSummary(const AggregateOutcome& agg) {
  return "sweep " + MillisCell(agg.sweep_seconds.mean()) + "/run, " +
         PercentCell(agg.pruned_fraction.mean()) + " of candidates pruned (" +
         std::to_string(agg.total_runs) + " runs)";
}

ExperimentRunner::ExperimentRunner(const ExperimentData* data, size_t num_threads)
    : data_(data), num_threads_(num_threads == 0 ? 1 : num_threads) {}

namespace {

// The ONE definition of the S-blind reference configuration. Both the
// DevC/DevO reference run and the kKMeansBlind method session build from it,
// which is what keeps the blind method's deviation from its own same-seed
// reference exactly zero.
cluster::KMeansOptions BlindReferenceOptions(int k) {
  cluster::KMeansOptions options;
  options.k = k;
  options.init = cluster::KMeansInit::kRandomAssignment;
  options.max_iterations = 100;
  return options;
}

}  // namespace

Result<cluster::ClusteringResult> ExperimentRunner::RunBlindReference(
    int k, uint64_t seed) const {
  Rng rng(seed);
  return cluster::RunKMeans(data_->features, BlindReferenceOptions(k), &rng);
}

Result<MethodSession> ExperimentRunner::MakeSession(
    const RunConfig& config) const {
  MethodSession session;
  switch (config.method) {
    case Method::kKMeansBlind: {
      const cluster::KMeansOptions blind =
          BlindReferenceOptions(config.fairkm.k);
      cluster::ClustererOptions options;
      options.k = blind.k;
      options.max_iterations = blind.max_iterations;
      options.init = blind.init;
      FAIRKM_ASSIGN_OR_RETURN(session.clusterer,
                              cluster::CreateClusterer("kmeans", options));
      return session;
    }
    case Method::kFairKMAll:
      session.clusterer = core::MakeFairKMClusterer(config.fairkm);
      return session;
    case Method::kFairKMSingle:
      session.clusterer =
          core::MakeFairKMClusterer(config.fairkm, config.single_attribute);
      return session;
    case Method::kZgyaSingle:
    case Method::kZgyaHard: {
      cluster::ClustererOptions options;
      options.k = config.fairkm.k;
      options.lambda = config.zgya_lambda;
      options.max_iterations = config.fairkm.max_iterations;
      options.attribute = config.single_attribute;
      options.soft_temperature = config.zgya_soft_temperature;
      FAIRKM_ASSIGN_OR_RETURN(
          session.clusterer,
          cluster::CreateClusterer(
              config.method == Method::kZgyaHard ? "zgya-hard" : "zgya",
              options));
      return session;
    }
  }
  return Status::InvalidArgument("unknown method");
}

Status ExperimentRunner::RunMethod(uint64_t seed, MethodSession* session,
                                   SeedOutcome* outcome) const {
  Rng rng(seed);
  FAIRKM_ASSIGN_OR_RETURN(
      cluster::ClusteringResult result,
      session->clusterer->Cluster(data_->features, data_->sensitive, &rng));
  outcome->iterations = result.iterations;
  outcome->converged = result.converged;
  outcome->sweep_seconds = result.sweep_seconds;
  outcome->pruned_fraction = result.pruned_fraction;
  outcome->assignment = std::move(result.assignment);
  return Status::OK();
}

Result<SeedOutcome> ExperimentRunner::RunSeed(const RunConfig& config,
                                              uint64_t seed) const {
  FAIRKM_ASSIGN_OR_RETURN(MethodSession session, MakeSession(config));
  return RunSeed(config, seed, &session);
}

Result<SeedOutcome> ExperimentRunner::RunSeed(const RunConfig& config,
                                              uint64_t seed,
                                              MethodSession* session) const {
  if (session == nullptr || session->clusterer == nullptr) {
    return Status::InvalidArgument("session not built: use MakeSession");
  }
  SeedOutcome outcome;
  Timer timer;
  FAIRKM_RETURN_NOT_OK(RunMethod(seed, session, &outcome));
  outcome.seconds = timer.ElapsedSeconds();
  FAIRKM_RETURN_NOT_OK(FillMeasurements(config, seed, &outcome));
  return outcome;
}

Status ExperimentRunner::FillMeasurements(const RunConfig& config,
                                          uint64_t seed,
                                          SeedOutcome* outcome) const {
  const int k = config.fairkm.k;
  outcome->co = metrics::ClusteringObjective(data_->features, outcome->assignment, k);
  metrics::SilhouetteOptions sil;
  sil.seed = seed ^ 0x51L;
  outcome->sh = metrics::SilhouetteScore(data_->features, outcome->assignment, k, sil);

  FAIRKM_ASSIGN_OR_RETURN(cluster::ClusteringResult reference,
                          RunBlindReference(k, seed));
  data::Matrix centroids =
      cluster::ComputeCentroids(data_->features, outcome->assignment, k);
  FAIRKM_ASSIGN_OR_RETURN(outcome->devc,
                          metrics::CentroidDeviation(centroids, reference.centroids));
  FAIRKM_ASSIGN_OR_RETURN(
      outcome->devo,
      metrics::ObjectPairDeviation(outcome->assignment, k, reference.assignment, k));

  outcome->fairness = metrics::EvaluateFairness(data_->sensitive, outcome->assignment, k);
  return Status::OK();
}

Result<SupervisedSeedOutcome> ExperimentRunner::RunSupervisedSeed(
    const RunConfig& config, uint64_t seed,
    const core::SupervisorPolicy& policy,
    const data::PointStoreSpec& store_spec) const {
  if (config.method != Method::kFairKMAll) {
    return Status::InvalidArgument(
        "supervised runs drive FairKM over the full sensitive view "
        "(method kFairKMAll)");
  }
  FAIRKM_ASSIGN_OR_RETURN(
      core::SupervisedRunner runner,
      core::SupervisedRunner::Create(&data_->features, &data_->sensitive,
                                     config.fairkm, store_spec, policy));
  SupervisedSeedOutcome supervised;
  Timer timer;
  FAIRKM_ASSIGN_OR_RETURN(supervised.stop, runner.Run(seed));
  supervised.outcome.seconds = timer.ElapsedSeconds();
  supervised.supervisor = runner.stats();

  FAIRKM_ASSIGN_OR_RETURN(core::FairKMResult result, runner.CurrentResult());
  supervised.outcome.assignment = std::move(result.assignment);
  supervised.outcome.iterations = result.iterations;
  supervised.outcome.converged = result.converged;
  supervised.outcome.sweep_seconds = result.sweep_seconds;
  supervised.outcome.pruned_fraction = result.PrunedFraction();
  FAIRKM_RETURN_NOT_OK(FillMeasurements(config, seed, &supervised.outcome));
  return supervised;
}

Result<AggregateOutcome> ExperimentRunner::Run(const RunConfig& config,
                                               size_t num_seeds,
                                               uint64_t base_seed) const {
  if (num_seeds == 0) return Status::InvalidArgument("num_seeds must be positive");
  std::vector<std::optional<SeedOutcome>> outcomes(num_seeds);
  std::vector<Status> statuses(num_seeds, Status::OK());

  if (num_threads_ == 1) {
    // Serial: one shared session drives every seed — the FairKM solver
    // inside is allocation-free after the first seed (tentpole of the
    // session API; BM_FairKM_MultiSeed_* quantifies the win).
    FAIRKM_ASSIGN_OR_RETURN(MethodSession session, MakeSession(config));
    for (size_t s = 0; s < num_seeds; ++s) {
      Result<SeedOutcome> r = RunSeed(config, base_seed + s, &session);
      if (r.ok()) {
        outcomes[s] = std::move(r).ValueOrDie();
      } else {
        statuses[s] = r.status();
      }
    }
  } else {
    // Seed-parallel session pool: sessions are not thread-safe, but they ARE
    // reusable — so instead of a cold session per seed, build ONE session
    // per worker up front and give each worker a contiguous chunk of seeds
    // to drive through its own warm session. Every seed past a worker's
    // first gets the serial path's allocation-free solver reuse; outcomes
    // stay indexed by seed, so aggregation order (and therefore the
    // aggregate) is deterministic regardless of scheduling.
    const size_t workers = std::min(num_threads_, num_seeds);
    std::vector<MethodSession> sessions;
    sessions.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      FAIRKM_ASSIGN_OR_RETURN(MethodSession session, MakeSession(config));
      sessions.push_back(std::move(session));
    }
    const size_t chunk = (num_seeds + workers - 1) / workers;
    ThreadPool pool(workers);
    for (size_t w = 0; w < workers; ++w) {
      const size_t lo = w * chunk;
      const size_t hi = std::min(num_seeds, lo + chunk);
      if (lo >= hi) break;
      pool.Submit([this, &config, base_seed, &outcomes, &statuses, &sessions,
                   w, lo, hi] {
        for (size_t s = lo; s < hi; ++s) {
          Result<SeedOutcome> r = RunSeed(config, base_seed + s, &sessions[w]);
          if (r.ok()) {
            outcomes[s] = std::move(r).ValueOrDie();
          } else {
            statuses[s] = r.status();
          }
        }
      });
    }
    pool.Wait();
  }
  for (size_t s = 0; s < num_seeds; ++s) {
    const Status& st = statuses[s];
    if (!st.ok()) {
      // Surface WHICH seed of the aggregate failed — a multi-seed protocol
      // is undiagnosable from the bare per-seed message alone.
      return Status(st.code(), "seed " + std::to_string(base_seed + s) +
                                   " (index " + std::to_string(s) + " of " +
                                   std::to_string(num_seeds) +
                                   ") failed: " + st.message());
    }
  }

  AggregateOutcome agg;
  agg.total_runs = num_seeds;
  for (size_t s = 0; s < num_seeds; ++s) {
    const SeedOutcome& o = *outcomes[s];
    agg.co.Add(o.co);
    agg.sh.Add(o.sh);
    agg.devc.Add(o.devc);
    agg.devo.Add(o.devo);
    agg.seconds.Add(o.seconds);
    agg.iterations.Add(static_cast<double>(o.iterations));
    agg.sweep_seconds.Add(o.sweep_seconds);
    agg.pruned_fraction.Add(o.pruned_fraction);
    if (o.converged) ++agg.converged_runs;
    for (const auto& attr : o.fairness.per_attribute) {
      FairnessAggregate& fa = agg.fairness[attr.attribute];
      fa.ae.Add(attr.ae);
      fa.aw.Add(attr.aw);
      fa.me.Add(attr.me);
      fa.mw.Add(attr.mw);
    }
    FairnessAggregate& mean = agg.fairness["mean"];
    mean.ae.Add(o.fairness.mean.ae);
    mean.aw.Add(o.fairness.mean.aw);
    mean.me.Add(o.fairness.mean.me);
    mean.mw.Add(o.fairness.mean.mw);
  }
  return agg;
}

}  // namespace exp
}  // namespace fairkm
