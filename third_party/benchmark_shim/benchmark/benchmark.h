// Minimal vendored fallback for the Google Benchmark API surface the fairkm
// benches use. Built only when find_package(benchmark) fails (see
// bench/CMakeLists.txt), so bench_scaling always configures, builds and can
// emit BENCH_scaling.json regardless of what the host has installed.
//
// Supported subset:
//   * BENCHMARK(fn) with ->Arg(v) / ->Args({...}) / ->Unit(u) / ->Complexity()
//   * BENCHMARK_MAIN()
//   * State: range-for iteration, range(i), SetComplexityN, and the
//     `state.counters["name"] = value` user-counter subset (emitted as
//     top-level numeric fields of each JSON benchmark entry, matching the
//     real library's layout that tools/bench_json.sh gates on)
//   * DoNotOptimize / ClobberMemory
//   * flags: --benchmark_filter=<substring-or-regex>,
//            --benchmark_out=<file>, --benchmark_out_format=json|console,
//            --benchmark_min_time=<seconds>[s], --benchmark_list_tests
//   * JSON output schema-compatible with real google-benchmark's
//     {"context": ..., "benchmarks": [...]} layout (the fields
//     tools/bench_json.sh reads).
//
// Timing: each variant is re-run with geometrically growing iteration counts
// until the measured loop exceeds the min time (default 0.2 s), like the real
// library's adaptive runner, then per-iteration real/cpu time is reported.

#ifndef FAIRKM_THIRD_PARTY_BENCHMARK_SHIM_BENCHMARK_H_
#define FAIRKM_THIRD_PARTY_BENCHMARK_SHIM_BENCHMARK_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

enum BigO { oAuto, o1, oN, oNSquared, oNCubed, oLogN, oNLogN };

/// \brief Per-run state handed to the benchmark function.
class State {
 public:
  State(int64_t max_iterations, std::vector<int64_t> args)
      : max_iterations_(max_iterations), args_(std::move(args)) {}

  int64_t range(size_t i = 0) const { return args_.at(i); }
  void SetComplexityN(int64_t n) { complexity_n_ = n; }
  int64_t complexity_n() const { return complexity_n_; }
  int64_t iterations() const { return max_iterations_; }

  // Range-for protocol: `for (auto _ : state)` runs the timed loop. The
  // timer starts when iteration begins and stops when it completes.
  struct Iterator {
    State* state;
    int64_t remaining;

    bool operator!=(const Iterator& other) const {
      if (remaining != 0) return true;
      state->StopTimer();
      (void)other;
      return false;
    }
    Iterator& operator++() {
      --remaining;
      return *this;
    }
    int operator*() const { return 0; }
  };

  Iterator begin() {
    StartTimer();
    return Iterator{this, max_iterations_};
  }
  Iterator end() { return Iterator{this, 0}; }

  double elapsed_real_seconds() const { return real_elapsed_; }
  double elapsed_cpu_seconds() const { return cpu_elapsed_; }

  /// User counters: `state.counters["x"] = v` like the real library (which
  /// uses an implicit Counter wrapper; plain doubles cover the fairkm usage).
  std::map<std::string, double> counters;

 private:
  void StartTimer();
  void StopTimer();

  int64_t max_iterations_;
  std::vector<int64_t> args_;
  int64_t complexity_n_ = 0;
  double real_start_ = 0.0, real_elapsed_ = 0.0;
  double cpu_start_ = 0.0, cpu_elapsed_ = 0.0;
};

using Function = void (*)(State&);

/// \brief One registered benchmark; fluent setters mirror google-benchmark.
class Benchmark {
 public:
  Benchmark(std::string name, Function fn) : name_(std::move(name)), fn_(fn) {}

  Benchmark* Arg(int64_t value) {
    args_sets_.push_back({value});
    return this;
  }
  Benchmark* Args(std::initializer_list<int64_t> values) {
    args_sets_.emplace_back(values);
    return this;
  }
  Benchmark* Unit(TimeUnit unit) {
    unit_ = unit;
    return this;
  }
  Benchmark* Complexity(BigO = oAuto) { return this; }
  Benchmark* Iterations(int64_t n) {
    fixed_iterations_ = n;
    return this;
  }

  const std::string& name() const { return name_; }
  Function fn() const { return fn_; }
  TimeUnit unit() const { return unit_; }
  int64_t fixed_iterations() const { return fixed_iterations_; }
  const std::vector<std::vector<int64_t>>& args_sets() const { return args_sets_; }

 private:
  std::string name_;
  Function fn_;
  TimeUnit unit_ = kNanosecond;
  int64_t fixed_iterations_ = 0;
  std::vector<std::vector<int64_t>> args_sets_;
};

/// \brief Registers a benchmark (called by the BENCHMARK macro).
Benchmark* RegisterBenchmark(const char* name, Function fn);

/// \brief Parses --benchmark_* flags (removing them from argv).
void Initialize(int* argc, char** argv);

/// \brief Runs every registered benchmark that passes the filter; returns the
/// number run.
size_t RunSpecifiedBenchmarks();

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "g"(value) : "memory");
}

inline void ClobberMemory() { asm volatile("" : : : "memory"); }

}  // namespace benchmark

#define BENCHMARK_SHIM_CONCAT2(a, b) a##b
#define BENCHMARK_SHIM_CONCAT(a, b) BENCHMARK_SHIM_CONCAT2(a, b)

#define BENCHMARK(fn)                                             \
  static ::benchmark::Benchmark* BENCHMARK_SHIM_CONCAT(           \
      benchmark_shim_reg_, __LINE__) [[maybe_unused]] =           \
      ::benchmark::RegisterBenchmark(#fn, fn)

#define BENCHMARK_MAIN()                        \
  int main(int argc, char** argv) {             \
    ::benchmark::Initialize(&argc, argv);       \
    ::benchmark::RunSpecifiedBenchmarks();      \
    return 0;                                   \
  }

#endif  // FAIRKM_THIRD_PARTY_BENCHMARK_SHIM_BENCHMARK_H_
