#include "serve/snapshot_io.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "common/io.h"
#include "core/solver.h"

namespace fairkm {
namespace serve {

namespace {

// 'FKMS' — distinct from the solver-checkpoint magic so the two file kinds
// cannot be confused for each other.
constexpr uint32_t kMagic = 0x464B4D53;
constexpr uint32_t kFormatVersion = 1;
constexpr char kFaultScope[] = "snapshot";

constexpr uint32_t kSectionModel = 1;

template <typename Vec>
void PutDoubles(io::BinaryWriter* w, const Vec& v) {
  w->PutVector(v, [w](double x) { w->PutDouble(x); });
}

template <typename Vec>
Status GetDoubles(io::BinaryReader* r, Vec* out) {
  size_t n = 0;
  FAIRKM_RETURN_NOT_OK(r->GetCount(sizeof(uint64_t), &n));
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    double x = 0.0;
    FAIRKM_RETURN_NOT_OK(r->GetDouble(&x));
    (*out)[i] = x;
  }
  return Status::OK();
}

template <typename Vec>
Status GetNestedDoubles(io::BinaryReader* r, Vec* out) {
  size_t n = 0;
  FAIRKM_RETURN_NOT_OK(r->GetCount(sizeof(uint64_t), &n));
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    FAIRKM_RETURN_NOT_OK(GetDoubles(r, &(*out)[i]));
  }
  return Status::OK();
}

std::string EncodeModel(const core::ModelExport& model, uint64_t version) {
  io::BinaryWriter w;
  w.PutU64(version);
  w.PutU64(model.num_rows);
  w.PutU64(model.d);
  w.PutU64(model.stride);
  w.PutU32(static_cast<uint32_t>(model.k));
  w.PutDouble(model.lambda);
  w.PutU8(model.config.normalize_domain ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(model.config.weighting));
  w.PutVector(model.counts, [&w](size_t c) { w.PutU64(c); });
  PutDoubles(&w, model.centroids);
  PutDoubles(&w, model.centroid_norms);
  w.PutVector(model.moments.cat_counts, [&w](const std::vector<int64_t>& v) {
    w.PutVector(v, [&w](int64_t x) { w.PutI64(x); });
  });
  w.PutVector(model.moments.cat_u2,
              [&w](const std::vector<double>& v) { PutDoubles(&w, v); });
  w.PutVector(model.moments.cat_uq,
              [&w](const std::vector<double>& v) { PutDoubles(&w, v); });
  PutDoubles(&w, model.moments.cat_q2);
  w.PutVector(model.moments.num_sums,
              [&w](const std::vector<double>& v) { PutDoubles(&w, v); });
  w.PutVector(model.categorical,
              [&w](const core::ModelExport::CategoricalAttr& a) {
                w.PutString(a.name);
                w.PutU32(static_cast<uint32_t>(a.cardinality));
                PutDoubles(&w, a.dataset_fractions);
                w.PutDouble(a.weight);
              });
  w.PutVector(model.numeric, [&w](const core::ModelExport::NumericAttr& a) {
    w.PutString(a.name);
    w.PutDouble(a.dataset_mean);
    w.PutDouble(a.weight);
  });
  return w.Release();
}

Status DecodeModel(const std::string& payload, core::ModelExport* model,
                   uint64_t* version) {
  io::BinaryReader r(payload);
  FAIRKM_RETURN_NOT_OK(r.GetU64(version));
  uint64_t u64 = 0;
  FAIRKM_RETURN_NOT_OK(r.GetU64(&u64));
  model->num_rows = static_cast<size_t>(u64);
  FAIRKM_RETURN_NOT_OK(r.GetU64(&u64));
  model->d = static_cast<size_t>(u64);
  FAIRKM_RETURN_NOT_OK(r.GetU64(&u64));
  model->stride = static_cast<size_t>(u64);
  uint32_t u32 = 0;
  FAIRKM_RETURN_NOT_OK(r.GetU32(&u32));
  model->k = static_cast<int>(u32);
  FAIRKM_RETURN_NOT_OK(r.GetDouble(&model->lambda));
  uint8_t u8 = 0;
  FAIRKM_RETURN_NOT_OK(r.GetU8(&u8));
  model->config.normalize_domain = (u8 != 0);
  FAIRKM_RETURN_NOT_OK(r.GetU32(&u32));
  if (u32 > static_cast<uint32_t>(core::ClusterWeighting::kUnweighted)) {
    return Status::DataLoss("unknown cluster-weighting value");
  }
  model->config.weighting = static_cast<core::ClusterWeighting>(u32);
  size_t n = 0;
  FAIRKM_RETURN_NOT_OK(r.GetCount(sizeof(uint64_t), &n));
  model->counts.resize(n);
  for (size_t i = 0; i < n; ++i) {
    FAIRKM_RETURN_NOT_OK(r.GetU64(&u64));
    model->counts[i] = static_cast<size_t>(u64);
  }
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &model->centroids));
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &model->centroid_norms));
  FAIRKM_RETURN_NOT_OK(r.GetCount(sizeof(uint64_t), &n));
  model->moments.cat_counts.resize(n);
  for (auto& v : model->moments.cat_counts) {
    size_t m = 0;
    FAIRKM_RETURN_NOT_OK(r.GetCount(sizeof(uint64_t), &m));
    v.resize(m);
    for (size_t i = 0; i < m; ++i) {
      FAIRKM_RETURN_NOT_OK(r.GetI64(&v[i]));
    }
  }
  FAIRKM_RETURN_NOT_OK(GetNestedDoubles(&r, &model->moments.cat_u2));
  FAIRKM_RETURN_NOT_OK(GetNestedDoubles(&r, &model->moments.cat_uq));
  FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &model->moments.cat_q2));
  FAIRKM_RETURN_NOT_OK(GetNestedDoubles(&r, &model->moments.num_sums));
  FAIRKM_RETURN_NOT_OK(r.GetCount(sizeof(uint64_t), &n));
  model->categorical.resize(n);
  for (auto& a : model->categorical) {
    FAIRKM_RETURN_NOT_OK(r.GetString(&a.name));
    FAIRKM_RETURN_NOT_OK(r.GetU32(&u32));
    a.cardinality = static_cast<int>(u32);
    FAIRKM_RETURN_NOT_OK(GetDoubles(&r, &a.dataset_fractions));
    FAIRKM_RETURN_NOT_OK(r.GetDouble(&a.weight));
  }
  FAIRKM_RETURN_NOT_OK(r.GetCount(sizeof(uint64_t), &n));
  model->numeric.resize(n);
  for (auto& a : model->numeric) {
    FAIRKM_RETURN_NOT_OK(r.GetString(&a.name));
    FAIRKM_RETURN_NOT_OK(r.GetDouble(&a.dataset_mean));
    FAIRKM_RETURN_NOT_OK(r.GetDouble(&a.weight));
  }
  return r.ExpectFullyConsumed();
}

}  // namespace

Status WriteModelSnapshot(const std::string& path,
                          const ModelSnapshot& snapshot) {
  std::vector<io::Section> sections(1);
  sections[0].tag = kSectionModel;
  sections[0].payload = EncodeModel(snapshot.model(), snapshot.version());
  return io::WriteSectionFile(path, kMagic, kFormatVersion, sections,
                              kFaultScope);
}

Result<std::shared_ptr<const ModelSnapshot>> ReadModelSnapshot(
    const std::string& path) {
  FAIRKM_ASSIGN_OR_RETURN(
      io::SectionFile file,
      io::ReadSectionFile(path, kMagic, kFormatVersion, kFaultScope));
  const io::Section* model_section = file.Find(kSectionModel);
  if (model_section == nullptr) {
    return Status::DataLoss("snapshot file has no model section: " + path);
  }
  core::ModelExport model;
  uint64_t version = 0;
  if (Status st = DecodeModel(model_section->payload, &model, &version);
      !st.ok()) {
    if (st.code() == StatusCode::kDataLoss) return st;
    return Status::DataLoss("snapshot payload does not parse (" +
                            st.ToString() + "): " + path);
  }
  return std::shared_ptr<const ModelSnapshot>(
      std::make_shared<ModelSnapshot>(std::move(model), version));
}

}  // namespace serve
}  // namespace fairkm
