#include "common/crc32.h"

#include <array>

namespace fairkm {
namespace {

// Slice-by-8 lookup tables for the reflected Castagnoli polynomial, built
// once at first use. Table 0 is the classic byte-at-a-time table; table t
// advances a byte that sits t positions deeper in the message.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78U;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (size_t slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xFF] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const auto& t = Tables().t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Bulk: 8 bytes per step, each byte through the table matching its depth.
  while (size >= 8) {
    const uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                               (static_cast<uint32_t>(p[1]) << 8) |
                               (static_cast<uint32_t>(p[2]) << 16) |
                               (static_cast<uint32_t>(p[3]) << 24));
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][(lo >> 24) & 0xFF] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^
          t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

}  // namespace fairkm
