// Small numerically-careful statistics helpers shared across the library.

#ifndef FAIRKM_COMMON_STATS_H_
#define FAIRKM_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace fairkm {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
///
/// Single pass, numerically stable, O(1) memory. Used for aggregating metric
/// values across experiment seeds.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// \brief Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// \brief Pools another accumulator into this one (Chan et al. merge).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// \brief Sample standard deviation (n-1); 0 with fewer than two values.
double StdDev(const std::vector<double>& values);

/// \brief Median (averages the middle pair for even sizes); 0 for empty input.
double Median(std::vector<double> values);

/// \brief Kahan-compensated sum.
double KahanSum(const std::vector<double>& values);

/// \brief True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool AlmostEqual(double a, double b, double abs_tol = 1e-9, double rel_tol = 1e-9);

}  // namespace fairkm

#endif  // FAIRKM_COMMON_STATS_H_
