// Distances between discrete probability distributions, and per-cluster
// sensitive-value distributions.

#ifndef FAIRKM_METRICS_DISTRIBUTION_H_
#define FAIRKM_METRICS_DISTRIBUTION_H_

#include <vector>

#include "cluster/types.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace metrics {

/// \brief Euclidean distance between two distribution vectors of equal size.
double EuclideanDistance(const std::vector<double>& p, const std::vector<double>& q);

/// \brief 1-Wasserstein (earth mover's) distance between two distributions
/// over the ordered support {0, 1, ..., t-1}: sum over the support of the
/// absolute CDF differences. This matches treating the categorical codes as
/// integer locations, as the paper's AW/MW measures do (§5.2.2).
double Wasserstein1(const std::vector<double>& p, const std::vector<double>& q);

/// \brief KL divergence KL(p || q) with zero-handling: p_i = 0 contributes 0;
/// q is floored at `eps` where p is positive.
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q,
                    double eps = 1e-12);

/// \brief Total variation distance 0.5 * L1.
double TotalVariation(const std::vector<double>& p, const std::vector<double>& q);

/// \brief Per-cluster distribution of a categorical attribute's values:
/// a k x cardinality matrix whose row c is C_S of the paper's §5.2.2 (zero
/// rows for empty clusters).
data::Matrix ClusterDistributions(const data::CategoricalSensitive& attr,
                                  const cluster::Assignment& assignment, int k);

/// \brief Exact 1-Wasserstein distance between two 1-D empirical samples
/// (integral of |F_a - F_b| over the merged support). Used by the numeric-
/// sensitive-attribute fairness extension.
double EmpiricalWasserstein1(std::vector<double> a, std::vector<double> b);

}  // namespace metrics
}  // namespace fairkm

#endif  // FAIRKM_METRICS_DISTRIBUTION_H_
