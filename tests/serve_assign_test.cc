// Serving-tier AssignBatch tests: the batched kernel path must pick
// bit-identical clusters to the scalar FairKMSolver::Assign oracle in every
// SweepMode x pruning x kernel-backend combination, and the snapshot /
// validation edge cases (ragged views, empty models, zero-row requests,
// scratch reuse) must behave exactly like the scalar path.

#include "serve/assign_batch.h"

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/fairkm.h"
#include "core/kernels/kernels.h"
#include "core/solver.h"
#include "serve/model_snapshot.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace serve {
namespace {

using core::FairKMOptions;
using core::FairKMSolver;
using core::SweepMode;
using testutil::MakeSeededWorld;
using testutil::SeededWorld;
using testutil::WorldSpec;

struct ModeParam {
  const char* name;
  int minibatch;
  SweepMode sweep;
  bool pruning;
};

const ModeParam kModes[] = {
    {"serial", 0, SweepMode::kSerial, true},
    {"serial-exact", 0, SweepMode::kSerial, false},
    {"minibatch", 16, SweepMode::kSerial, true},
    {"minibatch-exact", 16, SweepMode::kSerial, false},
    {"parallel", 16, SweepMode::kParallelSnapshot, true},
    {"parallel-exact", 16, SweepMode::kParallelSnapshot, false},
};

FairKMOptions OptionsFor(const ModeParam& mode) {
  FairKMOptions options;
  options.k = 3;
  options.lambda = 60.0;
  options.max_iterations = 12;
  options.minibatch_size = mode.minibatch;
  options.sweep_mode = mode.sweep;
  options.enable_pruning = mode.pruning;
  return options;
}

FairKMSolver MakeSolver(const SeededWorld& world, const FairKMOptions& options) {
  return FairKMSolver::Create(&world.points, &world.sensitive, options)
      .ValueOrDie();
}

// Restores kernel dispatch when a test pins the scalar backend.
struct BackendGuard {
  ~BackendGuard() { core::kernels::SetActiveBackend(nullptr); }
};

// A trained solver plus its frozen snapshot.
struct TrainedModel {
  FairKMSolver solver;
  std::shared_ptr<const ModelSnapshot> snapshot;
};

TrainedModel Train(const SeededWorld& world, const FairKMOptions& options,
                   uint64_t init_seed) {
  TrainedModel model{MakeSolver(world, options), nullptr};
  EXPECT_TRUE(model.solver.Init(init_seed).ok());
  EXPECT_TRUE(model.solver.Run().ok());
  model.snapshot = MakeModelSnapshot(model.solver).ValueOrDie();
  return model;
}

// The tentpole contract: for every sweep/pruning mode and both kernel
// backends, AssignBatch returns the EXACT assignment vector of the scalar
// solver path — blind and fairness-aware, on a lane-padded width (dim 5 ->
// stride 8) so the padding lanes are exercised.
TEST(ServeAssignTest, BatchedMatchesScalarOracleAcrossModesAndBackends) {
  WorldSpec spec;
  spec.per_blob = 30;
  spec.dim = 5;  // Not a multiple of the kernel lane width.
  BackendGuard guard;
  for (const bool force_scalar : {true, false}) {
    core::kernels::SetActiveBackend(
        force_scalar ? &core::kernels::ScalarBackend() : nullptr);
    for (const ModeParam& mode : kModes) {
      SCOPED_TRACE(::testing::Message()
                   << mode.name << (force_scalar ? " scalar" : " dispatch"));
      const SeededWorld world = MakeSeededWorld(90, spec);
      const SeededWorld fresh = MakeSeededWorld(91, spec);
      TrainedModel model = Train(world, OptionsFor(mode), 33);

      const cluster::Assignment blind_scalar =
          model.solver.Assign(fresh.points).ValueOrDie();
      const cluster::Assignment blind_batched =
          AssignBatch(*model.snapshot, fresh.points).ValueOrDie();
      EXPECT_EQ(blind_batched, blind_scalar);

      const cluster::Assignment fair_scalar =
          model.solver.Assign(fresh.points, fresh.sensitive).ValueOrDie();
      const cluster::Assignment fair_batched =
          AssignBatch(*model.snapshot, fresh.points, &fresh.sensitive)
              .ValueOrDie();
      EXPECT_EQ(fair_batched, fair_scalar);

      // Scoring the training rows themselves must agree too.
      EXPECT_EQ(
          AssignBatch(*model.snapshot, world.points, &world.sensitive)
              .ValueOrDie(),
          model.solver.Assign(world.points, world.sensitive).ValueOrDie());
    }
  }
}

TEST(ServeAssignTest, ScratchReuseAndBlockBoundariesAreStable) {
  // More rows than one kBlockRows block would hold is overkill for a unit
  // test; instead reuse one scratch across differently shaped requests and
  // expect identical answers to scratch-free calls.
  const SeededWorld world = MakeSeededWorld(92);
  const SeededWorld fresh = MakeSeededWorld(93);
  TrainedModel model = Train(world, OptionsFor(kModes[2]), 7);

  AssignScratch scratch;
  const cluster::Assignment fair =
      AssignBatch(*model.snapshot, fresh.points, &fresh.sensitive, &scratch)
          .ValueOrDie();
  EXPECT_EQ(fair, AssignBatch(*model.snapshot, fresh.points, &fresh.sensitive)
                      .ValueOrDie());
  // A blind call reusing the (now warm) scratch: buffers shrink-to-fit is
  // never required, stale contents must not leak into the next request.
  const cluster::Assignment blind =
      AssignBatch(*model.snapshot, world.points, nullptr, &scratch)
          .ValueOrDie();
  EXPECT_EQ(blind, AssignBatch(*model.snapshot, world.points).ValueOrDie());
  // And the same fair request again through the reused scratch.
  EXPECT_EQ(fair, AssignBatch(*model.snapshot, fresh.points, &fresh.sensitive,
                              &scratch)
                      .ValueOrDie());
}

TEST(ServeAssignTest, ZeroRowRequestReturnsEmpty) {
  const SeededWorld world = MakeSeededWorld(94);
  TrainedModel model = Train(world, OptionsFor(kModes[0]), 11);

  const data::Matrix no_points(0, world.points.cols());
  EXPECT_TRUE(AssignBatch(*model.snapshot, no_points).ValueOrDie().empty());

  // With a structurally matching zero-row sensitive view.
  data::SensitiveView no_rows = world.sensitive;
  for (auto& attr : no_rows.categorical) attr.codes.clear();
  for (auto& attr : no_rows.numeric) attr.values.clear();
  EXPECT_TRUE(AssignBatch(*model.snapshot, no_points, &no_rows)
                  .ValueOrDie()
                  .empty());
}

TEST(ServeAssignTest, ValidationMirrorsScalarPath) {
  const SeededWorld world = MakeSeededWorld(95);
  TrainedModel model = Train(world, OptionsFor(kModes[0]), 13);

  // Wrong feature width.
  const data::Matrix wrong_width(2, world.points.cols() + 1);
  EXPECT_FALSE(AssignBatch(*model.snapshot, wrong_width).ok());

  // Attribute structure must mirror the trained view.
  data::SensitiveView missing_attrs;
  EXPECT_FALSE(AssignBatch(*model.snapshot, world.points, &missing_attrs).ok());

  // Codes must stay within the TRAINED cardinality.
  data::SensitiveView bad_code = world.sensitive;
  bad_code.categorical[0].codes[0] =
      static_cast<int32_t>(bad_code.categorical[0].cardinality);
  EXPECT_FALSE(AssignBatch(*model.snapshot, world.points, &bad_code).ok());

  // Ragged second categorical attribute (passes a first-attribute-only row
  // check): must be rejected before any indexing.
  data::SensitiveView ragged_cat = world.sensitive;
  ASSERT_GE(ragged_cat.categorical.size(), 2u);
  ragged_cat.categorical[1].codes.pop_back();
  EXPECT_FALSE(AssignBatch(*model.snapshot, world.points, &ragged_cat).ok());

  // Ragged numeric attribute.
  data::SensitiveView ragged_num = world.sensitive;
  ASSERT_GE(ragged_num.numeric.size(), 1u);
  ragged_num.numeric[0].values.pop_back();
  EXPECT_FALSE(AssignBatch(*model.snapshot, world.points, &ragged_num).ok());
}

TEST(ServeAssignTest, AllClustersEmptyModelCannotServe) {
  // A zero-row training set yields a valid solver whose clusters are all
  // empty. Exporting works (counts all zero), but assigning a real point has
  // no candidate cluster — an error, exactly like the scalar path.
  const data::Matrix no_points(0, 4);
  data::SensitiveView no_view;  // Empty view: n rows trivially consistent.
  FairKMOptions options;
  options.k = 3;
  options.lambda = 60.0;
  options.enable_pruning = false;
  FairKMSolver solver =
      FairKMSolver::Create(&no_points, &no_view, options).ValueOrDie();
  ASSERT_TRUE(solver.Init(cluster::Assignment{}).ok());

  const std::shared_ptr<const ModelSnapshot> snapshot =
      MakeModelSnapshot(solver).ValueOrDie();
  EXPECT_FALSE(snapshot->has_candidates());

  data::Matrix one_point(1, 4);
  EXPECT_FALSE(AssignBatch(*snapshot, one_point).ok());
  EXPECT_FALSE(solver.Assign(one_point).ok());

  // Zero rows in, zero rows out — even with no candidates (the scalar loop
  // never runs; the batched path matches that ordering).
  const data::Matrix empty_request(0, 4);
  EXPECT_TRUE(AssignBatch(*snapshot, empty_request).ValueOrDie().empty());
  EXPECT_TRUE(solver.Assign(empty_request).ValueOrDie().empty());
}

TEST(ServeAssignTest, SnapshotExportRequiresTrainedSolver) {
  const SeededWorld world = MakeSeededWorld(96);
  FairKMSolver untrained = MakeSolver(world, OptionsFor(kModes[0]));
  EXPECT_FALSE(untrained.ExportModel().ok());
  EXPECT_FALSE(MakeModelSnapshot(untrained).ok());
}

TEST(ServeAssignTest, SnapshotIsSelfContainedAndVersioned) {
  const SeededWorld world = MakeSeededWorld(97);
  const SeededWorld fresh = MakeSeededWorld(98);
  const FairKMOptions options = OptionsFor(kModes[2]);

  FairKMSolver solver = MakeSolver(world, options);
  ASSERT_TRUE(solver.Init(uint64_t{21}).ok());
  ASSERT_TRUE(solver.Run().ok());
  const cluster::Assignment at_export =
      solver.Assign(fresh.points, fresh.sensitive).ValueOrDie();
  const std::shared_ptr<const ModelSnapshot> snapshot =
      MakeModelSnapshot(solver, /*version=*/42).ValueOrDie();

  EXPECT_EQ(snapshot->version(), 42u);
  EXPECT_EQ(snapshot->k(), options.k);
  EXPECT_EQ(snapshot->d(), world.points.cols());
  EXPECT_EQ(snapshot->training_rows(), world.points.rows());
  size_t total = 0;
  for (const size_t count : snapshot->model().counts) total += count;
  EXPECT_EQ(total, world.points.rows());

  // The solver keeps training past the export; the frozen snapshot still
  // answers with the generation it captured.
  ASSERT_TRUE(solver.SetLambda(solver.lambda() * 4.0).ok());
  ASSERT_TRUE(solver.Init(uint64_t{22}).ok());
  ASSERT_TRUE(solver.Run().ok());
  EXPECT_EQ(AssignBatch(*snapshot, fresh.points, &fresh.sensitive)
                .ValueOrDie(),
            at_export);
}

}  // namespace
}  // namespace serve
}  // namespace fairkm
