#include "core/fairkm_naive.h"

namespace fairkm {
namespace core {

Result<FairKMResult> RunFairKMNaive(const data::Matrix& points,
                                    const data::SensitiveView& sensitive,
                                    const FairKMOptions& options, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (options.minibatch_size != 0) {
    return Status::InvalidArgument("naive FairKM does not support mini-batches");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (!sensitive.empty() && sensitive.num_rows() != points.rows()) {
    return Status::InvalidArgument("sensitive view row count mismatch");
  }
  if (options.k <= 0) return Status::InvalidArgument("k must be positive");
  const size_t n = points.rows();
  const int k = options.k;
  const double lambda = options.lambda < 0 ? SuggestLambda(n, k) : options.lambda;

  FAIRKM_ASSIGN_OR_RETURN(
      cluster::Assignment assignment,
      cluster::MakeInitialAssignment(points, k, options.init, rng));

  FairKMResult result;
  result.lambda_used = lambda;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    size_t moves = 0;
    for (size_t i = 0; i < n; ++i) {
      const int32_t from = assignment[i];
      const double current =
          ComputeObjective(points, sensitive, assignment, k, options.fairness)
              .Total(lambda);
      double best = current - options.min_improvement;
      int32_t best_cluster = from;
      for (int c = 0; c < k; ++c) {
        if (c == from) continue;
        assignment[i] = static_cast<int32_t>(c);
        const double candidate =
            ComputeObjective(points, sensitive, assignment, k, options.fairness)
                .Total(lambda);
        if (candidate < best) {
          best = candidate;
          best_cluster = static_cast<int32_t>(c);
        }
      }
      assignment[i] = best_cluster;
      if (best_cluster != from) ++moves;
    }
    result.iterations = iter + 1;
    result.objective_history.push_back(
        ComputeObjective(points, sensitive, assignment, k, options.fairness)
            .Total(lambda));
    if (moves == 0) {
      result.converged = true;
      break;
    }
  }

  result.assignment = std::move(assignment);
  cluster::FinalizeResult(points, k, &result);
  result.kmeans_term = result.kmeans_objective;
  result.fairness_term =
      ComputeFairnessTerm(sensitive, result.assignment, k, options.fairness);
  result.total_objective = result.kmeans_term + lambda * result.fairness_term;
  return result;
}

}  // namespace core
}  // namespace fairkm
