# ctest -P script: runs fairkm_cli end-to-end on a tiny generated CSV and
# checks the exit code and the output schema (all input columns preserved,
# "cluster" column appended, one in-range id per row).
#
# Expects -DFAIRKM_CLI=<path to binary> -DWORK_DIR=<scratch dir>.

if(NOT FAIRKM_CLI OR NOT WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DFAIRKM_CLI=... -DWORK_DIR=... -P cli_smoke_test.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(input "${WORK_DIR}/tiny.csv")
set(output "${WORK_DIR}/tiny_clustered.csv")
file(REMOVE "${output}")

# Two well-separated numeric blobs; a binary sensitive attribute split across
# both blobs so FairKM has something to balance.
set(rows "x,y,gender\n")
foreach(i RANGE 0 7)
  math(EXPR wiggle "${i} % 3")
  math(EXPR parity "${i} % 2")
  if(parity EQUAL 0)
    set(g "m")
  else()
    set(g "f")
  endif()
  string(APPEND rows "0.${wiggle},1.${wiggle},${g}\n")
  string(APPEND rows "9.${wiggle},8.${wiggle},${g}\n")
endforeach()
file(WRITE "${input}" "${rows}")

execute_process(
  COMMAND "${FAIRKM_CLI}"
          --input "${input}" --output "${output}"
          --sensitive gender --method fairkm --k 2 --seed 7
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)

if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "fairkm_cli exited with ${exit_code}\nstdout:\n${stdout}\nstderr:\n${stderr}")
endif()

# The report must mention the run shape and the fairness table.
foreach(needle "n = 16 rows" "clustering objective" "Sensitive attribute")
  string(FIND "${stdout}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "stdout missing \"${needle}\":\n${stdout}")
  endif()
endforeach()

if(NOT EXISTS "${output}")
  message(FATAL_ERROR "fairkm_cli did not write ${output}")
endif()

file(STRINGS "${output}" lines)
list(LENGTH lines n_lines)
if(NOT n_lines EQUAL 17)
  message(FATAL_ERROR "expected header + 16 rows in output, got ${n_lines} lines")
endif()

list(GET lines 0 header)
if(NOT header STREQUAL "x,y,gender,cluster")
  message(FATAL_ERROR "unexpected output header: ${header}")
endif()

list(SUBLIST lines 1 -1 body)
foreach(line IN LISTS body)
  if(NOT line MATCHES "^[0-9.]+,[0-9.]+,[mf],[01]$")
    message(FATAL_ERROR "malformed output row: ${line}")
  endif()
endforeach()

message(STATUS "fairkm_cli smoke test passed")

# --- Durable checkpoints: run with auto-checkpointing, then resume. ---

set(ckpt_dir "${WORK_DIR}/ckpt")
file(REMOVE_RECURSE "${ckpt_dir}")

execute_process(
  COMMAND "${FAIRKM_CLI}"
          --input "${input}" --sensitive gender --method fairkm --k 2 --seed 7
          --checkpoint-dir "${ckpt_dir}" --checkpoint-every 1
          --max-iterations 2
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "checkpointed run exited with ${exit_code}\nstdout:\n${stdout}\nstderr:\n${stderr}")
endif()
string(FIND "${stdout}" "checkpoints: ${ckpt_dir}" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "stdout missing the checkpoint report line:\n${stdout}")
endif()

file(GLOB ckpt_files "${ckpt_dir}/*.fkmc")
list(LENGTH ckpt_files n_ckpts)
if(n_ckpts EQUAL 0)
  message(FATAL_ERROR "no checkpoint files written to ${ckpt_dir}")
endif()

execute_process(
  COMMAND "${FAIRKM_CLI}"
          --input "${input}" --sensitive gender --method fairkm --k 2 --seed 7
          --checkpoint-dir "${ckpt_dir}" --checkpoint-every 1 --resume
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "resumed run exited with ${exit_code}\nstdout:\n${stdout}\nstderr:\n${stderr}")
endif()
string(FIND "${stdout}" "converged = yes" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "resumed run did not converge:\n${stdout}")
endif()

# --- Fault injection: an injected checkpoint-fsync failure must surface as a
# clean non-zero exit with the injected status, not a crash. ---

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "FAIRKM_FAULT=checkpoint.fsync=error"
          "${FAIRKM_CLI}"
          --input "${input}" --sensitive gender --method fairkm --k 2 --seed 7
          --checkpoint-dir "${ckpt_dir}" --checkpoint-every 1
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT exit_code EQUAL 1)
  message(FATAL_ERROR "fault-injected run should exit 1, got ${exit_code}\nstdout:\n${stdout}\nstderr:\n${stderr}")
endif()
string(FIND "${stderr}" "injected fault at checkpoint.fsync" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "stderr missing the injected fault status:\n${stderr}")
endif()

message(STATUS "fairkm_cli checkpoint + fault-injection smoke test passed")

# --- Out-of-core: the mmap store + sharded sweep must produce the same
# output CSV as the in-memory run at equal options and seed (bit-identical
# sharded trajectory), and report the store/shard telemetry. ---

set(mem_output "${WORK_DIR}/tiny_mem.csv")
set(mmap_output "${WORK_DIR}/tiny_mmap.csv")
set(store_file "${WORK_DIR}/tiny.fkps")
file(REMOVE "${mem_output}" "${mmap_output}" "${store_file}")

execute_process(
  COMMAND "${FAIRKM_CLI}"
          --input "${input}" --output "${mem_output}"
          --sensitive gender --method fairkm --k 2 --seed 7
          --sweep parallel --minibatch 4
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "in-memory snapshot run exited with ${exit_code}\nstdout:\n${stdout}\nstderr:\n${stderr}")
endif()

execute_process(
  COMMAND "${FAIRKM_CLI}"
          --input "${input}" --output "${mmap_output}"
          --sensitive gender --method fairkm --k 2 --seed 7
          --sweep parallel --minibatch 4
          --store "mmap:${store_file}" --shards 2
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "mmap sharded run exited with ${exit_code}\nstdout:\n${stdout}\nstderr:\n${stderr}")
endif()
foreach(needle "store: ${store_file}" "sharded sweep: ")
  string(FIND "${stdout}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "stdout missing \"${needle}\":\n${stdout}")
  endif()
endforeach()
if(NOT EXISTS "${store_file}")
  message(FATAL_ERROR "mmap run did not write the store file ${store_file}")
endif()

file(READ "${mem_output}" mem_csv)
file(READ "${mmap_output}" mmap_csv)
if(NOT mem_csv STREQUAL mmap_csv)
  message(FATAL_ERROR "mmap sharded output differs from the in-memory run:\n--- mem:\n${mem_csv}\n--- mmap:\n${mmap_csv}")
endif()

# A requested mmap store without the snapshot batch engine must fail with
# the actionable message, not fall back silently.
execute_process(
  COMMAND "${FAIRKM_CLI}"
          --input "${input}" --sensitive gender --method fairkm --k 2 --seed 7
          --store "mmap:${store_file}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE stdout
  ERROR_VARIABLE stderr)
if(NOT exit_code EQUAL 1)
  message(FATAL_ERROR "mmap-without-parallel run should exit 1, got ${exit_code}\nstdout:\n${stdout}\nstderr:\n${stderr}")
endif()
string(FIND "${stderr}" "requires --sweep parallel" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "stderr missing the --sweep parallel requirement:\n${stderr}")
endif()

message(STATUS "fairkm_cli out-of-core smoke test passed")
