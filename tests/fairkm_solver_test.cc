// FairKMSolver session-API lifecycle tests: wrapper equivalence, stepwise
// sweeps, checkpoint-resume and warm-start bit-identity (all SweepModes x
// pruning settings), cooperative cancellation consistency, budgets, and the
// out-of-sample Assign() path cross-checked against brute force.

#include "core/solver.h"

#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/fairkm.h"
#include "testlib/brute_force.h"
#include "testlib/worlds.h"

// This suite is an intentional caller of the deprecated RunFairKM wrapper:
// it is (part of) the oracle pinning the wrapper's bit-identical-to-solver
// contract, so the deprecation warning is suppressed rather than ported away.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"


namespace fairkm {
namespace core {
namespace {

using testutil::BruteForceAssign;
using testutil::MakeSeededWorld;
using testutil::SeededWorld;
using testutil::StateMatchesBruteForce;
using testutil::WorldSpec;

struct ModeParam {
  const char* name;
  int minibatch;
  SweepMode sweep;
  bool pruning;
};

// Every SweepMode x pruning combination (the parallel snapshot sweep
// requires a mini-batch). The kernel-backend axis is covered by running the
// whole suite under FAIRKM_FORCE_SCALAR in CI; the pruning-off axis is
// additionally covered by FAIRKM_DISABLE_PRUNING, which both sides of every
// comparison see identically.
const ModeParam kModes[] = {
    {"serial", 0, SweepMode::kSerial, true},
    {"serial-exact", 0, SweepMode::kSerial, false},
    {"minibatch", 16, SweepMode::kSerial, true},
    {"minibatch-exact", 16, SweepMode::kSerial, false},
    {"parallel", 16, SweepMode::kParallelSnapshot, true},
    {"parallel-exact", 16, SweepMode::kParallelSnapshot, false},
};

FairKMOptions OptionsFor(const ModeParam& mode) {
  FairKMOptions options;
  options.k = 3;
  options.lambda = 60.0;
  options.max_iterations = 12;
  options.minibatch_size = mode.minibatch;
  options.sweep_mode = mode.sweep;
  options.enable_pruning = mode.pruning;
  return options;
}

FairKMSolver MakeSolver(const SeededWorld& world, const FairKMOptions& options) {
  return FairKMSolver::Create(&world.points, &world.sensitive, options)
      .ValueOrDie();
}

// Asserts two finished runs took bit-identical trajectories: assignments,
// per-sweep objective history, iteration/convergence flags, and (pruning
// telemetry included) the exact candidate counters.
void ExpectSameTrajectory(const FairKMResult& a, const FairKMResult& b,
                          const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.objective_history, b.objective_history);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.total_candidates, b.total_candidates);
  EXPECT_EQ(a.pruned_candidates, b.pruned_candidates);
}

TEST(FairKMSolverTest, WrapperAndLifecycleAreBitIdentical) {
  for (const ModeParam& mode : kModes) {
    const SeededWorld world = MakeSeededWorld(71);
    const FairKMOptions options = OptionsFor(mode);

    Rng wrapper_rng(5);
    const FairKMResult via_wrapper =
        RunFairKM(world.points, world.sensitive, options, &wrapper_rng)
            .ValueOrDie();

    FairKMSolver solver = MakeSolver(world, options);
    Rng solver_rng(5);
    ASSERT_TRUE(solver.Init(&solver_rng).ok());
    ASSERT_TRUE(solver.Run().ok());
    const FairKMResult via_solver = solver.CurrentResult().ValueOrDie();

    ExpectSameTrajectory(via_wrapper, via_solver, mode.name);
  }
}

TEST(FairKMSolverTest, StepwiseSweepMatchesRun) {
  const SeededWorld world = MakeSeededWorld(72);
  const FairKMOptions options = OptionsFor(kModes[0]);

  FairKMSolver all_at_once = MakeSolver(world, options);
  ASSERT_TRUE(all_at_once.Init(uint64_t{9}).ok());
  ASSERT_TRUE(all_at_once.Run().ok());

  FairKMSolver stepwise = MakeSolver(world, options);
  ASSERT_TRUE(stepwise.Init(uint64_t{9}).ok());
  while (!stepwise.converged() &&
         stepwise.sweeps_completed() < options.max_iterations) {
    ASSERT_TRUE(stepwise.Sweep().ok());
  }

  ExpectSameTrajectory(all_at_once.CurrentResult().ValueOrDie(),
                       stepwise.CurrentResult().ValueOrDie(), "stepwise");
}

TEST(FairKMSolverTest, SnapshotResumeIsBitIdentical) {
  for (const ModeParam& mode : kModes) {
    const SeededWorld world = MakeSeededWorld(73);
    const FairKMOptions options = OptionsFor(mode);

    FairKMSolver reference = MakeSolver(world, options);
    ASSERT_TRUE(reference.Init(uint64_t{11}).ok());
    ASSERT_TRUE(reference.Run().ok());
    const FairKMResult uninterrupted = reference.CurrentResult().ValueOrDie();

    // Run three sweeps, checkpoint, keep running: the checkpointed solver
    // itself must stay on the uninterrupted trajectory...
    FairKMSolver paused = MakeSolver(world, options);
    ASSERT_TRUE(paused.Init(uint64_t{11}).ok());
    RunBudget first_leg;
    first_leg.max_sweeps = 3;
    ASSERT_TRUE(paused.Run(first_leg).ok());
    const SolverCheckpoint checkpoint = paused.Snapshot().ValueOrDie();
    ASSERT_TRUE(paused.Run().ok());
    ExpectSameTrajectory(uninterrupted, paused.CurrentResult().ValueOrDie(),
                         mode.name);

    // ...and so must a FRESH solver restored from the checkpoint (the
    // checkpoint carries the exact float aggregates and pruner bounds, so
    // even the pruned-candidate counters match).
    FairKMSolver resumed = MakeSolver(world, options);
    ASSERT_TRUE(resumed.Restore(checkpoint).ok());
    ASSERT_TRUE(resumed.Run().ok());
    ExpectSameTrajectory(uninterrupted, resumed.CurrentResult().ValueOrDie(),
                         mode.name);
  }
}

// The durable path (SaveCheckpoint -> file -> LoadCheckpoint) must preserve
// the same bit-identical-resume contract as the in-memory Snapshot/Restore
// pair, in every SweepMode x pruning combination. (The kernel-backend axis
// is covered by the CI scalar-forced job running this same suite.)
TEST(FairKMSolverTest, DurableCheckpointResumeIsBitIdentical) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "fairkm_solver_durable_ckpt";
  fs::remove_all(dir);
  fs::create_directories(dir);

  for (const ModeParam& mode : kModes) {
    const SeededWorld world = MakeSeededWorld(73);
    const FairKMOptions options = OptionsFor(mode);

    FairKMSolver reference = MakeSolver(world, options);
    ASSERT_TRUE(reference.Init(uint64_t{11}).ok());
    ASSERT_TRUE(reference.Run().ok());
    const FairKMResult uninterrupted = reference.CurrentResult().ValueOrDie();

    // Three sweeps, a durable checkpoint, then a FRESH solver restored from
    // the file finishes the run on the uninterrupted trajectory.
    FairKMSolver paused = MakeSolver(world, options);
    ASSERT_TRUE(paused.Init(uint64_t{11}).ok());
    RunBudget first_leg;
    first_leg.max_sweeps = 3;
    ASSERT_TRUE(paused.Run(first_leg).ok());
    const std::string path =
        (dir / (std::string(mode.name) + ".fkmc")).string();
    ASSERT_TRUE(paused.SaveCheckpoint(path).ok());

    FairKMSolver resumed = MakeSolver(world, options);
    ASSERT_TRUE(resumed.LoadCheckpoint(path).ok());
    ASSERT_TRUE(resumed.Run().ok());
    ExpectSameTrajectory(uninterrupted, resumed.CurrentResult().ValueOrDie(),
                         mode.name);
  }
  fs::remove_all(dir);
}

TEST(FairKMSolverTest, MidSweepCancelSnapshotResumeIsBitIdentical) {
  for (const ModeParam& mode : kModes) {
    if (mode.minibatch == 0) continue;  // Mid-sweep needs >1 batch per sweep.
    const SeededWorld world = MakeSeededWorld(74);
    const FairKMOptions options = OptionsFor(mode);

    FairKMSolver reference = MakeSolver(world, options);
    ASSERT_TRUE(reference.Init(uint64_t{13}).ok());
    ASSERT_TRUE(reference.Run().ok());
    const FairKMResult uninterrupted = reference.CurrentResult().ValueOrDie();

    // Cancel at the second mini-batch boundary of sweep 2 (a mid-sweep
    // point: 60 points / batch 16 -> boundaries at 16, 32, 48, 60).
    FairKMSolver cancelled = MakeSolver(world, options);
    ASSERT_TRUE(cancelled.Init(uint64_t{13}).ok());
    int boundaries_seen = 0;
    const RunStop stop =
        cancelled
            .Run({},
                 [&](const SweepProgress& progress) {
                   ++boundaries_seen;
                   return !(progress.sweep == 2 &&
                            progress.points_processed == 32);
                 })
            .ValueOrDie();
    ASSERT_EQ(stop, RunStop::kCancelled) << mode.name;
    ASSERT_TRUE(cancelled.mid_sweep()) << mode.name;
    ASSERT_GT(boundaries_seen, 4) << mode.name;

    // The mid-sweep checkpoint resumes bit-identically in a fresh solver...
    const SolverCheckpoint checkpoint = cancelled.Snapshot().ValueOrDie();
    FairKMSolver resumed = MakeSolver(world, options);
    ASSERT_TRUE(resumed.Restore(checkpoint).ok());
    ASSERT_TRUE(resumed.Run().ok());
    ExpectSameTrajectory(uninterrupted, resumed.CurrentResult().ValueOrDie(),
                         mode.name);

    // ...and the cancelled solver itself picks up where it stopped.
    ASSERT_TRUE(cancelled.Run().ok());
    ExpectSameTrajectory(uninterrupted, cancelled.CurrentResult().ValueOrDie(),
                         mode.name);
  }
}

TEST(FairKMSolverTest, CancellationLeavesConsistentQueryableState) {
  const ModeParam mode = {"minibatch", 16, SweepMode::kSerial, true};
  const SeededWorld world = MakeSeededWorld(75);
  const FairKMOptions options = OptionsFor(mode);

  FairKMSolver solver = MakeSolver(world, options);
  ASSERT_TRUE(solver.Init(uint64_t{17}).ok());
  const RunStop stop =
      solver
          .Run({},
               [](const SweepProgress& progress) {
                 return progress.points_processed < 32;  // Cancel mid-sweep 1.
               })
          .ValueOrDie();
  ASSERT_EQ(stop, RunStop::kCancelled);
  ASSERT_TRUE(solver.mid_sweep());

  // Every aggregate the half-swept state exposes must match scratch
  // recomputation, and the observation APIs must all work.
  EXPECT_TRUE(StateMatchesBruteForce(solver.state(), world.points,
                                     world.sensitive));
  const FairKMResult partial = solver.CurrentResult().ValueOrDie();
  EXPECT_EQ(partial.assignment.size(), world.points.rows());
  EXPECT_FALSE(partial.converged);
  EXPECT_TRUE(solver.Assign(world.points).ok());
}

TEST(FairKMSolverTest, SolverReuseAcrossSeedsMatchesColdSolvers) {
  for (const ModeParam& mode : kModes) {
    const SeededWorld world = MakeSeededWorld(76);
    const FairKMOptions options = OptionsFor(mode);
    FairKMSolver reused = MakeSolver(world, options);
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      ASSERT_TRUE(reused.Init(seed).ok());
      ASSERT_TRUE(reused.Run().ok());

      FairKMSolver cold = MakeSolver(world, options);
      ASSERT_TRUE(cold.Init(seed).ok());
      ASSERT_TRUE(cold.Run().ok());

      ExpectSameTrajectory(cold.CurrentResult().ValueOrDie(),
                           reused.CurrentResult().ValueOrDie(), mode.name);
    }
  }
}

TEST(FairKMSolverTest, WarmStartAssignmentMatchesColdSolver) {
  const SeededWorld world = MakeSeededWorld(77);
  const FairKMOptions options = OptionsFor(kModes[0]);

  // A used solver warm-started from an explicit assignment must replay the
  // cold solver's trajectory from that same assignment.
  FairKMSolver reused = MakeSolver(world, options);
  ASSERT_TRUE(reused.Init(uint64_t{3}).ok());
  ASSERT_TRUE(reused.Run().ok());
  ASSERT_TRUE(reused.Init(world.assignment).ok());
  ASSERT_TRUE(reused.Run().ok());

  FairKMSolver cold = MakeSolver(world, options);
  ASSERT_TRUE(cold.Init(world.assignment).ok());
  ASSERT_TRUE(cold.Run().ok());
  ExpectSameTrajectory(cold.CurrentResult().ValueOrDie(),
                       reused.CurrentResult().ValueOrDie(), "warm-start");

  // Warm-starting from a converged assignment converges after one sweep.
  ASSERT_TRUE(cold.Init(cold.assignment()).ok());
  ASSERT_TRUE(cold.Run().ok());
  EXPECT_TRUE(cold.converged());
  EXPECT_EQ(cold.sweeps_completed(), 1);
}

TEST(FairKMSolverTest, RunBudgetsStopAndResume) {
  const SeededWorld world = MakeSeededWorld(78);
  FairKMOptions options = OptionsFor(kModes[0]);
  options.max_iterations = 30;

  FairKMSolver solver = MakeSolver(world, options);
  ASSERT_TRUE(solver.Init(uint64_t{21}).ok());

  RunBudget two_sweeps;
  two_sweeps.max_sweeps = 2;
  const RunStop stop = solver.Run(two_sweeps).ValueOrDie();
  if (stop == RunStop::kSweepBudget) {
    EXPECT_EQ(solver.sweeps_completed(), 2);
    EXPECT_EQ(solver.objective_history().size(), 2u);
  } else {
    EXPECT_EQ(stop, RunStop::kConverged);  // Tiny worlds may converge first.
  }

  RunBudget no_time;
  no_time.max_seconds = 0.0;
  if (!solver.converged()) {
    EXPECT_EQ(solver.Run(no_time).ValueOrDie(), RunStop::kTimeBudget);
  }

  // Budgeted legs compose into the uninterrupted trajectory.
  while (!solver.converged() &&
         solver.sweeps_completed() < options.max_iterations) {
    ASSERT_TRUE(solver.Run(two_sweeps).ok());
  }
  FairKMSolver straight = MakeSolver(world, options);
  ASSERT_TRUE(straight.Init(uint64_t{21}).ok());
  ASSERT_TRUE(straight.Run().ok());
  ExpectSameTrajectory(straight.CurrentResult().ValueOrDie(),
                       solver.CurrentResult().ValueOrDie(), "budget-legs");
}

TEST(FairKMSolverTest, SweepHonorsTheIterationCap) {
  const SeededWorld world = MakeSeededWorld(84);
  FairKMOptions options = OptionsFor(kModes[0]);
  options.max_iterations = 1;

  FairKMSolver solver = MakeSolver(world, options);
  ASSERT_TRUE(solver.Init(uint64_t{8}).ok());
  ASSERT_TRUE(solver.Sweep().ValueOrDie());  // Sweep 1 moves something.
  EXPECT_EQ(solver.sweeps_completed(), 1);
  // The cap makes further stepping a no-op, so `while (Sweep())` terminates
  // even on configurations that never converge.
  EXPECT_FALSE(solver.Sweep().ValueOrDie());
  EXPECT_EQ(solver.sweeps_completed(), 1);
  EXPECT_FALSE(solver.converged());
}

TEST(FairKMSolverTest, SetLambdaOnReusedSolverMatchesFreshSolver) {
  const SeededWorld world = MakeSeededWorld(79);
  FairKMOptions options = OptionsFor(kModes[0]);

  FairKMSolver reused = MakeSolver(world, options);
  ASSERT_TRUE(reused.Init(uint64_t{2}).ok());
  ASSERT_TRUE(reused.Run().ok());
  ASSERT_TRUE(reused.SetLambda(350.0).ok());
  ASSERT_TRUE(reused.Init(uint64_t{2}).ok());
  ASSERT_TRUE(reused.Run().ok());

  options.lambda = 350.0;
  FairKMSolver fresh = MakeSolver(world, options);
  ASSERT_TRUE(fresh.Init(uint64_t{2}).ok());
  ASSERT_TRUE(fresh.Run().ok());
  ExpectSameTrajectory(fresh.CurrentResult().ValueOrDie(),
                       reused.CurrentResult().ValueOrDie(), "set-lambda");
  EXPECT_EQ(reused.lambda(), 350.0);

  // Negative re-resolves the paper heuristic.
  ASSERT_TRUE(reused.SetLambda(-1.0).ok());
  EXPECT_EQ(reused.lambda(), SuggestLambda(world.points.rows(), options.k));
}

TEST(FairKMSolverTest, SetLambdaRecordsResolvedAutoSuggestOption) {
  const SeededWorld world = MakeSeededWorld(85);
  const FairKMOptions options = OptionsFor(kModes[0]);

  FairKMSolver solver = MakeSolver(world, options);
  ASSERT_TRUE(solver.Init(uint64_t{5}).ok());
  ASSERT_TRUE(solver.Run().ok());

  // Regression: SetLambda(-1) used to store the raw -1 sentinel into
  // options().lambda while lambda_ held the resolved heuristic, so the
  // session's recorded option disagreed with every weight it actually ran.
  ASSERT_TRUE(solver.SetLambda(-1.0).ok());
  const double resolved = SuggestLambda(world.points.rows(), options.k);
  EXPECT_EQ(solver.lambda(), resolved);
  EXPECT_EQ(solver.options().lambda, resolved);

  ASSERT_TRUE(solver.Init(uint64_t{5}).ok());
  ASSERT_TRUE(solver.Run().ok());
  EXPECT_EQ(solver.CurrentResult().ValueOrDie().lambda_used,
            solver.options().lambda);
}

TEST(FairKMSolverTest, AssignMatchesBruteForce) {
  for (const ModeParam& mode : kModes) {
    const SeededWorld world = MakeSeededWorld(80);
    // Same spec, different seed: structurally compatible out-of-sample data.
    const SeededWorld fresh = MakeSeededWorld(81);
    const FairKMOptions options = OptionsFor(mode);

    FairKMSolver solver = MakeSolver(world, options);
    ASSERT_TRUE(solver.Init(uint64_t{31}).ok());
    ASSERT_TRUE(solver.Run().ok());

    const cluster::Assignment blind =
        solver.Assign(fresh.points).ValueOrDie();
    EXPECT_EQ(blind, BruteForceAssign(world.points, world.sensitive,
                                      solver.assignment(), options.k,
                                      solver.lambda(), fresh.points,
                                      /*new_sensitive=*/nullptr))
        << mode.name;

    const cluster::Assignment fair =
        solver.Assign(fresh.points, fresh.sensitive).ValueOrDie();
    EXPECT_EQ(fair, BruteForceAssign(world.points, world.sensitive,
                                     solver.assignment(), options.k,
                                     solver.lambda(), fresh.points,
                                     &fresh.sensitive))
        << mode.name;
    // With the training view's own rows, lambda pulls assignments toward
    // fairness: the two paths must at least both be valid (and usually
    // differ); validity is what we assert.
    for (int32_t c : fair) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, options.k);
    }
  }
}

TEST(FairKMSolverTest, AssignValidatesInputs) {
  const SeededWorld world = MakeSeededWorld(82);
  const FairKMOptions options = OptionsFor(kModes[0]);

  FairKMSolver untrained = MakeSolver(world, options);
  EXPECT_FALSE(untrained.Assign(world.points).ok());

  FairKMSolver solver = MakeSolver(world, options);
  ASSERT_TRUE(solver.Init(uint64_t{1}).ok());
  ASSERT_TRUE(solver.Run().ok());

  data::Matrix wrong_width(2, world.points.cols() + 1);
  EXPECT_FALSE(solver.Assign(wrong_width).ok());

  // Mismatched attribute structure.
  data::SensitiveView missing_attrs;
  EXPECT_FALSE(solver.Assign(world.points, missing_attrs).ok());

  // Out-of-range code.
  data::SensitiveView bad = world.sensitive;
  bad.categorical[0].codes[0] =
      static_cast<int32_t>(bad.categorical[0].cardinality);
  EXPECT_FALSE(solver.Assign(world.points, bad).ok());

  // Ragged SECOND categorical attribute: num_rows() (first attribute only)
  // still matches, so the old row check passed and the scoring loop read
  // past the short code vector. Every attribute's length must be validated.
  data::SensitiveView ragged_cat = world.sensitive;
  ASSERT_GE(ragged_cat.categorical.size(), 2u);
  ragged_cat.categorical[1].codes.pop_back();
  EXPECT_FALSE(solver.Assign(world.points, ragged_cat).ok());

  // Same for a ragged numeric attribute.
  data::SensitiveView ragged_num = world.sensitive;
  ASSERT_GE(ragged_num.numeric.size(), 1u);
  ragged_num.numeric[0].values.pop_back();
  EXPECT_FALSE(solver.Assign(world.points, ragged_num).ok());

  // The training path runs the same audit: Init over a ragged view fails
  // instead of building aggregates off the end of the short attribute.
  FairKMSolver ragged_trainer =
      FairKMSolver::Create(&world.points, &ragged_cat, options).ValueOrDie();
  EXPECT_FALSE(ragged_trainer.Init(uint64_t{1}).ok());
}

TEST(FairKMSolverTest, NonFiniteInputsAreRejectedAtEveryBoundary) {
  const SeededWorld world = MakeSeededWorld(85);
  const FairKMOptions options = OptionsFor(kModes[0]);

  // Training boundary: a NaN coordinate never reaches the point store.
  data::Matrix nan_points = world.points;
  nan_points.At(3, 1) = std::numeric_limits<double>::quiet_NaN();
  const auto create = FairKMSolver::Create(&nan_points, &world.sensitive, options);
  ASSERT_FALSE(create.ok());
  EXPECT_EQ(create.status().code(), StatusCode::kInvalidArgument);

  // Training boundary, numeric sensitive attribute.
  data::SensitiveView inf_sensitive = world.sensitive;
  ASSERT_GE(inf_sensitive.numeric.size(), 1u);
  inf_sensitive.numeric[0].values[0] = std::numeric_limits<double>::infinity();
  FairKMSolver trainer =
      FairKMSolver::Create(&world.points, &inf_sensitive, options).ValueOrDie();
  EXPECT_EQ(trainer.Init(uint64_t{1}).code(), StatusCode::kInvalidArgument);

  // Serving boundary: out-of-sample requests get the same screening.
  FairKMSolver solver = MakeSolver(world, options);
  ASSERT_TRUE(solver.Init(uint64_t{1}).ok());
  ASSERT_TRUE(solver.Run().ok());
  data::Matrix nan_request = world.points;
  nan_request.At(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(solver.Assign(nan_request).ok());
  data::SensitiveView nan_numeric = world.sensitive;
  nan_numeric.numeric[0].values[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(solver.Assign(world.points, nan_numeric).ok());
}

TEST(FairKMSolverTest, LifecycleGuardsAndCheckpointValidation) {
  const SeededWorld world = MakeSeededWorld(83);
  const FairKMOptions options = OptionsFor(kModes[0]);

  FairKMSolver solver = MakeSolver(world, options);
  EXPECT_FALSE(solver.initialized());
  EXPECT_FALSE(solver.Sweep().ok());
  EXPECT_FALSE(solver.Run().ok());
  EXPECT_FALSE(solver.CurrentResult().ok());
  EXPECT_FALSE(solver.Snapshot().ok());

  ASSERT_TRUE(solver.Init(uint64_t{4}).ok());
  ASSERT_TRUE(solver.Run().ok());
  const SolverCheckpoint checkpoint = solver.Snapshot().ValueOrDie();

  // A solver with different options rejects the checkpoint.
  FairKMOptions other = options;
  other.k = options.k + 1;
  FairKMSolver mismatched =
      FairKMSolver::Create(&world.points, &world.sensitive, other).ValueOrDie();
  EXPECT_FALSE(mismatched.Restore(checkpoint).ok());

  // A solver with a different mini-batch shape rejects the checkpoint (the
  // prototype-refresh boundaries would diverge).
  FairKMOptions batched = options;
  batched.minibatch_size = 16;
  FairKMSolver different_batching =
      FairKMSolver::Create(&world.points, &world.sensitive, batched)
          .ValueOrDie();
  EXPECT_FALSE(different_batching.Restore(checkpoint).ok());

  FairKMOptions unpruned = options;
  unpruned.enable_pruning = false;
  FairKMSolver pruning_off =
      FairKMSolver::Create(&world.points, &world.sensitive, unpruned)
          .ValueOrDie();
  // Mode mismatch is rejected unless the environment already forced
  // pruning off for both sides.
  if (!PruningDisabledByEnv() && options.k > 1) {
    EXPECT_FALSE(pruning_off.Restore(checkpoint).ok());
  }

  // Create-level validation mirrors RunFairKM.
  FairKMOptions bad = options;
  bad.k = 0;
  EXPECT_FALSE(FairKMSolver::Create(&world.points, &world.sensitive, bad).ok());
  bad = options;
  bad.max_iterations = 0;
  EXPECT_FALSE(FairKMSolver::Create(&world.points, &world.sensitive, bad).ok());
  bad = options;
  bad.sweep_mode = SweepMode::kParallelSnapshot;
  bad.minibatch_size = 0;
  EXPECT_FALSE(FairKMSolver::Create(&world.points, &world.sensitive, bad).ok());
}

}  // namespace
}  // namespace core
}  // namespace fairkm
