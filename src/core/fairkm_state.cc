#include "core/fairkm_state.h"

#include "core/kernels/kernels.h"

namespace fairkm {
namespace core {

FairKMState::FairKMState(const data::Matrix* points,
                         const data::SensitiveView* sensitive, int k,
                         FairnessTermConfig config)
    : points_(points),
      sensitive_(sensitive),
      k_(k),
      n_(points->rows()),
      d_(points->cols()),
      config_(config) {}

Result<FairKMState> FairKMState::Create(const data::Matrix* points,
                                        const data::SensitiveView* sensitive, int k,
                                        cluster::Assignment initial,
                                        FairnessTermConfig config) {
  if (points == nullptr || sensitive == nullptr) {
    return Status::InvalidArgument("points/sensitive must not be null");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  FAIRKM_RETURN_NOT_OK(cluster::ValidateAssignment(initial, points->rows(), k));
  if (!sensitive->empty() && sensitive->num_rows() != points->rows()) {
    return Status::InvalidArgument("sensitive view covers " +
                                   std::to_string(sensitive->num_rows()) +
                                   " rows, points have " +
                                   std::to_string(points->rows()));
  }
  FairKMState state(points, sensitive, k, config);
  state.BuildAggregates(std::move(initial));
  return state;
}

void FairKMState::BuildAggregates(cluster::Assignment initial) {
  assignment_ = std::move(initial);
  counts_.assign(static_cast<size_t>(k_), 0);
  sums_.assign(static_cast<size_t>(k_) * d_, 0.0);
  point_norms_.assign(n_, 0.0);
  for (size_t i = 0; i < n_; ++i) {
    const size_t c = static_cast<size_t>(assignment_[i]);
    ++counts_[c];
    const double* row = points_->Row(i);
    double* acc = sums_.data() + c * d_;
    for (size_t j = 0; j < d_; ++j) acc[j] += row[j];
    point_norms_[i] = kernels::Dot(row, row, d_);
  }
  sum_norms_.assign(static_cast<size_t>(k_), 0.0);
  for (int c = 0; c < k_; ++c) {
    const double* s = sums_.data() + static_cast<size_t>(c) * d_;
    sum_norms_[static_cast<size_t>(c)] = kernels::Dot(s, s, d_);
  }
  cat_counts_.clear();
  for (const auto& attr : sensitive_->categorical) {
    std::vector<int64_t> counts(static_cast<size_t>(k_) * attr.cardinality, 0);
    for (size_t i = 0; i < n_; ++i) {
      ++counts[static_cast<size_t>(assignment_[i]) * attr.cardinality +
               attr.codes[i]];
    }
    cat_counts_.push_back(std::move(counts));
  }
  num_sums_.clear();
  for (const auto& attr : sensitive_->numeric) {
    std::vector<double> sums(static_cast<size_t>(k_), 0.0);
    for (size_t i = 0; i < n_; ++i) {
      sums[static_cast<size_t>(assignment_[i])] += attr.values[i];
    }
    num_sums_.push_back(std::move(sums));
  }
  cat_u2_.assign(sensitive_->categorical.size(),
                 std::vector<double>(static_cast<size_t>(k_), 0.0));
  cat_uq_.assign(sensitive_->categorical.size(),
                 std::vector<double>(static_cast<size_t>(k_), 0.0));
  cat_q2_.assign(sensitive_->categorical.size(), 0.0);
  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    double q2 = 0.0;
    for (int s = 0; s < attr.cardinality; ++s) {
      q2 += attr.dataset_fractions[s] * attr.dataset_fractions[s];
    }
    cat_q2_[a] = q2;
    for (int c = 0; c < k_; ++c) RecomputeCatMoments(a, c);
  }
  proto_counts_ = counts_;
  proto_sums_ = sums_;
  proto_sum_norms_ = sum_norms_;
}

void FairKMState::RecomputeCatMoments(size_t a, int c) {
  const auto& attr = sensitive_->categorical[a];
  const int m = attr.cardinality;
  const int64_t* counts = cat_counts_[a].data() + static_cast<size_t>(c) * m;
  const double size = static_cast<double>(counts_[static_cast<size_t>(c)]);
  kernels::CatMoments(counts, attr.dataset_fractions.data(),
                      static_cast<size_t>(m), size,
                      &cat_u2_[a][static_cast<size_t>(c)],
                      &cat_uq_[a][static_cast<size_t>(c)]);
}

double FairKMState::DistanceToMean(size_t i, const double* sums, double count) const {
  const double* row = points_->Row(i);
  const double inv = 1.0 / count;
  double total = 0.0;
  for (size_t j = 0; j < d_; ++j) {
    const double diff = row[j] - sums[j] * inv;
    total += diff * diff;
  }
  return total;
}

double FairKMState::CachedDistanceToMean(size_t i, const double* sums,
                                         double sum_norm, double count) const {
  const double* row = points_->Row(i);
  const double dot = kernels::Dot(row, sums, d_);
  const double inv = 1.0 / count;
  const double dist = point_norms_[i] - 2.0 * dot * inv + sum_norm * inv * inv;
  // The expanded form can cancel to a small negative where the true distance
  // is ~0; clamp so a point on its centroid never reports a fake gain.
  return dist > 0.0 ? dist : 0.0;
}

double FairKMState::DeltaKMeans(size_t i, int to) const {
  const int from = assignment_[i];
  if (to == from) return 0.0;
  const std::vector<size_t>& counts = use_snapshot_ ? proto_counts_ : counts_;
  const std::vector<double>& sums = use_snapshot_ ? proto_sums_ : sums_;
  const std::vector<double>& sum_norms =
      use_snapshot_ ? proto_sum_norms_ : sum_norms_;

  double delta = 0.0;
  // Removing i from its cluster: SSE decreases by c/(c-1) * ||x - mu||^2
  // (equivalently the paper's Eqs. 11-12). A singleton cluster's SSE is
  // already 0, so removal contributes nothing.
  const size_t c_from = counts[static_cast<size_t>(from)];
  if (c_from > 1) {
    const double dist = CachedDistanceToMean(
        i, sums.data() + static_cast<size_t>(from) * d_,
        sum_norms[static_cast<size_t>(from)], static_cast<double>(c_from));
    delta -= static_cast<double>(c_from) / static_cast<double>(c_from - 1) * dist;
  }
  // Adding i to the target: SSE increases by c/(c+1) * ||x - mu||^2
  // (Eqs. 13-14); adding to an empty cluster costs nothing.
  const size_t c_to = counts[static_cast<size_t>(to)];
  if (c_to > 0) {
    const double dist = CachedDistanceToMean(
        i, sums.data() + static_cast<size_t>(to) * d_,
        sum_norms[static_cast<size_t>(to)], static_cast<double>(c_to));
    delta += static_cast<double>(c_to) / static_cast<double>(c_to + 1) * dist;
  }
  return delta;
}

void FairKMState::DeltaKMeansAllClusters(size_t i, double* out) const {
  const std::vector<size_t>& counts = use_snapshot_ ? proto_counts_ : counts_;
  const std::vector<double>& sums = use_snapshot_ ? proto_sums_ : sums_;
  const std::vector<double>& sum_norms =
      use_snapshot_ ? proto_sum_norms_ : sum_norms_;
  const int from = assignment_[i];
  const double* row = points_->Row(i);
  const double xn = point_norms_[i];

  // Pass 1: the k dot products x . S_c as one blocked GEMV over the k x d
  // sums matrix (the dispatch-selected kernel backend; everything else is
  // O(k)), then fold each dot into the expanded-form distance in place.
  kernels::Gemv(row, sums.data(), static_cast<size_t>(k_), d_, out);
  for (int c = 0; c < k_; ++c) {
    const size_t cnt = counts[static_cast<size_t>(c)];
    if (cnt == 0) {
      out[c] = 0.0;
      continue;
    }
    const double inv = 1.0 / static_cast<double>(cnt);
    const double dist = xn - 2.0 * out[c] * inv +
                        sum_norms[static_cast<size_t>(c)] * inv * inv;
    // Same cancellation clamp as CachedDistanceToMean.
    out[c] = dist > 0.0 ? dist : 0.0;
  }

  // Pass 2: fold the shared removal term into per-candidate deltas.
  const size_t c_from = counts[static_cast<size_t>(from)];
  const double removal =
      c_from > 1 ? -static_cast<double>(c_from) /
                       static_cast<double>(c_from - 1) * out[from]
                 : 0.0;
  for (int c = 0; c < k_; ++c) {
    if (c == from) {
      out[c] = 0.0;
      continue;
    }
    const size_t cnt = counts[static_cast<size_t>(c)];
    const double addition =
        cnt > 0 ? static_cast<double>(cnt) / static_cast<double>(cnt + 1) * out[c]
                : 0.0;
    out[c] = removal + addition;
  }
}

double FairKMState::ReferenceDeltaKMeans(size_t i, int to) const {
  const int from = assignment_[i];
  if (to == from) return 0.0;
  const std::vector<size_t>& counts = use_snapshot_ ? proto_counts_ : counts_;
  const std::vector<double>& sums = use_snapshot_ ? proto_sums_ : sums_;

  double delta = 0.0;
  const size_t c_from = counts[static_cast<size_t>(from)];
  if (c_from > 1) {
    const double dist =
        DistanceToMean(i, sums.data() + static_cast<size_t>(from) * d_,
                       static_cast<double>(c_from));
    delta -= static_cast<double>(c_from) / static_cast<double>(c_from - 1) * dist;
  }
  const size_t c_to = counts[static_cast<size_t>(to)];
  if (c_to > 0) {
    const double dist = DistanceToMean(i, sums.data() + static_cast<size_t>(to) * d_,
                                       static_cast<double>(c_to));
    delta += static_cast<double>(c_to) / static_cast<double>(c_to + 1) * dist;
  }
  return delta;
}

double FairKMState::DeltaFairness(size_t i, int to) const {
  const int from = assignment_[i];
  if (to == from || sensitive_->empty()) return 0.0;
  const size_t c_from = counts_[static_cast<size_t>(from)];
  const size_t c_to = counts_[static_cast<size_t>(to)];
  FAIRKM_DCHECK(c_from >= 1);

  const double scale_from_before = ClusterScale(config_.weighting, c_from, n_);
  const double scale_from_after = ClusterScale(config_.weighting, c_from - 1, n_);
  const double scale_to_before = ClusterScale(config_.weighting, c_to, n_);
  const double scale_to_after = ClusterScale(config_.weighting, c_to + 1, n_);

  double delta = 0.0;

  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    const int m = attr.cardinality;
    const int32_t v = attr.codes[i];
    const double q_v = attr.dataset_fractions[v];
    const double q2 = cat_q2_[a];
    const double norm =
        config_.normalize_domain ? 1.0 / static_cast<double>(m) : 1.0;

    // Origin cluster: removal sends u_s -> u_s + q_s - [s=v], so the new
    // moment is U2 + Q2 + 1 + 2 (UQ - u_v - q_v); u_v touches one count.
    const double u2_from = cat_u2_[a][static_cast<size_t>(from)];
    const double uq_from = cat_uq_[a][static_cast<size_t>(from)];
    const double u_v_from =
        static_cast<double>(
            cat_counts_[a][static_cast<size_t>(from) * m + v]) -
        static_cast<double>(c_from) * q_v;
    const double after_from = u2_from + q2 + 1.0 + 2.0 * (uq_from - u_v_from - q_v);

    // Target cluster: insertion sends u_s -> u_s - q_s + [s=v].
    const double u2_to = cat_u2_[a][static_cast<size_t>(to)];
    const double uq_to = cat_uq_[a][static_cast<size_t>(to)];
    const double u_v_to =
        static_cast<double>(cat_counts_[a][static_cast<size_t>(to) * m + v]) -
        static_cast<double>(c_to) * q_v;
    const double after_to = u2_to + q2 + 1.0 - 2.0 * (uq_to - u_v_to + q_v);

    delta += attr.weight * norm *
             ((scale_from_after * after_from - scale_from_before * u2_from) +
              (scale_to_after * after_to - scale_to_before * u2_to));
  }

  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    const auto& attr = sensitive_->numeric[a];
    const double x = attr.values[i];
    const double mean = attr.dataset_mean;
    const double t_from = num_sums_[a][static_cast<size_t>(from)];
    const double t_to = num_sums_[a][static_cast<size_t>(to)];
    // u = T_C - c * mean; removal: u' = u - x + mean; insertion: u' = u + x - mean.
    const double u_from = t_from - static_cast<double>(c_from) * mean;
    const double u_from_after = u_from - x + mean;
    const double u_to = t_to - static_cast<double>(c_to) * mean;
    const double u_to_after = u_to + x - mean;
    delta += attr.weight *
             ((scale_from_after * u_from_after * u_from_after -
               scale_from_before * u_from * u_from) +
              (scale_to_after * u_to_after * u_to_after -
               scale_to_before * u_to * u_to));
  }
  return delta;
}

double FairKMState::ReferenceDeltaFairness(size_t i, int to) const {
  const int from = assignment_[i];
  if (to == from || sensitive_->empty()) return 0.0;
  const size_t c_from = counts_[static_cast<size_t>(from)];
  const size_t c_to = counts_[static_cast<size_t>(to)];
  FAIRKM_DCHECK(c_from >= 1);

  double delta = 0.0;

  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    const int m = attr.cardinality;
    const int32_t v = attr.codes[i];
    const int64_t* from_counts =
        cat_counts_[a].data() + static_cast<size_t>(from) * m;
    const int64_t* to_counts = cat_counts_[a].data() + static_cast<size_t>(to) * m;
    const double norm =
        config_.normalize_domain ? 1.0 / static_cast<double>(m) : 1.0;

    // Origin cluster: u_s = C_s - c q_s before; after removing i the size is
    // c-1 and C_v drops by one, so u'_s = (C_s - I[s=v]) - (c-1) q_s.
    double before_from = 0.0, after_from = 0.0;
    for (int s = 0; s < m; ++s) {
      const double q = attr.dataset_fractions[s];
      const double cs = static_cast<double>(from_counts[s]);
      const double u = cs - static_cast<double>(c_from) * q;
      const double u_after =
          (cs - (s == v ? 1.0 : 0.0)) - static_cast<double>(c_from - 1) * q;
      before_from += u * u;
      after_from += u_after * u_after;
    }
    // Target cluster: size grows to c+1 and C_v gains one.
    double before_to = 0.0, after_to = 0.0;
    for (int s = 0; s < m; ++s) {
      const double q = attr.dataset_fractions[s];
      const double cs = static_cast<double>(to_counts[s]);
      const double u = cs - static_cast<double>(c_to) * q;
      const double u_after =
          (cs + (s == v ? 1.0 : 0.0)) - static_cast<double>(c_to + 1) * q;
      before_to += u * u;
      after_to += u_after * u_after;
    }
    const double scale_from_before = ClusterScale(config_.weighting, c_from, n_);
    const double scale_from_after = ClusterScale(config_.weighting, c_from - 1, n_);
    const double scale_to_before = ClusterScale(config_.weighting, c_to, n_);
    const double scale_to_after = ClusterScale(config_.weighting, c_to + 1, n_);
    delta += attr.weight * norm *
             ((scale_from_after * after_from - scale_from_before * before_from) +
              (scale_to_after * after_to - scale_to_before * before_to));
  }

  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    const auto& attr = sensitive_->numeric[a];
    const double x = attr.values[i];
    const double mean = attr.dataset_mean;
    const double t_from = num_sums_[a][static_cast<size_t>(from)];
    const double t_to = num_sums_[a][static_cast<size_t>(to)];
    const double u_from = t_from - static_cast<double>(c_from) * mean;
    const double u_from_after = u_from - x + mean;
    const double u_to = t_to - static_cast<double>(c_to) * mean;
    const double u_to_after = u_to + x - mean;
    delta += attr.weight *
             ((ClusterScale(config_.weighting, c_from - 1, n_) * u_from_after *
                   u_from_after -
               ClusterScale(config_.weighting, c_from, n_) * u_from * u_from) +
              (ClusterScale(config_.weighting, c_to + 1, n_) * u_to_after * u_to_after -
               ClusterScale(config_.weighting, c_to, n_) * u_to * u_to));
  }
  return delta;
}

void FairKMState::Move(size_t i, int to) {
  const int from = assignment_[i];
  if (to == from) return;
  FAIRKM_DCHECK(to >= 0 && to < k_);
  const double* row = points_->Row(i);
  double* from_sums = sums_.data() + static_cast<size_t>(from) * d_;
  double* to_sums = sums_.data() + static_cast<size_t>(to) * d_;
  for (size_t j = 0; j < d_; ++j) {
    from_sums[j] -= row[j];
    to_sums[j] += row[j];
  }
  sum_norms_[static_cast<size_t>(from)] = kernels::Dot(from_sums, from_sums, d_);
  sum_norms_[static_cast<size_t>(to)] = kernels::Dot(to_sums, to_sums, d_);
  --counts_[static_cast<size_t>(from)];
  ++counts_[static_cast<size_t>(to)];
  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    const int32_t v = attr.codes[i];
    --cat_counts_[a][static_cast<size_t>(from) * attr.cardinality + v];
    ++cat_counts_[a][static_cast<size_t>(to) * attr.cardinality + v];
    RecomputeCatMoments(a, from);
    RecomputeCatMoments(a, to);
  }
  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    const double x = sensitive_->numeric[a].values[i];
    num_sums_[a][static_cast<size_t>(from)] -= x;
    num_sums_[a][static_cast<size_t>(to)] += x;
  }
  assignment_[i] = static_cast<int32_t>(to);
}

double FairKMState::KMeansTerm() const {
  data::Matrix centroids = Centroids();
  return cluster::SumOfSquaredErrors(*points_, assignment_, centroids);
}

double FairKMState::FairnessTerm() const {
  return ComputeFairnessTerm(*sensitive_, assignment_, k_, config_);
}

data::Matrix FairKMState::Centroids() const {
  data::Matrix centroids(static_cast<size_t>(k_), d_);
  for (int c = 0; c < k_; ++c) {
    const size_t size = counts_[static_cast<size_t>(c)];
    if (size == 0) continue;
    const double inv = 1.0 / static_cast<double>(size);
    const double* src = sums_.data() + static_cast<size_t>(c) * d_;
    double* dst = centroids.Row(static_cast<size_t>(c));
    for (size_t j = 0; j < d_; ++j) dst[j] = src[j] * inv;
  }
  return centroids;
}

void FairKMState::EnablePrototypeSnapshot(bool enable) {
  use_snapshot_ = enable;
  if (enable) RefreshPrototypes();
}

void FairKMState::RefreshPrototypes() {
  proto_counts_ = counts_;
  proto_sums_ = sums_;
  proto_sum_norms_ = sum_norms_;
}

}  // namespace core
}  // namespace fairkm
