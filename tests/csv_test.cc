#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace fairkm {
namespace {

TEST(CsvParseTest, SimpleTable) {
  auto r = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(r.ok());
  const CsvTable& t = r.ValueOrDie();
  EXPECT_EQ(t.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(t.rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvParseTest, MissingTrailingNewline) {
  auto r = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_rows(), 1u);
}

TEST(CsvParseTest, QuotedFieldsWithDelimiters) {
  auto r = ParseCsv("name,notes\nalice,\"likes, commas\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows[0][1], "likes, commas");
}

TEST(CsvParseTest, EscapedQuotes) {
  auto r = ParseCsv("a\n\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows[0][0], "she said \"hi\"");
}

TEST(CsvParseTest, EmbeddedNewlines) {
  auto r = ParseCsv("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows[0][0], "line1\nline2");
}

TEST(CsvParseTest, CrLfLineEndings) {
  auto r = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvParseTest, NoHeaderSynthesizesColumnNames) {
  auto r = ParseCsv("1,2\n3,4\n", ',', /*has_header=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().header, (std::vector<std::string>{"c0", "c1"}));
  EXPECT_EQ(r.ValueOrDie().num_rows(), 2u);
}

TEST(CsvParseTest, RaggedRowRejected) {
  auto r = ParseCsv("a,b\n1\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvParseTest, UnterminatedQuoteRejected) {
  auto r = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvParseTest, EmptyInput) {
  auto r = ParseCsv("");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().num_rows(), 0u);
  EXPECT_EQ(r.ValueOrDie().num_cols(), 0u);
}

TEST(CsvParseTest, AlternateDelimiter) {
  auto r = ParseCsv("a;b\n1;2\n", ';');
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows[0][1], "2");
}

TEST(CsvWriteTest, RoundTrip) {
  CsvTable t;
  t.header = {"x", "y"};
  t.rows = {{"plain", "with, comma"}, {"with \"quote\"", "multi\nline"}};
  std::string text = WriteCsv(t);
  auto r = ParseCsv(text);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().header, t.header);
  EXPECT_EQ(r.ValueOrDie().rows, t.rows);
}

TEST(CsvColumnIndexTest, FindsAndRejects) {
  CsvTable t;
  t.header = {"x", "y"};
  auto idx = t.ColumnIndex("y");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.ValueOrDie(), 1u);
  EXPECT_EQ(t.ColumnIndex("z").status().code(), StatusCode::kNotFound);
}

TEST(CsvFileTest, WriteAndReadBack) {
  CsvTable t;
  t.header = {"a"};
  t.rows = {{"1"}, {"2"}};
  const std::string path =
      (std::filesystem::temp_directory_path() / "fairkm_csv_test.csv").string();
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows, t.rows);
  std::remove(path.c_str());
}

TEST(CsvFileTest, MissingFileIsIOError) {
  auto r = ReadCsvFile("/nonexistent/path/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace fairkm
