// cluster::Clusterer registry tests: built-in registrations, name-keyed
// creation, equivalence with the direct method entry points, the FairKM
// adapter's warm-session reuse, and custom registration.

#include "cluster/clusterer.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "cluster/zgya.h"
#include "core/fairkm.h"
#include "core/solver.h"
#include "testlib/worlds.h"

// This suite is an intentional caller of the deprecated RunFairKM wrapper:
// it is (part of) the oracle pinning the wrapper's bit-identical-to-solver
// contract, so the deprecation warning is suppressed rather than ported away.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"


namespace fairkm {
namespace cluster {
namespace {

using testutil::MakeSeededWorld;
using testutil::SeededWorld;

bool Contains(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

TEST(ClustererRegistryTest, BuiltinsAreRegistered) {
  core::EnsureFairKMClustererRegistered();
  const std::vector<std::string> names = RegisteredClusterers();
  EXPECT_TRUE(Contains(names, "kmeans"));
  EXPECT_TRUE(Contains(names, "zgya"));
  EXPECT_TRUE(Contains(names, "zgya-hard"));
  EXPECT_TRUE(Contains(names, "fairkm"));
  EXPECT_TRUE(IsClustererRegistered("kmeans"));
  EXPECT_FALSE(IsClustererRegistered("no-such-method"));
}

TEST(ClustererRegistryTest, UnknownNameListsKnownOnes) {
  auto result = CreateClusterer("no-such-method");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("kmeans"), std::string::npos);
}

TEST(ClustererRegistryTest, EmptyNameRejected) {
  EXPECT_FALSE(RegisterClusterer("", nullptr).ok());
}

TEST(ClustererRegistryTest, KMeansViaRegistryMatchesDirectCall) {
  const SeededWorld world = MakeSeededWorld(41);
  ClustererOptions options;
  options.k = 3;
  auto clusterer = CreateClusterer("kmeans", options).ValueOrDie();
  EXPECT_EQ(clusterer->name(), "kmeans");
  Rng registry_rng(7);
  const ClusteringResult via_registry =
      clusterer->Cluster(world.points, world.sensitive, &registry_rng)
          .ValueOrDie();

  KMeansOptions direct;
  direct.k = 3;
  Rng direct_rng(7);
  const ClusteringResult via_direct =
      RunKMeans(world.points, direct, &direct_rng).ValueOrDie();
  EXPECT_EQ(via_registry.assignment, via_direct.assignment);
  EXPECT_EQ(via_registry.iterations, via_direct.iterations);
}

TEST(ClustererRegistryTest, ZgyaViaRegistryMatchesDirectCall) {
  const SeededWorld world = MakeSeededWorld(42);
  const std::string attr_name = world.sensitive.categorical[0].name;
  ClustererOptions options;
  options.k = 3;
  options.attribute = attr_name;
  auto clusterer = CreateClusterer("zgya-hard", options).ValueOrDie();
  Rng registry_rng(9);
  const ClusteringResult via_registry =
      clusterer->Cluster(world.points, world.sensitive, &registry_rng)
          .ValueOrDie();

  ZgyaOptions direct;
  direct.k = 3;
  direct.mode = ZgyaOptions::Mode::kHardMoves;
  Rng direct_rng(9);
  const ZgyaResult via_direct =
      RunZgya(world.points, world.sensitive.categorical[0], direct, &direct_rng)
          .ValueOrDie();
  EXPECT_EQ(via_registry.assignment, via_direct.assignment);
  EXPECT_EQ(via_registry.lambda_used, via_direct.lambda_used);
}

TEST(ClustererRegistryTest, ZgyaWithoutAttributeNeedsSingleAttributeView) {
  const SeededWorld world = MakeSeededWorld(43);  // 2 categorical attributes.
  auto clusterer = CreateClusterer("zgya").ValueOrDie();
  Rng rng(1);
  EXPECT_FALSE(clusterer->Cluster(world.points, world.sensitive, &rng).ok());
}

TEST(ClustererRegistryTest, FairKMViaRegistryMatchesRunFairKM) {
  core::EnsureFairKMClustererRegistered();
  const SeededWorld world = MakeSeededWorld(44);
  ClustererOptions options;
  options.k = 3;
  options.lambda = 80.0;
  options.max_iterations = 10;
  auto clusterer = CreateClusterer("fairkm", options).ValueOrDie();
  EXPECT_EQ(clusterer->name(), "fairkm");
  Rng registry_rng(3);
  const ClusteringResult via_registry =
      clusterer->Cluster(world.points, world.sensitive, &registry_rng)
          .ValueOrDie();

  core::FairKMOptions direct;
  direct.k = 3;
  direct.lambda = 80.0;
  direct.max_iterations = 10;
  Rng direct_rng(3);
  const core::FairKMResult via_direct =
      core::RunFairKM(world.points, world.sensitive, direct, &direct_rng)
          .ValueOrDie();
  EXPECT_EQ(via_registry.assignment, via_direct.assignment);
  EXPECT_EQ(via_registry.lambda_used, via_direct.lambda_used);
  EXPECT_EQ(via_registry.iterations, via_direct.iterations);
  EXPECT_EQ(via_registry.sweep_seconds > 0.0, via_direct.sweep_seconds > 0.0);
}

TEST(ClustererRegistryTest, FairKMAdapterWarmReuseIsBitIdentical) {
  const SeededWorld world = MakeSeededWorld(45);
  core::FairKMOptions options;
  options.k = 3;
  options.lambda = 80.0;
  auto clusterer = core::MakeFairKMClusterer(options);

  Rng first_rng(5);
  const ClusteringResult first =
      clusterer->Cluster(world.points, world.sensitive, &first_rng).ValueOrDie();
  // Second call over the SAME objects rides the warm solver inside.
  Rng second_rng(5);
  const ClusteringResult second =
      clusterer->Cluster(world.points, world.sensitive, &second_rng).ValueOrDie();
  EXPECT_EQ(first.assignment, second.assignment);
  EXPECT_EQ(first.iterations, second.iterations);

  // Switching inputs transparently rebuilds the session.
  const SeededWorld other = MakeSeededWorld(46);
  Rng other_rng(5);
  const ClusteringResult rebuilt =
      clusterer->Cluster(other.points, other.sensitive, &other_rng).ValueOrDie();
  EXPECT_EQ(rebuilt.assignment.size(), other.points.rows());
}

TEST(ClustererRegistryTest, FairKMAdapterFingerprintCatchesRecycledStorage) {
  SeededWorld world = MakeSeededWorld(49);
  core::FairKMOptions options;
  options.k = 3;
  options.lambda = 80.0;
  auto clusterer = core::MakeFairKMClusterer(options);
  Rng first_rng(5);
  ASSERT_TRUE(
      clusterer->Cluster(world.points, world.sensitive, &first_rng).ok());

  // Recycling the SAME Matrix object for different contents is outside the
  // session-reuse contract, but the adapter's content fingerprint must
  // still catch it and rebuild instead of clustering stale data.
  for (size_t i = 0; i < world.points.rows(); ++i) {
    for (size_t j = 0; j < world.points.cols(); ++j) {
      world.points.Row(i)[j] = 0.5 - world.points.Row(i)[j];
    }
  }
  Rng second_rng(5);
  const ClusteringResult second =
      clusterer->Cluster(world.points, world.sensitive, &second_rng)
          .ValueOrDie();

  auto fresh = core::MakeFairKMClusterer(options);
  Rng fresh_rng(5);
  const ClusteringResult expected =
      fresh->Cluster(world.points, world.sensitive, &fresh_rng).ValueOrDie();
  EXPECT_EQ(second.assignment, expected.assignment);
}

TEST(ClustererRegistryTest, FairKMAdapterAttributeRestriction) {
  const SeededWorld world = MakeSeededWorld(47);
  const std::string attr_name = world.sensitive.categorical[1].name;
  core::FairKMOptions options;
  options.k = 3;
  options.lambda = 80.0;
  auto restricted = core::MakeFairKMClusterer(options, attr_name);
  Rng rng(6);
  const ClusteringResult via_adapter =
      restricted->Cluster(world.points, world.sensitive, &rng).ValueOrDie();

  const data::SensitiveView single =
      world.sensitive.SelectCategorical(attr_name).ValueOrDie();
  Rng direct_rng(6);
  const core::FairKMResult via_direct =
      core::RunFairKM(world.points, single, options, &direct_rng).ValueOrDie();
  EXPECT_EQ(via_adapter.assignment, via_direct.assignment);

  auto missing = core::MakeFairKMClusterer(options, "not-an-attribute");
  Rng missing_rng(6);
  EXPECT_FALSE(missing->Cluster(world.points, world.sensitive, &missing_rng).ok());
}

TEST(ClustererRegistryTest, CustomRegistrationRoundTrips) {
  class Constant : public Clusterer {
   public:
    const std::string& name() const override {
      static const std::string kName = "constant";
      return kName;
    }
    Result<ClusteringResult> Cluster(const data::Matrix& points,
                                     const data::SensitiveView& sensitive,
                                     Rng* rng) override {
      (void)sensitive;
      (void)rng;
      ClusteringResult result;
      result.assignment.assign(points.rows(), 0);
      return result;
    }
  };
  ASSERT_TRUE(RegisterClusterer("constant",
                                [](const ClustererOptions&)
                                    -> Result<std::unique_ptr<Clusterer>> {
                                  return std::unique_ptr<Clusterer>(new Constant);
                                })
                  .ok());
  ASSERT_TRUE(IsClustererRegistered("constant"));
  const SeededWorld world = MakeSeededWorld(48);
  auto clusterer = CreateClusterer("constant").ValueOrDie();
  Rng rng(1);
  const ClusteringResult result =
      clusterer->Cluster(world.points, world.sensitive, &rng).ValueOrDie();
  EXPECT_EQ(result.assignment, cluster::Assignment(world.points.rows(), 0));
}

}  // namespace
}  // namespace cluster
}  // namespace fairkm
