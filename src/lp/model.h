// Linear-program model builder.
//
// Models are built variable-by-variable and constraint-by-constraint, then
// handed to the simplex solver (lp/simplex.h). The builder is deliberately
// dense-solver oriented: problems in this library (fair assignment LPs,
// transportation LPs for fairlet refinement) have at most a few thousand
// variables.

#ifndef FAIRKM_LP_MODEL_H_
#define FAIRKM_LP_MODEL_H_

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fairkm {
namespace lp {

/// \brief Constraint sense.
enum class Sense { kLessEqual, kGreaterEqual, kEqual };

/// \brief One linear constraint: sum(coeff_i * x_i) sense rhs.
struct Constraint {
  std::vector<std::pair<int, double>> terms;
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

/// \brief A minimization LP over non-negative (optionally upper-bounded)
/// variables: min c'x  s.t. constraints, 0 <= x <= upper.
class Model {
 public:
  /// \brief Adds a variable with objective coefficient `cost` and an optional
  /// upper bound; returns its index.
  int AddVariable(double cost, double upper = kInfinity, std::string name = "");

  /// \brief Adds a constraint; duplicate variable indices in `terms` are
  /// summed. Returns error on out-of-range variable indices.
  Status AddConstraint(std::vector<std::pair<int, double>> terms, Sense sense,
                       double rhs, std::string name = "");

  int num_variables() const { return static_cast<int>(costs_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  const std::vector<double>& costs() const { return costs_; }
  const std::vector<double>& upper_bounds() const { return uppers_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const std::string& variable_name(int index) const { return names_[index]; }

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

 private:
  std::vector<double> costs_;
  std::vector<double> uppers_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
};

}  // namespace lp
}  // namespace fairkm

#endif  // FAIRKM_LP_MODEL_H_
