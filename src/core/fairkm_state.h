// Incremental FairKM optimizer state.
//
// Maintains, for a live clustering assignment:
//   * per-cluster sizes and feature sums (exact centroids at all times),
//   * per-cluster value counts for every categorical sensitive attribute,
//   * per-cluster value sums for every numeric sensitive attribute,
// and computes the exact change of both objective terms for a candidate move
// of one point in O(d) (K-Means term, paper Eqs. 11-15 — equivalently the
// classical closed forms) + O(sum_S |Values(S)|) (fairness term, Eqs. 16-19)
// instead of the naive O(n d) full recomputation. Property tests
// (tests/core/fairkm_state_test.cc) verify the deltas against scratch
// recomputation to 1e-9.

#ifndef FAIRKM_CORE_FAIRKM_STATE_H_
#define FAIRKM_CORE_FAIRKM_STATE_H_

#include <cstdint>
#include <vector>

#include "cluster/types.h"
#include "common/status.h"
#include "core/objective.h"
#include "data/matrix.h"
#include "data/sensitive.h"

namespace fairkm {
namespace core {

/// \brief Mutable aggregates backing the round-robin optimization (§4.2).
///
/// The referenced points/sensitive views must outlive the state.
class FairKMState {
 public:
  /// \brief Builds aggregates for an initial assignment. `sensitive` may be
  /// empty (state degenerates to incremental K-Means bookkeeping).
  static Result<FairKMState> Create(const data::Matrix* points,
                                    const data::SensitiveView* sensitive, int k,
                                    cluster::Assignment initial,
                                    FairnessTermConfig config = {});

  /// \brief Exact change of the K-Means term if point `i` moved to `to`
  /// (0 when `to` is its current cluster).
  double DeltaKMeans(size_t i, int to) const;

  /// \brief Exact change of the fairness deviation term for the same move.
  double DeltaFairness(size_t i, int to) const;

  /// \brief Applies the move, updating all aggregates in O(d + sum_S m_S).
  void Move(size_t i, int to);

  /// \brief K-Means term recomputed from scratch against exact centroids.
  double KMeansTerm() const;

  /// \brief Fairness term recomputed from the count aggregates (O(k sum m)).
  double FairnessTerm() const;

  /// \brief Exact centroid matrix (k x d) of the current assignment.
  data::Matrix Centroids() const;

  const cluster::Assignment& assignment() const { return assignment_; }
  int cluster_of(size_t i) const { return assignment_[i]; }
  size_t cluster_size(int c) const { return counts_[static_cast<size_t>(c)]; }
  int k() const { return k_; }
  size_t num_rows() const { return n_; }

  /// \brief Mini-batch support (paper §6.1): when enabled, DeltaKMeans reads
  /// a prototype snapshot instead of the live sums; RefreshPrototypes()
  /// re-synchronizes the snapshot. Fairness aggregates are always live (they
  /// are O(1) to maintain; the paper's bottleneck is the centroid update).
  void EnablePrototypeSnapshot(bool enable);
  void RefreshPrototypes();

 private:
  FairKMState(const data::Matrix* points, const data::SensitiveView* sensitive, int k,
              FairnessTermConfig config);

  void BuildAggregates(cluster::Assignment initial);

  // Squared distance from point i to the mean of the given sums/count pair.
  double DistanceToMean(size_t i, const double* sums, double count) const;

  const data::Matrix* points_;
  const data::SensitiveView* sensitive_;
  int k_;
  size_t n_;
  size_t d_;
  FairnessTermConfig config_;

  cluster::Assignment assignment_;
  std::vector<size_t> counts_;        // Cluster sizes.
  std::vector<double> sums_;          // k x d feature sums (row-major).
  // cat_counts_[a][c * m_a + s] = |C_s| for attribute a.
  std::vector<std::vector<int64_t>> cat_counts_;
  // num_sums_[a][c] = sum of attribute a over cluster c.
  std::vector<std::vector<double>> num_sums_;

  bool use_snapshot_ = false;
  std::vector<size_t> proto_counts_;
  std::vector<double> proto_sums_;
};

}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_FAIRKM_STATE_H_
