#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace fairkm {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return KahanSum(values) / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  RunningStats rs;
  for (double v : values) rs.Add(v);
  return rs.stddev();
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  double lo = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

double KahanSum(const std::vector<double>& values) {
  double sum = 0.0, comp = 0.0;
  for (double v : values) {
    double y = v - comp;
    double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

bool AlmostEqual(double a, double b, double abs_tol, double rel_tol) {
  double diff = std::fabs(a - b);
  double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

}  // namespace fairkm
