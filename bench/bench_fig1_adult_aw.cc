// Reproduces paper Figure 1: Adult, Average Wasserstein (AW) per sensitive
// attribute — ZGYA(S) vs FairKM (All) vs FairKM(S), k = 5.

#include "bench_tables.h"

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Figure 1 — Adult: AW comparison per attribute (k = 5)", env);
  RunFigureComparison(AdultData(env), "aw", env);
  return 0;
}
