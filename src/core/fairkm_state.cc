#include "core/fairkm_state.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/kernels/kernels.h"

namespace fairkm {
namespace core {

namespace {

// Drift charged when a previously empty effective cluster gains its first
// member: the new centroid can be anywhere, so every stale lower bound that
// predates the refill must collapse to zero. Large enough to dwarf any real
// distance, small enough that repeated bumps never overflow to infinity
// (infinities would poison the drift-delta subtractions with NaNs).
constexpr double kEmptyRefillDrift = 1e30;

// Full O(n) passes over the point store (norm cache, initial aggregates,
// scratch SSE) stream in chunks of roughly this many bytes and evict behind
// themselves, so a memory-mapped store never pages fully resident just to
// build or finalize state — the same discipline as PointStore::Open's CRC
// walk. EvictRows is a no-op for the memory backend, and eviction never
// changes what a later read returns, so trajectories are unaffected.
constexpr size_t kResidencyChunkBytes = size_t{8} << 20;

size_t ResidencyChunkRows(size_t stride) {
  return std::max<size_t>(1, kResidencyChunkBytes / (stride * sizeof(double)));
}

}  // namespace

FairKMState::FairKMState(const data::Matrix* points,
                         const data::SensitiveView* sensitive, int k,
                         FairnessTermConfig config)
    : points_(points),
      sensitive_(sensitive),
      k_(k),
      n_(points->rows()),
      d_(points->cols()),
      stride_(data::PaddedStride(points->cols())),
      config_(config) {}

FairKMState::FairKMState(std::shared_ptr<const data::PointStore> store,
                         const data::SensitiveView* sensitive, int k,
                         FairnessTermConfig config)
    : points_(nullptr),
      sensitive_(sensitive),
      k_(k),
      n_(store->rows()),
      d_(store->cols()),
      stride_(store->stride()),
      config_(config),
      store_(std::move(store)) {}

Result<FairKMState> FairKMState::Create(const data::Matrix* points,
                                        const data::SensitiveView* sensitive, int k,
                                        cluster::Assignment initial,
                                        FairnessTermConfig config) {
  if (points == nullptr || sensitive == nullptr) {
    return Status::InvalidArgument("points/sensitive must not be null");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  FAIRKM_RETURN_NOT_OK(cluster::ValidateAssignment(initial, points->rows(), k));
  // Full structural audit, not just num_rows() (which reads only the first
  // attribute): every attribute's length, fraction table and code range —
  // BuildAggregates indexes all of them unchecked.
  FAIRKM_RETURN_NOT_OK(sensitive->Validate(points->rows()));
  // The aligned point store about to be built streams these coordinates
  // through every kernel unchecked — refuse NaN/Inf here, at the boundary.
  FAIRKM_RETURN_NOT_OK(data::ValidateFinite(*points, "points"));
  FairKMState state(points, sensitive, k, config);
  state.BuildAggregates(std::move(initial));
  return state;
}

Result<FairKMState> FairKMState::Create(
    std::shared_ptr<const data::PointStore> store,
    const data::SensitiveView* sensitive, int k, cluster::Assignment initial,
    FairnessTermConfig config) {
  if (store == nullptr || sensitive == nullptr) {
    return Status::InvalidArgument("store/sensitive must not be null");
  }
  if (store->empty()) {
    return Status::InvalidArgument("point store must not be empty");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  FAIRKM_RETURN_NOT_OK(cluster::ValidateAssignment(initial, store->rows(), k));
  FAIRKM_RETURN_NOT_OK(sensitive->Validate(store->rows()));
  // Same boundary rule as the matrix path: kernels stream these rows
  // unchecked. A store Open()ed from disk passed its CRC walk, but the CRC
  // only proves the bytes are what the writer streamed — this rejects a
  // store whose writer was fed NaN/Inf (RSS-bounded scan, evicts behind).
  FAIRKM_RETURN_NOT_OK(data::ValidateFiniteStore(*store, "points"));
  FairKMState state(std::move(store), sensitive, k, config);
  state.BuildAggregates(std::move(initial));
  return state;
}

void FairKMState::BuildAggregates(cluster::Assignment initial) {
  assignment_ = std::move(initial);
  // Immutable caches (aligned store, per-point norms): built once per
  // (points, state) pair; a Reset over the same points skips the O(n d)
  // copy and the allocations entirely — the multi-seed fast path. A
  // store-backed state arrives with store_ already set (possibly mmap) and
  // only needs the norm cache.
  if (store_ == nullptr || store_->rows() != n_ || store_->cols() != d_) {
    store_ = std::make_shared<data::PointStore>(*points_);
    point_norms_.clear();
  }
  const size_t chunk_rows = ResidencyChunkRows(stride_);
  if (point_norms_.size() != n_) {
    point_norms_.assign(n_, 0.0);
    total_point_norm_ = 0.0;
    for (size_t base = 0; base < n_; base += chunk_rows) {
      const size_t end = std::min(n_, base + chunk_rows);
      for (size_t i = base; i < end; ++i) {
        const double* row = store_->Row(i);
        point_norms_[i] = kernels::Dot(row, row, stride_);
        total_point_norm_ += point_norms_[i];
      }
      store_->EvictRows(base, end);
    }
  }
  counts_.assign(static_cast<size_t>(k_), 0);
  sums_.assign(static_cast<size_t>(k_) * stride_, 0.0);
  for (size_t base = 0; base < n_; base += chunk_rows) {
    const size_t end = std::min(n_, base + chunk_rows);
    for (size_t i = base; i < end; ++i) {
      const size_t c = static_cast<size_t>(assignment_[i]);
      ++counts_[c];
      const double* row = store_->Row(i);
      double* acc = sums_.data() + c * stride_;
      for (size_t j = 0; j < d_; ++j) acc[j] += row[j];
    }
    store_->EvictRows(base, end);
  }
  sum_norms_.assign(static_cast<size_t>(k_), 0.0);
  for (int c = 0; c < k_; ++c) {
    const double* s = sums_.data() + static_cast<size_t>(c) * stride_;
    sum_norms_[static_cast<size_t>(c)] = kernels::Dot(s, s, stride_);
  }
  // Per-attribute aggregates: resize the outer vectors once, .assign() the
  // inner ones so repeated Resets reuse their capacity.
  const size_t num_cat = sensitive_->categorical.size();
  const size_t num_num = sensitive_->numeric.size();
  cat_counts_.resize(num_cat);
  for (size_t a = 0; a < num_cat; ++a) {
    const auto& attr = sensitive_->categorical[a];
    cat_counts_[a].assign(static_cast<size_t>(k_) * attr.cardinality, 0);
    for (size_t i = 0; i < n_; ++i) {
      ++cat_counts_[a][static_cast<size_t>(assignment_[i]) * attr.cardinality +
                       attr.codes[i]];
    }
  }
  num_sums_.resize(num_num);
  for (size_t a = 0; a < num_num; ++a) {
    const auto& attr = sensitive_->numeric[a];
    num_sums_[a].assign(static_cast<size_t>(k_), 0.0);
    for (size_t i = 0; i < n_; ++i) {
      num_sums_[a][static_cast<size_t>(assignment_[i])] += attr.values[i];
    }
  }
  cat_u2_.resize(num_cat);
  cat_uq_.resize(num_cat);
  cat_q2_.assign(num_cat, 0.0);
  for (size_t a = 0; a < num_cat; ++a) {
    const auto& attr = sensitive_->categorical[a];
    cat_u2_[a].assign(static_cast<size_t>(k_), 0.0);
    cat_uq_[a].assign(static_cast<size_t>(k_), 0.0);
    double q2 = 0.0;
    for (int s = 0; s < attr.cardinality; ++s) {
      q2 += attr.dataset_fractions[s] * attr.dataset_fractions[s];
    }
    cat_q2_[a] = q2;
    for (int c = 0; c < k_; ++c) RecomputeCatMoments(a, c);
  }
  proto_counts_ = counts_;
  proto_sums_ = sums_;
  proto_sum_norms_ = sum_norms_;
}

Status FairKMState::Reset(cluster::Assignment initial) {
  FAIRKM_RETURN_NOT_OK(cluster::ValidateAssignment(initial, n_, k_));
  BuildAggregates(std::move(initial));
  // Re-derive the bound bookkeeping from the fresh aggregates (zero drift,
  // recomputed tables) — exactly the state a newly created instance with
  // bound tracking enabled would carry.
  if (track_bounds_) EnableBoundTracking(true);
  return Status::OK();
}

Status FairKMState::AdmitAppended(int to) {
  if (points_ != nullptr) {
    return Status::InvalidArgument(
        "AdmitAppended needs a store-backed state (the matrix overload's "
        "private store cannot grow)");
  }
  if (to < 0 || to >= k_) {
    return Status::InvalidArgument("admit target cluster " +
                                   std::to_string(to) + " out of range");
  }
  if (store_->rows() != n_ + 1) {
    return Status::InvalidArgument(
        "AdmitAppended expects the store to hold exactly one appended row "
        "(store has " + std::to_string(store_->rows()) + ", state tracks " +
        std::to_string(n_) + ")");
  }
  if (!sensitive_->empty() && sensitive_->num_rows() != n_ + 1) {
    return Status::InvalidArgument(
        "AdmitAppended expects the sensitive view to hold the appended row");
  }
  const size_t i = n_;
  const double* row = store_->Row(i);
  const double norm = kernels::Dot(row, row, stride_);
  point_norms_.push_back(norm);
  total_point_norm_ += norm;
  assignment_.push_back(static_cast<int32_t>(to));
  const size_t ti = static_cast<size_t>(to);
  ++counts_[ti];
  double* acc = sums_.data() + ti * stride_;
  for (size_t j = 0; j < d_; ++j) acc[j] += row[j];
  sum_norms_[ti] = kernels::Dot(acc, acc, stride_);
  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    const int32_t v = attr.codes[i];
    if (v < 0 || v >= attr.cardinality) {
      return Status::InvalidArgument("admitted row carries code " +
                                     std::to_string(v) +
                                     " outside attribute \"" + attr.name +
                                     "\" cardinality");
    }
    ++cat_counts_[a][ti * attr.cardinality + v];
  }
  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    num_sums_[a][ti] += sensitive_->numeric[a].values[i];
  }
  n_ = store_->rows();
  return Status::OK();
}

Status FairKMState::RetireSwapped(size_t r) {
  if (points_ != nullptr) {
    return Status::InvalidArgument(
        "RetireSwapped needs a store-backed state");
  }
  if (r >= n_) {
    return Status::InvalidArgument("retire row " + std::to_string(r) +
                                   " out of range (n = " + std::to_string(n_) +
                                   ")");
  }
  if (store_->rows() != n_) {
    return Status::InvalidArgument(
        "RetireSwapped must run BEFORE the store shrinks (store has " +
        std::to_string(store_->rows()) + " rows, state tracks " +
        std::to_string(n_) + ")");
  }
  if (n_ == 1) {
    return Status::InvalidArgument(
        "cannot retire the last remaining point (the optimizer needs a "
        "non-empty point set)");
  }
  const size_t ci = static_cast<size_t>(assignment_[r]);
  const double* row = store_->Row(r);
  double* acc = sums_.data() + ci * stride_;
  for (size_t j = 0; j < d_; ++j) acc[j] -= row[j];
  sum_norms_[ci] = kernels::Dot(acc, acc, stride_);
  --counts_[ci];
  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    --cat_counts_[a][ci * attr.cardinality + attr.codes[r]];
  }
  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    num_sums_[a][ci] -= sensitive_->numeric[a].values[r];
  }
  total_point_norm_ -= point_norms_[r];
  const size_t last = n_ - 1;
  assignment_[r] = assignment_[last];
  assignment_.pop_back();
  point_norms_[r] = point_norms_[last];
  point_norms_.pop_back();
  --n_;
  return Status::OK();
}

void FairKMState::RefreshDatasetStats() {
  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    double q2 = 0.0;
    for (int s = 0; s < attr.cardinality; ++s) {
      q2 += attr.dataset_fractions[s] * attr.dataset_fractions[s];
    }
    cat_q2_[a] = q2;
    for (int c = 0; c < k_; ++c) RecomputeCatMoments(a, c);
  }
  if (track_bounds_) EnableBoundTracking(true);
}

Status FairKMState::RebuildFromStore(cluster::Assignment initial) {
  if (points_ != nullptr) {
    return Status::InvalidArgument(
        "RebuildFromStore needs a store-backed state");
  }
  if (store_->empty()) {
    return Status::InvalidArgument("point store must not be empty");
  }
  if (store_->cols() != d_) {
    return Status::InvalidArgument("store feature width changed");
  }
  FAIRKM_RETURN_NOT_OK(
      cluster::ValidateAssignment(initial, store_->rows(), k_));
  FAIRKM_RETURN_NOT_OK(sensitive_->Validate(store_->rows()));
  n_ = store_->rows();
  // Dropping the norm cache forces BuildAggregates down the same chunked
  // from-scratch pass a fresh Create runs, so total_point_norm_ carries the
  // canonical summation order — the bit-identical-oracle half of Flush().
  point_norms_.clear();
  BuildAggregates(std::move(initial));
  if (track_bounds_) EnableBoundTracking(true);
  return Status::OK();
}

void FairKMState::RecomputeCatMoments(size_t a, int c) {
  const auto& attr = sensitive_->categorical[a];
  const int m = attr.cardinality;
  const int64_t* counts = cat_counts_[a].data() + static_cast<size_t>(c) * m;
  const double size = static_cast<double>(counts_[static_cast<size_t>(c)]);
  kernels::CatMoments(counts, attr.dataset_fractions.data(),
                      static_cast<size_t>(m), size,
                      &cat_u2_[a][static_cast<size_t>(c)],
                      &cat_uq_[a][static_cast<size_t>(c)]);
}

void FairKMState::RecomputeFairBounds(int c) {
  const size_t ci = static_cast<size_t>(c);
  const size_t cnt = counts_[ci];
  const double scale_before = ClusterScale(config_.weighting, cnt, n_);
  const double scale_ins_after = ClusterScale(config_.weighting, cnt + 1, n_);
  const double scale_rem_after =
      cnt >= 1 ? ClusterScale(config_.weighting, cnt - 1, n_) : 0.0;
  double rem = 0.0, ins = 0.0;
  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    const size_t m = static_cast<size_t>(attr.cardinality);
    const double wn = attr.weight *
                      (config_.normalize_domain
                           ? 1.0 / static_cast<double>(attr.cardinality)
                           : 1.0);
    double rem_min = 0.0, ins_min = 0.0;
    kernels::CatDeltaBounds(cat_counts_[a].data() + ci * m,
                            attr.dataset_fractions.data(), m,
                            static_cast<double>(cnt), cat_u2_[a][ci],
                            cat_uq_[a][ci], cat_q2_[a], scale_before,
                            scale_rem_after, scale_ins_after,
                            delta_scratch_rem_.data(),
                            delta_scratch_ins_.data(), &rem_min, &ins_min);
    double* rem_row = cat_rem_delta_[a].data() + ci * m;
    double* ins_row = cat_ins_delta_[a].data() + ci * m;
    for (size_t v = 0; v < m; ++v) {
      rem_row[v] = wn * delta_scratch_rem_[v];
      ins_row[v] = wn * delta_scratch_ins_[v];
    }
    ins += wn * ins_min;
    // The removal row of an empty cluster is undefined (and unused): no
    // point is assigned there.
    if (cnt >= 1) rem += wn * rem_min;
  }
  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    const auto& attr = sensitive_->numeric[a];
    const double u = num_sums_[a][ci] - static_cast<double>(cnt) * attr.dataset_mean;
    // scale_after * u_after^2 - scale_before * u^2 >= -scale_before * u^2
    // for any moved value (the after-term is a non-negative scale times a
    // square).
    const double piece = -attr.weight * scale_before * u * u;
    ins += piece;
    if (cnt >= 1) rem += piece;
  }
  fair_rem_bound_[ci] = rem;
  fair_ins_bound_[ci] = ins;
}

double FairKMState::FairRemovalDelta(size_t i) const {
  FAIRKM_DCHECK(track_bounds_);
  const int from = assignment_[i];
  const size_t fi = static_cast<size_t>(from);
  double total = 0.0;
  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    total += cat_rem_delta_[a][fi * static_cast<size_t>(attr.cardinality) +
                               static_cast<size_t>(attr.codes[i])];
  }
  const size_t c_from = counts_[fi];
  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    const auto& attr = sensitive_->numeric[a];
    const double x = attr.values[i];
    const double mean = attr.dataset_mean;
    const double u = num_sums_[a][fi] - static_cast<double>(c_from) * mean;
    const double u_after = u - x + mean;
    total += attr.weight *
             (ClusterScale(config_.weighting, c_from - 1, n_) * u_after * u_after -
              ClusterScale(config_.weighting, c_from, n_) * u * u);
  }
  return total;
}

double FairKMState::FairInsertionDelta(size_t i, int c) const {
  FAIRKM_DCHECK(track_bounds_);
  const size_t ci = static_cast<size_t>(c);
  double total = 0.0;
  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    total += cat_ins_delta_[a][ci * static_cast<size_t>(attr.cardinality) +
                               static_cast<size_t>(attr.codes[i])];
  }
  const size_t c_to = counts_[ci];
  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    const auto& attr = sensitive_->numeric[a];
    const double x = attr.values[i];
    const double mean = attr.dataset_mean;
    const double u = num_sums_[a][ci] - static_cast<double>(c_to) * mean;
    const double u_after = u + x - mean;
    total += attr.weight *
             (ClusterScale(config_.weighting, c_to + 1, n_) * u_after * u_after -
              ClusterScale(config_.weighting, c_to, n_) * u * u);
  }
  return total;
}

void FairKMState::RescanInsertionBounds() {
  ins_best_ = std::numeric_limits<double>::infinity();
  ins_second_ = std::numeric_limits<double>::infinity();
  ins_best_cluster_ = -1;
  for (int c = 0; c < k_; ++c) {
    const double v = fair_ins_bound_[static_cast<size_t>(c)];
    if (v < ins_best_) {
      ins_second_ = ins_best_;
      ins_best_ = v;
      ins_best_cluster_ = c;
    } else if (v < ins_second_) {
      ins_second_ = v;
    }
  }
  if (k_ < 2) ins_second_ = 0.0;  // No insertion candidate exists at all.
}

void FairKMState::RescanAdditionFactors() {
  const std::vector<size_t>& counts = use_snapshot_ ? proto_counts_ : counts_;
  addf_best_ = std::numeric_limits<double>::infinity();
  addf_second_ = std::numeric_limits<double>::infinity();
  addf_best_cluster_ = -1;
  for (int c = 0; c < k_; ++c) {
    const size_t cnt = counts[static_cast<size_t>(c)];
    const double f = cnt == 0 ? 0.0
                              : static_cast<double>(cnt) /
                                    static_cast<double>(cnt + 1);
    if (f < addf_best_) {
      addf_second_ = addf_best_;
      addf_best_ = f;
      addf_best_cluster_ = c;
    } else if (f < addf_second_) {
      addf_second_ = f;
    }
  }
  if (k_ < 2) addf_second_ = 0.0;
}

void FairKMState::AccumulateDrift(int c, double displacement) {
  drift_[static_cast<size_t>(c)] += displacement;
}

void FairKMState::AccumulateMaxStep(double displacement) {
  max_step_sum_ += displacement;
}

double FairKMState::FairInsertionLowerBoundExcluding(int from) const {
  FAIRKM_DCHECK(track_bounds_);
  return ins_best_cluster_ == from ? ins_second_ : ins_best_;
}

double FairKMState::MinAdditionFactorExcluding(int from) const {
  FAIRKM_DCHECK(track_bounds_);
  return addf_best_cluster_ == from ? addf_second_ : addf_best_;
}

void FairKMState::EnableBoundTracking(bool enable) {
  track_bounds_ = enable;
  if (!enable) {
    drift_.clear();
    cat_rem_delta_.clear();
    cat_ins_delta_.clear();
    delta_scratch_rem_.clear();
    delta_scratch_ins_.clear();
    fair_rem_bound_.clear();
    fair_ins_bound_.clear();
    return;
  }
  drift_.assign(static_cast<size_t>(k_), 0.0);
  max_step_sum_ = 0.0;
  const size_t num_cat = sensitive_->categorical.size();
  cat_rem_delta_.resize(num_cat);
  cat_ins_delta_.resize(num_cat);
  size_t max_card = 0;
  for (size_t a = 0; a < num_cat; ++a) {
    const auto& attr = sensitive_->categorical[a];
    const size_t cells =
        static_cast<size_t>(k_) * static_cast<size_t>(attr.cardinality);
    cat_rem_delta_[a].assign(cells, 0.0);
    cat_ins_delta_[a].assign(cells, 0.0);
    max_card = std::max(max_card, static_cast<size_t>(attr.cardinality));
  }
  delta_scratch_rem_.assign(max_card, 0.0);
  delta_scratch_ins_.assign(max_card, 0.0);
  fair_rem_bound_.assign(static_cast<size_t>(k_), 0.0);
  fair_ins_bound_.assign(static_cast<size_t>(k_), 0.0);
  for (int c = 0; c < k_; ++c) RecomputeFairBounds(c);
  RescanInsertionBounds();
  RescanAdditionFactors();
}

double FairKMState::DistanceToMean(size_t i, const double* sums, double count) const {
  // Store rows carry the same first d_ coordinates as the source matrix
  // (padding lanes are untouched here), so this stays bit-identical to the
  // historical matrix read and works for store-backed states too.
  const double* row = store_->Row(i);
  const double inv = 1.0 / count;
  double total = 0.0;
  for (size_t j = 0; j < d_; ++j) {
    const double diff = row[j] - sums[j] * inv;
    total += diff * diff;
  }
  return total;
}

double FairKMState::CachedDistanceToMean(size_t i, const double* sums,
                                         double sum_norm, double count) const {
  const double* row = store_->Row(i);
  const double dot = kernels::Dot(row, sums, stride_);
  const double inv = 1.0 / count;
  const double dist = point_norms_[i] - 2.0 * dot * inv + sum_norm * inv * inv;
  // The expanded form can cancel to a small negative where the true distance
  // is ~0; clamp so a point on its centroid never reports a fake gain.
  return dist > 0.0 ? dist : 0.0;
}

double FairKMState::DeltaKMeans(size_t i, int to) const {
  const int from = assignment_[i];
  if (to == from) return 0.0;
  const std::vector<size_t>& counts = use_snapshot_ ? proto_counts_ : counts_;
  const data::AlignedVector& sums = use_snapshot_ ? proto_sums_ : sums_;
  const std::vector<double>& sum_norms =
      use_snapshot_ ? proto_sum_norms_ : sum_norms_;

  double delta = 0.0;
  // Removing i from its cluster: SSE decreases by c/(c-1) * ||x - mu||^2
  // (equivalently the paper's Eqs. 11-12). A singleton cluster's SSE is
  // already 0, so removal contributes nothing.
  const size_t c_from = counts[static_cast<size_t>(from)];
  if (c_from > 1) {
    const double dist = CachedDistanceToMean(
        i, sums.data() + static_cast<size_t>(from) * stride_,
        sum_norms[static_cast<size_t>(from)], static_cast<double>(c_from));
    delta -= static_cast<double>(c_from) / static_cast<double>(c_from - 1) * dist;
  }
  // Adding i to the target: SSE increases by c/(c+1) * ||x - mu||^2
  // (Eqs. 13-14); adding to an empty cluster costs nothing.
  const size_t c_to = counts[static_cast<size_t>(to)];
  if (c_to > 0) {
    const double dist = CachedDistanceToMean(
        i, sums.data() + static_cast<size_t>(to) * stride_,
        sum_norms[static_cast<size_t>(to)], static_cast<double>(c_to));
    delta += static_cast<double>(c_to) / static_cast<double>(c_to + 1) * dist;
  }
  return delta;
}

void FairKMState::DeltaKMeansAllClusters(size_t i, double* out,
                                         double* dists) const {
  const std::vector<size_t>& counts = use_snapshot_ ? proto_counts_ : counts_;
  const data::AlignedVector& sums = use_snapshot_ ? proto_sums_ : sums_;
  const std::vector<double>& sum_norms =
      use_snapshot_ ? proto_sum_norms_ : sum_norms_;
  const int from = assignment_[i];
  const double* row = store_->Row(i);
  const double xn = point_norms_[i];

  // Pass 1: the k dot products x . S_c as one aligned no-tail GEMV over the
  // k x stride sums matrix (the dispatch-selected kernel backend; everything
  // else is O(k)), then fold each dot into the expanded-form distance in
  // place, optionally exporting the distances for the pruning refresh.
  kernels::GemvAligned(row, sums.data(), static_cast<size_t>(k_), stride_, out);
  for (int c = 0; c < k_; ++c) {
    const size_t cnt = counts[static_cast<size_t>(c)];
    if (cnt == 0) {
      // An empty cluster accepts the point at zero cost; export distance 0
      // so every bound derived from it stays conservative.
      out[c] = 0.0;
      if (dists != nullptr) dists[c] = 0.0;
      continue;
    }
    const double inv = 1.0 / static_cast<double>(cnt);
    const double dist = xn - 2.0 * out[c] * inv +
                        sum_norms[static_cast<size_t>(c)] * inv * inv;
    // Same cancellation clamp as CachedDistanceToMean.
    const double clamped = dist > 0.0 ? dist : 0.0;
    out[c] = clamped;
    if (dists != nullptr) dists[c] = clamped;
  }

  // Pass 2: fold the shared removal term into per-candidate deltas.
  const size_t c_from = counts[static_cast<size_t>(from)];
  const double removal =
      c_from > 1 ? -static_cast<double>(c_from) /
                       static_cast<double>(c_from - 1) * out[from]
                 : 0.0;
  for (int c = 0; c < k_; ++c) {
    if (c == from) {
      out[c] = 0.0;
      continue;
    }
    const size_t cnt = counts[static_cast<size_t>(c)];
    const double addition =
        cnt > 0 ? static_cast<double>(cnt) / static_cast<double>(cnt + 1) * out[c]
                : 0.0;
    out[c] = removal + addition;
  }
}

double FairKMState::ReferenceDeltaKMeans(size_t i, int to) const {
  const int from = assignment_[i];
  if (to == from) return 0.0;
  const std::vector<size_t>& counts = use_snapshot_ ? proto_counts_ : counts_;
  const data::AlignedVector& sums = use_snapshot_ ? proto_sums_ : sums_;

  double delta = 0.0;
  const size_t c_from = counts[static_cast<size_t>(from)];
  if (c_from > 1) {
    const double dist =
        DistanceToMean(i, sums.data() + static_cast<size_t>(from) * stride_,
                       static_cast<double>(c_from));
    delta -= static_cast<double>(c_from) / static_cast<double>(c_from - 1) * dist;
  }
  const size_t c_to = counts[static_cast<size_t>(to)];
  if (c_to > 0) {
    const double dist = DistanceToMean(i, sums.data() + static_cast<size_t>(to) * stride_,
                                       static_cast<double>(c_to));
    delta += static_cast<double>(c_to) / static_cast<double>(c_to + 1) * dist;
  }
  return delta;
}

double FairKMState::DeltaFairness(size_t i, int to) const {
  const int from = assignment_[i];
  if (to == from || sensitive_->empty()) return 0.0;
  const size_t c_from = counts_[static_cast<size_t>(from)];
  const size_t c_to = counts_[static_cast<size_t>(to)];
  FAIRKM_DCHECK(c_from >= 1);

  const double scale_from_before = ClusterScale(config_.weighting, c_from, n_);
  const double scale_from_after = ClusterScale(config_.weighting, c_from - 1, n_);
  const double scale_to_before = ClusterScale(config_.weighting, c_to, n_);
  const double scale_to_after = ClusterScale(config_.weighting, c_to + 1, n_);

  double delta = 0.0;

  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    const int m = attr.cardinality;
    const int32_t v = attr.codes[i];
    const double q_v = attr.dataset_fractions[v];
    const double q2 = cat_q2_[a];
    const double norm =
        config_.normalize_domain ? 1.0 / static_cast<double>(m) : 1.0;

    // Origin cluster: removal sends u_s -> u_s + q_s - [s=v], so the new
    // moment is U2 + Q2 + 1 + 2 (UQ - u_v - q_v); u_v touches one count.
    const double u2_from = cat_u2_[a][static_cast<size_t>(from)];
    const double uq_from = cat_uq_[a][static_cast<size_t>(from)];
    const double u_v_from =
        static_cast<double>(
            cat_counts_[a][static_cast<size_t>(from) * m + v]) -
        static_cast<double>(c_from) * q_v;
    const double after_from = u2_from + q2 + 1.0 + 2.0 * (uq_from - u_v_from - q_v);

    // Target cluster: insertion sends u_s -> u_s - q_s + [s=v].
    const double u2_to = cat_u2_[a][static_cast<size_t>(to)];
    const double uq_to = cat_uq_[a][static_cast<size_t>(to)];
    const double u_v_to =
        static_cast<double>(cat_counts_[a][static_cast<size_t>(to) * m + v]) -
        static_cast<double>(c_to) * q_v;
    const double after_to = u2_to + q2 + 1.0 - 2.0 * (uq_to - u_v_to + q_v);

    delta += attr.weight * norm *
             ((scale_from_after * after_from - scale_from_before * u2_from) +
              (scale_to_after * after_to - scale_to_before * u2_to));
  }

  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    const auto& attr = sensitive_->numeric[a];
    const double x = attr.values[i];
    const double mean = attr.dataset_mean;
    const double t_from = num_sums_[a][static_cast<size_t>(from)];
    const double t_to = num_sums_[a][static_cast<size_t>(to)];
    // u = T_C - c * mean; removal: u' = u - x + mean; insertion: u' = u + x - mean.
    const double u_from = t_from - static_cast<double>(c_from) * mean;
    const double u_from_after = u_from - x + mean;
    const double u_to = t_to - static_cast<double>(c_to) * mean;
    const double u_to_after = u_to + x - mean;
    delta += attr.weight *
             ((scale_from_after * u_from_after * u_from_after -
               scale_from_before * u_from * u_from) +
              (scale_to_after * u_to_after * u_to_after -
               scale_to_before * u_to * u_to));
  }
  return delta;
}

double FairKMState::DeltaFairnessInsertion(const int32_t* cat_codes,
                                           const double* num_values,
                                           int to) const {
  if (sensitive_->empty()) return 0.0;
  const size_t c_to = counts_[static_cast<size_t>(to)];
  const double scale_to_before = ClusterScale(config_.weighting, c_to, n_);
  const double scale_to_after = ClusterScale(config_.weighting, c_to + 1, n_);

  double delta = 0.0;
  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    const int m = attr.cardinality;
    const int32_t v = cat_codes[a];
    FAIRKM_DCHECK(v >= 0 && v < m);
    const double q_v = attr.dataset_fractions[v];
    const double q2 = cat_q2_[a];
    const double norm =
        config_.normalize_domain ? 1.0 / static_cast<double>(m) : 1.0;
    // Insertion sends u_s -> u_s - q_s + [s=v] (same closed form as the
    // target-cluster half of DeltaFairness).
    const double u2_to = cat_u2_[a][static_cast<size_t>(to)];
    const double uq_to = cat_uq_[a][static_cast<size_t>(to)];
    const double u_v_to =
        static_cast<double>(cat_counts_[a][static_cast<size_t>(to) * m + v]) -
        static_cast<double>(c_to) * q_v;
    const double after_to = u2_to + q2 + 1.0 - 2.0 * (uq_to - u_v_to + q_v);
    delta += attr.weight * norm *
             (scale_to_after * after_to - scale_to_before * u2_to);
  }
  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    const auto& attr = sensitive_->numeric[a];
    const double x = num_values[a];
    const double mean = attr.dataset_mean;
    const double u =
        num_sums_[a][static_cast<size_t>(to)] - static_cast<double>(c_to) * mean;
    const double u_after = u + x - mean;
    delta += attr.weight *
             (scale_to_after * u_after * u_after - scale_to_before * u * u);
  }
  return delta;
}

void FairKMState::ExportFairnessMoments(FairnessMomentTables* out) const {
  out->cat_counts = cat_counts_;
  out->cat_u2 = cat_u2_;
  out->cat_uq = cat_uq_;
  out->cat_q2 = cat_q2_;
  out->num_sums = num_sums_;
}

void FairKMState::SaveCheckpoint(Checkpoint* out) const {
  out->assignment = assignment_;
  out->counts = counts_;
  out->sums = sums_;
  out->sum_norms = sum_norms_;
  out->cat_counts = cat_counts_;
  out->num_sums = num_sums_;
  out->cat_u2 = cat_u2_;
  out->cat_uq = cat_uq_;
  out->use_snapshot = use_snapshot_;
  out->proto_counts = proto_counts_;
  out->proto_sums = proto_sums_;
  out->proto_sum_norms = proto_sum_norms_;
  out->track_bounds = track_bounds_;
  out->drift = drift_;
  out->max_step_sum = max_step_sum_;
  out->cat_rem_delta = cat_rem_delta_;
  out->cat_ins_delta = cat_ins_delta_;
  out->fair_rem_bound = fair_rem_bound_;
  out->fair_ins_bound = fair_ins_bound_;
  out->ins_best = ins_best_;
  out->ins_second = ins_second_;
  out->ins_best_cluster = ins_best_cluster_;
  out->addf_best = addf_best_;
  out->addf_second = addf_second_;
  out->addf_best_cluster = addf_best_cluster_;
}

Status FairKMState::RestoreCheckpoint(const Checkpoint& cp) {
  FAIRKM_RETURN_NOT_OK(cluster::ValidateAssignment(cp.assignment, n_, k_));
  if (cp.counts.size() != static_cast<size_t>(k_) ||
      cp.sums.size() != static_cast<size_t>(k_) * stride_ ||
      cp.cat_counts.size() != sensitive_->categorical.size() ||
      cp.num_sums.size() != sensitive_->numeric.size()) {
    return Status::InvalidArgument(
        "checkpoint shape does not match this state's points/sensitive/k");
  }
  if (cp.use_snapshot != use_snapshot_ || cp.track_bounds != track_bounds_) {
    return Status::InvalidArgument(
        "checkpoint was taken under different snapshot/bound-tracking modes");
  }
  assignment_ = cp.assignment;
  counts_ = cp.counts;
  sums_ = cp.sums;
  sum_norms_ = cp.sum_norms;
  cat_counts_ = cp.cat_counts;
  num_sums_ = cp.num_sums;
  cat_u2_ = cp.cat_u2;
  cat_uq_ = cp.cat_uq;
  proto_counts_ = cp.proto_counts;
  proto_sums_ = cp.proto_sums;
  proto_sum_norms_ = cp.proto_sum_norms;
  drift_ = cp.drift;
  max_step_sum_ = cp.max_step_sum;
  cat_rem_delta_ = cp.cat_rem_delta;
  cat_ins_delta_ = cp.cat_ins_delta;
  fair_rem_bound_ = cp.fair_rem_bound;
  fair_ins_bound_ = cp.fair_ins_bound;
  ins_best_ = cp.ins_best;
  ins_second_ = cp.ins_second;
  ins_best_cluster_ = cp.ins_best_cluster;
  addf_best_ = cp.addf_best;
  addf_second_ = cp.addf_second;
  addf_best_cluster_ = cp.addf_best_cluster;
  return Status::OK();
}

double FairKMState::ReferenceDeltaFairness(size_t i, int to) const {
  const int from = assignment_[i];
  if (to == from || sensitive_->empty()) return 0.0;
  const size_t c_from = counts_[static_cast<size_t>(from)];
  const size_t c_to = counts_[static_cast<size_t>(to)];
  FAIRKM_DCHECK(c_from >= 1);

  double delta = 0.0;

  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    const int m = attr.cardinality;
    const int32_t v = attr.codes[i];
    const int64_t* from_counts =
        cat_counts_[a].data() + static_cast<size_t>(from) * m;
    const int64_t* to_counts = cat_counts_[a].data() + static_cast<size_t>(to) * m;
    const double norm =
        config_.normalize_domain ? 1.0 / static_cast<double>(m) : 1.0;

    // Origin cluster: u_s = C_s - c q_s before; after removing i the size is
    // c-1 and C_v drops by one, so u'_s = (C_s - I[s=v]) - (c-1) q_s.
    double before_from = 0.0, after_from = 0.0;
    for (int s = 0; s < m; ++s) {
      const double q = attr.dataset_fractions[s];
      const double cs = static_cast<double>(from_counts[s]);
      const double u = cs - static_cast<double>(c_from) * q;
      const double u_after =
          (cs - (s == v ? 1.0 : 0.0)) - static_cast<double>(c_from - 1) * q;
      before_from += u * u;
      after_from += u_after * u_after;
    }
    // Target cluster: size grows to c+1 and C_v gains one.
    double before_to = 0.0, after_to = 0.0;
    for (int s = 0; s < m; ++s) {
      const double q = attr.dataset_fractions[s];
      const double cs = static_cast<double>(to_counts[s]);
      const double u = cs - static_cast<double>(c_to) * q;
      const double u_after =
          (cs + (s == v ? 1.0 : 0.0)) - static_cast<double>(c_to + 1) * q;
      before_to += u * u;
      after_to += u_after * u_after;
    }
    const double scale_from_before = ClusterScale(config_.weighting, c_from, n_);
    const double scale_from_after = ClusterScale(config_.weighting, c_from - 1, n_);
    const double scale_to_before = ClusterScale(config_.weighting, c_to, n_);
    const double scale_to_after = ClusterScale(config_.weighting, c_to + 1, n_);
    delta += attr.weight * norm *
             ((scale_from_after * after_from - scale_from_before * before_from) +
              (scale_to_after * after_to - scale_to_before * before_to));
  }

  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    const auto& attr = sensitive_->numeric[a];
    const double x = attr.values[i];
    const double mean = attr.dataset_mean;
    const double t_from = num_sums_[a][static_cast<size_t>(from)];
    const double t_to = num_sums_[a][static_cast<size_t>(to)];
    const double u_from = t_from - static_cast<double>(c_from) * mean;
    const double u_from_after = u_from - x + mean;
    const double u_to = t_to - static_cast<double>(c_to) * mean;
    const double u_to_after = u_to + x - mean;
    delta += attr.weight *
             ((ClusterScale(config_.weighting, c_from - 1, n_) * u_from_after *
                   u_from_after -
               ClusterScale(config_.weighting, c_from, n_) * u_from * u_from) +
              (ClusterScale(config_.weighting, c_to + 1, n_) * u_to_after * u_to_after -
               ClusterScale(config_.weighting, c_to, n_) * u_to * u_to));
  }
  return delta;
}

void FairKMState::Move(size_t i, int to) {
  const int from = assignment_[i];
  if (to == from) return;
  FAIRKM_DCHECK(to >= 0 && to < k_);
  const double* row = store_->Row(i);
  double* from_sums = sums_.data() + static_cast<size_t>(from) * stride_;
  double* to_sums = sums_.data() + static_cast<size_t>(to) * stride_;
  const size_t c_from = counts_[static_cast<size_t>(from)];
  const size_t c_to = counts_[static_cast<size_t>(to)];

  // Live-centroid drift (snapshot mode charges drift at RefreshPrototypes
  // instead, since the delta path reads frozen prototypes): removing x moves
  // mu_from by ||x - mu_from|| / (|C|-1), inserting moves mu_to by
  // ||x - mu_to|| / (|C|+1). Uses the pre-update aggregates.
  if (track_bounds_ && !use_snapshot_) {
    double step_from = 0.0, step_to = 0.0;
    if (c_from > 1) {
      const double dist = CachedDistanceToMean(
          i, from_sums, sum_norms_[static_cast<size_t>(from)],
          static_cast<double>(c_from));
      step_from = std::sqrt(dist) / static_cast<double>(c_from - 1);
      AccumulateDrift(from, step_from);
    }
    if (c_to > 0) {
      const double dist = CachedDistanceToMean(
          i, to_sums, sum_norms_[static_cast<size_t>(to)],
          static_cast<double>(c_to));
      step_to = std::sqrt(dist) / static_cast<double>(c_to + 1);
      AccumulateDrift(to, step_to);
    } else {
      // A refilled empty cluster materializes a centroid anywhere; collapse
      // every stale lower bound that predates it.
      step_to = kEmptyRefillDrift;
      AccumulateDrift(to, step_to);
    }
    AccumulateMaxStep(std::max(step_from, step_to));
  }

  for (size_t j = 0; j < d_; ++j) {
    from_sums[j] -= row[j];
    to_sums[j] += row[j];
  }
  sum_norms_[static_cast<size_t>(from)] =
      kernels::Dot(from_sums, from_sums, stride_);
  sum_norms_[static_cast<size_t>(to)] = kernels::Dot(to_sums, to_sums, stride_);
  --counts_[static_cast<size_t>(from)];
  ++counts_[static_cast<size_t>(to)];
  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    const int32_t v = attr.codes[i];
    --cat_counts_[a][static_cast<size_t>(from) * attr.cardinality + v];
    ++cat_counts_[a][static_cast<size_t>(to) * attr.cardinality + v];
    RecomputeCatMoments(a, from);
    RecomputeCatMoments(a, to);
  }
  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    const double x = sensitive_->numeric[a].values[i];
    num_sums_[a][static_cast<size_t>(from)] -= x;
    num_sums_[a][static_cast<size_t>(to)] += x;
  }
  assignment_[i] = static_cast<int32_t>(to);

  // Fairness move bounds only change for the two clusters whose group
  // counts moved; the insertion best/second pair and (in live mode) the
  // addition factors are O(k) rescans.
  if (track_bounds_) {
    RecomputeFairBounds(from);
    RecomputeFairBounds(to);
    RescanInsertionBounds();
    if (!use_snapshot_) RescanAdditionFactors();
  }
}

double FairKMState::KMeansTerm() const {
  data::Matrix centroids = Centroids();
  // Same accumulation order as cluster::SumOfSquaredErrors over the source
  // matrix — store rows equal matrix rows in the first d_ lanes — but read
  // from the store so store-backed (matrix-free) states get the identical
  // value.
  double sse = 0.0;
  const size_t chunk_rows = ResidencyChunkRows(stride_);
  for (size_t base = 0; base < n_; base += chunk_rows) {
    const size_t end = std::min(n_, base + chunk_rows);
    for (size_t i = base; i < end; ++i) {
      sse += data::SquaredDistance(
          store_->Row(i), centroids.Row(static_cast<size_t>(assignment_[i])),
          d_);
    }
    store_->EvictRows(base, end);
  }
  return sse;
}

double FairKMState::KMeansTermCached() const {
  double within = 0.0;
  for (int c = 0; c < k_; ++c) {
    const size_t cnt = counts_[static_cast<size_t>(c)];
    if (cnt == 0) continue;
    within += sum_norms_[static_cast<size_t>(c)] / static_cast<double>(cnt);
  }
  const double sse = total_point_norm_ - within;
  // The difference cancels catastrophically when the data carries a large
  // common offset (both terms ~ n ||offset||^2 while the true SSE is tiny).
  // Falling back to the scratch pass whenever the surviving value is below
  // one millionth of the gross norm bounds the cached result's relative
  // error at ~1e-10 and keeps the O(k) path for realistically scaled data.
  if (!(sse > 1e-6 * total_point_norm_)) return KMeansTerm();
  return sse;
}

double FairKMState::FairnessTerm() const {
  return ComputeFairnessTerm(*sensitive_, assignment_, k_, config_);
}

double FairKMState::FairnessTermCached() const {
  double total = 0.0;
  for (size_t a = 0; a < sensitive_->categorical.size(); ++a) {
    const auto& attr = sensitive_->categorical[a];
    const double norm = config_.normalize_domain
                            ? 1.0 / static_cast<double>(attr.cardinality)
                            : 1.0;
    for (int c = 0; c < k_; ++c) {
      const double scale =
          ClusterScale(config_.weighting, counts_[static_cast<size_t>(c)], n_);
      if (scale == 0.0) continue;
      total += attr.weight * norm * scale * cat_u2_[a][static_cast<size_t>(c)];
    }
  }
  for (size_t a = 0; a < sensitive_->numeric.size(); ++a) {
    const auto& attr = sensitive_->numeric[a];
    for (int c = 0; c < k_; ++c) {
      const size_t cnt = counts_[static_cast<size_t>(c)];
      const double scale = ClusterScale(config_.weighting, cnt, n_);
      if (scale == 0.0) continue;
      const double u = num_sums_[a][static_cast<size_t>(c)] -
                       static_cast<double>(cnt) * attr.dataset_mean;
      total += attr.weight * scale * u * u;
    }
  }
  return total;
}

data::Matrix FairKMState::Centroids() const {
  data::Matrix centroids(static_cast<size_t>(k_), d_);
  for (int c = 0; c < k_; ++c) {
    const size_t size = counts_[static_cast<size_t>(c)];
    if (size == 0) continue;
    const double inv = 1.0 / static_cast<double>(size);
    const double* src = sums_.data() + static_cast<size_t>(c) * stride_;
    double* dst = centroids.Row(static_cast<size_t>(c));
    for (size_t j = 0; j < d_; ++j) dst[j] = src[j] * inv;
  }
  return centroids;
}

void FairKMState::EnablePrototypeSnapshot(bool enable) {
  use_snapshot_ = enable;
  if (enable) RefreshPrototypes();
}

void FairKMState::RefreshPrototypes() {
  // Snapshot-mode drift: the effective centroids jump from the old prototype
  // to the current live aggregate exactly here, so charge each cluster the
  // exact displacement before overwriting.
  if (track_bounds_ && use_snapshot_) {
    double max_step = 0.0;
    for (int c = 0; c < k_; ++c) {
      const size_t ci = static_cast<size_t>(c);
      const size_t old_cnt = proto_counts_[ci];
      const size_t new_cnt = counts_[ci];
      if (new_cnt == 0) continue;  // No centroid to target; addf covers it.
      double step = 0.0;
      if (old_cnt == 0) {
        step = kEmptyRefillDrift;
      } else {
        const double* old_sums = proto_sums_.data() + ci * stride_;
        const double* new_sums = sums_.data() + ci * stride_;
        const double old_inv = 1.0 / static_cast<double>(old_cnt);
        const double new_inv = 1.0 / static_cast<double>(new_cnt);
        double total = 0.0;
        for (size_t j = 0; j < d_; ++j) {
          const double diff = new_sums[j] * new_inv - old_sums[j] * old_inv;
          total += diff * diff;
        }
        step = total > 0.0 ? std::sqrt(total) : 0.0;
      }
      if (step > 0.0) AccumulateDrift(c, step);
      if (step > max_step) max_step = step;
    }
    if (max_step > 0.0) AccumulateMaxStep(max_step);
  }
  proto_counts_ = counts_;
  proto_sums_ = sums_;
  proto_sum_norms_ = sum_norms_;
  if (track_bounds_ && use_snapshot_) RescanAdditionFactors();
}

}  // namespace core
}  // namespace fairkm
