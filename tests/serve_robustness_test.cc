// Degradation-path tests for the serving tier: load shedding at the
// admission gate, cooperative deadlines between scoring batches, shutdown /
// drain semantics, and the shed-aware retry helper. Overload is created
// deterministically by arming a delay fault on the "serve.batch" point
// (max_concurrency = 1 + a sleeping in-flight request = a full service, no
// real load needed), so the suite is timing-robust enough for the TSan job
// (suite name matches the |Serve regex).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "common/timer.h"
#include "core/solver.h"
#include "serve/assign_service.h"
#include "serve/model_snapshot.h"
#include "serve/retry.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace serve {
namespace {

using core::FairKMOptions;
using core::FairKMSolver;
using testutil::MakeSeededWorld;
using testutil::SeededWorld;

// How long the fault-held request occupies the single scoring slot. Victims
// use budgets well under this, and the "sheds promptly" assertions use
// bounds well under it too, so the test stays deterministic even on a slow
// or sanitized host (the holder's sleep is real wall time, not CPU).
constexpr double kHoldSeconds = 0.5;

FairKMOptions BaseOptions() {
  FairKMOptions options;
  options.k = 3;
  options.lambda = 60.0;
  options.max_iterations = 12;
  return options;
}

class ServeRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::DisarmAll(); }
  void TearDown() override { fault::DisarmAll(); }

  // One trained model published into a single-slot service.
  void StartService(const AssignServiceOptions& options) {
    world_ = std::make_unique<SeededWorld>(MakeSeededWorld(300));
    FairKMSolver solver =
        FairKMSolver::Create(&world_->points, &world_->sensitive, BaseOptions())
            .ValueOrDie();
    ASSERT_TRUE(solver.Init(uint64_t{7}).ok());
    ASSERT_TRUE(solver.Run().ok());
    service_ = std::make_unique<AssignService>(options);
    service_->Publish(MakeModelSnapshot(solver, /*version=*/1).ValueOrDie());
  }

  // Occupies the one scoring slot for kHoldSeconds from another thread and
  // returns once the slot is demonstrably held.
  std::thread HoldSlot() {
    fault::FaultSpec spec;
    spec.kind = fault::Kind::kDelay;
    spec.delay_seconds = kHoldSeconds;
    spec.max_fires = 1;
    fault::Arm("serve.batch", spec);
    std::thread holder([this] {
      EXPECT_TRUE(service_->Assign(world_->points, &world_->sensitive).ok());
    });
    while (service_->Metrics().peak_in_flight == 0) std::this_thread::yield();
    return holder;
  }

  std::unique_ptr<SeededWorld> world_;
  std::unique_ptr<AssignService> service_;
};

TEST_F(ServeRobustnessTest, FullQueueShedsImmediately) {
  AssignServiceOptions options;
  options.max_concurrency = 1;
  options.max_queue_depth = 0;  // No waiting room at all.
  StartService(options);
  std::thread holder = HoldSlot();

  Timer timer;
  const auto result = service_->Assign(world_->points, &world_->sensitive);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // Shed at arrival: no queueing, so this returns long before the holder's
  // kHoldSeconds sleep is over.
  EXPECT_LT(timer.ElapsedSeconds(), kHoldSeconds / 2);
  holder.join();

  const ServeMetrics metrics = service_->Metrics();
  EXPECT_EQ(metrics.shed_queue_full, 1u);
  EXPECT_EQ(metrics.errors, 1u);
  EXPECT_EQ(metrics.requests, 2u);
  EXPECT_EQ(metrics.queue_depth, 0u);
  EXPECT_EQ(metrics.peak_queue_depth, 0u);
}

TEST_F(ServeRobustnessTest, QueueTimeoutShedsWithUnavailable) {
  AssignServiceOptions options;
  options.max_concurrency = 1;
  StartService(options);
  std::thread holder = HoldSlot();

  AssignRequestOptions request;
  request.queue_timeout_seconds = 0.02;
  Timer timer;
  const auto result =
      service_->Assign(world_->points, &world_->sensitive, request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(timer.ElapsedSeconds(), kHoldSeconds / 2);
  holder.join();

  const ServeMetrics metrics = service_->Metrics();
  EXPECT_EQ(metrics.shed_queue_timeout, 1u);
  EXPECT_EQ(metrics.shed_queue_full, 0u);
  EXPECT_EQ(metrics.peak_queue_depth, 1u);
  EXPECT_EQ(metrics.queue_depth, 0u);
}

TEST_F(ServeRobustnessTest, DeadlineExpiresInQueue) {
  AssignServiceOptions options;
  options.max_concurrency = 1;
  StartService(options);
  std::thread holder = HoldSlot();

  AssignRequestOptions request;
  request.deadline_seconds = 0.02;
  Timer timer;
  const auto result =
      service_->Assign(world_->points, &world_->sensitive, request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(timer.ElapsedSeconds(), kHoldSeconds / 2);
  holder.join();

  const ServeMetrics metrics = service_->Metrics();
  EXPECT_EQ(metrics.deadline_exceeded, 1u);
  EXPECT_EQ(metrics.deadline_partial_points, 0u);  // Never started scoring.
  EXPECT_EQ(metrics.shed_queue_timeout, 0u);
}

TEST_F(ServeRobustnessTest, DeadlineExpiresBetweenBatchesWithPartialAccounting) {
  AssignServiceOptions options;
  options.max_concurrency = 1;
  options.max_batch_points = 16;
  StartService(options);

  // Let the first batch score untouched, then stall past the deadline at the
  // second batch's degradation point.
  fault::FaultSpec spec;
  spec.kind = fault::Kind::kDelay;
  spec.delay_seconds = kHoldSeconds;
  spec.skip = 1;
  spec.max_fires = 1;
  fault::Arm("serve.batch", spec);

  AssignRequestOptions request;
  request.deadline_seconds = 0.25;
  const auto result =
      service_->Assign(world_->points, &world_->sensitive, request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  const ServeMetrics metrics = service_->Metrics();
  EXPECT_EQ(metrics.deadline_exceeded, 1u);
  // Exactly one 16-point batch was scored and then thrown away.
  EXPECT_EQ(metrics.deadline_partial_points, 16u);
  EXPECT_EQ(metrics.points, 0u);  // Successful-request points only.
  EXPECT_EQ(metrics.batches, 1u);

  // The slot was released on the error path: the service still works.
  EXPECT_TRUE(service_->Assign(world_->points, &world_->sensitive).ok());
}

TEST_F(ServeRobustnessTest, InjectedBatchErrorReleasesSlot) {
  AssignServiceOptions options;
  options.max_concurrency = 1;
  StartService(options);

  fault::FaultSpec spec;
  spec.kind = fault::Kind::kError;
  spec.code = StatusCode::kIOError;
  spec.message = "injected scoring failure";
  spec.max_fires = 1;
  fault::Arm("serve.batch", spec);

  const auto result = service_->Assign(world_->points, &world_->sensitive);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_EQ(service_->Metrics().errors, 1u);

  EXPECT_TRUE(service_->Assign(world_->points, &world_->sensitive).ok());
  EXPECT_EQ(service_->Metrics().errors, 1u);
}

TEST_F(ServeRobustnessTest, ShutdownWakesQueuedRequestsAndStopsAdmission) {
  AssignServiceOptions options;
  options.max_concurrency = 1;
  StartService(options);
  std::thread holder = HoldSlot();

  std::atomic<bool> victim_done{false};
  Status victim_status;
  std::thread victim([&] {
    victim_status =
        service_->Assign(world_->points, &world_->sensitive).status();
    victim_done.store(true);
  });
  while (service_->Metrics().queue_depth == 0) std::this_thread::yield();

  EXPECT_FALSE(service_->is_shutdown());
  service_->Shutdown();
  EXPECT_TRUE(service_->is_shutdown());
  victim.join();
  EXPECT_TRUE(victim_done.load());
  EXPECT_EQ(victim_status.code(), StatusCode::kUnavailable);

  // The in-flight holder finishes normally; Drain then observes quiescence.
  holder.join();
  EXPECT_TRUE(service_->Drain().ok());

  // Admission is closed and publishes are ignored from now on.
  const auto result = service_->Assign(world_->points, &world_->sensitive);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  const uint64_t published_before = service_->Metrics().snapshots_published;
  service_->Publish(nullptr);
  EXPECT_EQ(service_->Metrics().snapshots_published, published_before);
  EXPECT_NE(service_->snapshot(), nullptr);
}

TEST_F(ServeRobustnessTest, DrainTimesOutWhileBusyThenSucceeds) {
  AssignServiceOptions options;
  options.max_concurrency = 1;
  StartService(options);
  std::thread holder = HoldSlot();

  const Status busy = service_->Drain(/*timeout_seconds=*/0.02);
  EXPECT_EQ(busy.code(), StatusCode::kDeadlineExceeded);

  holder.join();
  EXPECT_TRUE(service_->Drain(/*timeout_seconds=*/5.0).ok());
  EXPECT_TRUE(service_->Drain().ok());
}

TEST_F(ServeRobustnessTest, NonFiniteRequestCoordinatesAreInvalidArgument) {
  StartService({});

  data::Matrix nan_points = world_->points;
  nan_points.At(2, 0) = std::numeric_limits<double>::quiet_NaN();
  const auto bad_points = service_->Assign(nan_points, &world_->sensitive);
  ASSERT_FALSE(bad_points.ok());
  EXPECT_EQ(bad_points.status().code(), StatusCode::kInvalidArgument);

  data::SensitiveView inf_sensitive = world_->sensitive;
  ASSERT_GE(inf_sensitive.numeric.size(), 1u);
  inf_sensitive.numeric[0].values[1] = std::numeric_limits<double>::infinity();
  const auto bad_sensitive = service_->Assign(world_->points, &inf_sensitive);
  ASSERT_FALSE(bad_sensitive.ok());
  EXPECT_EQ(bad_sensitive.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(service_->Metrics().errors, 2u);
  // Clean requests still serve.
  EXPECT_TRUE(service_->Assign(world_->points, &world_->sensitive).ok());
}

TEST(RetryPolicyTest, OnlyUnavailableIsRetryable) {
  EXPECT_TRUE(IsRetryable(Status::Unavailable("x")));
  EXPECT_FALSE(IsRetryable(Status::OK()));
  EXPECT_FALSE(IsRetryable(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(IsRetryable(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsRetryable(Status::DataLoss("x")));
}

TEST(RetryPolicyTest, BackoffCeilingGrowsAndClamps) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.001;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.005;
  EXPECT_DOUBLE_EQ(BackoffCeilingSeconds(policy, 1), 0.001);
  EXPECT_DOUBLE_EQ(BackoffCeilingSeconds(policy, 2), 0.002);
  EXPECT_DOUBLE_EQ(BackoffCeilingSeconds(policy, 3), 0.004);
  EXPECT_DOUBLE_EQ(BackoffCeilingSeconds(policy, 4), 0.005);
  EXPECT_DOUBLE_EQ(BackoffCeilingSeconds(policy, 10), 0.005);
}

TEST(RetryPolicyTest, RetriesNotReadyServiceUntilExhausted) {
  fault::DisarmAll();
  AssignService service;  // Never published: every attempt is kUnavailable.
  const SeededWorld world = MakeSeededWorld(301);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.0005;
  policy.max_backoff_seconds = 0.002;
  Rng rng(99);
  const auto result =
      AssignWithRetry(service, world.points, &world.sensitive, {}, policy, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  // All three attempts reached the service.
  EXPECT_EQ(service.Metrics().not_ready, 3u);
}

TEST(RetryPolicyTest, RidesOutASlowFirstPublish) {
  fault::DisarmAll();
  const SeededWorld world = MakeSeededWorld(302);
  FairKMOptions options = BaseOptions();
  FairKMSolver solver =
      FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(solver.Init(uint64_t{11}).ok());
  ASSERT_TRUE(solver.Run().ok());

  AssignService service;
  // Observe not-ready once before the publisher even starts; under machine
  // load the retry loop's first attempt may otherwise land after Publish.
  ASSERT_EQ(service.Assign(world.points, &world.sensitive).status().code(),
            StatusCode::kUnavailable);
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    service.Publish(MakeModelSnapshot(solver).ValueOrDie());
  });

  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_seconds = 0.005;
  policy.backoff_multiplier = 1.0;  // Flat 0..5ms jitter per retry.
  policy.max_backoff_seconds = 0.005;
  Rng rng(7);
  const auto result =
      AssignWithRetry(service, world.points, &world.sensitive, {}, policy, &rng);
  publisher.join();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(),
            solver.Assign(world.points, world.sensitive).ValueOrDie());
  EXPECT_GT(service.Metrics().not_ready, 0u);
}

TEST(RetryPolicyTest, DoesNotRetryNonRetryableFailures) {
  fault::DisarmAll();
  const SeededWorld world = MakeSeededWorld(303);
  FairKMSolver solver =
      FairKMSolver::Create(&world.points, &world.sensitive, BaseOptions())
          .ValueOrDie();
  ASSERT_TRUE(solver.Init(uint64_t{13}).ok());
  ASSERT_TRUE(solver.Run().ok());
  AssignService service;
  service.Publish(MakeModelSnapshot(solver).ValueOrDie());

  // Wrong width -> kInvalidArgument: exactly one attempt, no backoff loop.
  const data::Matrix bad(4, world.points.cols() + 1);
  RetryPolicy policy;
  policy.max_attempts = 10;
  Rng rng(3);
  const auto result = AssignWithRetry(service, bad, nullptr, {}, policy, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Metrics().requests, 1u);
}

}  // namespace
}  // namespace serve
}  // namespace fairkm
