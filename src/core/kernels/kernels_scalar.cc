// Scalar reference backend. Compiled for the baseline ISA with
// -ffp-contract=off (see src/CMakeLists.txt): Dot/Gemv keep the exact
// sequential accumulation the PR-2 kernels used, and CatMoments uses the
// 4-lane blocked order that the AVX2 backend reproduces bit-for-bit.

#include "core/kernels/kernels.h"

namespace fairkm {
namespace core {
namespace kernels {
namespace {

double DotScalar(const double* a, const double* b, size_t n) {
  double total = 0.0;
  for (size_t j = 0; j < n; ++j) total += a[j] * b[j];
  return total;
}

void GemvScalar(const double* x, const double* mat, size_t rows, size_t cols,
                double* out) {
  const double* row = mat;
  for (size_t r = 0; r < rows; ++r, row += cols) {
    out[r] = DotScalar(x, row, cols);
  }
}

// 4-lane blocked accumulation with the ((l0+l2)+(l1+l3))+tail reduction —
// the exact operation sequence the AVX2 backend performs with vector lanes,
// element-wise IEEE mul/add only. Keep the two implementations in lockstep:
// tests/simd_kernels_test.cc asserts bit-for-bit equality.
void CatMomentsScalar(const int64_t* counts, const double* fractions, size_t m,
                      double size, double* u2, double* uq) {
  double u2l[4] = {0.0, 0.0, 0.0, 0.0};
  double uql[4] = {0.0, 0.0, 0.0, 0.0};
  size_t s = 0;
  for (; s + 4 <= m; s += 4) {
    for (int l = 0; l < 4; ++l) {
      const double q = fractions[s + static_cast<size_t>(l)];
      const double u =
          static_cast<double>(counts[s + static_cast<size_t>(l)]) - size * q;
      u2l[l] += u * u;
      uql[l] += u * q;
    }
  }
  double u2_tail = 0.0, uq_tail = 0.0;
  for (; s < m; ++s) {
    const double q = fractions[s];
    const double u = static_cast<double>(counts[s]) - size * q;
    u2_tail += u * u;
    uq_tail += u * q;
  }
  *u2 = ((u2l[0] + u2l[2]) + (u2l[1] + u2l[3])) + u2_tail;
  *uq = ((uql[0] + uql[2]) + (uql[1] + uql[3])) + uq_tail;
}

const Backend kScalarBackend = {"scalar", DotScalar, GemvScalar,
                                CatMomentsScalar};

}  // namespace

const Backend& ScalarBackend() { return kScalarBackend; }

}  // namespace kernels
}  // namespace core
}  // namespace fairkm
