#include "metrics/quality.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "metrics/hungarian.h"

namespace fairkm {
namespace metrics {
namespace {

// Mean silhouette of the given probe points, each evaluated against every row.
double SilhouetteOverProbes(const data::Matrix& points,
                            const cluster::Assignment& assignment, int k,
                            const std::vector<size_t>& probes) {
  const std::vector<size_t> sizes = cluster::ClusterSizes(assignment, k);
  double total = 0.0;
  size_t counted = 0;
  std::vector<double> dist_sum(static_cast<size_t>(k));
  for (size_t p : probes) {
    const size_t own = static_cast<size_t>(assignment[p]);
    if (sizes[own] <= 1) {
      // Singleton: silhouette defined as 0.
      ++counted;
      continue;
    }
    std::fill(dist_sum.begin(), dist_sum.end(), 0.0);
    for (size_t i = 0; i < points.rows(); ++i) {
      if (i == p) continue;
      const double d = std::sqrt(
          data::SquaredDistance(points.Row(p), points.Row(i), points.cols()));
      dist_sum[static_cast<size_t>(assignment[i])] += d;
    }
    const double a =
        dist_sum[own] / static_cast<double>(sizes[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      const size_t cc = static_cast<size_t>(c);
      if (cc == own || sizes[cc] == 0) continue;
      b = std::min(b, dist_sum[cc] / static_cast<double>(sizes[cc]));
    }
    if (!std::isfinite(b)) {
      // Single non-empty cluster: silhouette undefined; count as 0.
      ++counted;
      continue;
    }
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace

double ClusteringObjective(const data::Matrix& points,
                           const cluster::Assignment& assignment, int k) {
  data::Matrix centroids = cluster::ComputeCentroids(points, assignment, k);
  return cluster::SumOfSquaredErrors(points, assignment, centroids);
}

double SilhouetteScore(const data::Matrix& points,
                       const cluster::Assignment& assignment, int k,
                       const SilhouetteOptions& options) {
  const size_t n = points.rows();
  if (n == 0) return 0.0;
  std::vector<size_t> probes;
  if (n <= options.max_exact_rows || options.sample_size >= n) {
    probes.resize(n);
    for (size_t i = 0; i < n; ++i) probes[i] = i;
  } else {
    Rng rng(options.seed);
    probes = rng.SampleWithoutReplacement(n, options.sample_size);
  }
  return SilhouetteOverProbes(points, assignment, k, probes);
}

Result<double> CentroidDeviation(const data::Matrix& centroids,
                                 const data::Matrix& reference_centroids) {
  if (centroids.cols() != reference_centroids.cols()) {
    return Status::InvalidArgument("centroid dimensionality mismatch");
  }
  if (centroids.rows() != reference_centroids.rows()) {
    return Status::InvalidArgument("centroid count mismatch (DevC compares equal k)");
  }
  const size_t k = centroids.rows();
  data::Matrix cost(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      cost.At(i, j) = data::SquaredDistance(centroids.Row(i),
                                            reference_centroids.Row(j),
                                            centroids.cols());
    }
  }
  std::vector<int> matching;
  return HungarianAssign(cost, &matching);
}

Result<double> ObjectPairDeviation(const cluster::Assignment& a, int k_a,
                                   const cluster::Assignment& b, int k_b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("assignments cover different row counts");
  }
  const size_t n = a.size();
  if (n < 2) return 0.0;
  // Contingency table n_ij, marginals a_i, b_j.
  std::vector<int64_t> table(static_cast<size_t>(k_a) * k_b, 0);
  std::vector<int64_t> ma(static_cast<size_t>(k_a), 0);
  std::vector<int64_t> mb(static_cast<size_t>(k_b), 0);
  for (size_t i = 0; i < n; ++i) {
    ++table[static_cast<size_t>(a[i]) * k_b + static_cast<size_t>(b[i])];
    ++ma[static_cast<size_t>(a[i])];
    ++mb[static_cast<size_t>(b[i])];
  }
  auto choose2 = [](int64_t x) { return x * (x - 1) / 2; };
  int64_t sum_table = 0, sum_a = 0, sum_b = 0;
  for (int64_t v : table) sum_table += choose2(v);
  for (int64_t v : ma) sum_a += choose2(v);
  for (int64_t v : mb) sum_b += choose2(v);
  // Pairs together in one clustering but apart in the other.
  const int64_t disagreements = (sum_a - sum_table) + (sum_b - sum_table);
  const int64_t total_pairs = choose2(static_cast<int64_t>(n));
  return static_cast<double>(disagreements) / static_cast<double>(total_pairs);
}

}  // namespace metrics
}  // namespace fairkm
