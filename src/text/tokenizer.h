// Word tokenizer for the kinematics word-problem corpus.

#ifndef FAIRKM_TEXT_TOKENIZER_H_
#define FAIRKM_TEXT_TOKENIZER_H_

#include <string>
#include <vector>

namespace fairkm {
namespace text {

/// \brief Lower-cases and splits on non-alphanumeric characters. Tokens that
/// are pure numbers are replaced by the placeholder "<num>" so that the
/// numeric surface forms (which vary per generated problem) do not dominate
/// the lexical representation.
std::vector<std::string> Tokenize(const std::string& text);

}  // namespace text
}  // namespace fairkm

#endif  // FAIRKM_TEXT_TOKENIZER_H_
