#include "serve/assign_service.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/timer.h"
#include "serve/assign_batch.h"

namespace fairkm {
namespace serve {

namespace {

uint64_t ResolveConcurrency(int requested) {
  if (requested > 0) return static_cast<uint64_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

AssignService::AssignService(const AssignServiceOptions& options)
    : max_batch_points_(std::max<size_t>(options.max_batch_points, 1)),
      max_concurrency_(ResolveConcurrency(options.max_concurrency)) {}

void AssignService::Publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  // Stamp the publish time before the swap: a Metrics() racing in between
  // sees at worst a fresh timestamp with the previous snapshot (transiently
  // young age), never a visible snapshot with an unset timestamp.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++publishes_;
    publish_time_ = Clock::now();
  }
  std::atomic_store(&snapshot_, std::move(snapshot));
}

std::shared_ptr<const ModelSnapshot> AssignService::snapshot() const {
  return std::atomic_load(&snapshot_);
}

void AssignService::AcquireSlot() {
  std::unique_lock<std::mutex> lock(mu_);
  slot_free_.wait(lock, [this] { return in_flight_ < max_concurrency_; });
  ++in_flight_;
  peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
}

void AssignService::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  slot_free_.notify_one();
}

Result<cluster::Assignment> AssignService::Assign(
    const data::Matrix& points, const data::SensitiveView* sensitive) {
  // Pin the model generation for the whole request BEFORE taking a slot:
  // every batch of this request scores against one snapshot even if the
  // writer publishes mid-request.
  const std::shared_ptr<const ModelSnapshot> model = snapshot();
  auto fail = [this](Status status) -> Result<cluster::Assignment> {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    ++errors_;
    return status;
  };
  if (model == nullptr) {
    return fail(Status::InvalidArgument(
        "no model published: call Publish before Assign"));
  }
  if (Status st = ValidateAssignInputs(*model, points, sensitive); !st.ok()) {
    return fail(std::move(st));
  }
  const size_t rows = points.rows();
  cluster::Assignment out(rows, 0);
  if (rows == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    return out;
  }
  if (!model->has_candidates()) {
    return fail(Status::InvalidArgument(
        "trained model has no non-empty cluster to assign to"));
  }

  AcquireSlot();
  // Reused across requests on this thread — the steady state allocates
  // nothing (the buffers only grow to the largest batch/k/|S| seen).
  thread_local AssignScratch scratch;
  Timer timer;
  uint64_t request_batches = 0;
  uint64_t request_max_batch = 0;
  for (size_t begin = 0; begin < rows; begin += max_batch_points_) {
    const size_t end = std::min(rows, begin + max_batch_points_);
    AssignRows(*model, points, begin, end, sensitive, &scratch, &out);
    ++request_batches;
    request_max_batch = std::max<uint64_t>(request_max_batch, end - begin);
  }
  const double elapsed = timer.ElapsedSeconds();
  ReleaseSlot();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    points_ += rows;
    batches_ += request_batches;
    busy_seconds_ += elapsed;
    max_batch_ = std::max(max_batch_, request_max_batch);
  }
  return out;
}

ServeMetrics AssignService::Metrics() const {
  const bool has_model = snapshot() != nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  ServeMetrics m;
  m.requests = requests_;
  m.errors = errors_;
  m.points = points_;
  m.batches = batches_;
  m.busy_seconds = busy_seconds_;
  m.points_per_second =
      busy_seconds_ > 0.0 ? static_cast<double>(points_) / busy_seconds_ : 0.0;
  m.avg_batch_points =
      batches_ > 0 ? static_cast<double>(points_) / static_cast<double>(batches_)
                   : 0.0;
  m.max_batch_points = max_batch_;
  m.peak_in_flight = peak_in_flight_;
  m.snapshots_published = publishes_;
  m.snapshot_age_seconds =
      has_model ? std::chrono::duration<double>(Clock::now() - publish_time_)
                      .count()
                : -1.0;
  return m;
}

}  // namespace serve
}  // namespace fairkm
