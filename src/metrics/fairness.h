// Fairness evaluation measures (paper §5.2.2): AE, AW, ME, MW — per sensitive
// attribute and averaged across attributes — plus the Chierichetti balance and
// the numeric-attribute analogues the paper notes "follow naturally".

#ifndef FAIRKM_METRICS_FAIRNESS_H_
#define FAIRKM_METRICS_FAIRNESS_H_

#include <string>
#include <vector>

#include "cluster/types.h"
#include "data/sensitive.h"

namespace fairkm {
namespace metrics {

/// \brief The four deviation measures for one attribute; lower is better.
struct AttributeFairness {
  std::string attribute;
  double ae = 0.0;  ///< Average Euclidean (cluster-cardinality weighted).
  double aw = 0.0;  ///< Average Wasserstein.
  double me = 0.0;  ///< Max Euclidean across clusters.
  double mw = 0.0;  ///< Max Wasserstein across clusters.
};

/// \brief AE/AW/ME/MW for one categorical attribute (Eq. 25 and §5.2.2).
/// Empty clusters are skipped (they have no distribution).
AttributeFairness EvaluateAttributeFairness(const data::CategoricalSensitive& attr,
                                            const cluster::Assignment& assignment,
                                            int k);

/// \brief Numeric-attribute analogue: Euclidean deviations become
/// |mean_C(S) - mean_X(S)| and Wasserstein deviations the exact empirical
/// 1-Wasserstein between the cluster's values and the dataset's values.
AttributeFairness EvaluateNumericAttributeFairness(const data::NumericSensitive& attr,
                                                   const cluster::Assignment& assignment,
                                                   int k);

/// \brief Per-attribute results plus the mean across attributes (the "Mean
/// across S Attributes" block of the paper's Tables 6 and 8).
struct FairnessSummary {
  std::vector<AttributeFairness> per_attribute;
  AttributeFairness mean;
};

/// \brief Evaluates all attributes of a SensitiveView.
FairnessSummary EvaluateFairness(const data::SensitiveView& sensitive,
                                 const cluster::Assignment& assignment, int k);

/// \brief Minimum per-cluster balance min(#x/#y, #y/#x) for a binary
/// attribute (Chierichetti et al.'s fairness notion; used by the fairlet
/// comparator). Returns 0 if any non-empty cluster is single-valued.
double MinClusterBalance(const data::CategoricalSensitive& attr,
                         const cluster::Assignment& assignment, int k);

}  // namespace metrics
}  // namespace fairkm

#endif  // FAIRKM_METRICS_FAIRNESS_H_
