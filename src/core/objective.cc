#include "core/objective.h"

namespace fairkm {
namespace core {

// The deviation of cluster C on categorical attribute S (Eq. 2-6) can be
// rewritten with counts. Let c = |C|, C_s = |{X in C : X.S = s}|, q_s =
// Fr_X(s) and u_s = C_s - c * q_s. Then
//   (Fr_C(s) - Fr_X(s))^2 = (u_s / c)^2,
// and the weighted cluster term W(c) * sum_s (u_s/c)^2 becomes
//   scale(c) * sum_s u_s^2
// with scale(c) = 1/n^2 for W(c) = (c/n)^2, 1/(n c) for W(c) = c/n and 1/c^2
// for W(c) = 1. The same holds for numeric attributes (Eq. 22) with
// u = sum_{X in C} X.S - c * mean_X(S). This count-based form is what both
// the scratch evaluation below and the O(1)/O(m) move deltas rely on.
double ClusterScale(ClusterWeighting weighting, size_t cluster_size, size_t num_rows) {
  if (cluster_size == 0) return 0.0;
  const double n = static_cast<double>(num_rows);
  const double c = static_cast<double>(cluster_size);
  switch (weighting) {
    case ClusterWeighting::kSquaredFraction:
      return 1.0 / (n * n);
    case ClusterWeighting::kFractional:
      return 1.0 / (n * c);
    case ClusterWeighting::kUnweighted:
      return 1.0 / (c * c);
  }
  return 0.0;
}

double ComputeFairnessTerm(const data::SensitiveView& sensitive,
                           const cluster::Assignment& assignment, int k,
                           const FairnessTermConfig& config) {
  const size_t n = assignment.size();
  if (n == 0 || sensitive.empty()) return 0.0;
  FAIRKM_DCHECK(sensitive.num_rows() == n);

  std::vector<size_t> sizes = cluster::ClusterSizes(assignment, k);
  double total = 0.0;

  for (const auto& attr : sensitive.categorical) {
    const int m = attr.cardinality;
    // counts[c * m + s] = |C_s|.
    std::vector<double> counts(static_cast<size_t>(k) * m, 0.0);
    for (size_t i = 0; i < n; ++i) {
      counts[static_cast<size_t>(assignment[i]) * m + attr.codes[i]] += 1.0;
    }
    const double norm = config.normalize_domain ? 1.0 / static_cast<double>(m) : 1.0;
    for (int c = 0; c < k; ++c) {
      const size_t size = sizes[static_cast<size_t>(c)];
      const double scale = ClusterScale(config.weighting, size, n);
      if (scale == 0.0) continue;
      double sum_u2 = 0.0;
      for (int s = 0; s < m; ++s) {
        const double u = counts[static_cast<size_t>(c) * m + s] -
                         static_cast<double>(size) * attr.dataset_fractions[s];
        sum_u2 += u * u;
      }
      total += attr.weight * norm * scale * sum_u2;
    }
  }

  for (const auto& attr : sensitive.numeric) {
    std::vector<double> sums(static_cast<size_t>(k), 0.0);
    for (size_t i = 0; i < n; ++i) {
      sums[static_cast<size_t>(assignment[i])] += attr.values[i];
    }
    for (int c = 0; c < k; ++c) {
      const size_t size = sizes[static_cast<size_t>(c)];
      const double scale = ClusterScale(config.weighting, size, n);
      if (scale == 0.0) continue;
      const double u = sums[static_cast<size_t>(c)] -
                       static_cast<double>(size) * attr.dataset_mean;
      total += attr.weight * scale * u * u;
    }
  }
  return total;
}

ObjectiveValue ComputeObjective(const data::Matrix& points,
                                const data::SensitiveView& sensitive,
                                const cluster::Assignment& assignment, int k,
                                const FairnessTermConfig& config) {
  ObjectiveValue value;
  data::Matrix centroids = cluster::ComputeCentroids(points, assignment, k);
  value.kmeans_term = cluster::SumOfSquaredErrors(points, assignment, centroids);
  value.fairness_term = ComputeFairnessTerm(sensitive, assignment, k, config);
  return value;
}

}  // namespace core
}  // namespace fairkm
