// Fixed-width table printer for the bench binaries, which re-create the
// paper's tables on stdout.

#ifndef FAIRKM_EXP_TABLE_H_
#define FAIRKM_EXP_TABLE_H_

#include <string>
#include <vector>

namespace fairkm {
namespace exp {

/// \brief Accumulates rows of string cells and renders an aligned table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// \brief Adds a row; it must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// \brief Convenience for a separator row rendered as dashes.
  void AddSeparator();

  /// \brief Renders the table (header, separator, rows).
  std::string ToString() const;

  /// \brief Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // Empty vector = separator.
};

/// \brief Formats a double with `precision` decimals ("-" for NaN).
std::string Cell(double value, int precision = 4);

/// \brief Formats a fraction in [0, 1] as a percentage cell ("64.2%").
std::string PercentCell(double fraction, int precision = 1);

/// \brief Formats seconds as a millisecond cell ("12.3 ms").
std::string MillisCell(double seconds, int precision = 1);

}  // namespace exp
}  // namespace fairkm

#endif  // FAIRKM_EXP_TABLE_H_
