#include "core/fairkm.h"

#include <algorithm>
#include <memory>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/fairkm_state.h"
#include "core/pruning.h"

namespace fairkm {
namespace core {

double SuggestLambda(size_t num_rows, int k) {
  FAIRKM_DCHECK(k > 0);
  const double ratio = static_cast<double>(num_rows) / static_cast<double>(k);
  return ratio * ratio;
}

namespace {

// Picks the best move for point i given its precomputed per-cluster K-Means
// deltas and the live O(1)-per-attribute fairness deltas, and applies it.
// Returns true when the point moved.
bool ApplyBestMove(FairKMState* state, size_t i, const double* km_deltas,
                   double lambda, double min_improvement, int k) {
  const int from = state->cluster_of(i);
  double best_delta = -min_improvement;
  int best_cluster = from;
  for (int c = 0; c < k; ++c) {
    if (c == from) continue;
    const double delta = km_deltas[c] + lambda * state->DeltaFairness(i, c);
    if (delta < best_delta) {
      best_delta = delta;
      best_cluster = c;
    }
  }
  if (best_cluster == from) return false;
  state->Move(i, best_cluster);
  return true;
}

}  // namespace

Result<FairKMResult> RunFairKM(const data::Matrix& points,
                               const data::SensitiveView& sensitive,
                               const FairKMOptions& options, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }
  if (options.minibatch_size < 0) {
    return Status::InvalidArgument("minibatch_size must be non-negative");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be non-negative");
  }
  const bool parallel = options.sweep_mode == SweepMode::kParallelSnapshot;
  if (parallel && options.minibatch_size <= 0) {
    return Status::InvalidArgument(
        "parallel snapshot sweep requires minibatch_size > 0 (candidates are "
        "evaluated against the frozen prototype snapshot)");
  }
  // Validate k before SuggestLambda, whose k > 0 DCHECK would abort first in
  // debug builds.
  if (options.k <= 0) return Status::InvalidArgument("k must be positive");
  const size_t n = points.rows();
  const size_t k = static_cast<size_t>(options.k);
  const double lambda =
      options.lambda < 0 ? SuggestLambda(n, options.k) : options.lambda;

  FAIRKM_ASSIGN_OR_RETURN(
      cluster::Assignment initial,
      cluster::MakeInitialAssignment(points, options.k, options.init, rng));
  FAIRKM_ASSIGN_OR_RETURN(FairKMState state,
                          FairKMState::Create(&points, &sensitive, options.k,
                                              std::move(initial), options.fairness));

  const bool minibatch = options.minibatch_size > 0;
  state.EnablePrototypeSnapshot(minibatch);
  // Hoisted batch size: one full sweep is a single "batch" without
  // mini-batching, so the sweep loop below is uniform across modes.
  const size_t batch_size =
      minibatch ? static_cast<size_t>(options.minibatch_size) : n;

  // Bound-gated pruning (core/pruning.h): on unless the options or the
  // FAIRKM_DISABLE_PRUNING escape hatch turn it off. k = 1 has no candidate
  // moves to gate, so skip the bookkeeping entirely.
  const bool pruning =
      options.enable_pruning && !PruningDisabledByEnv() && options.k > 1;
  state.EnableBoundTracking(pruning);
  std::unique_ptr<SweepPruner> pruner;
  if (pruning) {
    pruner = std::make_unique<SweepPruner>(&state, lambda,
                                           options.min_improvement);
  }

  const size_t num_threads = !parallel ? 1
                             : options.num_threads > 0
                                 ? static_cast<size_t>(options.num_threads)
                                 : ThreadPool::DefaultThreadCount();
  std::unique_ptr<ThreadPool> pool;
  if (parallel && num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);

  // Scratch for the batched K-Means kernel: one row of k candidate deltas
  // (plus, when pruning, k exported distances) per in-flight point — the
  // whole batch in parallel mode, one row otherwise.
  const size_t rows = parallel ? std::min(batch_size, n) : 1;
  std::vector<double> km_deltas(rows * k);
  std::vector<double> km_dists(pruning ? rows * k : 0);
  // Parallel mode: which batch points phase 1 actually evaluated (survivors
  // of the phase-1 gate; phase 2 may evaluate stragglers on demand).
  std::vector<uint8_t> evaluated(parallel ? rows : 0, 1);
  auto dists_row = [&](size_t offset) -> double* {
    return pruning ? km_dists.data() + offset * k : nullptr;
  };

  FairKMResult result;
  result.lambda_used = lambda;
  result.pruning_enabled = pruning;
  const uint64_t cands_per_point = static_cast<uint64_t>(k - 1);
  Timer sweep_timer;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    size_t moves = 0;
    // Round-robin over objects (paper Algorithm 1, step 4): each object is
    // re-assigned to the cluster minimizing the exact objective change
    // (Eq. 9), with prototypes and fractional representations updated
    // immediately (steps 6-7) — or in mini-batches when configured.
    for (size_t batch_start = 0; batch_start < n; batch_start += batch_size) {
      const size_t batch_end = std::min(n, batch_start + batch_size);
      if (parallel) {
        // Phase 1 (concurrent, read-only): batched K-Means deltas for every
        // point of the mini-batch that survives the pruning gate, against
        // the frozen prototype snapshot. Fairness deltas are intentionally
        // left to phase 2 — they read live aggregates, which is exactly what
        // the serial mini-batch sweep does, so both modes walk identical
        // trajectories. The gate is re-checked live in phase 2 (earlier
        // moves of the same batch shift the fairness bounds), so a phase-1
        // skip is only a prefetch decision, never a correctness one.
        const size_t count = batch_end - batch_start;
        auto eval_point = [&](size_t offset) {
          const size_t i = batch_start + offset;
          if (pruner && pruner->ShouldPrune(i)) {
            evaluated[offset] = 0;
            return;
          }
          evaluated[offset] = 1;
          state.DeltaKMeansAllClusters(i, km_deltas.data() + offset * k,
                                       dists_row(offset));
          if (pruner) pruner->Refresh(i, dists_row(offset));
        };
        if (pool) {
          const size_t shards = std::min(pool->num_threads(), count);
          const size_t chunk = (count + shards - 1) / shards;
          for (size_t s = 0; s < shards; ++s) {
            const size_t lo = s * chunk;
            const size_t hi = std::min(count, lo + chunk);
            if (lo >= hi) break;
            pool->Submit([&eval_point, lo, hi] {
              for (size_t off = lo; off < hi; ++off) eval_point(off);
            });
          }
          pool->Wait();
        } else {
          for (size_t off = 0; off < count; ++off) eval_point(off);
        }
        // Phase 2 (sequential): pick and apply moves in round-robin order.
        // Phase-1 survivors go straight to the exact argmin — their deltas
        // are already computed, so re-running the gate would only duplicate
        // the fairness work ApplyBestMove does anyway. Phase-1-pruned
        // points re-check the gate live (earlier moves of this batch may
        // have shifted the fairness bounds); if it no longer holds they are
        // evaluated on demand against the still-frozen snapshot, which
        // yields deltas identical to a phase-1 evaluation.
        for (size_t i = batch_start; i < batch_end; ++i) {
          const size_t offset = i - batch_start;
          result.total_candidates += cands_per_point;
          if (pruner && !evaluated[offset]) {
            if (pruner->ShouldPrune(i)) {
              result.pruned_candidates += cands_per_point;
              continue;
            }
            state.DeltaKMeansAllClusters(i, km_deltas.data() + offset * k,
                                         dists_row(offset));
            pruner->Refresh(i, dists_row(offset));
          }
          if (ApplyBestMove(&state, i, km_deltas.data() + offset * k, lambda,
                            options.min_improvement, options.k)) {
            if (pruner) pruner->Invalidate(i);
            ++moves;
          }
        }
      } else {
        for (size_t i = batch_start; i < batch_end; ++i) {
          result.total_candidates += cands_per_point;
          if (pruner && pruner->ShouldPrune(i)) {
            result.pruned_candidates += cands_per_point;
            continue;
          }
          state.DeltaKMeansAllClusters(i, km_deltas.data(), dists_row(0));
          if (pruner) pruner->Refresh(i, dists_row(0));
          if (ApplyBestMove(&state, i, km_deltas.data(), lambda,
                            options.min_improvement, options.k)) {
            if (pruner) pruner->Invalidate(i);
            ++moves;
          }
        }
      }
      // Interior batch boundary: re-synchronize the prototype snapshot. The
      // end-of-sweep refresh below covers the final batch, so a sweep that
      // ends exactly on a boundary refreshes once, not twice.
      if (minibatch && batch_end < n) state.RefreshPrototypes();
    }
    if (minibatch) state.RefreshPrototypes();
    result.iterations = iter + 1;
    // O(k + k sum m) per sweep from the maintained caches — the scratch
    // O(n d) recompute would otherwise dominate a heavily pruned sweep.
    result.objective_history.push_back(state.KMeansTermCached() +
                                       lambda * state.FairnessTermCached());
    if (moves == 0) {
      result.converged = true;
      break;
    }
  }
  result.sweep_seconds = sweep_timer.ElapsedSeconds();

  result.assignment = state.assignment();
  cluster::FinalizeResult(points, options.k, &result);
  result.kmeans_term = result.kmeans_objective;
  result.fairness_term = state.FairnessTerm();
  result.total_objective = result.kmeans_term + lambda * result.fairness_term;
  return result;
}

}  // namespace core
}  // namespace fairkm
