// AVX2/FMA backend. This translation unit — and only this one — is compiled
// with -mavx2 -mfma (see src/CMakeLists.txt), so the rest of the binary
// stays runnable on baseline x86-64; nothing here executes unless
// kernels_dispatch.cc's cpuid check passed.
//
// Dot/Gemv use multi-accumulator FMA loops (reassociated relative to the
// scalar backend; callers tolerate 1e-9). CatMoments deliberately avoids FMA
// and mirrors the scalar backend's 4-lane blocked accumulation and reduction
// tree exactly, so the fairness moments are bit-for-bit backend-independent.

#include "core/kernels/kernels.h"

#if defined(FAIRKM_HAVE_AVX2)

#include <immintrin.h>

#include <limits>

namespace fairkm {
namespace core {
namespace kernels {
namespace {

// Lanes (l0+l2, l1+l3) -> (l0+l2)+(l1+l3): the reduction order
// CatMomentsScalar replays in plain code.
inline double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j + 4),
                           _mm256_loadu_pd(b + j + 4), acc1);
  }
  if (j + 4 <= n) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + j), _mm256_loadu_pd(b + j), acc0);
    j += 4;
  }
  double total = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; j < n; ++j) total += a[j] * b[j];
  return total;
}

// Two matrix rows share every load of x, halving the x-stream traffic of the
// row-at-a-time formulation; the odd row falls back to the plain dot.
void GemvAvx2(const double* x, const double* mat, size_t rows, size_t cols,
              double* out) {
  size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const double* m0 = mat + r * cols;
    const double* m1 = m0 + cols;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    size_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      const __m256d xv = _mm256_loadu_pd(x + j);
      acc0 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(m0 + j), acc0);
      acc1 = _mm256_fmadd_pd(xv, _mm256_loadu_pd(m1 + j), acc1);
    }
    double d0 = HorizontalSum(acc0);
    double d1 = HorizontalSum(acc1);
    for (; j < cols; ++j) {
      d0 += x[j] * m0[j];
      d1 += x[j] * m1[j];
    }
    out[r] = d0;
    out[r + 1] = d1;
  }
  if (r < rows) out[r] = DotAvx2(x, mat + r * cols, cols);
}

// Aligned fast path for the lane-padded point store: every row starts
// 32-byte aligned and cols % 4 == 0, so the whole pass is aligned loads with
// no scalar tail. Two matrix rows share every load of x, as in GemvAvx2.
void GemvAlignedAvx2(const double* x, const double* mat, size_t rows,
                     size_t cols, double* out) {
  size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const double* m0 = mat + r * cols;
    const double* m1 = m0 + cols;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t j = 0; j < cols; j += 4) {
      const __m256d xv = _mm256_load_pd(x + j);
      acc0 = _mm256_fmadd_pd(xv, _mm256_load_pd(m0 + j), acc0);
      acc1 = _mm256_fmadd_pd(xv, _mm256_load_pd(m1 + j), acc1);
    }
    out[r] = HorizontalSum(acc0);
    out[r + 1] = HorizontalSum(acc1);
  }
  if (r < rows) {
    const double* m0 = mat + r * cols;
    __m256d acc = _mm256_setzero_pd();
    for (size_t j = 0; j < cols; j += 4) {
      acc = _mm256_fmadd_pd(_mm256_load_pd(x + j), _mm256_load_pd(m0 + j), acc);
    }
    out[r] = HorizontalSum(acc);
  }
}

void CatMomentsAvx2(const int64_t* counts, const double* fractions, size_t m,
                    double size, double* u2, double* uq) {
  const __m256d sz = _mm256_set1_pd(size);
  __m256d u2v = _mm256_setzero_pd();
  __m256d uqv = _mm256_setzero_pd();
  size_t s = 0;
  for (; s + 4 <= m; s += 4) {
    const __m256d q = _mm256_loadu_pd(fractions + s);
    // No packed epi64->pd conversion below AVX-512; four scalar converts.
    const __m256d c = _mm256_set_pd(static_cast<double>(counts[s + 3]),
                                    static_cast<double>(counts[s + 2]),
                                    static_cast<double>(counts[s + 1]),
                                    static_cast<double>(counts[s]));
    const __m256d u = _mm256_sub_pd(c, _mm256_mul_pd(sz, q));
    u2v = _mm256_add_pd(u2v, _mm256_mul_pd(u, u));
    uqv = _mm256_add_pd(uqv, _mm256_mul_pd(u, q));
  }
  double u2_tail = 0.0, uq_tail = 0.0;
  for (; s < m; ++s) {
    const double q = fractions[s];
    const double u = static_cast<double>(counts[s]) - size * q;
    u2_tail += u * u;
    uq_tail += u * q;
  }
  *u2 = HorizontalSum(u2v) + u2_tail;
  *uq = HorizontalSum(uqv) + uq_tail;
}

// Pruning-engine delta tables: the elementwise mul/add sequence matches
// CatDeltaBoundsScalar exactly (this TU builds with -ffp-contract=off, so no
// FMA contraction sneaks in), making every table entry — and the min
// reductions, which are order-insensitive — bit-for-bit backend-stable.
void CatDeltaBoundsAvx2(const int64_t* counts, const double* fractions,
                        size_t m, double size, double u2, double uq,
                        double q2, double scale_before,
                        double scale_rem_after, double scale_ins_after,
                        double* rem, double* ins, double* rem_min,
                        double* ins_min) {
  const double base = u2 + q2 + 1.0;
  const double before = scale_before * u2;
  const __m256d sz = _mm256_set1_pd(size);
  const __m256d basev = _mm256_set1_pd(base);
  const __m256d beforev = _mm256_set1_pd(before);
  const __m256d uqv = _mm256_set1_pd(uq);
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d s_rem = _mm256_set1_pd(scale_rem_after);
  const __m256d s_ins = _mm256_set1_pd(scale_ins_after);
  __m256d rminv = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d iminv = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  size_t v = 0;
  for (; v + 4 <= m; v += 4) {
    const __m256d q = _mm256_loadu_pd(fractions + v);
    const __m256d c = _mm256_set_pd(static_cast<double>(counts[v + 3]),
                                    static_cast<double>(counts[v + 2]),
                                    static_cast<double>(counts[v + 1]),
                                    static_cast<double>(counts[v]));
    const __m256d u = _mm256_sub_pd(c, _mm256_mul_pd(sz, q));
    // r = s_rem * (base + 2*(uq - u - q)) - before (same op order as scalar).
    const __m256d r = _mm256_sub_pd(
        _mm256_mul_pd(s_rem,
                      _mm256_add_pd(basev,
                                    _mm256_mul_pd(two, _mm256_sub_pd(
                                        _mm256_sub_pd(uqv, u), q)))),
        beforev);
    // s = s_ins * (base - 2*(uq - u + q)) - before.
    const __m256d s = _mm256_sub_pd(
        _mm256_mul_pd(s_ins,
                      _mm256_sub_pd(basev,
                                    _mm256_mul_pd(two, _mm256_add_pd(
                                        _mm256_sub_pd(uqv, u), q)))),
        beforev);
    _mm256_storeu_pd(rem + v, r);
    _mm256_storeu_pd(ins + v, s);
    rminv = _mm256_min_pd(rminv, r);
    iminv = _mm256_min_pd(iminv, s);
  }
  const __m128d r_pair = _mm_min_pd(_mm256_castpd256_pd128(rminv),
                                    _mm256_extractf128_pd(rminv, 1));
  const __m128d i_pair = _mm_min_pd(_mm256_castpd256_pd128(iminv),
                                    _mm256_extractf128_pd(iminv, 1));
  double rmin = _mm_cvtsd_f64(_mm_min_sd(r_pair, _mm_unpackhi_pd(r_pair, r_pair)));
  double imin = _mm_cvtsd_f64(_mm_min_sd(i_pair, _mm_unpackhi_pd(i_pair, i_pair)));
  for (; v < m; ++v) {
    const double q = fractions[v];
    const double u = static_cast<double>(counts[v]) - size * q;
    const double r = scale_rem_after * (base + 2.0 * (uq - u - q)) - before;
    const double s = scale_ins_after * (base - 2.0 * (uq - u + q)) - before;
    rem[v] = r;
    ins[v] = s;
    if (r < rmin) rmin = r;
    if (s < imin) imin = s;
  }
  *rem_min = m == 0 ? 0.0 : rmin;
  *ins_min = m == 0 ? 0.0 : imin;
}

const Backend kAvx2Backend = {"avx2-fma",      DotAvx2,
                              GemvAvx2,        GemvAlignedAvx2,
                              CatMomentsAvx2,  CatDeltaBoundsAvx2};

}  // namespace

// Called by kernels_dispatch.cc after its cpuid check succeeded.
const Backend& Avx2BackendImpl() { return kAvx2Backend; }

}  // namespace kernels
}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_HAVE_AVX2
