#include "data/point_store.h"

namespace fairkm {
namespace data {

PointStore::PointStore(const Matrix& m)
    : rows_(m.rows()), cols_(m.cols()), stride_(PaddedStride(m.cols())) {
  data_.assign(rows_ * stride_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = m.Row(r);
    double* dst = data_.data() + r * stride_;
    for (size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
}

}  // namespace data
}  // namespace fairkm
