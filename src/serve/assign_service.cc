#include "serve/assign_service.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

#include "common/fault_injection.h"
#include "common/timer.h"
#include "serve/assign_batch.h"

namespace fairkm {
namespace serve {

namespace {

uint64_t ResolveConcurrency(int requested) {
  if (requested > 0) return static_cast<uint64_t>(requested);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

using SteadyClock = std::chrono::steady_clock;

// Negative budgets mean "unbounded" — represented as time_point::max() so a
// single comparison covers both cases.
SteadyClock::time_point DeadlineFrom(SteadyClock::time_point start,
                                     double seconds) {
  if (seconds < 0.0) return SteadyClock::time_point::max();
  return start + std::chrono::duration_cast<SteadyClock::duration>(
                     std::chrono::duration<double>(seconds));
}

// FNV-1a 64 over the full request payload: shape, raw point bytes, and (when
// present) the sensitive codes/values. Doubles hash by their bit images, so
// two requests collide only when they are bit-identical inputs — exactly the
// case where the cached assignment is the correct answer (modulo the
// astronomically unlikely 64-bit hash collision, which the entry's row-count
// check narrows further).
uint64_t HashRequest(const data::Matrix& points,
                     const data::SensitiveView* sensitive) {
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const void* data, size_t size) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      h = (h ^ p[i]) * 1099511628211ULL;
    }
  };
  const uint64_t rows = points.rows();
  const uint64_t cols = points.cols();
  mix(&rows, sizeof(rows));
  mix(&cols, sizeof(cols));
  mix(points.data().data(), points.rows() * points.cols() * sizeof(double));
  const uint8_t has_sensitive = sensitive != nullptr ? 1 : 0;
  mix(&has_sensitive, sizeof(has_sensitive));
  if (sensitive != nullptr) {
    for (const auto& attr : sensitive->categorical) {
      mix(attr.codes.data(), attr.codes.size() * sizeof(int32_t));
    }
    for (const auto& attr : sensitive->numeric) {
      mix(attr.values.data(), attr.values.size() * sizeof(double));
    }
  }
  return h;
}

}  // namespace

AssignService::AssignService(const AssignServiceOptions& options)
    : max_batch_points_(std::max<size_t>(options.max_batch_points, 1)),
      max_concurrency_(ResolveConcurrency(options.max_concurrency)),
      max_queue_depth_(options.max_queue_depth),
      cache_capacity_(options.request_cache_capacity) {}

void AssignService::Publish(std::shared_ptr<const ModelSnapshot> snapshot) {
  // Stamp the publish time before the swap: a Metrics() racing in between
  // sees at worst a fresh timestamp with the previous snapshot (transiently
  // young age), never a visible snapshot with an unset timestamp.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    ++publishes_;
    publish_time_ = Clock::now();
    // Republish invalidates every cached answer: the new generation may
    // assign the same request differently.
    cache_lru_.clear();
    cache_index_.clear();
  }
  std::atomic_store(&snapshot_, std::move(snapshot));
}

std::shared_ptr<const ModelSnapshot> AssignService::snapshot() const {
  return std::atomic_load(&snapshot_);
}

void AssignService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  // Wake every queued waiter so it observes shutdown_ and sheds itself.
  slot_free_.notify_all();
}

bool AssignService::is_shutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

Status AssignService::Drain(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  auto quiescent = [this] { return in_flight_ == 0 && queued_ == 0; };
  if (timeout_seconds < 0.0) {
    idle_.wait(lock, quiescent);
    return Status::OK();
  }
  const Clock::time_point deadline = DeadlineFrom(Clock::now(), timeout_seconds);
  if (!idle_.wait_until(lock, deadline, quiescent)) {
    return Status::DeadlineExceeded(
        "service still busy after " + std::to_string(timeout_seconds) +
        "s (" + std::to_string(in_flight_) + " scoring, " +
        std::to_string(queued_) + " queued)");
  }
  return Status::OK();
}

Status AssignService::AcquireSlot(Clock::time_point deadline,
                                  Clock::time_point queue_deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Status::Unavailable("AssignService is shut down");
  if (in_flight_ < max_concurrency_) {
    ++in_flight_;
    peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
    return Status::OK();
  }
  if (queued_ >= max_queue_depth_) {
    ++shed_queue_full_;
    return Status::Unavailable(
        "admission queue full (" + std::to_string(queued_) + " waiting, " +
        std::to_string(in_flight_) + " scoring): retry later");
  }
  ++queued_;
  peak_queue_depth_ = std::max(peak_queue_depth_, queued_);
  const Clock::time_point wake_at = std::min(deadline, queue_deadline);
  Status st;
  for (;;) {
    if (shutdown_) {
      st = Status::Unavailable("AssignService is shut down");
      break;
    }
    if (in_flight_ < max_concurrency_) {
      ++in_flight_;
      peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
      break;
    }
    const Clock::time_point now = Clock::now();
    if (now >= deadline) {
      ++deadline_exceeded_;
      st = Status::DeadlineExceeded(
          "request deadline expired in the admission queue");
      break;
    }
    if (now >= queue_deadline) {
      ++shed_queue_timeout_;
      st = Status::Unavailable(
          "request timed out in the admission queue: retry later");
      break;
    }
    if (wake_at == Clock::time_point::max()) {
      slot_free_.wait(lock);
    } else {
      slot_free_.wait_until(lock, wake_at);
    }
  }
  --queued_;
  if (queued_ == 0 && in_flight_ == 0) idle_.notify_all();
  return st;
}

void AssignService::ReleaseSlot() {
  bool idle = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    idle = (in_flight_ == 0 && queued_ == 0);
  }
  slot_free_.notify_one();
  if (idle) idle_.notify_all();
}

Result<cluster::Assignment> AssignService::Assign(
    const data::Matrix& points, const data::SensitiveView* sensitive,
    const AssignRequestOptions& request) {
  const Clock::time_point arrival = Clock::now();
  const Clock::time_point deadline =
      DeadlineFrom(arrival, request.deadline_seconds);
  const Clock::time_point queue_deadline =
      DeadlineFrom(arrival, request.queue_timeout_seconds);

  // Pin the model generation for the whole request BEFORE taking a slot:
  // every batch of this request scores against one snapshot even if the
  // writer publishes mid-request.
  const std::shared_ptr<const ModelSnapshot> model = snapshot();
  auto fail = [this](Status status) -> Result<cluster::Assignment> {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    ++errors_;
    return status;
  };
  if (model == nullptr) {
    // Not an argument error: nothing is wrong with the request, the service
    // just has no model yet. kUnavailable is the retryable signal a client
    // backoff loop (RetryPolicy) understands.
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_;
    ++errors_;
    ++not_ready_;
    return Status::Unavailable(
        "no model published yet: retry after the first Publish");
  }
  if (Status st = ValidateAssignInputs(*model, points, sensitive); !st.ok()) {
    return fail(std::move(st));
  }
  const size_t rows = points.rows();
  cluster::Assignment out(rows, 0);
  if (rows == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ++requests_;
      ++errors_;
      return Status::Unavailable("AssignService is shut down");
    }
    ++requests_;
    return out;
  }
  if (!model->has_candidates()) {
    return fail(Status::InvalidArgument(
        "trained model has no non-empty cluster to assign to"));
  }

  // Preprocessed-request cache: a repeat of a batch already scored under the
  // pinned snapshot version skips the admission gate and the scoring loop
  // entirely. The version check (not just the Publish-time clear) closes the
  // race where a request pinned the previous generation while a publish and
  // a newer-generation insert landed in between.
  uint64_t cache_key = 0;
  if (cache_capacity_ > 0) {
    cache_key = HashRequest(points, sensitive);
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ++requests_;
      ++errors_;
      return Status::Unavailable("AssignService is shut down");
    }
    const auto it = cache_index_.find(cache_key);
    if (it != cache_index_.end() && it->second->version == model->version() &&
        it->second->result.size() == rows) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      ++requests_;
      ++cache_hits_;
      return it->second->result;
    }
    ++cache_misses_;
  }

  if (Status st = AcquireSlot(deadline, queue_deadline); !st.ok()) {
    return fail(std::move(st));
  }
  // Reused across requests on this thread — the steady state allocates
  // nothing (the buffers only grow to the largest batch/k/|S| seen).
  thread_local AssignScratch scratch;
  Timer timer;
  uint64_t request_batches = 0;
  uint64_t request_max_batch = 0;
  size_t scored = 0;
  Status batch_status;
  for (size_t begin = 0; begin < rows; begin += max_batch_points_) {
    // Cooperative degradation point between scoring chunks: the fault
    // harness can force an error or stall here, and a request that ran out
    // of budget stops promptly instead of scoring to completion. Checked
    // via fault::Check (not FAIRKM_FAULT_POINT) so the slot is still
    // released below on the error path.
    if (fault::Enabled()) {
      batch_status = fault::Check("serve.batch");
      if (!batch_status.ok()) break;
    }
    if (Clock::now() >= deadline) {
      batch_status = Status::DeadlineExceeded(
          "request deadline expired after scoring " + std::to_string(scored) +
          " of " + std::to_string(rows) + " points");
      break;
    }
    const size_t end = std::min(rows, begin + max_batch_points_);
    AssignRows(*model, points, begin, end, sensitive, &scratch, &out);
    ++request_batches;
    request_max_batch = std::max<uint64_t>(request_max_batch, end - begin);
    scored = end;
  }
  const double elapsed = timer.ElapsedSeconds();
  ReleaseSlot();

  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  batches_ += request_batches;
  busy_seconds_ += elapsed;
  max_batch_ = std::max(max_batch_, request_max_batch);
  if (!batch_status.ok()) {
    ++errors_;
    if (batch_status.code() == StatusCode::kDeadlineExceeded) {
      ++deadline_exceeded_;
      // The partial answer is thrown away, but the burnt work is visible.
      deadline_partial_points_ += scored;
    }
    return batch_status;
  }
  points_ += rows;
  if (cache_capacity_ > 0) {
    const auto it = cache_index_.find(cache_key);
    if (it != cache_index_.end()) {
      // Same key, older generation: refresh the entry in place.
      it->second->version = model->version();
      it->second->result = out;
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    } else {
      cache_lru_.push_front({cache_key, model->version(), out});
      cache_index_[cache_key] = cache_lru_.begin();
      if (cache_lru_.size() > cache_capacity_) {
        cache_index_.erase(cache_lru_.back().key);
        cache_lru_.pop_back();
      }
    }
  }
  return out;
}

ServeMetrics AssignService::Metrics() const {
  const bool has_model = snapshot() != nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  ServeMetrics m;
  m.requests = requests_;
  m.errors = errors_;
  m.points = points_;
  m.batches = batches_;
  m.busy_seconds = busy_seconds_;
  m.points_per_second =
      busy_seconds_ > 0.0 ? static_cast<double>(points_) / busy_seconds_ : 0.0;
  m.avg_batch_points =
      batches_ > 0 ? static_cast<double>(points_) / static_cast<double>(batches_)
                   : 0.0;
  m.max_batch_points = max_batch_;
  m.peak_in_flight = peak_in_flight_;
  m.snapshots_published = publishes_;
  m.snapshot_age_seconds =
      has_model ? std::chrono::duration<double>(Clock::now() - publish_time_)
                      .count()
                : -1.0;
  m.not_ready = not_ready_;
  m.shed_queue_full = shed_queue_full_;
  m.shed_queue_timeout = shed_queue_timeout_;
  m.deadline_exceeded = deadline_exceeded_;
  m.deadline_partial_points = deadline_partial_points_;
  m.queue_depth = queued_;
  m.peak_queue_depth = peak_queue_depth_;
  m.cache_hits = cache_hits_;
  m.cache_misses = cache_misses_;
  return m;
}

}  // namespace serve
}  // namespace fairkm
