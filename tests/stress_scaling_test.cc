// Long-running stress suite (ctest label: slow) — the delta kernels at the
// scale the ISSUE-2 acceptance bar names: a 50,000-point world with 8
// sensitive attributes (6 categorical, cardinalities 2..7, + 2 numeric).
//
// The incremental fast path is validated two ways:
//   * objective accounting: the sum of every accepted move's DeltaKMeans /
//     DeltaFairness, accumulated over a full randomized sweep, must agree
//     with from-scratch recomputation of both terms to 1e-6 (relative);
//   * optimizer end states: serial and snapshot-parallel FairKM sessions must
//     agree with each other, and their reported terms must agree with
//     scratch evaluation of the final assignment.

#include <gtest/gtest.h>

#include <cmath>

#include "core/fairkm.h"
#include "core/fairkm_state.h"
#include "core/objective.h"
#include "test_util.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace testutil {
namespace {

constexpr double kTol = 1e-6;

WorldSpec StressSpec() {
  WorldSpec spec;
  spec.blobs = 10;
  spec.per_blob = 5000;  // 50k points.
  spec.dim = 8;
  spec.k = 8;
  spec.categorical_attrs = 6;  // cardinalities 2..7
  spec.numeric_attrs = 2;
  return spec;
}

double Rel(double got, double want) {
  return std::fabs(got - want) / std::max(1.0, std::fabs(want));
}

TEST(StressScaling, DeltaAccountingMatchesScratchAt50kPoints) {
  const SeededWorld world = MakeSeededWorld(/*seed=*/1001, StressSpec());
  auto state_or = core::FairKMState::Create(&world.points, &world.sensitive,
                                            world.k, world.assignment);
  ASSERT_TRUE(state_or.ok()) << state_or.status().ToString();
  core::FairKMState state = state_or.MoveValueUnsafe();

  const core::ObjectiveValue initial = core::ComputeObjective(
      world.points, world.sensitive, world.assignment, world.k);

  // One randomized greedy sweep over all 50k points: evaluate every candidate
  // with the batched kernel + O(1) fairness closed form, take the best
  // improving move, and keep running per-term delta totals.
  Rng rng(1002);
  std::vector<double> km(static_cast<size_t>(world.k));
  double km_acc = 0.0, fair_acc = 0.0;
  size_t moves = 0;
  for (size_t i = 0; i < world.points.rows(); ++i) {
    state.DeltaKMeansAllClusters(i, km.data());
    const int from = state.cluster_of(i);
    double best = -1e-12;
    int best_cluster = from;
    for (int c = 0; c < world.k; ++c) {
      if (c == from) continue;
      const double delta =
          km[static_cast<size_t>(c)] + state.DeltaFairness(i, c);
      if (delta < best) {
        best = delta;
        best_cluster = c;
      }
    }
    if (best_cluster != from) {
      km_acc += km[static_cast<size_t>(best_cluster)];
      fair_acc += state.DeltaFairness(i, best_cluster);
      state.Move(i, best_cluster);
      ++moves;
    }
  }
  ASSERT_GT(moves, 1000u) << "stress sweep did not exercise the kernels";

  const core::ObjectiveValue final_scratch = core::ComputeObjective(
      world.points, world.sensitive, state.assignment(), world.k);
  EXPECT_LT(Rel(initial.kmeans_term + km_acc, final_scratch.kmeans_term), kTol)
      << "accumulated K-Means deltas drifted off the scratch objective";
  EXPECT_LT(Rel(initial.fairness_term + fair_acc, final_scratch.fairness_term),
            kTol)
      << "accumulated fairness deltas drifted off the scratch objective";
}

TEST(StressScaling, SampledKernelsMatchReferenceAt50kPoints) {
  const SeededWorld world = MakeSeededWorld(/*seed=*/2001, StressSpec());
  auto state_or = core::FairKMState::Create(&world.points, &world.sensitive,
                                            world.k, world.assignment);
  ASSERT_TRUE(state_or.ok()) << state_or.status().ToString();
  core::FairKMState state = state_or.MoveValueUnsafe();

  Rng rng(2002);
  std::vector<double> km(static_cast<size_t>(world.k));
  for (int sample = 0; sample < 500; ++sample) {
    const size_t i = static_cast<size_t>(rng.UniformInt(world.points.rows()));
    state.DeltaKMeansAllClusters(i, km.data());
    for (int c = 0; c < world.k; ++c) {
      const double km_ref = state.ReferenceDeltaKMeans(i, c);
      const double fair_ref = state.ReferenceDeltaFairness(i, c);
      ASSERT_LT(Rel(km[static_cast<size_t>(c)], km_ref), kTol)
          << "point " << i << " -> " << c;
      ASSERT_LT(Rel(state.DeltaFairness(i, c), fair_ref), kTol)
          << "point " << i << " -> " << c;
    }
    state.Move(i, static_cast<int>(rng.UniformInt(static_cast<uint64_t>(world.k))));
  }
}

TEST(StressScaling, OptimizerAgreesAcrossSweepModesAt50kPoints) {
  const SeededWorld world = MakeSeededWorld(/*seed=*/3001, StressSpec());

  core::FairKMOptions serial;
  serial.k = world.k;
  serial.max_iterations = 3;
  serial.minibatch_size = 4096;
  Rng serial_rng(3002);
  auto serial_or =
      RunFairKMSession(world.points, world.sensitive, serial, &serial_rng);
  ASSERT_TRUE(serial_or.ok()) << serial_or.status().ToString();
  const core::FairKMResult want = serial_or.MoveValueUnsafe();

  core::FairKMOptions parallel = serial;
  parallel.sweep_mode = core::SweepMode::kParallelSnapshot;
  parallel.num_threads = 4;
  Rng parallel_rng(3002);
  auto parallel_or =
      RunFairKMSession(world.points, world.sensitive, parallel, &parallel_rng);
  ASSERT_TRUE(parallel_or.ok()) << parallel_or.status().ToString();
  const core::FairKMResult got = parallel_or.MoveValueUnsafe();

  EXPECT_EQ(got.assignment, want.assignment);
  ASSERT_EQ(got.objective_history.size(), want.objective_history.size());
  for (size_t s = 0; s < want.objective_history.size(); ++s) {
    EXPECT_LT(Rel(got.objective_history[s], want.objective_history[s]), kTol)
        << "sweep " << s;
  }

  // The optimizer's reported terms must match scratch evaluation of its
  // final assignment — the fast path and the "naive" objective agree.
  const core::ObjectiveValue scratch = core::ComputeObjective(
      world.points, world.sensitive, got.assignment, world.k);
  EXPECT_LT(Rel(got.kmeans_term, scratch.kmeans_term), kTol);
  EXPECT_LT(Rel(got.fairness_term, scratch.fairness_term), kTol);
}

}  // namespace
}  // namespace testutil
}  // namespace fairkm
