// Deterministic-seed golden tests for the lambda heuristic (paper §5.4) and
// the Eq. 9 move-delta computations.
//
// Two kinds of goldens: hand-derived closed-form values on a 4-point world
// small enough to evaluate Eq. 1 on paper, and regression literals captured
// from the deterministic xoshiro-seeded blob world (any change to these is a
// behaviour change of the optimizer state, not a test artifact).

#include <gtest/gtest.h>

#include "core/fairkm.h"
#include "core/fairkm_state.h"
#include "test_util.h"
#include "testlib/worlds.h"

namespace fairkm {
namespace testutil {
namespace {

TEST(SuggestLambdaGolden, MatchesClosedForm) {
  // lambda = (n/k)^2, exactly representable for these inputs.
  EXPECT_EQ(core::SuggestLambda(1000, 5), 40000.0);
  EXPECT_EQ(core::SuggestLambda(60, 3), 400.0);
  EXPECT_EQ(core::SuggestLambda(7, 2), 12.25);
  EXPECT_EQ(core::SuggestLambda(1, 1), 1.0);
  EXPECT_EQ(core::SuggestLambda(0, 4), 0.0);
}

TEST(SuggestLambdaGolden, AutoLambdaFlowsIntoTheSession) {
  const SeededWorld world = MakeSeededWorld(71);  // 3 x 20 points, k = 3.
  core::FairKMOptions options;
  options.k = world.k;
  options.lambda = -1.0;  // auto
  options.max_iterations = 2;
  Rng rng(72);
  auto result = RunFairKMSession(world.points, world.sensitive, options, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie().lambda_used, 400.0);
}

// 4 points on a line with one binary sensitive attribute: every Eq. 9 delta
// below is derivable by hand (see the arithmetic in the comments).
class HandWorldDeltaGolden : public ::testing::Test {
 protected:
  HandWorldDeltaGolden() : points_(4, 1) {
    points_.At(0, 0) = 0.0;
    points_.At(1, 0) = 2.0;
    points_.At(2, 0) = 10.0;
    points_.At(3, 0) = 12.0;
    sensitive_ = MakeView({MakeCategorical({0, 1, 0, 1}, 2)});
    assignment_ = {0, 0, 1, 1};
  }

  core::FairKMState MakeState() {
    return core::FairKMState::Create(&points_, &sensitive_, /*k=*/2, assignment_)
        .ValueOrDie();
  }

  data::Matrix points_;
  data::SensitiveView sensitive_;
  cluster::Assignment assignment_;
};

TEST_F(HandWorldDeltaGolden, InitialTermsAreExact) {
  core::FairKMState state = MakeState();
  // Cluster means 1 and 11; SSE = (1 + 1) + (1 + 1) = 4.
  EXPECT_DOUBLE_EQ(state.KMeansTerm(), 4.0);
  // Both clusters hold one of each code: perfectly balanced, deviation 0.
  EXPECT_DOUBLE_EQ(state.FairnessTerm(), 0.0);
}

TEST_F(HandWorldDeltaGolden, DeltaKMeansMatchesHandArithmetic) {
  core::FairKMState state = MakeState();
  // Move x = 2 into {10, 12}: SSE becomes 0 + (36 + 4 + 16) = 56; delta 52.
  EXPECT_NEAR(state.DeltaKMeans(1, 1), 52.0, 1e-12);
  // Move x = 0 into {10, 12}: new mean 22/3, SSE (484 + 64 + 196)/9 = 744/9;
  // delta 744/9 - 4 = 236/3.
  EXPECT_NEAR(state.DeltaKMeans(0, 1), 236.0 / 3.0, 1e-12);
}

TEST_F(HandWorldDeltaGolden, DeltaFairnessMatchesHandArithmetic) {
  core::FairKMState state = MakeState();
  // Either move unbalances both clusters to u = (±1/2, ∓1/2):
  // deviation = (1/m) * (1/n^2) * (0.5 + 0.5) = (1/2)(1/16) = 1/32 per Eq. 7.
  EXPECT_NEAR(state.DeltaFairness(1, 1), 1.0 / 32.0, 1e-12);
  EXPECT_NEAR(state.DeltaFairness(0, 1), 1.0 / 32.0, 1e-12);
}

TEST_F(HandWorldDeltaGolden, NumericAttributeDeviationIsExact) {
  // Numeric sensitive attribute (Eq. 22): values 1..4, dataset mean 2.5.
  sensitive_.numeric.push_back(MakeNumeric({1.0, 2.0, 3.0, 4.0}));
  core::FairKMState state = MakeState();
  // Per cluster u = sum - size * mean = ±2; deviation = (4 + 4)/16 = 1/2.
  EXPECT_DOUBLE_EQ(state.FairnessTerm(), 0.5);
}

// Regression goldens on the canonical seeded world. The literals were
// captured from the deterministic Rng stream (seed 81) and pin down the
// exact Eq. 9 delta values; they must only change if the objective or the
// world construction intentionally changes.
TEST(SeededWorldDeltaGolden, PinsMoveDeltas) {
  const SeededWorld world = MakeSeededWorld(81);
  core::FairKMState state =
      core::FairKMState::Create(&world.points, &world.sensitive, world.k,
                                world.assignment)
          .ValueOrDie();

  const double golden_kmeans_term = 1551.8286071939265;
  const double golden_fairness_term = 0.017684001361378786;
  const double golden_dk_0_2 = 5.5244716547810029;
  const double golden_dk_17_0 = -3.6503784594237914;
  const double golden_df_0_2 = -0.00387954991721316;
  const double golden_df_17_0 = -0.00089419222904834326;

  EXPECT_NEAR(state.KMeansTerm(), golden_kmeans_term, 1e-9);
  EXPECT_NEAR(state.FairnessTerm(), golden_fairness_term, 1e-12);
  EXPECT_NEAR(state.DeltaKMeans(0, 2), golden_dk_0_2, 1e-9);
  EXPECT_NEAR(state.DeltaKMeans(17, 0), golden_dk_17_0, 1e-9);
  EXPECT_NEAR(state.DeltaFairness(0, 2), golden_df_0_2, 1e-12);
  EXPECT_NEAR(state.DeltaFairness(17, 0), golden_df_17_0, 1e-12);
}

// Lambda annealing (RunBudget.lambda_schedule): a schedule returning the
// session's current lambda must be a strict no-op — the run is bit-identical
// to one without a schedule (assignment, per-sweep objective history, sweep
// count) — and a genuinely annealing schedule must be applied through
// SetLambda at every sweep boundary.
TEST(LambdaScheduleGolden, ConstantScheduleIsABitIdenticalNoOp) {
  const SeededWorld world = MakeSeededWorld(91);
  core::FairKMOptions options;
  options.k = world.k;
  options.lambda = 400.0;
  options.max_iterations = 8;

  core::FairKMSolver plain =
      core::FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(plain.Init(uint64_t{93}).ok());
  ASSERT_TRUE(plain.Run().ok());

  core::FairKMSolver scheduled =
      core::FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(scheduled.Init(uint64_t{93}).ok());
  core::RunBudget budget;
  int calls = 0;
  budget.lambda_schedule = [&calls](int /*sweep*/) {
    ++calls;
    return 400.0;
  };
  ASSERT_TRUE(scheduled.Run(budget).ok());

  EXPECT_GT(calls, 0);
  EXPECT_EQ(scheduled.lambda(), 400.0);
  EXPECT_EQ(scheduled.sweeps_completed(), plain.sweeps_completed());
  EXPECT_EQ(scheduled.assignment(), plain.assignment());
  // Bit-identical, not approximately equal: the schedule must not have
  // perturbed a single double along the trajectory.
  ASSERT_EQ(scheduled.objective_history().size(),
            plain.objective_history().size());
  for (size_t i = 0; i < plain.objective_history().size(); ++i) {
    EXPECT_EQ(scheduled.objective_history()[i], plain.objective_history()[i])
        << "sweep " << i;
  }
}

TEST(LambdaScheduleGolden, AnnealingScheduleAppliesAtEverySweepBoundary) {
  const SeededWorld world = MakeSeededWorld(95);
  core::FairKMOptions options;
  options.k = world.k;
  options.lambda = 400.0;
  options.max_iterations = 6;

  core::FairKMSolver solver =
      core::FairKMSolver::Create(&world.points, &world.sensitive, options)
          .ValueOrDie();
  ASSERT_TRUE(solver.Init(uint64_t{97}).ok());
  core::RunBudget budget;
  std::vector<int> consulted;
  budget.lambda_schedule = [&consulted](int sweep) {
    consulted.push_back(sweep);
    return 100.0 * static_cast<double>(sweep);
  };
  ASSERT_TRUE(solver.Run(budget).ok());

  // Consulted with the 1-based index of every sweep that was about to run.
  ASSERT_FALSE(consulted.empty());
  for (size_t i = 0; i < consulted.size(); ++i) {
    EXPECT_EQ(consulted[i], static_cast<int>(i) + 1);
  }
  // The last scheduled weight is live in the session.
  EXPECT_EQ(solver.lambda(), 100.0 * static_cast<double>(consulted.back()));
}

}  // namespace
}  // namespace testutil
}  // namespace fairkm
