// Reproduces paper Figure 3: Kinematics, Average Wasserstein (AW) per type
// attribute — ZGYA(S) vs FairKM (All) vs FairKM(S), k = 5.

#include "bench_tables.h"

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Figure 3 — Kinematics: AW comparison per attribute (k = 5)", env);
  RunFigureComparison(KinematicsData(), "aw", env);
  return 0;
}
