// Reproduces paper Table 8: fairness on the Kinematics dataset at k = 5 —
// AE/AW/ME/MW for the mean across S and each problem-type attribute;
// K-Means(N) vs ZGYA(S) vs FairKM, with FairKM Impr(%).

#include "bench_tables.h"

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Table 8 — Fairness evaluation on Kinematics", env);
  RunFairnessTable(KinematicsData(), {5}, env);
  return 0;
}
