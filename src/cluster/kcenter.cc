#include "cluster/kcenter.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace fairkm {
namespace cluster {
namespace {

Status CheckInputs(const data::Matrix& points, int k) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (points.rows() == 0) return Status::InvalidArgument("no points");
  if (static_cast<size_t>(k) > points.rows()) {
    return Status::InvalidArgument("k exceeds the number of points");
  }
  return Status::OK();
}

// Assigns every point to its nearest chosen center and computes the radius.
void Finalize(const data::Matrix& points, KCenterResult* result) {
  const size_t n = points.rows();
  result->assignment.assign(n, 0);
  result->radius = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int32_t best_c = 0;
    for (size_t c = 0; c < result->centers.size(); ++c) {
      const double d = data::SquaredDistance(points.Row(i),
                                             points.Row(result->centers[c]),
                                             points.cols());
      if (d < best) {
        best = d;
        best_c = static_cast<int32_t>(c);
      }
    }
    result->assignment[i] = best_c;
    result->radius = std::max(result->radius, std::sqrt(best));
  }
}

// Farthest-point ordering starting from a random seed point: orders[0] is
// random; orders[t] maximizes the distance to {orders[0..t-1]}.
std::vector<size_t> FarthestFirstOrder(const data::Matrix& points, size_t count,
                                       Rng* rng) {
  const size_t n = points.rows();
  std::vector<size_t> order;
  order.reserve(count);
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  size_t current = static_cast<size_t>(rng->UniformInt(n));
  order.push_back(current);
  while (order.size() < count) {
    double far_d = -1.0;
    size_t far_i = 0;
    for (size_t i = 0; i < n; ++i) {
      const double d = data::SquaredDistance(points.Row(i), points.Row(current),
                                             points.cols());
      if (d < dist[i]) dist[i] = d;
      if (dist[i] > far_d) {
        far_d = dist[i];
        far_i = i;
      }
    }
    if (far_d <= 0.0) break;  // All remaining points coincide with centers.
    order.push_back(far_i);
    current = far_i;
  }
  return order;
}

}  // namespace

Result<KCenterResult> RunKCenter(const data::Matrix& points, int k, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  FAIRKM_RETURN_NOT_OK(CheckInputs(points, k));
  KCenterResult result;
  result.centers = FarthestFirstOrder(points, static_cast<size_t>(k), rng);
  Finalize(points, &result);
  return result;
}

std::vector<int> ProportionalQuota(const data::CategoricalSensitive& attr, int k) {
  const int m = attr.cardinality;
  std::vector<int> quota(static_cast<size_t>(m), 0);
  std::vector<double> remainder(static_cast<size_t>(m), 0.0);
  int assigned = 0;
  for (int g = 0; g < m; ++g) {
    const double exact = attr.dataset_fractions[static_cast<size_t>(g)] * k;
    quota[static_cast<size_t>(g)] = static_cast<int>(exact);
    remainder[static_cast<size_t>(g)] = exact - quota[static_cast<size_t>(g)];
    assigned += quota[static_cast<size_t>(g)];
  }
  // Largest remainder: hand out the leftover seats.
  std::vector<int> by_remainder(static_cast<size_t>(m));
  std::iota(by_remainder.begin(), by_remainder.end(), 0);
  std::sort(by_remainder.begin(), by_remainder.end(), [&](int a, int b) {
    if (remainder[static_cast<size_t>(a)] != remainder[static_cast<size_t>(b)]) {
      return remainder[static_cast<size_t>(a)] > remainder[static_cast<size_t>(b)];
    }
    return a < b;
  });
  for (int i = 0; assigned < k; ++i) {
    ++quota[static_cast<size_t>(by_remainder[static_cast<size_t>(i % m)])];
    ++assigned;
  }
  return quota;
}

Result<KCenterResult> RunFairKCenter(const data::Matrix& points,
                                     const data::CategoricalSensitive& attr,
                                     const std::vector<int>& quota, Rng* rng) {
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  if (attr.codes.size() != points.rows()) {
    return Status::InvalidArgument("sensitive attribute row count mismatch");
  }
  if (quota.size() != static_cast<size_t>(attr.cardinality)) {
    return Status::InvalidArgument("quota must have one entry per attribute value");
  }
  int k = 0;
  std::vector<int64_t> available(quota.size(), 0);
  for (int32_t code : attr.codes) ++available[static_cast<size_t>(code)];
  for (size_t g = 0; g < quota.size(); ++g) {
    if (quota[g] < 0) return Status::InvalidArgument("negative quota");
    if (quota[g] > available[g]) {
      return Status::InvalidArgument(
          "quota for value " + std::to_string(g) + " (" + std::to_string(quota[g]) +
          ") exceeds its population (" + std::to_string(available[g]) + ")");
    }
    k += quota[g];
  }
  FAIRKM_RETURN_NOT_OK(CheckInputs(points, k));

  // Walk the full farthest-first order; take a point while its group has
  // quota left. This preserves the geometric spread of Gonzalez's traversal
  // subject to the group constraints.
  std::vector<size_t> order = FarthestFirstOrder(points, points.rows(), rng);
  std::vector<int> left = quota;
  KCenterResult result;
  for (size_t idx : order) {
    int& budget = left[static_cast<size_t>(attr.codes[idx])];
    if (budget > 0) {
      --budget;
      result.centers.push_back(idx);
      if (result.centers.size() == static_cast<size_t>(k)) break;
    }
  }
  // Degenerate duplicates can truncate the farthest-first order; fill any
  // remaining quota with unused points of the right group, in row order.
  if (result.centers.size() < static_cast<size_t>(k)) {
    std::vector<bool> used(points.rows(), false);
    for (size_t c : result.centers) used[c] = true;
    for (size_t i = 0; i < points.rows() && result.centers.size() <
                                                static_cast<size_t>(k);
         ++i) {
      int& budget = left[static_cast<size_t>(attr.codes[i])];
      if (!used[i] && budget > 0) {
        --budget;
        result.centers.push_back(i);
      }
    }
  }
  Finalize(points, &result);
  return result;
}

}  // namespace cluster
}  // namespace fairkm
