// Aligned, padded point store — the hot-path feature layout of the FairKM
// optimizer — behind a pluggable storage backend.
//
// The general-purpose data::Matrix is row-major with rows packed back to
// back, so a row of d doubles is 32-byte aligned only by accident and every
// SIMD kernel pass needs a scalar tail when d % 4 != 0. The optimizer sweep
// streams the same point rows and cluster-sum rows millions of times per
// run, so the solver materializes the feature matrix once into this store:
//
//   * each row is padded to a whole number of 4-double lanes
//     (data::PaddedStride) and the padding is zero-filled, so kernels can run
//     dot products over the full stride with no tail handling — the padded
//     products are exact zeros and leave every accumulation unchanged;
//   * the backing storage is 32-byte aligned, and since the stride is a
//     multiple of the lane width, *every* row is 32-byte aligned — the AVX2
//     backend's aligned-load fast path (GemvAligned) relies on exactly this
//     contract;
//   * rows are kept contiguous (point i at base + i * stride) so a sweep in
//     round-robin order walks the buffer linearly, and the per-cluster lanes
//     of the k x stride sums matrix stay cache-blocked the same way.
//
// Two backends satisfy that contract:
//
//   * kMemory — the padded rows live in an AlignedVector (the historical
//     behavior; `PointStore(matrix)` still builds one directly).
//   * kMmap — the padded rows are written once to a CRC-framed section file
//     (the common/io.h container format, magic "FKPS") whose row payload is
//     placed at a 32-byte-aligned file offset, then the file is mapped
//     read-only. mmap regions are page-aligned, so every row keeps the
//     32-byte alignment guarantee and Row() stays a raw pointer add on the
//     hot path — the kernel pages rows in on first touch and EvictRows()
//     hands fully-swept shards back, which is what bounds RSS below the
//     dataset footprint for out-of-core runs (core::ShardedSweep).
//
// The store is read-only after construction, so the snapshot-parallel sweep
// can stream it from every worker thread. Mmap-backed stores own a file
// mapping, so PointStore is move-only; share one across sessions via the
// shared_ptr<const PointStore> that Create()/Open() return.
//
// On-disk format (all integers little-endian, CRCs masked CRC32C):
//
//   header   magic:u32 ("FKPS")  version:u32  section_count:u32=2  crc:u32
//   meta     tag=1 section: rows:u64  cols:u64  stride:u64
//   rows     tag=2 section: zero pad to a 32-byte file offset, then
//            rows x stride raw little-endian doubles (padding lanes zero)
//
// Any mismatch — bad magic, bad CRC, truncation, trailing bytes, a stride
// that breaks the lane contract — reads as kDataLoss, never as a plausible
// point set. A newer format version reads as kInvalidArgument.

#ifndef FAIRKM_DATA_POINT_STORE_H_
#define FAIRKM_DATA_POINT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/matrix.h"

namespace fairkm {
namespace data {

/// \brief Parsed storage-backend spec for PointStore::Create.
///
/// Text syntax (CLI `--store=`): `"mem"` for the in-memory backend,
/// `"mmap:<path>"` to materialize and map a store file at `<path>`.
struct PointStoreSpec {
  enum class Backend {
    kMemory,  ///< padded rows in an aligned heap buffer
    kMmap,    ///< padded rows in a CRC-framed file, mapped read-only
  };

  Backend backend = Backend::kMemory;
  std::string path;  ///< store-file location (kMmap only)

  /// \brief Parses `"mem"` / `"mmap:<path>"`; kInvalidArgument otherwise.
  static Result<PointStoreSpec> Parse(const std::string& spec);

  /// \brief Round-trips Parse: `"mem"` or `"mmap:<path>"`.
  std::string ToString() const;
};

/// \brief 32-byte-aligned, lane-padded row store of the feature matrix.
class PointStore {
 public:
  PointStore() = default;

  /// \brief Copies `m` into padded/aligned heap storage (memory backend).
  explicit PointStore(const Matrix& m);

  ~PointStore();
  PointStore(PointStore&& other) noexcept;
  PointStore& operator=(PointStore&& other) noexcept;
  PointStore(const PointStore&) = delete;
  PointStore& operator=(const PointStore&) = delete;

  /// \brief Materializes `m` behind the backend `spec` names. The mmap
  /// backend writes the store file durably (temp + fsync + atomic rename,
  /// fault scope "pointstore") and then Open()s it, so on success the
  /// returned store reads from the mapping, not from `m`.
  static Result<std::shared_ptr<const PointStore>> Create(
      const Matrix& m, const PointStoreSpec& spec);

  /// \brief Maps an existing store file read-only after verifying the
  /// header and every section CRC. kDataLoss on any corruption or
  /// truncation, kNotFound when the file is absent, kInvalidArgument on a
  /// newer format version. Verification streams through the mapping and
  /// evicts behind itself, so opening stays RSS-bounded too.
  static Result<std::shared_ptr<const PointStore>> Open(
      const std::string& path);

  /// \brief Streaming materializer for datasets too large to hold as a
  /// Matrix: declare (rows, cols) up front, Append each row, Finish once.
  /// The row payload CRC accumulates incrementally and is patched into the
  /// section frame before the atomic rename, so a reader never sees a
  /// half-written file at the final path (fault scope "pointstore").
  class FileWriter {
   public:
    static Result<FileWriter> Start(const std::string& path, size_t rows,
                                    size_t cols);
    ~FileWriter();
    FileWriter(FileWriter&& other) noexcept;
    FileWriter& operator=(FileWriter&& other) noexcept;
    FileWriter(const FileWriter&) = delete;
    FileWriter& operator=(const FileWriter&) = delete;

    /// \brief Appends one row of cols() doubles (must all be finite).
    Status Append(const double* row);

    /// \brief Seals the file: patches the rows CRC, fsyncs, renames into
    /// place. Requires exactly `rows` Append calls.
    Status Finish();

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

   private:
    FileWriter() = default;

    std::string path_;
    std::string tmp_path_;
    int fd_ = -1;
    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t stride_ = 0;
    size_t appended_ = 0;
    uint64_t bytes_written_ = 0;
    size_t rows_crc_offset_ = 0;
    uint32_t rows_crc_ = 0;
    std::vector<char> row_buf_;
    bool finished_ = false;
  };

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  /// \brief Row width in doubles, a multiple of 4; entries in
  /// [cols(), stride()) are zero.
  size_t stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  PointStoreSpec::Backend backend() const { return backend_; }
  /// \brief Store-file path (kMmap only; empty for the memory backend).
  const std::string& file_path() const { return path_; }
  /// \brief Bytes of padded row data (rows * stride * 8) — the in-memory
  /// footprint a kMemory store of the same shape would occupy.
  size_t data_bytes() const { return rows_ * stride_ * sizeof(double); }

  /// \brief 32-byte-aligned pointer to row r (stride() doubles long).
  const double* Row(size_t r) const {
    FAIRKM_DCHECK(r < rows_);
    return base_ + r * stride_;
  }

  // --- Online growth (memory backend only; src/online/).
  //
  // The store stays "read-only" from every reader's point of view — the
  // online engine serializes all growth behind its own mutex and never
  // mutates while a sweep or a serving snapshot export is reading rows.
  // Appends may reallocate the backing buffer, so raw Row() pointers must
  // not be cached across an AppendRow call.

  /// \brief Appends one row of cols() finite doubles, zero-padding the
  /// trailing [cols(), stride()) lanes. kMemory backend only: the mmap
  /// backend maps a sealed CRC-framed file read-only, so appending returns
  /// an actionable kInvalidArgument telling the caller to materialize a
  /// growable `mem` store instead (online admit needs one).
  Status AppendRow(const double* row, size_t cols);

  /// \brief Removes row r by copying the LAST row over it and shrinking the
  /// store by one row (O(stride), order-changing — callers maintaining a
  /// row-indexed map must mirror the swap). kMemory backend only, same
  /// kInvalidArgument contract as AppendRow for mmap stores.
  Status SwapRemoveRow(size_t r);

  /// \brief Advises the kernel that rows [begin, end) will not be needed
  /// soon (madvise MADV_DONTNEED on the page-interior span). No-op for the
  /// memory backend. Rows stay readable — a later touch refaults the pages
  /// from the store file — so eviction can never change results, only RSS.
  void EvictRows(size_t begin, size_t end) const;

  /// \brief Re-validates the mmap backing file against the mapped size
  /// (fstat on the retained descriptor). A store file truncated after
  /// Open() would otherwise SIGBUS on the first touch of a page past the
  /// new EOF; every chunked walk (Open verification, ValidateFiniteStore)
  /// calls this before touching each chunk so truncation-under-mmap
  /// surfaces as kDataLoss instead of a crash. OK for the memory backend.
  /// Fault point "pointstore.truncate".
  Status CheckBacking() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
  AlignedVector data_;               // kMemory backing
  void* map_ = nullptr;              // kMmap backing
  size_t map_size_ = 0;
  int fd_ = -1;                      // kMmap: retained for CheckBacking fstat
  size_t data_offset_ = 0;           // file offset of row 0 inside map_
  const double* base_ = nullptr;     // row 0, either backend
  std::string path_;
  PointStoreSpec::Backend backend_ = PointStoreSpec::Backend::kMemory;
};

/// \brief kInvalidArgument when any stored value in the first cols() lanes
/// is NaN/Inf — the store-backed analogue of data::ValidateFinite. Scans in
/// shard-sized chunks and evicts behind itself so the check is RSS-bounded
/// on mmap stores.
Status ValidateFiniteStore(const PointStore& store, const std::string& what);

}  // namespace data
}  // namespace fairkm

#endif  // FAIRKM_DATA_POINT_STORE_H_
