// Shared clustering types: assignments, results, centroid helpers.

#ifndef FAIRKM_CLUSTER_TYPES_H_
#define FAIRKM_CLUSTER_TYPES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/matrix.h"

namespace fairkm {
namespace cluster {

/// \brief Cluster id per row; ids are dense in [0, k).
using Assignment = std::vector<int32_t>;

/// \brief Output of a (fair) clustering run.
struct ClusteringResult {
  Assignment assignment;
  data::Matrix centroids;      ///< k x d; rows of empty clusters are zero.
  std::vector<size_t> sizes;   ///< Cluster cardinalities, length k.
  double kmeans_objective = 0.0;  ///< SSE over the task attributes N (Eq. 24).
  double total_objective = 0.0;   ///< Method objective (= SSE for plain K-Means).
  int iterations = 0;
  bool converged = false;

  // Telemetry shared across methods through the cluster::Clusterer interface
  // so harnesses (exp runner, CLI) can report uniformly. Methods without the
  // corresponding machinery leave the defaults.
  double lambda_used = 0.0;     ///< Resolved fairness weight (0 = none).
  double sweep_seconds = 0.0;   ///< Wall time inside optimization sweeps.
  double pruned_fraction = 0.0; ///< Candidate evaluations rejected by pruning.
};

/// \brief Validates that every id is within [0, k) and sizes match.
Status ValidateAssignment(const Assignment& assignment, size_t num_rows, int k);

/// \brief Cluster cardinalities.
std::vector<size_t> ClusterSizes(const Assignment& assignment, int k);

/// \brief Row indices grouped by cluster id.
std::vector<std::vector<size_t>> GroupByCluster(const Assignment& assignment, int k);

/// \brief Mean vector per cluster (zeros for empty clusters).
data::Matrix ComputeCentroids(const data::Matrix& points, const Assignment& assignment,
                              int k);

/// \brief Sum over points of squared distance to their cluster centroid — the
/// clustering objective CO of the paper's Eq. 24.
double SumOfSquaredErrors(const data::Matrix& points, const Assignment& assignment,
                          const data::Matrix& centroids);

/// \brief Fills `result->centroids`, `result->sizes` and
/// `result->kmeans_objective` from `result->assignment`.
void FinalizeResult(const data::Matrix& points, int k, ClusteringResult* result);

}  // namespace cluster
}  // namespace fairkm

#endif  // FAIRKM_CLUSTER_TYPES_H_
