// Unit tests for the wall-clock Timer.

#include "common/timer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace fairkm {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotonic) {
  Timer timer;
  const double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  const double second = timer.ElapsedSeconds();
  EXPECT_GE(second, first);
}

TEST(TimerTest, MeasuresASleepAtLeastApproximately) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // steady_clock can only over-report a sleep, never under-report it.
  EXPECT_GE(timer.ElapsedSeconds(), 0.019);
}

TEST(TimerTest, MillisIsSecondsTimesThousand) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double seconds = timer.ElapsedSeconds();
  const double millis = timer.ElapsedMillis();
  // Two separate now() calls: millis was sampled after seconds.
  EXPECT_GE(millis, seconds * 1e3);
  EXPECT_LT(millis, (seconds + 1.0) * 1e3);
}

TEST(TimerTest, ResetRestartsTheStopwatch) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double before_reset = timer.ElapsedSeconds();
  ASSERT_GE(before_reset, 0.019);
  timer.Reset();
  // Only a relative bound: an absolute one is flaky on loaded CI runners.
  EXPECT_LT(timer.ElapsedSeconds(), before_reset);
}

}  // namespace
}  // namespace fairkm
