// LP-based fair assignment in the style of Bera, Chakrabarty & Negahbani,
// "Fair Algorithms for Clustering" (arXiv:1901.02393) — the related-work
// family [4] of the FairKM paper (cluster perturbation via linear
// programming).
//
// Given centers from a vanilla clustering, a fractional assignment LP is
// solved: minimize sum_ij x_ij * d(i, j) subject to each point fully
// assigned and, for every protected group g and cluster j, the group's mass
// staying within [beta_g, alpha_g] of the cluster's mass. The fractional
// solution is rounded by maximum weight per point (a simplification of the
// original iterative rounding; documented in DESIGN.md §3). Exercises the
// lp/ substrate and is only intended for small-to-medium inputs (the LP has
// n*k variables).

#ifndef FAIRKM_CLUSTER_BERA_LP_H_
#define FAIRKM_CLUSTER_BERA_LP_H_

#include "cluster/types.h"
#include "common/status.h"
#include "data/matrix.h"
#include "data/sensitive.h"
#include "lp/simplex.h"

namespace fairkm {
namespace cluster {

/// \brief Bera-style fair assignment configuration.
struct BeraOptions {
  /// Bounds per group g with dataset share r_g:
  /// alpha_g = min(1, r_g * (1 + bound_slack)), beta_g = r_g / (1 + bound_slack).
  double bound_slack = 0.2;
  lp::SimplexOptions simplex;
};

/// \brief Output: rounded assignment plus the fractional LP value.
struct BeraResult : ClusteringResult {
  double lp_objective = 0.0;        ///< Cost of the fractional assignment.
  double rounded_objective = 0.0;   ///< Cost after rounding.
};

/// \brief Solves the fair-assignment LP against the given centers. Groups
/// are every (attribute, value) pair of the view's categorical attributes.
Result<BeraResult> RunBeraFairAssignment(const data::Matrix& points,
                                         const data::Matrix& centers,
                                         const data::SensitiveView& sensitive,
                                         const BeraOptions& options = {});

}  // namespace cluster
}  // namespace fairkm

#endif  // FAIRKM_CLUSTER_BERA_LP_H_
