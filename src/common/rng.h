// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng so that every experiment is
// exactly reproducible from its seed, independent of the standard library
// implementation (std::uniform_int_distribution et al. are not portable
// across toolchains).

#ifndef FAIRKM_COMMON_RNG_H_
#define FAIRKM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fairkm {

/// \brief xoshiro256** generator seeded via splitmix64.
///
/// Fast, high-quality, and fully deterministic across platforms. Not
/// cryptographically secure (nor does it need to be).
class Rng {
 public:
  /// \brief Constructs a generator whose stream is a pure function of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform integer in [0, bound). `bound` must be positive.
  ///
  /// Uses rejection sampling (Lemire-style) to avoid modulo bias.
  uint64_t UniformInt(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double UniformDouble();

  /// \brief Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// \brief Standard normal variate (Marsaglia polar method).
  double Normal();

  /// \brief Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// \brief Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// \brief Samples an index from an unnormalized non-negative weight vector.
  ///
  /// Returns weights.size() - 1 if rounding pushes the draw past the end.
  /// At least one weight must be positive.
  size_t Categorical(const std::vector<double>& weights);

  /// \brief In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Samples `count` distinct indices from [0, n) (floyd's algorithm order
  /// randomized). `count` must be <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t count);

  /// \brief Derives an independent child generator (for per-worker streams).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fairkm

#endif  // FAIRKM_COMMON_RNG_H_
