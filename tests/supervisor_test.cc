// core::SupervisedRunner — divergence watchdog, checkpoint rollback, and the
// I/O demotion ladder.

#include "core/supervisor.h"

#include <filesystem>
#include <fstream>
#include <string>

#include "common/fault_injection.h"
#include "core/checkpoint_io.h"
#include "core/solver.h"
#include "data/matrix.h"
#include "data/point_store.h"
#include "data/sensitive.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace fairkm {
namespace core {
namespace {

namespace fs = std::filesystem;

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::DisarmAll();
    dir_ = fs::temp_directory_path() /
           ("supervisor_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    Rng rng(11);
    points_ = testutil::MakeBlobs(/*blobs=*/3, /*per_blob=*/40, /*dim=*/4,
                                  &rng);
    sensitive_ = testutil::MakeView(
        {testutil::MakeCategorical(
            testutil::RandomCodes(points_.rows(), 2, &rng), 2)});
    options_.k = 3;
    options_.max_iterations = 15;
  }
  void TearDown() override {
    fault::DisarmAll();
    fs::remove_all(dir_);
  }

  std::string Dir(const char* leaf) const { return (dir_ / leaf).string(); }

  SupervisorPolicy DurablePolicy() const {
    SupervisorPolicy policy;
    policy.checkpoint_dir = Dir("ckpt");
    policy.max_backoff_seconds = 0.002;  // keep test wall time low
    return policy;
  }

  Result<SupervisedRunner> Make(const SupervisorPolicy& policy,
                                const data::PointStoreSpec& spec = {}) {
    return SupervisedRunner::Create(&points_, &sensitive_, options_, spec,
                                    policy);
  }

  fs::path dir_;
  data::Matrix points_;
  data::SensitiveView sensitive_;
  FairKMOptions options_;
};

TEST_F(SupervisorTest, CleanRunMatchesUnsupervisedSolver) {
  // No faults: the supervised trajectory must be bit-identical to a plain
  // solver session with the same seed.
  auto solver = FairKMSolver::Create(&points_, &sensitive_, options_);
  ASSERT_TRUE(solver.ok());
  ASSERT_TRUE(solver.ValueOrDie().Init(uint64_t{99}).ok());
  ASSERT_TRUE(solver.ValueOrDie().Run().ok());

  auto runner = Make(DurablePolicy());
  ASSERT_TRUE(runner.ok());
  auto stop = runner.ValueOrDie().Run(99);
  ASSERT_TRUE(stop.ok()) << stop.status().ToString();
  EXPECT_EQ(stop.ValueOrDie(), RunStop::kConverged);

  const SupervisorStats& stats = runner.ValueOrDie().stats();
  EXPECT_EQ(stats.rollbacks, 0);
  EXPECT_TRUE(stats.converged);
  EXPECT_GT(stats.checkpoints_saved, 0);
  EXPECT_EQ(runner.ValueOrDie().solver().objective_history(),
            solver.ValueOrDie().objective_history());
  EXPECT_EQ(runner.ValueOrDie().solver().assignment(),
            solver.ValueOrDie().assignment());
}

TEST_F(SupervisorTest, InjectedDivergenceRollsBackOnceAndConverges) {
  // The check.sh gate scenario: one injected non-finite objective must cost
  // exactly one rollback and still converge to the clean-run answer.
  auto clean = Make(DurablePolicy());
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(clean.ValueOrDie().Run(7).ok());
  const auto clean_history = clean.ValueOrDie().solver().objective_history();
  fs::remove_all(Dir("ckpt"));

  fault::FaultSpec spec;
  spec.max_fires = 1;
  fault::Arm("supervisor.objective", spec);
  auto runner = Make(DurablePolicy());
  ASSERT_TRUE(runner.ok());
  auto stop = runner.ValueOrDie().Run(7);
  ASSERT_TRUE(stop.ok()) << stop.status().ToString();
  EXPECT_EQ(stop.ValueOrDie(), RunStop::kConverged);

  const SupervisorStats& stats = runner.ValueOrDie().stats();
  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_EQ(stats.nonfinite_faults, 1);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(runner.ValueOrDie().solver().objective_history(), clean_history);
}

TEST_F(SupervisorTest, RollbackBudgetExhaustionSurfacesLastFault) {
  fault::FaultSpec spec;  // unlimited fires: every sweep diverges
  fault::Arm("supervisor.objective", spec);
  SupervisorPolicy policy = DurablePolicy();
  policy.max_rollbacks = 2;
  auto runner = Make(policy);
  ASSERT_TRUE(runner.ok());
  auto stop = runner.ValueOrDie().Run(7);
  ASSERT_FALSE(stop.ok());
  EXPECT_EQ(stop.status().code(), StatusCode::kInternal);
  EXPECT_EQ(runner.ValueOrDie().stats().rollbacks, 2);
  EXPECT_EQ(runner.ValueOrDie().stats().nonfinite_faults, 3);
}

TEST_F(SupervisorTest, StallWatchdogTripsOnSlowSweep) {
  fault::FaultSpec spec;
  spec.kind = fault::Kind::kDelay;
  spec.delay_seconds = 0.05;
  spec.max_fires = 1;
  fault::Arm("supervisor.stall", spec);
  SupervisorPolicy policy = DurablePolicy();
  policy.stall_timeout_seconds = 0.01;
  auto runner = Make(policy);
  ASSERT_TRUE(runner.ok());
  auto stop = runner.ValueOrDie().Run(7);
  ASSERT_TRUE(stop.ok()) << stop.status().ToString();
  EXPECT_EQ(runner.ValueOrDie().stats().stall_faults, 1);
  EXPECT_EQ(runner.ValueOrDie().stats().rollbacks, 1);
  EXPECT_TRUE(runner.ValueOrDie().stats().converged);
}

TEST_F(SupervisorTest, CheckpointWriteFaultRecovers) {
  // A transient ENOSPC on one checkpoint write: counted as an I/O fault,
  // rolled back, and the run still converges.
  fault::FaultSpec spec;
  spec.kind = fault::Kind::kDiskFull;
  spec.max_fires = 1;
  fault::Arm("checkpoint.write", spec);
  auto runner = Make(DurablePolicy());
  ASSERT_TRUE(runner.ok());
  auto stop = runner.ValueOrDie().Run(7);
  ASSERT_TRUE(stop.ok()) << stop.status().ToString();
  EXPECT_EQ(stop.ValueOrDie(), RunStop::kConverged);
  EXPECT_EQ(runner.ValueOrDie().stats().io_faults, 1);
  EXPECT_EQ(runner.ValueOrDie().stats().rollbacks, 1);
  EXPECT_TRUE(runner.ValueOrDie().stats().converged);
}

TEST_F(SupervisorTest, RepeatedIOFaultsWalkTheDemotionLadder) {
  // Start from an mmap store whose verification walk always fails: the
  // second consecutive I/O fault must demote mmap -> memory, after which
  // the armed point is never consulted again (the in-memory backend skips
  // the backing probe) and the run completes.
  fault::FaultSpec spec;  // kError/kIOError, unlimited fires
  fault::Arm("pointstore.truncate", spec);
  data::PointStoreSpec store_spec;
  store_spec.backend = data::PointStoreSpec::Backend::kMmap;
  store_spec.path = Dir("points.fkps");
  SupervisorPolicy policy = DurablePolicy();
  policy.max_rollbacks = 4;
  auto runner = Make(policy, store_spec);
  ASSERT_TRUE(runner.ok());
  auto stop = runner.ValueOrDie().Run(7);
  ASSERT_TRUE(stop.ok()) << stop.status().ToString();
  const SupervisorStats& stats = runner.ValueOrDie().stats();
  EXPECT_EQ(stats.io_faults, 2);
  EXPECT_EQ(stats.rollbacks, 2);
  EXPECT_EQ(stats.store_demotions, 1);
  EXPECT_TRUE(stats.converged);
  // After demotion the rebuilt solver no longer runs over the mmap store:
  // it is either matrix-backed (no store at all) or memory-backed.
  const data::PointStore* store = runner.ValueOrDie().solver().store();
  EXPECT_TRUE(store == nullptr ||
              store->backend() == data::PointStoreSpec::Backend::kMemory);
}

TEST_F(SupervisorTest, ResumeQuarantinesAllCorruptDirectory) {
  // A directory where every checkpoint is corrupt: Run must quarantine the
  // frames (rename aside, never delete), fall through to a fresh Init, and
  // still converge.
  ASSERT_TRUE(fs::create_directories(Dir("ckpt")));
  const std::string bad = Dir("ckpt") + "/" + CheckpointFileName(3);
  {
    std::ofstream out(bad, std::ios::binary);
    out << "FKMCgarbage-not-a-checkpoint";
  }
  auto runner = Make(DurablePolicy());
  ASSERT_TRUE(runner.ok());
  auto stop = runner.ValueOrDie().Run(7);
  ASSERT_TRUE(stop.ok()) << stop.status().ToString();
  EXPECT_TRUE(runner.ValueOrDie().stats().converged);
  EXPECT_TRUE(fs::exists(bad + ".corrupt"));
  EXPECT_FALSE(fs::exists(bad));
}

TEST_F(SupervisorTest, ResumeContinuesFromNewestCheckpoint) {
  // Run once to populate the directory, then a second supervised run with
  // resume on must pick up the converged state instead of re-training.
  auto first = Make(DurablePolicy());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.ValueOrDie().Run(7).ok());
  const auto history = first.ValueOrDie().solver().objective_history();

  auto second = Make(DurablePolicy());
  ASSERT_TRUE(second.ok());
  auto stop = second.ValueOrDie().Run(7);
  ASSERT_TRUE(stop.ok()) << stop.status().ToString();
  EXPECT_EQ(stop.ValueOrDie(), RunStop::kConverged);
  EXPECT_EQ(second.ValueOrDie().solver().objective_history(), history);
}

TEST_F(SupervisorTest, CreateValidatesArguments) {
  EXPECT_FALSE(SupervisedRunner::Create(nullptr, &sensitive_, options_, {},
                                        SupervisorPolicy{})
                   .ok());
  SupervisorPolicy bad;
  bad.max_rollbacks = -1;
  EXPECT_FALSE(Make(bad).ok());
  bad = SupervisorPolicy{};
  bad.checkpoint_keep = 0;
  EXPECT_FALSE(Make(bad).ok());
  bad = SupervisorPolicy{};
  bad.backoff_multiplier = 0.5;
  EXPECT_FALSE(Make(bad).ok());
}

}  // namespace
}  // namespace core
}  // namespace fairkm
