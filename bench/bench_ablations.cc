// Ablation benches for the design choices DESIGN.md calls out:
//   A. cluster weighting (Eq. 6): squared fraction vs |C|-proportional vs
//      unweighted, at matched fairness pressure;
//   B. domain-cardinality normalization (Eq. 4) on/off on Adult;
//   C. mini-batch prototype updates (§6.1): speed vs quality/fairness;
//   D. ZGYA optimizer gap: published soft variational vs exact hard moves;
//   E. per-attribute fairness weights (Eq. 23) steering the trade-off.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "core/fairkm.h"
#include "core/solver.h"
#include "exp/table.h"
#include "metrics/fairness.h"
#include "metrics/quality.h"

namespace {

using namespace fairkm;

// Session-API replacement for the retired RunFairKM wrapper (bit-identical
// trajectories): Create + Init + Run + CurrentResult.
Result<core::FairKMResult> RunSession(const data::Matrix& points,
                                      const data::SensitiveView& sensitive,
                                      const core::FairKMOptions& options,
                                      Rng* rng) {
  FAIRKM_ASSIGN_OR_RETURN(
      core::FairKMSolver solver,
      core::FairKMSolver::Create(&points, &sensitive, options));
  FAIRKM_RETURN_NOT_OK(solver.Init(rng));
  FAIRKM_ASSIGN_OR_RETURN(core::RunStop stop, solver.Run());
  (void)stop;
  return solver.CurrentResult();
}
using bench::BenchEnv;

void AblateClusterWeighting(const exp::ExperimentData& data, const BenchEnv& env) {
  std::printf("\n[A] Cluster weighting (Eq. 6) — Kinematics, k=5\n");
  exp::TablePrinter table({"Weighting", "CO", "AE(mean)", "min |C|", "max |C|"});
  const int k = 5;
  struct Mode {
    const char* name;
    core::ClusterWeighting weighting;
    double lambda_scale;  // Matches the fairness pressure across scales.
  };
  const double n_over_k =
      static_cast<double>(data.features.rows()) / static_cast<double>(k);
  const Mode modes[] = {
      {"(|C|/n)^2 (paper)", core::ClusterWeighting::kSquaredFraction, 1.0},
      {"|C|/n", core::ClusterWeighting::kFractional, 1.0 / n_over_k},
      {"unweighted", core::ClusterWeighting::kUnweighted,
       1.0 / (n_over_k * n_over_k)},
  };
  for (const Mode& mode : modes) {
    RunningStats co, ae, min_size, max_size;
    for (size_t s = 0; s < env.seeds; ++s) {
      core::FairKMOptions options;
      options.k = k;
      options.lambda = data.paper_lambda * mode.lambda_scale;
      options.fairness.weighting = mode.weighting;
      Rng rng(1000 + s);
      auto r = RunSession(data.features, data.sensitive, options, &rng)
                   .ValueOrDie();
      co.Add(r.kmeans_objective);
      ae.Add(metrics::EvaluateFairness(data.sensitive, r.assignment, k).mean.ae);
      min_size.Add(static_cast<double>(
          *std::min_element(r.sizes.begin(), r.sizes.end())));
      max_size.Add(static_cast<double>(
          *std::max_element(r.sizes.begin(), r.sizes.end())));
    }
    table.AddRow({mode.name, exp::Cell(co.mean(), 2), exp::Cell(ae.mean()),
                  exp::Cell(min_size.mean(), 1), exp::Cell(max_size.mean(), 1)});
  }
  table.Print();
  std::printf(
      "Expected: at matched pressure the paper's squared weighting spreads the\n"
      "fairness budget across clusters in proportion to their size and achieves\n"
      "far lower AE; the alternatives concentrate pressure on small clusters\n"
      "(scale 1/|C|^2 or 1/(n|C|)) and leave the large ones skewed.\n");
}

void AblateDomainNormalization(const exp::ExperimentData& data, const BenchEnv& env) {
  std::printf("\n[B] Domain-cardinality normalization (Eq. 4) — Adult, k=5\n");
  exp::TablePrinter table(
      {"Attribute (cardinality)", "AE norm ON", "AE norm OFF"});
  const int k = 5;
  // Removing the 1/|Values(S)| factor inflates every attribute's loss, which
  // would just act like a larger lambda; divide lambda by the mean
  // cardinality so total fairness pressure stays matched and only the
  // *relative* attribute emphasis changes.
  double mean_cardinality = 0.0;
  for (const auto& attr : data.sensitive.categorical) {
    mean_cardinality += attr.cardinality;
  }
  mean_cardinality /= static_cast<double>(data.sensitive.categorical.size());
  auto run = [&](bool normalize) {
    std::map<std::string, RunningStats> ae;
    for (size_t s = 0; s < env.seeds; ++s) {
      core::FairKMOptions options;
      options.k = k;
      options.lambda =
          normalize ? data.paper_lambda : data.paper_lambda / mean_cardinality;
      options.fairness.normalize_domain = normalize;
      Rng rng(1000 + s);
      auto r = RunSession(data.features, data.sensitive, options, &rng)
                   .ValueOrDie();
      auto summary = metrics::EvaluateFairness(data.sensitive, r.assignment, k);
      for (const auto& attr : summary.per_attribute) {
        ae[attr.attribute].Add(attr.ae);
      }
    }
    return ae;
  };
  auto on = run(true);
  auto off = run(false);
  for (size_t a = 0; a < data.sensitive.categorical.size(); ++a) {
    const auto& attr = data.sensitive.categorical[a];
    table.AddRow({attr.name + " (" + std::to_string(attr.cardinality) + ")",
                  exp::Cell(on[attr.name].mean()), exp::Cell(off[attr.name].mean())});
  }
  table.Print();
  std::printf("Expected: at matched total pressure, dropping Eq. 4 shifts the\n"
              "loss budget towards high-cardinality attributes (native_country)\n"
              "at the expense of low-cardinality ones (gender).\n");
}

void AblateMiniBatch(const exp::ExperimentData& data, const BenchEnv& env) {
  std::printf("\n[C] Mini-batch prototype updates (paper §6.1) — Adult, k=5\n");
  exp::TablePrinter table({"Batch size", "seconds/run", "CO", "AE(mean)"});
  const int k = 5;
  for (int batch : {0, 64, 256, 1024}) {
    RunningStats seconds, co, ae;
    for (size_t s = 0; s < env.seeds; ++s) {
      core::FairKMOptions options;
      options.k = k;
      options.lambda = data.paper_lambda;
      options.minibatch_size = batch;
      Rng rng(1000 + s);
      Timer timer;
      auto r = RunSession(data.features, data.sensitive, options, &rng)
                   .ValueOrDie();
      seconds.Add(timer.ElapsedSeconds());
      co.Add(r.kmeans_objective);
      ae.Add(metrics::EvaluateFairness(data.sensitive, r.assignment, k).mean.ae);
    }
    table.AddRow({batch == 0 ? "0 (immediate)" : std::to_string(batch),
                  exp::Cell(seconds.mean(), 4), exp::Cell(co.mean(), 2),
                  exp::Cell(ae.mean())});
  }
  table.Print();
  std::printf(
      "Observation: our prototype maintenance is already O(d) per move, so the\n"
      "paper's proposed mini-batching (§6.1) changes neither runtime nor results\n"
      "much here — its value lies with implementations that recompute centroids\n"
      "from scratch; quality/fairness are essentially batch-size-insensitive.\n");
}

void AblateZgyaOptimizer(const exp::ExperimentData& data, const BenchEnv& env) {
  std::printf("\n[D] ZGYA optimizer gap — %s, k=5 (lambda=%.3g)\n",
              data.name.c_str(), data.zgya_lambda);
  exp::TablePrinter table({"Attribute", "AE soft (published)", "AE hard (exact)",
                           "AE K-Means(N)"});
  exp::ExperimentRunner runner(&data, env.threads);
  exp::RunConfig blind;
  blind.method = exp::Method::kKMeansBlind;
  blind.fairkm.k = 5;
  auto blind_agg = runner.Run(blind, env.seeds, 1000).ValueOrDie();
  for (const auto& attr : data.sensitive_names) {
    exp::RunConfig soft;
    soft.method = exp::Method::kZgyaSingle;
    soft.fairkm.k = 5;
    soft.zgya_lambda = data.zgya_lambda;
    soft.zgya_soft_temperature = data.zgya_soft_temperature;
    soft.single_attribute = attr;
    auto soft_agg = runner.Run(soft, env.seeds, 1000).ValueOrDie();
    exp::RunConfig hard = soft;
    hard.method = exp::Method::kZgyaHard;
    auto hard_agg = runner.Run(hard, env.seeds, 1000).ValueOrDie();
    table.AddRow({attr, exp::Cell(soft_agg.FairnessOf(attr).ae.mean()),
                  exp::Cell(hard_agg.FairnessOf(attr).ae.mean()),
                  exp::Cell(blind_agg.FairnessOf(attr).ae.mean())});
  }
  table.Print();
  std::printf("Reproduction finding: much of FairKM's reported gap to ZGYA is\n"
              "the baseline's soft bound-update optimizer; re-optimizing ZGYA's\n"
              "own objective with exact hard moves closes a large part of it.\n");
}

void AblateAttributeWeights(const exp::ExperimentData& data, const BenchEnv& env) {
  std::printf("\n[E] Per-attribute fairness weights (Eq. 23) — Adult, k=5\n");
  exp::TablePrinter table({"Setting", "AE gender", "AE others (mean)"});
  const int k = 5;
  auto run = [&](double gender_weight) {
    data::SensitiveView view = data.sensitive;
    for (auto& attr : view.categorical) {
      if (attr.name == "gender") attr.weight = gender_weight;
    }
    RunningStats gender, others;
    for (size_t s = 0; s < env.seeds; ++s) {
      core::FairKMOptions options;
      options.k = k;
      options.lambda = data.paper_lambda;
      Rng rng(1000 + s);
      auto r =
          RunSession(data.features, view, options, &rng).ValueOrDie();
      auto summary = metrics::EvaluateFairness(data.sensitive, r.assignment, k);
      double other_sum = 0.0;
      size_t other_n = 0;
      for (const auto& attr : summary.per_attribute) {
        if (attr.attribute == "gender") {
          gender.Add(attr.ae);
        } else {
          other_sum += attr.ae;
          ++other_n;
        }
      }
      others.Add(other_sum / static_cast<double>(other_n));
    }
    table.AddRow({"w_gender = " + exp::Cell(gender_weight, 0),
                  exp::Cell(gender.mean()), exp::Cell(others.mean())});
  };
  run(1.0);
  run(10.0);
  table.Print();
  std::printf("Expected: up-weighting an attribute buys it extra fairness at a\n"
              "small cost to the rest (paper §4.4.2).\n");
}

}  // namespace

int main() {
  BenchEnv env = bench::LoadBenchEnv();
  // Ablations run on a subsample by default to stay quick.
  BenchEnv adult_env = env;
  if (adult_env.adult_rows == 0) adult_env.adult_rows = 4000;
  bench::PrintBanner("Ablations — FairKM design choices", adult_env);

  const auto& kinematics = bench::KinematicsData();
  const auto& adult = bench::AdultData(adult_env);

  AblateClusterWeighting(kinematics, env);
  AblateDomainNormalization(adult, adult_env);
  AblateMiniBatch(adult, adult_env);
  AblateZgyaOptimizer(kinematics, env);
  AblateZgyaOptimizer(adult, adult_env);
  AblateAttributeWeights(adult, adult_env);
  return 0;
}
