// Out-of-core scaling harness: streams synthetic datasets of increasing row
// counts to mmap-backed point stores (the dataset never exists as an
// in-process Matrix), sweeps each through core::ShardedSweep, and records a
// JSON curve of {rows, dataset_bytes, sweep_seconds, peak_rss_bytes, ...} —
// the evidence behind the "10M points with resident memory below the dataset
// footprint" claim in README.md and the `sharded_scaling` section of
// BENCH_scaling.json (tools/bench_json.sh merges the output in).
//
//   build/tools/sharded_scaling --rows=1000000,10000000 --out=sharded.json
//
// Run sizes in ASCENDING order: peak_rss_bytes is the process VmHWM sampled
// after each run, so an earlier larger run would mask a later smaller one.
// Pruning stays off — its per-point bound arrays are O(n k) heap, the one
// part of a session that does not stay out of core (README "Scaling" notes).

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/io.h"
#include "common/proc_stats.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/fairkm.h"
#include "core/sharded_sweep.h"
#include "core/solver.h"
#include "data/point_store.h"
#include "data/sensitive.h"

namespace fairkm {
namespace {

struct CurvePoint {
  size_t rows = 0;
  size_t dim = 0;
  size_t dataset_bytes = 0;
  double materialize_seconds = 0.0;  // FileWriter stream + verify-on-open
  double sweep_seconds = 0.0;        // ShardedSweep Init + Run wall time
  int shards = 0;
  uint64_t evictions = 0;
  size_t peak_rss_bytes = 0;  // process VmHWM after this run
  double total_objective = 0.0;
};

Result<CurvePoint> RunOne(size_t n, size_t d, int k, int minibatch, int shards,
                          int sweeps, int threads, const std::string& path) {
  CurvePoint point;
  point.rows = n;
  point.dim = d;

  // Stream blob-shaped rows straight to disk; in-process state is one row
  // buffer plus the n-length sensitive codes (4 bytes/row).
  Rng rng(7);
  std::vector<int32_t> codes(n);
  Timer materialize;
  {
    FAIRKM_ASSIGN_OR_RETURN(data::PointStore::FileWriter writer,
                            data::PointStore::FileWriter::Start(path, n, d));
    std::vector<double> row(d);
    for (size_t i = 0; i < n; ++i) {
      const double center = static_cast<double>(i % static_cast<size_t>(k)) * 3.0;
      for (size_t c = 0; c < d; ++c) row[c] = center + rng.Normal(0.0, 0.5);
      FAIRKM_RETURN_NOT_OK(writer.Append(row.data()));
      codes[i] = static_cast<int32_t>(rng.UniformInt(3));
    }
    FAIRKM_RETURN_NOT_OK(writer.Finish());
  }
  FAIRKM_ASSIGN_OR_RETURN(std::shared_ptr<const data::PointStore> store,
                          data::PointStore::Open(path));
  point.materialize_seconds = materialize.ElapsedSeconds();
  point.dataset_bytes = store->data_bytes();

  data::CategoricalSensitive attr;
  attr.name = "group";
  attr.cardinality = 3;
  attr.codes = std::move(codes);
  attr.dataset_fractions.assign(3, 0.0);
  for (int32_t c : attr.codes) {
    attr.dataset_fractions[static_cast<size_t>(c)] += 1.0;
  }
  for (double& f : attr.dataset_fractions) f /= static_cast<double>(n);
  data::SensitiveView sensitive;
  sensitive.categorical.push_back(std::move(attr));

  core::FairKMOptions options;
  options.k = k;
  options.lambda = -1.0;
  options.max_iterations = sweeps;
  options.minibatch_size = minibatch;
  options.sweep_mode = core::SweepMode::kParallelSnapshot;
  options.num_threads = threads;
  options.enable_pruning = false;  // O(n k) bounds would re-enter the heap

  Timer sweep_timer;
  FAIRKM_ASSIGN_OR_RETURN(
      core::ShardedSweep sweep,
      core::ShardedSweep::Create(store, &sensitive, options, shards));
  FAIRKM_RETURN_NOT_OK(sweep.Init(uint64_t{11}));
  core::RunBudget budget;
  budget.max_sweeps = sweeps;
  FAIRKM_ASSIGN_OR_RETURN(core::RunStop stop, sweep.Run(budget));
  (void)stop;
  point.sweep_seconds = sweep_timer.ElapsedSeconds();
  point.shards = sweep.stats().num_shards;
  point.evictions = sweep.stats().evictions;
  point.total_objective =
      sweep.solver().Objective();  // O(k), no full-store finalize pass
  point.peak_rss_bytes = PeakRssBytes();
  return point;
}

std::string ToJson(const std::vector<CurvePoint>& curve) {
  std::string out = "{\n  \"generated_unix\": " +
                    std::to_string(static_cast<long long>(std::time(nullptr))) +
                    ",\n  \"entries\": [\n";
  for (size_t i = 0; i < curve.size(); ++i) {
    const CurvePoint& p = curve[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"rows\": %zu, \"dim\": %zu, \"dataset_bytes\": %zu, "
        "\"materialize_seconds\": %.3f, \"sweep_seconds\": %.3f, "
        "\"shards\": %d, \"evictions\": %llu, \"peak_rss_bytes\": %zu, "
        "\"rss_over_dataset\": %.3f, \"total_objective\": %.6e}%s\n",
        p.rows, p.dim, p.dataset_bytes, p.materialize_seconds,
        p.sweep_seconds, p.shards,
        static_cast<unsigned long long>(p.evictions), p.peak_rss_bytes,
        p.dataset_bytes > 0 ? static_cast<double>(p.peak_rss_bytes) /
                                  static_cast<double>(p.dataset_bytes)
                            : 0.0,
        p.total_objective, i + 1 < curve.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

int Main(int argc, const char* const* argv) {
  ArgParser args;
  args.AddFlag("rows", "1000000,10000000",
               "comma-separated row counts, ascending (VmHWM is cumulative)");
  args.AddFlag("dim", "32", "feature width");
  args.AddFlag("k", "8", "clusters");
  args.AddFlag("minibatch", "8192", "mini-batch size (prototype refresh)");
  args.AddFlag("shards", "16", "shard count for the out-of-core sweep");
  args.AddFlag("sweeps", "2", "sweeps per run");
  args.AddFlag("threads", "2", "worker threads for the snapshot sweep");
  args.AddFlag("dir", "/tmp/fairkm_sharded_scaling",
               "scratch directory for the store files");
  args.AddFlag("out", "sharded_scaling.json", "output JSON path");
  args.AddFlag("keep-stores", "false", "keep the store files after each run");
  Status st = args.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.message().c_str(),
                 args.HelpString("sharded_scaling").c_str());
    return 2;
  }

  std::vector<size_t> row_counts;
  {
    const std::string spec = args.GetString("rows");
    size_t begin = 0;
    while (begin <= spec.size()) {
      const size_t comma = std::min(spec.find(',', begin), spec.size());
      const std::string token = spec.substr(begin, comma - begin);
      if (!token.empty()) {
        const long long parsed = std::atoll(token.c_str());
        if (parsed <= 0) {
          std::fprintf(stderr, "bad --rows entry \"%s\"\n", token.c_str());
          return 2;
        }
        row_counts.push_back(static_cast<size_t>(parsed));
      }
      begin = comma + 1;
    }
  }

  const std::string dir = args.GetString("dir");
  st = io::CreateDirectories(dir);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.message().c_str());
    return 1;
  }

  std::vector<CurvePoint> curve;
  for (size_t n : row_counts) {
    const std::string path = dir + "/points_" + std::to_string(n) + ".fkps";
    Result<CurvePoint> point = RunOne(
        n, static_cast<size_t>(args.GetInt("dim")),
        static_cast<int>(args.GetInt("k")),
        static_cast<int>(args.GetInt("minibatch")),
        static_cast<int>(args.GetInt("shards")),
        static_cast<int>(args.GetInt("sweeps")),
        static_cast<int>(args.GetInt("threads")), path);
    if (!args.GetBool("keep-stores")) std::remove(path.c_str());
    if (!point.ok()) {
      std::fprintf(stderr, "n = %zu failed: %s\n", n,
                   point.status().message().c_str());
      return 1;
    }
    const CurvePoint& p = point.ValueOrDie();
    std::printf(
        "n = %zu: dataset %.1f MiB, materialize %.2fs, sweep %.2fs, "
        "%d shards, %llu evictions, peak RSS %.1f MiB (%.2fx dataset)\n",
        p.rows, static_cast<double>(p.dataset_bytes) / (1 << 20),
        p.materialize_seconds, p.sweep_seconds, p.shards,
        static_cast<unsigned long long>(p.evictions),
        static_cast<double>(p.peak_rss_bytes) / (1 << 20),
        p.dataset_bytes > 0 ? static_cast<double>(p.peak_rss_bytes) /
                                  static_cast<double>(p.dataset_bytes)
                            : 0.0);
    curve.push_back(p);
  }

  st = io::AtomicWriteFile(args.GetString("out"), ToJson(curve),
                           "sharded_scaling");
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.message().c_str());
    return 1;
  }
  std::printf("wrote %s\n", args.GetString("out").c_str());
  return 0;
}

}  // namespace
}  // namespace fairkm

int main(int argc, char** argv) { return fairkm::Main(argc, argv); }
