// Lloyd's K-Means with k-means++ or random-partition initialization.
//
// This is both the paper's S-blind baseline "K-Means(N)" (§5.3) and the
// substrate every fair method builds on.

#ifndef FAIRKM_CLUSTER_KMEANS_H_
#define FAIRKM_CLUSTER_KMEANS_H_

#include "common/rng.h"
#include "common/status.h"
#include "cluster/types.h"
#include "data/matrix.h"

namespace fairkm {
namespace cluster {

/// \brief Initialization strategy.
enum class KMeansInit {
  kKMeansPlusPlus,     ///< D² sampling of initial centers (Arthur & Vassilvitskii).
  kRandomAssignment,   ///< Uniform random cluster per point (paper's Alg. 1 step 1).
  kRandomCenters,      ///< Centers drawn uniformly from the points.
};

/// \brief K-Means configuration.
struct KMeansOptions {
  int k = 5;
  int max_iterations = 100;
  /// Converged when no assignment changes in a sweep.
  KMeansInit init = KMeansInit::kKMeansPlusPlus;
};

/// \brief Draws k initial centers by D² weighting (k-means++).
Result<data::Matrix> KMeansPlusPlusCenters(const data::Matrix& points, int k, Rng* rng);

/// \brief Assigns each point to its nearest center; returns number of changes
/// relative to the previous content of `assignment` (which may be empty).
size_t AssignToNearest(const data::Matrix& points, const data::Matrix& centers,
                       Assignment* assignment);

/// \brief Runs Lloyd's algorithm. Empty clusters are repaired by seeding them
/// with the point farthest from its current center.
Result<ClusteringResult> RunKMeans(const data::Matrix& points,
                                   const KMeansOptions& options, Rng* rng);

/// \brief Produces an initial assignment under the chosen strategy. Shared by
/// the move-based optimizers (FairKM, ZGYA) and their naive reference
/// implementations, so that equal seeds yield equal starting points.
Result<Assignment> MakeInitialAssignment(const data::Matrix& points, int k,
                                         KMeansInit init, Rng* rng);

/// \brief The kRandomAssignment strategy without the matrix: depends only on
/// (n, k, rng draws), so store-backed sessions (out-of-core PointStore runs
/// with no data::Matrix in memory) draw the SAME initial assignment as a
/// matrix-backed session with an equal seed. MakeInitialAssignment's
/// kRandomAssignment branch routes through this.
Result<Assignment> MakeRandomAssignment(size_t n, int k, Rng* rng);

}  // namespace cluster
}  // namespace fairkm

#endif  // FAIRKM_CLUSTER_KMEANS_H_
