#include "core/sharded_sweep.h"

#include <algorithm>
#include <utility>

#include "common/proc_stats.h"

namespace fairkm {
namespace core {

ShardedSweep::ShardedSweep(FairKMSolver solver, int num_shards,
                           size_t shard_rows)
    : solver_(std::move(solver)),
      store_(nullptr),
      shard_rows_(shard_rows),
      num_shards_(num_shards) {
  stats_.num_shards = num_shards;
  stats_.shard_rows = shard_rows;
}

Result<ShardedSweep> ShardedSweep::Create(
    std::shared_ptr<const data::PointStore> store,
    const data::SensitiveView* sensitive, const FairKMOptions& options,
    int num_shards) {
  if (store == nullptr) {
    return Status::InvalidArgument("store must not be null");
  }
  FAIRKM_RETURN_NOT_OK(options.Validate());
  if (options.sweep_mode != SweepMode::kParallelSnapshot) {
    return Status::InvalidArgument(
        "sharded sweep requires SweepMode::kParallelSnapshot (the driver is "
        "defined over the snapshot batch engine)");
  }
  const size_t n = store->rows();
  const size_t batch = static_cast<size_t>(options.minibatch_size);
  // Shard geometry in whole mini-batches: shard boundaries must coincide
  // with prototype-refresh boundaries so "cursor passed the shard" implies
  // "no further reads of its rows until the next sweep".
  const size_t total_batches = batch > 0 ? (n + batch - 1) / batch : 0;
  if (total_batches == 0) {
    return Status::InvalidArgument("store must not be empty");
  }
  size_t shards = num_shards > 0 ? static_cast<size_t>(num_shards) : 8;
  shards = std::min(shards, total_batches);  // >= 1 mini-batch per shard.
  const size_t batches_per_shard = (total_batches + shards - 1) / shards;
  const size_t shard_rows = batches_per_shard * batch;
  const size_t resolved = (n + shard_rows - 1) / shard_rows;
  std::shared_ptr<const data::PointStore> solver_store = store;
  FAIRKM_ASSIGN_OR_RETURN(
      FairKMSolver solver,
      FairKMSolver::Create(std::move(solver_store), sensitive, options));
  ShardedSweep sweep(std::move(solver), static_cast<int>(resolved),
                     shard_rows);
  sweep.store_ = std::move(store);
  return sweep;
}

void ShardedSweep::EvictBehind(size_t processed, bool sweep_complete) {
  bool evicted = false;
  while (next_evict_ < num_shards_) {
    const size_t begin = static_cast<size_t>(next_evict_) * shard_rows_;
    const size_t end = std::min(store_->rows(), begin + shard_rows_);
    if (end > processed) break;
    store_->EvictRows(begin, end);
    ++stats_.evictions;
    ++next_evict_;
    evicted = true;
  }
  if (sweep_complete) next_evict_ = 0;
  if (evicted) {
    stats_.peak_rss_bytes = std::max(stats_.peak_rss_bytes, CurrentRssBytes());
  }
}

Result<RunStop> ShardedSweep::Run(const RunBudget& budget,
                                  const ProgressCallback& progress) {
  // Interpose on the solver's batch-boundary callback: evict first (the
  // aggregates are consistent and the cursor final for this boundary), then
  // defer to the caller. The wrapper cannot perturb the trajectory — it
  // only reads progress and touches the page cache.
  ProgressCallback wrapped = [this, &progress](const SweepProgress& p) {
    EvictBehind(p.points_processed, p.sweep_complete);
    return progress ? progress(p) : true;
  };
  return solver_.Run(budget, wrapped);
}

}  // namespace core
}  // namespace fairkm
