#include "cluster/bera_lp.h"

#include <algorithm>
#include <cmath>

namespace fairkm {
namespace cluster {

Result<BeraResult> RunBeraFairAssignment(const data::Matrix& points,
                                         const data::Matrix& centers,
                                         const data::SensitiveView& sensitive,
                                         const BeraOptions& options) {
  const size_t n = points.rows();
  const size_t k = centers.rows();
  if (n == 0) return Status::InvalidArgument("no points");
  if (k == 0) return Status::InvalidArgument("no centers");
  if (points.cols() != centers.cols()) {
    return Status::InvalidArgument("points/centers dimensionality mismatch");
  }
  if (sensitive.categorical.empty()) {
    return Status::InvalidArgument("Bera fair assignment needs categorical groups");
  }
  if (sensitive.num_rows() != n) {
    return Status::InvalidArgument("sensitive view row count mismatch");
  }
  if (options.bound_slack < 0) {
    return Status::InvalidArgument("bound_slack must be non-negative");
  }

  // Variables: x[i*k + j] = fractional assignment of point i to center j.
  // No explicit upper bound: sum_j x_ij = 1 with x >= 0 already implies
  // x_ij <= 1, and explicit bounds would add n*k tableau rows.
  lp::Model model;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < k; ++j) {
      const double cost =
          data::SquaredDistance(points.Row(i), centers.Row(j), points.cols());
      model.AddVariable(cost);
    }
  }
  auto var = [&](size_t i, size_t j) { return static_cast<int>(i * k + j); };

  // Full assignment of each point.
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::pair<int, double>> terms;
    terms.reserve(k);
    for (size_t j = 0; j < k; ++j) terms.emplace_back(var(i, j), 1.0);
    FAIRKM_RETURN_NOT_OK(model.AddConstraint(std::move(terms), lp::Sense::kEqual, 1.0,
                                             "assign_" + std::to_string(i)));
  }

  // Group bounds: for each (attribute, value) group g and cluster j,
  //   beta_g * sum_i x_ij  <=  sum_{i in g} x_ij  <=  alpha_g * sum_i x_ij.
  for (const auto& attr : sensitive.categorical) {
    for (int s = 0; s < attr.cardinality; ++s) {
      const double share = attr.dataset_fractions[static_cast<size_t>(s)];
      if (share <= 0.0) continue;  // Absent value: no constraint needed.
      const double alpha = std::min(1.0, share * (1.0 + options.bound_slack));
      const double beta = share / (1.0 + options.bound_slack);
      for (size_t j = 0; j < k; ++j) {
        std::vector<std::pair<int, double>> upper;
        std::vector<std::pair<int, double>> lower;
        upper.reserve(n);
        lower.reserve(n);
        for (size_t i = 0; i < n; ++i) {
          const bool in_group = attr.codes[i] == s;
          const double coeff_up = (in_group ? 1.0 : 0.0) - alpha;
          const double coeff_lo = beta - (in_group ? 1.0 : 0.0);
          if (coeff_up != 0.0) upper.emplace_back(var(i, j), coeff_up);
          if (coeff_lo != 0.0) lower.emplace_back(var(i, j), coeff_lo);
        }
        FAIRKM_RETURN_NOT_OK(model.AddConstraint(
            std::move(upper), lp::Sense::kLessEqual, 0.0,
            attr.name + "=" + std::to_string(s) + "_ub_" + std::to_string(j)));
        FAIRKM_RETURN_NOT_OK(model.AddConstraint(
            std::move(lower), lp::Sense::kLessEqual, 0.0,
            attr.name + "=" + std::to_string(s) + "_lb_" + std::to_string(j)));
      }
    }
  }

  FAIRKM_ASSIGN_OR_RETURN(lp::Solution solution, lp::Solve(model, options.simplex));

  BeraResult result;
  result.lp_objective = solution.objective;
  result.assignment.resize(n);
  for (size_t i = 0; i < n; ++i) {
    size_t best = 0;
    double best_w = -1.0;
    for (size_t j = 0; j < k; ++j) {
      const double w = solution.values[i * k + j];
      if (w > best_w) {
        best_w = w;
        best = j;
      }
    }
    result.assignment[i] = static_cast<int32_t>(best);
  }
  FinalizeResult(points, static_cast<int>(k), &result);
  result.rounded_objective = 0.0;
  for (size_t i = 0; i < n; ++i) {
    result.rounded_objective += data::SquaredDistance(
        points.Row(i), centers.Row(static_cast<size_t>(result.assignment[i])),
        points.cols());
  }
  result.total_objective = result.rounded_objective;
  result.converged = true;
  result.iterations = solution.iterations;
  return result;
}

}  // namespace cluster
}  // namespace fairkm
