#include "core/pruning.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace fairkm {
namespace core {

namespace {

// Defensive slack absorbing the floating-point gap between the bound
// arithmetic and the exact delta kernels (different association, accumulated
// drift additions, cancellation between the removal/insertion halves).
// Relative to the PRE-cancellation component magnitudes entering the gate —
// a tiny total can still carry rounding proportional to its large summands.
// The norm term matters for offset-heavy data: the expanded-form distances
// the bounds are refreshed from have absolute error ~ eps * ||x||^2 even
// when the distances themselves are tiny, so the margin must scale with the
// gross norm, not just with the surviving distance terms. The effect is
// always in the conservative direction — a point near the slack band is
// evaluated exactly instead of pruned (on pathological offsets the gate
// simply stops firing; trajectories stay bit-identical).
constexpr double kGateRelativeSlack = 1e-9;
constexpr double kGateAbsoluteSlack = 1e-9;

// Shared margin for both gate stages: keep every term that enters the
// comparison in here so the two stages cannot drift apart in
// conservativeness.
inline double GateMargin(double addition_lb, double removal_ub,
                         double fair_rem_mag, double fair_ins_mag,
                         double point_norm) {
  return kGateRelativeSlack * (addition_lb + removal_ub + fair_rem_mag +
                               fair_ins_mag + point_norm) +
         kGateAbsoluteSlack;
}

}  // namespace

bool PruningDisabledByEnv() {
  const char* env = std::getenv("FAIRKM_DISABLE_PRUNING");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

SweepPruner::SweepPruner(const FairKMState* state, double lambda,
                         double min_improvement)
    : state_(state),
      lambda_(lambda),
      min_improvement_(min_improvement),
      k_(static_cast<size_t>(state->k())) {
  FAIRKM_DCHECK(state != nullptr && state->bound_tracking());
  const size_t n = state->num_rows();
  lb0_.assign(n * k_, 0.0);
  drift_ref_.assign(n * k_, 0.0);
  lbmin0_.assign(n, 0.0);
  max_drift_ref_.assign(n, 0.0);
  fresh_.assign(n, 0);
}

double SweepPruner::UpperBound(size_t i) const {
  const size_t own = static_cast<size_t>(state_->cluster_of(i));
  const size_t idx = i * k_ + own;
  return lb0_[idx] + (state_->cluster_drift(static_cast<int>(own)) - drift_ref_[idx]);
}

double SweepPruner::LowerBound(size_t i) const {
  const double lb = lbmin0_[i] - (state_->cumulative_max_step() - max_drift_ref_[i]);
  return lb > 0.0 ? lb : 0.0;
}

double SweepPruner::CandidateLowerBound(size_t i, int c) const {
  const size_t idx = i * k_ + static_cast<size_t>(c);
  const double lb = lb0_[idx] - (state_->cluster_drift(c) - drift_ref_[idx]);
  return lb > 0.0 ? lb : 0.0;
}

double SweepPruner::RemovalUpperBound(size_t i, int from) const {
  // Removal gain upper bound: |C|/(|C|-1) * ub^2 (0 for a singleton, whose
  // removal frees no SSE).
  const size_t c_from = state_->effective_count(from);
  if (c_from <= 1) return 0.0;
  const double ub = UpperBound(i);
  return static_cast<double>(c_from) / static_cast<double>(c_from - 1) * ub * ub;
}

double SweepPruner::GateLowerBound(size_t i) const {
  const int from = state_->cluster_of(i);
  const double removal_ub = RemovalUpperBound(i, from);

  // Addition cost lower bound: the smallest candidate factor times lb^2.
  const double lb = LowerBound(i);
  const double addition_lb = state_->MinAdditionFactorExcluding(from) * lb * lb;

  // Fairness lower bound, from the monotone count-based bounds (removal and
  // insertion halves entered separately so the margin sees their magnitudes
  // before cancellation).
  const double fair_rem = lambda_ * state_->fair_removal_bound(from);
  const double fair_ins =
      lambda_ * state_->FairInsertionLowerBoundExcluding(from);

  const double total = addition_lb - removal_ub + fair_rem + fair_ins;
  return total - GateMargin(addition_lb, removal_ub, std::fabs(fair_rem),
                            std::fabs(fair_ins), state_->point_norm(i));
}

bool SweepPruner::ShouldPrune(size_t i) const {
  if (fresh_[i] == 0) return false;
  // Stage 1: the O(1) fully-decoupled gate (cluster-level fairness bounds +
  // the global distance floor). Catches the fairness-balanced steady state
  // cheaply.
  if (GateLowerBound(i) >= -min_improvement_) return true;
  // Stage 2: per-candidate gate — the fairness delta is evaluated exactly
  // from the maintained per-(attribute, cluster, value) tables (the shared
  // removal part prices once per point, insertion is O(|S|) lookups per
  // candidate) and the K-Means term is bounded per candidate with the
  // Elkan-style lb. Still avoids the O(k d) GEMV; this is what bites when
  // clusters cannot balance every attribute at once and the per-cluster
  // fairness minima are too pessimistic.
  const int from = state_->cluster_of(i);
  const double removal_ub = RemovalUpperBound(i, from);
  const double fair_removal = lambda_ * state_->FairRemovalDelta(i);
  const double norm = state_->point_norm(i);
  const int k = state_->k();
  for (int c = 0; c < k; ++c) {
    if (c == from) continue;
    const size_t cnt = state_->effective_count(c);
    const double addf =
        cnt == 0 ? 0.0
                 : static_cast<double>(cnt) / static_cast<double>(cnt + 1);
    const double lbc = CandidateLowerBound(i, c);
    const double addition_lb = addf * lbc * lbc;
    const double fair_insertion = lambda_ * state_->FairInsertionDelta(i, c);
    const double total =
        addition_lb - removal_ub + fair_removal + fair_insertion;
    const double margin = GateMargin(addition_lb, removal_ub,
                                     std::fabs(fair_removal),
                                     std::fabs(fair_insertion), norm);
    if (total - margin < -min_improvement_) return false;  // Might improve.
  }
  return true;
}

void SweepPruner::Refresh(size_t i, const double* dists) {
  const size_t own = static_cast<size_t>(state_->cluster_of(i));
  double min_other = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < k_; ++c) {
    const double d = std::sqrt(dists[c]);
    lb0_[i * k_ + c] = d;
    drift_ref_[i * k_ + c] = state_->cluster_drift(static_cast<int>(c));
    if (c != own && d < min_other) min_other = d;
  }
  lbmin0_[i] = k_ > 1 ? min_other : 0.0;
  max_drift_ref_[i] = state_->cumulative_max_step();
  fresh_[i] = 1;
}

void SweepPruner::Invalidate(size_t i) { fresh_[i] = 0; }

void SweepPruner::Reset() { std::fill(fresh_.begin(), fresh_.end(), 0); }

void SweepPruner::SaveCheckpoint(Checkpoint* out) const {
  out->lb0 = lb0_;
  out->drift_ref = drift_ref_;
  out->lbmin0 = lbmin0_;
  out->max_drift_ref = max_drift_ref_;
  out->fresh = fresh_;
}

Status SweepPruner::RestoreCheckpoint(const Checkpoint& cp) {
  if (cp.lb0.size() != lb0_.size() || cp.fresh.size() != fresh_.size()) {
    return Status::InvalidArgument(
        "pruner checkpoint shape does not match this state's n/k");
  }
  lb0_ = cp.lb0;
  drift_ref_ = cp.drift_ref;
  lbmin0_ = cp.lbmin0;
  max_drift_ref_ = cp.max_drift_ref;
  fresh_ = cp.fresh;
  return Status::OK();
}

}  // namespace core
}  // namespace fairkm
