// Reproduces paper Figure 6: Kinematics — DevC and DevO vs lambda in
// [1000, 10000], FairKM over all sensitive attributes, k = 5.

#include "bench_tables.h"

int main() {
  using namespace fairkm::bench;
  BenchEnv env = LoadBenchEnv();
  PrintBanner("Figure 6 — Kinematics: (DevC, DevO) vs lambda", env);
  RunLambdaSweep(KinematicsData(), "deviation", env);
  return 0;
}
