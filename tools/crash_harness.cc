// crash_harness — crash-kill consistency check for the durable training
// pipeline.
//
// Each trial forks a trainer child that (a) materializes the dataset into an
// mmap point-store file through PointStore::FileWriter and (b) runs a FairKM
// session with per-sweep durable checkpoints — with ONE randomly chosen
// fault point armed as a SIGKILL (fault::Kind::kKill fires inside
// FAIRKM_FAULT_POINT, so the child dies exactly like `kill -9` mid-write:
// no destructors, no atexit, no flushing). The parent then recovers:
//
//   * the store file at its final path must be absent or CRC-valid — a torn
//     file visible at the final path means the temp+fsync+rename protocol
//     broke;
//   * a resumed training run must complete and reproduce the undisturbed
//     reference trajectory bit-identically (objective history and final
//     assignment), whatever the kill point was;
//   * when every checkpoint frame is corrupt, the resume path must
//     quarantine them (rename to *.corrupt, never delete) and the retried
//     run must recover from scratch;
//   * a store file truncated AFTER it was mapped must surface as kDataLoss
//     through PointStore::CheckBacking, not as a SIGBUS.
//
// Exit code 0 only when every trial passes. Registered in ctest as the
// "crash_recovery" test (label integration); CI runs it under Release and
// ASan.

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/fault_injection.h"
#include "common/io.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/checkpoint_io.h"
#include "core/solver.h"
#include "data/matrix.h"
#include "data/point_store.h"
#include "data/sensitive.h"

using namespace fairkm;
namespace fs = std::filesystem;

namespace {

constexpr size_t kRows = 240;
constexpr size_t kCols = 4;
constexpr int kK = 3;
constexpr uint64_t kTrainSeed = 4242;

// Deterministic blobby dataset with one 2-group categorical attribute whose
// groups are skewed across blobs (so the fairness term has work to do).
void MakeData(data::Matrix* points, data::SensitiveView* sensitive) {
  Rng rng(7);
  *points = data::Matrix(kRows, kCols);
  data::CategoricalSensitive cat;
  cat.name = "group";
  cat.cardinality = 2;
  cat.codes.resize(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    const int blob = static_cast<int>(i % kK);
    for (size_t c = 0; c < kCols; ++c) {
      points->At(i, c) = 3.0 * blob + rng.Normal(0.0, 0.4);
    }
    cat.codes[i] = rng.Bernoulli(blob == 0 ? 0.8 : 0.3) ? 1 : 0;
  }
  size_t ones = 0;
  for (int32_t code : cat.codes) ones += static_cast<size_t>(code);
  const double frac1 = static_cast<double>(ones) / kRows;
  cat.dataset_fractions = {1.0 - frac1, frac1};
  sensitive->categorical = {std::move(cat)};
}

core::FairKMOptions TrainOptions() {
  core::FairKMOptions options;
  options.k = kK;
  options.max_iterations = 12;
  // Serial sweep: the trainer child is a fork, so it must not depend on
  // thread state from the parent (and must not spawn pools of its own).
  options.sweep_mode = core::SweepMode::kSerial;
  return options;
}

// The undisturbed trajectory every recovery must reproduce bit-identically.
struct Reference {
  std::vector<double> objective_history;
  cluster::Assignment assignment;
};

Result<Reference> RunReference(const data::Matrix& points,
                               const data::SensitiveView& sensitive) {
  FAIRKM_ASSIGN_OR_RETURN(
      core::FairKMSolver solver,
      core::FairKMSolver::Create(&points, &sensitive, TrainOptions()));
  FAIRKM_RETURN_NOT_OK(solver.Init(kTrainSeed));
  FAIRKM_ASSIGN_OR_RETURN(core::RunStop stop, solver.Run());
  (void)stop;
  Reference ref;
  ref.objective_history = solver.objective_history();
  ref.assignment = solver.assignment();
  return ref;
}

// The trainer body both the child and the parent's recovery use: write the
// store file, then run with per-sweep durable checkpoints, resuming from
// whatever the directory holds.
Status TrainerBody(const data::Matrix& points,
                   const data::SensitiveView& sensitive,
                   const std::string& dir) {
  // Phase A: stream the rows into the mmap store file (FileWriter). Skipped
  // once a valid file exists so recovery does not clobber a good store.
  const std::string store_path = dir + "/points.fkps";
  if (!data::PointStore::Open(store_path).ok()) {
    FAIRKM_ASSIGN_OR_RETURN(
        data::PointStore::FileWriter writer,
        data::PointStore::FileWriter::Start(store_path, kRows, kCols));
    for (size_t i = 0; i < kRows; ++i) {
      FAIRKM_RETURN_NOT_OK(writer.Append(points.Row(i)));
    }
    FAIRKM_RETURN_NOT_OK(writer.Finish());
  }

  // Phase B: train with a durable checkpoint after every sweep.
  FAIRKM_ASSIGN_OR_RETURN(
      core::FairKMSolver solver,
      core::FairKMSolver::Create(&points, &sensitive, TrainOptions()));
  FAIRKM_RETURN_NOT_OK(solver.Init(kTrainSeed));
  core::RunBudget budget;
  budget.checkpoint_dir = dir + "/ckpt";
  budget.checkpoint_every = 1;
  budget.checkpoint_keep = 3;
  budget.resume = true;
  FAIRKM_ASSIGN_OR_RETURN(core::RunStop stop, solver.Run(budget));
  (void)stop;
  return Status::OK();
}

int CountMatching(const std::string& dir, const char* suffix) {
  std::error_code ec;
  int count = 0;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= std::strlen(suffix) &&
        name.compare(name.size() - std::strlen(suffix), std::string::npos,
                     suffix) == 0) {
      ++count;
    }
  }
  return count;
}

#define HARNESS_CHECK(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "FAIL trial %d: %s\n", trial, msg);        \
      return false;                                                   \
    }                                                                 \
  } while (0)

bool RunTrial(int trial, const std::string& workdir,
              const std::string& kill_spec, const data::Matrix& points,
              const data::SensitiveView& sensitive, const Reference& ref) {
  const std::string dir = workdir + "/trial-" + std::to_string(trial);
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (!io::CreateDirectories(dir).ok()) {
    std::fprintf(stderr, "FAIL trial %d: cannot create %s\n", trial,
                 dir.c_str());
    return false;
  }

  const pid_t child = fork();
  if (child < 0) {
    std::fprintf(stderr, "FAIL trial %d: fork: %s\n", trial, strerror(errno));
    return false;
  }
  if (child == 0) {
    // Trainer child: arm the kill and run. A non-firing kill (skip larger
    // than the hit count) exits 0 with a complete run — also a valid trial.
    if (!fault::ArmFromString(kill_spec).ok()) _exit(3);
    Status st = TrainerBody(points, sensitive, dir);
    _exit(st.ok() ? 0 : 2);
  }
  int wstatus = 0;
  if (waitpid(child, &wstatus, 0) != child) {
    std::fprintf(stderr, "FAIL trial %d: waitpid failed\n", trial);
    return false;
  }
  const bool killed = WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL;
  const bool clean = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
  HARNESS_CHECK(killed || clean, "child neither SIGKILLed nor clean");

  // --- Store-file consistency: absent (rename never happened) or valid.
  // A kDataLoss here means a torn frame became visible at the final path.
  const std::string store_path = dir + "/points.fkps";
  {
    auto opened = data::PointStore::Open(store_path);
    HARNESS_CHECK(
        opened.ok() || opened.status().code() == StatusCode::kNotFound,
        ("store file torn at final path: " + opened.status().ToString())
            .c_str());
  }

  // --- Training recovery: resume and finish. All-corrupt checkpoint
  // directories surface as kDataLoss with every frame quarantined; the
  // retry then starts clean.
  fault::DisarmAll();
  Status recovered = TrainerBody(points, sensitive, dir);
  if (!recovered.ok() && recovered.code() == StatusCode::kDataLoss) {
    HARNESS_CHECK(CountMatching(dir + "/ckpt", ".corrupt") > 0,
                  "kDataLoss resume left no quarantined frame");
    recovered = TrainerBody(points, sensitive, dir);
  }
  HARNESS_CHECK(recovered.ok(), recovered.ToString().c_str());

  // --- Bit-identical trajectory: rebuild a session, resume the final
  // checkpoint, and compare against the undisturbed reference.
  auto solver_r =
      core::FairKMSolver::Create(&points, &sensitive, TrainOptions());
  HARNESS_CHECK(solver_r.ok(), "recovery solver Create failed");
  core::FairKMSolver& solver = solver_r.ValueOrDie();
  Status resumed = solver.ResumeFromCheckpointDir(dir + "/ckpt");
  HARNESS_CHECK(resumed.ok(), resumed.ToString().c_str());
  const std::vector<double>& history = solver.objective_history();
  HARNESS_CHECK(history.size() == ref.objective_history.size(),
                "objective history length diverged");
  for (size_t i = 0; i < history.size(); ++i) {
    // Bit-identical, not approximately equal.
    HARNESS_CHECK(std::memcmp(&history[i], &ref.objective_history[i],
                              sizeof(double)) == 0,
                  "objective history diverged");
  }
  HARNESS_CHECK(solver.assignment() == ref.assignment,
                "final assignment diverged");

  // Quarantined frames must survive recovery (renamed aside, never deleted
  // — retention pruning does not count them).
  ec.clear();
  for (const auto& entry : fs::directory_iterator(dir + "/ckpt", ec)) {
    const std::string name = entry.path().filename().string();
    HARNESS_CHECK(name.rfind("ckpt-", 0) == 0, "unexpected file in ckpt dir");
  }

  std::printf("PASS trial %2d: %-38s %s\n", trial, kill_spec.c_str(),
              killed ? "(killed)" : "(fault did not fire)");
  return true;
}

// Truncation-under-mmap: shrinking the store file after Open must read as
// kDataLoss through the guarded probes, never SIGBUS the process.
bool RunTruncationCheck(const std::string& workdir,
                        const data::Matrix& points) {
  const int trial = -1;
  const std::string dir = workdir + "/truncate";
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (!io::CreateDirectories(dir).ok()) return false;
  const std::string path = dir + "/points.fkps";
  data::PointStoreSpec spec;
  spec.backend = data::PointStoreSpec::Backend::kMmap;
  spec.path = path;
  auto created = data::PointStore::Create(points, spec);
  HARNESS_CHECK(created.ok(), "store Create failed");
  std::shared_ptr<const data::PointStore> store = created.ValueOrDie();
  struct stat sb;
  HARNESS_CHECK(::stat(path.c_str(), &sb) == 0, "stat failed");
  HARNESS_CHECK(::truncate(path.c_str(), sb.st_size / 2) == 0,
                "truncate failed");
  Status backing = store->CheckBacking();
  HARNESS_CHECK(backing.code() == StatusCode::kDataLoss,
                "CheckBacking did not flag truncation");
  Status walk = data::ValidateFiniteStore(*store, "truncated");
  HARNESS_CHECK(walk.code() == StatusCode::kDataLoss,
                "chunked walk did not flag truncation");
  std::printf("PASS truncation-under-mmap: kDataLoss, no SIGBUS\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.AddFlag("trials", "20", "randomized kill-point trials to run");
  args.AddFlag("workdir", "", "scratch directory (default: TMPDIR)");
  args.AddFlag("seed", "1", "kill-point randomization seed");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::string workdir = args.GetString("workdir");
  if (workdir.empty()) {
    const char* tmp = getenv("TMPDIR");
    workdir = std::string(tmp != nullptr ? tmp : "/tmp") + "/fairkm_crash_" +
              std::to_string(getpid());
  }
  if (!io::CreateDirectories(workdir).ok()) {
    std::fprintf(stderr, "cannot create %s\n", workdir.c_str());
    return 1;
  }

  data::Matrix points;
  data::SensitiveView sensitive;
  MakeData(&points, &sensitive);
  auto ref = RunReference(points, sensitive);
  if (!ref.ok()) {
    std::fprintf(stderr, "reference run failed: %s\n",
                 ref.status().ToString().c_str());
    return 1;
  }

  // Kill sites: every durable-write fault point of the checkpoint protocol
  // and the store FileWriter. skip randomizes WHICH hit dies, so across
  // trials the process is killed before, between, and after renames.
  const std::vector<std::string> points_of_death = {
      "checkpoint.open",   "checkpoint.write",    "checkpoint.fsync",
      "checkpoint.rename", "checkpoint.dirsync",  "pointstore.open",
      "pointstore.append", "pointstore.write",    "pointstore.fsync",
      "pointstore.rename",
  };
  Rng rng(static_cast<uint64_t>(args.GetInt("seed")));
  const int trials = static_cast<int>(args.GetInt("trials"));
  int failures = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const std::string& point =
        points_of_death[rng.UniformInt(points_of_death.size())];
    // pointstore.append fires per row, checkpoint points once per sweep —
    // skip a few hits so kills land mid-stream, not only on the first.
    const int skip = static_cast<int>(rng.UniformInt(4));
    const std::string spec =
        point + "=kill,skip=" + std::to_string(skip);
    if (!RunTrial(trial, workdir, spec, points, sensitive,
                  ref.ValueOrDie())) {
      ++failures;
    }
  }
  if (!RunTruncationCheck(workdir, points)) ++failures;

  if (failures > 0) {
    std::fprintf(stderr, "%d of %d trials FAILED (workdir kept: %s)\n",
                 failures, trials, workdir.c_str());
    return 1;
  }
  std::error_code ec;
  fs::remove_all(workdir, ec);
  std::printf("all %d kill trials + truncation check passed\n", trials);
  return 0;
}
