#include "cluster/zgya.h"

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "metrics/fairness.h"
#include "test_util.h"

namespace fairkm {
namespace cluster {
namespace {

struct World {
  data::Matrix points;
  data::CategoricalSensitive attr;
};

// Blobs with value-skewed sensitive attribute (S-blind clustering is unfair).
World MakeWorld(uint64_t seed, int cardinality = 2) {
  Rng rng(seed);
  World w;
  w.points = testutil::MakeBlobs(3, 40, 3, &rng);
  std::vector<int32_t> codes(120);
  for (size_t i = 0; i < 120; ++i) {
    const int blob = static_cast<int>(i / 40);
    codes[i] = rng.UniformDouble() < 0.8
                   ? blob % cardinality
                   : static_cast<int32_t>(
                         rng.UniformInt(static_cast<uint64_t>(cardinality)));
  }
  w.attr = testutil::MakeCategorical(codes, cardinality);
  return w;
}

TEST(ZgyaTest, ValidatesInputs) {
  World w = MakeWorld(1);
  ZgyaOptions opt;
  Rng rng(1);
  EXPECT_FALSE(RunZgya(w.points, w.attr, opt, nullptr).ok());
  opt.k = 0;
  EXPECT_FALSE(RunZgya(w.points, w.attr, opt, &rng).ok());
  opt.k = 3;
  opt.max_iterations = 0;
  EXPECT_FALSE(RunZgya(w.points, w.attr, opt, &rng).ok());
  data::Matrix empty;
  opt.max_iterations = 30;
  EXPECT_FALSE(RunZgya(empty, w.attr, opt, &rng).ok());
}

TEST(ZgyaTest, KlTermZeroForPerfectlyMirroredClusters) {
  // 4 points, 2 per cluster, each cluster 50/50 like the dataset.
  auto attr = testutil::MakeCategorical({0, 1, 0, 1}, 2);
  EXPECT_NEAR(ZgyaKlTerm(attr, {0, 0, 1, 1}, 2), 0.0, 1e-12);
}

TEST(ZgyaTest, KlTermPositiveForSkewedClusters) {
  auto attr = testutil::MakeCategorical({0, 0, 1, 1}, 2);
  EXPECT_GT(ZgyaKlTerm(attr, {0, 0, 1, 1}, 2), 0.1);
}

TEST(ZgyaTest, EmptyClustersContributeNothingToKl) {
  auto attr = testutil::MakeCategorical({0, 1, 0, 1}, 2);
  EXPECT_NEAR(ZgyaKlTerm(attr, {0, 0, 1, 1}, 5), ZgyaKlTerm(attr, {0, 0, 1, 1}, 2),
              1e-12);
}

TEST(ZgyaTest, ImprovesFairnessOverBlindKMeans) {
  World w = MakeWorld(3);
  const int k = 3;
  ZgyaOptions opt;
  opt.k = k;
  // The blob geometry is much coarser than the min-max-scaled experiment
  // data; a deliberately strong lambda makes the trade-off direction
  // deterministic for this behavioural test.
  opt.lambda = 3000.0;
  Rng rng(7);
  auto zgya = RunZgya(w.points, w.attr, opt, &rng).ValueOrDie();

  KMeansOptions kopt;
  kopt.k = k;
  kopt.init = KMeansInit::kRandomAssignment;
  Rng rng2(7);
  auto blind = RunKMeans(w.points, kopt, &rng2).ValueOrDie();

  EXPECT_LT(ZgyaKlTerm(w.attr, zgya.assignment, k),
            ZgyaKlTerm(w.attr, blind.assignment, k));
  auto fair_z = metrics::EvaluateAttributeFairness(w.attr, zgya.assignment, k);
  auto fair_b = metrics::EvaluateAttributeFairness(w.attr, blind.assignment, k);
  EXPECT_LT(fair_z.ae, fair_b.ae);
}

TEST(ZgyaTest, SacrificesCoherenceForFairness) {
  World w = MakeWorld(5);
  ZgyaOptions opt;
  opt.k = 3;
  Rng rng(9);
  auto zgya = RunZgya(w.points, w.attr, opt, &rng).ValueOrDie();
  KMeansOptions kopt;
  kopt.k = 3;
  kopt.init = KMeansInit::kRandomAssignment;
  Rng rng2(9);
  auto blind = RunKMeans(w.points, kopt, &rng2).ValueOrDie();
  EXPECT_GE(zgya.kmeans_objective, blind.kmeans_objective - 1e-9);
}

TEST(ZgyaTest, LambdaZeroMatchesKMeansQuality) {
  World w = MakeWorld(7);
  ZgyaOptions opt;
  opt.k = 3;
  opt.lambda = 0.0;
  Rng rng(11);
  auto r = RunZgya(w.points, w.attr, opt, &rng).ValueOrDie();
  KMeansOptions kopt;
  kopt.k = 3;
  kopt.init = KMeansInit::kRandomAssignment;
  Rng rng2(11);
  auto blind = RunKMeans(w.points, kopt, &rng2).ValueOrDie();
  EXPECT_NEAR(r.kmeans_objective, blind.kmeans_objective,
              0.1 * blind.kmeans_objective + 1e-9);
}

TEST(ZgyaTest, DeterministicGivenSeed) {
  World w = MakeWorld(9);
  ZgyaOptions opt;
  opt.k = 3;
  Rng r1(13), r2(13);
  auto a = RunZgya(w.points, w.attr, opt, &r1).ValueOrDie();
  auto b = RunZgya(w.points, w.attr, opt, &r2).ValueOrDie();
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(ZgyaTest, ResultFieldsConsistent) {
  World w = MakeWorld(11);
  ZgyaOptions opt;
  opt.k = 3;
  Rng rng(15);
  auto r = RunZgya(w.points, w.attr, opt, &rng).ValueOrDie();
  EXPECT_TRUE(ValidateAssignment(r.assignment, w.points.rows(), 3).ok());
  EXPECT_GT(r.lambda_used, 0.0);
  EXPECT_NEAR(r.kl_term, ZgyaKlTerm(w.attr, r.assignment, 3), 1e-12);
  EXPECT_NEAR(r.total_objective, r.kmeans_term + r.lambda_used * r.kl_term, 1e-6);
}

TEST(ZgyaTest, SoftModeProducesValidFairishClustering) {
  World w = MakeWorld(13);
  ZgyaOptions opt;
  opt.k = 3;
  opt.mode = ZgyaOptions::Mode::kSoftVariational;
  opt.max_iterations = 15;
  Rng rng(17);
  auto soft = RunZgya(w.points, w.attr, opt, &rng).ValueOrDie();
  EXPECT_TRUE(ValidateAssignment(soft.assignment, w.points.rows(), 3).ok());

  KMeansOptions kopt;
  kopt.k = 3;
  kopt.init = KMeansInit::kRandomAssignment;
  Rng rng2(17);
  auto blind = RunKMeans(w.points, kopt, &rng2).ValueOrDie();
  EXPECT_LT(ZgyaKlTerm(w.attr, soft.assignment, 3),
            ZgyaKlTerm(w.attr, blind.assignment, 3) + 1e-9);
}

TEST(ZgyaTest, SoftModeDeterministicGivenSeed) {
  World w = MakeWorld(21);
  ZgyaOptions opt;
  opt.k = 3;
  opt.mode = ZgyaOptions::Mode::kSoftVariational;
  Rng r1(5), r2(5);
  auto a = RunZgya(w.points, w.attr, opt, &r1).ValueOrDie();
  auto b = RunZgya(w.points, w.attr, opt, &r2).ValueOrDie();
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(ZgyaTest, SoftModeLambdaZeroActsLikeSoftKMeans) {
  // With no fairness pressure the hardened soft assignment should be a
  // decent clustering of the blobs (objective within 2x of Lloyd's).
  World w = MakeWorld(23);
  ZgyaOptions opt;
  opt.k = 3;
  opt.lambda = 0.0;
  opt.mode = ZgyaOptions::Mode::kSoftVariational;
  Rng rng(7);
  auto soft = RunZgya(w.points, w.attr, opt, &rng).ValueOrDie();
  KMeansOptions kopt;
  kopt.k = 3;
  Rng rng2(7);
  auto lloyd = RunKMeans(w.points, kopt, &rng2).ValueOrDie();
  EXPECT_LT(soft.kmeans_objective, 2.0 * lloyd.kmeans_objective);
}

TEST(ZgyaTest, SoftDampingStaysOnSimplex) {
  // Heavy damping must still produce a valid assignment for every point.
  World w = MakeWorld(25);
  ZgyaOptions opt;
  opt.k = 4;
  opt.mode = ZgyaOptions::Mode::kSoftVariational;
  opt.soft_damping = 0.95;
  opt.max_iterations = 5;
  Rng rng(9);
  auto r = RunZgya(w.points, w.attr, opt, &rng).ValueOrDie();
  EXPECT_TRUE(ValidateAssignment(r.assignment, w.points.rows(), 4).ok());
}

class ZgyaCardinalitySweep : public ::testing::TestWithParam<int> {};

TEST_P(ZgyaCardinalitySweep, HandlesMultiValuedAttributes) {
  World w = MakeWorld(100 + static_cast<uint64_t>(GetParam()), GetParam());
  ZgyaOptions opt;
  opt.k = 3;
  Rng rng(19);
  auto r = RunZgya(w.points, w.attr, opt, &rng).ValueOrDie();
  EXPECT_TRUE(ValidateAssignment(r.assignment, w.points.rows(), 3).ok());
  EXPECT_GE(r.kl_term, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Cards, ZgyaCardinalitySweep, ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace cluster
}  // namespace fairkm
