// Cross-check: the incremental optimizer (RunFairKM) and the brute-force
// reference (RunFairKMNaive) must walk the same objective trajectory on
// seeded 3-blob worlds — same move decisions, same per-sweep objectives
// within 1e-9, same final clustering.

#include <gtest/gtest.h>

#include <cmath>

#include "core/fairkm.h"
#include "core/fairkm_naive.h"
#include "core/objective.h"
#include "testlib/worlds.h"

// This suite is an intentional caller of the deprecated RunFairKM wrapper:
// it is (part of) the oracle pinning the wrapper's bit-identical-to-solver
// contract, so the deprecation warning is suppressed rather than ported away.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"


namespace fairkm {
namespace testutil {
namespace {

void ExpectSameTrajectory(const core::FairKMResult& fast,
                          const core::FairKMResult& naive) {
  EXPECT_EQ(fast.iterations, naive.iterations);
  EXPECT_EQ(fast.converged, naive.converged);
  ASSERT_EQ(fast.objective_history.size(), naive.objective_history.size());
  for (size_t s = 0; s < fast.objective_history.size(); ++s) {
    const double want = naive.objective_history[s];
    EXPECT_NEAR(fast.objective_history[s], want,
                1e-9 * std::max(1.0, std::fabs(want)))
        << "sweep " << s;
  }
  EXPECT_EQ(fast.assignment, naive.assignment);
  EXPECT_NEAR(fast.kmeans_term, naive.kmeans_term,
              1e-9 * std::max(1.0, std::fabs(naive.kmeans_term)));
  EXPECT_NEAR(fast.fairness_term, naive.fairness_term,
              1e-9 * std::max(1.0, std::fabs(naive.fairness_term)));
}

core::FairKMResult RunOptimizer(bool naive, const SeededWorld& world,
                       const core::FairKMOptions& options, uint64_t seed) {
  // Fresh generators with the same seed: both optimizers consume randomness
  // only for the initial assignment, so their starting points coincide.
  Rng rng(seed);
  auto result = naive
                    ? core::RunFairKMNaive(world.points, world.sensitive, options, &rng)
                    : core::RunFairKM(world.points, world.sensitive, options, &rng);
  if (!result.ok()) {
    // Fail this test but keep the binary alive; the empty result makes the
    // caller's comparisons fail loudly too.
    ADD_FAILURE() << "optimizer error: " << result.status().ToString();
    return core::FairKMResult{};
  }
  return result.MoveValueUnsafe();
}

TEST(FairKMCrossCheck, AgreesOnSeededThreeBlobWorlds) {
  WorldSpec spec;  // 3 blobs of 20 points, k = 3, two categoricals + a numeric.
  for (uint64_t seed : {101u, 202u, 303u}) {
    const SeededWorld world = MakeSeededWorld(seed, spec);
    core::FairKMOptions options;
    options.k = world.k;
    options.max_iterations = 12;
    const core::FairKMResult fast = RunOptimizer(false, world, options, seed * 7);
    const core::FairKMResult naive = RunOptimizer(true, world, options, seed * 7);
    ExpectSameTrajectory(fast, naive);
  }
}

TEST(FairKMCrossCheck, AgreesWithExplicitLambdaAndWeights) {
  WorldSpec spec;
  spec.random_weights = true;
  const SeededWorld world = MakeSeededWorld(404, spec);
  for (double lambda : {0.0, 1.0, 250.0}) {
    core::FairKMOptions options;
    options.k = world.k;
    options.lambda = lambda;
    options.max_iterations = 8;
    const core::FairKMResult fast = RunOptimizer(false, world, options, 905);
    const core::FairKMResult naive = RunOptimizer(true, world, options, 905);
    EXPECT_EQ(fast.lambda_used, lambda);
    ExpectSameTrajectory(fast, naive);
  }
}

TEST(FairKMCrossCheck, FinalObjectiveMatchesScratchEvaluation) {
  const SeededWorld world = MakeSeededWorld(505);
  core::FairKMOptions options;
  options.k = world.k;
  options.max_iterations = 10;
  const core::FairKMResult fast = RunOptimizer(false, world, options, 506);

  const core::ObjectiveValue scratch = core::ComputeObjective(
      world.points, world.sensitive, fast.assignment, world.k, options.fairness);
  EXPECT_NEAR(fast.kmeans_term, scratch.kmeans_term,
              1e-9 * std::max(1.0, std::fabs(scratch.kmeans_term)));
  EXPECT_NEAR(fast.fairness_term, scratch.fairness_term,
              1e-9 * std::max(1.0, std::fabs(scratch.fairness_term)));
  EXPECT_NEAR(fast.total_objective, scratch.Total(fast.lambda_used),
              1e-9 * std::max(1.0, std::fabs(scratch.Total(fast.lambda_used))));
}

TEST(FairKMCrossCheck, ParallelSnapshotSweepMatchesSerialMinibatch) {
  // The snapshot-parallel sweep only parallelizes candidate evaluation
  // against the frozen prototypes; move selection/application stays
  // sequential, so it must walk the exact same trajectory as the serial
  // sweep with the same mini-batch size — for any thread count.
  WorldSpec spec;
  spec.random_weights = true;
  for (uint64_t seed : {707u, 808u}) {
    const SeededWorld world = MakeSeededWorld(seed, spec);
    core::FairKMOptions serial;
    serial.k = world.k;
    serial.max_iterations = 12;
    serial.minibatch_size = 16;
    const core::FairKMResult want = RunOptimizer(false, world, serial, seed + 1);

    for (int threads : {1, 2, 4}) {
      core::FairKMOptions parallel = serial;
      parallel.sweep_mode = core::SweepMode::kParallelSnapshot;
      parallel.num_threads = threads;
      const core::FairKMResult got = RunOptimizer(false, world, parallel, seed + 1);
      ExpectSameTrajectory(got, want);
    }
  }
}

TEST(FairKMCrossCheck, ParallelSweepRequiresMinibatch) {
  const SeededWorld world = MakeSeededWorld(909);
  core::FairKMOptions options;
  options.k = world.k;
  options.sweep_mode = core::SweepMode::kParallelSnapshot;
  Rng rng(910);
  const auto result =
      core::RunFairKM(world.points, world.sensitive, options, &rng);
  EXPECT_FALSE(result.ok());
}

TEST(FairKMCrossCheck, ObjectiveHistoryIsNonIncreasing) {
  const SeededWorld world = MakeSeededWorld(606);
  core::FairKMOptions options;
  options.k = world.k;
  options.max_iterations = 15;
  const core::FairKMResult fast = RunOptimizer(false, world, options, 607);
  for (size_t s = 1; s < fast.objective_history.size(); ++s) {
    EXPECT_LE(fast.objective_history[s], fast.objective_history[s - 1] + 1e-9)
        << "sweep " << s;
  }
}

}  // namespace
}  // namespace testutil
}  // namespace fairkm
