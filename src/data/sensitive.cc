#include "data/sensitive.h"

#include <cmath>

#include "common/stats.h"

namespace fairkm {
namespace data {

Status SensitiveView::Validate(size_t expected_rows) const {
  for (const auto& attr : categorical) {
    if (attr.cardinality <= 0) {
      return Status::InvalidArgument("sensitive attribute '" + attr.name +
                                     "' has no categories");
    }
    if (attr.codes.size() != expected_rows) {
      return Status::InvalidArgument(
          "sensitive attribute '" + attr.name + "' covers " +
          std::to_string(attr.codes.size()) + " rows, expected " +
          std::to_string(expected_rows));
    }
    if (attr.dataset_fractions.size() != static_cast<size_t>(attr.cardinality)) {
      return Status::InvalidArgument(
          "sensitive attribute '" + attr.name + "' has " +
          std::to_string(attr.dataset_fractions.size()) +
          " dataset fractions for cardinality " +
          std::to_string(attr.cardinality));
    }
    for (size_t i = 0; i < attr.codes.size(); ++i) {
      if (attr.codes[i] < 0 || attr.codes[i] >= attr.cardinality) {
        return Status::InvalidArgument(
            "sensitive attribute '" + attr.name + "' code " +
            std::to_string(attr.codes[i]) + " at row " + std::to_string(i) +
            " outside cardinality " + std::to_string(attr.cardinality));
      }
    }
  }
  for (const auto& attr : numeric) {
    if (attr.values.size() != expected_rows) {
      return Status::InvalidArgument(
          "sensitive attribute '" + attr.name + "' covers " +
          std::to_string(attr.values.size()) + " rows, expected " +
          std::to_string(expected_rows));
    }
    if (!std::isfinite(attr.dataset_mean)) {
      return Status::InvalidArgument("sensitive attribute '" + attr.name +
                                     "' has a non-finite dataset mean");
    }
    for (size_t i = 0; i < attr.values.size(); ++i) {
      if (!std::isfinite(attr.values[i])) {
        return Status::InvalidArgument(
            "sensitive attribute '" + attr.name +
            "' has a non-finite value at row " + std::to_string(i));
      }
    }
  }
  return Status::OK();
}

Result<SensitiveView> SensitiveView::SelectCategorical(const std::string& name) const {
  for (const auto& attr : categorical) {
    if (attr.name == name) {
      SensitiveView out;
      out.categorical.push_back(attr);
      return out;
    }
  }
  return Status::NotFound("sensitive attribute '" + name + "'");
}

Result<SensitiveView> MakeSensitiveView(const Dataset& dataset,
                                        const std::vector<std::string>& cat_names,
                                        const std::vector<std::string>& num_names,
                                        const std::vector<double>& weights) {
  if (!weights.empty() && weights.size() != cat_names.size() + num_names.size()) {
    return Status::InvalidArgument("weights must parallel cat_names + num_names");
  }
  SensitiveView view;
  size_t w = 0;
  for (const auto& name : cat_names) {
    FAIRKM_ASSIGN_OR_RETURN(const CategoricalColumn* col,
                            dataset.FindCategorical(name));
    CategoricalSensitive attr;
    attr.name = name;
    attr.cardinality = col->cardinality();
    if (attr.cardinality == 0) {
      return Status::InvalidArgument("sensitive attribute '" + name +
                                     "' has no categories");
    }
    attr.codes = col->codes;
    attr.dataset_fractions = col->Fractions();
    attr.weight = weights.empty() ? 1.0 : weights[w];
    ++w;
    view.categorical.push_back(std::move(attr));
  }
  for (const auto& name : num_names) {
    FAIRKM_ASSIGN_OR_RETURN(const NumericColumn* col, dataset.FindNumeric(name));
    NumericSensitive attr;
    attr.name = name;
    attr.values = col->values;
    attr.dataset_mean = Mean(col->values);
    attr.weight = weights.empty() ? 1.0 : weights[w];
    ++w;
    view.numeric.push_back(std::move(attr));
  }
  return view;
}

}  // namespace data
}  // namespace fairkm
