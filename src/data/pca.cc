#include "data/pca.h"

#include <cmath>

#include "common/rng.h"

namespace fairkm {
namespace data {
namespace {

// y = C * x for the deflated covariance C = X'X/n - sum_j l_j v_j v_j'.
void CovarianceMultiply(const Matrix& centered, const PcaModel& model,
                        size_t fitted, const std::vector<double>& x,
                        std::vector<double>* y) {
  const size_t n = centered.rows();
  const size_t d = centered.cols();
  y->assign(d, 0.0);
  // X' (X x) / n without materializing the covariance.
  for (size_t i = 0; i < n; ++i) {
    const double* row = centered.Row(i);
    double dot = 0.0;
    for (size_t j = 0; j < d; ++j) dot += row[j] * x[j];
    for (size_t j = 0; j < d; ++j) (*y)[j] += dot * row[j];
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t j = 0; j < d; ++j) (*y)[j] *= inv_n;
  // Deflate the already-extracted components.
  for (size_t c = 0; c < fitted; ++c) {
    const double* v = model.components.Row(c);
    double dot = 0.0;
    for (size_t j = 0; j < d; ++j) dot += v[j] * x[j];
    const double scale = model.variances[c] * dot;
    for (size_t j = 0; j < d; ++j) (*y)[j] -= scale * v[j];
  }
}

double Normalize(std::vector<double>* v) {
  double norm2 = 0.0;
  for (double x : *v) norm2 += x * x;
  const double norm = std::sqrt(norm2);
  if (norm > 0.0) {
    for (double& x : *v) x /= norm;
  }
  return norm;
}

}  // namespace

Result<PcaModel> FitPca(const Matrix& points, const PcaOptions& options) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("empty input matrix");
  if (options.num_components < 1 ||
      static_cast<size_t>(options.num_components) > d) {
    return Status::InvalidArgument("num_components must be in [1, cols]");
  }
  if (options.power_iterations < 1) {
    return Status::InvalidArgument("power_iterations must be positive");
  }

  PcaModel model;
  model.means.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = points.Row(i);
    for (size_t j = 0; j < d; ++j) model.means[j] += row[j];
  }
  for (double& m : model.means) m /= static_cast<double>(n);

  Matrix centered(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      centered.At(i, j) = points.At(i, j) - model.means[j];
    }
  }

  model.components = Matrix(static_cast<size_t>(options.num_components), d);
  model.variances.assign(static_cast<size_t>(options.num_components), 0.0);

  Rng rng(options.seed);
  std::vector<double> v(d), next(d);
  for (size_t c = 0; c < static_cast<size_t>(options.num_components); ++c) {
    for (size_t j = 0; j < d; ++j) v[j] = rng.Normal();
    Normalize(&v);
    double eigenvalue = 0.0;
    for (int it = 0; it < options.power_iterations; ++it) {
      CovarianceMultiply(centered, model, c, v, &next);
      eigenvalue = Normalize(&next);
      double movement = 0.0;
      for (size_t j = 0; j < d; ++j) {
        movement += (next[j] - v[j]) * (next[j] - v[j]);
      }
      v = next;
      // Sign flips indicate a negative-adjacent eigenvalue direction; the
      // squared movement handles it: also check the flipped distance.
      double flipped = 0.0;
      for (size_t j = 0; j < d; ++j) {
        flipped += (-next[j] - v[j]) * (-next[j] - v[j]);
      }
      if (std::min(movement, flipped) < options.tol) break;
    }
    for (size_t j = 0; j < d; ++j) model.components.At(c, j) = v[j];
    model.variances[c] = eigenvalue;
  }
  return model;
}

Result<Matrix> PcaTransform(const PcaModel& model, const Matrix& points) {
  const size_t d = model.components.cols();
  if (points.cols() != d) {
    return Status::InvalidArgument("points do not match the fitted dimensionality");
  }
  const size_t c = model.components.rows();
  Matrix out(points.rows(), c);
  for (size_t i = 0; i < points.rows(); ++i) {
    const double* row = points.Row(i);
    for (size_t comp = 0; comp < c; ++comp) {
      const double* v = model.components.Row(comp);
      double dot = 0.0;
      for (size_t j = 0; j < d; ++j) dot += (row[j] - model.means[j]) * v[j];
      out.At(i, comp) = dot;
    }
  }
  return out;
}

}  // namespace data
}  // namespace fairkm
