#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fairkm {
namespace cluster {
namespace {

Status CheckInputs(const data::Matrix& points, int k) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (points.rows() == 0) return Status::InvalidArgument("no points to cluster");
  if (static_cast<size_t>(k) > points.rows()) {
    return Status::InvalidArgument("k (" + std::to_string(k) + ") exceeds point count (" +
                                   std::to_string(points.rows()) + ")");
  }
  return Status::OK();
}

// Seeds every empty cluster with the point currently farthest from its
// centroid, so Lloyd iterations always run with k non-empty clusters.
void RepairEmptyClusters(const data::Matrix& points, data::Matrix* centroids,
                         Assignment* assignment, std::vector<size_t>* sizes) {
  const int k = static_cast<int>(sizes->size());
  for (int c = 0; c < k; ++c) {
    if ((*sizes)[static_cast<size_t>(c)] > 0) continue;
    double worst = -1.0;
    size_t worst_idx = 0;
    for (size_t i = 0; i < points.rows(); ++i) {
      const size_t cur = static_cast<size_t>((*assignment)[i]);
      if ((*sizes)[cur] <= 1) continue;  // Donor cluster must stay non-empty.
      const double dist = data::SquaredDistance(points.Row(i), centroids->Row(cur),
                                                points.cols());
      if (dist > worst) {
        worst = dist;
        worst_idx = i;
      }
    }
    if (worst < 0) continue;  // Nothing to donate (n < k cannot happen here).
    const size_t old = static_cast<size_t>((*assignment)[worst_idx]);
    (*assignment)[worst_idx] = c;
    --(*sizes)[old];
    ++(*sizes)[static_cast<size_t>(c)];
    for (size_t j = 0; j < points.cols(); ++j) {
      centroids->At(static_cast<size_t>(c), j) = points.At(worst_idx, j);
    }
  }
}

}  // namespace

Result<data::Matrix> KMeansPlusPlusCenters(const data::Matrix& points, int k,
                                           Rng* rng) {
  FAIRKM_RETURN_NOT_OK(CheckInputs(points, k));
  const size_t n = points.rows();
  const size_t d = points.cols();
  data::Matrix centers(static_cast<size_t>(k), d);

  size_t first = static_cast<size_t>(rng->UniformInt(n));
  for (size_t j = 0; j < d; ++j) centers.At(0, j) = points.At(first, j);

  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  for (int c = 1; c < k; ++c) {
    // Refresh distances against the last added center.
    const double* last = centers.Row(static_cast<size_t>(c - 1));
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double dd = data::SquaredDistance(points.Row(i), last, d);
      if (dd < dist2[i]) dist2[i] = dd;
      total += dist2[i];
    }
    size_t chosen;
    if (total <= 0.0) {
      // All remaining points coincide with existing centers.
      chosen = static_cast<size_t>(rng->UniformInt(n));
    } else {
      double draw = rng->UniformDouble() * total;
      double acc = 0.0;
      chosen = n - 1;
      for (size_t i = 0; i < n; ++i) {
        acc += dist2[i];
        if (draw < acc) {
          chosen = i;
          break;
        }
      }
    }
    for (size_t j = 0; j < d; ++j) centers.At(static_cast<size_t>(c), j) =
        points.At(chosen, j);
  }
  return centers;
}

size_t AssignToNearest(const data::Matrix& points, const data::Matrix& centers,
                       Assignment* assignment) {
  const size_t n = points.rows();
  const size_t k = centers.rows();
  const bool fresh = assignment->size() != n;
  if (fresh) assignment->assign(n, 0);
  size_t changes = 0;
  for (size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int32_t best_c = 0;
    for (size_t c = 0; c < k; ++c) {
      const double dd = data::SquaredDistance(points.Row(i), centers.Row(c),
                                              points.cols());
      if (dd < best) {
        best = dd;
        best_c = static_cast<int32_t>(c);
      }
    }
    if (fresh || (*assignment)[i] != best_c) ++changes;
    (*assignment)[i] = best_c;
  }
  return changes;
}

Result<Assignment> MakeRandomAssignment(size_t n, int k, Rng* rng) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (rng == nullptr) return Status::InvalidArgument("rng must not be null");
  Assignment assignment(n);
  for (size_t i = 0; i < n; ++i) {
    assignment[i] = static_cast<int32_t>(rng->UniformInt(static_cast<uint64_t>(k)));
  }
  return assignment;
}

Result<Assignment> MakeInitialAssignment(const data::Matrix& points, int k,
                                         KMeansInit init, Rng* rng) {
  FAIRKM_RETURN_NOT_OK(CheckInputs(points, k));
  const size_t n = points.rows();
  Assignment assignment;
  switch (init) {
    case KMeansInit::kKMeansPlusPlus: {
      FAIRKM_ASSIGN_OR_RETURN(data::Matrix centers,
                              KMeansPlusPlusCenters(points, k, rng));
      AssignToNearest(points, centers, &assignment);
      break;
    }
    case KMeansInit::kRandomAssignment: {
      FAIRKM_ASSIGN_OR_RETURN(assignment, MakeRandomAssignment(n, k, rng));
      break;
    }
    case KMeansInit::kRandomCenters: {
      std::vector<size_t> picks =
          rng->SampleWithoutReplacement(n, static_cast<size_t>(k));
      data::Matrix centers = points.SelectRows(picks);
      AssignToNearest(points, centers, &assignment);
      break;
    }
  }
  return assignment;
}

Result<ClusteringResult> RunKMeans(const data::Matrix& points,
                                   const KMeansOptions& options, Rng* rng) {
  FAIRKM_RETURN_NOT_OK(CheckInputs(points, options.k));
  const int k = options.k;

  ClusteringResult result;
  FAIRKM_ASSIGN_OR_RETURN(result.assignment,
                          MakeInitialAssignment(points, k, options.init, rng));

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    data::Matrix centroids = ComputeCentroids(points, result.assignment, k);
    std::vector<size_t> sizes = ClusterSizes(result.assignment, k);
    RepairEmptyClusters(points, &centroids, &result.assignment, &sizes);
    const size_t changes = AssignToNearest(points, centroids, &result.assignment);
    result.iterations = iter + 1;
    if (changes == 0) {
      result.converged = true;
      break;
    }
  }
  FinalizeResult(points, k, &result);
  result.total_objective = result.kmeans_objective;
  return result;
}

}  // namespace cluster
}  // namespace fairkm
