#include "common/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/crc32.h"
#include "common/fault_injection.h"

namespace fairkm {
namespace io {
namespace {

namespace fs = std::filesystem;

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

/// RAII fd so every early return closes the descriptor.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool ok() const { return fd_ >= 0; }

  int Close() {
    int rc = 0;
    if (fd_ >= 0) {
      rc = ::close(fd_);
      fd_ = -1;
    }
    return rc;
  }

 private:
  int fd_;
};

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& what) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOSPC) {
        // Typed: callers (degradation ladders, retry loops) can tell a full
        // disk from a broken one.
        return Status::ResourceExhausted(what + ": " + std::strerror(errno));
      }
      return Status::IOError(what + ": " + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::atomic<uint64_t> dir_fsync_failures{0};

/// Applies a fired short-write or torn-rename fault: leaves `path` holding
/// only the first `keep` bytes of `data` (the torn default is half) and
/// reports success, exactly as a crash between write and durability would.
Status WriteCorruptImage(const std::string& path, const std::string& data,
                         const fault::FaultAction& action) {
  size_t keep = action.keep_bytes;
  if (keep == SIZE_MAX) keep = data.size() / 2;
  keep = std::min(keep, data.size());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return ErrnoStatus("open for torn write", path);
  if (keep > 0 && std::fwrite(data.data(), 1, keep, f) != keep) {
    std::fclose(f);
    return ErrnoStatus("torn write", path);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace

void SyncParentDirBestEffort(const std::string& path,
                             const std::string& fault_scope) {
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  bool synced = false;
  if (fault::Check((fault_scope + ".dirsync").c_str()).ok()) {
    Fd fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY));
    if (fd.ok() && ::fsync(fd.get()) == 0) synced = true;
  }
  if (!synced) {
    dir_fsync_failures.fetch_add(1, std::memory_order_relaxed);
  }
}

uint64_t DirFsyncFailures() {
  return dir_fsync_failures.load(std::memory_order_relaxed);
}

void ResetDirFsyncFailures() {
  dir_fsync_failures.store(0, std::memory_order_relaxed);
}

Status AtomicWriteFile(const std::string& path, const std::string& data,
                       const std::string& fault_scope) {
  FAIRKM_RETURN_NOT_OK(fault::Check((fault_scope + ".open").c_str()));
  const std::string tmp = path + ".tmp";
  Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
  if (!fd.ok()) return ErrnoStatus("open", tmp);

  // A short-write fault truncates the payload but reports success: the
  // process believes the checkpoint landed, and only the reader's CRC can
  // tell otherwise.
  const char* payload = data.data();
  size_t payload_size = data.size();
  fault::FaultAction action;
  if (fault::Hit((fault_scope + ".write").c_str(), &action)) {
    if (action.kind == fault::Kind::kShortWrite) {
      payload_size = std::min(action.keep_bytes, payload_size);
    } else if (!action.status.ok()) {
      fd.Close();
      ::unlink(tmp.c_str());
      return action.status;
    }
  }
  Status st = WriteAll(fd.get(), payload, payload_size, "write " + tmp);
  if (!st.ok()) {
    fd.Close();
    ::unlink(tmp.c_str());
    return st;
  }

  st = fault::Check((fault_scope + ".fsync").c_str());
  if (st.ok() && ::fsync(fd.get()) != 0) st = ErrnoStatus("fsync", tmp);
  if (st.ok() && fd.Close() != 0) st = ErrnoStatus("close", tmp);
  if (!st.ok()) {
    fd.Close();
    ::unlink(tmp.c_str());
    return st;
  }

  // A torn-rename fault models a crash while replacing the destination on a
  // filesystem without atomic rename: the final path gets a truncated image
  // and the call still reports success.
  if (fault::Hit((fault_scope + ".rename").c_str(), &action)) {
    if (action.kind == fault::Kind::kTornRename) {
      ::unlink(tmp.c_str());
      return WriteCorruptImage(path, data, action);
    }
    if (!action.status.ok()) {
      ::unlink(tmp.c_str());
      return action.status;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status rename_st = ErrnoStatus("rename", tmp);
    ::unlink(tmp.c_str());
    return rename_st;
  }
  SyncParentDirBestEffort(path, fault_scope);
  return Status::OK();
}

Status ReadFile(const std::string& path, std::string* out,
                const std::string& fault_scope) {
  FAIRKM_RETURN_NOT_OK(fault::Check((fault_scope + ".read").c_str()));
  Fd fd(::open(path.c_str(), O_RDONLY));
  if (!fd.ok()) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open", path);
  }
  struct stat sb;
  if (::fstat(fd.get(), &sb) != 0) return ErrnoStatus("stat", path);
  out->clear();
  out->resize(static_cast<size_t>(sb.st_size));
  size_t done = 0;
  while (done < out->size()) {
    ssize_t n = ::read(fd.get(), &(*out)[done], out->size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read", path);
    }
    if (n == 0) {
      // File shrank between stat and read; surface what is actually there.
      out->resize(done);
      break;
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteSectionFile(const std::string& path, uint32_t magic,
                        uint32_t version, const std::vector<Section>& sections,
                        const std::string& fault_scope) {
  BinaryWriter header;
  header.PutU32(magic);
  header.PutU32(version);
  header.PutU32(static_cast<uint32_t>(sections.size()));
  std::string file = header.Release();
  {
    BinaryWriter crc;
    crc.PutU32(MaskCrc32c(Crc32c(file.data(), file.size())));
    file += crc.Release();
  }
  for (const auto& section : sections) {
    BinaryWriter frame;
    frame.PutU32(section.tag);
    frame.PutU64(section.payload.size());
    // The CRC covers the frame prefix (tag + size) as well as the payload,
    // so a corrupted tag or length field is as detectable as corrupted data.
    const std::string& prefix = frame.buffer();
    uint32_t crc = Crc32c(prefix.data(), prefix.size());
    crc = Crc32cExtend(crc, section.payload.data(), section.payload.size());
    frame.PutU32(MaskCrc32c(crc));
    file += frame.Release();
    file += section.payload;
  }
  return AtomicWriteFile(path, file, fault_scope);
}

Result<SectionFile> ReadSectionFile(const std::string& path, uint32_t magic,
                                    uint32_t max_version,
                                    const std::string& fault_scope) {
  std::string file;
  FAIRKM_RETURN_NOT_OK(ReadFile(path, &file, fault_scope));

  BinaryReader reader(file);
  constexpr size_t kHeaderBytes = 12;  // magic + version + section_count
  if (reader.remaining() < kHeaderBytes + sizeof(uint32_t)) {
    return Status::DataLoss("section file truncated before header: " + path);
  }
  const uint32_t header_crc = MaskCrc32c(Crc32c(file.data(), kHeaderBytes));
  SectionFile out;
  uint32_t file_magic, section_count, stored_header_crc;
  FAIRKM_RETURN_NOT_OK(reader.GetU32(&file_magic));
  FAIRKM_RETURN_NOT_OK(reader.GetU32(&out.version));
  FAIRKM_RETURN_NOT_OK(reader.GetU32(&section_count));
  FAIRKM_RETURN_NOT_OK(reader.GetU32(&stored_header_crc));
  if (file_magic != magic) {
    return Status::DataLoss("bad magic in " + path);
  }
  if (stored_header_crc != header_crc) {
    return Status::DataLoss("header checksum mismatch in " + path);
  }
  if (out.version > max_version) {
    return Status::InvalidArgument(
        "unsupported format version " + std::to_string(out.version) + " in " +
        path + " (this build reads <= " + std::to_string(max_version) + ")");
  }
  out.sections.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    Section section;
    uint64_t payload_size = 0;
    uint32_t stored_crc = 0;
    const char* frame_prefix = file.data() + (file.size() - reader.remaining());
    FAIRKM_RETURN_NOT_OK(reader.GetU32(&section.tag));
    FAIRKM_RETURN_NOT_OK(reader.GetU64(&payload_size));
    constexpr size_t kFramePrefixBytes = 12;  // tag + payload_size
    FAIRKM_RETURN_NOT_OK(reader.GetU32(&stored_crc));
    if (payload_size > reader.remaining()) {
      return Status::DataLoss("section payload truncated in " + path);
    }
    const char* payload = file.data() + (file.size() - reader.remaining());
    uint32_t crc = Crc32c(frame_prefix, kFramePrefixBytes);
    crc = Crc32cExtend(crc, payload, static_cast<size_t>(payload_size));
    if (MaskCrc32c(crc) != stored_crc) {
      return Status::DataLoss("section checksum mismatch in " + path);
    }
    section.payload.assign(payload, static_cast<size_t>(payload_size));
    FAIRKM_RETURN_NOT_OK(reader.Skip(static_cast<size_t>(payload_size)));
    out.sections.push_back(std::move(section));
  }
  FAIRKM_RETURN_NOT_OK(reader.ExpectFullyConsumed());
  return out;
}

Status CreateDirectories(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IOError("mkdir " + path + ": " + ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory) {
      return Status::NotFound("no such directory: " + dir);
    }
    return Status::IOError("opendir " + dir + ": " + ec.message());
  }
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink", path);
  }
  return Status::OK();
}

}  // namespace io
}  // namespace fairkm
