// Wall-clock timing helper.

#ifndef FAIRKM_COMMON_TIMER_H_
#define FAIRKM_COMMON_TIMER_H_

#include <chrono>

namespace fairkm {

/// \brief Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// \brief Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed seconds since construction/Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Elapsed milliseconds since construction/Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fairkm

#endif  // FAIRKM_COMMON_TIMER_H_
