// ShardedSweep — out-of-core mini-batch sweep driver over a PointStore.
//
// Wraps a store-backed FairKMSolver (core/solver.h) and partitions the row
// range into contiguous shards, each a whole number of mini-batches. The
// sweep itself is the solver's kParallelSnapshot engine: within every
// mini-batch the candidate K-Means deltas are evaluated concurrently against
// the frozen prototype snapshot on the solver's ThreadPool, and the chosen
// moves merge into the live aggregates at the batch boundary. What the
// sharding layer adds is residency control: every time the sweep cursor
// passes the end of a shard, that shard's rows are evicted from the page
// cache (PointStore::EvictRows — MADV_DONTNEED on the mmap backend), so a
// dataset far larger than RAM streams through a bounded resident set.
//
// Eviction is invisible to the trajectory: the mapping is read-only and a
// refault re-reads the same bytes from the store file, so a sharded run is
// bit-identical to an in-process SweepMode::kParallelSnapshot run over the
// same rows with an equal minibatch_size and seed — same assignments, same
// objective history, same pruning counters, in every kernel backend and
// pruning setting. The equivalence is by construction (the driver only
// observes the solver's progress callback; it never steers the sweep), and
// pinned by tests/sharded_sweep_test.cc.

#ifndef FAIRKM_CORE_SHARDED_SWEEP_H_
#define FAIRKM_CORE_SHARDED_SWEEP_H_

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "core/solver.h"
#include "data/point_store.h"
#include "data/sensitive.h"

namespace fairkm {
namespace core {

/// \brief Residency telemetry of a sharded run (cumulative across Runs).
struct ShardedSweepStats {
  int num_shards = 0;      ///< Resolved shard count.
  size_t shard_rows = 0;   ///< Rows per shard (multiple of minibatch_size).
  uint64_t evictions = 0;  ///< Shard evictions issued so far.
  /// Peak VmRSS (bytes) sampled at eviction points; 0 until the first
  /// eviction or when /proc/self/status is unavailable.
  size_t peak_rss_bytes = 0;
};

/// \brief Out-of-core sweep session (see the header comment). Move-only,
/// like the solver it owns.
class ShardedSweep {
 public:
  /// \brief Validates the options (FairKMOptions::Validate, plus: the
  /// sweep_mode must be kParallelSnapshot — the sharded driver is defined
  /// over the snapshot engine) and resolves the shard geometry.
  /// `num_shards` <= 0 picks a default (8), and any value is clamped so each
  /// shard spans at least one mini-batch; shard_rows rounds the even split
  /// UP to a whole number of mini-batches so shard boundaries always land on
  /// prototype-refresh boundaries.
  static Result<ShardedSweep> Create(
      std::shared_ptr<const data::PointStore> store,
      const data::SensitiveView* sensitive, const FairKMOptions& options,
      int num_shards = 0);

  ShardedSweep(ShardedSweep&&) noexcept = default;
  ShardedSweep& operator=(ShardedSweep&&) noexcept = default;

  /// \brief Forwarded to FairKMSolver::Init (store-backed sessions accept
  /// kRandomAssignment or a warm start).
  Status Init(Rng* rng) { return solver_.Init(rng); }
  Status Init(uint64_t seed) { return solver_.Init(seed); }
  Status Init(cluster::Assignment warm_start) {
    return solver_.Init(std::move(warm_start));
  }

  /// \brief FairKMSolver::Run with eviction interposed: the driver wraps
  /// `progress` so that at every mini-batch boundary the shards the cursor
  /// has fully passed are evicted (all of them at the sweep boundary), then
  /// the caller's callback — if any — runs as usual and keeps its
  /// cooperative-cancel contract.
  Result<RunStop> Run(const RunBudget& budget = {},
                      const ProgressCallback& progress = nullptr);

  /// \brief The wrapped session, for observation (CurrentResult, Assign,
  /// checkpoints, ...). Driving sweeps through it directly bypasses
  /// eviction — harmless for correctness, it just forfeits the RSS bound.
  FairKMSolver& solver() { return solver_; }
  const FairKMSolver& solver() const { return solver_; }

  const ShardedSweepStats& stats() const { return stats_; }

 private:
  ShardedSweep(FairKMSolver solver, int num_shards, size_t shard_rows);

  /// Evicts every shard whose row range lies fully behind `processed`
  /// (monotone within a sweep), sampling RSS when anything was dropped.
  void EvictBehind(size_t processed, bool sweep_complete);

  FairKMSolver solver_;
  std::shared_ptr<const data::PointStore> store_;  // Aliases solver's store.
  size_t shard_rows_ = 0;
  int num_shards_ = 0;
  int next_evict_ = 0;  ///< First shard not yet evicted this sweep.
  ShardedSweepStats stats_;
};

}  // namespace core
}  // namespace fairkm

#endif  // FAIRKM_CORE_SHARDED_SWEEP_H_
