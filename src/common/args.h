// Tiny command-line flag parser for the example and bench executables.
//
// Accepts --name=value, --name value and boolean --name forms. Unknown flags
// are rejected so typos surface immediately.

#ifndef FAIRKM_COMMON_ARGS_H_
#define FAIRKM_COMMON_ARGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace fairkm {

/// \brief Parsed command line: flags plus positional arguments.
class ArgParser {
 public:
  /// \brief Declares a flag with a default value and help text (all flags are
  /// string-typed internally; use the typed getters).
  void AddFlag(const std::string& name, const std::string& default_value,
               const std::string& help);

  /// \brief Parses argv. Returns error on unknown or malformed flags.
  Status Parse(int argc, const char* const* argv);

  /// \brief Typed getters (abort on undeclared names — programming error).
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// \brief Renders a usage block listing all declared flags.
  std::string HelpString(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

/// \brief Reads an environment variable as int64, returning `fallback` when the
/// variable is unset or unparseable. Used for bench scaling knobs.
int64_t EnvInt(const char* name, int64_t fallback);

}  // namespace fairkm

#endif  // FAIRKM_COMMON_ARGS_H_
