// AssignService — the concurrent front door of the serving tier.
//
// One writer (a training loop) publishes immutable ModelSnapshots; many
// reader threads call Assign concurrently. The service
//
//   * holds the current snapshot in a shared_ptr swapped atomically
//     (std::atomic_load/atomic_store), so every request scores against one
//     stable model generation end to end, regardless of publishes racing in;
//   * bounds concurrency with a counting-semaphore admission gate —
//     at most max_concurrency requests score at once, the rest block at the
//     door (backpressure instead of unbounded thread pile-up on the memory-
//     bandwidth-limited scoring loop);
//   * splits each request into batches of at most max_batch_points rows and
//     scores them through the kernel-backed serve::AssignRows fast path with
//     a per-thread reusable scratch (allocation-free steady state);
//   * counts everything — requests, points, batches, rejected requests,
//     scoring wall time, batch-size shape, publishes, snapshot age — into a
//     ServeMetrics struct (fairkm_cli --serve-bench prints it).
//
// Thread-safe throughout: Publish, Assign and Metrics may be called from any
// threads concurrently. The solver feeding Publish stays single-writer on
// its own thread (see model_snapshot.h).

#ifndef FAIRKM_SERVE_ASSIGN_SERVICE_H_
#define FAIRKM_SERVE_ASSIGN_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "cluster/types.h"
#include "common/status.h"
#include "data/matrix.h"
#include "data/sensitive.h"
#include "serve/model_snapshot.h"

namespace fairkm {
namespace serve {

/// \brief Service knobs.
struct AssignServiceOptions {
  /// Per-request batching granularity: requests are scored in chunks of at
  /// most this many points (metrics count each chunk as one batch).
  size_t max_batch_points = 512;
  /// Maximum requests scoring concurrently; further callers block until a
  /// slot frees. 0 = number of hardware threads.
  int max_concurrency = 0;
};

/// \brief Point-in-time counters of an AssignService.
struct ServeMetrics {
  uint64_t requests = 0;        ///< Completed Assign calls (ok or error).
  uint64_t errors = 0;          ///< Assign calls that returned a non-OK status.
  uint64_t points = 0;          ///< Points scored by successful requests.
  uint64_t batches = 0;         ///< Scoring chunks across all requests.
  double busy_seconds = 0.0;    ///< Wall time spent inside scoring.
  double points_per_second = 0.0;  ///< points / busy_seconds (0 if no work).
  double avg_batch_points = 0.0;   ///< points / batches (0 if no work).
  uint64_t max_batch_points = 0;   ///< Largest chunk scored so far.
  uint64_t peak_in_flight = 0;     ///< Max concurrent requests observed.
  uint64_t snapshots_published = 0;
  /// Seconds since the current snapshot was published (-1 with no model).
  double snapshot_age_seconds = -1.0;
};

/// \brief Bounded-concurrency assignment service over published snapshots.
class AssignService {
 public:
  explicit AssignService(const AssignServiceOptions& options = {});

  /// \brief Atomically swaps in a new model generation. Requests already
  /// scoring keep their snapshot; new requests see this one.
  void Publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// \brief The currently published model generation (null before the first
  /// Publish).
  std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// \brief Scores one request against the current snapshot (fairness term
  /// included iff `sensitive` is non-null — same contract as
  /// serve::AssignBatch). Blocks while max_concurrency requests are already
  /// scoring.
  Result<cluster::Assignment> Assign(
      const data::Matrix& points,
      const data::SensitiveView* sensitive = nullptr);

  /// \brief Snapshot of the counters.
  ServeMetrics Metrics() const;

 private:
  using Clock = std::chrono::steady_clock;

  // Counting-semaphore admission gate.
  void AcquireSlot();
  void ReleaseSlot();

  const size_t max_batch_points_;
  const uint64_t max_concurrency_;

  // Current model generation; accessed only through std::atomic_load/store.
  std::shared_ptr<const ModelSnapshot> snapshot_;

  mutable std::mutex mu_;  // Guards the gate + every counter below.
  std::condition_variable slot_free_;
  uint64_t in_flight_ = 0;
  uint64_t peak_in_flight_ = 0;
  uint64_t requests_ = 0;
  uint64_t errors_ = 0;
  uint64_t points_ = 0;
  uint64_t batches_ = 0;
  double busy_seconds_ = 0.0;
  uint64_t max_batch_ = 0;
  uint64_t publishes_ = 0;
  Clock::time_point publish_time_{};
};

}  // namespace serve
}  // namespace fairkm

#endif  // FAIRKM_SERVE_ASSIGN_SERVICE_H_
