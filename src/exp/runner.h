// Multi-seed experiment runner.
//
// Reproduces the paper's §5.5.1 protocol: each method is instantiated with a
// number of random seeds; every evaluation measure is averaged across seeds.
// Quality deviations (DevC/DevO) are measured against the S-blind K-Means
// clustering of the same seed.

#ifndef FAIRKM_EXP_RUNNER_H_
#define FAIRKM_EXP_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/clusterer.h"
#include "cluster/types.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/fairkm.h"
#include "core/objective.h"
#include "core/supervisor.h"
#include "exp/datasets.h"
#include "metrics/fairness.h"
#include "metrics/quality.h"

namespace fairkm {
namespace exp {

/// \brief Which clustering method a run uses.
enum class Method {
  kKMeansBlind,    ///< "K-Means(N)": vanilla K-Means on the task attributes.
  kFairKMAll,      ///< FairKM over every sensitive attribute at once.
  kFairKMSingle,   ///< FairKM(S): one sensitive attribute (paper §5.6).
  kZgyaSingle,     ///< ZGYA(S): the baseline (published soft variational
                   ///< algorithm), one attribute per invocation.
  kZgyaHard,       ///< ZGYA(S) re-optimized with exact hard moves (ablation:
                   ///< how much of the paper's gap is the optimizer's fault).
};

/// \brief Human-readable method name.
std::string MethodName(Method method);

/// \brief One experiment configuration.
struct RunConfig {
  Method method = Method::kFairKMAll;
  /// The full FairKM configuration, embedded verbatim (core/fairkm.h) — the
  /// single source of truth for every FairKM knob (k, lambda,
  /// max_iterations, fairness-term construction, mini-batch, sweep mode,
  /// threads, pruning). The structural fields every method shares — k and
  /// max_iterations — are read from here by the non-FairKM methods too (the
  /// S-blind K-Means reference keeps its own fixed 100-iteration Lloyd cap).
  core::FairKMOptions fairkm;
  /// ZGYA lambda; negative = auto balance (see cluster/zgya.h).
  double zgya_lambda = -1.0;
  /// ZGYA soft-mode temperature; negative = the library default.
  double zgya_soft_temperature = -1.0;
  /// Attribute for the *Single methods.
  std::string single_attribute;
};

/// \brief Per-seed measurements.
struct SeedOutcome {
  cluster::Assignment assignment;
  double co = 0.0;
  double sh = 0.0;
  double devc = 0.0;
  double devo = 0.0;
  metrics::FairnessSummary fairness;
  double seconds = 0.0;
  int iterations = 0;
  bool converged = false;
  /// FairKM-only perf telemetry (0 for the other methods): wall time inside
  /// the optimization sweeps and the fraction of candidate evaluations the
  /// pruning gate rejected.
  double sweep_seconds = 0.0;
  double pruned_fraction = 0.0;
};

/// \brief Mean/stddev aggregates of the four fairness measures.
struct FairnessAggregate {
  RunningStats ae, aw, me, mw;
};

/// \brief Seed-aggregated measurements for one RunConfig.
struct AggregateOutcome {
  RunningStats co, sh, devc, devo, seconds, iterations;
  /// Sweep timing + pruned-candidate fraction across seeds (FairKM methods;
  /// zeros otherwise), so table reproduction runs double as perf records.
  RunningStats sweep_seconds, pruned_fraction;
  size_t converged_runs = 0;
  size_t total_runs = 0;
  /// Keyed by attribute name; "mean" holds the across-attribute average.
  std::map<std::string, FairnessAggregate> fairness;

  const FairnessAggregate& FairnessOf(const std::string& attribute) const;
};

/// \brief One-line sweep-perf record for a (FairKM) aggregate — mean sweep
/// wall time per run and mean pruned-candidate fraction — so the paper-table
/// reproduction output doubles as a perf record.
std::string PerfSummary(const AggregateOutcome& agg);

/// \brief Reusable per-configuration state for RunSeed: the method's
/// cluster::Clusterer instance. The FairKM adapter keeps a warm
/// core::FairKMSolver inside, so running many seeds through one session
/// pays the point-store/cache construction and its allocations once (the
/// §5.5.1 multi-seed fast path). Build with ExperimentRunner::MakeSession;
/// do not share one session across threads.
struct MethodSession {
  std::unique_ptr<cluster::Clusterer> clusterer;
};

/// \brief One seed driven through the self-healing core::SupervisedRunner:
/// the regular per-seed measurements plus the watchdog/rollback/demotion
/// counters of the run that produced them.
struct SupervisedSeedOutcome {
  SeedOutcome outcome;
  core::SupervisorStats supervisor;
  core::RunStop stop = core::RunStop::kConverged;
};

/// \brief Runs configurations over seeds and aggregates.
class ExperimentRunner {
 public:
  /// \brief `data` must outlive the runner. `num_threads` parallelizes
  /// across seeds (1 = serial; aggregation order is deterministic either way).
  ExperimentRunner(const ExperimentData* data, size_t num_threads = 1);

  /// \brief Builds the reusable session for one configuration: the method is
  /// resolved uniformly (K-Means/ZGYA through the cluster::Clusterer
  /// registry, FairKM through its solver-backed adapter).
  Result<MethodSession> MakeSession(const RunConfig& config) const;

  /// \brief Runs one seed of one configuration, cold (a fresh session).
  Result<SeedOutcome> RunSeed(const RunConfig& config, uint64_t seed) const;

  /// \brief Runs one seed against a caller-held session (the warm path).
  /// Results are bit-identical to the cold overload.
  Result<SeedOutcome> RunSeed(const RunConfig& config, uint64_t seed,
                              MethodSession* session) const;

  /// \brief Runs `num_seeds` seeds (base_seed, base_seed+1, ...) and
  /// aggregates. Serial runners (num_threads = 1) share one session across
  /// all seeds; seed-parallel runners keep a session POOL — one warm session
  /// per worker, each driving a contiguous chunk of seeds — so solver reuse
  /// survives parallelization. Aggregation order is deterministic either
  /// way. Any failing seed aborts the whole run with a status naming the
  /// seed and its index.
  Result<AggregateOutcome> Run(const RunConfig& config, size_t num_seeds,
                               uint64_t base_seed = 1000) const;

  /// \brief Runs one FairKM seed under the self-healing supervisor
  /// (core/supervisor.h) instead of the plain session adapter, measuring the
  /// final state exactly like RunSeed and reporting the SupervisorStats
  /// alongside. FairKM-over-all-attributes only (the supervised runtime
  /// binds the full sensitive view). `store_spec` selects the storage
  /// backend the supervised session starts from (the demotion ladder may
  /// abandon it mid-run).
  Result<SupervisedSeedOutcome> RunSupervisedSeed(
      const RunConfig& config, uint64_t seed,
      const core::SupervisorPolicy& policy,
      const data::PointStoreSpec& store_spec = {}) const;

 private:
  /// Runs the session's method, filling `outcome`'s assignment plus the
  /// iteration/convergence/sweep-perf telemetry.
  Status RunMethod(uint64_t seed, MethodSession* session,
                   SeedOutcome* outcome) const;
  /// Fills the quality/deviation/fairness measurements of an assignment
  /// already stored in `outcome` (shared by RunSeed and RunSupervisedSeed).
  Status FillMeasurements(const RunConfig& config, uint64_t seed,
                          SeedOutcome* outcome) const;
  /// The same-seed S-blind reference clustering for DevC/DevO.
  Result<cluster::ClusteringResult> RunBlindReference(int k, uint64_t seed) const;

  const ExperimentData* data_;
  size_t num_threads_;
};

}  // namespace exp
}  // namespace fairkm

#endif  // FAIRKM_EXP_RUNNER_H_
