// Typed tabular dataset: named numeric and categorical columns.
//
// A Dataset is the on-ramp for every experiment: generators and CSV loaders
// produce one, the preprocessing helpers standardize / subsample it, and the
// clustering algorithms consume (a) a numeric Matrix built from the
// non-sensitive attribute set N and (b) a SensitiveView built from the
// sensitive attribute set S (see data/sensitive.h).

#ifndef FAIRKM_DATA_DATASET_H_
#define FAIRKM_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/status.h"
#include "data/matrix.h"

namespace fairkm {
namespace data {

/// \brief A named column of doubles.
struct NumericColumn {
  std::string name;
  std::vector<double> values;
};

/// \brief A named categorical column: integer codes into a label dictionary.
struct CategoricalColumn {
  std::string name;
  std::vector<int32_t> codes;       ///< Each in [0, labels.size()).
  std::vector<std::string> labels;  ///< Dictionary; index == code.

  int cardinality() const { return static_cast<int>(labels.size()); }

  /// \brief Fraction of rows taking each code (the dataset distribution
  /// Fr_X(s) of Eq. 2).
  std::vector<double> Fractions() const;
};

/// \brief Column-oriented table with uniform row count across columns.
class Dataset {
 public:
  size_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// \brief Adds a numeric column; all columns must share the same length.
  Status AddNumeric(std::string name, std::vector<double> values);

  /// \brief Adds a categorical column; codes must be within [0, labels.size()).
  Status AddCategorical(std::string name, std::vector<int32_t> codes,
                        std::vector<std::string> labels);

  const std::vector<NumericColumn>& numeric_columns() const { return numeric_; }
  const std::vector<CategoricalColumn>& categorical_columns() const {
    return categorical_;
  }

  /// \brief Looks up a numeric column by name.
  Result<const NumericColumn*> FindNumeric(const std::string& name) const;

  /// \brief Looks up a categorical column by name.
  Result<const CategoricalColumn*> FindCategorical(const std::string& name) const;

  /// \brief Builds a row-major matrix from the named numeric columns, in the
  /// given order.
  Result<Matrix> ToMatrix(const std::vector<std::string>& column_names) const;

  /// \brief Names of all numeric columns, in insertion order.
  std::vector<std::string> NumericNames() const;

  /// \brief Returns a new dataset containing the given rows, in order.
  Dataset SelectRows(const std::vector<size_t>& indices) const;

  /// \brief Serializes all columns to a CSV table (categoricals as labels).
  CsvTable ToCsv() const;

  /// \brief Parses a dataset from CSV: columns whose every value parses as a
  /// number become numeric; the rest become categoricals with labels sorted
  /// lexicographically (deterministic codes).
  static Result<Dataset> FromCsv(const CsvTable& table);

 private:
  Status CheckLength(size_t len, const std::string& name);

  size_t num_rows_ = 0;
  bool has_columns_ = false;
  std::vector<NumericColumn> numeric_;
  std::vector<CategoricalColumn> categorical_;
};

}  // namespace data
}  // namespace fairkm

#endif  // FAIRKM_DATA_DATASET_H_
