// Questionnaire construction scenario (the paper's Kinematics workload,
// §5.1): cluster a bank of physics word problems into k questionnaires such
// that every questionnaire carries a representative mix of problem types —
// so no questionnaire is systematically harder than another.
//
//   $ ./examples/questionnaire_builder --k 5 --show 2

#include <cstdio>

#include "cluster/kmeans.h"
#include "common/args.h"
#include "core/fairkm.h"
#include "core/solver.h"
#include "exp/datasets.h"
#include "exp/table.h"
#include "metrics/fairness.h"
#include "text/kinematics_generator.h"

using namespace fairkm;

namespace {

void PrintTypeMix(const char* name, const cluster::Assignment& assignment, int k,
                  const data::CategoricalColumn& type) {
  exp::TablePrinter table({"Questionnaire", "#problems", "T1", "T2", "T3", "T4",
                           "T5"});
  for (int c = 0; c < k; ++c) {
    std::vector<size_t> counts(5, 0);
    size_t total = 0;
    for (size_t i = 0; i < assignment.size(); ++i) {
      if (assignment[i] != c) continue;
      ++counts[static_cast<size_t>(type.codes[i])];
      ++total;
    }
    table.AddRow({"Q" + std::to_string(c + 1), std::to_string(total),
                  std::to_string(counts[0]), std::to_string(counts[1]),
                  std::to_string(counts[2]), std::to_string(counts[3]),
                  std::to_string(counts[4])});
  }
  std::printf("%s\n", name);
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.AddFlag("k", "5", "number of questionnaires");
  args.AddFlag("lambda", "-1", "fairness weight (-1 = paper value 1e3)");
  args.AddFlag("seed", "3", "random seed");
  args.AddFlag("show", "0", "print this many sample problems per questionnaire");
  if (Status st = args.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 args.HelpString("questionnaire_builder").c_str());
    return 1;
  }
  const int k = static_cast<int>(args.GetInt("k"));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed"));

  auto data = exp::LoadKinematicsExperiment().ValueOrDie();
  const double lambda =
      args.GetDouble("lambda") < 0 ? data.paper_lambda : args.GetDouble("lambda");
  const auto* type = data.dataset.FindCategorical("type").ValueOrDie();

  std::printf("Question bank: %zu problems, 5 types (Table 4 mix: 60/36/15/31/19)\n",
              data.features.rows());
  std::printf("Building %d questionnaires, lambda = %g\n\n", k, lambda);

  cluster::KMeansOptions kopt;
  kopt.k = k;
  kopt.init = cluster::KMeansInit::kRandomAssignment;
  Rng blind_rng(seed);
  auto blind = cluster::RunKMeans(data.features, kopt, &blind_rng).ValueOrDie();
  PrintTypeMix("Type-blind K-Means questionnaires (skewed difficulty):",
               blind.assignment, k, *type);

  core::FairKMOptions fopt;
  fopt.k = k;
  fopt.lambda = lambda;
  core::FairKMSolver solver =
      core::FairKMSolver::Create(&data.features, &data.sensitive, fopt)
          .ValueOrDie();
  Rng fair_rng(seed);
  if (Status st = solver.Init(&fair_rng); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  solver.Run().ValueOrDie();
  auto fair = solver.CurrentResult().ValueOrDie();
  PrintTypeMix("\nFairKM questionnaires (balanced type mix):", fair.assignment, k,
               *type);

  auto blind_f = metrics::EvaluateFairness(data.sensitive, blind.assignment, k);
  auto fair_f = metrics::EvaluateFairness(data.sensitive, fair.assignment, k);
  std::printf("\nType-mix deviation (AE, lower is better): %.4f -> %.4f\n",
              blind_f.mean.ae, fair_f.mean.ae);
  std::printf("Lexical coherence cost (SSE): %.2f -> %.2f\n",
              blind.kmeans_objective, fair.kmeans_objective);

  const int show = static_cast<int>(args.GetInt("show"));
  if (show > 0) {
    // Regenerate the corpus to show the actual problem texts.
    auto corpus =
        text::GenerateKinematicsCorpus(text::KinematicsOptions{}).ValueOrDie();
    for (int c = 0; c < k; ++c) {
      std::printf("\n-- Questionnaire Q%d samples --\n", c + 1);
      int shown = 0;
      for (size_t i = 0; i < fair.assignment.size() && shown < show; ++i) {
        if (fair.assignment[i] != c) continue;
        std::printf("  [T%d] %s\n", type->codes[i] + 1, corpus.problems[i].c_str());
        ++shown;
      }
    }
  }
  return 0;
}
