#include "exp/runner.h"

#include <optional>

#include "cluster/kmeans.h"
#include "cluster/zgya.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/fairkm.h"
#include "exp/table.h"

namespace fairkm {
namespace exp {

std::string MethodName(Method method) {
  switch (method) {
    case Method::kKMeansBlind:
      return "K-Means(N)";
    case Method::kFairKMAll:
      return "FairKM";
    case Method::kFairKMSingle:
      return "FairKM(S)";
    case Method::kZgyaSingle:
      return "ZGYA(S)";
    case Method::kZgyaHard:
      return "ZGYA-hard(S)";
  }
  return "unknown";
}

const FairnessAggregate& AggregateOutcome::FairnessOf(
    const std::string& attribute) const {
  static const FairnessAggregate kEmpty;
  auto it = fairness.find(attribute);
  return it == fairness.end() ? kEmpty : it->second;
}

std::string PerfSummary(const AggregateOutcome& agg) {
  return "sweep " + MillisCell(agg.sweep_seconds.mean()) + "/run, " +
         PercentCell(agg.pruned_fraction.mean()) + " of candidates pruned (" +
         std::to_string(agg.total_runs) + " runs)";
}

ExperimentRunner::ExperimentRunner(const ExperimentData* data, size_t num_threads)
    : data_(data), num_threads_(num_threads == 0 ? 1 : num_threads) {}

Result<cluster::ClusteringResult> ExperimentRunner::RunBlindReference(
    int k, uint64_t seed) const {
  Rng rng(seed);
  cluster::KMeansOptions options;
  options.k = k;
  options.init = cluster::KMeansInit::kRandomAssignment;
  options.max_iterations = 100;
  return cluster::RunKMeans(data_->features, options, &rng);
}

Status ExperimentRunner::RunMethod(const RunConfig& config, uint64_t seed,
                                   SeedOutcome* outcome) const {
  Rng rng(seed);
  switch (config.method) {
    case Method::kKMeansBlind: {
      FAIRKM_ASSIGN_OR_RETURN(cluster::ClusteringResult result,
                              RunBlindReference(config.k, seed));
      outcome->iterations = result.iterations;
      outcome->converged = result.converged;
      outcome->assignment = std::move(result.assignment);
      return Status::OK();
    }
    case Method::kFairKMAll:
    case Method::kFairKMSingle: {
      core::FairKMOptions options;
      options.k = config.k;
      options.lambda = config.lambda;
      options.max_iterations = config.max_iterations;
      options.fairness = config.fairness;
      options.minibatch_size = config.minibatch;
      options.sweep_mode = config.sweep_mode;
      options.num_threads = config.fairkm_threads;
      options.enable_pruning = config.fairkm_pruning;
      data::SensitiveView view;
      if (config.method == Method::kFairKMSingle) {
        FAIRKM_ASSIGN_OR_RETURN(
            view, data_->sensitive.SelectCategorical(config.single_attribute));
      } else {
        view = data_->sensitive;
      }
      FAIRKM_ASSIGN_OR_RETURN(core::FairKMResult result,
                              core::RunFairKM(data_->features, view, options, &rng));
      outcome->iterations = result.iterations;
      outcome->converged = result.converged;
      outcome->sweep_seconds = result.sweep_seconds;
      outcome->pruned_fraction = result.PrunedFraction();
      outcome->assignment = std::move(result.assignment);
      return Status::OK();
    }
    case Method::kZgyaSingle:
    case Method::kZgyaHard: {
      FAIRKM_ASSIGN_OR_RETURN(
          data::SensitiveView view,
          data_->sensitive.SelectCategorical(config.single_attribute));
      cluster::ZgyaOptions options;
      options.k = config.k;
      options.lambda = config.zgya_lambda;
      options.max_iterations = config.max_iterations;
      options.mode = config.method == Method::kZgyaHard
                         ? cluster::ZgyaOptions::Mode::kHardMoves
                         : cluster::ZgyaOptions::Mode::kSoftVariational;
      if (config.zgya_soft_temperature > 0) {
        options.soft_temperature = config.zgya_soft_temperature;
      }
      FAIRKM_ASSIGN_OR_RETURN(
          cluster::ZgyaResult result,
          cluster::RunZgya(data_->features, view.categorical[0], options, &rng));
      outcome->iterations = result.iterations;
      outcome->converged = result.converged;
      outcome->assignment = std::move(result.assignment);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown method");
}

Result<SeedOutcome> ExperimentRunner::RunSeed(const RunConfig& config,
                                              uint64_t seed) const {
  SeedOutcome outcome;
  Timer timer;
  FAIRKM_RETURN_NOT_OK(RunMethod(config, seed, &outcome));
  outcome.seconds = timer.ElapsedSeconds();

  const int k = config.k;
  outcome.co = metrics::ClusteringObjective(data_->features, outcome.assignment, k);
  metrics::SilhouetteOptions sil;
  sil.seed = seed ^ 0x51L;
  outcome.sh = metrics::SilhouetteScore(data_->features, outcome.assignment, k, sil);

  FAIRKM_ASSIGN_OR_RETURN(cluster::ClusteringResult reference,
                          RunBlindReference(k, seed));
  data::Matrix centroids =
      cluster::ComputeCentroids(data_->features, outcome.assignment, k);
  FAIRKM_ASSIGN_OR_RETURN(outcome.devc,
                          metrics::CentroidDeviation(centroids, reference.centroids));
  FAIRKM_ASSIGN_OR_RETURN(
      outcome.devo,
      metrics::ObjectPairDeviation(outcome.assignment, k, reference.assignment, k));

  outcome.fairness = metrics::EvaluateFairness(data_->sensitive, outcome.assignment, k);
  return outcome;
}

Result<AggregateOutcome> ExperimentRunner::Run(const RunConfig& config,
                                               size_t num_seeds,
                                               uint64_t base_seed) const {
  if (num_seeds == 0) return Status::InvalidArgument("num_seeds must be positive");
  std::vector<std::optional<SeedOutcome>> outcomes(num_seeds);
  std::vector<Status> statuses(num_seeds, Status::OK());

  ParallelFor(num_seeds, num_threads_, [&](size_t s) {
    Result<SeedOutcome> r = RunSeed(config, base_seed + s);
    if (r.ok()) {
      outcomes[s] = std::move(r).ValueOrDie();
    } else {
      statuses[s] = r.status();
    }
  });
  for (const Status& st : statuses) {
    FAIRKM_RETURN_NOT_OK(st);
  }

  AggregateOutcome agg;
  agg.total_runs = num_seeds;
  for (size_t s = 0; s < num_seeds; ++s) {
    const SeedOutcome& o = *outcomes[s];
    agg.co.Add(o.co);
    agg.sh.Add(o.sh);
    agg.devc.Add(o.devc);
    agg.devo.Add(o.devo);
    agg.seconds.Add(o.seconds);
    agg.iterations.Add(static_cast<double>(o.iterations));
    agg.sweep_seconds.Add(o.sweep_seconds);
    agg.pruned_fraction.Add(o.pruned_fraction);
    if (o.converged) ++agg.converged_runs;
    for (const auto& attr : o.fairness.per_attribute) {
      FairnessAggregate& fa = agg.fairness[attr.attribute];
      fa.ae.Add(attr.ae);
      fa.aw.Add(attr.aw);
      fa.me.Add(attr.me);
      fa.mw.Add(attr.mw);
    }
    FairnessAggregate& mean = agg.fairness["mean"];
    mean.ae.Add(o.fairness.mean.ae);
    mean.aw.Add(o.fairness.mean.aw);
    mean.me.Add(o.fairness.mean.me);
    mean.mw.Add(o.fairness.mean.mw);
  }
  return agg;
}

}  // namespace exp
}  // namespace fairkm
